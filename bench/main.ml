(* Full reproduction harness.

   Part 1 regenerates every table and figure of the paper (Table 1,
   Figure 5, Figure 6, the Section 5.1 padding example, the Section 6
   set-associative extension) plus the design-choice ablations, printing
   each as an ASCII table.

   Part 2 times the pieces with Bechamel: one Test.make per reproduced
   table/figure (a representative unit of its work) plus the placement
   algorithms themselves (the paper's Section 4.4 discusses GBSC's running
   time).

   Pass --quick for a fast smoke run on the small workload. *)

open Bechamel
open Toolkit

module Report = Trg_eval.Report
module Runner = Trg_eval.Runner
module Table1 = Trg_eval.Table1
module Figure5 = Trg_eval.Figure5
module Figure6 = Trg_eval.Figure6
module Padding = Trg_eval.Padding
module Setassoc = Trg_eval.Setassoc
module Ablation = Trg_eval.Ablation
module Bench = Trg_synth.Bench
module Gbsc = Trg_place.Gbsc
module Ph = Trg_place.Ph
module Hkc = Trg_place.Hkc
module Wcg = Trg_profile.Wcg
module Trg = Trg_profile.Trg
module Perturb = Trg_profile.Perturb
module Table = Trg_util.Table

(* Strict argument handling: an unrecognized flag is a hard error, not a
   silent full run (a mistyped [--quikc] used to cost minutes). *)
let usage () =
  Printf.eprintf "usage: %s [--quick] [--jobs N] [--cost-engine full|incr|both]\n"
    Sys.argv.(0)

let quick, jobs, cost_engine =
  let quick = ref false in
  let jobs = ref 0 in
  let cost_engine = ref `Both in
  let ok = ref true in
  let i = ref 1 in
  while !i <= Array.length Sys.argv - 1 do
    (match Sys.argv.(!i) with
    | "--quick" -> quick := true
    | "--jobs" | "-j" when !i < Array.length Sys.argv - 1 -> (
      incr i;
      match int_of_string_opt Sys.argv.(!i) with
      | Some n when n >= 0 -> jobs := n
      | Some _ | None ->
        Printf.eprintf "bench: --jobs expects a non-negative integer, got %S\n"
          Sys.argv.(!i);
        ok := false)
    | "--cost-engine" when !i < Array.length Sys.argv - 1 -> (
      incr i;
      match Sys.argv.(!i) with
      | "full" -> cost_engine := `Full
      | "incr" -> cost_engine := `Incr
      | "both" -> cost_engine := `Both
      | s ->
        Printf.eprintf "bench: --cost-engine expects full, incr or both, got %S\n" s;
        ok := false)
    | "--help" | "-h" ->
      usage ();
      exit 0
    | arg ->
      Printf.eprintf "bench: unrecognized argument %S\n" arg;
      ok := false);
    incr i
  done;
  if not !ok then begin
    usage ();
    exit 2
  end;
  (!quick, !jobs, !cost_engine)

let benchmark_tests () =
  (* Timing subjects: [small] for profile-building benches, [go] for the
     placement algorithms (a mid-size Table 1 workload). *)
  let small = Runner.prepare (Bench.find "small") in
  let go = Runner.prepare (Bench.find "go") in
  let program r = Runner.program r in
  let t name f = Test.make ~name (Staged.stage f) in
  [
    (* TABLE 1: characterising one benchmark (stats + default-layout sim). *)
    t "table1/row(small)" (fun () -> Table1.row_of small);
    (* FIGURE 5: one perturbed GBSC placement + testing-trace simulation. *)
    t "figure5/point(small)" (fun () ->
        let rng = Trg_util.Prng.create 1 in
        let select = Perturb.graph rng ~s:0.1 small.Runner.prof.Gbsc.select.Trg.graph in
        let place = Perturb.graph rng ~s:0.1 small.Runner.prof.Gbsc.place.Trg.graph in
        let layout =
          Gbsc.place_with small.Runner.config (program small) ~select
            ~model:
              (Trg_place.Cost.Trg_chunks
                 { chunks = small.Runner.prof.Gbsc.chunks; trg = place })
        in
        Runner.test_miss_rate small layout);
    (* FIGURE 6: one randomized layout evaluated under both metrics. *)
    t "figure6/points(small,n=2)" (fun () -> Figure6.run ~n:2 ~seed:9 small);
    (* Section 5.1: padding experiment. *)
    t "padding(small)" (fun () -> Padding.run small);
    (* Section 6: a GBSC-SA placement from a prebuilt pair database. *)
    t "setassoc/placement(small)" (fun () ->
        let sa_config =
          Gbsc.default_config
            ~cache:(Trg_cache.Config.make ~size:8192 ~line_size:32 ~assoc:2)
            ()
        in
        let prof = Trg_place.Gbsc_sa.profile ~max_between:8 sa_config (program small) small.Runner.train in
        Trg_place.Gbsc_sa.place (program small) prof);
    (* Ablation: a whole-procedure-granularity profile + placement. *)
    t "ablation/no-chunking(small)" (fun () ->
        let cfg = { small.Runner.config with Gbsc.chunk_size = 1 lsl 20 } in
        Gbsc.place (program small) (Gbsc.profile cfg (program small) small.Runner.train));
    (* Extension experiments: one representative unit each. *)
    t "splitting(small)" (fun () -> Trg_eval.Splitting.run ~cold_fractions:[ 0.05 ] small);
    t "paging/faults(small)" (fun () ->
        Trg_cache.Sim.paging (program small) (Runner.default_layout small)
          ~page_size:4096 ~frames:16 small.Runner.test);
    t "sampling/half(small)" (fun () ->
        Trg_eval.Sampling.run ~window:10_000 ~factors:[ 2 ] small);
    t "blocks/reorder(small)" (fun () ->
        Trg_place.Block_reorder.build (program small) small.Runner.train);
    t "headroom/anneal-5k(small)" (fun () ->
        Trg_eval.Headroom.run ~iterations:5_000 small);
    t "sweep/4K-point(small)" (fun () ->
        Trg_eval.Sweep.run ~sizes:[ 4096 ] (Bench.find "small"));
    t "online/profile(small)" (fun () ->
        let profiler =
          Trg_profile.Online.create ~capacity_bytes:16384 (program small)
            small.Runner.prof.Gbsc.chunks
        in
        Trg_trace.Trace.iter (Trg_profile.Online.observe profiler) small.Runner.train;
        Trg_profile.Online.finish profiler);
    t "charact/reuse(small)" (fun () ->
        Trg_cache.Reuse.compute (program small) (Runner.default_layout small)
          ~line_size:32 small.Runner.test);
    t "hierarchy/sim(small)" (fun () ->
        Trg_cache.Sim.simulate_hierarchy (program small) (Runner.default_layout small)
          ~l1:(Trg_cache.Config.make ~size:8192 ~line_size:32 ~assoc:1)
          ~l2:(Trg_cache.Config.make ~size:65536 ~line_size:64 ~assoc:4)
          small.Runner.test);
    t "hierarchy/skylake(small)" (fun () ->
        let cpu =
          match Trg_cache.Cpu.find "skylake" with
          | Ok c -> c
          | Error e -> failwith e
        in
        Trg_cache.Hierarchy.simulate (program small)
          (Runner.default_layout small) cpu.Trg_cache.Cpu.hier
          small.Runner.test);
    (* Policy engines: the generic set-associative loop under non-LRU
       replacement (the differential wall proves these exact; this times
       them against the specialised LRU loop above). *)
    t "policy/plru-4way(small)" (fun () ->
        Trg_cache.Sim.simulate ~policy:Trg_cache.Policy.Plru (program small)
          (Runner.default_layout small)
          (Trg_cache.Config.make ~size:8192 ~line_size:32 ~assoc:4)
          small.Runner.test);
    t "policy/qlru-h11-4way(small)" (fun () ->
        Trg_cache.Sim.simulate ~policy:Trg_cache.Policy.Qlru_h11
          (program small)
          (Runner.default_layout small)
          (Trg_cache.Config.make ~size:8192 ~line_size:32 ~assoc:4)
          small.Runner.test);
    (* The placement algorithms themselves (paper Section 4.4). *)
    t "place/ph(go)" (fun () -> Ph.place ~wcg:go.Runner.wcg (program go));
    t "place/hkc(go)" (fun () ->
        Hkc.place go.Runner.config (program go) ~wcg:go.Runner.wcg
          ~popularity:go.Runner.prof.Gbsc.popularity);
    t "place/gbsc(go)" (fun () -> Gbsc.place (program go) go.Runner.prof);
    (* Substrate costs: profiling and simulation. *)
    t "profile/wcg(go)" (fun () -> Wcg.build go.Runner.train);
    t "profile/trg-select+place(small)" (fun () ->
        Gbsc.profile small.Runner.config (program small) small.Runner.train);
    t "sim/test-trace(go)" (fun () ->
        Runner.test_miss_rate go (Runner.default_layout go));
    (* Pool substrate: the checksummed frame encoding a worker reply pays. *)
    t "pool/frame-encode(64K)" (fun () ->
        Trg_eval.Pool.Frame.encode (String.make 65536 'x'));
  ]

(* Side-by-side placement wall time under the two cost engines — the
   direct measurement of the incremental engine's payoff.  Placements are
   recomputed under each engine in turn (engine selection is the
   process-global in [Trg_place.Cost]); layouts are asserted identical, so
   a speedup can never come from silently diverging answers. *)
let compare_engines () =
  Table.section "COST ENGINES — full vs incremental placement wall time";
  let with_engine kind f =
    let saved = Trg_place.Cost.engine () in
    Trg_place.Cost.set_engine kind;
    Fun.protect ~finally:(fun () -> Trg_place.Cost.set_engine saved) f
  in
  let time f =
    let t0 = Trg_util.Clock.monotonic () in
    let v = f () in
    (v, Trg_util.Clock.monotonic () -. t0)
  in
  let subjects = if quick then [ "small" ] else [ "small"; "go"; "gcc" ] in
  let rows =
    List.concat_map
      (fun name ->
        let r = Runner.prepare (Bench.find name) in
        let program = Runner.program r in
        let cases =
          [
            ("gbsc", fun () -> Gbsc.place program r.Runner.prof);
            ( "hkc",
              fun () ->
                Hkc.place r.Runner.config program ~wcg:r.Runner.wcg
                  ~popularity:r.Runner.prof.Gbsc.popularity );
          ]
        in
        List.map
          (fun (algo, place) ->
            let full_layout, full_s = with_engine Trg_place.Cost.Full (fun () -> time place) in
            let incr_layout, incr_s = with_engine Trg_place.Cost.Incr (fun () -> time place) in
            if full_layout <> incr_layout then begin
              Printf.eprintf "bench: %s/%s: engines produced different layouts\n"
                name algo;
              exit 1
            end;
            [
              Printf.sprintf "%s/%s" algo name;
              Printf.sprintf "%.1f ms" (1e3 *. full_s);
              Printf.sprintf "%.1f ms" (1e3 *. incr_s);
              (if incr_s > 0. then Printf.sprintf "%.1fx" (full_s /. incr_s) else "-");
            ])
          cases)
      subjects
  in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "placement"; "full"; "incr"; "speedup" ]
    rows;
  print_newline ()

let run_benchmarks () =
  Table.section "BECHAMEL — timing (one test per table/figure + algorithms)";
  let tests = benchmark_tests () in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:30
      ~quota:(Time.second (if quick then 0.1 else 0.5))
      ~stabilize:false ()
  in
  let raws =
    List.map (fun test -> Benchmark.all cfg instances (Test.make_grouped ~name:"" [ test ])) tests
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let rows =
    List.concat_map
      (fun raw ->
        let results = Analyze.all ols Instance.monotonic_clock raw in
        Hashtbl.fold
          (fun name est acc ->
            let time_ns =
              match Analyze.OLS.estimates est with
              | Some (t :: _) -> t
              | Some [] | None -> nan
            in
            let r2 =
              match Analyze.OLS.r_square est with Some r -> r | None -> nan
            in
            let name =
              if String.length name > 0 && name.[0] = '/' then
                String.sub name 1 (String.length name - 1)
              else name
            in
            [ name;
              Printf.sprintf "%.3f ms" (time_ns /. 1e6);
              Printf.sprintf "%.4f" r2 ]
            :: acc)
          results [])
      raws
  in
  let rows = List.sort compare rows in
  Table.print ~header:[ "benchmark"; "time/run"; "r²" ] rows;
  print_newline ()

let () =
  (* The reproduction itself runs under one engine: the selected one, or
     the default (incr) when comparing both. *)
  (match cost_engine with
  | `Full -> Trg_place.Cost.set_engine Trg_place.Cost.Full
  | `Incr | `Both -> Trg_place.Cost.set_engine Trg_place.Cost.Incr);
  let opts =
    if quick then { Report.quick_options with jobs }
    else
      { Report.default_options with print_cdf = true; print_points = true; jobs }
  in
  print_endline "trgplace reproduction: Gloy, Blackwell, Smith, Calder —";
  print_endline "\"Procedure Placement Using Temporal Ordering Information\" (MICRO-30, 1997)";
  Printf.printf "mode: %s\n" (if quick then "quick" else "full (paper-faithful)");
  (match Report.all opts with
  | [] -> ()
  | failures ->
    Report.print_summary failures;
    exit 3);
  (match cost_engine with `Both -> compare_engines () | `Full | `Incr -> ());
  run_benchmarks ()
