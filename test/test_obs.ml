(* Telemetry subsystem: JSON codec, metric semantics, span nesting and
   allocation accounting, manifest structure, and the integration with the
   failure-isolating batch runner. *)

module Json = Trg_obs.Json
module Metrics = Trg_obs.Metrics
module Span = Trg_obs.Span
module Manifest = Trg_obs.Manifest
module Perf = Trg_obs.Perf
module Fault = Trg_util.Fault
module Report = Trg_eval.Report
module Runner = Trg_eval.Runner
module Perfrun = Trg_eval.Perfrun
module Journal = Trg_obs.Journal

(* --- JSON ------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
        ( "values",
          Json.List
            [
              Json.Int (-3);
              Json.Float 2.5;
              Json.String "quote \" backslash \\ newline \n tab \t";
              Json.Bool true;
              Json.Bool false;
              Json.Null;
            ] );
        ("nested", Json.Obj [ ("k", Json.List [ Json.Obj [ ("n", Json.Int 1) ] ]) ]);
      ]
  in
  (match Json.of_string (Json.to_string doc) with
  | Ok parsed -> Alcotest.(check bool) "compact roundtrip" true (parsed = doc)
  | Error msg -> Alcotest.fail msg);
  match Json.of_string (Json.to_string ~indent:2 doc) with
  | Ok parsed -> Alcotest.(check bool) "pretty roundtrip" true (parsed = doc)
  | Error msg -> Alcotest.fail msg

let test_json_numbers () =
  (match Json.of_string "[0, -12, 3.5, 1e3, 2.5e-1]" with
  | Ok (Json.List [ Json.Int 0; Json.Int (-12); Json.Float 3.5; Json.Float 1000.; Json.Float 0.25 ]) ->
    ()
  | Ok other -> Alcotest.failf "unexpected parse: %s" (Json.to_string other)
  | Error msg -> Alcotest.fail msg);
  (* Integral floats print with a trailing ".0" and parse back as floats,
     so counter-vs-gauge distinctions survive a roundtrip. *)
  Alcotest.(check string) "integral float" "[1.0]" (Json.to_string (Json.List [ Json.Float 1. ]))

let test_json_errors () =
  let expect_error s =
    match Json.of_string s with
    | Ok v -> Alcotest.failf "parsed %S as %s" s (Json.to_string v)
    | Error _ -> ()
  in
  List.iter expect_error
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2"; "{\"a\":}" ]

let test_json_accessors () =
  let doc = Json.Obj [ ("a", Json.Int 3); ("b", Json.Float 1.5) ] in
  Alcotest.(check (option int)) "member+to_int" (Some 3) (Option.bind (Json.member "a" doc) Json.to_int);
  Alcotest.(check (option (float 1e-9))) "int as float" (Some 3.) (Option.bind (Json.member "a" doc) Json.to_float);
  Alcotest.(check (option int)) "float not int" None (Option.bind (Json.member "b" doc) Json.to_int);
  Alcotest.(check (option int)) "missing member" None (Option.bind (Json.member "c" doc) Json.to_int)

(* --- metrics --------------------------------------------------------- *)

let test_counter_semantics () =
  let c = Metrics.counter "t.sem/counter" in
  let base = Metrics.value c in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr + add" (base + 42) (Metrics.value c);
  let c' = Metrics.counter "t.sem/counter" in
  Metrics.incr c';
  Alcotest.(check int) "registration is idempotent" (base + 43) (Metrics.value c)

let test_gauge_semantics () =
  let g = Metrics.gauge "t.sem/gauge" in
  Metrics.set_gauge g 2.0;
  Metrics.max_gauge g 1.0;
  Alcotest.(check (float 1e-9)) "max keeps larger" 2.0 (Metrics.gauge_value g);
  Metrics.max_gauge g 5.0;
  Alcotest.(check (float 1e-9)) "max advances" 5.0 (Metrics.gauge_value g);
  Metrics.set_gauge g 0.5;
  Alcotest.(check (float 1e-9)) "set overwrites" 0.5 (Metrics.gauge_value g)

let test_histogram_semantics () =
  let h = Metrics.histogram ~limits:[| 1.; 10.; 100. |] "t.sem/hist" in
  List.iter (Metrics.observe h) [ 0.5; 1.; 7.; 10.; 99.; 100.; 101.; 1e9 ];
  Alcotest.(check (array int)) "bucket occupancy" [| 2; 2; 2; 2 |] (Metrics.histogram_counts h);
  Alcotest.(check int) "total" 8 (Metrics.histogram_total h)

let test_metric_kind_clash () =
  ignore (Metrics.counter "t.sem/clash");
  (match Metrics.gauge "t.sem/clash" with
  | (_ : Metrics.gauge) -> Alcotest.fail "gauge on a counter name succeeded"
  | exception Invalid_argument _ -> ());
  match Metrics.histogram "t.sem/clash" with
  | (_ : Metrics.histogram) -> Alcotest.fail "histogram on a counter name succeeded"
  | exception Invalid_argument _ -> ()

let test_metrics_clear () =
  let c = Metrics.counter "t.sem/clearable" in
  Metrics.add c 7;
  Metrics.clear ();
  Alcotest.(check int) "cleared to zero" 0 (Metrics.value c);
  Metrics.incr c;
  Alcotest.(check int) "handle survives clear" 1 (Metrics.value c)

(* Prefix-scoped snapshots are deterministic byte-for-byte: sorted names,
   stable float rendering.  Scoping to a test-owned prefix keeps the golden
   string independent of whatever the instrumented libraries counted. *)
let test_snapshot_golden () =
  Metrics.clear ();
  Metrics.add (Metrics.counter "t.golden/beta") 40;
  Metrics.add (Metrics.counter "t.golden/alpha") 3;
  Metrics.set_gauge (Metrics.gauge "t.golden/gamma") 2.5;
  let h = Metrics.histogram ~limits:[| 1.; 10. |] "t.golden/hist" in
  List.iter (Metrics.observe h) [ 0.5; 5.; 100. ];
  Alcotest.(check string) "golden snapshot"
    ("{\"counters\":{\"t.golden/alpha\":3,\"t.golden/beta\":40},"
   ^ "\"gauges\":{\"t.golden/gamma\":2.5},"
   ^ "\"histograms\":{\"t.golden/hist\":"
   ^ "{\"limits\":[1.0,10.0],\"counts\":[1,1,1],\"total\":3}}}")
    (Json.to_string (Metrics.to_json ~prefix:"t.golden/" ()))

(* --- spans ----------------------------------------------------------- *)

let with_spans f =
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.reset ())
    (fun () ->
      Span.set_enabled true;
      Span.reset ();
      f ())

let test_span_disabled_is_transparent () =
  Span.set_enabled false;
  Span.reset ();
  Alcotest.(check int) "result passes through" 7 (Span.with_ "ghost" (fun () -> 7));
  Alcotest.(check int) "nothing recorded" 0 (List.length (Span.records ()))

let test_span_nesting_and_order () =
  with_spans (fun () ->
      let v =
        Span.with_ "a" (fun () ->
            let x = Span.with_ "b" (fun () -> 1) in
            let y = Span.with_ "c" (fun () -> 2) in
            x + y)
      in
      Alcotest.(check int) "value" 3 v;
      match Span.records () with
      | [ b; c; a ] ->
        Alcotest.(check string) "inner completes first" "b" b.Span.name;
        Alcotest.(check string) "then sibling" "c" c.Span.name;
        Alcotest.(check string) "parent completes last" "a" a.Span.name;
        Alcotest.(check string) "nested path" "a/b" b.Span.path;
        Alcotest.(check string) "sibling path" "a/c" c.Span.path;
        Alcotest.(check string) "root path" "a" a.Span.path;
        Alcotest.(check int) "child depth" 1 b.Span.depth;
        Alcotest.(check int) "root depth" 0 a.Span.depth;
        List.iter
          (fun r ->
            Alcotest.(check bool)
              (r.Span.name ^ " finished") true
              (r.Span.outcome = Span.Finished))
          [ b; c; a ]
      | records -> Alcotest.failf "expected 3 records, got %d" (List.length records))

let test_span_failure_outcome () =
  with_spans (fun () ->
      (match Span.with_ "outer" (fun () -> Span.with_ "boom" (fun () -> failwith "kaput")) with
      | (_ : int) -> Alcotest.fail "exception swallowed"
      | exception Failure msg -> Alcotest.(check string) "exception intact" "kaput" msg);
      match Span.records () with
      | [ boom; outer ] ->
        Alcotest.(check bool) "inner failed" true (boom.Span.outcome = Span.Failed);
        Alcotest.(check string) "inner path" "outer/boom" boom.Span.path;
        Alcotest.(check bool) "outer failed too" true (outer.Span.outcome = Span.Failed)
      | records -> Alcotest.failf "expected 2 records, got %d" (List.length records))

let test_span_alloc_monotone () =
  with_spans (fun () ->
      (* Minor-heap allocation: [Gc.quick_stat] reads the young pointer, so
         small blocks show up immediately (a single large array would sit in
         the major heap uncounted until the next slice). *)
      let sink = ref [] in
      ignore
        (Span.with_ "outer" (fun () ->
             ignore
               (Span.with_ "inner" (fun () ->
                    sink := List.init 20_000 (fun i -> float_of_int i +. 0.5)));
             Sys.opaque_identity !sink));
      match Span.records () with
      | [ inner; outer ] ->
        Alcotest.(check bool) "inner allocated its list" true
          (inner.Span.alloc_words >= 50_000.);
        Alcotest.(check bool) "parent includes child allocation" true
          (outer.Span.alloc_words >= inner.Span.alloc_words);
        Alcotest.(check bool) "wall times non-negative" true
          (inner.Span.wall_s >= 0. && outer.Span.wall_s >= 0.
          && outer.Span.wall_s >= inner.Span.wall_s)
      | records -> Alcotest.failf "expected 2 records, got %d" (List.length records))

(* --- manifests ------------------------------------------------------- *)

let test_manifest_roundtrip () =
  with_spans (fun () ->
      ignore (Span.with_ "unit" (fun () -> ()));
      let manifest =
        Manifest.build ~command:"unit-test" ~argv:[ "trgplace"; "unit-test" ]
          ~config:[ ("quick", Json.Bool true) ]
          ~status:Manifest.Ok ~exit_code:0 ()
      in
      (match Manifest.validate manifest with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      let path = Filename.temp_file "trgplace_manifest" ".json" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Manifest.write path manifest;
          match Manifest.load path with
          | Error msg -> Alcotest.fail msg
          | Ok loaded ->
            Alcotest.(check bool) "disk roundtrip" true (loaded = manifest);
            Alcotest.(check (option string)) "command" (Some "unit-test")
              (Option.bind (Json.member "command" loaded) Json.to_string_opt);
            Alcotest.(check bool) "peak heap recorded" true
              (match
                 Option.bind (Json.member "gc" loaded) (Json.member "top_heap_words")
                 |> Fun.flip Option.bind Json.to_int
               with
              | Some words -> words > 0
              | None -> false)))

let test_manifest_validate_rejects () =
  let reject label json =
    match Manifest.validate json with
    | Ok () -> Alcotest.failf "%s: validated" label
    | Error _ -> ()
  in
  reject "not an object" (Json.Int 3);
  reject "missing schema" (Json.Obj [ ("command", Json.String "x") ]);
  reject "wrong schema"
    (Json.Obj [ ("schema", Json.String "trgplace-manifest/999") ]);
  match
    Manifest.validate
      (Manifest.build ~command:"x" ~status:Manifest.Failed ~exit_code:1 ())
  with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* Schema evolution: current manifests carry the v2 marker, but v1
   manifests written by older builds must keep validating, and the
   optional explain member must be an object when present. *)
let test_manifest_schema_versions () =
  let current = Manifest.build ~command:"x" ~status:Manifest.Ok ~exit_code:0 () in
  Alcotest.(check (option string)) "current schema is v2"
    (Some Manifest.schema)
    (Option.bind (Json.member "schema" current) Json.to_string_opt);
  let as_v1 =
    match current with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (function
             | "schema", _ -> ("schema", Json.String Manifest.v1_schema)
             | kv -> kv)
           fields)
    | _ -> Alcotest.fail "manifest is not an object"
  in
  (match Manifest.validate as_v1 with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "v1 manifest rejected: %s" msg);
  let explained =
    Manifest.build ~command:"x"
      ~explain:(Json.Obj [ ("layouts", Json.List []) ])
      ~status:Manifest.Ok ~exit_code:0 ()
  in
  (match Manifest.validate explained with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "explain member rejected: %s" msg);
  match
    Manifest.validate
      (match explained with
      | Json.Obj fields ->
        Json.Obj
          (List.map
             (function
               | "explain", _ -> ("explain", Json.Int 3)
               | kv -> kv)
             fields)
      | _ -> Alcotest.fail "manifest is not an object")
  with
  | Ok () -> Alcotest.fail "non-object explain validated"
  | Error _ -> ()

(* --- regression diffing ---------------------------------------------- *)

let manifest_with ?(counters = []) ?(gauges = []) ?(totals = []) () =
  Json.Obj
    [
      ("schema", Json.String Manifest.schema);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) gauges));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.Obj [ ("total", Json.Int v) ]))
             totals) );
      (* Non-deterministic members that diff must ignore. *)
      ("gc", Json.Obj [ ("minor_words", Json.Float 1e9) ]);
      ("spans", Json.List [ Json.Obj [ ("wall_s", Json.Float 99.) ] ]);
    ]

let test_manifest_diff () =
  let base =
    manifest_with
      ~counters:[ ("sim/misses", 100); ("gone", 1) ]
      ~gauges:[ ("peak", 2.0) ] ~totals:[ ("lat", 50) ] ()
  in
  let same =
    manifest_with
      ~counters:[ ("sim/misses", 100); ("gone", 1) ]
      ~gauges:[ ("peak", 2.0) ] ~totals:[ ("lat", 50) ] ()
  in
  Alcotest.(check int) "identical manifests do not drift" 0
    (List.length (Manifest.diff base same));
  let current =
    manifest_with
      ~counters:[ ("sim/misses", 103); ("fresh", 7) ]
      ~gauges:[ ("peak", 2.0) ] ~totals:[ ("lat", 50) ] ()
  in
  let drifts = Manifest.diff base current in
  let metrics = List.map (fun d -> d.Manifest.metric) drifts in
  Alcotest.(check (list string)) "drifted metrics, sorted"
    [ "counters/fresh"; "counters/gone"; "counters/sim/misses" ] metrics;
  let by_name n = List.find (fun d -> d.Manifest.metric = n) drifts in
  Alcotest.(check (float 1e-9)) "relative delta" 0.03
    (by_name "counters/sim/misses").Manifest.rel;
  Alcotest.(check bool) "one-sided metrics are infinite drift" true
    ((by_name "counters/fresh").Manifest.rel = infinity
    && (by_name "counters/gone").Manifest.rel = infinity
    && (by_name "counters/fresh").Manifest.base = None
    && (by_name "counters/gone").Manifest.current = None);
  (* Tolerance suppresses small drift but never one-sided metrics. *)
  let tolerated = Manifest.diff ~tolerance:0.05 base current in
  Alcotest.(check (list string)) "tolerance keeps only one-sided"
    [ "counters/fresh"; "counters/gone" ]
    (List.map (fun d -> d.Manifest.metric) tolerated);
  (* GC and span noise alone never drifts. *)
  Alcotest.(check int) "noise-only manifests agree" 0
    (List.length (Manifest.diff (manifest_with ()) (manifest_with ())))

(* --- Chrome trace export --------------------------------------------- *)

let test_chrome_trace_export () =
  with_spans (fun () ->
      ignore
        (Span.with_ "outer" (fun () -> Span.with_ "inner" (fun () -> 1 + 1)));
      let records = Span.records () in
      List.iter
        (fun r ->
          Alcotest.(check bool)
            (r.Span.name ^ " has a start offset") true (r.Span.start_s >= 0.))
        records;
      let trace = Span.to_chrome () in
      let all_events =
        match Json.member "traceEvents" trace with
        | Some (Json.List l) -> l
        | _ -> Alcotest.fail "no traceEvents member"
      in
      (* Besides the complete events, the trace carries "M" metadata
         events naming each lane (here just the main process). *)
      let events =
        List.filter
          (fun e -> Json.member "ph" e = Some (Json.String "X"))
          all_events
      in
      Alcotest.(check int) "one complete event per span" (List.length records)
        (List.length events);
      List.iter
        (fun e ->
          let non_negative k =
            match Option.bind (Json.member k e) Json.to_float with
            | Some x -> x >= 0.
            | None -> false
          in
          Alcotest.(check bool) "ts and dur in microseconds" true
            (non_negative "ts" && non_negative "dur"))
        events;
      (* A parent's [ts, ts+dur] interval must contain its child's. *)
      let find name =
        List.find
          (fun e -> Json.member "name" e = Some (Json.String name))
          events
      in
      let bounds e =
        let f k =
          match Option.bind (Json.member k e) Json.to_float with
          | Some x -> x
          | None -> Alcotest.fail "missing timing field"
        in
        (f "ts", f "ts" +. f "dur")
      in
      let t0_inner, t1_inner = bounds (find "inner") in
      let t0_outer, t1_outer = bounds (find "outer") in
      Alcotest.(check bool) "nesting preserved" true
        (t0_outer <= t0_inner && t1_inner <= t1_outer))

(* A trace with spans injected under worker lanes must render each lane
   as its own Chrome thread: distinct tids, the real pid, and metadata
   events naming every lane. *)
let test_chrome_distinct_lanes () =
  with_spans (fun () ->
      ignore (Span.with_ "main-work" (fun () -> ()));
      let base = Span.records () in
      Span.inject ~lane:1 base;
      Span.inject ~lane:2 base;
      let events =
        match Json.member "traceEvents" (Span.to_chrome ()) with
        | Some (Json.List l) -> l
        | _ -> Alcotest.fail "no traceEvents member"
      in
      let phase p e = Json.member "ph" e = Some (Json.String p) in
      let int_of k e =
        match Option.bind (Json.member k e) Json.to_int with
        | Some v -> v
        | None -> Alcotest.failf "event without %s" k
      in
      let complete = List.filter (phase "X") events in
      Alcotest.(check (list int)) "one tid per lane, 0 for main" [ 0; 1; 2 ]
        (List.sort_uniq compare (List.map (int_of "tid") complete));
      List.iter
        (fun e ->
          Alcotest.(check int) "real pid" (Unix.getpid ()) (int_of "pid" e))
        complete;
      let lane_names =
        List.filter (phase "M") events
        |> List.filter_map (fun e ->
               Option.bind (Json.member "args" e) (Json.member "name"))
        |> List.filter_map Json.to_string_opt
        |> List.sort compare
      in
      Alcotest.(check (list string)) "metadata names every lane"
        [ "main"; "worker 1"; "worker 2" ] lane_names)

(* --- the performance ledger ------------------------------------------ *)

let stat median mad = { Perf.median; mad }

let perf_record ?(rev = "deadbee") ?(counters = []) benches =
  {
    Perf.rev;
    time_s = 0.;
    config_crc = "00000000";
    reps = 3;
    benches =
      List.sort
        (fun a b -> compare a.Perf.b_name b.Perf.b_name)
        (List.map
           (fun (name, wall) ->
             { Perf.b_name = name; wall_s = wall; alloc_w = stat 1000. 0. })
           benches);
    counters = List.sort compare counters;
  }

let with_temp_ledger f =
  let path = Filename.temp_file "trgplace_ledger" ".jsonl" in
  (* [Perf] treats a missing file as an empty ledger; start from that. *)
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_perf_ledger_roundtrip () =
  with_temp_ledger (fun path ->
      Alcotest.(check bool) "missing file is an empty ledger" true
        (Perf.load path = ([], []));
      let r1 =
        perf_record ~rev:"aaa1111"
          ~counters:[ ("pool/units_ok", 8); ("sim/accesses", 435643) ]
          [ ("small/gbsc-incr", stat 0.5 0.01); ("small/sim-test", stat 0.25 0.) ]
      in
      let r2 = perf_record ~rev:"bbb2222" [ ("small/gbsc-incr", stat 0.5 0.02) ] in
      Perf.append path r1;
      Perf.append path r2;
      let records, skipped = Perf.load path in
      Alcotest.(check int) "no damage" 0 (List.length skipped);
      Alcotest.(check bool) "records roundtrip in file order" true
        (records = [ r1; r2 ]))

let test_perf_ledger_recovery () =
  with_temp_ledger (fun path ->
      let r rev m = perf_record ~rev [ ("u", stat m 0.) ] in
      let r1 = r "aaa0001" 1. and r2 = r "bbb0002" 2. in
      let r3 = r "ccc0003" 3. and r4 = r "ddd0004" 4. in
      (* The line wrapper is [{"crc":"<hex8>",...], so index 8 is the
         first crc hex digit: flipping it keeps the line valid JSON with
         a well-formed but wrong checksum. *)
      let flip_crc line =
        let b = Bytes.of_string line in
        Bytes.set b 8 (if Bytes.get b 8 = '0' then '1' else '0');
        Bytes.to_string b
      in
      let l4 = Perf.line_of_record r4 in
      let oc = open_out path in
      output_string oc (Perf.line_of_record r1 ^ "\n");
      output_string oc (flip_crc (Perf.line_of_record r2) ^ "\n");
      output_string oc (Perf.line_of_record r3 ^ "\n");
      (* A torn final append: half a line, no newline. *)
      output_string oc (String.sub l4 0 (String.length l4 / 2));
      close_out oc;
      let records, skipped = Perf.load path in
      Alcotest.(check bool) "intact records survive around damage" true
        (records = [ r1; r3 ]);
      (match skipped with
      | [
       { Perf.line = 2; fault = Fault.Checksum_mismatch _ };
       { Perf.line = 4; fault = Fault.Truncated _ };
      ] ->
        ()
      | other ->
        Alcotest.failf "unexpected skip list (%d entries)" (List.length other));
      (* Appending after the torn tail must start a fresh line, not glue
         onto the damage. *)
      Perf.append path r4;
      let records, skipped = Perf.load path in
      Alcotest.(check bool) "append after damage recovers" true
        (records = [ r1; r3; r4 ]);
      Alcotest.(check int) "old damage still reported" 2 (List.length skipped))

(* Band arithmetic at the exact edge, with binary-exact constants:
   history wall median 1.0 / MAD 0.25, mad_factor 2, min_band 0.25
   => limit = 1.0 * 1.25 + 2 * 0.25 = 1.75 with no rounding anywhere. *)
let test_perf_gate_band_edge () =
  let history =
    List.map
      (fun rev ->
        perf_record ~rev ~counters:[ ("sim/misses", 100) ]
          [ ("u", stat 1. 0.25) ])
      [ "r1"; "r2"; "r3"; "r4"; "r5" ]
  in
  let gate ?counter_tolerance current =
    Perf.gate ~window:5 ~mad_factor:2. ~min_band:0.25 ?counter_tolerance
      ~history current
  in
  let at m = perf_record ~counters:[ ("sim/misses", 100) ] [ ("u", stat m 0.) ] in
  let wall verdicts =
    List.find
      (fun v -> v.Perf.v_bench = "u" && v.Perf.v_metric = "wall_s")
      verdicts
  in
  let v = gate (at 1.75) in
  let w = wall v in
  Alcotest.(check (float 0.)) "baseline is the window median" 1. w.Perf.v_baseline;
  Alcotest.(check (float 0.)) "limit" 1.75 w.Perf.v_limit;
  Alcotest.(check bool) "at the edge passes" true w.Perf.v_ok;
  Alcotest.(check int) "nothing regressed" 0 (List.length (Perf.regressions v));
  let v = gate (at 1.8125) in
  Alcotest.(check bool) "over the edge fails" false (wall v).Perf.v_ok;
  (match Perf.regressions v with
  | [ reg ] ->
    Alcotest.(check string) "regression names the bench" "u" reg.Perf.v_bench;
    Alcotest.(check string) "and the metric" "wall_s" reg.Perf.v_metric
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  (* Counters gate exactly by default; a tolerance admits small drift. *)
  let drifted =
    perf_record ~counters:[ ("sim/misses", 101) ] [ ("u", stat 1. 0.) ]
  in
  let counter verdicts =
    List.find (fun v -> v.Perf.v_metric = "counter") verdicts
  in
  Alcotest.(check bool) "counter drift fails at default tolerance" false
    (counter (gate drifted)).Perf.v_ok;
  Alcotest.(check bool) "tolerance admits small counter drift" true
    (counter (gate ~counter_tolerance:0.02 drifted)).Perf.v_ok;
  (* No history, no verdict: a brand-new bench cannot regress. *)
  Alcotest.(check int) "unknown bench is skipped" 0
    (List.length (Perf.gate ~history (perf_record [ ("brand-new", stat 9. 0.) ])))

(* The deterministic counters in a ledger record must not depend on the
   pool's job count — that is what lets the CI gate hold them exactly
   across runner machines. *)
let test_perf_counters_jobs_invariant () =
  let j1 = Perfrun.measure ~reps:1 ~jobs:1 ~rev:"test" ~time_s:0. () in
  let j2 = Perfrun.measure ~reps:1 ~jobs:2 ~rev:"test" ~time_s:0. () in
  Alcotest.(check bool) "counters were captured" true
    (List.length j1.Perf.counters > 0);
  Alcotest.(check bool) "sim work recorded" true
    (List.mem_assoc "sim/accesses" j1.Perf.counters);
  Alcotest.(check bool) "counters are jobs-invariant" true
    (j1.Perf.counters = j2.Perf.counters);
  Alcotest.(check (list string)) "one stat row per unit"
    (List.sort compare (Perfrun.unit_names ()))
    (List.map (fun b -> b.Perf.b_name) j1.Perf.benches)

(* --- integration with the batch runner ------------------------------- *)

(* A benchmark whose preparation fails (here via --force-fail injection)
   must surface in the manifest as a span with outcome "failed". *)
let test_failed_benchmark_in_manifest () =
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.reset ())
    (fun () ->
      Span.set_enabled true;
      Span.reset ();
      let options =
        { Report.quick_options with keep_going = true; force_fail = [ "small" ] }
      in
      let failures = Report.table1 options in
      Alcotest.(check int) "one isolated failure" 1 (List.length failures);
      let failed_span =
        List.find_opt
          (fun r -> r.Span.name = "small" && r.Span.outcome = Span.Failed)
          (Span.records ())
      in
      Alcotest.(check bool) "failed span recorded" true (failed_span <> None);
      let manifest =
        Manifest.build ~command:"table1" ~argv:[ "trgplace"; "table1" ]
          ~status:Manifest.Partial ~exit_code:3 ()
      in
      let path = Filename.temp_file "trgplace_manifest" ".json" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Manifest.write path manifest;
          let loaded =
            match Manifest.load path with
            | Ok j -> j
            | Error msg -> Alcotest.fail msg
          in
          (match Manifest.validate loaded with
          | Ok () -> ()
          | Error msg -> Alcotest.fail msg);
          Alcotest.(check (option string)) "status" (Some "partial-failure")
            (Option.bind (Json.member "status" loaded) Json.to_string_opt);
          let spans =
            match Option.bind (Json.member "spans" loaded) Json.to_list with
            | Some spans -> spans
            | None -> Alcotest.fail "manifest has no spans"
          in
          let failed_bench s =
            Json.member "name" s = Some (Json.String "small")
            && Json.member "outcome" s = Some (Json.String "failed")
          in
          Alcotest.(check bool) "manifest carries the failed benchmark" true
            (List.exists failed_bench spans)))

(* After a successful quick experiment, the work counters the acceptance
   criteria name (cache-sim misses, GBSC merge steps) must be non-zero. *)
let test_counters_populated_by_run () =
  let misses = Metrics.counter "sim/misses" in
  let merge_steps = Metrics.counter "gbsc/merge_steps" in
  let before_misses = Metrics.value misses in
  let before_merges = Metrics.value merge_steps in
  let failures = Report.table1 Report.quick_options in
  Alcotest.(check int) "clean run" 0 (List.length failures);
  Alcotest.(check bool) "cache-sim misses counted" true
    (Metrics.value misses > before_misses);
  (* Table 1 only characterizes; placement work needs a placement. *)
  let prepared = Runner.prepare (Trg_synth.Bench.find "small") in
  ignore (Trg_place.Gbsc.place (Runner.program prepared) prepared.Runner.prof);
  Alcotest.(check bool) "GBSC merge steps counted" true
    (Metrics.value merge_steps > before_merges)

(* --- the merge-decision journal --------------------------------------- *)

(* Recording is a process-global state machine (like Prof): arm names the
   capture, the first matching begin_run owns it, finish seals and
   disarms, take hands the journal over exactly once. *)
let test_journal_state_machine () =
  Fun.protect ~finally:Journal.reset (fun () ->
      Journal.reset ();
      Alcotest.(check bool) "idle by default" false (Journal.recording ());
      Alcotest.(check bool) "unarmed begin_run refuses" false
        (Journal.begin_run ~algo:"gbsc" ~engine:"incr" ~cache:(8192, 32, 1));
      Journal.arm ~algo:"gbsc" ~source:"small";
      Alcotest.(check bool) "non-matching algo refuses" false
        (Journal.begin_run ~algo:"ph" ~engine:"incr" ~cache:(0, 0, 0));
      Alcotest.(check bool) "matching algo starts the capture" true
        (Journal.begin_run ~algo:"gbsc" ~engine:"incr" ~cache:(8192, 32, 1));
      Alcotest.(check bool) "recording" true (Journal.recording ());
      (* HKC drives GBSC's machinery: an inner begin_run while a capture is
         open must not steal or restart it. *)
      Alcotest.(check bool) "no nested capture" false
        (Journal.begin_run ~algo:"gbsc" ~engine:"incr" ~cache:(8192, 32, 1));
      Journal.record ~u:0 ~v:2 ~weight:10. ~size_u:1 ~size_v:1
        ~runner_up:{ Journal.r_u = 1; r_v = 2; r_weight = 4. }
        ();
      Journal.annotate ~shift:3 ~cost:0.5;
      Journal.record ~u:0 ~v:1 ~weight:4. ~size_u:2 ~size_v:1 ();
      Journal.finish ~layout_crc:0xDEAD;
      Alcotest.(check bool) "finish stops recording" false (Journal.recording ());
      (* A straggler record after the seal must not corrupt the capture. *)
      Journal.record ~u:7 ~v:9 ~weight:1. ~size_u:1 ~size_v:1 ();
      let j =
        match Journal.take () with
        | Some j -> j
        | None -> Alcotest.fail "no journal captured"
      in
      Alcotest.(check bool) "take clears" true (Journal.take () = None);
      Alcotest.(check int) "two decisions" 2 (Array.length j.Journal.decisions);
      let d0 = j.Journal.decisions.(0) and d1 = j.Journal.decisions.(1) in
      Alcotest.(check int) "steps are 0-based ordinals" 0 d0.Journal.step;
      Alcotest.(check bool) "annotate lands on the open decision" true
        (d0.Journal.shift = Some 3 && d0.Journal.shift_cost = Some 0.5);
      Alcotest.(check bool) "later decision untouched by annotate" true
        (d1.Journal.shift = None && d1.Journal.runner_up = None);
      Alcotest.(check int) "layout crc claimed" 0xDEAD
        j.Journal.claims.Journal.layout_crc;
      Alcotest.(check (float 0.)) "total weight is the ordered sum" 14.
        j.Journal.claims.Journal.total_weight;
      Alcotest.(check string) "meta records the matched algo" "gbsc"
        j.Journal.meta.Journal.algo;
      Alcotest.(check string) "meta records the armed source" "small"
        j.Journal.meta.Journal.source;
      (* finish disarmed the journal: the next placement is not captured. *)
      Alcotest.(check bool) "finish disarms" false
        (Journal.begin_run ~algo:"gbsc" ~engine:"incr" ~cache:(8192, 32, 1)))

let test_journal_abort () =
  Fun.protect ~finally:Journal.reset (fun () ->
      Journal.reset ();
      Journal.arm ~algo:"ph" ~source:"small";
      Alcotest.(check bool) "capture starts" true
        (Journal.begin_run ~algo:"ph" ~engine:"incr" ~cache:(0, 0, 0));
      Journal.record ~u:0 ~v:1 ~weight:1. ~size_u:1 ~size_v:1 ();
      Journal.abort ();
      Alcotest.(check bool) "abort stops recording" false (Journal.recording ());
      Alcotest.(check bool) "abort captures nothing" true (Journal.take () = None))

let with_temp_journal f =
  let path = Filename.temp_file "trgplace_journal" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* A fixture with floats that decimal rendering would mangle: 0.1, 1/3 and
   1/7 have no finite decimal representation, so they only survive the
   file format if weights really are serialized as hex literals. *)
let journal_fixture () =
  let d step d_u d_v weight size_u size_v runner_up shift shift_cost =
    { Journal.step; d_u; d_v; weight; size_u; size_v; runner_up; shift;
      shift_cost }
  in
  let decisions =
    [|
      d 0 0 3 0.1 1 1
        (Some { Journal.r_u = 1; r_v = 2; r_weight = 1. /. 3. })
        (Some 5)
        (Some (1. /. 7.));
      d 1 0 1 (1. /. 3.) 2 1 None None None;
    |]
  in
  {
    Journal.meta =
      { Journal.algo = "gbsc"; source = "small"; engine = "incr";
        cache_size = 8192; cache_line = 32; cache_assoc = 1 };
    decisions;
    claims =
      { Journal.layout_crc = 0x1234ABCD;
        total_weight = Journal.total_weight decisions };
  }

let test_journal_roundtrip () =
  with_temp_journal (fun path ->
      let j = journal_fixture () in
      Journal.save path j;
      let j' = Journal.load path in
      Alcotest.(check bool) "journal roundtrips structurally" true (j' = j);
      Alcotest.(check bool) "awkward floats come back bit-exact" true
        (j'.Journal.decisions.(0).Journal.weight = 0.1
        && j'.Journal.decisions.(1).Journal.weight = 1. /. 3.
        && j'.Journal.decisions.(0).Journal.shift_cost = Some (1. /. 7.)))

(* Every fault class the loader promises, produced by corrupting a real
   save the way each failure would happen in the field. *)
let test_journal_fault_matrix () =
  with_temp_journal (fun path ->
      let j = journal_fixture () in
      Journal.save path j;
      let original =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let write s =
        let oc = open_out_bin path in
        output_string oc s;
        close_out oc
      in
      let check_fault label content pred =
        write content;
        match Journal.load_result path with
        | Ok _ -> Alcotest.failf "%s: corrupted journal loaded" label
        | Error e ->
          if not (pred e) then
            Alcotest.failf "%s: unexpected fault %s" label (Fault.to_string e)
      in
      (* Wrong artifact kind: another tool's magic word. *)
      check_fault "bad magic"
        ("trgplace-ledger" ^ String.sub original 16 (String.length original - 16))
        (function Fault.Bad_magic _ -> true | _ -> false);
      (* A future format version this build does not know. *)
      check_fault "unsupported version"
        (let nl = String.index original '\n' in
         "trgplace-journal 9 2" ^ String.sub original nl (String.length original - nl))
        (function Fault.Unsupported_version _ -> true | _ -> false);
      (* One flipped digit in the claims line: still parseable, so only the
         CRC trailer can catch it. *)
      check_fault "checksum mismatch"
        (let rec find k =
           if String.sub original k 7 = "claims " then k + 7 else find (k + 1)
         in
         let i = find 0 in
         let b = Bytes.of_string original in
         Bytes.set b i (if Bytes.get b i = '9' then '8' else '9');
         Bytes.to_string b)
        (function Fault.Checksum_mismatch _ -> true | _ -> false);
      (* A torn write: the trailer line never made it to disk. *)
      check_fault "truncated"
        (let no_nl = String.sub original 0 (String.length original - 1) in
         String.sub original 0 (String.rindex no_nl '\n' + 1))
        (function Fault.Truncated _ -> true | _ -> false);
      (* Structural damage to a record line. *)
      check_fault "bad record"
        (let rec find k =
           if String.sub original k 2 = "d " then k else find (k + 1)
         in
         let i = find 0 in
         let b = Bytes.of_string original in
         Bytes.set b i 'x';
         Bytes.to_string b)
        (function Fault.Bad_record _ -> true | _ -> false);
      (* And the untouched original still loads. *)
      write original;
      match Journal.load_result path with
      | Ok j' -> Alcotest.(check bool) "pristine journal loads" true (j' = j)
      | Error e -> Alcotest.failf "pristine journal rejected: %s" (Fault.to_string e))

(* Manifest schema v3: the optional journal member must be an object when
   present, and v2 manifests (which cannot carry one) must keep
   validating. *)
let test_manifest_journal_member () =
  let rewrite key v = function
    | Json.Obj fields ->
      Json.Obj (List.map (function k, _ when k = key -> (k, v) | kv -> kv) fields)
    | _ -> Alcotest.fail "manifest is not an object"
  in
  let with_journal =
    Manifest.build ~command:"explain"
      ~journal:
        (Json.Obj
           [
             ("schema", Json.String Journal.schema);
             ("path", Json.String "gbsc.journal");
             ("steps", Json.Int 25);
           ])
      ~status:Manifest.Ok ~exit_code:0 ()
  in
  (match Manifest.validate with_journal with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "journal member rejected: %s" msg);
  (match Manifest.validate (rewrite "journal" (Json.Int 3) with_journal) with
  | Ok () -> Alcotest.fail "non-object journal member validated"
  | Error _ -> ());
  let plain = Manifest.build ~command:"x" ~status:Manifest.Ok ~exit_code:0 () in
  match
    Manifest.validate (rewrite "schema" (Json.String Manifest.v2_schema) plain)
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "v2 manifest rejected: %s" msg

(* The observability bargain: a run that enables neither --profile nor a
   journal pays one branch on the hot path and leaves NO trace in the
   metric registry — so its manifests stay byte-comparable with builds
   that predate the instrumentation.  Two placements from a cleared
   registry must produce identical metric snapshots with no prof/* name,
   and no drift on the manifest's deterministic surface. *)
let test_prof_off_path_is_silent () =
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "profiling is off by default" false
    (Trg_obs.Prof.enabled ());
  Alcotest.(check bool) "journal is off by default" false (Journal.recording ());
  let place () =
    Metrics.clear ();
    let prepared = Runner.prepare (Trg_synth.Bench.find "small") in
    ignore (Trg_place.Gbsc.place (Runner.program prepared) prepared.Runner.prof);
    ( Json.to_string (Metrics.to_json ()),
      Manifest.build ~command:"explain" ~status:Manifest.Ok ~exit_code:0 () )
  in
  let snap_a, manifest_a = place () in
  let snap_b, manifest_b = place () in
  Alcotest.(check string) "unprofiled placements are metric-identical" snap_a
    snap_b;
  Alcotest.(check bool) "no prof/* metric registered" true
    (not (contains snap_a "prof/"));
  Alcotest.(check int) "no drift on the manifest's deterministic surface" 0
    (List.length (Manifest.diff manifest_a manifest_b))

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json numbers" `Quick test_json_numbers;
    Alcotest.test_case "json parse errors" `Quick test_json_errors;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
    Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
    Alcotest.test_case "histogram semantics" `Quick test_histogram_semantics;
    Alcotest.test_case "metric kind clash" `Quick test_metric_kind_clash;
    Alcotest.test_case "metrics clear" `Quick test_metrics_clear;
    Alcotest.test_case "snapshot golden" `Quick test_snapshot_golden;
    Alcotest.test_case "span disabled transparent" `Quick test_span_disabled_is_transparent;
    Alcotest.test_case "span nesting and order" `Quick test_span_nesting_and_order;
    Alcotest.test_case "span failure outcome" `Quick test_span_failure_outcome;
    Alcotest.test_case "span allocation monotone" `Quick test_span_alloc_monotone;
    Alcotest.test_case "manifest roundtrip" `Quick test_manifest_roundtrip;
    Alcotest.test_case "manifest validation rejects" `Quick test_manifest_validate_rejects;
    Alcotest.test_case "manifest schema versions" `Quick test_manifest_schema_versions;
    Alcotest.test_case "manifest diff" `Quick test_manifest_diff;
    Alcotest.test_case "chrome trace export" `Quick test_chrome_trace_export;
    Alcotest.test_case "chrome distinct lanes" `Quick test_chrome_distinct_lanes;
    Alcotest.test_case "perf ledger roundtrip" `Quick test_perf_ledger_roundtrip;
    Alcotest.test_case "perf ledger recovery" `Quick test_perf_ledger_recovery;
    Alcotest.test_case "perf gate band edge" `Quick test_perf_gate_band_edge;
    Alcotest.test_case "perf counters jobs-invariant" `Quick test_perf_counters_jobs_invariant;
    Alcotest.test_case "failed benchmark in manifest" `Quick test_failed_benchmark_in_manifest;
    Alcotest.test_case "run populates counters" `Quick test_counters_populated_by_run;
    Alcotest.test_case "prof off-path is silent" `Quick test_prof_off_path_is_silent;
    Alcotest.test_case "journal state machine" `Quick test_journal_state_machine;
    Alcotest.test_case "journal abort" `Quick test_journal_abort;
    Alcotest.test_case "journal roundtrip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal fault matrix" `Quick test_journal_fault_matrix;
    Alcotest.test_case "manifest journal member" `Quick test_manifest_journal_member;
  ]
