(* Test entry point: one alcotest run covering every library. *)

let () =
  Alcotest.run "trgplace"
    [
      ("prng", Test_prng.suite);
      ("stats", Test_stats.suite);
      ("heap", Test_heap.suite);
      ("table", Test_table.suite);
      ("program", Test_program.suite);
      ("trace", Test_trace.suite);
      ("cache", Test_cache.suite);
      ("attrib", Test_attrib.suite);
      ("graph", Test_graph.suite);
      ("qset", Test_qset.suite);
      ("profile", Test_profile.suite);
      ("place", Test_place.suite);
      ("synth", Test_synth.suite);
      ("eval", Test_eval.suite);
      ("extensions", Test_extensions.suite);
      ("tuple_db", Test_tuple_db.suite);
      ("blocks", Test_blocks.suite);
      ("reuse", Test_reuse.suite);
      ("differential", Test_differential.suite);
      ("policy", Test_policy.suite);
      ("property", Test_property.suite);
      ("pool", Test_pool.suite);
      ("coverage", Test_coverage.suite);
      ("io_faults", Test_io_faults.suite);
      ("obs", Test_obs.suite);
    ]
