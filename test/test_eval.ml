module Runner = Trg_eval.Runner
module Table1 = Trg_eval.Table1
module Figure5 = Trg_eval.Figure5
module Figure6 = Trg_eval.Figure6
module Padding = Trg_eval.Padding
module Setassoc = Trg_eval.Setassoc
module Ablation = Trg_eval.Ablation
module Bench = Trg_synth.Bench
module Layout = Trg_program.Layout
module Program = Trg_program.Program
module Explain = Trg_eval.Explain
module Replay = Trg_eval.Replay
module Why = Trg_eval.Why
module Journal = Trg_obs.Journal
module Json = Trg_obs.Json
module Cost = Trg_place.Cost
module Gbsc = Trg_place.Gbsc

(* One shared prepared runner: preparation is the expensive step. *)
let runner = lazy (Runner.prepare (Bench.find "small"))

let test_prepare_consistency () =
  let r = Lazy.force runner in
  Alcotest.(check int) "program size matches shape" 160
    (Program.n_procs (Runner.program r));
  Alcotest.(check bool) "train and test differ" true
    (Trg_trace.Trace.to_list r.Runner.train <> Trg_trace.Trace.to_list r.Runner.test)

let test_layouts_cover_program () =
  let r = Lazy.force runner in
  List.iter
    (fun layout ->
      Alcotest.(check int) "complete layout" 160 (Array.length (Layout.order layout)))
    [
      Runner.default_layout r;
      Runner.ph_layout r;
      Runner.hkc_layout r;
      Runner.gbsc_layout r;
    ]

let test_table1_row () =
  let r = Lazy.force runner in
  let row = Table1.row_of r in
  Alcotest.(check string) "name" "small" row.Table1.name;
  Alcotest.(check int) "train events" 200_000 row.Table1.train_events;
  Alcotest.(check bool) "default MR sane" true
    (row.Table1.default_miss_rate > 0. && row.Table1.default_miss_rate < 0.5);
  Alcotest.(check bool) "avg Q positive" true (row.Table1.avg_q > 1.)

let test_table1_paper_reference_complete () =
  List.iter
    (fun shape ->
      Alcotest.(check bool)
        (shape.Trg_synth.Shape.name ^ " has a paper row")
        true
        (List.mem_assoc shape.Trg_synth.Shape.name Table1.paper_reference))
    Bench.all

let test_figure5_shapes () =
  let r = Lazy.force runner in
  let res = Figure5.run ~runs:4 r in
  Alcotest.(check int) "three algorithms" 3 (List.length res.Figure5.results);
  List.iter
    (fun alg ->
      Alcotest.(check int) "4 perturbed runs" 4 (Array.length alg.Figure5.sorted);
      let sorted = Array.copy alg.Figure5.sorted in
      Array.sort compare sorted;
      Alcotest.(check bool) "ascending" true (sorted = alg.Figure5.sorted);
      Array.iter
        (fun mr -> Alcotest.(check bool) "rate in (0,1)" true (mr > 0. && mr < 1.))
        alg.Figure5.sorted)
    res.Figure5.results

let test_figure5_gbsc_best () =
  let r = Lazy.force runner in
  let res = Figure5.run ~runs:4 r in
  let unperturbed a =
    (List.find (fun x -> x.Figure5.algo = a) res.Figure5.results).Figure5.unperturbed
  in
  Alcotest.(check bool) "GBSC beats PH" true
    (unperturbed Figure5.GBSC < unperturbed Figure5.PH);
  Alcotest.(check bool) "GBSC beats default" true
    (unperturbed Figure5.GBSC < res.Figure5.default_mr)

let test_figure5_deterministic () =
  let r = Lazy.force runner in
  let a = Figure5.run ~runs:3 ~seed:5 r and b = Figure5.run ~runs:3 ~seed:5 r in
  List.iter2
    (fun x y ->
      Alcotest.(check bool) "same sorted rates" true (x.Figure5.sorted = y.Figure5.sorted))
    a.Figure5.results b.Figure5.results

let test_figure6_correlations () =
  let r = Lazy.force runner in
  let res = Figure6.run ~n:20 r in
  Alcotest.(check int) "20 points" 20 (Array.length res.Figure6.points);
  Alcotest.(check bool)
    (Printf.sprintf "TRG metric strongly correlated (r=%.3f)" res.Figure6.r_trg)
    true (res.Figure6.r_trg > 0.8);
  Alcotest.(check bool) "TRG metric at least as good as WCG metric" true
    (res.Figure6.r_trg >= res.Figure6.r_wcg -. 0.02)

let test_figure6_first_point_is_base () =
  let r = Lazy.force runner in
  let res = Figure6.run ~n:5 r in
  let base = res.Figure6.points.(0) in
  (* The unmodified GBSC placement should be among the best layouts. *)
  Array.iter
    (fun p ->
      Alcotest.(check bool) "base near minimum" true
        (base.Figure6.miss_rate <= p.Figure6.miss_rate +. 0.02))
    res.Figure6.points

let test_padding_increases_misses () =
  let r = Lazy.force runner in
  let res = Padding.run r in
  Alcotest.(check bool)
    (Printf.sprintf "padding hurts (%.4f -> %.4f)" res.Padding.base_mr
       res.Padding.padded_mr)
    true
    (res.Padding.padded_mr > res.Padding.base_mr)

let test_padding_zero_is_identity () =
  let r = Lazy.force runner in
  let res = Padding.run ~pad:0 r in
  Alcotest.(check (float 1e-12)) "no padding, no change" res.Padding.base_mr
    res.Padding.padded_mr

let test_setassoc_rows () =
  let res = Setassoc.run (Bench.find "small") in
  let rows (s : Setassoc.section) = s.Setassoc.rows in
  Alcotest.(check int) "four 2-way rows" 4 (List.length (rows res.Setassoc.two_way));
  Alcotest.(check int) "four 4-way rows" 4 (List.length (rows res.Setassoc.four_way));
  let get section label =
    (List.find (fun r -> r.Setassoc.label = label) (rows section)).Setassoc.miss_rate
  in
  let default = get res.Setassoc.two_way "default layout" in
  let sa = get res.Setassoc.two_way "GBSC-SA (pair database)" in
  Alcotest.(check bool) "GBSC-SA beats default on 2-way" true (sa < default);
  (* At 4 ways conflicts nearly vanish; require the tuple placement not to
     be materially worse than the default layout. *)
  Alcotest.(check bool) "tuple SA competitive on 4-way" true
    (get res.Setassoc.four_way "GBSC-SA (tuple database)"
    <= 1.1 *. get res.Setassoc.four_way "default layout")

let test_ablation_rows () =
  let r = Lazy.force runner in
  let res = Ablation.run r in
  Alcotest.(check int) "eleven variants" 11 (List.length res.Ablation.rows);
  let get label =
    (List.find (fun x -> x.Ablation.label = label) res.Ablation.rows).Ablation.miss_rate
  in
  let full = get "GBSC (full)" in
  Alcotest.(check bool) "full GBSC beats default" true (full < get "default layout")

(* --- explain's sparkline ----------------------------------------------- *)

let test_sparkline () =
  (* Varied series scale to their own maximum. *)
  Alcotest.(check string) "varied series keeps its shape" " .+@"
    (Explain.sparkline [| 0; 1; 5; 10 |]);
  Alcotest.(check string) "zeros are blank" "   "
    (Explain.sparkline [| 0; 0; 0 |]);
  (* A flat series has no shape: drawing it at full height would read as
     a sustained peak, so it renders at the mid glyph. *)
  Alcotest.(check string) "flat series renders mid, not peak" "+++"
    (Explain.sparkline [| 5; 5; 5 |]);
  Alcotest.(check string) "single point is flat, not a spike" "+"
    (Explain.sparkline [| 1000 |]);
  Alcotest.(check string) "flat with gaps keeps the gaps" "+ +"
    (Explain.sparkline [| 7; 0; 7 |]);
  Alcotest.(check string) "empty series" "" (Explain.sparkline [||])

(* --- journal record / replay / why ------------------------------------- *)

(* Record a live GBSC placement and verify its journal bit-identically
   under BOTH cost engines: the second pass is the differential witness
   that full and incremental evaluators agree decision-by-decision. *)
let test_replay_verifies_bit_identically () =
  Fun.protect ~finally:Journal.reset (fun () ->
      let r = Lazy.force runner in
      let j, layout = Replay.record ~algo:"gbsc" r in
      Alcotest.(check bool) "journal captured decisions" true
        (Array.length j.Journal.decisions > 0);
      Alcotest.(check int) "journal claims the live layout"
        (Layout.digest layout) j.Journal.claims.Journal.layout_crc;
      Alcotest.(check bool) "GBSC decisions carry offsets" true
        (Array.for_all (fun d -> d.Journal.shift <> None) j.Journal.decisions);
      let saved = Cost.engine () in
      Fun.protect
        ~finally:(fun () -> Cost.set_engine saved)
        (fun () ->
          List.iter
            (fun eng ->
              Cost.set_engine eng;
              let rep = Replay.verify j in
              if not (Replay.ok rep) then
                Alcotest.failf "replay under %s engine:\n  %s"
                  (Cost.engine_name eng)
                  (String.concat "\n  " rep.Replay.r_mismatches);
              Alcotest.(check int) "every step re-driven"
                (Array.length j.Journal.decisions)
                rep.Replay.r_steps;
              Alcotest.(check (option int)) "layout digest reproduced"
                (Some j.Journal.claims.Journal.layout_crc)
                rep.Replay.r_layout_crc)
            [ Cost.Full; Cost.Incr ]))

let test_replay_rejects_tampering () =
  Fun.protect ~finally:Journal.reset (fun () ->
      let r = Lazy.force runner in
      let j, _ = Replay.record ~algo:"gbsc" r in
      (* One flipped weight — the kind of damage a CRC would miss if the
         file were edited and re-saved. *)
      let decisions = Array.map (fun d -> { d with Journal.step = d.Journal.step }) j.Journal.decisions in
      decisions.(0) <-
        { decisions.(0) with Journal.weight = decisions.(0).Journal.weight +. 1. };
      let rep = Replay.verify { j with Journal.decisions } in
      Alcotest.(check bool) "tampered weight detected" false (Replay.ok rep);
      Alcotest.(check bool) "mismatch names the step" true
        (rep.Replay.r_mismatches <> []))

(* PH journals are cache-independent (all-zero cache triple) and have no
   offsets; the round-trip exercises prepare_for's default-cache path. *)
let test_replay_ph_roundtrip () =
  Fun.protect ~finally:Journal.reset (fun () ->
      let r = Lazy.force runner in
      let j, _ = Replay.record ~algo:"ph" r in
      Alcotest.(check string) "meta algo" "ph" j.Journal.meta.Journal.algo;
      Alcotest.(check int) "cache-independent journal" 0
        j.Journal.meta.Journal.cache_size;
      Alcotest.(check bool) "no offsets on PH chains" true
        (Array.for_all (fun d -> d.Journal.shift = None) j.Journal.decisions);
      let rep = Replay.verify j in
      if not (Replay.ok rep) then
        Alcotest.failf "ph replay:\n  %s"
          (String.concat "\n  " rep.Replay.r_mismatches))

let test_why_analysis () =
  Fun.protect ~finally:Journal.reset (fun () ->
      let r = Lazy.force runner in
      let j, layout = Replay.record ~algo:"gbsc" r in
      let program = Runner.program r in
      let cache = r.Runner.config.Gbsc.cache in
      let aligned =
        Layout.line_align ~line_size:cache.Trg_cache.Config.line_size
          ~n_sets:(Trg_cache.Config.n_sets cache) program layout
      in
      let attrib =
        Trg_cache.Attrib.simulate program aligned cache r.Runner.test
      in
      let trg_weight =
        Trg_profile.Graph.weight r.Runner.prof.Gbsc.select.Trg_profile.Trg.graph
      in
      let proc name =
        match Program.find_by_name program name with
        | Some p -> p
        | None -> Alcotest.failf "benchmark has no procedure %s" name
      in
      let analyze ?q p =
        Why.analyze ~journal:j ~trg_weight ~attrib
          ~proc_name:(Program.name program) ~p:(proc p)
          ?q:(Option.map proc q) ()
      in
      (* Pair mode: leaf1 and leaf2 share a TRG edge, so the greedy search
         joins their groups at some step — and every claim in the join
         must match the journal's decision at that step. *)
      let pair = analyze ~q:"leaf2" "leaf1" in
      (match pair.Why.w_joined with
      | None -> Alcotest.fail "leaf1 and leaf2 were never joined"
      | Some join ->
        let d = j.Journal.decisions.(join.Why.j_step) in
        Alcotest.(check bool) "join mirrors the journal decision" true
          (d.Journal.weight = join.Why.j_weight
          && d.Journal.runner_up = join.Why.j_runner_up
          && d.Journal.shift = join.Why.j_shift);
        (match join.Why.j_margin with
        | Some m -> Alcotest.(check bool) "margin non-negative" true (m >= 0.)
        | None -> ());
        (match pair.Why.w_history with
        | [] -> Alcotest.fail "pair history is empty"
        | history ->
          let last = List.nth history (List.length history - 1) in
          Alcotest.(check int) "history ends at the joining step"
            join.Why.j_step last.Why.j_step));
      Alcotest.(check bool) "TRG cross-reference found" true
        (match pair.Why.w_trg_weight with Some w -> w > 0. | None -> false);
      (* Single mode: full merge history of one procedure's group. *)
      let single = analyze "leaf1" in
      Alcotest.(check bool) "single mode has no join" true
        (single.Why.w_joined = None && single.Why.w_q = None);
      Alcotest.(check bool) "single-mode history in step order" true
        (let steps = List.map (fun x -> x.Why.j_step) single.Why.w_history in
         steps = List.sort compare steps && steps <> []);
      match Json.member "schema" (Why.to_json pair) with
      | Some (Json.String "trgplace-why/1") -> ()
      | _ -> Alcotest.fail "why JSON schema marker missing")

let suite =
  [
    Alcotest.test_case "prepare consistency" `Quick test_prepare_consistency;
    Alcotest.test_case "layouts cover program" `Quick test_layouts_cover_program;
    Alcotest.test_case "table1 row" `Quick test_table1_row;
    Alcotest.test_case "table1 paper reference complete" `Quick
      test_table1_paper_reference_complete;
    Alcotest.test_case "figure5 shapes" `Quick test_figure5_shapes;
    Alcotest.test_case "figure5 GBSC best" `Quick test_figure5_gbsc_best;
    Alcotest.test_case "figure5 deterministic" `Quick test_figure5_deterministic;
    Alcotest.test_case "figure6 correlations" `Quick test_figure6_correlations;
    Alcotest.test_case "figure6 base point" `Quick test_figure6_first_point_is_base;
    Alcotest.test_case "padding increases misses" `Quick test_padding_increases_misses;
    Alcotest.test_case "padding zero identity" `Quick test_padding_zero_is_identity;
    Alcotest.test_case "setassoc rows" `Quick test_setassoc_rows;
    Alcotest.test_case "ablation rows" `Quick test_ablation_rows;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
    Alcotest.test_case "replay verifies bit-identically" `Quick
      test_replay_verifies_bit_identically;
    Alcotest.test_case "replay rejects tampering" `Quick
      test_replay_rejects_tampering;
    Alcotest.test_case "replay ph roundtrip" `Quick test_replay_ph_roundtrip;
    Alcotest.test_case "why analysis" `Quick test_why_analysis;
  ]
