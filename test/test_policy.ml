(* The replacement-policy differential wall.

   Every optimized policy in [Trg_cache.Policy.Probe] (packed arrays,
   heap-indexed trees, in-place age renormalisation) is proven
   bit-identical to its deliberately naive [Policy.Reference] model
   (explicit lists of tags, bits and ages) on random access sequences:
   not just equal miss counts, but the same hit/miss/eviction code on
   every single access.  Hand-computed golden eviction vectors pin the
   Tree-PLRU and QLRU semantics to paper definitions, the PLRU = LRU
   identity at associativity <= 2 is checked as a property, and the 3C
   classification is shown to sum to the total misses under every policy
   and associativity.  Hierarchy-level invariants (level n+1 sees exactly
   level n's misses; per-level 3C sums; the cycle model's arithmetic)
   complete the wall. *)

module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Config = Trg_cache.Config
module Policy = Trg_cache.Policy
module Sim = Trg_cache.Sim
module Attrib = Trg_cache.Attrib
module Hierarchy = Trg_cache.Hierarchy
module Cpu = Trg_cache.Cpu
module Event = Trg_trace.Event
module Trace = Trg_trace.Trace

(* Soak profile hook, as in Test_differential. *)
let scaled n =
  match Sys.getenv_opt "TRGPLACE_QCHECK_FACTOR" with
  | Some f -> ( try n * int_of_string (String.trim f) with Failure _ -> n)
  | None -> n

(* --- probe vs reference, access for access --------------------------- *)

let run_probe kind ~n_sets ~assoc seq =
  let p = Policy.Probe.create kind ~n_sets ~assoc in
  List.map (Policy.Probe.access p) seq

let run_reference kind ~n_sets ~assoc seq =
  let r = Policy.Reference.create kind ~n_sets ~assoc in
  List.map (Policy.Reference.access r) seq

let show_workload (n_sets, assoc, seq) =
  Printf.sprintf "n_sets=%d assoc=%d seq=[%s]" n_sets assoc
    (String.concat ";" (List.map string_of_int seq))

let workload ~assocs =
  QCheck.(
    make
      ~print:show_workload
      Gen.(
        map3
          (fun n_sets assoc seq -> (n_sets, assoc, seq))
          (oneofl [ 1; 2; 4 ])
          (oneofl assocs)
          (list_size (int_range 1 160) (int_range 0 40))))

let prop_policy_wall kind =
  let assocs =
    (* Tree-PLRU only exists at power-of-two ways; every other policy is
       also exercised at odd associativities. *)
    match kind with
    | Policy.Plru -> [ 1; 2; 4; 8 ]
    | _ -> [ 1; 2; 3; 4; 5; 8 ]
  in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "policy wall: %s probe matches brute-force reference"
         (Policy.to_string kind))
    ~count:(scaled 200) (workload ~assocs)
    (fun (n_sets, assoc, seq) ->
      run_probe kind ~n_sets ~assoc seq = run_reference kind ~n_sets ~assoc seq)

let prop_plru_equals_lru_low_assoc =
  QCheck.Test.make
    ~name:"policy wall: Tree-PLRU is exactly LRU at associativity <= 2"
    ~count:(scaled 200)
    (workload ~assocs:[ 1; 2 ])
    (fun (n_sets, assoc, seq) ->
      run_probe Policy.Plru ~n_sets ~assoc seq
      = run_probe Policy.Lru ~n_sets ~assoc seq)

(* --- golden eviction vectors ------------------------------------------ *)

(* One 4-way set, worked by hand.  The access code is [-2] on a hit, [-1]
   when an invalid way is filled, and the evicted tag otherwise. *)
let check_golden kind seq expect =
  Alcotest.(check (list int))
    (Policy.to_string kind ^ " probe")
    expect
    (run_probe kind ~n_sets:1 ~assoc:4 seq);
  Alcotest.(check (list int))
    (Policy.to_string kind ^ " reference")
    expect
    (run_reference kind ~n_sets:1 ~assoc:4 seq)

let test_golden_plru () =
  (* Fills of 0..3 leave all three direction bits pointing left (each
     touch points its path away from the touched way, and way 3 is the
     last filled), so the fifth access walks left-left to way 0.  The
     touch of way 0 then flips the root right, sending the next victim
     walk to way 2; the hit on 1 flips it right again (to way 3). *)
  check_golden Policy.Plru
    [ 0; 1; 2; 3; 4; 0; 1; 5; 4 ]
    [ -1; -1; -1; -1; 0; 2; -2; 3; -2 ]

let test_golden_qlru_h00 () =
  (* Lines insert at age 1; the hit on 0 drops it to age 0, so the first
     eviction renormalises ages by +2 and takes the leftmost age-3 way —
     way 1.  A second eviction finds way 3 already at age 3 (no bump). *)
  check_golden Policy.Qlru_h00
    [ 0; 1; 2; 3; 0; 4; 2; 5; 0; 6 ]
    [ -1; -1; -1; -1; -2; 1; -2; 3; -2; 4 ]

let test_golden_qlru_h11 () =
  (* Same prefix, but h11 demotes a hit at age 3 only to age 1, so after
     hits on 2 and 3 the set holds ages [2;1;1;1] and the next
     renormalisation (+1) evicts way 0 — where h00 would have kept 0
     (age 0) alive and evicted tag 4 instead. *)
  check_golden Policy.Qlru_h11
    [ 0; 1; 2; 3; 0; 4; 2; 3; 5 ]
    [ -1; -1; -1; -1; -2; 1; -2; -2; 0 ]

let test_golden_fifo_mru () =
  (* FIFO ignores the hits on 0 entirely: the first fill is still the
     first victim.  MRU evicts the freshest line instead — the hit on 0
     makes 0 the victim of the very next miss. *)
  check_golden Policy.Fifo
    [ 0; 1; 2; 3; 0; 4; 0 ]
    [ -1; -1; -1; -1; -2; 0; 1 ];
  check_golden Policy.Mru
    [ 0; 1; 2; 3; 0; 4; 1 ]
    [ -1; -1; -1; -1; -2; 0; -2 ]

let test_policy_names () =
  List.iter
    (fun k ->
      match Policy.of_string (Policy.to_string k) with
      | Ok k' -> Alcotest.(check bool) "roundtrip" true (k = k')
      | Error e -> Alcotest.fail e)
    Policy.all;
  (match Policy.of_string "random" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus policy accepted");
  Alcotest.check_raises "plru rejects 3 ways"
    (Invalid_argument "Policy: Tree-PLRU requires power-of-two associativity")
    (fun () -> Policy.validate Policy.Plru ~assoc:3)

(* --- 3C classification under every policy ----------------------------- *)

let sizes = [| 64; 96; 32; 128 |]

let program = Program.of_sizes sizes

let layout = Layout.default program

let trace_of_events evs =
  Trace.of_list
    (List.map
       (fun (proc, off, len) ->
         let size = sizes.(proc) in
         let len = 1 + (len mod 16) in
         let off = off mod (size - len + 1) in
         Event.make ~kind:Event.Enter ~proc ~offset:off ~len)
       evs)

let gen_trace =
  QCheck.(
    make
      ~print:(fun evs ->
        String.concat ";"
          (List.map (fun (p, o, l) -> Printf.sprintf "(%d,%d,%d)" p o l) evs))
      Gen.(
        list_size (int_range 1 120)
          (map3
             (fun p o l -> (p, o, l))
             (int_range 0 3) (int_range 0 127) (int_range 0 15))))

let prop_attrib_3c_sums_every_policy =
  QCheck.Test.make
    ~name:"3C classes sum to total misses under every policy and assoc"
    ~count:(scaled 60) gen_trace
    (fun evs ->
      let trace = trace_of_events evs in
      List.for_all
        (fun policy ->
          List.for_all
            (fun assoc ->
              let config =
                Config.make ~size:(16 * assoc * 4) ~line_size:16 ~assoc
              in
              let a = Attrib.simulate ~policy program layout config trace in
              let sim = Sim.simulate ~policy program layout config trace in
              a.Attrib.compulsory + a.Attrib.capacity + a.Attrib.conflict
              = a.Attrib.result.Sim.misses
              && a.Attrib.result = sim)
            [ 1; 2; 4 ])
        Policy.all)

let prop_sim_flat_agrees_every_policy =
  QCheck.Test.make
    ~name:"Sim.simulate and Sim.simulate_flat agree under every policy"
    ~count:(scaled 40) gen_trace
    (fun evs ->
      let trace = trace_of_events evs in
      let flat = Trace.Flat.of_trace trace in
      List.for_all
        (fun policy ->
          let config = Config.make ~size:128 ~line_size:16 ~assoc:4 in
          Sim.simulate ~policy program layout config trace
          = Sim.simulate_flat ~policy program layout config flat)
        Policy.all)

(* --- hierarchy invariants --------------------------------------------- *)

let two_level =
  Hierarchy.make
    ~levels:
      [
        {
          Hierarchy.config = Config.make ~size:64 ~line_size:16 ~assoc:2;
          policy = Policy.Plru;
          hit_cycles = 1;
        };
        {
          Hierarchy.config = Config.make ~size:256 ~line_size:32 ~assoc:4;
          policy = Policy.Qlru_h11;
          hit_cycles = 10;
        };
      ]
    ~memory_cycles:100

let prop_hierarchy_invariants =
  QCheck.Test.make ~name:"hierarchy: filtering, per-level 3C sums, cycle model"
    ~count:(scaled 60) gen_trace
    (fun evs ->
      let trace = trace_of_events evs in
      let r = Hierarchy.simulate program layout two_level trace in
      let l1 = r.Hierarchy.levels.(0) and l2 = r.Hierarchy.levels.(1) in
      (* Level 2 sees exactly level 1's misses. *)
      l2.Hierarchy.accesses = l1.Hierarchy.misses
      && l2.Hierarchy.misses <= l2.Hierarchy.accesses
      (* 3C sums per level. *)
      && l1.Hierarchy.compulsory + l1.Hierarchy.capacity + l1.Hierarchy.conflict
         = l1.Hierarchy.misses
      && l2.Hierarchy.compulsory + l2.Hierarchy.capacity + l2.Hierarchy.conflict
         = l2.Hierarchy.misses
      (* The cycle model is plain arithmetic over the counts. *)
      && r.Hierarchy.cycles
         = (l1.Hierarchy.accesses * 1)
           + (l2.Hierarchy.accesses * 10)
           + (l2.Hierarchy.misses * 100)
      (* L1 counts match the single-level simulator under the same policy. *)
      &&
      let solo =
        Sim.simulate ~policy:Policy.Plru program layout
          (Config.make ~size:64 ~line_size:16 ~assoc:2)
          trace
      in
      l1.Hierarchy.accesses = solo.Sim.accesses
      && l1.Hierarchy.misses = solo.Sim.misses)

let test_hierarchy_validation () =
  Alcotest.check_raises "empty hierarchy"
    (Invalid_argument "Hierarchy.make: at least one level required")
    (fun () -> ignore (Hierarchy.make ~levels:[] ~memory_cycles:100));
  let l size line assoc =
    {
      Hierarchy.config = Config.make ~size ~line_size:line ~assoc;
      policy = Policy.Lru;
      hit_cycles = 1;
    }
  in
  Alcotest.check_raises "line sizes must nest"
    (Invalid_argument
       "Hierarchy.make: L2 line size (24) must be a multiple of L1's (16)")
    (fun () ->
      ignore (Hierarchy.make ~levels:[ l 64 16 2; l 96 24 2 ] ~memory_cycles:50))

let test_cpu_presets () =
  Alcotest.(check (list string))
    "preset names"
    [ "alpha-21064"; "alpha-21164"; "nehalem"; "skylake" ]
    Cpu.names;
  (match Cpu.find "nonesuch" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus CPU accepted");
  let trace =
    trace_of_events (List.init 200 (fun i -> (i mod 4, 7 * i, i mod 11)))
  in
  List.iter
    (fun cpu ->
      let r = Hierarchy.simulate program layout cpu.Cpu.hier trace in
      let levels = r.Hierarchy.levels in
      Alcotest.(check bool)
        (cpu.Cpu.name ^ " filters downward")
        true
        (Array.for_all
           (fun (lr : Hierarchy.level_result) ->
             lr.Hierarchy.compulsory + lr.Hierarchy.capacity
             + lr.Hierarchy.conflict
             = lr.Hierarchy.misses)
           levels
        && fst
             (Array.fold_left
                (fun (ok, prev_misses) (lr : Hierarchy.level_result) ->
                  match prev_misses with
                  | None -> (ok, Some lr.Hierarchy.misses)
                  | Some m ->
                    (ok && lr.Hierarchy.accesses = m, Some lr.Hierarchy.misses))
                (true, None) levels));
      Alcotest.(check bool)
        (cpu.Cpu.name ^ " positive amat")
        true
        (r.Hierarchy.amat >= 1.0))
    Cpu.all

let suite =
  [
    QCheck_alcotest.to_alcotest (prop_policy_wall Policy.Lru);
    QCheck_alcotest.to_alcotest (prop_policy_wall Policy.Fifo);
    QCheck_alcotest.to_alcotest (prop_policy_wall Policy.Mru);
    QCheck_alcotest.to_alcotest (prop_policy_wall Policy.Plru);
    QCheck_alcotest.to_alcotest (prop_policy_wall Policy.Qlru_h00);
    QCheck_alcotest.to_alcotest (prop_policy_wall Policy.Qlru_h11);
    QCheck_alcotest.to_alcotest prop_plru_equals_lru_low_assoc;
    Alcotest.test_case "golden Tree-PLRU evictions" `Quick test_golden_plru;
    Alcotest.test_case "golden QLRU-h00 evictions" `Quick test_golden_qlru_h00;
    Alcotest.test_case "golden QLRU-h11 evictions" `Quick test_golden_qlru_h11;
    Alcotest.test_case "golden FIFO and MRU evictions" `Quick test_golden_fifo_mru;
    Alcotest.test_case "policy names and validation" `Quick test_policy_names;
    QCheck_alcotest.to_alcotest prop_attrib_3c_sums_every_policy;
    QCheck_alcotest.to_alcotest prop_sim_flat_agrees_every_policy;
    QCheck_alcotest.to_alcotest prop_hierarchy_invariants;
    Alcotest.test_case "hierarchy validation" `Quick test_hierarchy_validation;
    Alcotest.test_case "CPU presets" `Quick test_cpu_presets;
  ]
