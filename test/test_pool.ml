(* The forked worker pool: wire format, scheduling, failure isolation,
   and — most importantly — determinism: the same tasks must produce the
   same outcomes, outputs and telemetry whatever the job count. *)

module Pool = Trg_eval.Pool
module Fault = Trg_util.Fault
module Metrics = Trg_obs.Metrics
module Span = Trg_obs.Span
module Report = Trg_eval.Report

(* --- wire format ------------------------------------------------------ *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let test_frame_roundtrip () =
  with_pipe (fun r w ->
      Pool.Frame.write w "hello pool";
      Pool.Frame.write w "";
      Alcotest.(check string) "payload" "hello pool" (Pool.Frame.read r);
      Alcotest.(check string) "empty payload" "" (Pool.Frame.read r))

let test_frame_clean_eof () =
  with_pipe (fun r w ->
      Unix.close w;
      match Pool.Frame.read r with
      | (_ : string) -> Alcotest.fail "expected End_of_file"
      | exception End_of_file -> ())

(* A frame with a corrupted payload byte must surface as a typed checksum
   fault, never as garbage data. *)
let test_frame_crc_corruption () =
  with_pipe (fun r w ->
      let frame = Bytes.of_string (Pool.Frame.encode "sensitive payload") in
      (* Flip a bit inside the payload region (header is 8 bytes). *)
      Bytes.set frame 10 (Char.chr (Char.code (Bytes.get frame 10) lxor 0x40));
      let s = Bytes.to_string frame in
      ignore (Unix.write_substring w s 0 (String.length s));
      match Pool.Frame.read r with
      | (_ : string) -> Alcotest.fail "corrupted frame was accepted"
      | exception Fault.Error (Fault.Checksum_mismatch _) -> ()
      | exception e ->
        Alcotest.fail ("expected Checksum_mismatch, got " ^ Printexc.to_string e))

let test_frame_truncation () =
  with_pipe (fun r w ->
      let s = Pool.Frame.encode "truncated in flight" in
      ignore (Unix.write_substring w s 0 (String.length s - 3));
      Unix.close w;
      match Pool.Frame.read r with
      | (_ : string) -> Alcotest.fail "truncated frame was accepted"
      | exception Fault.Error (Fault.Truncated _) -> ()
      | exception e ->
        Alcotest.fail ("expected Truncated, got " ^ Printexc.to_string e))

let test_frame_absurd_length () =
  with_pipe (fun r w ->
      (* A header claiming a terabyte payload must be rejected before
         any allocation happens. *)
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 (Int64.of_int (1 lsl 40));
      ignore (Unix.write w b 0 8);
      Unix.close w;
      match Pool.Frame.read r with
      | (_ : string) -> Alcotest.fail "absurd length was accepted"
      | exception Fault.Error (Fault.Bad_record _) -> ()
      | exception e ->
        Alcotest.fail ("expected Bad_record, got " ^ Printexc.to_string e))

(* --- scheduling and determinism --------------------------------------- *)

let task key work = { Pool.key; work }

let values outcomes =
  List.map
    (fun (o : _ Pool.outcome) ->
      match o.Pool.value with Ok v -> Ok v | Error f -> Error (Pool.failure_to_string f))
    outcomes

(* Same tasks, different job counts: outcomes, order and captured output
   must be identical. *)
let test_jobs_invariance () =
  let mk_tasks () =
    List.init 13 (fun i ->
        task (Printf.sprintf "unit %d" i) (fun () ->
            let rng = Trg_util.Prng.create (1_000 + i) in
            let acc = ref 0 in
            for _ = 1 to 1000 do
              acc := !acc + Trg_util.Prng.int rng 97
            done;
            Printf.printf "unit %d -> %d\n" i !acc;
            !acc))
  in
  let run jobs = Pool.run ~jobs (mk_tasks ()) in
  let o1 = run 1 and o4 = run 4 in
  Alcotest.(check (list (result int string)))
    "values identical across job counts" (values o1) (values o4);
  Alcotest.(check (list string))
    "outputs identical across job counts"
    (List.map (fun o -> o.Pool.output) o1)
    (List.map (fun o -> o.Pool.output) o4);
  Alcotest.(check (list string))
    "keys preserved in task order"
    (List.init 13 (Printf.sprintf "unit %d"))
    (List.map (fun o -> o.Pool.key) o1)

(* A unit that raises fails alone; the rest of the batch completes. *)
let test_unit_failure_isolated () =
  let tasks =
    [
      task "ok1" (fun () -> 1);
      task "boom" (fun () -> failwith "boom");
      task "ok2" (fun () -> 2);
    ]
  in
  let outcomes = Pool.run ~jobs:2 tasks in
  Alcotest.(check (list (result int string)))
    "failure isolated to its unit"
    [ Ok 1; Error "boom"; Ok 2 ]
    (values outcomes)

(* fail_fast with one worker: everything after the failing unit is
   cancelled, deterministically. *)
let test_fail_fast_cancels () =
  let tasks =
    [
      task "ok" (fun () -> 1);
      task "boom" (fun () -> failwith "boom");
      task "never" (fun () -> 3);
    ]
  in
  let outcomes = Pool.run ~jobs:1 ~fail_fast:true tasks in
  Alcotest.(check (list (result int string)))
    "cancelled after the failure"
    [ Ok 1; Error "boom"; Error (Pool.failure_to_string Pool.Cancelled) ]
    (values outcomes)

(* A worker dying mid-unit (here: hard exit, as a crash would) is
   detected by pipe EOF; the unit is attributed, a fresh worker replaces
   the dead one, and the batch completes without hanging. *)
let test_worker_crash_isolated () =
  let tasks =
    [
      task "ok1" (fun () -> 1);
      task "crash" (fun () ->
          Unix._exit 9 (* simulates a segfaulting worker *));
      task "ok2" (fun () -> 2);
      task "ok3" (fun () -> 3);
    ]
  in
  let outcomes = Pool.run ~jobs:2 tasks in
  (match (List.nth outcomes 1).Pool.value with
  | Error (Pool.Worker_crashed _) -> ()
  | Error f -> Alcotest.fail ("expected Worker_crashed, got " ^ Pool.failure_to_string f)
  | Ok _ -> Alcotest.fail "crashed unit reported success");
  List.iter
    (fun (i, expected) ->
      match (List.nth outcomes i).Pool.value with
      | Ok v -> Alcotest.(check int) "surviving unit" expected v
      | Error f -> Alcotest.fail ("survivor failed: " ^ Pool.failure_to_string f))
    [ (0, 1); (2, 2); (3, 3) ]

(* An overrunning unit is killed at the deadline and reported as timed
   out; the batch finishes promptly. *)
let test_timeout_kills () =
  let t0 = Unix.gettimeofday () in
  let tasks =
    [ task "ok" (fun () -> 1); task "hang" (fun () -> Unix.sleep 600; 2) ]
  in
  let outcomes = Pool.run ~jobs:2 ~timeout:0.5 tasks in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "did not wait for the hung unit" true (elapsed < 30.);
  (match (List.nth outcomes 1).Pool.value with
  | Error (Pool.Timed_out _) -> ()
  | Error f -> Alcotest.fail ("expected Timed_out, got " ^ Pool.failure_to_string f)
  | Ok _ -> Alcotest.fail "hung unit reported success");
  Alcotest.(check (result int string)) "fast unit unaffected" (Ok 1)
    (List.hd (values outcomes))

(* Worker-side telemetry must reach the parent: counters bumped inside
   units are absorbed into the parent registry, independent of jobs. *)
let test_metrics_propagate () =
  let c = Metrics.counter "pool_test/work" in
  let before = Metrics.value c in
  let mk_tasks () =
    List.init 6 (fun i -> task (string_of_int i) (fun () ->
        Metrics.add (Metrics.counter "pool_test/work") (i + 1)))
  in
  ignore (Pool.run ~jobs:1 (mk_tasks ()));
  let after_serial = Metrics.value c in
  ignore (Pool.run ~jobs:3 (mk_tasks ()));
  let after_parallel = Metrics.value c in
  Alcotest.(check int) "serial run absorbed 1+..+6" (before + 21) after_serial;
  Alcotest.(check int) "parallel run absorbed the same" (before + 42) after_parallel

(* --- snapshot algebra -------------------------------------------------- *)

let snap counters =
  {
    Metrics.snap_counters = counters;
    snap_gauges = [];
    snap_histograms = [];
  }

(* Totals must not depend on how per-worker snapshots are grouped —
   that's what makes pooled counters equal to sequential ones. *)
let test_merge_associative_commutative () =
  let a = snap [ ("x", 1); ("y", 10) ] in
  let b = snap [ ("x", 2); ("z", 100) ] in
  let c = snap [ ("y", 20); ("z", 200) ] in
  let eq = Alcotest.(check (list (pair string int))) in
  eq "associative"
    (Metrics.merge (Metrics.merge a b) c).Metrics.snap_counters
    (Metrics.merge a (Metrics.merge b c)).Metrics.snap_counters;
  eq "commutative"
    (Metrics.merge a b).Metrics.snap_counters
    (Metrics.merge b a).Metrics.snap_counters;
  eq "identity"
    (Metrics.merge a Metrics.empty_snapshot).Metrics.snap_counters
    a.Metrics.snap_counters

(* --- report-level determinism ----------------------------------------- *)

(* The full experiment path: a quick table1 with 1 and with 4 workers
   must add exactly the same amount to every counter. *)
let test_report_jobs_invariance () =
  let deltas jobs =
    let before = Metrics.counters () in
    let failures =
      Report.table1 { Report.quick_options with jobs }
    in
    Alcotest.(check int) "clean run" 0 (List.length failures);
    let after = Metrics.counters () in
    List.map
      (fun (name, v) ->
        (name, v - (try List.assoc name before with Not_found -> 0)))
      after
  in
  let d1 = deltas 1 in
  let d4 = deltas 4 in
  Alcotest.(check (list (pair string int))) "counter deltas identical" d1 d4

(* --- deterministic simulation ------------------------------------------ *)

(* The same pool engine, run against the in-process simulated OS
   (Pool_sim): seeded fault schedules exercise the crash/corruption/
   timeout paths that are impossible to trigger reliably with real
   processes, and determinism is checked exactly (same seed, same
   everything). *)

module Sim = Trg_eval.Pool_sim

let counter_value name = Metrics.value (Metrics.counter name)

let counter_delta name f =
  let before = counter_value name in
  let r = f () in
  (r, counter_value name - before)

(* With no faults scheduled, the simulator must be indistinguishable from
   the real forked backend: same values, same captured output, same
   order. *)
let test_sim_matches_real () =
  let mk () =
    List.init 7 (fun i ->
        task (Printf.sprintf "u%d" i) (fun () ->
            Printf.printf "unit %d speaking\n" i;
            (i * 31) + 1))
  in
  let real = Pool.run ~jobs:3 (mk ()) in
  let sim = Sim.run ~jobs:3 ~seed:1 (mk ()) in
  Alcotest.(check (list (result int string)))
    "values match the real backend" (values real) (values sim);
  Alcotest.(check (list string))
    "outputs match the real backend"
    (List.map (fun o -> o.Pool.output) real)
    (List.map (fun o -> o.Pool.output) sim);
  Alcotest.(check (list string))
    "keys match the real backend"
    (List.map (fun o -> o.Pool.key) real)
    (List.map (fun o -> o.Pool.key) sim)

(* One worker, so reply sequence numbers are task indices: a crash
   scheduled at reply 1 must fail exactly unit 1, as a crash. *)
let test_sim_crash_attributed () =
  let tasks = List.init 4 (fun i -> task (Printf.sprintf "u%d" i) (fun () -> i)) in
  let schedule = { Sim.empty_schedule with replies = [ (1, Sim.Crash) ] } in
  let outcomes, crashes =
    counter_delta "pool/worker_crashes" (fun () ->
        Sim.run ~jobs:1 ~seed:1 ~schedule tasks)
  in
  Alcotest.(check int) "one crash counted" 1 crashes;
  (match (List.nth outcomes 1).Pool.value with
  | Error (Pool.Worker_crashed _) -> ()
  | Error f -> Alcotest.fail ("expected Worker_crashed, got " ^ Pool.failure_to_string f)
  | Ok _ -> Alcotest.fail "crashed unit reported success");
  List.iter
    (fun i ->
      Alcotest.(check (result int string))
        "survivor" (Ok i)
        (List.nth (values outcomes) i))
    [ 0; 2; 3 ]

(* The self-healing path: the supervisor respawns the crashed worker and
   the retry re-dispatches the lost unit, so the batch ends all-green. *)
let test_sim_retry_cures_crash () =
  let tasks = List.init 4 (fun i -> task (Printf.sprintf "u%d" i) (fun () -> i)) in
  let schedule = { Sim.empty_schedule with replies = [ (1, Sim.Crash) ] } in
  let outcomes, respawns =
    counter_delta "pool/respawns" (fun () ->
        Sim.run ~jobs:1 ~seed:1 ~retries:1 ~schedule tasks)
  in
  Alcotest.(check int) "crashed worker was respawned" 1 respawns;
  Alcotest.(check (list (result int string)))
    "every unit recovered"
    [ Ok 0; Ok 1; Ok 2; Ok 3 ]
    (values outcomes)

(* A flipped payload bit must surface as a typed protocol error — the
   CRC's whole job — never as a wrong value. *)
let test_sim_corruption_detected () =
  let tasks = List.init 3 (fun i -> task (Printf.sprintf "u%d" i) (fun () -> i)) in
  let schedule = { Sim.empty_schedule with replies = [ (0, Sim.Corrupt) ] } in
  let outcomes, proto =
    counter_delta "pool/protocol_errors" (fun () ->
        Sim.run ~jobs:1 ~seed:1 ~schedule tasks)
  in
  Alcotest.(check int) "one protocol error counted" 1 proto;
  match (List.hd outcomes).Pool.value with
  | Error (Pool.Protocol_error _) -> ()
  | Error f -> Alcotest.fail ("expected Protocol_error, got " ^ Pool.failure_to_string f)
  | Ok _ -> Alcotest.fail "corrupt reply was accepted"

(* A worker dying mid-frame leaves a truncated stream: also a protocol
   error, and recoverable by retry. *)
let test_sim_torn_write_detected () =
  let tasks = List.init 3 (fun i -> task (Printf.sprintf "u%d" i) (fun () -> i)) in
  let schedule = { Sim.empty_schedule with replies = [ (0, Sim.Torn 5) ] } in
  let outcomes = Sim.run ~jobs:1 ~seed:1 ~schedule tasks in
  (match (List.hd outcomes).Pool.value with
  | Error (Pool.Protocol_error _) -> ()
  | Error f -> Alcotest.fail ("expected Protocol_error, got " ^ Pool.failure_to_string f)
  | Ok _ -> Alcotest.fail "torn reply was accepted");
  let cured = Sim.run ~jobs:1 ~seed:1 ~retries:1 ~schedule tasks in
  Alcotest.(check (list (result int string)))
    "retry cures the torn write" [ Ok 0; Ok 1; Ok 2 ] (values cured)

(* A stuck worker never replies; only the monotonic deadline frees it. *)
let test_sim_stuck_times_out () =
  let tasks = List.init 3 (fun i -> task (Printf.sprintf "u%d" i) (fun () -> i)) in
  let schedule = { Sim.empty_schedule with replies = [ (2, Sim.Stuck) ] } in
  let outcomes, timeouts =
    counter_delta "pool/timeouts" (fun () ->
        Sim.run ~jobs:1 ~timeout:1.0 ~seed:1 ~schedule tasks)
  in
  Alcotest.(check int) "one timeout counted" 1 timeouts;
  match (List.nth outcomes 2).Pool.value with
  | Error (Pool.Timed_out _) -> ()
  | Error f -> Alcotest.fail ("expected Timed_out, got " ^ Pool.failure_to_string f)
  | Ok _ -> Alcotest.fail "stuck unit reported success"

(* Regression for the EINTR handling in the event loop: spurious empty
   select wakeups (what a signal does to the real backend) must be
   absorbed, not abort or corrupt the batch. *)
let test_sim_eintr_harmless () =
  let tasks = List.init 5 (fun i -> task (Printf.sprintf "u%d" i) (fun () -> i)) in
  let schedule = { Sim.empty_schedule with eintr = [ 0; 1; 2; 5 ] } in
  let outcomes, injected =
    counter_delta "pool/sim/injected_eintrs" (fun () ->
        Sim.run ~jobs:2 ~seed:1 ~schedule tasks)
  in
  Alcotest.(check bool) "wakeups were actually injected" true (injected >= 1);
  Alcotest.(check (list (result int string)))
    "batch unaffected by spurious wakeups"
    [ Ok 0; Ok 1; Ok 2; Ok 3; Ok 4 ]
    (values outcomes)

(* The headline acceptance scenario: a schedule that crashes every
   initial worker at least once must still complete every unit (here:
   all succeed, via respawn + retry), never hang, never lose a unit. *)
let test_sim_crash_every_worker_completes () =
  let n = 8 in
  let tasks = List.init n (fun i -> task (Printf.sprintf "u%d" i) (fun () -> i * i)) in
  (* Replies 0, 1 and 2 are the first replies of the three initial
     workers (fibers pump in worker order), so each one crashes once. *)
  let schedule =
    { Sim.empty_schedule with replies = [ (0, Sim.Crash); (1, Sim.Crash); (2, Sim.Crash) ] }
  in
  let outcomes, respawns =
    counter_delta "pool/respawns" (fun () ->
        Sim.run ~jobs:3 ~timeout:5.0 ~retries:3 ~seed:1 ~schedule tasks)
  in
  Alcotest.(check int) "all units reported" n (List.length outcomes);
  Alcotest.(check bool) "every initial worker was respawned" true (respawns >= 3);
  Alcotest.(check (list (result int string)))
    "every unit completed"
    (List.init n (fun i -> Ok (i * i)))
    (values outcomes)

(* Same seed, same schedule, same options: outcomes and counter deltas
   must be bit-for-bit identical — the property that makes a failing
   seed replayable. *)
let test_sim_determinism () =
  let mk () = List.init 10 (fun i -> task (Printf.sprintf "u%d" i) (fun () -> i * 3)) in
  let schedule = Sim.random_schedule ~seed:42 ~units:10 in
  let go () = Sim.run ~jobs:3 ~timeout:2.0 ~retries:2 ~seed:42 ~schedule (mk ()) in
  let before = Metrics.snapshot () in
  let r1 = go () in
  let mid = Metrics.snapshot () in
  let r2 = go () in
  let after = Metrics.snapshot () in
  Alcotest.(check (list (result int string))) "outcomes identical" (values r1) (values r2);
  Alcotest.(check (list string))
    "outputs identical"
    (List.map (fun o -> o.Pool.output) r1)
    (List.map (fun o -> o.Pool.output) r2);
  let d1 = Metrics.delta ~before ~after:mid and d2 = Metrics.delta ~before:mid ~after in
  Alcotest.(check (list (pair string int)))
    "counter deltas identical (including pool/respawns)" d1.Metrics.snap_counters
    d2.Metrics.snap_counters

(* fail_fast cutting the batch while a unit waits for its retry: the
   unit must report the infrastructure fault that queued it, not a
   misleading Cancelled. *)
let test_sim_fail_fast_reports_original_fault () =
  let tasks =
    [
      task "crashy" (fun () -> 0);
      task "boom" (fun () -> failwith "boom");
      task "never" (fun () -> 2);
    ]
  in
  let schedule = { Sim.empty_schedule with replies = [ (0, Sim.Crash) ] } in
  let outcomes =
    Sim.run ~jobs:1 ~retries:2 ~fail_fast:true ~seed:1 ~schedule tasks
  in
  (match (List.nth outcomes 0).Pool.value with
  | Error (Pool.Worker_crashed _) -> ()
  | Error f ->
    Alcotest.fail ("expected the original Worker_crashed, got " ^ Pool.failure_to_string f)
  | Ok _ -> Alcotest.fail "cut unit reported success");
  Alcotest.(check (result int string))
    "definitive failure kept" (Error "boom")
    (List.nth (values outcomes) 1);
  Alcotest.(check (result int string))
    "undispatched unit cancelled"
    (Error (Pool.failure_to_string Pool.Cancelled))
    (List.nth (values outcomes) 2)

(* A unit's telemetry is absorbed exactly once even when the unit ran
   twice (first reply lost to a crash, second delivered). *)
let test_sim_metrics_absorbed_once_with_retry () =
  let tasks =
    List.init 4 (fun i ->
        task (Printf.sprintf "u%d" i) (fun () ->
            Metrics.incr (Metrics.counter "pool_test/sim_work")))
  in
  let schedule = { Sim.empty_schedule with replies = [ (1, Sim.Crash) ] } in
  let outcomes, work =
    counter_delta "pool_test/sim_work" (fun () ->
        Sim.run ~jobs:1 ~retries:1 ~seed:1 ~schedule tasks)
  in
  Alcotest.(check int) "all units succeeded" 4
    (List.length (List.filter (fun o -> Result.is_ok o.Pool.value) outcomes));
  Alcotest.(check int) "one increment per unit, not per attempt" 4 work

(* Spans absorbed from pool workers carry the worker's lane, and the two
   initial workers get distinct lanes.  Deterministic without sleeps:
   the pool assigns the first [jobs] units to the freshly spawned
   workers before pumping any replies, so units 0 and 1 necessarily run
   on different workers. *)
let test_worker_lane_tagging () =
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.reset ())
    (fun () ->
      Span.set_enabled true;
      Span.reset ();
      let tasks =
        List.init 4 (fun i ->
            task
              (Printf.sprintf "lane-%d" i)
              (fun () -> Span.with_ "unit-work" (fun () -> i)))
      in
      let outcomes = Pool.run ~jobs:2 tasks in
      Alcotest.(check (list (result int string)))
        "all units succeeded"
        (List.init 4 (fun i -> Ok i))
        (values outcomes);
      let lanes =
        List.map
          (fun r ->
            match r.Span.lane with
            | Some l -> l
            | None -> Alcotest.failf "absorbed span %s has no lane" r.Span.path)
          (Span.records ())
      in
      Alcotest.(check int) "one absorbed span per unit" 4 (List.length lanes);
      List.iter
        (fun l ->
          Alcotest.(check bool) "lanes are 1-based (0 is the main process)"
            true (l >= 1))
        lanes;
      Alcotest.(check bool) "the two workers carry distinct lanes" true
        (List.length (List.sort_uniq compare lanes) >= 2))

(* The retry path on the real forked backend: a worker that dies on the
   unit's first dispatch succeeds on the second, because the retry runs
   in a fresh process that can observe the first attempt's side effect. *)
let test_real_retry_cures_crash () =
  let marker = Filename.temp_file "trg-pool-retry-" ".flag" in
  Sys.remove marker;
  Fun.protect
    ~finally:(fun () -> try Sys.remove marker with Sys_error _ -> ())
    (fun () ->
      let tasks =
        [
          task "flaky" (fun () ->
              if Sys.file_exists marker then 42
              else begin
                let oc = open_out marker in
                close_out oc;
                Unix._exit 9
              end);
        ]
      in
      let outcomes, retries =
        counter_delta "pool/retries" (fun () ->
            Pool.run ~jobs:1 ~retries:2 ~retry_delay:0.01 tasks)
      in
      Alcotest.(check int) "one retry consumed" 1 retries;
      Alcotest.(check (list (result int string)))
        "second attempt succeeded" [ Ok 42 ] (values outcomes))

let suite =
  [
    Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame clean EOF" `Quick test_frame_clean_eof;
    Alcotest.test_case "frame CRC corruption detected" `Quick test_frame_crc_corruption;
    Alcotest.test_case "frame truncation detected" `Quick test_frame_truncation;
    Alcotest.test_case "frame absurd length rejected" `Quick test_frame_absurd_length;
    Alcotest.test_case "outcomes invariant under jobs" `Quick test_jobs_invariance;
    Alcotest.test_case "unit failure isolated" `Quick test_unit_failure_isolated;
    Alcotest.test_case "fail-fast cancels the rest" `Quick test_fail_fast_cancels;
    Alcotest.test_case "worker crash isolated" `Quick test_worker_crash_isolated;
    Alcotest.test_case "timeout kills overrunning unit" `Quick test_timeout_kills;
    Alcotest.test_case "worker metrics absorbed" `Quick test_metrics_propagate;
    Alcotest.test_case "snapshot merge algebra" `Quick test_merge_associative_commutative;
    Alcotest.test_case "report counters invariant under jobs" `Quick
      test_report_jobs_invariance;
    Alcotest.test_case "sim matches real backend" `Quick test_sim_matches_real;
    Alcotest.test_case "sim crash attributed" `Quick test_sim_crash_attributed;
    Alcotest.test_case "sim retry cures crash" `Quick test_sim_retry_cures_crash;
    Alcotest.test_case "sim corruption detected" `Quick test_sim_corruption_detected;
    Alcotest.test_case "sim torn write detected" `Quick test_sim_torn_write_detected;
    Alcotest.test_case "sim stuck worker times out" `Quick test_sim_stuck_times_out;
    Alcotest.test_case "sim spurious wakeups harmless" `Quick test_sim_eintr_harmless;
    Alcotest.test_case "sim crash-every-worker completes" `Quick
      test_sim_crash_every_worker_completes;
    Alcotest.test_case "sim determinism" `Quick test_sim_determinism;
    Alcotest.test_case "sim fail-fast keeps original fault" `Quick
      test_sim_fail_fast_reports_original_fault;
    Alcotest.test_case "sim metrics absorbed once with retry" `Quick
      test_sim_metrics_absorbed_once_with_retry;
    Alcotest.test_case "worker lanes tagged on absorbed spans" `Quick
      test_worker_lane_tagging;
    Alcotest.test_case "real retry cures crash" `Quick test_real_retry_cures_crash;
  ]
