(* The forked worker pool: wire format, scheduling, failure isolation,
   and — most importantly — determinism: the same tasks must produce the
   same outcomes, outputs and telemetry whatever the job count. *)

module Pool = Trg_eval.Pool
module Fault = Trg_util.Fault
module Metrics = Trg_obs.Metrics
module Report = Trg_eval.Report

(* --- wire format ------------------------------------------------------ *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let test_frame_roundtrip () =
  with_pipe (fun r w ->
      Pool.Frame.write w "hello pool";
      Pool.Frame.write w "";
      Alcotest.(check string) "payload" "hello pool" (Pool.Frame.read r);
      Alcotest.(check string) "empty payload" "" (Pool.Frame.read r))

let test_frame_clean_eof () =
  with_pipe (fun r w ->
      Unix.close w;
      match Pool.Frame.read r with
      | (_ : string) -> Alcotest.fail "expected End_of_file"
      | exception End_of_file -> ())

(* A frame with a corrupted payload byte must surface as a typed checksum
   fault, never as garbage data. *)
let test_frame_crc_corruption () =
  with_pipe (fun r w ->
      let frame = Bytes.of_string (Pool.Frame.encode "sensitive payload") in
      (* Flip a bit inside the payload region (header is 8 bytes). *)
      Bytes.set frame 10 (Char.chr (Char.code (Bytes.get frame 10) lxor 0x40));
      let s = Bytes.to_string frame in
      ignore (Unix.write_substring w s 0 (String.length s));
      match Pool.Frame.read r with
      | (_ : string) -> Alcotest.fail "corrupted frame was accepted"
      | exception Fault.Error (Fault.Checksum_mismatch _) -> ()
      | exception e ->
        Alcotest.fail ("expected Checksum_mismatch, got " ^ Printexc.to_string e))

let test_frame_truncation () =
  with_pipe (fun r w ->
      let s = Pool.Frame.encode "truncated in flight" in
      ignore (Unix.write_substring w s 0 (String.length s - 3));
      Unix.close w;
      match Pool.Frame.read r with
      | (_ : string) -> Alcotest.fail "truncated frame was accepted"
      | exception Fault.Error (Fault.Truncated _) -> ()
      | exception e ->
        Alcotest.fail ("expected Truncated, got " ^ Printexc.to_string e))

let test_frame_absurd_length () =
  with_pipe (fun r w ->
      (* A header claiming a terabyte payload must be rejected before
         any allocation happens. *)
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 (Int64.of_int (1 lsl 40));
      ignore (Unix.write w b 0 8);
      Unix.close w;
      match Pool.Frame.read r with
      | (_ : string) -> Alcotest.fail "absurd length was accepted"
      | exception Fault.Error (Fault.Bad_record _) -> ()
      | exception e ->
        Alcotest.fail ("expected Bad_record, got " ^ Printexc.to_string e))

(* --- scheduling and determinism --------------------------------------- *)

let task key work = { Pool.key; work }

let values outcomes =
  List.map
    (fun (o : _ Pool.outcome) ->
      match o.Pool.value with Ok v -> Ok v | Error f -> Error (Pool.failure_to_string f))
    outcomes

(* Same tasks, different job counts: outcomes, order and captured output
   must be identical. *)
let test_jobs_invariance () =
  let mk_tasks () =
    List.init 13 (fun i ->
        task (Printf.sprintf "unit %d" i) (fun () ->
            let rng = Trg_util.Prng.create (1_000 + i) in
            let acc = ref 0 in
            for _ = 1 to 1000 do
              acc := !acc + Trg_util.Prng.int rng 97
            done;
            Printf.printf "unit %d -> %d\n" i !acc;
            !acc))
  in
  let run jobs = Pool.run ~jobs (mk_tasks ()) in
  let o1 = run 1 and o4 = run 4 in
  Alcotest.(check (list (result int string)))
    "values identical across job counts" (values o1) (values o4);
  Alcotest.(check (list string))
    "outputs identical across job counts"
    (List.map (fun o -> o.Pool.output) o1)
    (List.map (fun o -> o.Pool.output) o4);
  Alcotest.(check (list string))
    "keys preserved in task order"
    (List.init 13 (Printf.sprintf "unit %d"))
    (List.map (fun o -> o.Pool.key) o1)

(* A unit that raises fails alone; the rest of the batch completes. *)
let test_unit_failure_isolated () =
  let tasks =
    [
      task "ok1" (fun () -> 1);
      task "boom" (fun () -> failwith "boom");
      task "ok2" (fun () -> 2);
    ]
  in
  let outcomes = Pool.run ~jobs:2 tasks in
  Alcotest.(check (list (result int string)))
    "failure isolated to its unit"
    [ Ok 1; Error "boom"; Ok 2 ]
    (values outcomes)

(* fail_fast with one worker: everything after the failing unit is
   cancelled, deterministically. *)
let test_fail_fast_cancels () =
  let tasks =
    [
      task "ok" (fun () -> 1);
      task "boom" (fun () -> failwith "boom");
      task "never" (fun () -> 3);
    ]
  in
  let outcomes = Pool.run ~jobs:1 ~fail_fast:true tasks in
  Alcotest.(check (list (result int string)))
    "cancelled after the failure"
    [ Ok 1; Error "boom"; Error (Pool.failure_to_string Pool.Cancelled) ]
    (values outcomes)

(* A worker dying mid-unit (here: hard exit, as a crash would) is
   detected by pipe EOF; the unit is attributed, a fresh worker replaces
   the dead one, and the batch completes without hanging. *)
let test_worker_crash_isolated () =
  let tasks =
    [
      task "ok1" (fun () -> 1);
      task "crash" (fun () ->
          Unix._exit 9 (* simulates a segfaulting worker *));
      task "ok2" (fun () -> 2);
      task "ok3" (fun () -> 3);
    ]
  in
  let outcomes = Pool.run ~jobs:2 tasks in
  (match (List.nth outcomes 1).Pool.value with
  | Error (Pool.Worker_crashed _) -> ()
  | Error f -> Alcotest.fail ("expected Worker_crashed, got " ^ Pool.failure_to_string f)
  | Ok _ -> Alcotest.fail "crashed unit reported success");
  List.iter
    (fun (i, expected) ->
      match (List.nth outcomes i).Pool.value with
      | Ok v -> Alcotest.(check int) "surviving unit" expected v
      | Error f -> Alcotest.fail ("survivor failed: " ^ Pool.failure_to_string f))
    [ (0, 1); (2, 2); (3, 3) ]

(* An overrunning unit is killed at the deadline and reported as timed
   out; the batch finishes promptly. *)
let test_timeout_kills () =
  let t0 = Unix.gettimeofday () in
  let tasks =
    [ task "ok" (fun () -> 1); task "hang" (fun () -> Unix.sleep 600; 2) ]
  in
  let outcomes = Pool.run ~jobs:2 ~timeout:0.5 tasks in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "did not wait for the hung unit" true (elapsed < 30.);
  (match (List.nth outcomes 1).Pool.value with
  | Error (Pool.Timed_out _) -> ()
  | Error f -> Alcotest.fail ("expected Timed_out, got " ^ Pool.failure_to_string f)
  | Ok _ -> Alcotest.fail "hung unit reported success");
  Alcotest.(check (result int string)) "fast unit unaffected" (Ok 1)
    (List.hd (values outcomes))

(* Worker-side telemetry must reach the parent: counters bumped inside
   units are absorbed into the parent registry, independent of jobs. *)
let test_metrics_propagate () =
  let c = Metrics.counter "pool_test/work" in
  let before = Metrics.value c in
  let mk_tasks () =
    List.init 6 (fun i -> task (string_of_int i) (fun () ->
        Metrics.add (Metrics.counter "pool_test/work") (i + 1)))
  in
  ignore (Pool.run ~jobs:1 (mk_tasks ()));
  let after_serial = Metrics.value c in
  ignore (Pool.run ~jobs:3 (mk_tasks ()));
  let after_parallel = Metrics.value c in
  Alcotest.(check int) "serial run absorbed 1+..+6" (before + 21) after_serial;
  Alcotest.(check int) "parallel run absorbed the same" (before + 42) after_parallel

(* --- snapshot algebra -------------------------------------------------- *)

let snap counters =
  {
    Metrics.snap_counters = counters;
    snap_gauges = [];
    snap_histograms = [];
  }

(* Totals must not depend on how per-worker snapshots are grouped —
   that's what makes pooled counters equal to sequential ones. *)
let test_merge_associative_commutative () =
  let a = snap [ ("x", 1); ("y", 10) ] in
  let b = snap [ ("x", 2); ("z", 100) ] in
  let c = snap [ ("y", 20); ("z", 200) ] in
  let eq = Alcotest.(check (list (pair string int))) in
  eq "associative"
    (Metrics.merge (Metrics.merge a b) c).Metrics.snap_counters
    (Metrics.merge a (Metrics.merge b c)).Metrics.snap_counters;
  eq "commutative"
    (Metrics.merge a b).Metrics.snap_counters
    (Metrics.merge b a).Metrics.snap_counters;
  eq "identity"
    (Metrics.merge a Metrics.empty_snapshot).Metrics.snap_counters
    a.Metrics.snap_counters

(* --- report-level determinism ----------------------------------------- *)

(* The full experiment path: a quick table1 with 1 and with 4 workers
   must add exactly the same amount to every counter. *)
let test_report_jobs_invariance () =
  let deltas jobs =
    let before = Metrics.counters () in
    let failures =
      Report.table1 { Report.quick_options with jobs }
    in
    Alcotest.(check int) "clean run" 0 (List.length failures);
    let after = Metrics.counters () in
    List.map
      (fun (name, v) ->
        (name, v - (try List.assoc name before with Not_found -> 0)))
      after
  in
  let d1 = deltas 1 in
  let d4 = deltas 4 in
  Alcotest.(check (list (pair string int))) "counter deltas identical" d1 d4

let suite =
  [
    Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame clean EOF" `Quick test_frame_clean_eof;
    Alcotest.test_case "frame CRC corruption detected" `Quick test_frame_crc_corruption;
    Alcotest.test_case "frame truncation detected" `Quick test_frame_truncation;
    Alcotest.test_case "frame absurd length rejected" `Quick test_frame_absurd_length;
    Alcotest.test_case "outcomes invariant under jobs" `Quick test_jobs_invariance;
    Alcotest.test_case "unit failure isolated" `Quick test_unit_failure_isolated;
    Alcotest.test_case "fail-fast cancels the rest" `Quick test_fail_fast_cancels;
    Alcotest.test_case "worker crash isolated" `Quick test_worker_crash_isolated;
    Alcotest.test_case "timeout kills overrunning unit" `Quick test_timeout_kills;
    Alcotest.test_case "worker metrics absorbed" `Quick test_metrics_propagate;
    Alcotest.test_case "snapshot merge algebra" `Quick test_merge_associative_commutative;
    Alcotest.test_case "report counters invariant under jobs" `Quick
      test_report_jobs_invariance;
  ]
