(* Robustness tests for the artifact pipeline: CRC-32, round-trips of the
   v2 and v3 (flat binary) formats, v1 compatibility, a corruption matrix
   asserting every fault yields a typed [Fault.error], the deterministic
   fault injector, the retry combinator, and the failure-isolating batch
   runner. *)

module Checksum = Trg_util.Checksum
module Fault = Trg_util.Fault
module Event = Trg_trace.Event
module Trace = Trg_trace.Trace
module Io = Trg_trace.Io
module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Serial = Trg_program.Serial
module Report = Trg_eval.Report
module Runner = Trg_eval.Runner

let ev kind proc offset len = Event.make ~kind ~proc ~offset ~len

let sample_events =
  [
    ev Event.Enter 0 0 32;
    ev Event.Enter 1 0 16;
    ev Event.Run 1 16 16;
    ev Event.Resume 0 32 32;
    ev Event.Enter 2 0 64;
  ]

let sample_trace = Trace.of_list sample_events

let sample_program = Program.of_sizes [| 32; 64; 48 |]

let sample_layout = Layout.default sample_program

let with_temp f =
  let path = Filename.temp_file "trgplace_faults" ".artifact" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* --- CRC-32 ---------------------------------------------------------- *)

let test_crc_vector () =
  Alcotest.(check string) "check vector" "cbf43926" (Checksum.to_hex (Checksum.string "123456789"));
  Alcotest.(check string) "empty" "00000000" (Checksum.to_hex Checksum.empty)

let test_crc_chaining () =
  let a = "trgplace" and b = " artifact pipeline" in
  Alcotest.(check int) "chained = whole"
    (Checksum.string (a ^ b))
    (Checksum.string ~crc:(Checksum.string a) b);
  Alcotest.(check int) "substring"
    (Checksum.string "345")
    (Checksum.substring "123456789" ~pos:2 ~len:3)

let test_crc_hex_roundtrip () =
  let crc = Checksum.string "some artifact" in
  Alcotest.(check (option int)) "of_hex . to_hex" (Some crc) (Checksum.of_hex (Checksum.to_hex crc));
  Alcotest.(check (option int)) "bad width" None (Checksum.of_hex "abc");
  Alcotest.(check (option int)) "not hex" None (Checksum.of_hex "zzzzzzzz")

(* --- round-trips ----------------------------------------------------- *)

let test_text_trace_roundtrip () =
  with_temp (fun path ->
      Io.save path sample_trace;
      (match Io.load_result path with
      | Ok t -> Alcotest.(check bool) "events" true (Trace.to_list t = sample_events)
      | Error e -> Alcotest.failf "unexpected error: %s" (Fault.to_string e));
      Alcotest.(check bool) "no temp residue" false (Sys.file_exists (path ^ ".tmp")))

let test_binary_trace_roundtrip () =
  with_temp (fun path ->
      Io.save_binary path sample_trace;
      match Io.load_result path with
      | Ok t -> Alcotest.(check bool) "events" true (Trace.to_list t = sample_events)
      | Error e -> Alcotest.failf "unexpected error: %s" (Fault.to_string e))

let test_program_roundtrip () =
  with_temp (fun path ->
      Serial.save_program path sample_program;
      match Serial.load_program_result path with
      | Ok p ->
        Alcotest.(check int) "procs" (Program.n_procs sample_program) (Program.n_procs p)
      | Error e -> Alcotest.failf "unexpected error: %s" (Fault.to_string e))

let test_layout_roundtrip () =
  with_temp (fun path ->
      Serial.save_layout path sample_layout;
      match Serial.load_layout_result sample_program path with
      | Ok l ->
        Alcotest.(check bool) "addresses" true
          (Layout.addresses l = Layout.addresses sample_layout)
      | Error e -> Alcotest.failf "unexpected error: %s" (Fault.to_string e))

let test_missing_file () =
  match Io.load_result "/nonexistent/trgplace.trace" with
  | Error (Fault.Io_error _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Fault.to_string e)
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"

(* --- v1 compatibility ------------------------------------------------ *)

(* Derive a v1 file (no trailer) from the v2 bytes: drop the trailer and
   rewrite the header version — exactly the format the seed code wrote. *)
let v1_of_v2_text content =
  let lines = String.split_on_char '\n' content in
  let lines = List.filter (fun l -> l <> "" && not (String.length l >= 4 && String.sub l 0 4 = "#crc")) lines in
  match lines with
  | header :: records ->
    let header =
      match String.index_opt header ' ' with
      | Some i ->
        let magic = String.sub header 0 i in
        let rest = String.sub header (i + 1) (String.length header - i - 1) in
        let j = String.index rest ' ' in
        magic ^ " 1" ^ String.sub rest j (String.length rest - j)
      | None -> header
    in
    String.concat "" (List.map (fun l -> l ^ "\n") (header :: records))
  | [] -> content

let test_v1_text_trace_loads () =
  with_temp (fun path ->
      Io.save path sample_trace;
      write_file path (v1_of_v2_text (read_file path));
      match Io.load_result path with
      | Ok t -> Alcotest.(check bool) "v1 text trace" true (Trace.to_list t = sample_events)
      | Error e -> Alcotest.failf "v1 rejected: %s" (Fault.to_string e))

let test_v1_binary_trace_loads () =
  with_temp (fun path ->
      Io.save_binary path sample_trace;
      let content = read_file path in
      (* Drop the 4 trailer bytes, rewrite the header version. *)
      let content = String.sub content 0 (String.length content - 4) in
      let header_end = String.index content '\n' in
      let header = String.sub content 0 header_end in
      let header =
        Scanf.sscanf header "%s %d %d" (fun m _ n -> Printf.sprintf "%s %d %d" m 1 n)
      in
      write_file path
        (header ^ String.sub content header_end (String.length content - header_end));
      match Io.load_result path with
      | Ok t -> Alcotest.(check bool) "v1 binary trace" true (Trace.to_list t = sample_events)
      | Error e -> Alcotest.failf "v1 rejected: %s" (Fault.to_string e))

let test_v1_program_and_layout_load () =
  with_temp (fun path ->
      Serial.save_program path sample_program;
      write_file path (v1_of_v2_text (read_file path));
      (match Serial.load_program_result path with
      | Ok p -> Alcotest.(check int) "v1 program" 3 (Program.n_procs p)
      | Error e -> Alcotest.failf "v1 program rejected: %s" (Fault.to_string e));
      Serial.save_layout path sample_layout;
      write_file path (v1_of_v2_text (read_file path));
      match Serial.load_layout_result sample_program path with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "v1 layout rejected: %s" (Fault.to_string e))

(* --- corruption matrix ----------------------------------------------- *)

(* Each artifact kind: name, writer, typed loader. *)
let kinds : (string * (string -> unit) * (string -> (unit, Fault.error) result)) list =
  [
    ( "text-trace",
      (fun p -> Io.save p sample_trace),
      fun p -> Result.map ignore (Io.load_result p) );
    ( "binary-trace",
      (fun p -> Io.save_binary p sample_trace),
      fun p -> Result.map ignore (Io.load_result p) );
    ( "program",
      (fun p -> Serial.save_program p sample_program),
      fun p -> Result.map ignore (Serial.load_program_result p) );
    ( "layout",
      (fun p -> Serial.save_layout p sample_layout),
      fun p -> Result.map ignore (Serial.load_layout_result sample_program p) );
    ( "flat-trace",
      (fun p -> Io.save_flat p (Trace.Flat.of_trace sample_trace)),
      fun p -> Result.map ignore (Io.load_flat_result p) );
  ]

let replace_first_opt ~sub ~by s =
  let n = String.length s and m = String.length sub in
  let rec find i =
    if i + m > n then None else if String.sub s i m = sub then Some i else find (i + 1)
  in
  Option.map
    (fun i -> String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m))
    (find 0)

let replace_first ~sub ~by s =
  match replace_first_opt ~sub ~by s with
  | Some s -> s
  | None -> Alcotest.failf "corruption pattern %S not found" sub

let lines_of s = String.split_on_char '\n' s

let unlines ls = String.concat "\n" ls

(* Corruption modes.  [expect] names the error constructors the mode may
   legitimately produce — which one fires can depend on where in the
   record structure the damage lands, but it must always be one of
   these. *)
let describe = function
  | Fault.Bad_magic _ -> "Bad_magic"
  | Fault.Unsupported_version _ -> "Unsupported_version"
  | Fault.Checksum_mismatch _ -> "Checksum_mismatch"
  | Fault.Truncated _ -> "Truncated"
  | Fault.Bad_record _ -> "Bad_record"
  | Fault.Io_error _ -> "Io_error"

(* The text trailer is exactly 14 bytes ("#crc " + 8 hex + newline), so
   cutting 14 removes precisely the trailer of every text artifact (and
   tears mid-record in the binary one): always [Truncated]. *)
let truncate_mode content = String.sub content 0 (String.length content - 14)

(* A deeper cut also tears the last record, which may surface as a parse
   error instead. *)
let torn_tail_mode content = String.sub content 0 (String.length content - 20)

let drop_trailer content = String.sub content 0 (String.length content - 6)

let bad_magic_mode content = replace_first ~sub:"trgplace-" ~by:"xxxxxxxx-" content

(* v2 artifacts carry " 2 " in the header, v3 (flat) carries " 3 ". *)
let bad_version_mode content =
  match replace_first_opt ~sub:" 2 " ~by:" 9 " content with
  | Some c -> c
  | None -> replace_first ~sub:" 3 " ~by:" 9 " content

let oversized_count_mode content =
  match lines_of content with
  | header :: rest ->
    let header =
      Scanf.sscanf header "%s %d %d" (fun m v n -> Printf.sprintf "%s %d %d" m v (n + 5))
    in
    unlines (header :: rest)
  | [] -> content

let bad_record_mode content =
  match lines_of content with
  | header :: _ :: rest -> unlines (header :: "zz zz zz" :: rest)
  | _ -> content

let binary_zero_record content =
  let header_end = String.index content '\n' + 1 in
  let b = Bytes.of_string content in
  Bytes.fill b header_end 8 '\000';
  Bytes.to_string b

let corruption_matrix =
  [
    ("truncation", truncate_mode, [ "Truncated" ]);
    ("torn tail", torn_tail_mode, [ "Truncated"; "Bad_record" ]);
    ("missing trailer", drop_trailer, [ "Truncated"; "Bad_record" ]);
    ("bad magic", bad_magic_mode, [ "Bad_magic" ]);
    ("bad version", bad_version_mode, [ "Unsupported_version" ]);
    ("oversized count", oversized_count_mode, [ "Truncated"; "Bad_record" ]);
    ("garbled record", bad_record_mode, [ "Bad_record"; "Checksum_mismatch"; "Truncated" ]);
  ]

let check_corruption ~kind ~mode load path mutate expect =
  let content = mutate (read_file path) in
  write_file path content;
  let outcome = try `Result (load path) with e -> `Raised e in
  match outcome with
  | `Result (Error e) ->
    let name = describe e in
    if not (List.mem name expect) then
      Alcotest.failf "%s/%s: got %s (%s), expected one of [%s]" kind mode name
        (Fault.to_string e) (String.concat "; " expect)
  | `Result (Ok ()) -> Alcotest.failf "%s/%s: corruption not detected" kind mode
  | `Raised e ->
    Alcotest.failf "%s/%s: untyped exception escaped the loader: %s" kind mode
      (Printexc.to_string e)

let test_corruption_matrix () =
  List.iter
    (fun (kind, save, load) ->
      List.iter
        (fun (mode, mutate, expect) ->
          with_temp (fun path ->
              save path;
              check_corruption ~kind ~mode load path mutate expect))
        corruption_matrix)
    kinds

let test_bit_flips_detected () =
  (* Text artifacts: a single in-record digit change that still parses is
     exactly what the CRC trailer exists to catch. *)
  List.iter
    (fun (kind, save, load, sub, by) ->
      with_temp (fun path ->
          save path;
          check_corruption ~kind ~mode:"bit flip" load path
            (replace_first ~sub ~by)
            [ "Checksum_mismatch" ]))
    [
      ( "text-trace",
        (fun p -> Io.save p sample_trace),
        (fun p -> Result.map ignore (Io.load_result p)),
        "E 0 0 32",
        "E 0 1 32" );
      ( "program",
        (fun p -> Serial.save_program p sample_program),
        (fun p -> Result.map ignore (Serial.load_program_result p)),
        "0 32 p0",
        "0 33 p0" );
      ( "layout",
        (fun p -> Serial.save_layout p sample_layout),
        (fun p -> Result.map ignore (Serial.load_layout_result sample_program p)),
        "2 96",
        "2 97" );
    ];
  (* Binary trace: flipped bits either break the CRC or a field range. *)
  with_temp (fun path ->
      Io.save_binary path sample_trace;
      let flip content =
        let i = String.index content '\n' + 3 in
        let b = Bytes.of_string content in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
        Bytes.to_string b
      in
      check_corruption ~kind:"binary-trace" ~mode:"bit flip"
        (fun p -> Result.map ignore (Io.load_result p))
        path flip
        [ "Checksum_mismatch"; "Bad_record" ])

let test_binary_bad_record () =
  with_temp (fun path ->
      Io.save_binary path sample_trace;
      check_corruption ~kind:"binary-trace" ~mode:"zeroed record"
        (fun p -> Result.map ignore (Io.load_result p))
        path binary_zero_record
        [ "Bad_record"; "Checksum_mismatch" ])

(* v3 (flat binary) specifics: the header line is fixed-width (32 bytes,
   8-aligned, for mmap-friendly payload alignment), the format loads
   through both the cross-format reader and the flat loader, and a zeroed
   payload word (len = 0) is a typed [Bad_record] before the trailer is
   even reached. *)
let test_v3_header_fixed_width () =
  with_temp (fun path ->
      Io.save_flat path (Trace.Flat.of_trace sample_trace);
      let content = read_file path in
      Alcotest.(check int) "32-byte header line" 32 (String.index content '\n' + 1);
      (match Io.load_result path with
      | Ok t ->
        Alcotest.(check bool) "v3 via Io.load" true (Trace.to_list t = sample_events)
      | Error e -> Alcotest.failf "v3 rejected by Io.load: %s" (Fault.to_string e));
      match Io.load_flat_result path with
      | Ok f ->
        Alcotest.(check bool) "v3 via Io.load_flat" true
          (Trace.to_list (Trace.Flat.to_trace f) = sample_events)
      | Error e -> Alcotest.failf "v3 rejected by Io.load_flat: %s" (Fault.to_string e))

let test_flat_bad_record () =
  with_temp (fun path ->
      Io.save_flat path (Trace.Flat.of_trace sample_trace);
      check_corruption ~kind:"flat-trace" ~mode:"zeroed record"
        (fun p -> Result.map ignore (Io.load_flat_result p))
        path binary_zero_record
        [ "Bad_record"; "Checksum_mismatch" ])

(* The flat loader parses v3 files through a memory mapping.  A trace
   bigger than the parser's 64 KB chunk proves the multi-chunk CRC fold
   and decode, and every truncation point of the mapped body — mid-word,
   between words, trailer torn, trailer gone — must surface as the same
   typed [Truncated] the channel reader produces, never a crash or a
   wrong trace. *)
let big_flat_trace =
  Trace.of_list
    (List.init 12_000 (fun i ->
         ev
           (match i mod 3 with 0 -> Event.Enter | 1 -> Event.Run | _ -> Event.Resume)
           (i mod 7)
           (8 * (i mod 50))
           (8 + (i mod 24))))

let test_flat_mmap_roundtrip () =
  with_temp (fun path ->
      Io.save_flat path (Trace.Flat.of_trace big_flat_trace);
      match Io.load_flat_result path with
      | Ok f ->
        Alcotest.(check int) "length" (Trace.length big_flat_trace)
          (Trace.Flat.length f);
        Alcotest.(check bool) "events identical" true
          (Trace.to_list (Trace.Flat.to_trace f) = Trace.to_list big_flat_trace)
      | Error e -> Alcotest.failf "mmap load failed: %s" (Fault.to_string e))

let test_flat_mmap_truncation_matrix () =
  (* Cut points, in bytes removed from the end of the full v3 file. *)
  let cuts =
    [
      ("torn trailer", 2, [ "Truncated" ]);
      ("missing trailer", 4, [ "Truncated" ]);
      ("torn last word", 7, [ "Truncated" ]);
      ("missing body tail", 12, [ "Truncated" ]);
      ("half the body gone", 6_000 * 8, [ "Truncated" ]);
      ("header only", (12_000 * 8) + 4, [ "Truncated" ]);
    ]
  in
  List.iter
    (fun (mode, cut, expect) ->
      with_temp (fun path ->
          Io.save_flat path (Trace.Flat.of_trace big_flat_trace);
          check_corruption ~kind:"flat-mmap" ~mode
            (fun p -> Result.map ignore (Io.load_flat_result p))
            path
            (fun content -> String.sub content 0 (String.length content - cut))
            expect))
    cuts;
  (* Empty file: mapping is impossible; the channel fallback reports the
     truncation. *)
  with_temp (fun path ->
      write_file path "";
      match Io.load_flat_result path with
      | Error (Fault.Truncated _) -> ()
      | Error e -> Alcotest.failf "empty file: wrong error %s" (Fault.to_string e)
      | Ok _ -> Alcotest.fail "empty file accepted")

let test_flat_mmap_bit_flip () =
  with_temp (fun path ->
      Io.save_flat path (Trace.Flat.of_trace big_flat_trace);
      let flip content =
        (* Damage a byte deep in the second chunk of the mapped body. *)
        let i = String.index content '\n' + 1 + 70_000 in
        let b = Bytes.of_string content in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x04));
        Bytes.to_string b
      in
      check_corruption ~kind:"flat-mmap" ~mode:"bit flip"
        (fun p -> Result.map ignore (Io.load_flat_result p))
        path flip
        [ "Checksum_mismatch"; "Bad_record" ])

(* Regression for the out-of-bounds write in [Serial.read_layout]: an
   unvalidated proc id used to index the address array directly and
   escape as [Invalid_argument "index out of bounds"]. *)
let test_layout_id_out_of_range () =
  with_temp (fun path ->
      Serial.save_layout path sample_layout;
      check_corruption ~kind:"layout" ~mode:"id out of range"
        (fun p -> Result.map ignore (Serial.load_layout_result sample_program p))
        path
        (replace_first ~sub:"1 32" ~by:"7 32")
        [ "Bad_record" ])

let test_layout_duplicate_id () =
  with_temp (fun path ->
      Serial.save_layout path sample_layout;
      check_corruption ~kind:"layout" ~mode:"duplicate id"
        (fun p -> Result.map ignore (Serial.load_layout_result sample_program p))
        path
        (replace_first ~sub:"1 32" ~by:"0 32")
        [ "Bad_record" ])

let test_verify_layout_structural () =
  with_temp (fun path ->
      Serial.save_layout path sample_layout;
      (match Serial.verify_layout_result path with
      | Ok n -> Alcotest.(check int) "procs" 3 n
      | Error e -> Alcotest.failf "verify failed: %s" (Fault.to_string e));
      write_file path (replace_first ~sub:"1 32" ~by:"7 32" (read_file path));
      match Serial.verify_layout_result path with
      | Error (Fault.Bad_record _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Fault.to_string e)
      | Ok _ -> Alcotest.fail "structural fault not detected")

(* --- fault injector -------------------------------------------------- *)

let test_injector_deterministic () =
  let payload = String.concat "\n" (List.init 50 (fun i -> string_of_int (i * 7))) in
  let corrupt seed =
    Fault.corrupt (Fault.injector ~bit_flip_rate:0.05 ~truncate_rate:0.2 ~seed ()) payload
  in
  Alcotest.(check string) "same seed, same damage" (corrupt 42) (corrupt 42);
  Alcotest.(check bool) "damage applied" true (corrupt 42 <> payload)

let test_injector_io_failures () =
  let inj = Fault.injector ~io_fail_rate:1.0 ~seed:7 () in
  with_temp (fun path ->
      Io.save path sample_trace;
      let before = read_file path in
      (* Writes fail with a typed error and leave the artifact intact... *)
      (match Fault.with_injector inj (fun () -> Io.save_result path Trace.(of_list [])) with
      | Error (Fault.Io_error _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Fault.to_string e)
      | Ok () -> Alcotest.fail "injected write fault did not fire");
      Alcotest.(check string) "original artifact untouched" before (read_file path);
      Alcotest.(check bool) "no temp residue" false (Sys.file_exists (path ^ ".tmp"));
      (* ...and reads fail with a typed error too. *)
      match Fault.with_injector inj (fun () -> Io.load_result path) with
      | Error (Fault.Io_error _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Fault.to_string e)
      | Ok _ -> Alcotest.fail "injected read fault did not fire")

let test_injector_corrupts_writes () =
  (* Heavy bit-flipping on the write path: whatever the damage hits —
     header, records, trailer — the loader must answer with a typed
     error, never an escaped exception. *)
  let inj = Fault.injector ~bit_flip_rate:0.02 ~seed:3 () in
  let big = Trace.of_list (List.concat (List.init 40 (fun _ -> sample_events))) in
  with_temp (fun path ->
      (match Fault.with_injector inj (fun () -> Io.save_result path big) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save failed: %s" (Fault.to_string e));
      match try `Result (Io.load_result path) with e -> `Raised e with
      | `Result (Error _) -> ()
      | `Result (Ok t) ->
        (* Astronomically unlikely with ~70 expected flips, but only a
           clean CRC would let it through. *)
        Alcotest.(check bool) "flips evaded the CRC" true (Trace.to_list t = Trace.to_list big)
      | `Raised e ->
        Alcotest.failf "untyped exception escaped: %s" (Printexc.to_string e))

(* --- retry ----------------------------------------------------------- *)

let test_retry_succeeds_after_transients () =
  let calls = ref 0 in
  let slept = ref [] in
  let v =
    Fault.with_retry ~attempts:5 ~base_delay:0.01
      ~sleep:(fun d -> slept := d :: !slept)
      (fun () ->
        incr calls;
        if !calls < 3 then Fault.fail (Fault.Io_error "transient");
        "done")
  in
  Alcotest.(check string) "value" "done" v;
  Alcotest.(check int) "attempts used" 3 !calls;
  Alcotest.(check (list (float 1e-9))) "exponential backoff" [ 0.02; 0.01 ] !slept

let test_retry_exhausts () =
  let calls = ref 0 in
  (match
     Fault.with_retry ~attempts:3 (fun () ->
         incr calls;
         Fault.fail (Fault.Io_error "still down"))
   with
  | (_ : unit) -> Alcotest.fail "expected failure"
  | exception Fault.Error (Fault.Io_error _) -> ());
  Alcotest.(check int) "all attempts used" 3 !calls

let test_retry_not_retryable () =
  let calls = ref 0 in
  (match
     Fault.with_retry ~attempts:3 (fun () ->
         incr calls;
         failwith "logic bug")
   with
  | (_ : unit) -> Alcotest.fail "expected failure"
  | exception Failure _ -> ());
  Alcotest.(check int) "no retries for permanent errors" 1 !calls

(* --- failure-isolating batch runner ---------------------------------- *)

let isolation_options =
  {
    Report.runs = 1;
    fig6_points = 3;
    benches = [ Trg_synth.Bench.find "small"; Trg_synth.Bench.find "go" ];
    print_cdf = false;
    print_points = false;
    keep_going = true;
    force_fail = [ "go" ];
    jobs = 2;
    timeout = None;
    retries = 0;
    policy = Trg_cache.Policy.Lru;
    cpus = Trg_cache.Cpu.default_selection;
  }

let test_strict_mode_propagates () =
  match Report.table1 { isolation_options with keep_going = false } with
  | _ -> Alcotest.fail "strict mode swallowed the failure"
  | exception Failure msg ->
    Alcotest.(check bool) "names the benchmark" true
      (String.length msg >= 2 && String.sub msg 0 2 = "go")

let test_keep_going_isolates () =
  let failures = Report.table1 isolation_options in
  Alcotest.(check int) "one failure recorded" 1 (List.length failures);
  let f = List.hd failures in
  Alcotest.(check string) "experiment" "table1" f.Report.experiment;
  Alcotest.(check (option string)) "bench" (Some "go") f.Report.bench

let test_keep_going_batch () =
  let failures = Report.all isolation_options in
  Alcotest.(check bool) "failures recorded" true (failures <> []);
  (* Only the forced benchmark fails; everything on [small] completed. *)
  List.iter
    (fun (f : Report.failure) ->
      Alcotest.(check (option string))
        (Printf.sprintf "failure traces to the broken benchmark (%s/%s)"
           f.Report.experiment f.Report.message)
        (Some "go") f.Report.bench)
    failures

let suite =
  [
    Alcotest.test_case "crc32 check vector" `Quick test_crc_vector;
    Alcotest.test_case "crc32 chaining" `Quick test_crc_chaining;
    Alcotest.test_case "crc32 hex roundtrip" `Quick test_crc_hex_roundtrip;
    Alcotest.test_case "v2 text trace roundtrip" `Quick test_text_trace_roundtrip;
    Alcotest.test_case "v2 binary trace roundtrip" `Quick test_binary_trace_roundtrip;
    Alcotest.test_case "v2 program roundtrip" `Quick test_program_roundtrip;
    Alcotest.test_case "v2 layout roundtrip" `Quick test_layout_roundtrip;
    Alcotest.test_case "missing file is Io_error" `Quick test_missing_file;
    Alcotest.test_case "v1 text trace loads" `Quick test_v1_text_trace_loads;
    Alcotest.test_case "v1 binary trace loads" `Quick test_v1_binary_trace_loads;
    Alcotest.test_case "v1 program/layout load" `Quick test_v1_program_and_layout_load;
    Alcotest.test_case "corruption matrix" `Quick test_corruption_matrix;
    Alcotest.test_case "bit flips detected" `Quick test_bit_flips_detected;
    Alcotest.test_case "binary bad record" `Quick test_binary_bad_record;
    Alcotest.test_case "v3 header fixed width" `Quick test_v3_header_fixed_width;
    Alcotest.test_case "v3 flat bad record" `Quick test_flat_bad_record;
    Alcotest.test_case "v3 mmap roundtrip" `Quick test_flat_mmap_roundtrip;
    Alcotest.test_case "v3 mmap truncation matrix" `Quick test_flat_mmap_truncation_matrix;
    Alcotest.test_case "v3 mmap bit flip" `Quick test_flat_mmap_bit_flip;
    Alcotest.test_case "layout id out of range" `Quick test_layout_id_out_of_range;
    Alcotest.test_case "layout duplicate id" `Quick test_layout_duplicate_id;
    Alcotest.test_case "verify layout structural" `Quick test_verify_layout_structural;
    Alcotest.test_case "injector deterministic" `Quick test_injector_deterministic;
    Alcotest.test_case "injector io failures" `Quick test_injector_io_failures;
    Alcotest.test_case "injector corrupts writes" `Quick test_injector_corrupts_writes;
    Alcotest.test_case "retry after transients" `Quick test_retry_succeeds_after_transients;
    Alcotest.test_case "retry exhausts" `Quick test_retry_exhausts;
    Alcotest.test_case "retry permanent error" `Quick test_retry_not_retryable;
    Alcotest.test_case "strict mode propagates" `Quick test_strict_mode_propagates;
    Alcotest.test_case "keep-going isolates" `Quick test_keep_going_isolates;
    Alcotest.test_case "keep-going batch reports partial" `Slow test_keep_going_batch;
  ]
