(* Property-based tests over randomized programs and traces: structural
   invariants every placement algorithm must satisfy (layouts are
   overlap-free and cover every procedure), set preservation of the
   line-aligning repack, and miss-count invariance of traces round-tripped
   through the checksummed I/O layer. *)

module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Config = Trg_cache.Config
module Sim = Trg_cache.Sim
module Event = Trg_trace.Event
module Trace = Trg_trace.Trace
module Io = Trg_trace.Io
module Tstats = Trg_trace.Tstats
module Wcg = Trg_profile.Wcg
module Popularity = Trg_profile.Popularity
module Gbsc = Trg_place.Gbsc
module Prng = Trg_util.Prng

(* --- randomized workloads --------------------------------------------- *)

(* A program of [n] procedures with line-friendly sizes, and a trace
   walking them with locality (a PRNG-driven Markov-ish walk: mostly
   nearby procedures, occasional jumps), so graphs and popularity have
   real structure. *)
let gen_workload =
  QCheck.Gen.(
    pair (int_range 2 14) (pair (int_range 1 400) int)
    |> map (fun (n_procs, (len, seed)) ->
           let rng = Prng.create seed in
           let sizes =
             Array.init n_procs (fun _ -> 16 + (16 * Prng.int rng 8))
           in
           let program = Program.of_sizes sizes in
           let cur = ref (Prng.int rng n_procs) in
           let events =
             List.init len (fun _ ->
                 (if Prng.int rng 4 = 0 then cur := Prng.int rng n_procs
                  else cur := (!cur + 1 + Prng.int rng 2) mod n_procs);
                 Event.make ~kind:Event.Enter ~proc:!cur ~offset:0 ~len:16)
           in
           (program, Trace.of_list events)))

let arb_workload =
  QCheck.make gen_workload ~print:(fun (program, trace) ->
      Printf.sprintf "%d procs, %d events" (Program.n_procs program)
        (Trace.length trace))

let small_cache = Config.make ~size:256 ~line_size:32 ~assoc:1

let config = Gbsc.default_config ~cache:small_cache ()

(* Every placement algorithm under test, from the same profile data. *)
let layouts_of (program, trace) =
  let prof = Gbsc.profile config program trace in
  let wcg = Wcg.build trace in
  let popularity = prof.Gbsc.popularity in
  [
    ("GBSC", Gbsc.place program prof);
    ("PH", Trg_place.Ph.place ~wcg program);
    ("HKC", Trg_place.Hkc.place config program ~wcg ~popularity);
    ("Torrellas", Trg_place.Torrellas.place config program ~popularity);
    ("Hwu-Chang", Trg_place.Hwu_chang.place ~wcg program);
  ]

(* A layout is valid iff it assigns every procedure an address and no two
   procedures' byte ranges overlap — i.e. it is a permutation with gaps,
   never a superposition. *)
let layout_valid program layout =
  let n = Program.n_procs program in
  Array.length (Layout.addresses layout) = n
  && Array.for_all (fun a -> a >= 0) (Layout.addresses layout)
  &&
  let by_addr =
    List.sort compare
      (List.init n (fun p -> (Layout.address layout p, Program.size program p)))
  in
  let rec no_overlap = function
    | (a1, s1) :: ((a2, _) :: _ as rest) ->
      a1 + s1 <= a2 && no_overlap rest
    | _ -> true
  in
  no_overlap by_addr

let prop_placements_are_permutations =
  QCheck.Test.make
    ~name:"every placement algorithm yields a complete overlap-free layout"
    ~count:60 arb_workload
    (fun workload ->
      let program, _ = workload in
      List.for_all
        (fun (name, layout) ->
          if layout_valid program layout then true
          else QCheck.Test.fail_reportf "%s produced an invalid layout" name)
        (layouts_of workload))

(* --- line_align set preservation -------------------------------------- *)

let prop_line_align_preserves_sets =
  QCheck.Test.make
    ~name:"line_align preserves every procedure's set index and validity"
    ~count:80
    QCheck.(pair arb_workload (int_range 1 8))
    (fun ((program, _), n_sets_exp) ->
      let n_sets = 1 lsl (n_sets_exp mod 5) in
      let line_size = 32 in
      let rng = Prng.create (Program.n_procs program + n_sets) in
      let layout = Layout.random rng program in
      let aligned = Layout.line_align ~line_size ~n_sets program layout in
      layout_valid program aligned
      && List.for_all
           (fun p ->
             let set l = Layout.address l p / line_size mod n_sets in
             set layout = set aligned
             && Layout.address aligned p mod line_size = 0)
           (List.init (Program.n_procs program) Fun.id))

(* --- trace I/O round-trip invariance ----------------------------------- *)

let with_temp ext f =
  let path = Filename.temp_file "trg_property" ext in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* Simulated miss counts are a function of the trace alone, so a trace
   round-tripped through the v2 text or binary format must simulate
   identically — checksummed I/O is transparent to every consumer. *)
let prop_simulation_invariant_under_io =
  QCheck.Test.make
    ~name:"miss counts invariant under trace save/load round-trip" ~count:40
    arb_workload
    (fun (program, trace) ->
      let layout = Layout.default program in
      let misses t = (Sim.simulate program layout small_cache t).Sim.misses in
      let reference = misses trace in
      let via_text =
        with_temp ".trace" (fun path ->
            Io.save path trace;
            misses (Io.load path))
      in
      let via_binary =
        with_temp ".btrace" (fun path ->
            Io.save_binary path trace;
            misses (Io.load path))
      in
      reference = via_text && reference = via_binary)

(* --- flat (Bigarray) trace representation ------------------------------ *)

(* Soak profile hook: [dune runtest --profile soak] multiplies QCheck
   iteration counts via TRGPLACE_QCHECK_FACTOR (see the root dune file). *)
let scaled n =
  match Sys.getenv_opt "TRGPLACE_QCHECK_FACTOR" with
  | Some f -> ( try n * int_of_string (String.trim f) with Failure _ -> n)
  | None -> n

(* Arbitrary events across the full packed ranges, including the field
   extremes ([proc < 2^14], [offset < 2^24], [0 < len <= 2^22]) whose
   packed forms stress the int32 lo/hi split of [Trace.Flat]. *)
let gen_event =
  QCheck.Gen.(
    let boundary_or_uniform hi =
      oneof [ int_range 0 hi; oneofl [ 0; 1; hi - 1; hi ] ]
    in
    map
      (fun (k, (proc, (offset, len))) ->
        let kind =
          match k with 0 -> Event.Enter | 1 -> Event.Resume | _ -> Event.Run
        in
        Event.make ~kind ~proc ~offset ~len)
      (pair (int_range 0 2)
         (pair
            (boundary_or_uniform ((1 lsl 14) - 1))
            (pair
               (boundary_or_uniform ((1 lsl 24) - 1))
               (map (fun l -> 1 + l) (boundary_or_uniform ((1 lsl 22) - 1)))))))

let arb_events =
  QCheck.make
    QCheck.Gen.(list_size (int_range 0 300) gen_event)
    ~print:(fun evs -> Printf.sprintf "%d events" (List.length evs))

let prop_flat_roundtrip =
  QCheck.Test.make ~name:"Flat.of_trace round-trips every event exactly"
    ~count:(scaled 200) arb_events
    (fun evs ->
      let trace = Trace.of_list evs in
      let flat = Trace.Flat.of_trace trace in
      Trace.Flat.length flat = Trace.length trace
      && Trace.to_list (Trace.Flat.to_trace flat) = evs
      && List.for_all
           (fun i ->
             Trace.Flat.get flat i = Trace.get trace i
             && Trace.Flat.get_packed flat i = Event.pack (Trace.get trace i))
           (List.init (Trace.length trace) Fun.id))

(* The flat-backed simulator must be a drop-in for the event-array one:
   same misses, same accesses, on direct-mapped and set-associative
   configurations alike. *)
let prop_sim_flat_invariant =
  QCheck.Test.make
    ~name:"miss counts invariant under flat-backed simulation"
    ~count:(scaled 60)
    QCheck.(pair arb_workload (int_range 1 2))
    (fun ((program, trace), assoc) ->
      let cache = Config.make ~size:(256 * assoc) ~line_size:32 ~assoc in
      let layout = Layout.default program in
      let reference = Sim.simulate program layout cache trace in
      let flat = Sim.simulate_flat program layout cache (Trace.Flat.of_trace trace) in
      reference.Sim.misses = flat.Sim.misses
      && reference.Sim.accesses = flat.Sim.accesses)

(* Io format v3: a trace saved flat must load identically through both
   [Io.load] (the cross-format reader) and [Io.load_flat], and v1/v2
   files must load into flat form unchanged — simulated miss counts are
   the observable. *)
let prop_v3_io_roundtrip =
  QCheck.Test.make
    ~name:"miss counts invariant under Io v3 save/load round-trips"
    ~count:(scaled 40) arb_workload
    (fun (program, trace) ->
      let layout = Layout.default program in
      let misses t = (Sim.simulate program layout small_cache t).Sim.misses in
      let reference = misses trace in
      let via_v3 =
        with_temp ".ftrace" (fun path ->
            Io.save_flat path (Trace.Flat.of_trace trace);
            ( misses (Io.load path),
              misses (Trace.Flat.to_trace (Io.load_flat path)) ))
      in
      let v2_as_flat =
        with_temp ".btrace" (fun path ->
            Io.save_binary path trace;
            misses (Trace.Flat.to_trace (Io.load_flat path)))
      in
      via_v3 = (reference, reference) && v2_as_flat = reference)

(* --- deterministic simulation of the evaluation pool ------------------- *)

module Pool = Trg_eval.Pool
module Psim = Trg_eval.Pool_sim
module Metrics = Trg_obs.Metrics

let pool_tasks units =
  List.init units (fun i ->
      {
        Pool.key = Printf.sprintf "u%d" i;
        work =
          (fun () ->
            Metrics.incr (Metrics.counter "property/sim_units");
            Printf.printf "u%d\n" i;
            (i * 37) land 0xFFFF);
      })

let outcome_repr (o : int Pool.outcome) =
  ( o.Pool.key,
    (match o.Pool.value with
    | Ok v -> "ok " ^ string_of_int v
    | Error f -> "error " ^ Pool.failure_to_string f),
    o.Pool.output )

(* The simulation tester's foundation: a run is a pure function of
   (seed, schedule, tasks, options).  Two identical runs must agree on
   every unit outcome, every captured output, and every counter delta —
   including the absorbed per-unit metrics and the supervisor's
   pool/respawns — or a failing seed could not be replayed. *)
let prop_sim_deterministic =
  QCheck.Test.make ~name:"pool simulation is a pure function of its seed" ~count:60
    QCheck.(triple (int_range 0 100_000) (int_range 1 20) (int_range 1 4))
    (fun (seed, units, jobs) ->
      let schedule = Psim.random_schedule ~seed ~units in
      let go () =
        Psim.run ~jobs ~timeout:2.0 ~retries:2 ~schedule ~seed (pool_tasks units)
      in
      let before = Metrics.snapshot () in
      let r1 = go () in
      let mid = Metrics.snapshot () in
      let r2 = go () in
      let after = Metrics.snapshot () in
      let d1 = Metrics.delta ~before ~after:mid
      and d2 = Metrics.delta ~before:mid ~after in
      if List.map outcome_repr r1 <> List.map outcome_repr r2 then
        QCheck.Test.fail_reportf "outcomes differ across identical runs (seed %d)"
          seed
      else if d1.Metrics.snap_counters <> d2.Metrics.snap_counters then
        QCheck.Test.fail_reportf "counter deltas differ across identical runs (seed %d)"
          seed
      else List.length r1 = units)

(* With no faults scheduled the simulator is just another pool backend,
   and must be observationally identical to the real forked one. *)
let prop_sim_empty_schedule_matches_real =
  QCheck.Test.make ~name:"empty-schedule simulation matches the forked backend"
    ~count:12
    QCheck.(triple (int_range 0 100_000) (int_range 1 8) (int_range 1 3))
    (fun (seed, units, jobs) ->
      let real = Pool.run ~jobs (pool_tasks units) in
      let sim = Psim.run ~jobs ~seed (pool_tasks units) in
      List.map outcome_repr real = List.map outcome_repr sim)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_placements_are_permutations;
    QCheck_alcotest.to_alcotest prop_line_align_preserves_sets;
    QCheck_alcotest.to_alcotest prop_simulation_invariant_under_io;
    QCheck_alcotest.to_alcotest prop_flat_roundtrip;
    QCheck_alcotest.to_alcotest prop_sim_flat_invariant;
    QCheck_alcotest.to_alcotest prop_v3_io_roundtrip;
    QCheck_alcotest.to_alcotest prop_sim_deterministic;
    QCheck_alcotest.to_alcotest prop_sim_empty_schedule_matches_real;
  ]
