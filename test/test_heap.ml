module Heap = Trg_util.Heap

let test_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop_max h = None)

let test_max_order () =
  let h = Heap.create () in
  List.iter (fun (w, x) -> Heap.push h w x) [ (1., "a"); (5., "b"); (3., "c"); (4., "d") ];
  let order = List.init 4 (fun _ -> match Heap.pop_max h with Some (_, x) -> x | None -> "?") in
  Alcotest.(check (list string)) "descending priorities" [ "b"; "d"; "c"; "a" ] order

let test_tie_break_insertion_order () =
  let h = Heap.create () in
  Heap.push h 2. "first";
  Heap.push h 2. "second";
  Heap.push h 2. "third";
  let order = List.init 3 (fun _ -> match Heap.pop_max h with Some (_, x) -> x | None -> "?") in
  Alcotest.(check (list string)) "FIFO among ties" [ "first"; "second"; "third" ] order

let test_interleaved_push_pop () =
  let h = Heap.create () in
  Heap.push h 1. 1;
  Heap.push h 3. 3;
  (match Heap.pop_max h with
  | Some (w, x) ->
    Alcotest.(check (float 0.) ) "w" 3. w;
    Alcotest.(check int) "x" 3 x
  | None -> Alcotest.fail "expected element");
  Heap.push h 2. 2;
  Alcotest.(check bool) "peek 2" true (Heap.peek_max h = Some (2., 2));
  Alcotest.(check int) "length" 2 (Heap.length h)

let test_random_against_sort () =
  let rng = Trg_util.Prng.create 99 in
  let h = Heap.create () in
  let items = Array.init 500 (fun i -> (Trg_util.Prng.float rng 100., i)) in
  Array.iter (fun (w, i) -> Heap.push h w i) items;
  let popped = ref [] in
  let rec drain () =
    match Heap.pop_max h with
    | Some (w, _) ->
      popped := w :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  (* popped collected in reverse, so it should be ascending reversed. *)
  let ws = Array.of_list !popped in
  let sorted = Array.copy ws in
  Array.sort compare sorted;
  Alcotest.(check bool) "pops in descending order" true (ws = sorted)

let test_iter_entries () =
  let h = Heap.create () in
  List.iter (fun (w, x) -> Heap.push h w x) [ (1., "a"); (5., "b"); (3., "c") ];
  (* Non-destructive: sees every live entry with its pop tie-breaker. *)
  let seen = ref [] in
  Heap.iter_entries h (fun prio seq x -> seen := (prio, seq, x) :: !seen);
  let sorted = List.sort compare !seen in
  Alcotest.(check int) "all entries visited" 3 (List.length sorted);
  Alcotest.(check bool)
    "prio/payload pairs intact" true
    (List.map (fun (p, _, x) -> (p, x)) sorted = [ (1., "a"); (3., "c"); (5., "b") ]);
  (* seq reflects insertion order: among equal priorities the smaller seq
     pops first, so seqs must be pairwise distinct. *)
  let seqs = List.sort compare (List.map (fun (_, s, _) -> s) sorted) in
  Alcotest.(check bool) "distinct seqs" true (List.length (List.sort_uniq compare seqs) = 3);
  Alcotest.(check int) "heap untouched" 3 (Heap.length h);
  Alcotest.(check bool) "max still there" true (Heap.peek_max h = Some (5., "b"))

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "iter_entries is non-destructive" `Quick test_iter_entries;
    Alcotest.test_case "max order" `Quick test_max_order;
    Alcotest.test_case "tie break by insertion" `Quick test_tie_break_insertion_order;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved_push_pop;
    Alcotest.test_case "500 random items vs sort" `Quick test_random_against_sort;
  ]
