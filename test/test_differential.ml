(* Differential tests: each optimised production component is checked
   against a transparently naive reference implementation on randomized
   inputs.  The references are deliberately simple (lists, rescans) so
   their correctness is obvious by inspection. *)

module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Config = Trg_cache.Config
module Sim = Trg_cache.Sim
module Reuse = Trg_cache.Reuse
module Event = Trg_trace.Event
module Trace = Trg_trace.Trace
module Graph = Trg_profile.Graph
module Qset = Trg_profile.Qset
module Merge_driver = Trg_place.Merge_driver
module Prng = Trg_util.Prng

let ev proc = Event.make ~kind:Event.Enter ~proc ~offset:0 ~len:32

(* --- Qset vs a list-based reference ------------------------------------- *)

(* Reference: Q as a plain list, most recent last; same semantics as the
   paper's prose. *)
module Ref_q = struct
  type t = { capacity : int; size_of : int -> int; mutable q : int list }

  let create capacity size_of = { capacity; size_of; q = [] }

  let total t = List.fold_left (fun acc p -> acc + t.size_of p) 0 t.q

  let reference t p =
    if List.mem p t.q then begin
      (* Everything after p's (unique) occurrence. *)
      let rec after = function
        | [] -> []
        | x :: rest -> if x = p then rest else after rest
      in
      let between = after t.q in
      t.q <- List.filter (fun x -> x <> p) t.q @ [ p ];
      (true, between)
    end
    else begin
      t.q <- t.q @ [ p ];
      let rec evict () =
        match t.q with
        | oldest :: rest when List.length t.q > 1 && total t - t.size_of oldest >= t.capacity ->
          t.q <- rest;
          evict ()
        | _ -> ()
      in
      evict ();
      (false, [])
    end
end

let prop_qset_matches_reference =
  QCheck.Test.make ~name:"Qset matches list reference on random streams" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 200) (int_range 0 15))
    (fun refs ->
      let size_of p = 16 + (8 * (p mod 5)) in
      let q = Qset.create ~capacity_bytes:200 ~size_of in
      let r = Ref_q.create 200 size_of in
      List.for_all
        (fun p ->
          let between = ref [] in
          let prior = Qset.reference q p ~between:(fun x -> between := x :: !between) in
          let prior', between' = Ref_q.reference r p in
          prior = prior'
          && List.rev !between = between'
          && Qset.members q = r.Ref_q.q)
        refs)

(* --- Merge driver vs a rescan-everything reference ----------------------- *)

(* Reference greedy merge: keep explicit groups; at each step scan all
   cross-group pair weights (summing original edges) and merge the pair
   with the maximum weight; ties broken by smallest representative pair.
   Returns the multiset of final groups (sets of original nodes). *)
let reference_merge edges =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (u, v, _) ->
      if not (Hashtbl.mem groups u) then Hashtbl.add groups u [ u ];
      if not (Hashtbl.mem groups v) then Hashtbl.add groups v [ v ])
    edges;
  let weight_between a b =
    List.fold_left
      (fun acc (u, v, w) ->
        if (List.mem u a && List.mem v b) || (List.mem v a && List.mem u b) then
          acc +. w
        else acc)
      0. edges
  in
  let rec loop () =
    let reprs = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) groups []) in
    let best = ref None in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if a < b then begin
              let w = weight_between (Hashtbl.find groups a) (Hashtbl.find groups b) in
              if w > 0. then
                match !best with
                | Some (bw, _, _) when bw >= w -> ()
                | _ -> best := Some (w, a, b)
            end)
          reprs)
      reprs;
    match !best with
    | None -> ()
    | Some (_, a, b) ->
      Hashtbl.replace groups a (Hashtbl.find groups a @ Hashtbl.find groups b);
      Hashtbl.remove groups b;
      loop ()
  in
  loop ();
  List.sort compare
    (Hashtbl.fold (fun _ g acc -> List.sort compare g :: acc) groups [])

(* The driver's tie-breaking differs from the reference's, so compare on
   weight sets where ties cannot occur: distinct powers of two. *)
let prop_merge_driver_matches_reference =
  QCheck.Test.make ~name:"merge driver matches rescan reference (distinct weights)"
    ~count:100
    QCheck.(list_of_size (Gen.int_range 1 10) (pair (int_range 0 7) (int_range 0 7)))
    (fun pairs ->
      let pairs = List.filter (fun (u, v) -> u <> v) pairs in
      QCheck.assume (pairs <> []);
      (* Deduplicate pairs; give each a distinct power-of-two weight. *)
      let canonical = List.sort_uniq compare (List.map (fun (u, v) -> (min u v, max u v)) pairs) in
      let edges = List.mapi (fun i (u, v) -> (u, v, Float.of_int (1 lsl i))) canonical in
      let g = Graph.of_edges edges in
      let driver_groups =
        Merge_driver.run ~graph:g ~init:(fun p -> [ p ]) ~merge:(fun a b -> a @ b)
        |> List.map (List.sort compare)
        |> List.sort compare
      in
      driver_groups = reference_merge edges)

(* --- LRU simulator vs a list reference ----------------------------------- *)

let prop_lru_matches_reference =
  QCheck.Test.make ~name:"set-associative LRU matches list reference" ~count:100
    QCheck.(
      pair (int_range 1 4) (list_of_size (Gen.int_range 1 150) (int_range 0 11)))
    (fun (assoc, refs) ->
      let program = Program.of_sizes (Array.make 12 32) in
      let layout = Layout.default program in
      let n_sets = 2 in
      let cache = Config.make ~size:(n_sets * assoc * 32) ~line_size:32 ~assoc in
      let trace = Trace.of_list (List.map ev refs) in
      let sim = Sim.simulate program layout cache trace in
      (* Reference: per-set MRU-first lists. *)
      let sets = Array.make n_sets [] in
      let misses = ref 0 in
      List.iter
        (fun p ->
          let la = Layout.address layout p / 32 in
          let s = la mod n_sets in
          if List.mem la sets.(s) then
            sets.(s) <- la :: List.filter (fun x -> x <> la) sets.(s)
          else begin
            incr misses;
            let kept =
              if List.length sets.(s) >= assoc then
                List.filteri (fun i _ -> i < assoc - 1) sets.(s)
              else sets.(s)
            in
            sets.(s) <- la :: kept
          end)
        refs;
      sim.Sim.misses = !misses)

(* --- Reuse distances vs a scan reference ---------------------------------- *)

let prop_reuse_matches_reference =
  QCheck.Test.make ~name:"reuse distances match scan reference" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 120) (int_range 0 9))
    (fun refs ->
      let program = Program.of_sizes (Array.make 10 32) in
      let layout = Layout.default program in
      let trace = Trace.of_list (List.map ev refs) in
      let r = Reuse.compute program layout ~line_size:32 trace in
      (* Reference: for each reference, scan back for the previous
         occurrence and count distinct lines in between. *)
      let arr = Array.of_list refs in
      let cold = ref 0 in
      let dist_counts = Hashtbl.create 16 in
      Array.iteri
        (fun i p ->
          let rec find j = if j < 0 then None else if arr.(j) = p then Some j else find (j - 1) in
          match find (i - 1) with
          | None -> incr cold
          | Some j ->
            let between = ref [] in
            for k = j + 1 to i - 1 do
              if (not (List.mem arr.(k) !between)) && arr.(k) <> p then
                between := arr.(k) :: !between
            done;
            let d = List.length !between in
            Hashtbl.replace dist_counts d
              (1 + (try Hashtbl.find dist_counts d with Not_found -> 0)))
        arr;
      Reuse.cold_refs r = !cold
      && List.for_all
           (fun (d, c) ->
             (try Hashtbl.find dist_counts d with Not_found -> 0) = c)
           (Reuse.histogram r)
      && Hashtbl.fold (fun _ c acc -> acc + c) dist_counts 0
         = List.fold_left (fun acc (_, c) -> acc + c) 0 (Reuse.histogram r))

(* --- Paging LRU vs reference ------------------------------------------------ *)

let prop_paging_matches_reference =
  QCheck.Test.make ~name:"page-fault LRU matches list reference" ~count:100
    QCheck.(
      pair (int_range 1 4) (list_of_size (Gen.int_range 1 120) (int_range 0 7)))
    (fun (frames, refs) ->
      let program = Program.of_sizes (Array.make 8 4096) in
      let layout = Layout.default program in
      let trace = Trace.of_list (List.map ev refs) in
      let r = Sim.paging program layout ~page_size:4096 ~frames trace in
      let resident = ref [] in
      let faults = ref 0 in
      List.iter
        (fun p ->
          let page = Layout.address layout p / 4096 in
          if List.mem page !resident then
            resident := page :: List.filter (fun x -> x <> page) !resident
          else begin
            incr faults;
            let kept =
              if List.length !resident >= frames then
                List.filteri (fun i _ -> i < frames - 1) !resident
              else !resident
            in
            resident := page :: kept
          end)
        refs;
      r.Sim.page_faults = !faults)

(* --- miss attribution vs the scoreboard simulator ------------------------- *)

(* The attribution simulator re-implements the cache to explain misses;
   on any input its embedded result must equal {!Sim.simulate} exactly,
   and the 3C split must account for every miss. *)
let prop_attrib_matches_sim =
  QCheck.Test.make ~name:"miss attribution matches Sim and 3C sums to total"
    ~count:100
    QCheck.(
      triple (int_range 1 4) (int_range 1 4)
        (list_of_size (Gen.int_range 1 200) (int_range 0 11)))
    (fun (assoc, sets_exp, refs) ->
      let n_sets = 1 lsl (sets_exp mod 3) in
      let program = Program.of_sizes (Array.make 12 32) in
      let rng = Prng.create (List.length refs + (17 * assoc) + n_sets) in
      let layout = Trg_program.Layout.random rng program in
      let cache = Config.make ~size:(n_sets * assoc * 32) ~line_size:32 ~assoc in
      let trace = Trace.of_list (List.map ev refs) in
      let sim = Sim.simulate program layout cache trace in
      let at = Trg_cache.Attrib.simulate program layout cache trace in
      at.Trg_cache.Attrib.result.Sim.misses = sim.Sim.misses
      && at.Trg_cache.Attrib.result.Sim.accesses = sim.Sim.accesses
      && at.Trg_cache.Attrib.compulsory + at.Trg_cache.Attrib.capacity
         + at.Trg_cache.Attrib.conflict
         = sim.Sim.misses)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_qset_matches_reference;
    QCheck_alcotest.to_alcotest prop_merge_driver_matches_reference;
    QCheck_alcotest.to_alcotest prop_lru_matches_reference;
    QCheck_alcotest.to_alcotest prop_reuse_matches_reference;
    QCheck_alcotest.to_alcotest prop_paging_matches_reference;
    QCheck_alcotest.to_alcotest prop_attrib_matches_sim;
  ]
