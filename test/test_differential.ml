(* Differential tests: each optimised production component is checked
   against a transparently naive reference implementation on randomized
   inputs.  The references are deliberately simple (lists, rescans) so
   their correctness is obvious by inspection. *)

module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Config = Trg_cache.Config
module Sim = Trg_cache.Sim
module Reuse = Trg_cache.Reuse
module Event = Trg_trace.Event
module Trace = Trg_trace.Trace
module Graph = Trg_profile.Graph
module Qset = Trg_profile.Qset
module Merge_driver = Trg_place.Merge_driver
module Prng = Trg_util.Prng
module Cost = Trg_place.Cost
module Node = Trg_place.Node
module Gbsc = Trg_place.Gbsc
module Hkc = Trg_place.Hkc
module Gbsc_sa = Trg_place.Gbsc_sa
module Wcg = Trg_profile.Wcg
module Trg = Trg_profile.Trg
module Incr = Trg_cache.Incr
module Metrics = Trg_obs.Metrics

(* Soak profile hook: [dune runtest --profile soak] multiplies QCheck
   iteration counts via TRGPLACE_QCHECK_FACTOR (see the root dune file). *)
let scaled n =
  match Sys.getenv_opt "TRGPLACE_QCHECK_FACTOR" with
  | Some f -> ( try n * int_of_string (String.trim f) with Failure _ -> n)
  | None -> n

let with_engine k f =
  let prev = Cost.engine () in
  Cost.set_engine k;
  Fun.protect ~finally:(fun () -> Cost.set_engine prev) f

let ev proc = Event.make ~kind:Event.Enter ~proc ~offset:0 ~len:32

(* --- Qset vs a list-based reference ------------------------------------- *)

(* Reference: Q as a plain list, most recent last; same semantics as the
   paper's prose. *)
module Ref_q = struct
  type t = { capacity : int; size_of : int -> int; mutable q : int list }

  let create capacity size_of = { capacity; size_of; q = [] }

  let total t = List.fold_left (fun acc p -> acc + t.size_of p) 0 t.q

  let reference t p =
    if List.mem p t.q then begin
      (* Everything after p's (unique) occurrence. *)
      let rec after = function
        | [] -> []
        | x :: rest -> if x = p then rest else after rest
      in
      let between = after t.q in
      t.q <- List.filter (fun x -> x <> p) t.q @ [ p ];
      (true, between)
    end
    else begin
      t.q <- t.q @ [ p ];
      let rec evict () =
        match t.q with
        | oldest :: rest when List.length t.q > 1 && total t - t.size_of oldest >= t.capacity ->
          t.q <- rest;
          evict ()
        | _ -> ()
      in
      evict ();
      (false, [])
    end
end

let prop_qset_matches_reference =
  QCheck.Test.make ~name:"Qset matches list reference on random streams" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 200) (int_range 0 15))
    (fun refs ->
      let size_of p = 16 + (8 * (p mod 5)) in
      let q = Qset.create ~capacity_bytes:200 ~size_of in
      let r = Ref_q.create 200 size_of in
      List.for_all
        (fun p ->
          let between = ref [] in
          let prior = Qset.reference q p ~between:(fun x -> between := x :: !between) in
          let prior', between' = Ref_q.reference r p in
          prior = prior'
          && List.rev !between = between'
          && Qset.members q = r.Ref_q.q)
        refs)

(* --- Merge driver vs a rescan-everything reference ----------------------- *)

(* Reference greedy merge: keep explicit groups; at each step scan all
   cross-group pair weights (summing original edges) and merge the pair
   with the maximum weight; ties broken by smallest representative pair.
   Returns the multiset of final groups (sets of original nodes). *)
let reference_merge edges =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (u, v, _) ->
      if not (Hashtbl.mem groups u) then Hashtbl.add groups u [ u ];
      if not (Hashtbl.mem groups v) then Hashtbl.add groups v [ v ])
    edges;
  let weight_between a b =
    List.fold_left
      (fun acc (u, v, w) ->
        if (List.mem u a && List.mem v b) || (List.mem v a && List.mem u b) then
          acc +. w
        else acc)
      0. edges
  in
  let rec loop () =
    let reprs = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) groups []) in
    let best = ref None in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if a < b then begin
              let w = weight_between (Hashtbl.find groups a) (Hashtbl.find groups b) in
              if w > 0. then
                match !best with
                | Some (bw, _, _) when bw >= w -> ()
                | _ -> best := Some (w, a, b)
            end)
          reprs)
      reprs;
    match !best with
    | None -> ()
    | Some (_, a, b) ->
      Hashtbl.replace groups a (Hashtbl.find groups a @ Hashtbl.find groups b);
      Hashtbl.remove groups b;
      loop ()
  in
  loop ();
  List.sort compare
    (Hashtbl.fold (fun _ g acc -> List.sort compare g :: acc) groups [])

(* The driver's tie-breaking differs from the reference's, so compare on
   weight sets where ties cannot occur: distinct powers of two. *)
let prop_merge_driver_matches_reference =
  QCheck.Test.make ~name:"merge driver matches rescan reference (distinct weights)"
    ~count:100
    QCheck.(list_of_size (Gen.int_range 1 10) (pair (int_range 0 7) (int_range 0 7)))
    (fun pairs ->
      let pairs = List.filter (fun (u, v) -> u <> v) pairs in
      QCheck.assume (pairs <> []);
      (* Deduplicate pairs; give each a distinct power-of-two weight. *)
      let canonical = List.sort_uniq compare (List.map (fun (u, v) -> (min u v, max u v)) pairs) in
      let edges = List.mapi (fun i (u, v) -> (u, v, Float.of_int (1 lsl i))) canonical in
      let g = Graph.of_edges edges in
      let driver_groups =
        Merge_driver.run ~graph:g ~init:(fun p -> [ p ]) ~merge:(fun a b -> a @ b)
        |> List.map (List.sort compare)
        |> List.sort compare
      in
      driver_groups = reference_merge edges)

(* --- LRU simulator vs a list reference ----------------------------------- *)

let prop_lru_matches_reference =
  QCheck.Test.make ~name:"set-associative LRU matches list reference" ~count:100
    QCheck.(
      pair (int_range 1 4) (list_of_size (Gen.int_range 1 150) (int_range 0 11)))
    (fun (assoc, refs) ->
      let program = Program.of_sizes (Array.make 12 32) in
      let layout = Layout.default program in
      let n_sets = 2 in
      let cache = Config.make ~size:(n_sets * assoc * 32) ~line_size:32 ~assoc in
      let trace = Trace.of_list (List.map ev refs) in
      let sim = Sim.simulate program layout cache trace in
      (* Reference: per-set MRU-first lists. *)
      let sets = Array.make n_sets [] in
      let misses = ref 0 in
      List.iter
        (fun p ->
          let la = Layout.address layout p / 32 in
          let s = la mod n_sets in
          if List.mem la sets.(s) then
            sets.(s) <- la :: List.filter (fun x -> x <> la) sets.(s)
          else begin
            incr misses;
            let kept =
              if List.length sets.(s) >= assoc then
                List.filteri (fun i _ -> i < assoc - 1) sets.(s)
              else sets.(s)
            in
            sets.(s) <- la :: kept
          end)
        refs;
      sim.Sim.misses = !misses)

(* --- Reuse distances vs a scan reference ---------------------------------- *)

let prop_reuse_matches_reference =
  QCheck.Test.make ~name:"reuse distances match scan reference" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 120) (int_range 0 9))
    (fun refs ->
      let program = Program.of_sizes (Array.make 10 32) in
      let layout = Layout.default program in
      let trace = Trace.of_list (List.map ev refs) in
      let r = Reuse.compute program layout ~line_size:32 trace in
      (* Reference: for each reference, scan back for the previous
         occurrence and count distinct lines in between. *)
      let arr = Array.of_list refs in
      let cold = ref 0 in
      let dist_counts = Hashtbl.create 16 in
      Array.iteri
        (fun i p ->
          let rec find j = if j < 0 then None else if arr.(j) = p then Some j else find (j - 1) in
          match find (i - 1) with
          | None -> incr cold
          | Some j ->
            let between = ref [] in
            for k = j + 1 to i - 1 do
              if (not (List.mem arr.(k) !between)) && arr.(k) <> p then
                between := arr.(k) :: !between
            done;
            let d = List.length !between in
            Hashtbl.replace dist_counts d
              (1 + (try Hashtbl.find dist_counts d with Not_found -> 0)))
        arr;
      Reuse.cold_refs r = !cold
      && List.for_all
           (fun (d, c) ->
             (try Hashtbl.find dist_counts d with Not_found -> 0) = c)
           (Reuse.histogram r)
      && Hashtbl.fold (fun _ c acc -> acc + c) dist_counts 0
         = List.fold_left (fun acc (_, c) -> acc + c) 0 (Reuse.histogram r))

(* --- Paging LRU vs reference ------------------------------------------------ *)

let prop_paging_matches_reference =
  QCheck.Test.make ~name:"page-fault LRU matches list reference" ~count:100
    QCheck.(
      pair (int_range 1 4) (list_of_size (Gen.int_range 1 120) (int_range 0 7)))
    (fun (frames, refs) ->
      let program = Program.of_sizes (Array.make 8 4096) in
      let layout = Layout.default program in
      let trace = Trace.of_list (List.map ev refs) in
      let r = Sim.paging program layout ~page_size:4096 ~frames trace in
      let resident = ref [] in
      let faults = ref 0 in
      List.iter
        (fun p ->
          let page = Layout.address layout p / 4096 in
          if List.mem page !resident then
            resident := page :: List.filter (fun x -> x <> page) !resident
          else begin
            incr faults;
            let kept =
              if List.length !resident >= frames then
                List.filteri (fun i _ -> i < frames - 1) !resident
              else !resident
            in
            resident := page :: kept
          end)
        refs;
      r.Sim.page_faults = !faults)

(* --- miss attribution vs the scoreboard simulator ------------------------- *)

(* The attribution simulator re-implements the cache to explain misses;
   on any input its embedded result must equal {!Sim.simulate} exactly,
   and the 3C split must account for every miss. *)
let prop_attrib_matches_sim =
  QCheck.Test.make ~name:"miss attribution matches Sim and 3C sums to total"
    ~count:100
    QCheck.(
      triple (int_range 1 4) (int_range 1 4)
        (list_of_size (Gen.int_range 1 200) (int_range 0 11)))
    (fun (assoc, sets_exp, refs) ->
      let n_sets = 1 lsl (sets_exp mod 3) in
      let program = Program.of_sizes (Array.make 12 32) in
      let rng = Prng.create (List.length refs + (17 * assoc) + n_sets) in
      let layout = Trg_program.Layout.random rng program in
      let cache = Config.make ~size:(n_sets * assoc * 32) ~line_size:32 ~assoc in
      let trace = Trace.of_list (List.map ev refs) in
      let sim = Sim.simulate program layout cache trace in
      let at = Trg_cache.Attrib.simulate program layout cache trace in
      at.Trg_cache.Attrib.result.Sim.misses = sim.Sim.misses
      && at.Trg_cache.Attrib.result.Sim.accesses = sim.Sim.accesses
      && at.Trg_cache.Attrib.compulsory + at.Trg_cache.Attrib.capacity
         + at.Trg_cache.Attrib.conflict
         = sim.Sim.misses)

(* --- incremental cost engine vs from-scratch recomputation --------------- *)

(* A workload with enough structure for the merge loop to take many
   steps: line-friendly procedure sizes and a locality-biased walk. *)
let gen_place_workload =
  QCheck.Gen.(
    pair (int_range 3 14) (pair (int_range 30 400) int)
    |> map (fun (n_procs, (len, seed)) ->
           let rng = Prng.create seed in
           let sizes = Array.init n_procs (fun _ -> 16 + (16 * Prng.int rng 8)) in
           let program = Program.of_sizes sizes in
           let cur = ref (Prng.int rng n_procs) in
           let events =
             List.init len (fun _ ->
                 (if Prng.int rng 4 = 0 then cur := Prng.int rng n_procs
                  else cur := (!cur + 1 + Prng.int rng 2) mod n_procs);
                 Event.make ~kind:Event.Enter ~proc:!cur ~offset:0 ~len:16)
           in
           (program, Trace.of_list events)))

let arb_place_workload =
  QCheck.make gen_place_workload ~print:(fun (program, trace) ->
      Printf.sprintf "%d procs, %d events" (Program.n_procs program)
        (Trace.length trace))

let small_cache = Trg_cache.Config.make ~size:256 ~line_size:32 ~assoc:1

let place_config = Gbsc.default_config ~cache:small_cache ()

(* The heart of the equivalence claim: at {e every} step of the greedy
   merge loop — including states reached through deliberately random
   (non-argmin) shifts — the incremental engine's cost array must equal,
   bit for bit, a from-scratch [Cost.offsets_cost] recomputation over the
   same two nodes.  Exercised for both group-decomposable models. *)
let check_incr_matches_full ~model ~select program ~shift_seed =
  let n_sets = Trg_cache.Config.n_sets small_cache in
  let line_size = small_cache.Trg_cache.Config.line_size in
  match Cost.seed_incr model program ~line_size ~n_sets with
  | None -> QCheck.Test.fail_reportf "seed_incr refused an integral model"
  | Some eng ->
    let rng = Prng.create shift_seed in
    let steps = ref 0 in
    let repr n = fst (List.hd (Node.members n)) in
    let merge n1 n2 =
      let from_incr = Incr.cost eng ~fixed:(repr n1) ~moving:(repr n2) in
      let from_full = Cost.offsets_cost model program ~line_size ~n_sets ~n1 ~n2 in
      if from_incr <> from_full then
        QCheck.Test.fail_reportf
          "cost arrays diverge at merge %d (|%d| vs |%d|, first diff at %d)"
          !steps (Array.length from_incr) (Array.length from_full)
          (let i = ref 0 in
           while
             !i < Array.length from_full && from_incr.(!i) = from_full.(!i)
           do
             incr i
           done;
           !i);
      incr steps;
      (* Half the time take a random shift instead of the argmin, so the
         equality is checked across placement states the production
         search would never visit. *)
      let shift =
        if Prng.bool rng then Prng.int rng n_sets else Cost.best_offset from_full
      in
      Incr.apply_merge eng ~fixed:(repr n1) ~moving:(repr n2) ~shift;
      Node.union ~shift ~modulo:n_sets n1 n2
    in
    ignore (Merge_driver.run ~graph:select ~init:Node.singleton ~merge);
    true

let prop_incr_matches_full_chunk_model =
  QCheck.Test.make
    ~name:"incr cost equals full recompute at every merge (chunk TRG model)"
    ~count:(scaled 40)
    QCheck.(pair arb_place_workload small_int)
    (fun ((program, trace), shift_seed) ->
      let prof = Gbsc.profile place_config program trace in
      let model =
        Cost.Trg_chunks
          { chunks = prof.Gbsc.chunks; trg = prof.Gbsc.place.Trg.graph }
      in
      check_incr_matches_full ~model ~select:prof.Gbsc.select.Trg.graph program
        ~shift_seed)

let prop_incr_matches_full_wcg_model =
  QCheck.Test.make
    ~name:"incr cost equals full recompute at every merge (WCG model)"
    ~count:(scaled 40)
    QCheck.(pair arb_place_workload small_int)
    (fun ((program, trace), shift_seed) ->
      let wcg = Wcg.build trace in
      check_incr_matches_full ~model:(Cost.Wcg_procs { wcg }) ~select:wcg
        program ~shift_seed)

(* End-to-end: whole placements — layouts and therefore simulated miss
   counts — are bit-identical whichever engine runs the search.  Covers
   the seeded paths (GBSC, HKC) and the declared-fallback one (the
   set-associative pair model). *)
let sa_cache = Trg_cache.Config.make ~size:512 ~line_size:32 ~assoc:2

let sa_config = Gbsc.default_config ~cache:sa_cache ()

let prop_engines_agree_on_placements =
  QCheck.Test.make
    ~name:"full and incr engines produce bit-identical placements"
    ~count:(scaled 25) arb_place_workload
    (fun (program, trace) ->
      let prof = Gbsc.profile place_config program trace in
      let wcg = Wcg.build trace in
      let popularity = prof.Gbsc.popularity in
      let layouts () =
        [
          ("gbsc", Gbsc.place program prof);
          ("hkc", Hkc.place place_config program ~wcg ~popularity);
          ("gbsc-sa", Gbsc_sa.run sa_config program trace);
        ]
      in
      let full = with_engine Cost.Full layouts in
      let incremental = with_engine Cost.Incr layouts in
      List.for_all2
        (fun (name, lf) (_, li) ->
          let misses l cache =
            (Sim.simulate program l cache trace).Sim.misses
          in
          if Layout.addresses lf <> Layout.addresses li then
            QCheck.Test.fail_reportf "%s layouts differ between engines" name
          else if
            misses lf small_cache <> misses li small_cache
            || misses lf sa_cache <> misses li sa_cache
          then QCheck.Test.fail_reportf "%s miss counts differ between engines" name
          else true)
        full incremental)

(* Golden work-counter regression on the fixed "small" benchmark: the
   incremental engine must eliminate (>= 10x) the full evaluator's
   offset-candidate work while reproducing its layout and miss rate
   exactly.  Guards the speedup claim the CI gate publishes. *)
let test_incr_work_reduction () =
  let r = Trg_eval.Runner.prepare (Trg_synth.Bench.find "small") in
  let program = Trg_eval.Runner.program r in
  let prof = r.Trg_eval.Runner.prof in
  let work = Metrics.counter "gbsc/offset_candidates" in
  let calls = Metrics.counter "gbsc/cost_calls" in
  let incr_merges = Metrics.counter "cost/incr/merges" in
  let measure k =
    with_engine k (fun () ->
        let w0 = Metrics.value work
        and c0 = Metrics.value calls
        and m0 = Metrics.value incr_merges in
        let layout = Gbsc.place program prof in
        ( layout,
          Metrics.value work - w0,
          Metrics.value calls - c0,
          Metrics.value incr_merges - m0 ))
  in
  let lf, full_work, full_calls, _ = measure Cost.Full in
  let li, incr_work, incr_calls, incr_m = measure Cost.Incr in
  Alcotest.(check (array int))
    "identical layouts" (Layout.addresses lf) (Layout.addresses li);
  Alcotest.(check (float 0.))
    "identical test miss rate"
    (Trg_eval.Runner.test_miss_rate r lf)
    (Trg_eval.Runner.test_miss_rate r li);
  Alcotest.(check bool)
    (Printf.sprintf "full did real work (%d calls, %d candidates)" full_calls
       full_work)
    true
    (full_calls > 0 && full_work > 0);
  Alcotest.(check bool)
    (Printf.sprintf "10x work reduction (full %d vs incr %d)" full_work
       incr_work)
    true
    (full_work >= 10 * max 1 incr_work);
  Alcotest.(check bool)
    (Printf.sprintf "incr path actually ran (%d merges, %d full calls)" incr_m
       incr_calls)
    true
    (incr_m > 0 && incr_calls = 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_qset_matches_reference;
    QCheck_alcotest.to_alcotest prop_merge_driver_matches_reference;
    QCheck_alcotest.to_alcotest prop_lru_matches_reference;
    QCheck_alcotest.to_alcotest prop_reuse_matches_reference;
    QCheck_alcotest.to_alcotest prop_paging_matches_reference;
    QCheck_alcotest.to_alcotest prop_attrib_matches_sim;
    QCheck_alcotest.to_alcotest prop_incr_matches_full_chunk_model;
    QCheck_alcotest.to_alcotest prop_incr_matches_full_wcg_model;
    QCheck_alcotest.to_alcotest prop_engines_agree_on_placements;
    Alcotest.test_case "incr engine 10x work reduction on small" `Quick
      test_incr_work_reduction;
  ]
