(* Miss attribution: the 3C classification invariants, conflict-matrix
   accounting, the set-preserving layout normalisation, and the telemetry
   namespacing of the simulate entry points. *)

module Config = Trg_cache.Config
module Sim = Trg_cache.Sim
module Attrib = Trg_cache.Attrib
module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Event = Trg_trace.Event
module Trace = Trg_trace.Trace
module Metrics = Trg_obs.Metrics
module Runner = Trg_eval.Runner
module Explain = Trg_eval.Explain

let ev kind proc offset len = Event.make ~kind ~proc ~offset ~len

let ref_trace procs =
  Trace.of_list (List.map (fun p -> ev Event.Enter p 0 32) procs)

(* One prepared benchmark shared by the macro tests; preparation is
   deterministic, so sharing cannot leak state between tests. *)
let prepared = lazy (Runner.prepare (Trg_synth.Bench.find "small"))

(* Every structural invariant the attribution result promises, checked
   against an independent scoreboard simulation of the same inputs. *)
let check_invariants label program layout config trace =
  let a = Attrib.simulate program layout config trace in
  let r = a.Attrib.result in
  let plain = Sim.simulate program layout config trace in
  Alcotest.(check bool) (label ^ ": matches Sim.simulate") true (r = plain);
  Alcotest.(check int)
    (label ^ ": 3C partition")
    r.Sim.misses
    (a.Attrib.compulsory + a.Attrib.capacity + a.Attrib.conflict);
  Alcotest.(check int)
    (label ^ ": compulsory = distinct lines")
    (Sim.distinct_lines program layout config trace)
    a.Attrib.compulsory;
  Alcotest.(check int)
    (label ^ ": distinct_lines field")
    a.Attrib.compulsory a.Attrib.distinct_lines;
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 a.Attrib.per_proc in
  Alcotest.(check int)
    (label ^ ": per-proc accesses sum")
    r.Sim.accesses
    (sum (fun s -> s.Attrib.p_accesses));
  Alcotest.(check int)
    (label ^ ": per-proc misses sum")
    r.Sim.misses
    (sum (fun s -> s.Attrib.p_misses));
  Alcotest.(check int)
    (label ^ ": per-proc conflicts sum")
    a.Attrib.conflict
    (sum (fun s -> s.Attrib.p_conflicts));
  Alcotest.(check (array int))
    (label ^ ": conflict-matrix row sums")
    (Array.map (fun s -> s.Attrib.p_conflicts) a.Attrib.per_proc)
    (Attrib.conflict_row_sums a);
  Alcotest.(check int)
    (label ^ ": set misses sum")
    r.Sim.misses
    (Array.fold_left ( + ) 0 a.Attrib.set_misses);
  Alcotest.(check int)
    (label ^ ": timeline sum")
    r.Sim.misses
    (Array.fold_left ( + ) 0 a.Attrib.timeline);
  a

(* Two one-line procedures forced onto the same cache line of a 2-line
   direct-mapped cache: the shadow cache holds both lines, so after the
   two first touches every miss is a pure conflict miss, attributed to
   the alternating (evictor, victim) pair. *)
let test_micro_conflict () =
  let program = Program.of_sizes [| 32; 32 |] in
  let cache = Config.make ~size:64 ~line_size:32 ~assoc:1 in
  let layout = Layout.of_addresses program [| 0; 64 |] in
  let trace = ref_trace [ 0; 1; 0; 1; 0; 1 ] in
  let a = check_invariants "micro-conflict" program layout cache trace in
  Alcotest.(check int) "compulsory" 2 a.Attrib.compulsory;
  Alcotest.(check int) "capacity" 0 a.Attrib.capacity;
  Alcotest.(check int) "conflict" 4 a.Attrib.conflict;
  Alcotest.(check bool) "pair attribution" true
    (Array.to_list a.Attrib.conflict_pairs = [ (0, 1, 2); (1, 0, 2) ]
    || Array.to_list a.Attrib.conflict_pairs = [ (1, 0, 2); (0, 1, 2) ])

(* The same reference pattern against a 1-line cache: now the shadow
   cache (capacity 1 line) misses too, so nothing is a conflict — the
   working set simply does not fit. *)
let test_micro_capacity () =
  let program = Program.of_sizes [| 32; 32 |] in
  let cache = Config.make ~size:32 ~line_size:32 ~assoc:1 in
  let layout = Layout.of_addresses program [| 0; 32 |] in
  let trace = ref_trace [ 0; 1; 0; 1; 0; 1 ] in
  let a = check_invariants "micro-capacity" program layout cache trace in
  Alcotest.(check int) "compulsory" 2 a.Attrib.compulsory;
  Alcotest.(check int) "capacity" 4 a.Attrib.capacity;
  Alcotest.(check int) "conflict" 0 a.Attrib.conflict

(* Traces loaded from files need not agree with the program
   (Event.make allows any offset below 2^24), so Attrib.simulate must
   reject events that leave their procedure or reference a procedure
   the program does not have, instead of indexing tables sized by the
   layout span. *)
let test_rejects_mismatched_trace () =
  let program = Program.of_sizes [| 32; 32 |] in
  let cache = Config.make ~size:64 ~line_size:32 ~assoc:1 in
  let layout = Layout.of_addresses program [| 0; 64 |] in
  let expect_invalid label trace =
    match Attrib.simulate program layout cache trace with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "run past procedure end"
    (Trace.of_list [ ev Event.Enter 0 0 32; ev Event.Run 0 16 32 ]);
  expect_invalid "offset past procedure end"
    (Trace.of_list [ ev Event.Enter 1 4096 32 ]);
  expect_invalid "unknown procedure" (Trace.of_list [ ev Event.Enter 7 0 8 ])

let test_invariants_on_benchmark () =
  let r = Lazy.force prepared in
  let program = Runner.program r in
  let dm = Config.make ~size:8192 ~line_size:32 ~assoc:1 in
  let sa = Config.make ~size:8192 ~line_size:32 ~assoc:4 in
  List.iter
    (fun (label, layout) ->
      ignore (check_invariants (label ^ "/dm") program layout dm r.Runner.test);
      ignore (check_invariants (label ^ "/4way") program layout sa r.Runner.test))
    [
      ("default", Runner.default_layout r);
      ("ph", Runner.ph_layout r);
      ("gbsc", Runner.gbsc_layout r);
    ]

(* A fully-associative cache has no placement-induced misses: the real
   cache and the shadow cache are the same machine, so the conflict
   class must be exactly empty. *)
let test_fully_assoc_no_conflict () =
  let r = Lazy.force prepared in
  let program = Runner.program r in
  let cache = Config.make ~size:8192 ~line_size:32 ~assoc:256 in
  let a =
    check_invariants "fully-assoc" program (Runner.default_layout r) cache
      r.Runner.test
  in
  Alcotest.(check int) "no conflict misses" 0 a.Attrib.conflict;
  Alcotest.(check bool) "empty conflict matrix" true
    (Array.length a.Attrib.conflict_pairs = 0)

(* The acceptance headline: with layouts normalised (set-preserving line
   alignment), compulsory misses are identical across layouts and GBSC
   shows strictly fewer conflict misses than PH. *)
let test_gbsc_beats_ph () =
  let r = Lazy.force prepared in
  let e = Explain.of_runner ~algos:[ "ph"; "gbsc" ] r in
  match e.Explain.layouts with
  | [ ph; gbsc ] ->
    Alcotest.(check string) "first is ph" "ph" ph.Explain.label;
    Alcotest.(check int) "compulsory identical"
      ph.Explain.attrib.Attrib.compulsory gbsc.Explain.attrib.Attrib.compulsory;
    Alcotest.(check bool) "gbsc has strictly fewer conflicts" true
      (gbsc.Explain.attrib.Attrib.conflict < ph.Explain.attrib.Attrib.conflict)
  | layouts -> Alcotest.failf "expected 2 reports, got %d" (List.length layouts)

let test_line_align () =
  let r = Lazy.force prepared in
  let program = Runner.program r in
  let line_size = 32 and n_sets = 256 in
  List.iter
    (fun (label, layout) ->
      let aligned = Layout.line_align ~line_size ~n_sets program layout in
      Alcotest.(check (array int))
        (label ^ ": order preserved")
        (Layout.order layout) (Layout.order aligned);
      Array.iteri
        (fun p a ->
          if a mod line_size <> 0 then
            Alcotest.failf "%s: proc %d starts mid-line (addr %d)" label p a;
          let set addr = addr / line_size mod n_sets in
          Alcotest.(check int)
            (Printf.sprintf "%s: proc %d keeps its set" label p)
            (set (Layout.address layout p))
            (set a))
        (Layout.addresses aligned))
    [ ("default", Runner.default_layout r); ("gbsc", Runner.gbsc_layout r) ]

(* All four simulate entry points must feed the sim/* telemetry
   namespace: the L1 scoreboard under sim/, the hierarchy's second level
   under sim/l2/, paging under sim/page/. *)
let test_entry_points_feed_counters () =
  let program = Program.of_sizes [| 32; 32 |] in
  let layout = Layout.of_addresses program [| 0; 64 |] in
  let trace = ref_trace [ 0; 1; 0; 1 ] in
  let counter name = Metrics.counter name in
  let snap names = List.map (fun n -> Metrics.value (counter n)) names in
  let expect_growth label names before =
    List.iter2
      (fun name (b, a) ->
        if a <= b then Alcotest.failf "%s: counter %s did not grow" label name)
      names
      (List.combine before (snap names))
  in
  let l1 = Config.make ~size:64 ~line_size:32 ~assoc:1 in
  let l1_names = [ "sim/simulations"; "sim/accesses"; "sim/misses" ] in
  let before = snap l1_names in
  ignore (Sim.simulate program layout l1 trace);
  expect_growth "simulate" l1_names before;
  let before = snap l1_names in
  ignore (Sim.simulate_plru program layout
            (Config.make ~size:64 ~line_size:32 ~assoc:2) trace);
  expect_growth "simulate_plru" l1_names before;
  let l2_names = l1_names @ [ "sim/l2/accesses"; "sim/l2/misses" ] in
  let before = snap l2_names in
  ignore
    (Sim.simulate_hierarchy program layout ~l1
       ~l2:(Config.make ~size:128 ~line_size:32 ~assoc:1) trace);
  expect_growth "simulate_hierarchy" l2_names before;
  let page_names = [ "sim/page/accesses"; "sim/page/faults" ] in
  let before = snap page_names in
  ignore (Sim.paging program layout ~page_size:64 ~frames:1 trace);
  expect_growth "paging" page_names before

(* Attribution runs feed their own attrib/* namespace, with the class
   counters partitioning the miss counter. *)
let test_attrib_counters () =
  let program = Program.of_sizes [| 32; 32 |] in
  let layout = Layout.of_addresses program [| 0; 64 |] in
  let trace = ref_trace [ 0; 1; 0; 1; 0; 1 ] in
  let cache = Config.make ~size:64 ~line_size:32 ~assoc:1 in
  let names =
    [
      "attrib/simulations"; "attrib/accesses"; "attrib/misses";
      "attrib/compulsory"; "attrib/capacity"; "attrib/conflict";
    ]
  in
  let before = List.map (fun n -> Metrics.value (Metrics.counter n)) names in
  ignore (Attrib.simulate program layout cache trace);
  let delta =
    List.map2
      (fun n b -> (n, Metrics.value (Metrics.counter n) - b))
      names before
  in
  Alcotest.(check int) "one simulation" 1 (List.assoc "attrib/simulations" delta);
  Alcotest.(check int) "accesses" 6 (List.assoc "attrib/accesses" delta);
  Alcotest.(check int) "misses partitioned" (List.assoc "attrib/misses" delta)
    (List.assoc "attrib/compulsory" delta
    + List.assoc "attrib/capacity" delta
    + List.assoc "attrib/conflict" delta)

let suite =
  [
    Alcotest.test_case "micro conflict classification" `Quick test_micro_conflict;
    Alcotest.test_case "micro capacity classification" `Quick test_micro_capacity;
    Alcotest.test_case "rejects trace/program mismatch" `Quick
      test_rejects_mismatched_trace;
    Alcotest.test_case "invariants on benchmark" `Quick test_invariants_on_benchmark;
    Alcotest.test_case "fully associative has no conflicts" `Quick
      test_fully_assoc_no_conflict;
    Alcotest.test_case "gbsc beats ph on conflicts" `Quick test_gbsc_beats_ph;
    Alcotest.test_case "line_align preserves sets and order" `Quick test_line_align;
    Alcotest.test_case "entry points feed sim counters" `Quick
      test_entry_points_feed_counters;
    Alcotest.test_case "attrib counters" `Quick test_attrib_counters;
  ]
