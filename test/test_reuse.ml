module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Config = Trg_cache.Config
module Sim = Trg_cache.Sim
module Reuse = Trg_cache.Reuse
module Event = Trg_trace.Event
module Trace = Trg_trace.Trace
module Online = Trg_profile.Online
module Graph = Trg_profile.Graph
module Trg = Trg_profile.Trg
module Chunk = Trg_program.Chunk
module Walker = Trg_synth.Walker
module Gen = Trg_synth.Gen
module Bench = Trg_synth.Bench

let ev ?(kind = Event.Enter) proc offset len = Event.make ~kind ~proc ~offset ~len

(* Eight one-line procedures referenced whole. *)
let program = Program.of_sizes (Array.make 8 32)

let layout = Layout.default program

let ref_trace procs = Trace.of_list (List.map (fun p -> ev p 0 32) procs)

let reuse procs = Reuse.compute program layout ~line_size:32 (ref_trace procs)

let test_cold_only () =
  let r = reuse [ 0; 1; 2 ] in
  Alcotest.(check int) "3 refs" 3 (Reuse.total_refs r);
  Alcotest.(check int) "all cold" 3 (Reuse.cold_refs r);
  Alcotest.(check int) "misses at any size" 3 (Reuse.misses_at r 1)

let test_immediate_reuse () =
  (* 0 0 0: distances 0, 0 -> hits in any cache with >= 1 line. *)
  let r = reuse [ 0; 0; 0 ] in
  Alcotest.(check int) "1 cold" 1 (Reuse.cold_refs r);
  Alcotest.(check int) "1-line cache: only the cold miss" 1 (Reuse.misses_at r 1)

let test_known_distances () =
  (* 0 1 2 0: the final 0 has distance 2 -> hit iff c >= 3. *)
  let r = reuse [ 0; 1; 2; 0 ] in
  Alcotest.(check int) "c=3: cold only" 3 (Reuse.misses_at r 3);
  Alcotest.(check int) "c=2: one capacity miss" 4 (Reuse.misses_at r 2)

let test_repeated_scan () =
  (* Cyclic scan of 4 lines, 3 rounds: distances all 3. *)
  let procs = List.concat (List.init 3 (fun _ -> [ 0; 1; 2; 3 ])) in
  let r = reuse procs in
  Alcotest.(check int) "cold" 4 (Reuse.cold_refs r);
  Alcotest.(check int) "c=4 holds everything" 4 (Reuse.misses_at r 4);
  Alcotest.(check int) "c=3 thrashes" 12 (Reuse.misses_at r 3)

let test_percentiles () =
  let r = reuse [ 0; 1; 0; 1; 2; 3; 0 ] in
  (* finite distances: 0->1(d=1), 1->1(d=1), 0->(1,2,3 between)=3 *)
  Alcotest.(check int) "median" 1 (Reuse.percentile r 50.);
  Alcotest.(check int) "p100" 3 (Reuse.percentile r 100.)

(* The decisive property: predicted fully-associative misses equal the LRU
   simulator's, at every capacity, on real walker traces. *)
let test_matches_lru_simulator () =
  let w = Gen.generate (Bench.find "small") in
  let params = { (Bench.find "small").Trg_synth.Shape.train with Walker.target_events = 30_000 } in
  let trace = Walker.run w.Gen.program w.Gen.behavior params in
  let layout = Layout.default w.Gen.program in
  let r = Reuse.compute w.Gen.program layout ~line_size:32 trace in
  List.iter
    (fun lines ->
      let cache = Config.make ~size:(lines * 32) ~line_size:32 ~assoc:lines in
      let sim = Sim.simulate w.Gen.program layout cache trace in
      Alcotest.(check int)
        (Printf.sprintf "FA misses at %d lines" lines)
        sim.Sim.misses (Reuse.misses_at r lines))
    [ 16; 64; 256 ]

let test_histogram_sums () =
  let r = reuse [ 0; 1; 0; 1; 0 ] in
  let finite = List.fold_left (fun acc (_, c) -> acc + c) 0 (Reuse.histogram r) in
  Alcotest.(check int) "finite + cold = total" (Reuse.total_refs r)
    (finite + Reuse.cold_refs r)

(* --- Online profiling ----------------------------------------------------- *)

let test_online_equals_offline_unfiltered () =
  (* Feeding the trace's events to the online profiler must produce exactly
     the unfiltered offline TRGs. *)
  let w = Gen.generate (Bench.find "small") in
  let params = { (Bench.find "small").Trg_synth.Shape.train with Walker.target_events = 20_000 } in
  let trace = Walker.run w.Gen.program w.Gen.behavior params in
  let chunks = Chunk.make ~chunk_size:256 w.Gen.program in
  let profiler = Online.create ~capacity_bytes:16384 w.Gen.program chunks in
  Trace.iter (Online.observe profiler) trace;
  let snap = Online.finish profiler in
  let offline_select = Trg.build_select ~capacity_bytes:16384 w.Gen.program trace in
  let offline_place = Trg.build_place ~capacity_bytes:16384 chunks trace in
  Alcotest.(check bool) "select graphs identical" true
    (Graph.edges snap.Online.select.Trg.graph = Graph.edges offline_select.Trg.graph);
  Alcotest.(check bool) "place graphs identical" true
    (Graph.edges snap.Online.place.Trg.graph = Graph.edges offline_place.Trg.graph);
  Alcotest.(check int) "events counted" 20_000 (Online.events_seen profiler)

let test_online_tstats_match () =
  let w = Gen.generate (Bench.find "small") in
  let params = { (Bench.find "small").Trg_synth.Shape.train with Walker.target_events = 10_000 } in
  let trace = Walker.run w.Gen.program w.Gen.behavior params in
  let chunks = Chunk.make ~chunk_size:256 w.Gen.program in
  let profiler = Online.create ~capacity_bytes:16384 w.Gen.program chunks in
  Trace.iter (Online.observe profiler) trace;
  let snap = Online.finish profiler in
  let offline = Trg_trace.Tstats.compute ~n_procs:(Program.n_procs w.Gen.program) trace in
  Alcotest.(check bool) "tstats identical" true (snap.Online.tstats = offline)

let test_online_streaming_equivalence () =
  (* Streaming the walker into the profiler = tracing then feeding. *)
  let w = Gen.generate (Bench.find "small") in
  let params = { (Bench.find "small").Trg_synth.Shape.train with Walker.target_events = 10_000 } in
  let chunks = Chunk.make ~chunk_size:256 w.Gen.program in
  let streamed = Online.create ~capacity_bytes:16384 w.Gen.program chunks in
  Walker.run_streaming w.Gen.program w.Gen.behavior params ~f:(Online.observe streamed);
  let traced = Online.create ~capacity_bytes:16384 w.Gen.program chunks in
  Trace.iter (Online.observe traced) (Walker.run w.Gen.program w.Gen.behavior params);
  let a = Online.finish streamed and b = Online.finish traced in
  Alcotest.(check bool) "identical graphs" true
    (Graph.edges a.Online.select.Trg.graph = Graph.edges b.Online.select.Trg.graph)

let test_online_experiment () =
  let r = Trg_eval.Runner.prepare (Bench.find "small") in
  let res = Trg_eval.Online.run r in
  Alcotest.(check bool) "online has at least as many select edges" true
    (res.Trg_eval.Online.online_select_edges >= res.Trg_eval.Online.offline_select_edges);
  Alcotest.(check bool) "online placement competitive" true
    (res.Trg_eval.Online.online_mr <= 1.5 *. res.Trg_eval.Online.offline_mr)

let test_charact_row () =
  let r = Trg_eval.Runner.prepare (Bench.find "small") in
  let row = Trg_eval.Charact.row_of r in
  Alcotest.(check bool) "floors monotone" true
    (row.Trg_eval.Charact.fa_4k >= row.Trg_eval.Charact.fa_8k
    && row.Trg_eval.Charact.fa_8k >= row.Trg_eval.Charact.fa_16k
    && row.Trg_eval.Charact.fa_16k >= row.Trg_eval.Charact.fa_32k);
  Alcotest.(check bool) "DM above FA floor" true
    (row.Trg_eval.Charact.dm_8k >= row.Trg_eval.Charact.fa_8k -. 1e-9);
  Alcotest.(check bool) "percentiles ordered" true
    (row.Trg_eval.Charact.p50 <= row.Trg_eval.Charact.p90
    && row.Trg_eval.Charact.p90 <= row.Trg_eval.Charact.p99)

let suite =
  [
    Alcotest.test_case "cold only" `Quick test_cold_only;
    Alcotest.test_case "immediate reuse" `Quick test_immediate_reuse;
    Alcotest.test_case "known distances" `Quick test_known_distances;
    Alcotest.test_case "repeated scan" `Quick test_repeated_scan;
    Alcotest.test_case "percentiles" `Quick test_percentiles;
    Alcotest.test_case "matches LRU simulator" `Quick test_matches_lru_simulator;
    Alcotest.test_case "histogram sums" `Quick test_histogram_sums;
    Alcotest.test_case "online = offline unfiltered" `Quick test_online_equals_offline_unfiltered;
    Alcotest.test_case "online tstats match" `Quick test_online_tstats_match;
    Alcotest.test_case "online streaming equivalence" `Quick test_online_streaming_equivalence;
    Alcotest.test_case "online experiment" `Quick test_online_experiment;
    Alcotest.test_case "charact row" `Quick test_charact_row;
  ]

(* --- Two-level hierarchy -------------------------------------------------- *)

let test_hierarchy_l2_sees_l1_misses () =
  let w = Gen.generate (Bench.find "small") in
  let params = { (Bench.find "small").Trg_synth.Shape.train with Walker.target_events = 20_000 } in
  let trace = Walker.run w.Gen.program w.Gen.behavior params in
  let layout = Layout.default w.Gen.program in
  let l1 = Config.make ~size:8192 ~line_size:32 ~assoc:1 in
  let l2 = Config.make ~size:65536 ~line_size:64 ~assoc:4 in
  let h = Sim.simulate_hierarchy w.Gen.program layout ~l1 ~l2 trace in
  let l1_alone = Sim.simulate w.Gen.program layout l1 trace in
  Alcotest.(check int) "L1 result unchanged" l1_alone.Sim.misses h.Sim.l1.Sim.misses;
  Alcotest.(check int) "L2 accesses = L1 misses" h.Sim.l1.Sim.misses h.Sim.l2.Sim.accesses;
  Alcotest.(check bool) "L2 misses <= L2 accesses" true
    (h.Sim.l2.Sim.misses <= h.Sim.l2.Sim.accesses);
  (* AMAT formula: 1 + 10*l1mr + 90*(l2 misses / l1 accesses). *)
  let expected =
    1.
    +. (10. *. float_of_int h.Sim.l1.Sim.misses /. float_of_int h.Sim.l1.Sim.accesses)
    +. (90. *. float_of_int h.Sim.l2.Sim.misses /. float_of_int h.Sim.l1.Sim.accesses)
  in
  Alcotest.(check (float 1e-9)) "amat formula" expected h.Sim.amat

let test_hierarchy_rejects_bad_lines () =
  let program = Program.of_sizes [| 64 |] in
  let layout = Layout.default program in
  let l1 = Config.make ~size:8192 ~line_size:32 ~assoc:1 in
  let l2 = Config.make ~size:(48 * 4 * 256) ~line_size:48 ~assoc:4 in
  Alcotest.(check bool) "indivisible line sizes rejected" true
    (try
       ignore
         (Sim.simulate_hierarchy program layout ~l1 ~l2 (ref_trace [ 0 ]));
       false
     with Invalid_argument _ -> true)

let test_hierarchy_experiment () =
  let r = Trg_eval.Runner.prepare (Bench.find "small") in
  let res = Trg_eval.Hierarchy.run ~cpus:[ "alpha-21064"; "skylake" ] r in
  Alcotest.(check int) "two CPU models" 2 (List.length res.Trg_eval.Hierarchy.cpus);
  List.iter
    (fun (c : Trg_eval.Hierarchy.cpu_result) ->
      Alcotest.(check int)
        (c.Trg_eval.Hierarchy.cpu.Trg_cache.Cpu.name ^ " rows")
        4
        (List.length c.Trg_eval.Hierarchy.rows);
      List.iter
        (fun (row : Trg_eval.Hierarchy.row) ->
          Alcotest.(check int)
            (row.Trg_eval.Hierarchy.label ^ " level count")
            (List.length c.Trg_eval.Hierarchy.level_labels)
            (List.length row.Trg_eval.Hierarchy.levels);
          Alcotest.(check bool)
            (row.Trg_eval.Hierarchy.label ^ " positive cycles")
            true
            (row.Trg_eval.Hierarchy.cycles > 0
            && row.Trg_eval.Hierarchy.amat >= 1.0))
        c.Trg_eval.Hierarchy.rows)
    res.Trg_eval.Hierarchy.cpus;
  (* On the paper's machine the paper's result must hold: GBSC beats the
     default layout end to end (estimated cycles, not just L1 misses). *)
  let alpha = List.hd res.Trg_eval.Hierarchy.cpus in
  let get label =
    List.find
      (fun (x : Trg_eval.Hierarchy.row) -> x.Trg_eval.Hierarchy.label = label)
      alpha.Trg_eval.Hierarchy.rows
  in
  Alcotest.(check bool) "GBSC improves AMAT on alpha-21064" true
    ((get "GBSC").Trg_eval.Hierarchy.amat
    < (get "default layout").Trg_eval.Hierarchy.amat)

let suite =
  suite
  @ [
      Alcotest.test_case "hierarchy L2 sees L1 misses" `Quick test_hierarchy_l2_sees_l1_misses;
      Alcotest.test_case "hierarchy rejects bad lines" `Quick test_hierarchy_rejects_bad_lines;
      Alcotest.test_case "hierarchy experiment" `Quick test_hierarchy_experiment;
    ]
