module Graph = Trg_profile.Graph
module Wcg = Trg_profile.Wcg
module Trg = Trg_profile.Trg
module Pair_db = Trg_profile.Pair_db
module Popularity = Trg_profile.Popularity
module Perturb = Trg_profile.Perturb
module Toy = Trg_synth.Toy
module Tstats = Trg_trace.Tstats
module Trace = Trg_trace.Trace
module Event = Trg_trace.Event
module Prng = Trg_util.Prng

let m = Toy.m and x = Toy.x and y = Toy.y and z = Toy.z

(* --- WCG ------------------------------------------------------------- *)

let test_wcg_counts_calls_and_returns () =
  let wcg = Wcg.build (Toy.trace_blocked ~iterations:80 ()) in
  (* 40 calls M->X plus 40 returns X->M. *)
  Alcotest.(check (float 1e-9)) "M-X" 80. (Graph.weight wcg m x);
  Alcotest.(check (float 1e-9)) "M-Y" 80. (Graph.weight wcg m y);
  Alcotest.(check (float 1e-9)) "M-Z" 160. (Graph.weight wcg m z)

let test_wcg_identical_for_both_traces () =
  (* The paper's point: trace #1 and trace #2 produce the same WCG. *)
  let w1 = Wcg.build (Toy.trace_alternating ()) in
  let w2 = Wcg.build (Toy.trace_blocked ()) in
  Alcotest.(check bool) "same edges" true (Graph.edges w1 = Graph.edges w2)

let test_wcg_no_sibling_edges () =
  let wcg = Wcg.build (Toy.trace_blocked ()) in
  Alcotest.(check (float 1e-9)) "X-Y absent" 0. (Graph.weight wcg x y);
  Alcotest.(check (float 1e-9)) "X-Z absent" 0. (Graph.weight wcg x z)

let test_wcg_call_counts_half () =
  let full = Wcg.build (Toy.trace_blocked ()) in
  let calls = Wcg.call_counts (Toy.trace_blocked ()) in
  Alcotest.(check (float 1e-9)) "calls are half" (Graph.weight full m x /. 2.)
    (Graph.weight calls m x)

(* --- TRG (Figure 2) -------------------------------------------------- *)

let toy_capacity = 2 * Toy.cache.Trg_cache.Config.size

let build_select trace =
  (Trg.build_select ~capacity_bytes:toy_capacity Toy.program trace).Trg.graph

let test_trg_blocked_edges () =
  (* Figure 2: trace #2 yields extra edges (X,Z) and (Y,Z) but NOT (X,Y). *)
  let g = build_select (Toy.trace_blocked ()) in
  Alcotest.(check bool) "X-Z present" true (Graph.weight g x z > 0.);
  Alcotest.(check bool) "Y-Z present" true (Graph.weight g y z > 0.);
  Alcotest.(check (float 1e-9)) "X-Y absent" 0. (Graph.weight g x y)

let test_trg_alternating_edges () =
  (* Trace #1 interleaves X and Y, so the TRG sees them. *)
  let g = build_select (Toy.trace_alternating ()) in
  Alcotest.(check bool) "X-Y present" true (Graph.weight g x y > 0.)

let test_trg_weights_nearly_double_wcg () =
  (* Figure 2's caption: WCG edges remain with nearly doubled weights
     relative to call counts (approx 2x40 for M-X). *)
  let g = build_select (Toy.trace_blocked ()) in
  let w_mx = Graph.weight g m x in
  Alcotest.(check bool)
    (Printf.sprintf "70 <= W(M,X)=%g <= 80" w_mx)
    true
    (w_mx >= 70. && w_mx <= 80.)

let test_trg_distinguishes_traces () =
  let g1 = build_select (Toy.trace_alternating ()) in
  let g2 = build_select (Toy.trace_blocked ()) in
  Alcotest.(check bool) "different graphs" true (Graph.edges g1 <> Graph.edges g2)

let test_trg_capacity_limits_reach () =
  (* With a tiny Q bound, far-apart procedures never meet in Q.  The stream
     1 2 1 visits 1 twice within the bound; 1 2 3 4 ... 1 does not. *)
  let near =
    Trg.build_stream ~capacity_bytes:64 ~size_of:(fun _ -> 32) (fun emit ->
        List.iter emit [ 1; 2; 1 ])
  in
  Alcotest.(check bool) "near reuse seen" true (Graph.weight near.Trg.graph 1 2 > 0.);
  let far =
    Trg.build_stream ~capacity_bytes:64 ~size_of:(fun _ -> 32) (fun emit ->
        List.iter emit [ 1; 2; 3; 4; 5; 1 ])
  in
  Alcotest.(check (float 1e-9)) "far reuse invisible" 0. (Graph.weight far.Trg.graph 1 5)

let test_trg_consecutive_duplicates_collapse () =
  let b =
    Trg.build_stream ~capacity_bytes:1024 ~size_of:(fun _ -> 32) (fun emit ->
        List.iter emit [ 1; 1; 1; 2; 2; 1 ])
  in
  (* Equivalent to 1 2 1: one increment on (1,2). *)
  Alcotest.(check (float 1e-9)) "single increment" 1. (Graph.weight b.Trg.graph 1 2)

let test_trg_qstats_steps () =
  let b =
    Trg.build_stream ~capacity_bytes:1024 ~size_of:(fun _ -> 32) (fun emit ->
        List.iter emit [ 1; 2; 3 ])
  in
  Alcotest.(check int) "3 steps" 3 b.Trg.qstats.Trg_profile.Qset.steps

let test_trg_place_chunk_granularity () =
  (* One 512-byte procedure alternating its two 256-byte halves against a
     small second procedure: the chunk TRG must see intra-procedure
     structure that the procedure TRG cannot. *)
  let program = Trg_program.Program.of_sizes [| 512; 64 |] in
  let chunks = Trg_program.Chunk.make ~chunk_size:256 program in
  let ev proc offset len = Event.make ~kind:Event.Run ~proc ~offset ~len in
  let trace =
    Trace.of_list
      [ ev 0 0 64; ev 0 256 64; ev 0 0 64; ev 0 256 64; ev 0 0 64 ]
  in
  let b = Trg.build_place ~capacity_bytes:16384 chunks trace in
  Alcotest.(check bool) "chunk edge inside proc" true (Graph.weight b.Trg.graph 0 1 > 0.)

(* --- Pair database (Section 6) --------------------------------------- *)

let test_pair_db_basic () =
  (* Stream p r s p: pair {r,s} appears between the two p references. *)
  let b =
    Pair_db.build_stream ~capacity_bytes:4096 ~size_of:(fun _ -> 32) (fun emit ->
        List.iter emit [ 1; 2; 3; 1 ])
  in
  Alcotest.(check (float 1e-9)) "D(1,{2,3})" 1. (Pair_db.count b.Pair_db.db ~p:1 ~r:2 ~s:3);
  Alcotest.(check (float 1e-9)) "unordered" 1. (Pair_db.count b.Pair_db.db ~p:1 ~r:3 ~s:2)

let test_pair_db_single_intervener_no_pair () =
  (* One intervening block is not enough to evict from a 2-way set. *)
  let b =
    Pair_db.build_stream ~capacity_bytes:4096 ~size_of:(fun _ -> 32) (fun emit ->
        List.iter emit [ 1; 2; 1 ])
  in
  Alcotest.(check int) "no pairs" 0 (Pair_db.n_entries b.Pair_db.db)

let test_pair_db_triple_interveners () =
  let b =
    Pair_db.build_stream ~capacity_bytes:4096 ~size_of:(fun _ -> 32) (fun emit ->
        List.iter emit [ 1; 2; 3; 4; 1 ])
  in
  (* C(3,2) = 3 pairs recorded for p=1. *)
  Alcotest.(check int) "three pairs" 3 (Pair_db.n_entries b.Pair_db.db);
  Alcotest.(check (float 1e-9)) "D(1,{2,4})" 1. (Pair_db.count b.Pair_db.db ~p:1 ~r:2 ~s:4)

let test_pair_db_iteration () =
  let db = Pair_db.create () in
  Pair_db.add db ~p:5 ~r:1 ~s:2 2.;
  Pair_db.add db ~p:5 ~r:2 ~s:1 1.;
  let total = ref 0. in
  Pair_db.iter_p db 5 (fun r s w ->
      Alcotest.(check bool) "canonical r<s" true (r < s);
      total := !total +. w);
  Alcotest.(check (float 1e-9)) "accumulated" 3. !total

let test_pair_db_rejects_degenerate () =
  let db = Pair_db.create () in
  Alcotest.(check bool) "r=s rejected" true
    (try
       Pair_db.add db ~p:1 ~r:2 ~s:2 1.;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "r=p rejected" true
    (try
       Pair_db.add db ~p:1 ~r:1 ~s:2 1.;
       false
     with Invalid_argument _ -> true)

let test_pair_db_max_between () =
  let feed emit = List.iter emit [ 1; 2; 3; 4; 5; 6; 1 ] in
  let unbounded =
    Pair_db.build_stream ~capacity_bytes:65536 ~size_of:(fun _ -> 32) ~max_between:64 feed
  in
  let bounded =
    Pair_db.build_stream ~capacity_bytes:65536 ~size_of:(fun _ -> 32) ~max_between:2 feed
  in
  Alcotest.(check int) "C(5,2)=10" 10 (Pair_db.n_entries unbounded.Pair_db.db);
  Alcotest.(check int) "truncated to C(2,2)=1" 1 (Pair_db.n_entries bounded.Pair_db.db);
  (* Truncation keeps the most recent interveners (5 and 6). *)
  Alcotest.(check (float 1e-9)) "recent pair kept" 1.
    (Pair_db.count bounded.Pair_db.db ~p:1 ~r:5 ~s:6)

(* --- Popularity ------------------------------------------------------- *)

let trace_with_counts counts =
  (* counts.(p) references of procedure p, interleaved round-robin-ish. *)
  let events = ref [] in
  Array.iteri
    (fun p c ->
      for _ = 1 to c do
        events := Event.make ~kind:Event.Enter ~proc:p ~offset:0 ~len:16 :: !events
      done)
    counts;
  Trace.of_list !events

let test_popularity_coverage () =
  let program = Trg_program.Program.of_sizes [| 100; 100; 100; 100 |] in
  let trace = trace_with_counts [| 970; 20; 8; 2 |] in
  let stats = Tstats.compute ~n_procs:4 trace in
  let pop = Popularity.select ~coverage:0.97 ~min_refs:2 program stats in
  Alcotest.(check bool) "p0 popular" true pop.Popularity.is_popular.(0);
  Alcotest.(check bool) "p3 not popular" false pop.Popularity.is_popular.(3);
  Alcotest.(check int) "ranked head" 0 pop.Popularity.ranked.(0)

let test_popularity_min_refs () =
  let program = Trg_program.Program.of_sizes [| 100; 100 |] in
  let trace = trace_with_counts [| 100; 1 |] in
  let stats = Tstats.compute ~n_procs:2 trace in
  let pop = Popularity.select ~coverage:1.0 ~min_refs:2 program stats in
  Alcotest.(check bool) "1-ref proc excluded" false pop.Popularity.is_popular.(1)

let test_popularity_max_procs () =
  let program = Trg_program.Program.of_sizes (Array.make 10 100) in
  let trace = trace_with_counts (Array.make 10 50) in
  let stats = Tstats.compute ~n_procs:10 trace in
  let pop = Popularity.select ~coverage:1.0 ~min_refs:1 ~max_procs:3 program stats in
  Alcotest.(check int) "capped at 3" 3 (Popularity.n_popular pop)

let test_popularity_unpopular_sorted () =
  let program = Trg_program.Program.of_sizes (Array.make 5 100) in
  let trace = trace_with_counts [| 0; 100; 0; 100; 0 |] in
  let stats = Tstats.compute ~n_procs:5 trace in
  let pop = Popularity.select ~coverage:1.0 ~min_refs:1 program stats in
  Alcotest.(check (array int)) "unpopular ascending" [| 0; 2; 4 |] (Popularity.unpopular pop);
  Alcotest.(check int) "popular bytes" 200 pop.Popularity.popular_bytes

(* --- Perturbation ----------------------------------------------------- *)

let test_perturb_zero_s_identity () =
  let g = Graph.of_edges [ (1, 2, 5.); (2, 3, 7.) ] in
  let g' = Perturb.graph (Prng.create 1) ~s:0. g in
  Alcotest.(check bool) "identical" true (Graph.edges g = Graph.edges g')

let test_perturb_positive_weights () =
  let g = Graph.of_edges [ (1, 2, 5.); (2, 3, 7.); (1, 3, 0.5) ] in
  let g' = Perturb.graph (Prng.create 2) ~s:1.0 g in
  Graph.iter_edges (fun _ _ w -> Alcotest.(check bool) "positive" true (w > 0.)) g'

let test_perturb_changes_weights () =
  let g = Graph.of_edges [ (1, 2, 5.) ] in
  let g' = Perturb.graph (Prng.create 3) ~s:0.1 g in
  Alcotest.(check bool) "perturbed" true (Graph.weight g' 1 2 <> 5.);
  (* Multiplicative, scale 0.1: stays within a factor of ~2 virtually always. *)
  Alcotest.(check bool) "close to original" true
    (Graph.weight g' 1 2 > 2.5 && Graph.weight g' 1 2 < 10.)

let test_perturb_deterministic () =
  let g = Graph.of_edges [ (1, 2, 5.); (2, 3, 7.) ] in
  let a = Perturb.graph (Prng.create 4) ~s:0.1 g in
  let b = Perturb.graph (Prng.create 4) ~s:0.1 g in
  Alcotest.(check bool) "same seed same result" true (Graph.edges a = Graph.edges b)

let test_perturb_pair_db () =
  let db = Pair_db.create () in
  Pair_db.add db ~p:1 ~r:2 ~s:3 10.;
  let db' = Perturb.pair_db (Prng.create 5) ~s:0.1 db in
  let w = Pair_db.count db' ~p:1 ~r:2 ~s:3 in
  Alcotest.(check bool) "perturbed positive" true (w > 0. && w <> 10.)

let prop_perturb_preserves_structure =
  QCheck.Test.make ~name:"perturbation preserves edge set" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 30) (pair (int_range 0 15) (int_range 0 15)))
    (fun pairs ->
      let g = Graph.create () in
      List.iter (fun (u, v) -> if u <> v then Graph.add_edge g u v 1.) pairs;
      let g' = Perturb.graph (Prng.create 6) ~s:0.5 g in
      Graph.n_edges g = Graph.n_edges g'
      && List.for_all
           (fun (u, v) -> u = v || Graph.mem_edge g' u v)
           pairs)

let suite =
  [
    Alcotest.test_case "WCG counts calls+returns" `Quick test_wcg_counts_calls_and_returns;
    Alcotest.test_case "WCG identical for both traces" `Quick test_wcg_identical_for_both_traces;
    Alcotest.test_case "WCG has no sibling edges" `Quick test_wcg_no_sibling_edges;
    Alcotest.test_case "WCG call_counts halves" `Quick test_wcg_call_counts_half;
    Alcotest.test_case "TRG blocked trace edges (Fig 2)" `Quick test_trg_blocked_edges;
    Alcotest.test_case "TRG alternating trace edges" `Quick test_trg_alternating_edges;
    Alcotest.test_case "TRG weights ~2x call counts" `Quick test_trg_weights_nearly_double_wcg;
    Alcotest.test_case "TRG distinguishes traces" `Quick test_trg_distinguishes_traces;
    Alcotest.test_case "TRG capacity limits reach" `Quick test_trg_capacity_limits_reach;
    Alcotest.test_case "TRG duplicate collapse" `Quick test_trg_consecutive_duplicates_collapse;
    Alcotest.test_case "TRG qstats steps" `Quick test_trg_qstats_steps;
    Alcotest.test_case "TRG_place chunk granularity" `Quick test_trg_place_chunk_granularity;
    Alcotest.test_case "pair db basic" `Quick test_pair_db_basic;
    Alcotest.test_case "pair db single intervener" `Quick test_pair_db_single_intervener_no_pair;
    Alcotest.test_case "pair db triple interveners" `Quick test_pair_db_triple_interveners;
    Alcotest.test_case "pair db iteration" `Quick test_pair_db_iteration;
    Alcotest.test_case "pair db rejects degenerate" `Quick test_pair_db_rejects_degenerate;
    Alcotest.test_case "pair db max_between" `Quick test_pair_db_max_between;
    Alcotest.test_case "popularity coverage" `Quick test_popularity_coverage;
    Alcotest.test_case "popularity min_refs" `Quick test_popularity_min_refs;
    Alcotest.test_case "popularity max_procs" `Quick test_popularity_max_procs;
    Alcotest.test_case "popularity unpopular sorted" `Quick test_popularity_unpopular_sorted;
    Alcotest.test_case "perturb s=0 identity" `Quick test_perturb_zero_s_identity;
    Alcotest.test_case "perturb positive" `Quick test_perturb_positive_weights;
    Alcotest.test_case "perturb changes weights" `Quick test_perturb_changes_weights;
    Alcotest.test_case "perturb deterministic" `Quick test_perturb_deterministic;
    Alcotest.test_case "perturb pair db" `Quick test_perturb_pair_db;
    QCheck_alcotest.to_alcotest prop_perturb_preserves_structure;
  ]
