module Event = Trg_trace.Event
module Trace = Trg_trace.Trace
module Io = Trg_trace.Io
module Tstats = Trg_trace.Tstats

let ev kind proc offset len = Event.make ~kind ~proc ~offset ~len

let test_pack_roundtrip () =
  let cases =
    [
      ev Event.Enter 0 0 1;
      ev Event.Resume 16383 ((1 lsl 24) - 1) 1;
      ev Event.Run 42 12345 ((1 lsl 22));
      ev Event.Enter 100 256 32;
    ]
  in
  List.iter
    (fun e ->
      let e' = Event.unpack (Event.pack e) in
      Alcotest.(check bool) "roundtrip" true (e = e'))
    cases

let test_make_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "neg proc" true (bad (fun () -> ev Event.Run (-1) 0 1));
  Alcotest.(check bool) "zero len" true (bad (fun () -> ev Event.Run 0 0 0));
  Alcotest.(check bool) "huge proc" true (bad (fun () -> ev Event.Run (1 lsl 14) 0 1));
  Alcotest.(check bool) "huge offset" true (bad (fun () -> ev Event.Run 0 (1 lsl 24) 1))

let test_kind_chars () =
  List.iter
    (fun k ->
      Alcotest.(check bool) "char roundtrip" true
        (Event.kind_of_char (Event.kind_to_char k) = k))
    [ Event.Enter; Event.Resume; Event.Run ]

let test_is_transition () =
  Alcotest.(check bool) "enter" true (Event.is_transition (ev Event.Enter 0 0 1));
  Alcotest.(check bool) "resume" true (Event.is_transition (ev Event.Resume 0 0 1));
  Alcotest.(check bool) "run" false (Event.is_transition (ev Event.Run 0 0 1))

let sample_events =
  [
    ev Event.Enter 0 0 32;
    ev Event.Enter 1 0 16;
    ev Event.Run 1 16 16;
    ev Event.Resume 0 32 32;
    ev Event.Enter 2 0 64;
  ]

let test_trace_of_list () =
  let t = Trace.of_list sample_events in
  Alcotest.(check int) "length" 5 (Trace.length t);
  Alcotest.(check bool) "get 2" true (Trace.get t 2 = ev Event.Run 1 16 16);
  Alcotest.(check bool) "to_list" true (Trace.to_list t = sample_events)

let test_trace_iter_fold () =
  let t = Trace.of_list sample_events in
  let count = ref 0 in
  Trace.iter (fun _ -> incr count) t;
  Alcotest.(check int) "iter count" 5 !count;
  let total = Trace.fold (fun acc (e : Event.t) -> acc + e.len) 0 t in
  Alcotest.(check int) "fold len" 160 total

let test_trace_procs_of () =
  let t = Trace.of_list sample_events in
  Alcotest.(check (list int)) "procs" [ 0; 1; 2 ] (Trace.procs_of t)

let test_trace_sub_concat () =
  let t = Trace.of_list sample_events in
  let a = Trace.sub t ~pos:0 ~len:2 and b = Trace.sub t ~pos:2 ~len:3 in
  let joined = Trace.concat [ a; b ] in
  Alcotest.(check bool) "concat = original" true (Trace.to_list joined = sample_events)

let test_builder () =
  let b = Trace.Builder.create ~capacity:1 () in
  Alcotest.(check (option int)) "empty last" None (Trace.Builder.last_proc b);
  List.iter (Trace.Builder.add b) sample_events;
  Alcotest.(check int) "length" 5 (Trace.Builder.length b);
  Alcotest.(check (option int)) "last proc" (Some 2) (Trace.Builder.last_proc b);
  let t = Trace.Builder.build b in
  Alcotest.(check bool) "built" true (Trace.to_list t = sample_events);
  (* The builder survives build: adding more keeps working. *)
  Trace.Builder.add b (ev Event.Run 2 0 8);
  Alcotest.(check int) "still usable" 6 (Trace.Builder.length b);
  Alcotest.(check int) "frozen unchanged" 5 (Trace.length t)

let test_io_roundtrip () =
  let t = Trace.of_list sample_events in
  let path = Filename.temp_file "trgplace" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save path t;
      let t' = Io.load path in
      Alcotest.(check bool) "io roundtrip" true (Trace.to_list t' = sample_events))

let test_io_rejects_garbage () =
  let path = Filename.temp_file "trgplace" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a trace\n";
      close_out oc;
      Alcotest.(check bool) "garbage rejected" true
        (try
           ignore (Io.load path);
           false
         with Failure _ -> true))

let test_tstats () =
  let t = Trace.of_list sample_events in
  let s = Tstats.compute ~n_procs:3 t in
  Alcotest.(check int) "events" 5 s.Tstats.n_events;
  Alcotest.(check int) "transitions" 4 s.Tstats.n_transitions;
  Alcotest.(check int) "procs referenced" 3 s.Tstats.n_procs_referenced;
  Alcotest.(check int) "enter p1" 1 s.Tstats.enter_counts.(1);
  Alcotest.(check int) "refs p0" 2 s.Tstats.ref_counts.(0);
  Alcotest.(check int) "bytes" 160 s.Tstats.bytes_executed

let prop_pack_roundtrip =
  let gen =
    QCheck.Gen.(
      map
        (fun (k, p, o, l) ->
          let kind = match k with 0 -> Event.Enter | 1 -> Event.Resume | _ -> Event.Run in
          Event.make ~kind ~proc:p ~offset:o ~len:l)
        (quad (int_range 0 2) (int_range 0 16383) (int_range 0 ((1 lsl 24) - 1))
           (int_range 1 (1 lsl 22))))
  in
  QCheck.Test.make ~name:"event pack/unpack roundtrip" ~count:1000
    (QCheck.make gen)
    (fun e -> Event.unpack (Event.pack e) = e)

let suite =
  [
    Alcotest.test_case "pack roundtrip" `Quick test_pack_roundtrip;
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "kind chars" `Quick test_kind_chars;
    Alcotest.test_case "is_transition" `Quick test_is_transition;
    Alcotest.test_case "trace of_list/get" `Quick test_trace_of_list;
    Alcotest.test_case "trace iter/fold" `Quick test_trace_iter_fold;
    Alcotest.test_case "trace procs_of" `Quick test_trace_procs_of;
    Alcotest.test_case "trace sub/concat" `Quick test_trace_sub_concat;
    Alcotest.test_case "builder" `Quick test_builder;
    Alcotest.test_case "io roundtrip" `Quick test_io_roundtrip;
    Alcotest.test_case "io rejects garbage" `Quick test_io_rejects_garbage;
    Alcotest.test_case "tstats" `Quick test_tstats;
    QCheck_alcotest.to_alcotest prop_pack_roundtrip;
  ]

let test_io_binary_roundtrip () =
  let t = Trace.of_list sample_events in
  let path = Filename.temp_file "trgplace" ".traceb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save_binary path t;
      let t' = Io.load path in
      Alcotest.(check bool) "binary roundtrip via auto-detect" true
        (Trace.to_list t' = sample_events))

let test_io_binary_smaller () =
  let t = Trace.of_list (List.concat (List.init 200 (fun _ -> sample_events))) in
  let p1 = Filename.temp_file "trgplace" ".txt" in
  let p2 = Filename.temp_file "trgplace" ".bin" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove p1;
      Sys.remove p2)
    (fun () ->
      Io.save p1 t;
      Io.save_binary p2 t;
      Alcotest.(check bool) "binary smaller than text" true
        ((Unix.stat p2).Unix.st_size < (Unix.stat p1).Unix.st_size))

let test_io_binary_truncated () =
  let t = Trace.of_list sample_events in
  let path = Filename.temp_file "trgplace" ".traceb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save_binary path t;
      (* Chop the last 4 bytes. *)
      let size = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      Unix.ftruncate fd (size - 4);
      Unix.close fd;
      Alcotest.(check bool) "truncation detected" true
        (try
           ignore (Io.load path);
           false
         with Failure _ -> true))

let suite =
  suite
  @ [
      Alcotest.test_case "io binary roundtrip" `Quick test_io_binary_roundtrip;
      Alcotest.test_case "io binary smaller" `Quick test_io_binary_smaller;
      Alcotest.test_case "io binary truncated" `Quick test_io_binary_truncated;
    ]
