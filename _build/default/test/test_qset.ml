module Qset = Trg_profile.Qset

let fixed32 _ = 32

let collect q p =
  let seen = ref [] in
  let prior = Qset.reference q p ~between:(fun x -> seen := x :: !seen) in
  (prior, List.rev !seen)

(* The paper's Figure 3: building the TRG from trace #2 (M X M Z M X ...),
   every procedure one cache line, Q bound of twice a 3-line cache. *)
let test_figure3_steps () =
  let q = Qset.create ~capacity_bytes:192 ~size_of:fixed32 in
  let m = 0 and x = 1 and z = 3 in
  Alcotest.(check bool) "M new" true (collect q m = (false, []));
  Alcotest.(check bool) "X new" true (collect q x = (false, []));
  (* (a): processing M increments W(M, X). *)
  Alcotest.(check bool) "M sees X between" true (collect q m = (true, [ x ]));
  (* (b): processing Z adds nothing (no previous occurrence). *)
  Alcotest.(check bool) "Z new" true (collect q z = (false, []));
  Alcotest.(check (list int)) "Q order X M Z" [ x; m; z ] (Qset.members q);
  (* (c): processing M increments W(M, Z). *)
  Alcotest.(check bool) "M sees Z" true (collect q m = (true, [ z ]));
  (* (d): processing X increments W(X, Z) and W(X, M). *)
  Alcotest.(check bool) "X sees Z and M" true (collect q x = (true, [ z; m ]));
  Alcotest.(check (list int)) "final order" [ z; m; x ] (Qset.members q)

let test_byte_bound_eviction () =
  let q = Qset.create ~capacity_bytes:64 ~size_of:fixed32 in
  ignore (collect q 10);
  ignore (collect q 11);
  ignore (collect q 12);
  (* 96 bytes resident; evicting the oldest still leaves >= 64, so it goes. *)
  Alcotest.(check (list int)) "oldest evicted" [ 11; 12 ] (Qset.members q);
  Alcotest.(check int) "bytes" 64 (Qset.total_bytes q)

let test_eviction_stops_at_bound () =
  let q = Qset.create ~capacity_bytes:100 ~size_of:fixed32 in
  List.iter (fun p -> ignore (collect q p)) [ 1; 2; 3; 4; 5 ];
  (* 5*32=160; remove 1 -> 128; removing 2 would leave 96 < 100, so stop. *)
  Alcotest.(check (list int)) "kept just above bound" [ 2; 3; 4; 5 ] (Qset.members q)

let test_reference_after_eviction_is_new () =
  let q = Qset.create ~capacity_bytes:64 ~size_of:fixed32 in
  ignore (collect q 1);
  ignore (collect q 2);
  ignore (collect q 3);
  (* 1 was evicted: re-referencing it reports no prior occurrence. *)
  let prior, _ = collect q 1 in
  Alcotest.(check bool) "evicted means no prior" false prior

let test_oversized_item_survives () =
  let q = Qset.create ~capacity_bytes:64 ~size_of:(fun _ -> 1000) in
  ignore (collect q 1);
  Alcotest.(check (list int)) "giant stays" [ 1 ] (Qset.members q);
  ignore (collect q 2);
  (* Referencing 2 evicts 1 (removal keeps >= bound ... 2000-1000 >= 64). *)
  Alcotest.(check (list int)) "giant evicted by next" [ 2 ] (Qset.members q)

let test_between_order_is_trace_order () =
  let q = Qset.create ~capacity_bytes:10_000 ~size_of:fixed32 in
  List.iter (fun p -> ignore (collect q p)) [ 7; 1; 2; 3 ];
  let _, between = collect q 7 in
  Alcotest.(check (list int)) "trace order" [ 1; 2; 3 ] between

let test_re_reference_moves_to_end () =
  let q = Qset.create ~capacity_bytes:10_000 ~size_of:fixed32 in
  List.iter (fun p -> ignore (collect q p)) [ 1; 2; 3 ];
  ignore (collect q 1);
  Alcotest.(check (list int)) "1 now most recent" [ 2; 3; 1 ] (Qset.members q)

let test_stats () =
  let q = Qset.create ~capacity_bytes:10_000 ~size_of:fixed32 in
  List.iter (fun p -> ignore (collect q p)) [ 1; 2; 3; 1 ];
  let s = Qset.stats q in
  Alcotest.(check int) "steps" 4 s.Qset.steps;
  Alcotest.(check int) "max" 3 s.Qset.max_entries;
  (* populations after each step: 1, 2, 3, 3 -> avg 2.25 *)
  Alcotest.(check (float 1e-9)) "avg" 2.25 s.Qset.avg_entries

(* Property: Q's members are always distinct, and after any step that
   appended a genuinely new identifier (the only steps on which the paper
   performs evictions) the byte bound holds: total - size(oldest) < capacity.
   Re-reference steps do not change Q's contents, so the bound can lag there
   by at most the size skew of the moved entry. *)
let prop_qset_invariants =
  QCheck.Test.make ~name:"qset invariants under random reference streams" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 300) (int_range 0 20))
    (fun refs ->
      let q = Qset.create ~capacity_bytes:256 ~size_of:(fun p -> 16 + (p * 8)) in
      List.for_all
        (fun p ->
          let had_prior = Qset.reference q p ~between:(fun _ -> ()) in
          let members = Qset.members q in
          let distinct = List.sort_uniq compare members in
          List.length distinct = List.length members
          && (had_prior
             ||
             match members with
             | [] -> false
             | oldest :: _ ->
               Qset.total_bytes q - (16 + (oldest * 8)) < 256
               || List.length members = 1))
        refs)

let suite =
  [
    Alcotest.test_case "Figure 3 steps" `Quick test_figure3_steps;
    Alcotest.test_case "byte bound eviction" `Quick test_byte_bound_eviction;
    Alcotest.test_case "eviction stops at bound" `Quick test_eviction_stops_at_bound;
    Alcotest.test_case "evicted means no prior" `Quick test_reference_after_eviction_is_new;
    Alcotest.test_case "oversized item survives" `Quick test_oversized_item_survives;
    Alcotest.test_case "between in trace order" `Quick test_between_order_is_trace_order;
    Alcotest.test_case "re-reference moves to end" `Quick test_re_reference_moves_to_end;
    Alcotest.test_case "stats" `Quick test_stats;
    QCheck_alcotest.to_alcotest prop_qset_invariants;
  ]
