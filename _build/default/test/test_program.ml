module Proc = Trg_program.Proc
module Program = Trg_program.Program
module Chunk = Trg_program.Chunk
module Layout = Trg_program.Layout

let mk sizes = Program.of_sizes (Array.of_list sizes)

let test_proc_validation () =
  Alcotest.check_raises "zero size" (Invalid_argument "Proc.make: size must be positive")
    (fun () -> ignore (Proc.make ~id:0 ~name:"p" ~size:0))

let test_program_dense_ids () =
  Alcotest.(check bool) "bad id rejected" true
    (try
       ignore
         (Program.make
            [| Proc.make ~id:1 ~name:"a" ~size:4; Proc.make ~id:0 ~name:"b" ~size:4 |]);
       false
     with Invalid_argument _ -> true)

let test_program_duplicate_names () =
  Alcotest.(check bool) "dup name rejected" true
    (try
       ignore
         (Program.make
            [| Proc.make ~id:0 ~name:"a" ~size:4; Proc.make ~id:1 ~name:"a" ~size:4 |]);
       false
     with Invalid_argument _ -> true)

let test_program_accessors () =
  let p = mk [ 100; 200; 300 ] in
  Alcotest.(check int) "n_procs" 3 (Program.n_procs p);
  Alcotest.(check int) "size" 200 (Program.size p 1);
  Alcotest.(check int) "total" 600 (Program.total_size p);
  Alcotest.(check string) "name" "p2" (Program.name p 2);
  Alcotest.(check (option int)) "find" (Some 1) (Program.find_by_name p "p1");
  Alcotest.(check (option int)) "find missing" None (Program.find_by_name p "zzz")

let test_chunk_counts () =
  let p = mk [ 256; 257; 100; 512 ] in
  let c = Chunk.make ~chunk_size:256 p in
  Alcotest.(check int) "total" (1 + 2 + 1 + 2) (Chunk.total c);
  Alcotest.(check int) "proc0 chunks" 1 (Chunk.n_chunks c 0);
  Alcotest.(check int) "proc1 chunks" 2 (Chunk.n_chunks c 1);
  Alcotest.(check int) "first of proc3" 4 (Chunk.first c 3)

let test_chunk_of_offset () =
  let p = mk [ 256; 600 ] in
  let c = Chunk.make ~chunk_size:256 p in
  Alcotest.(check int) "p0 off0" 0 (Chunk.of_offset c ~proc:0 ~offset:0);
  Alcotest.(check int) "p1 off0" 1 (Chunk.of_offset c ~proc:1 ~offset:0);
  Alcotest.(check int) "p1 off255" 1 (Chunk.of_offset c ~proc:1 ~offset:255);
  Alcotest.(check int) "p1 off256" 2 (Chunk.of_offset c ~proc:1 ~offset:256);
  Alcotest.(check int) "p1 off599" 3 (Chunk.of_offset c ~proc:1 ~offset:599)

let test_chunk_owner_and_size () =
  let p = mk [ 256; 600 ] in
  let c = Chunk.make ~chunk_size:256 p in
  Alcotest.(check int) "owner of 3" 1 (Chunk.owner c 3);
  Alcotest.(check int) "index of 3" 2 (Chunk.index_in_proc c 3);
  Alcotest.(check int) "full chunk" 256 (Chunk.size_of c 2);
  Alcotest.(check int) "tail chunk" 88 (Chunk.size_of c 3)

let test_chunk_iter_range () =
  let p = mk [ 1024 ] in
  let c = Chunk.make ~chunk_size:256 p in
  let seen = ref [] in
  Chunk.iter_range c ~proc:0 ~offset:200 ~len:400 (fun x -> seen := x :: !seen);
  Alcotest.(check (list int)) "chunks 0..2" [ 0; 1; 2 ] (List.rev !seen);
  seen := [];
  Chunk.iter_range c ~proc:0 ~offset:0 ~len:0 (fun x -> seen := x :: !seen);
  Alcotest.(check (list int)) "empty range" [] !seen

let test_layout_default () =
  let p = mk [ 100; 50; 60 ] in
  let l = Layout.default p in
  Alcotest.(check int) "p0 at 0" 0 (Layout.address l 0);
  Alcotest.(check int) "p1 aligned" 100 (Layout.address l 1);
  Alcotest.(check int) "p2 after p1" 152 (Layout.address l 2);
  Alcotest.(check int) "span" 212 (Layout.span l)

let test_layout_overlap_rejected () =
  let p = mk [ 100; 100 ] in
  Alcotest.(check bool) "overlap rejected" true
    (try
       ignore (Layout.of_addresses p [| 0; 50 |]);
       false
     with Invalid_argument _ -> true)

let test_layout_contiguous_order () =
  let p = mk [ 32; 64; 96 ] in
  let l = Layout.contiguous p [| 2; 0; 1 |] in
  Alcotest.(check int) "p2 first" 0 (Layout.address l 2);
  Alcotest.(check int) "p0 second" 96 (Layout.address l 0);
  Alcotest.(check int) "p1 third" 128 (Layout.address l 1);
  Alcotest.(check (array int)) "order" [| 2; 0; 1 |] (Layout.order l)

let test_layout_padded () =
  let p = mk [ 32; 32 ] in
  let l = Layout.padded ~pad:32 p [| 0; 1 |] in
  Alcotest.(check int) "pad shifts p1" 64 (Layout.address l 1);
  Alcotest.(check int) "gap bytes" 32 (Layout.gap_bytes l p)

let test_layout_bad_order () =
  let p = mk [ 32; 32 ] in
  Alcotest.(check bool) "non-permutation rejected" true
    (try
       ignore (Layout.contiguous p [| 0; 0 |]);
       false
     with Invalid_argument _ -> true)

let test_cache_line_of () =
  let p = mk [ 64; 64 ] in
  let l = Layout.of_addresses p [| 0; 96 |] in
  Alcotest.(check int) "line of p1" 3 (Layout.cache_line_of l ~line_size:32 ~n_lines:256 1);
  let l2 = Layout.of_addresses p [| 0; 8192 + 32 |] in
  Alcotest.(check int) "wraps" 1 (Layout.cache_line_of l2 ~line_size:32 ~n_lines:256 1)

(* Property: contiguous layouts from arbitrary size lists are always valid
   and preserve span >= total size. *)
let prop_contiguous_valid =
  QCheck.Test.make ~name:"contiguous layout valid for random programs" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 30) (int_range 1 5000))
    (fun sizes ->
      QCheck.assume (sizes <> []);
      let p = mk sizes in
      let rng = Trg_util.Prng.create 5 in
      let l = Layout.random rng p in
      Layout.span l >= Program.total_size p
      && Array.length (Layout.order l) = Program.n_procs p)

let prop_chunk_roundtrip =
  QCheck.Test.make ~name:"chunk owner/index roundtrip" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 1 4000))
    (fun sizes ->
      QCheck.assume (sizes <> []);
      let p = mk sizes in
      let c = Chunk.make ~chunk_size:256 p in
      let ok = ref true in
      for g = 0 to Chunk.total c - 1 do
        let owner = Chunk.owner c g in
        let idx = Chunk.index_in_proc c g in
        if Chunk.first c owner + idx <> g then ok := false;
        if Chunk.size_of c g <= 0 || Chunk.size_of c g > 256 then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "proc validation" `Quick test_proc_validation;
    Alcotest.test_case "program dense ids" `Quick test_program_dense_ids;
    Alcotest.test_case "program duplicate names" `Quick test_program_duplicate_names;
    Alcotest.test_case "program accessors" `Quick test_program_accessors;
    Alcotest.test_case "chunk counts" `Quick test_chunk_counts;
    Alcotest.test_case "chunk of_offset" `Quick test_chunk_of_offset;
    Alcotest.test_case "chunk owner and size" `Quick test_chunk_owner_and_size;
    Alcotest.test_case "chunk iter_range" `Quick test_chunk_iter_range;
    Alcotest.test_case "layout default" `Quick test_layout_default;
    Alcotest.test_case "layout overlap rejected" `Quick test_layout_overlap_rejected;
    Alcotest.test_case "layout contiguous order" `Quick test_layout_contiguous_order;
    Alcotest.test_case "layout padded" `Quick test_layout_padded;
    Alcotest.test_case "layout bad order" `Quick test_layout_bad_order;
    Alcotest.test_case "cache_line_of" `Quick test_cache_line_of;
    QCheck_alcotest.to_alcotest prop_contiguous_valid;
    QCheck_alcotest.to_alcotest prop_chunk_roundtrip;
  ]
