(* Final coverage batch: corner cases in under-exercised code paths. *)

module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Serial = Trg_program.Serial
module Config = Trg_cache.Config
module Sim = Trg_cache.Sim
module Event = Trg_trace.Event
module Trace = Trg_trace.Trace
module Stats = Trg_util.Stats
module Table = Trg_util.Table
module Linearize = Trg_place.Linearize
module Split = Trg_place.Split
module Behavior = Trg_synth.Behavior
module Walker = Trg_synth.Walker

(* --- Linearize gap filling priorities ------------------------------------ *)

let test_linearize_largest_fit_first () =
  (* A 13-line gap; fillers of 100, 200 and 60 bytes: the 200-byte filler
     goes in first even though it appears last, and all three fit. *)
  let program = Program.of_sizes [| 32; 32; 100; 200; 60 |] in
  let layout =
    Linearize.layout program ~line_size:32 ~n_sets:16
      ~placed:[ (0, 0); (1, 14) ]
      ~filler:[| 2; 3; 4 |]
  in
  Alcotest.(check int) "largest filler leads the gap" 32 (Layout.address layout 3);
  Alcotest.(check bool) "all fit before the second popular proc" true
    (Layout.address layout 2 < 14 * 32 && Layout.address layout 4 < 14 * 32)

let test_linearize_filler_too_big_appended () =
  (* Gap of 2 lines but the only filler needs 3: it must go to the end. *)
  let program = Program.of_sizes [| 32; 32; 96 |] in
  let layout =
    Linearize.layout program ~line_size:32 ~n_sets:8
      ~placed:[ (0, 0); (1, 3) ]
      ~filler:[| 2 |]
  in
  Alcotest.(check bool) "appended after populars" true
    (Layout.address layout 2 > Layout.address layout 1)

let test_linearize_no_populars () =
  let program = Program.of_sizes [| 40; 50 |] in
  let layout =
    Linearize.layout program ~line_size:32 ~n_sets:8 ~placed:[] ~filler:[| 0; 1 |]
  in
  Alcotest.(check int) "fillers packed from zero" 0 (Layout.address layout 0)

(* --- Walker pattern mechanics ---------------------------------------------- *)

let walker_program = Program.of_sizes [| 64; 32; 32; 32 |]

(* main loops over a selector of procs 1 and 2 with a given pattern. *)
let walker_behavior pattern =
  Behavior.make
    [|
      [
        Trg_synth.Behavior.Block { off = 0; len = 16 };
        Behavior.Loop
          {
            lo = 12;
            hi = 12;
            body =
              [
                Behavior.Select { sid = 0; callees = [| 1; 2 |]; pattern };
                Behavior.Block { off = 16; len = 16 };
              ];
          };
      ];
      [ Behavior.Block { off = 0; len = 32 } ];
      [ Behavior.Block { off = 0; len = 32 } ];
      [ Behavior.Block { off = 0; len = 32 } ];
    |]

let callee_sequence pattern n =
  let params = { Walker.default_params with Walker.target_events = n } in
  let trace = Walker.run walker_program (walker_behavior pattern) params in
  List.filter_map
    (fun (e : Event.t) ->
      if e.kind = Event.Enter && e.proc > 0 then Some e.proc else None)
    (Trace.to_list trace)

let test_walker_round_robin_alternates () =
  let seq = callee_sequence Behavior.Round_robin 40 in
  List.iteri
    (fun i p -> Alcotest.(check int) "alternating" (1 + (i mod 2)) p)
    seq

let test_walker_blocked_runs () =
  let seq = callee_sequence (Behavior.Blocked 4) 60 in
  (* Blocked 4 over [1; 2]: 1 1 1 1 2 2 2 2 1 ... *)
  List.iteri
    (fun i p -> Alcotest.(check int) "blocked run of 4" (1 + (i / 4 mod 2)) p)
    seq

let test_walker_weighted_skews () =
  let seq = callee_sequence (Behavior.Weighted 1.5) 400 in
  let ones = List.length (List.filter (fun p -> p = 1) seq) in
  let twos = List.length (List.filter (fun p -> p = 2) seq) in
  Alcotest.(check bool)
    (Printf.sprintf "rank 0 dominates (%d vs %d)" ones twos)
    true (ones > twos)

(* --- Serial channel round trips -------------------------------------------- *)

let test_serial_channel_roundtrip () =
  let program = Program.of_sizes [| 10; 20 |] in
  let path = Filename.temp_file "trgplace" ".roundtrip" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Serial.write_program oc program;
      Serial.write_layout oc (Layout.default program);
      close_out oc;
      let ic = open_in path in
      let p' = Serial.read_program ic in
      let l' = Serial.read_layout p' ic in
      close_in ic;
      Alcotest.(check int) "program survives" 2 (Program.n_procs p');
      Alcotest.(check int) "layout survives" 12 (Layout.address l' 1))

(* --- Stats / Table odds and ends -------------------------------------------- *)

let test_spearman_with_ties () =
  let xs = [| 1.; 2.; 2.; 3. |] and ys = [| 10.; 20.; 20.; 30. |] in
  Alcotest.(check (float 1e-9)) "perfect with ties" 1. (Stats.spearman xs ys)

let test_table_align_override () =
  let s =
    Table.render
      ~align:[ Table.Right; Table.Left ]
      ~header:[ "n"; "name" ]
      [ [ "1"; "a" ] ]
  in
  Alcotest.(check bool) "renders" true (String.length s > 0)

(* --- Split.origin on unsplit procedures -------------------------------------- *)

let test_split_origin_unsplit () =
  let program = Program.of_sizes [| 256 |] in
  let chunks = Trg_program.Chunk.make ~chunk_size:256 program in
  let s = Split.split program chunks ~chunk_counts:[| 5 |] ~enter_counts:[| 5 |] in
  let orig, hot = Split.origin s 0 in
  Alcotest.(check int) "origin id" 0 orig;
  Alcotest.(check bool) "single part counted hot" true hot

(* --- Simulator trivia ----------------------------------------------------------- *)

let test_sim_empty_trace () =
  let program = Program.of_sizes [| 32 |] in
  let r =
    Sim.simulate program (Layout.default program) Config.default (Trace.of_list [])
  in
  Alcotest.(check int) "no accesses" 0 r.Sim.accesses;
  Alcotest.(check (float 1e-9)) "zero miss rate" 0. (Sim.miss_rate r)

let test_hierarchy_empty_trace () =
  let program = Program.of_sizes [| 32 |] in
  let h =
    Sim.simulate_hierarchy program (Layout.default program)
      ~l1:(Config.make ~size:8192 ~line_size:32 ~assoc:1)
      ~l2:(Config.make ~size:65536 ~line_size:64 ~assoc:4)
      (Trace.of_list [])
  in
  Alcotest.(check (float 1e-9)) "amat zero on empty" 0. h.Sim.amat

let suite =
  [
    Alcotest.test_case "linearize largest-fit first" `Quick test_linearize_largest_fit_first;
    Alcotest.test_case "linearize oversized filler appended" `Quick test_linearize_filler_too_big_appended;
    Alcotest.test_case "linearize no populars" `Quick test_linearize_no_populars;
    Alcotest.test_case "walker round-robin" `Quick test_walker_round_robin_alternates;
    Alcotest.test_case "walker blocked runs" `Quick test_walker_blocked_runs;
    Alcotest.test_case "walker weighted skew" `Quick test_walker_weighted_skews;
    Alcotest.test_case "serial channel roundtrip" `Quick test_serial_channel_roundtrip;
    Alcotest.test_case "spearman with ties" `Quick test_spearman_with_ties;
    Alcotest.test_case "table align override" `Quick test_table_align_override;
    Alcotest.test_case "split origin unsplit" `Quick test_split_origin_unsplit;
    Alcotest.test_case "sim empty trace" `Quick test_sim_empty_trace;
    Alcotest.test_case "hierarchy empty trace" `Quick test_hierarchy_empty_trace;
  ]
