module Program = Trg_program.Program
module Trace = Trg_trace.Trace
module Event = Trg_trace.Event
module Tstats = Trg_trace.Tstats
module Shape = Trg_synth.Shape
module Behavior = Trg_synth.Behavior
module Walker = Trg_synth.Walker
module Gen = Trg_synth.Gen
module Bench = Trg_synth.Bench
module Toy = Trg_synth.Toy

let small = Bench.find "small"

(* --- Behavior validation ------------------------------------------------ *)

let test_behavior_rejects_bad_prob () =
  Alcotest.(check bool) "prob > 1 rejected" true
    (try
       ignore (Behavior.make [| [ Behavior.Call { callee = 0; prob = 1.5 } ] |]);
       false
     with Invalid_argument _ -> true)

let test_behavior_rejects_duplicate_sids () =
  let sel () = Behavior.Select { sid = 0; callees = [| 0 |]; pattern = Behavior.Round_robin } in
  Alcotest.(check bool) "dup sid rejected" true
    (try
       ignore (Behavior.make [| [ sel (); sel () ] |]);
       false
     with Invalid_argument _ -> true)

let test_behavior_rejects_block_overflow () =
  let program = Program.of_sizes [| 64 |] in
  let b = Behavior.make [| [ Behavior.Block { off = 32; len = 64 } ] |] in
  Alcotest.(check bool) "overflow rejected" true
    (try
       Behavior.validate_against program b;
       false
     with Invalid_argument _ -> true)

let test_behavior_static_targets () =
  let b =
    Behavior.make
      [|
        [
          Behavior.Call { callee = 2; prob = 0.5 };
          Behavior.Loop
            {
              lo = 1;
              hi = 2;
              body = [ Behavior.Select { sid = 0; callees = [| 1; 2 |]; pattern = Behavior.Round_robin } ];
            };
        ];
        [];
        [];
      |]
  in
  Alcotest.(check (list int)) "targets" [ 1; 2 ] (Behavior.static_call_targets b 0)

(* --- Shape ---------------------------------------------------------------- *)

let test_shape_hot_count () =
  Alcotest.(check int) "small hot count"
    (1 + 2 + (2 * 3) + (2 * 3 * 3) + 4 + 3)
    (Shape.hot_count small)

let test_shape_validation () =
  Alcotest.(check bool) "structure too big rejected" true
    (try
       Shape.validate { small with Shape.n_procs = 10 };
       false
     with Invalid_argument _ -> true)

(* --- Generator ------------------------------------------------------------ *)

let test_gen_deterministic () =
  let a = Gen.generate small and b = Gen.generate small in
  Alcotest.(check bool) "same sizes" true
    (Array.for_all2
       (fun (p : Trg_program.Proc.t) (q : Trg_program.Proc.t) -> p = q)
       (Program.procs a.Gen.program) (Program.procs b.Gen.program))

let test_gen_counts () =
  let w = Gen.generate small in
  Alcotest.(check int) "procs" small.Shape.n_procs (Program.n_procs w.Gen.program);
  Alcotest.(check int) "drivers" 6 (Array.length w.Gen.roles.Gen.drivers);
  Alcotest.(check int) "workers" 18 (Array.length w.Gen.roles.Gen.workers);
  Alcotest.(check int) "cold fills the rest"
    (small.Shape.n_procs - Shape.hot_count small)
    (Array.length w.Gen.roles.Gen.cold)

let test_gen_total_size_close () =
  let w = Gen.generate small in
  let total = Program.total_size w.Gen.program in
  let target = small.Shape.total_bytes in
  Alcotest.(check bool)
    (Printf.sprintf "total %d within 25%% of %d" total target)
    true
    (float_of_int (abs (total - target)) /. float_of_int target < 0.25)

let test_gen_roles_partition () =
  let w = Gen.generate small in
  let r = w.Gen.roles in
  let all =
    Array.concat
      [ [| r.Gen.main |]; r.Gen.ctrls; r.Gen.drivers; r.Gen.workers; r.Gen.libs; r.Gen.leaves; r.Gen.cold ]
  in
  let sorted = Array.copy all in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "roles partition ids"
    (Array.init small.Shape.n_procs (fun i -> i))
    sorted

let test_gen_main_is_zero () =
  let w = Gen.generate small in
  Alcotest.(check int) "walker entry" 0 w.Gen.roles.Gen.main

(* --- Walker ----------------------------------------------------------------- *)

let test_walker_exact_budget () =
  let w = Gen.generate small in
  let params = { small.Shape.train with Walker.target_events = 5000 } in
  let t = Walker.run w.Gen.program w.Gen.behavior params in
  Alcotest.(check int) "exact length" 5000 (Trace.length t)

let test_walker_deterministic () =
  let w = Gen.generate small in
  let params = { small.Shape.train with Walker.target_events = 2000 } in
  let a = Walker.run w.Gen.program w.Gen.behavior params in
  let b = Walker.run w.Gen.program w.Gen.behavior params in
  Alcotest.(check bool) "same trace" true (Trace.to_list a = Trace.to_list b)

let test_walker_seed_changes_trace () =
  let w = Gen.generate small in
  let params = { small.Shape.train with Walker.target_events = 2000 } in
  let a = Walker.run w.Gen.program w.Gen.behavior params in
  let b =
    Walker.run w.Gen.program w.Gen.behavior { params with Walker.seed = params.Walker.seed + 1 }
  in
  Alcotest.(check bool) "different traces" true (Trace.to_list a <> Trace.to_list b)

let test_walker_starts_with_enter_main () =
  let w = Gen.generate small in
  let params = { small.Shape.train with Walker.target_events = 100 } in
  let t = Walker.run w.Gen.program w.Gen.behavior params in
  let first = Trace.get t 0 in
  Alcotest.(check bool) "enter main first" true
    (first.Event.kind = Event.Enter && first.Event.proc = 0)

let test_walker_events_within_proc_bounds () =
  let w = Gen.generate small in
  let params = { small.Shape.train with Walker.target_events = 20_000 } in
  let t = Walker.run w.Gen.program w.Gen.behavior params in
  Trace.iter
    (fun (e : Event.t) ->
      let size = Program.size w.Gen.program e.Event.proc in
      if e.Event.offset + e.Event.len > size then
        Alcotest.failf "event %d+%d exceeds proc %d size %d" e.Event.offset e.Event.len
          e.Event.proc size)
    t

let test_walker_transition_kinds_consistent () =
  (* An Enter/Resume event's proc differs from the previous event's proc;
     a Run event's proc matches it. *)
  let w = Gen.generate small in
  let params = { small.Shape.train with Walker.target_events = 20_000 } in
  let t = Walker.run w.Gen.program w.Gen.behavior params in
  let prev = ref (-1) in
  Trace.iter
    (fun (e : Event.t) ->
      (match e.Event.kind with
      | Event.Run ->
        if !prev >= 0 && e.Event.proc <> !prev then
          Alcotest.failf "Run event switched proc %d -> %d" !prev e.Event.proc
      | Event.Enter | Event.Resume -> ());
      prev := e.Event.proc)
    t

let test_walker_hot_procs_dominate () =
  let w = Gen.generate small in
  let t = Gen.train_trace w in
  let stats = Tstats.compute ~n_procs:(Program.n_procs w.Gen.program) t in
  let refs_of ids = Array.fold_left (fun acc p -> acc + stats.Tstats.ref_counts.(p)) 0 ids in
  let hot =
    refs_of w.Gen.roles.Gen.workers + refs_of w.Gen.roles.Gen.drivers
    + refs_of w.Gen.roles.Gen.libs + refs_of w.Gen.roles.Gen.leaves
  in
  let cold = refs_of w.Gen.roles.Gen.cold in
  Alcotest.(check bool)
    (Printf.sprintf "hot %d >> cold %d" hot cold)
    true
    (hot > 20 * cold);
  Alcotest.(check bool) "cold code still executes" true (cold > 0)

let test_walker_loop_scale_lengthens_dwell () =
  let w = Gen.generate small in
  let base = { small.Shape.train with Walker.target_events = 50_000 } in
  let scaled = { base with Walker.loop_scale = 2.0; Walker.seed = base.Walker.seed } in
  let t1 = Walker.run w.Gen.program w.Gen.behavior base in
  let t2 = Walker.run w.Gen.program w.Gen.behavior scaled in
  let s1 = Tstats.compute ~n_procs:(Program.n_procs w.Gen.program) t1 in
  let s2 = Tstats.compute ~n_procs:(Program.n_procs w.Gen.program) t2 in
  (* Longer loops at equal event budget mean fewer transitions. *)
  Alcotest.(check bool) "fewer transitions when scaled" true
    (s2.Tstats.n_transitions < s1.Tstats.n_transitions)

(* --- Bench shapes ------------------------------------------------------------ *)

let test_bench_six_benchmarks () =
  Alcotest.(check (list string)) "names"
    [ "gcc"; "go"; "ghostscript"; "m88ksim"; "perl"; "vortex" ]
    Bench.names

let test_bench_shapes_valid () =
  List.iter (fun s -> Shape.validate s) Bench.all

let test_bench_hot_counts_match_table1 () =
  (* Structural hot counts approximate Table 1's popular counts. *)
  List.iter2
    (fun shape expected ->
      Alcotest.(check int)
        (Printf.sprintf "%s hot count" shape.Shape.name)
        expected (Shape.hot_count shape))
    Bench.all [ 136; 112; 216; 31; 36; 156 ]

let test_bench_find_unknown () =
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Bench.find "xlisp");
       false
     with Not_found -> true)

(* --- Toy -------------------------------------------------------------------- *)

let test_toy_program_shape () =
  Alcotest.(check int) "4 procs" 4 (Program.n_procs Toy.program);
  Alcotest.(check int) "3 lines" 3 (Trg_cache.Config.n_lines Toy.cache)

let test_toy_trace_lengths () =
  (* 1 + 4 events per iteration. *)
  Alcotest.(check int) "alternating" 321 (Trace.length (Toy.trace_alternating ()));
  Alcotest.(check int) "blocked" 321 (Trace.length (Toy.trace_blocked ()))

let test_toy_call_balance () =
  let stats = Tstats.compute ~n_procs:4 (Toy.trace_blocked ()) in
  Alcotest.(check int) "X entered 40x" 40 stats.Tstats.enter_counts.(Toy.x);
  Alcotest.(check int) "Y entered 40x" 40 stats.Tstats.enter_counts.(Toy.y);
  Alcotest.(check int) "Z entered 80x" 80 stats.Tstats.enter_counts.(Toy.z)

let suite =
  [
    Alcotest.test_case "behavior rejects bad prob" `Quick test_behavior_rejects_bad_prob;
    Alcotest.test_case "behavior rejects dup sids" `Quick test_behavior_rejects_duplicate_sids;
    Alcotest.test_case "behavior rejects block overflow" `Quick test_behavior_rejects_block_overflow;
    Alcotest.test_case "behavior static targets" `Quick test_behavior_static_targets;
    Alcotest.test_case "shape hot count" `Quick test_shape_hot_count;
    Alcotest.test_case "shape validation" `Quick test_shape_validation;
    Alcotest.test_case "gen deterministic" `Quick test_gen_deterministic;
    Alcotest.test_case "gen counts" `Quick test_gen_counts;
    Alcotest.test_case "gen total size close" `Quick test_gen_total_size_close;
    Alcotest.test_case "gen roles partition" `Quick test_gen_roles_partition;
    Alcotest.test_case "gen main is zero" `Quick test_gen_main_is_zero;
    Alcotest.test_case "walker exact budget" `Quick test_walker_exact_budget;
    Alcotest.test_case "walker deterministic" `Quick test_walker_deterministic;
    Alcotest.test_case "walker seed changes trace" `Quick test_walker_seed_changes_trace;
    Alcotest.test_case "walker enters main first" `Quick test_walker_starts_with_enter_main;
    Alcotest.test_case "walker events in bounds" `Quick test_walker_events_within_proc_bounds;
    Alcotest.test_case "walker transition kinds" `Quick test_walker_transition_kinds_consistent;
    Alcotest.test_case "walker hot procs dominate" `Quick test_walker_hot_procs_dominate;
    Alcotest.test_case "walker loop_scale dwell" `Quick test_walker_loop_scale_lengthens_dwell;
    Alcotest.test_case "bench six benchmarks" `Quick test_bench_six_benchmarks;
    Alcotest.test_case "bench shapes valid" `Quick test_bench_shapes_valid;
    Alcotest.test_case "bench hot counts (Table 1)" `Quick test_bench_hot_counts_match_table1;
    Alcotest.test_case "bench find unknown" `Quick test_bench_find_unknown;
    Alcotest.test_case "toy program shape" `Quick test_toy_program_shape;
    Alcotest.test_case "toy trace lengths" `Quick test_toy_trace_lengths;
    Alcotest.test_case "toy call balance" `Quick test_toy_call_balance;
  ]
