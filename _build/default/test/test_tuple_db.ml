module Tuple_db = Trg_profile.Tuple_db
module Perturb = Trg_profile.Perturb
module Cost = Trg_place.Cost
module Node = Trg_place.Node
module Program = Trg_program.Program
module Chunk = Trg_program.Chunk
module Prng = Trg_util.Prng

let build ~arity ?max_between refs =
  Tuple_db.build_stream ~arity ~capacity_bytes:65536 ~size_of:(fun _ -> 32)
    ?max_between (fun emit -> List.iter emit refs)

let test_arity_validation () =
  Alcotest.(check bool) "zero arity rejected" true
    (try
       ignore (Tuple_db.create ~arity:0);
       false
     with Invalid_argument _ -> true)

let test_add_and_count () =
  let db = Tuple_db.create ~arity:3 in
  Tuple_db.add db ~p:9 ~ids:[ 3; 1; 2 ] 2.;
  Tuple_db.add db ~p:9 ~ids:[ 2; 3; 1 ] 1.;
  Alcotest.(check (float 1e-9)) "accumulated, unordered" 3.
    (Tuple_db.count db ~p:9 ~ids:[ 1; 2; 3 ]);
  Alcotest.(check (float 1e-9)) "absent" 0. (Tuple_db.count db ~p:9 ~ids:[ 1; 2; 4 ])

let test_add_validation () =
  let db = Tuple_db.create ~arity:2 in
  let bad f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "wrong size" true (bad (fun () -> Tuple_db.add db ~p:1 ~ids:[ 2 ] 1.));
  Alcotest.(check bool) "duplicate ids" true
    (bad (fun () -> Tuple_db.add db ~p:1 ~ids:[ 2; 2 ] 1.));
  Alcotest.(check bool) "member equals p" true
    (bad (fun () -> Tuple_db.add db ~p:1 ~ids:[ 1; 2 ] 1.))

let test_build_arity2_matches_pair_db () =
  (* On the same stream, the arity-2 tuple database and Pair_db agree. *)
  let refs = [ 1; 2; 3; 4; 1; 3; 2; 1 ] in
  let tuples = (build ~arity:2 ~max_between:64 refs).Tuple_db.db in
  let pairs =
    (Trg_profile.Pair_db.build_stream ~capacity_bytes:65536
       ~size_of:(fun _ -> 32) ~max_between:64 (fun emit -> List.iter emit refs))
      .Trg_profile.Pair_db.db
  in
  Alcotest.(check int) "same entry count" (Trg_profile.Pair_db.n_entries pairs)
    (Tuple_db.n_entries tuples);
  Trg_profile.Pair_db.iter pairs (fun p r s w ->
      Alcotest.(check (float 1e-9)) "same weight" w
        (Tuple_db.count tuples ~p ~ids:[ r; s ]))

let test_build_arity3 () =
  (* 1 [2 3 4 5] 1: C(4,3) = 4 triples recorded for p=1. *)
  let b = build ~arity:3 [ 1; 2; 3; 4; 5; 1 ] in
  Alcotest.(check int) "four triples" 4 (Tuple_db.n_entries b.Tuple_db.db);
  Alcotest.(check (float 1e-9)) "one of them" 1.
    (Tuple_db.count b.Tuple_db.db ~p:1 ~ids:[ 2; 3; 4 ])

let test_build_insufficient_interveners () =
  (* Two interveners cannot form a triple. *)
  let b = build ~arity:3 [ 1; 2; 3; 1 ] in
  Alcotest.(check int) "no triples" 0 (Tuple_db.n_entries b.Tuple_db.db)

let test_max_between_truncates () =
  let full = build ~arity:2 ~max_between:64 [ 1; 2; 3; 4; 5; 1 ] in
  let cut = build ~arity:2 ~max_between:2 [ 1; 2; 3; 4; 5; 1 ] in
  Alcotest.(check int) "C(4,2)=6" 6 (Tuple_db.n_entries full.Tuple_db.db);
  Alcotest.(check int) "C(2,2)=1" 1 (Tuple_db.n_entries cut.Tuple_db.db);
  Alcotest.(check (float 1e-9)) "keeps the most recent" 1.
    (Tuple_db.count cut.Tuple_db.db ~p:1 ~ids:[ 4; 5 ])

let test_perturb_tuple_db () =
  let db = Tuple_db.create ~arity:3 in
  Tuple_db.add db ~p:1 ~ids:[ 2; 3; 4 ] 10.;
  let db' = Perturb.tuple_db (Prng.create 3) ~s:0.1 db in
  let w = Tuple_db.count db' ~p:1 ~ids:[ 2; 3; 4 ] in
  Alcotest.(check bool) "perturbed" true (w > 0. && w <> 10.);
  let same = Perturb.tuple_db (Prng.create 3) ~s:0. db in
  Alcotest.(check (float 1e-9)) "s=0 identity" 10.
    (Tuple_db.count same ~p:1 ~ids:[ 2; 3; 4 ])

(* Cost model: three single-chunk procs in n1 at set 0, one proc in n2.
   D(p3, {p0, p1, p2}) charges exactly the offset aligning p3 with them. *)
let test_cost_sa_tuples () =
  let program = Program.of_sizes [| 32; 32; 32; 32 |] in
  let chunks = Chunk.make ~chunk_size:256 program in
  let db = Tuple_db.create ~arity:3 in
  Tuple_db.add db ~p:3 ~ids:[ 0; 1; 2 ] 7.;
  let n1 =
    Node.union ~shift:0 ~modulo:4
      (Node.union ~shift:0 ~modulo:4 (Node.singleton 0) (Node.singleton 1))
      (Node.singleton 2)
  in
  let cost =
    Cost.offsets_cost (Cost.Sa_tuples { chunks; db }) program ~line_size:32
      ~n_sets:4 ~n1 ~n2:(Node.singleton 3)
  in
  Alcotest.(check (float 1e-9)) "offset 0 charged" 7. cost.(0);
  Alcotest.(check (float 1e-9)) "offset 1 free" 0. cost.(1);
  (* If one tuple member moves to a different set, no offset is charged. *)
  let n1' =
    Node.union ~shift:1 ~modulo:4
      (Node.union ~shift:0 ~modulo:4 (Node.singleton 0) (Node.singleton 1))
      (Node.singleton 2)
  in
  let cost' =
    Cost.offsets_cost (Cost.Sa_tuples { chunks; db }) program ~line_size:32
      ~n_sets:4 ~n1:n1' ~n2:(Node.singleton 3)
  in
  Alcotest.(check (float 1e-9)) "split tuple never charged" 0.
    (Array.fold_left ( +. ) 0. cost')

let test_cost_blend_normalises () =
  let program = Program.of_sizes [| 32; 32 |] in
  let chunks = Chunk.make ~chunk_size:256 program in
  let trg = Trg_profile.Graph.of_edges [ (0, 1, 1000.) ] in
  let model =
    Cost.Blend [ (Cost.Trg_chunks { chunks; trg }, 1.0) ]
  in
  let cost =
    Cost.offsets_cost model program ~line_size:32 ~n_sets:4 ~n1:(Node.singleton 0)
      ~n2:(Node.singleton 1)
  in
  (* Normalised: total mass 1 regardless of the edge weight. *)
  Alcotest.(check (float 1e-9)) "unit mass" 1. (Array.fold_left ( +. ) 0. cost);
  Alcotest.(check bool) "conflict only at offset 0" true
    (cost.(0) = 1. && cost.(1) = 0.)

let test_run_tuples_places_everything () =
  let program = Program.of_sizes [| 64; 64; 64; 64 |] in
  let cache = Trg_cache.Config.make ~size:256 ~line_size:32 ~assoc:2 in
  let config =
    { (Trg_place.Gbsc.default_config ~cache ()) with
      Trg_place.Gbsc.chunk_size = 32;
      min_refs = 1 }
  in
  let ev p = Trg_trace.Event.make ~kind:Trg_trace.Event.Enter ~proc:p ~offset:0 ~len:64 in
  let trace = Trg_trace.Trace.of_list (List.concat (List.init 30 (fun _ -> [ ev 0; ev 1; ev 2; ev 3 ]))) in
  let layout = Trg_place.Gbsc_sa.run_tuples config program trace in
  Alcotest.(check int) "all procs placed" 4
    (Array.length (Trg_program.Layout.order layout))

let suite =
  [
    Alcotest.test_case "arity validation" `Quick test_arity_validation;
    Alcotest.test_case "add and count" `Quick test_add_and_count;
    Alcotest.test_case "add validation" `Quick test_add_validation;
    Alcotest.test_case "arity-2 matches pair db" `Quick test_build_arity2_matches_pair_db;
    Alcotest.test_case "arity-3 build" `Quick test_build_arity3;
    Alcotest.test_case "insufficient interveners" `Quick test_build_insufficient_interveners;
    Alcotest.test_case "max_between truncates" `Quick test_max_between_truncates;
    Alcotest.test_case "perturb tuple db" `Quick test_perturb_tuple_db;
    Alcotest.test_case "cost Sa_tuples" `Quick test_cost_sa_tuples;
    Alcotest.test_case "cost Blend normalises" `Quick test_cost_blend_normalises;
    Alcotest.test_case "run_tuples end to end" `Quick test_run_tuples_places_everything;
  ]
