module Graph = Trg_profile.Graph

let test_add_and_weight () =
  let g = Graph.create () in
  Graph.add_edge g 1 2 3.;
  Graph.add_edge g 2 1 2.;
  Alcotest.(check (float 1e-9)) "accumulated" 5. (Graph.weight g 1 2);
  Alcotest.(check (float 1e-9)) "symmetric" 5. (Graph.weight g 2 1);
  Alcotest.(check (float 1e-9)) "absent" 0. (Graph.weight g 1 3)

let test_self_edge_ignored () =
  let g = Graph.create () in
  Graph.add_edge g 4 4 10.;
  Alcotest.(check int) "no edge" 0 (Graph.n_edges g);
  Alcotest.(check (float 1e-9)) "zero" 0. (Graph.weight g 4 4)

let test_set_edge () =
  let g = Graph.create () in
  Graph.set_edge g 1 2 3.;
  Graph.set_edge g 1 2 7.;
  Alcotest.(check (float 1e-9)) "overwritten" 7. (Graph.weight g 1 2)

let test_neighbors_no_duplicates () =
  let g = Graph.create () in
  Graph.add_edge g 1 2 1.;
  Graph.add_edge g 1 2 1.;
  Graph.add_edge g 1 3 1.;
  let n = List.sort compare (Graph.neighbors g 1) in
  Alcotest.(check (list int)) "neighbors" [ 2; 3 ] n;
  Alcotest.(check int) "degree" 2 (Graph.degree g 1);
  Alcotest.(check (list int)) "isolated" [] (Graph.neighbors g 9)

let test_nodes_edges () =
  let g = Graph.of_edges [ (1, 2, 1.); (3, 2, 2.); (5, 1, 4.) ] in
  Alcotest.(check (list int)) "nodes" [ 1; 2; 3; 5 ] (Graph.nodes g);
  Alcotest.(check int) "n_nodes" 4 (Graph.n_nodes g);
  Alcotest.(check int) "n_edges" 3 (Graph.n_edges g);
  Alcotest.(check (float 1e-9)) "total weight" 7. (Graph.total_weight g);
  let edges = Graph.edges g in
  Alcotest.(check bool) "canonical sorted" true
    (edges = [| (1, 2, 1.); (1, 5, 4.); (2, 3, 2.) |])

let test_mem_edge () =
  let g = Graph.of_edges [ (1, 2, 1.) ] in
  Alcotest.(check bool) "present" true (Graph.mem_edge g 2 1);
  Alcotest.(check bool) "absent" false (Graph.mem_edge g 1 3)

let test_copy_independent () =
  let g = Graph.of_edges [ (1, 2, 1.) ] in
  let g' = Graph.copy g in
  Graph.add_edge g' 1 2 5.;
  Graph.add_edge g' 7 8 1.;
  Alcotest.(check (float 1e-9)) "original intact" 1. (Graph.weight g 1 2);
  Alcotest.(check int) "original edges" 1 (Graph.n_edges g);
  Alcotest.(check (float 1e-9)) "copy updated" 6. (Graph.weight g' 1 2)

let test_map_weights () =
  let g = Graph.of_edges [ (1, 2, 2.); (2, 3, 3.) ] in
  let doubled = Graph.map_weights (fun _ _ w -> 2. *. w) g in
  Alcotest.(check (float 1e-9)) "doubled" 4. (Graph.weight doubled 1 2);
  Alcotest.(check (float 1e-9)) "doubled" 6. (Graph.weight doubled 2 3);
  Alcotest.(check (float 1e-9)) "original" 2. (Graph.weight g 1 2)

let test_filter_nodes () =
  let g = Graph.of_edges [ (1, 2, 1.); (2, 3, 2.); (3, 4, 3.) ] in
  let sub = Graph.filter_nodes (fun n -> n <> 3) g in
  Alcotest.(check int) "only 1-2 survives" 1 (Graph.n_edges sub);
  Alcotest.(check (float 1e-9)) "kept" 1. (Graph.weight sub 1 2)

let test_id_range_check () =
  let g = Graph.create () in
  Alcotest.(check bool) "negative id rejected" true
    (try
       Graph.add_edge g (-1) 2 1.;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "huge id rejected" true
    (try
       Graph.add_edge g 0 Graph.max_id 1.;
       false
     with Invalid_argument _ -> true)

let prop_weight_symmetric =
  QCheck.Test.make ~name:"graph weight symmetric" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 40) (triple (int_range 0 20) (int_range 0 20) (float_range 0.1 10.)))
    (fun edges ->
      let g = Graph.create () in
      List.iter (fun (u, v, w) -> Graph.add_edge g u v w) edges;
      List.for_all (fun (u, v, _) -> Graph.weight g u v = Graph.weight g v u) edges)

let suite =
  [
    Alcotest.test_case "add and weight" `Quick test_add_and_weight;
    Alcotest.test_case "self edge ignored" `Quick test_self_edge_ignored;
    Alcotest.test_case "set_edge" `Quick test_set_edge;
    Alcotest.test_case "neighbors no duplicates" `Quick test_neighbors_no_duplicates;
    Alcotest.test_case "nodes and edges" `Quick test_nodes_edges;
    Alcotest.test_case "mem_edge" `Quick test_mem_edge;
    Alcotest.test_case "copy independent" `Quick test_copy_independent;
    Alcotest.test_case "map_weights" `Quick test_map_weights;
    Alcotest.test_case "filter_nodes" `Quick test_filter_nodes;
    Alcotest.test_case "id range check" `Quick test_id_range_check;
    QCheck_alcotest.to_alcotest prop_weight_symmetric;
  ]
