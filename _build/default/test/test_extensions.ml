(* Tests for the extension features: serialization, procedure splitting,
   page-fault simulation, ASCII plotting, packed tie-breaking, chunk
   counts, affinity-aware linearisation, and the extension experiments. *)

module Program = Trg_program.Program
module Proc = Trg_program.Proc
module Chunk = Trg_program.Chunk
module Layout = Trg_program.Layout
module Serial = Trg_program.Serial
module Event = Trg_trace.Event
module Trace = Trg_trace.Trace
module Config = Trg_cache.Config
module Sim = Trg_cache.Sim
module Graph = Trg_profile.Graph
module Chunk_counts = Trg_profile.Chunk_counts
module Cost = Trg_place.Cost
module Node = Trg_place.Node
module Split = Trg_place.Split
module Gbsc = Trg_place.Gbsc
module Linearize = Trg_place.Linearize
module Plot = Trg_util.Plot
module Bench = Trg_synth.Bench

let ev ?(kind = Event.Run) proc offset len = Event.make ~kind ~proc ~offset ~len

(* --- Serial ------------------------------------------------------------- *)

let sample_program =
  Program.make
    [|
      Proc.make ~id:0 ~name:"main" ~size:100;
      Proc.make ~id:1 ~name:"helper one" ~size:64;
      Proc.make ~id:2 ~name:"z" ~size:4096;
    |]

let test_serial_program_roundtrip () =
  let path = Filename.temp_file "trgplace" ".prog" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serial.save_program path sample_program;
      let p = Serial.load_program path in
      Alcotest.(check int) "count" 3 (Program.n_procs p);
      Alcotest.(check string) "name with space" "helper one" (Program.name p 1);
      Alcotest.(check int) "size" 4096 (Program.size p 2))

let test_serial_layout_roundtrip () =
  let layout = Layout.of_addresses sample_program [| 0; 4200; 104 |] in
  let path = Filename.temp_file "trgplace" ".layout" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serial.save_layout path layout;
      let l = Serial.load_layout sample_program path in
      Alcotest.(check (array int)) "addresses" (Layout.addresses layout)
        (Layout.addresses l))

let test_serial_layout_program_mismatch () =
  let layout = Layout.of_addresses sample_program [| 0; 4200; 104 |] in
  let path = Filename.temp_file "trgplace" ".layout" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serial.save_layout path layout;
      let other = Program.of_sizes [| 10; 10 |] in
      Alcotest.(check bool) "mismatch rejected" true
        (try
           ignore (Serial.load_layout other path);
           false
         with Failure _ -> true))

let test_serial_rejects_garbage () =
  let path = Filename.temp_file "trgplace" ".prog" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "hello\n";
      close_out oc;
      Alcotest.(check bool) "garbage rejected" true
        (try
           ignore (Serial.load_program path);
           false
         with Failure _ -> true))

(* --- Chunk_counts -------------------------------------------------------- *)

let test_chunk_counts () =
  let program = Program.of_sizes [| 512; 256 |] in
  let chunks = Chunk.make ~chunk_size:256 program in
  let trace =
    Trace.of_list [ ev 0 0 64; ev 0 300 10; ev 0 0 300; ev 1 0 256 ]
  in
  let counts = Chunk_counts.compute chunks trace in
  Alcotest.(check int) "chunk0 of p0" 2 counts.(0);
  Alcotest.(check int) "chunk1 of p0" 2 counts.(1);
  Alcotest.(check int) "chunk of p1" 1 counts.(2)

(* --- Split ----------------------------------------------------------------- *)

(* Procedure 0: 512 bytes, hot first chunk, cold second chunk.
   Procedure 1: 256 bytes, all hot.  Trace enters p0 often but touches its
   second chunk only once. *)
let split_fixture () =
  let program = Program.of_sizes [| 512; 256 |] in
  let chunks = Chunk.make ~chunk_size:256 program in
  let events =
    List.concat
      (List.init 50 (fun i ->
           [ ev ~kind:Event.Enter 0 0 64; ev ~kind:Event.Enter 1 0 64 ]
           @ (if i = 0 then [ ev 1 64 32 ] else [])))
    @ [ ev ~kind:Event.Enter 0 0 64; ev 0 256 64 ]
  in
  let trace = Trace.of_list events in
  let chunk_counts = Chunk_counts.compute chunks trace in
  let enter_counts = [| 51; 50 |] in
  (program, chunks, trace, chunk_counts, enter_counts)

let test_split_detects_cold_chunk () =
  let program, chunks, _, chunk_counts, enter_counts = split_fixture () in
  let s = Split.split ~cold_fraction:0.2 program chunks ~chunk_counts ~enter_counts in
  Alcotest.(check int) "one proc split" 1 (Split.n_split s);
  Alcotest.(check int) "256 cold bytes" 256 (Split.cold_bytes s);
  let sp = Split.program s in
  Alcotest.(check int) "three procs now" 3 (Program.n_procs sp);
  Alcotest.(check (option int)) "cold part named" (Some 1)
    (Program.find_by_name sp "p0.cold");
  (* Hot part is 256 bytes, cold part 256 bytes, p1 unchanged. *)
  let hot = Option.get (Program.find_by_name sp "p0") in
  Alcotest.(check int) "hot size" 256 (Program.size sp hot);
  let orig, is_hot = Split.origin s hot in
  Alcotest.(check int) "hot origin" 0 orig;
  Alcotest.(check bool) "hot flag" true is_hot

let test_split_no_split_when_uniform () =
  let program, chunks, _, _, _ = split_fixture () in
  let chunk_counts = [| 100; 100; 100 |] in
  let s = Split.split program chunks ~chunk_counts ~enter_counts:[| 100; 100 |] in
  Alcotest.(check int) "nothing split" 0 (Split.n_split s);
  Alcotest.(check int) "same proc count" 2 (Program.n_procs (Split.program s))

let test_split_remap_preserves_bytes () =
  let program, chunks, trace, chunk_counts, enter_counts = split_fixture () in
  let s = Split.split ~cold_fraction:0.2 program chunks ~chunk_counts ~enter_counts in
  let remapped = Split.remap_trace s trace in
  let bytes t = Trace.fold (fun acc (e : Event.t) -> acc + e.len) 0 t in
  Alcotest.(check int) "same bytes executed" (bytes trace) (bytes remapped);
  (* Every remapped event stays within its (new) procedure. *)
  let sp = Split.program s in
  Trace.iter
    (fun (e : Event.t) ->
      if e.offset + e.len > Program.size sp e.proc then
        Alcotest.failf "event out of bounds after remap")
    remapped

let test_split_remap_cuts_at_boundary () =
  let program, chunks, _, chunk_counts, enter_counts = split_fixture () in
  let s = Split.split ~cold_fraction:0.2 program chunks ~chunk_counts ~enter_counts in
  (* A run crossing the hot/cold boundary of p0 must split in two. *)
  let crossing = Trace.of_list [ ev ~kind:Event.Enter 0 200 112 ] in
  let remapped = Split.remap_trace s crossing in
  Alcotest.(check int) "two pieces" 2 (Trace.length remapped);
  let a = Trace.get remapped 0 and b = Trace.get remapped 1 in
  Alcotest.(check bool) "different parts" true (a.Event.proc <> b.Event.proc);
  Alcotest.(check int) "bytes preserved" 112 (a.Event.len + b.Event.len);
  Alcotest.(check bool) "second piece enters the cold part" true
    (b.Event.kind = Event.Enter)

(* --- Sim.paging -------------------------------------------------------------- *)

let page_program = Program.of_sizes [| 4096; 4096; 4096 |]

let page_trace procs = Trace.of_list (List.map (fun p -> ev ~kind:Event.Enter p 0 32) procs)

let test_paging_basic () =
  let layout = Layout.default page_program in
  let r =
    Sim.paging page_program layout ~page_size:4096 ~frames:2
      (page_trace [ 0; 1; 0; 1 ])
  in
  Alcotest.(check int) "2 faults" 2 r.Sim.page_faults;
  Alcotest.(check int) "2 pages" 2 r.Sim.pages_touched;
  Alcotest.(check int) "4 accesses" 4 r.Sim.page_accesses

let test_paging_lru_eviction () =
  let layout = Layout.default page_program in
  (* frames=2: 0 1 2 0 -> 0 evicted by 2, so the last 0 faults again. *)
  let r =
    Sim.paging page_program layout ~page_size:4096 ~frames:2
      (page_trace [ 0; 1; 2; 0 ])
  in
  Alcotest.(check int) "4 faults" 4 r.Sim.page_faults;
  (* 0 1 0 2 0: 2 evicts 1 (LRU), 0 stays resident. *)
  let r2 =
    Sim.paging page_program layout ~page_size:4096 ~frames:2
      (page_trace [ 0; 1; 0; 2; 0 ])
  in
  Alcotest.(check int) "3 faults" 3 r2.Sim.page_faults

let test_paging_spanning_event () =
  let program = Program.of_sizes [| 8192 |] in
  let layout = Layout.default program in
  let trace = Trace.of_list [ ev 0 4000 200 ] in
  let r = Sim.paging program layout ~page_size:4096 ~frames:4 trace in
  Alcotest.(check int) "two pages touched" 2 r.Sim.pages_touched

(* --- Plot ------------------------------------------------------------------- *)

let test_plot_cdf_renders () =
  let s = Plot.cdf [ ("a", [| 1.; 2.; 3. |]); ("b", [| 2.; 3.; 4. |]) ] in
  Alcotest.(check bool) "non-empty" true (String.length s > 200);
  Alcotest.(check bool) "mentions legend a" true
    (String.length s > 0 && String.index_opt s '*' <> None)

let test_plot_cdf_left_dominance () =
  (* A series of strictly smaller values must produce marks in columns to
     the left of the other series' first mark at the top row. *)
  let s = Plot.cdf ~width:40 ~height:10 [ ("lo", [| 1.; 1.1 |]); ("hi", [| 9.; 9.1 |]) ] in
  let first_line = List.hd (String.split_on_char '\n' s) in
  let lo_pos = String.index_opt first_line '*' in
  let hi_pos = String.index_opt first_line '+' in
  match (lo_pos, hi_pos) with
  | Some l, Some h -> Alcotest.(check bool) "lo left of hi" true (l < h)
  | _ -> Alcotest.fail "both series should reach the top row"

let test_plot_scatter_renders () =
  let s = Plot.scatter [ ("pts", [| (1., 1.); (2., 4.); (3., 9.) |]) ] in
  Alcotest.(check bool) "non-empty" true (String.length s > 100)

let test_plot_rejects_empty () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Plot.cdf []);
       false
     with Invalid_argument _ -> true)

(* --- Packed tie-breaking ------------------------------------------------------ *)

let test_node_occupancy () =
  let program = Program.of_sizes [| 64; 32 |] in
  let node = Node.union ~shift:3 ~modulo:8 (Node.singleton 0) (Node.singleton 1) in
  let occ = Cost.node_occupancy program ~line_size:32 ~n_sets:8 node in
  Alcotest.(check (array bool)) "sets 0,1 (p0) and 3 (p1)"
    [| true; true; false; true; false; false; false; false |]
    occ

let test_best_offset_packed_prefers_empty () =
  let cost = Array.make 8 0. in
  let n1 = [| true; true; false; false; false; false; false; false |] in
  let n2 = [| true; false; false; false; false; false; false; false |] in
  (* All offsets cost 0; offsets 0 and 1 overlap n1's occupancy. *)
  Alcotest.(check int) "first non-overlapping" 2 (Cost.best_offset_packed cost ~n1 ~n2)

let test_best_offset_packed_cost_still_primary () =
  let cost = [| 0.; 5.; 0.; 0. |] in
  let n1 = [| true; false; false; false |] in
  let n2 = [| true; false; false; false |] in
  (* Offset 1 has positive cost; among 0-cost offsets, 0 overlaps. *)
  Alcotest.(check int) "cheapest non-overlap" 2 (Cost.best_offset_packed cost ~n1 ~n2)

(* --- Affinity-aware linearisation --------------------------------------------- *)

let test_linearize_affinity_orders_ties () =
  let program = Program.of_sizes [| 32; 32; 32 |] in
  (* Procs 1 and 2 both want set 1 (a tie after placing 0); affinity makes
     proc 2 win despite its larger id. *)
  let affinity p q = if p = 0 && q = 2 then 10. else 0. in
  let layout =
    Linearize.layout ~affinity program ~line_size:32 ~n_sets:8
      ~placed:[ (0, 0); (1, 1); (2, 1) ]
      ~filler:[||]
  in
  Alcotest.(check bool) "affine proc first" true
    (Layout.address layout 2 < Layout.address layout 1);
  (* Without affinity the smaller id wins. *)
  let plain =
    Linearize.layout program ~line_size:32 ~n_sets:8
      ~placed:[ (0, 0); (1, 1); (2, 1) ]
      ~filler:[||]
  in
  Alcotest.(check bool) "id order without affinity" true
    (Layout.address plain 1 < Layout.address plain 2)

let test_place_paged_same_alignments () =
  let r = Trg_eval.Runner.prepare (Bench.find "small") in
  let program = Trg_eval.Runner.program r in
  let a = Trg_eval.Runner.gbsc_layout r in
  let b = Gbsc.place_paged program r.Trg_eval.Runner.prof in
  let n_sets = 256 in
  (* Popular procedures keep their cache sets in both variants. *)
  let pop = r.Trg_eval.Runner.prof.Gbsc.popularity.Trg_profile.Popularity.ranked in
  Array.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "proc %d same set" p)
        (Layout.address a p / 32 mod n_sets)
        (Layout.address b p / 32 mod n_sets))
    pop

(* --- Extension experiments (smoke level) -------------------------------------- *)

let runner = lazy (Trg_eval.Runner.prepare (Bench.find "small"))

let test_sweep_runs () =
  let res = Trg_eval.Sweep.run ~sizes:[ 4096; 8192 ] (Bench.find "small") in
  Alcotest.(check int) "two rows" 2 (List.length res.Trg_eval.Sweep.rows);
  List.iter
    (fun row ->
      Alcotest.(check bool) "gbsc <= default" true
        (row.Trg_eval.Sweep.gbsc_mr <= row.Trg_eval.Sweep.default_mr))
    res.Trg_eval.Sweep.rows

let test_splitting_runs () =
  let res = Trg_eval.Splitting.run ~cold_fractions:[ 0.05 ] (Lazy.force runner) in
  match res.Trg_eval.Splitting.variants with
  | [ v ] ->
    Alcotest.(check bool) "split + GBSC no worse than default" true
      (v.Trg_eval.Splitting.gbsc_split_mr < res.Trg_eval.Splitting.default_mr)
  | _ -> Alcotest.fail "expected one variant"

let test_paging_experiment_runs () =
  let res = Trg_eval.Paging.run ~tight_frames:8 (Lazy.force runner) in
  Alcotest.(check int) "three rows" 3 (List.length res.Trg_eval.Paging.rows);
  let default = List.nth res.Trg_eval.Paging.rows 0 in
  let gbsc = List.nth res.Trg_eval.Paging.rows 1 in
  Alcotest.(check bool) "GBSC pages <= default pages" true
    (gbsc.Trg_eval.Paging.pages_touched <= default.Trg_eval.Paging.pages_touched)

let test_sampling_experiment_runs () =
  let res = Trg_eval.Sampling.run ~window:10_000 ~factors:[ 2 ] (Lazy.force runner) in
  match res.Trg_eval.Sampling.rows with
  | [ row ] ->
    Alcotest.(check bool) "half trace beats default" true
      (row.Trg_eval.Sampling.miss_rate < res.Trg_eval.Sampling.default_mr);
    Alcotest.(check bool) "used about half" true
      (abs (row.Trg_eval.Sampling.events_used - 100_000) < 20_000)
  | _ -> Alcotest.fail "expected one row"

let suite =
  [
    Alcotest.test_case "serial program roundtrip" `Quick test_serial_program_roundtrip;
    Alcotest.test_case "serial layout roundtrip" `Quick test_serial_layout_roundtrip;
    Alcotest.test_case "serial layout mismatch" `Quick test_serial_layout_program_mismatch;
    Alcotest.test_case "serial rejects garbage" `Quick test_serial_rejects_garbage;
    Alcotest.test_case "chunk counts" `Quick test_chunk_counts;
    Alcotest.test_case "split detects cold chunk" `Quick test_split_detects_cold_chunk;
    Alcotest.test_case "split skips uniform procs" `Quick test_split_no_split_when_uniform;
    Alcotest.test_case "split remap preserves bytes" `Quick test_split_remap_preserves_bytes;
    Alcotest.test_case "split remap cuts at boundary" `Quick test_split_remap_cuts_at_boundary;
    Alcotest.test_case "paging basic" `Quick test_paging_basic;
    Alcotest.test_case "paging LRU eviction" `Quick test_paging_lru_eviction;
    Alcotest.test_case "paging spanning event" `Quick test_paging_spanning_event;
    Alcotest.test_case "plot cdf renders" `Quick test_plot_cdf_renders;
    Alcotest.test_case "plot cdf left dominance" `Quick test_plot_cdf_left_dominance;
    Alcotest.test_case "plot scatter renders" `Quick test_plot_scatter_renders;
    Alcotest.test_case "plot rejects empty" `Quick test_plot_rejects_empty;
    Alcotest.test_case "node occupancy" `Quick test_node_occupancy;
    Alcotest.test_case "packed offset prefers empty" `Quick test_best_offset_packed_prefers_empty;
    Alcotest.test_case "packed offset cost primary" `Quick test_best_offset_packed_cost_still_primary;
    Alcotest.test_case "linearize affinity ties" `Quick test_linearize_affinity_orders_ties;
    Alcotest.test_case "place_paged same alignments" `Quick test_place_paged_same_alignments;
    Alcotest.test_case "sweep experiment" `Quick test_sweep_runs;
    Alcotest.test_case "splitting experiment" `Quick test_splitting_runs;
    Alcotest.test_case "paging experiment" `Quick test_paging_experiment_runs;
    Alcotest.test_case "sampling experiment" `Quick test_sampling_experiment_runs;
  ]

(* --- Torrellas baseline -------------------------------------------------- *)

let test_torrellas_layout_valid () =
  let r = Lazy.force runner in
  let program = Trg_eval.Runner.program r in
  let layout = Trg_eval.Runner.torrellas_layout r in
  Alcotest.(check int) "all procs placed" (Program.n_procs program)
    (Array.length (Layout.order layout))

let test_torrellas_reserved_hot () =
  (* The hottest procedures sit below the reserved boundary and thus share
     lines with nothing else among the popular set. *)
  let r = Lazy.force runner in
  let program = Trg_eval.Runner.program r in
  let pop = r.Trg_eval.Runner.prof.Trg_place.Gbsc.popularity in
  let layout =
    Trg_place.Torrellas.place ~reserved_frac:0.25 r.Trg_eval.Runner.config program
      ~popularity:pop
  in
  let hottest = pop.Trg_profile.Popularity.ranked.(0) in
  Alcotest.(check bool) "hottest proc in reserved region of cache 0" true
    (Layout.address layout hottest + Program.size program hottest <= 2048)

let test_torrellas_reserved_frac_validation () =
  let r = Lazy.force runner in
  Alcotest.(check bool) "frac >= 1 rejected" true
    (try
       ignore
         (Trg_place.Torrellas.place ~reserved_frac:1.0 r.Trg_eval.Runner.config
            (Trg_eval.Runner.program r)
            ~popularity:r.Trg_eval.Runner.prof.Trg_place.Gbsc.popularity);
       false
     with Invalid_argument _ -> true)

let suite =
  suite
  @ [
      Alcotest.test_case "torrellas layout valid" `Quick test_torrellas_layout_valid;
      Alcotest.test_case "torrellas reserved hot" `Quick test_torrellas_reserved_hot;
      Alcotest.test_case "torrellas frac validation" `Quick test_torrellas_reserved_frac_validation;
    ]

(* --- Graph dot export / layout view --------------------------------------- *)

let test_graph_to_dot () =
  let g = Graph.of_edges [ (0, 1, 10.); (1, 2, 1.) ] in
  let dot = Graph.to_dot ~name:(fun i -> Printf.sprintf "n%d" i) g in
  Alcotest.(check bool) "has header" true (String.length dot > 0 && String.sub dot 0 5 = "graph");
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "edge rendered" true (contains "\"n0\" -- \"n1\"" dot);
  let filtered = Graph.to_dot ~min_weight:5. g in
  Alcotest.(check bool) "light edge dropped" false (contains "label=\"1\"" filtered);
  Alcotest.(check bool) "dropped endpoint still listed as node" true (contains "\"2\";" filtered)

let test_view_cache_map () =
  let program = Program.of_sizes [| 64; 32 |] in
  let cache = Config.make ~size:128 ~line_size:32 ~assoc:1 in
  let layout = Layout.of_addresses program [| 0; 128 |] in
  let map = Trg_place.View.cache_map program cache layout in
  let lines = String.split_on_char '\n' (String.trim map) in
  (* p0 covers sets 0-1; p1 wraps to set 0: set 0 has both. *)
  Alcotest.(check bool) "set 0 row lists both" true
    (List.exists
       (fun l ->
         let has s =
           let nl = String.length s and hl = String.length l in
           let rec go i = i + nl <= hl && (String.sub l i nl = s || go (i + 1)) in
           go 0
         in
         has "000-000" && has "p0" && has "p1")
       lines)

let test_view_occupancy_summary () =
  let program = Program.of_sizes [| 64; 32 |] in
  let cache = Config.make ~size:128 ~line_size:32 ~assoc:1 in
  let layout = Layout.of_addresses program [| 0; 128 |] in
  let s = Trg_place.View.occupancy_summary program cache layout in
  Alcotest.(check bool) "summary non-empty" true (String.length s > 0)

let suite =
  suite
  @ [
      Alcotest.test_case "graph to_dot" `Quick test_graph_to_dot;
      Alcotest.test_case "view cache map" `Quick test_view_cache_map;
      Alcotest.test_case "view occupancy summary" `Quick test_view_occupancy_summary;
    ]
