module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Event = Trg_trace.Event
module Trace = Trg_trace.Trace
module Block_reorder = Trg_place.Block_reorder
module Anneal = Trg_place.Anneal
module Gbsc = Trg_place.Gbsc
module Bench = Trg_synth.Bench

let ev ?(kind = Event.Run) proc offset len = Event.make ~kind ~proc ~offset ~len

(* One 300-byte procedure with three 100-byte blocks; execution alternates
   block 0 and block 2, never block 1. *)
let fixture_trace =
  Trace.of_list
    (List.concat
       (List.init 20 (fun _ -> [ ev ~kind:Event.Enter 0 0 100; ev 0 200 100 ])))

let fixture_program = Program.of_sizes [| 300 |]

let test_reorder_moves_hot_together () =
  let t = Block_reorder.build fixture_program fixture_trace in
  Alcotest.(check int) "one proc reordered" 1 (Block_reorder.n_reordered t);
  (* Block at 0 stays at 0; block at 200 (hot successor) moves to 100;
     cold block at 100 sinks to 200. *)
  Alcotest.(check int) "entry stays" 0 (Block_reorder.remap_offset t ~proc:0 ~offset:0);
  Alcotest.(check int) "hot successor follows" 100
    (Block_reorder.remap_offset t ~proc:0 ~offset:200);
  Alcotest.(check int) "cold sinks" 200
    (Block_reorder.remap_offset t ~proc:0 ~offset:100)

let test_reorder_offsets_bijective () =
  let t = Block_reorder.build fixture_program fixture_trace in
  let seen = Hashtbl.create 300 in
  for off = 0 to 299 do
    let new_off = Block_reorder.remap_offset t ~proc:0 ~offset:off in
    Alcotest.(check bool) "in range" true (new_off >= 0 && new_off < 300);
    if Hashtbl.mem seen new_off then Alcotest.failf "offset %d mapped twice" new_off;
    Hashtbl.add seen new_off ()
  done

let test_reorder_remap_trace_bytes () =
  let t = Block_reorder.build fixture_program fixture_trace in
  let remapped = Block_reorder.remap_trace t fixture_trace in
  let bytes tr = Trace.fold (fun acc (e : Event.t) -> acc + e.len) 0 tr in
  Alcotest.(check int) "bytes preserved" (bytes fixture_trace) (bytes remapped);
  Trace.iter
    (fun (e : Event.t) ->
      Alcotest.(check bool) "within proc" true (e.offset + e.len <= 300))
    remapped

let test_reorder_spanning_event_is_cut () =
  let t = Block_reorder.build fixture_program fixture_trace in
  (* A run covering [50, 250) spans three segments with different targets. *)
  let crossing = Trace.of_list [ ev 0 50 200 ] in
  let remapped = Block_reorder.remap_trace t crossing in
  Alcotest.(check bool) "cut into pieces" true (Trace.length remapped >= 2);
  let total = Trace.fold (fun acc (e : Event.t) -> acc + e.len) 0 remapped in
  Alcotest.(check int) "bytes preserved" 200 total

let test_reorder_untouched_without_profile () =
  let t = Block_reorder.build fixture_program (Trace.of_list []) in
  Alcotest.(check int) "nothing reordered" 0 (Block_reorder.n_reordered t);
  Alcotest.(check int) "identity" 123 (Block_reorder.remap_offset t ~proc:0 ~offset:123)

let test_reorder_improves_small_benchmark () =
  let w = Trg_synth.Gen.generate (Bench.find "small") in
  let program = w.Trg_synth.Gen.program in
  let train = Trg_synth.Gen.train_trace w in
  let test = Trg_synth.Gen.test_trace w in
  let t = Block_reorder.build program train in
  let test' = Block_reorder.remap_trace t test in
  let cache = Trg_cache.Config.default in
  let mr trace =
    Trg_cache.Sim.miss_rate
      (Trg_cache.Sim.simulate program (Layout.default program) cache trace)
  in
  Alcotest.(check bool) "reordering reduces misses" true (mr test' < mr test)

(* --- Anneal -------------------------------------------------------------- *)

let runner = lazy (Trg_eval.Runner.prepare (Bench.find "small"))

let test_anneal_cost_matches_shared_sets () =
  (* Two single-chunk procedures with one TRG edge: overlapping offsets
     cost w, disjoint offsets cost 0. *)
  let r = Lazy.force runner in
  let program = Trg_eval.Runner.program r in
  let profile = r.Trg_eval.Runner.prof in
  let config = r.Trg_eval.Runner.config in
  let offs = Anneal.gbsc_offsets config program profile in
  let c = Anneal.cost config program ~profile ~offsets:offs in
  Alcotest.(check bool) "finite non-negative" true (c >= 0. && Float.is_finite c)

let test_anneal_warm_start_no_worse () =
  let r = Lazy.force runner in
  let program = Trg_eval.Runner.program r in
  let profile = r.Trg_eval.Runner.prof in
  let config = r.Trg_eval.Runner.config in
  let init = Anneal.gbsc_offsets config program profile in
  let base = Anneal.cost config program ~profile ~offsets:init in
  let params = { Anneal.default_params with Anneal.iterations = 5_000 } in
  let _, final = Anneal.place ~params ~init config program profile in
  Alcotest.(check bool)
    (Printf.sprintf "metric not worsened (%.0f -> %.0f)" base final)
    true (final <= base +. 1e-9)

let test_anneal_layout_complete () =
  let r = Lazy.force runner in
  let program = Trg_eval.Runner.program r in
  let params = { Anneal.default_params with Anneal.iterations = 2_000 } in
  let layout, _ =
    Anneal.place ~params r.Trg_eval.Runner.config program r.Trg_eval.Runner.prof
  in
  Alcotest.(check int) "all procs placed" (Program.n_procs program)
    (Array.length (Layout.order layout))

let test_anneal_deterministic () =
  let r = Lazy.force runner in
  let program = Trg_eval.Runner.program r in
  let params = { Anneal.default_params with Anneal.iterations = 2_000 } in
  let a, ca = Anneal.place ~params r.Trg_eval.Runner.config program r.Trg_eval.Runner.prof in
  let b, cb = Anneal.place ~params r.Trg_eval.Runner.config program r.Trg_eval.Runner.prof in
  Alcotest.(check bool) "same layout" true (Layout.addresses a = Layout.addresses b);
  Alcotest.(check (float 1e-9)) "same cost" ca cb

let test_blocks_experiment () =
  let res = Trg_eval.Blocks.run (Lazy.force runner) in
  Alcotest.(check int) "four rows" 4 (List.length res.Trg_eval.Blocks.rows);
  let get label =
    (List.find (fun r -> r.Trg_eval.Blocks.label = label) res.Trg_eval.Blocks.rows)
      .Trg_eval.Blocks.miss_rate
  in
  Alcotest.(check bool) "combined best" true
    (get "GBSC + block reordering" <= get "GBSC");
  Alcotest.(check bool) "reordering helps default" true
    (get "default + block reordering" < get "default layout")

let test_headroom_experiment () =
  let res = Trg_eval.Headroom.run ~iterations:3_000 (Lazy.force runner) in
  Alcotest.(check int) "four rows" 4 (List.length res.Trg_eval.Headroom.rows);
  let metric label =
    (List.find (fun r -> r.Trg_eval.Headroom.label = label) res.Trg_eval.Headroom.rows)
      .Trg_eval.Headroom.metric
  in
  Alcotest.(check bool) "warm start metric <= greedy metric" true
    (metric "anneal, warm start from GBSC" <= metric "GBSC (greedy)" +. 1e-9)

let suite =
  [
    Alcotest.test_case "reorder moves hot together" `Quick test_reorder_moves_hot_together;
    Alcotest.test_case "reorder offsets bijective" `Quick test_reorder_offsets_bijective;
    Alcotest.test_case "reorder remap preserves bytes" `Quick test_reorder_remap_trace_bytes;
    Alcotest.test_case "reorder cuts spanning events" `Quick test_reorder_spanning_event_is_cut;
    Alcotest.test_case "reorder identity without profile" `Quick test_reorder_untouched_without_profile;
    Alcotest.test_case "reorder improves small benchmark" `Quick test_reorder_improves_small_benchmark;
    Alcotest.test_case "anneal cost sane" `Quick test_anneal_cost_matches_shared_sets;
    Alcotest.test_case "anneal warm start no worse" `Quick test_anneal_warm_start_no_worse;
    Alcotest.test_case "anneal layout complete" `Quick test_anneal_layout_complete;
    Alcotest.test_case "anneal deterministic" `Quick test_anneal_deterministic;
    Alcotest.test_case "blocks experiment" `Quick test_blocks_experiment;
    Alcotest.test_case "headroom experiment" `Quick test_headroom_experiment;
  ]

(* --- Exhaustive optimal (verification tool) -------------------------------- *)

module Exhaustive = Trg_place.Exhaustive
module Toy = Trg_synth.Toy
module Sim = Trg_cache.Sim

let toy_config =
  { (Gbsc.default_config ~cache:Toy.cache ()) with Gbsc.chunk_size = 32; min_refs = 1 }

let toy_mr layout trace =
  Sim.miss_rate (Sim.simulate Toy.program layout Toy.cache trace)

let test_gbsc_is_optimal_on_toy_blocked () =
  (* The paper's motivating example: GBSC must reach the true optimum. *)
  let trace = Toy.trace_blocked () in
  let _, optimal = Exhaustive.search toy_config Toy.program trace in
  let gbsc = Gbsc.run toy_config Toy.program trace in
  Alcotest.(check (float 1e-9))
    "GBSC = exhaustive optimum on trace #2" optimal (toy_mr gbsc trace)

let test_gbsc_optimal_on_toy_alternating () =
  let trace = Toy.trace_alternating () in
  let _, optimal = Exhaustive.search toy_config Toy.program trace in
  let gbsc = Gbsc.run toy_config Toy.program trace in
  let gap = toy_mr gbsc trace -. optimal in
  Alcotest.(check bool)
    (Printf.sprintf "GBSC within 10%% rel. of optimum (gap %.4f)" gap)
    true
    (gap <= 0.1 *. optimal +. 1e-9)

let test_exhaustive_rejects_large () =
  let program = Program.of_sizes (Array.make 10 32) in
  let config = Gbsc.default_config () in
  Alcotest.(check bool) "too many layouts rejected" true
    (try
       ignore (Exhaustive.search ~max_layouts:100 config program (Toy.trace_blocked ()));
       false
     with Invalid_argument _ -> true)

let suite =
  suite
  @ [
      Alcotest.test_case "GBSC optimal on toy (blocked)" `Quick test_gbsc_is_optimal_on_toy_blocked;
      Alcotest.test_case "GBSC near-optimal on toy (alternating)" `Quick test_gbsc_optimal_on_toy_alternating;
      Alcotest.test_case "exhaustive rejects large" `Quick test_exhaustive_rejects_large;
    ]
