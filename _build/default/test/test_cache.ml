module Config = Trg_cache.Config
module Sim = Trg_cache.Sim
module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Event = Trg_trace.Event
module Trace = Trg_trace.Trace

let ev kind proc offset len = Event.make ~kind ~proc ~offset ~len

let test_config_default () =
  Alcotest.(check int) "lines" 256 (Config.n_lines Config.default);
  Alcotest.(check int) "sets" 256 (Config.n_sets Config.default)

let test_config_validation () =
  Alcotest.(check bool) "indivisible" true
    (try
       ignore (Config.make ~size:100 ~line_size:32 ~assoc:1);
       false
     with Invalid_argument _ -> true)

let test_config_assoc_sets () =
  let c = Config.make ~size:8192 ~line_size:32 ~assoc:2 in
  Alcotest.(check int) "sets" 128 (Config.n_sets c);
  Alcotest.(check int) "lines" 256 (Config.n_lines c)

let test_lines_of_bytes () =
  let c = Config.default in
  Alcotest.(check int) "0" 0 (Config.lines_of_bytes c 0);
  Alcotest.(check int) "1" 1 (Config.lines_of_bytes c 1);
  Alcotest.(check int) "32" 1 (Config.lines_of_bytes c 32);
  Alcotest.(check int) "33" 2 (Config.lines_of_bytes c 33)

(* Two procedures, one cache line each, 2-line direct-mapped cache. *)
let tiny = Program.of_sizes [| 32; 32 |]

let tiny_cache = Config.make ~size:64 ~line_size:32 ~assoc:1

let ref_trace procs =
  Trace.of_list (List.map (fun p -> ev Event.Enter p 0 32) procs)

let test_dm_no_conflict () =
  (* p0 -> line 0, p1 -> line 1: alternating references hit after warmup. *)
  let layout = Layout.of_addresses tiny [| 0; 32 |] in
  let r = Sim.simulate tiny layout tiny_cache (ref_trace [ 0; 1; 0; 1; 0; 1 ]) in
  Alcotest.(check int) "accesses" 6 r.Sim.accesses;
  Alcotest.(check int) "2 compulsory misses" 2 r.Sim.misses

let test_dm_conflict () =
  (* Both procedures on line 0: every access misses. *)
  let layout = Layout.of_addresses tiny [| 0; 64 |] in
  let r = Sim.simulate tiny layout tiny_cache (ref_trace [ 0; 1; 0; 1; 0; 1 ]) in
  Alcotest.(check int) "all miss" 6 r.Sim.misses

let test_dm_same_proc_hits () =
  let layout = Layout.of_addresses tiny [| 0; 32 |] in
  let r = Sim.simulate tiny layout tiny_cache (ref_trace [ 0; 0; 0; 0 ]) in
  Alcotest.(check int) "1 miss" 1 r.Sim.misses

let test_multiline_event () =
  (* A 100-byte run starting at address 0 touches lines 0..3. *)
  let p = Program.of_sizes [| 128 |] in
  let layout = Layout.of_addresses p [| 0 |] in
  let t = Trace.of_list [ ev Event.Enter 0 0 100 ] in
  let r = Sim.simulate p layout Config.default t in
  Alcotest.(check int) "4 line accesses" 4 r.Sim.accesses;
  Alcotest.(check int) "4 misses" 4 r.Sim.misses

let test_unaligned_proc_start () =
  (* Procedure starting mid-line at 16: bytes [16,48) touch lines 0 and 1. *)
  let p = Program.of_sizes [| 32; 16 |] in
  let layout = Layout.of_addresses p [| 16; 0 |] in
  let t = Trace.of_list [ ev Event.Enter 0 0 32 ] in
  let r = Sim.simulate p layout Config.default t in
  Alcotest.(check int) "2 lines touched" 2 r.Sim.accesses

let test_lru_2way_avoids_conflict () =
  (* 2-way 64B cache = 1 set of 2 ways: two alternating lines both fit. *)
  let cache2 = Config.make ~size:64 ~line_size:32 ~assoc:2 in
  let layout = Layout.of_addresses tiny [| 0; 64 |] in
  let r = Sim.simulate tiny layout cache2 (ref_trace [ 0; 1; 0; 1; 0; 1 ]) in
  Alcotest.(check int) "only compulsory misses" 2 r.Sim.misses

let test_lru_eviction_order () =
  (* 1 set, 2 ways; refs A B C A: C evicts A (LRU), so the final A misses. *)
  let p = Program.of_sizes [| 32; 32; 32 |] in
  let cache2 = Config.make ~size:64 ~line_size:32 ~assoc:2 in
  let layout = Layout.of_addresses p [| 0; 64; 128 |] in
  let r = Sim.simulate p layout cache2 (ref_trace [ 0; 1; 2; 0 ]) in
  Alcotest.(check int) "4 misses" 4 r.Sim.misses;
  (* refs A B A C: A is MRU when C arrives, so C evicts B; A still hits. *)
  let r2 = Sim.simulate p layout cache2 (ref_trace [ 0; 1; 0; 2; 0 ]) in
  Alcotest.(check int) "A stays resident" 3 r2.Sim.misses

let test_miss_rate () =
  let layout = Layout.of_addresses tiny [| 0; 32 |] in
  let r = Sim.simulate tiny layout tiny_cache (ref_trace [ 0; 1; 0; 1 ]) in
  Alcotest.(check (float 1e-9)) "rate" 0.5 (Sim.miss_rate r)

let test_distinct_lines () =
  let layout = Layout.of_addresses tiny [| 0; 32 |] in
  let n = Sim.distinct_lines tiny layout tiny_cache (ref_trace [ 0; 1; 0; 1 ]) in
  Alcotest.(check int) "2 distinct" 2 n

(* Property: a cache big enough to hold everything has exactly
   distinct_lines misses, and misses never exceed accesses. *)
let prop_compulsory_floor =
  QCheck.Test.make ~name:"huge cache gives compulsory misses only" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 50) (int_range 0 4))
    (fun refs ->
      let p = Program.of_sizes [| 64; 96; 32; 128; 64 |] in
      let layout = Layout.default p in
      let trace = ref_trace (List.map (fun r -> r mod 5) refs) in
      let huge = Config.make ~size:(1 lsl 20) ~line_size:32 ~assoc:1 in
      let r = Sim.simulate p layout huge trace in
      r.Sim.misses = Sim.distinct_lines p layout huge trace
      && r.Sim.misses <= r.Sim.accesses)

(* Property: higher associativity at equal size never loses to direct-mapped
   on these small alternating traces... not true in general (LRU anomalies),
   but misses must always be bounded by accesses and at least the
   compulsory floor. *)
let prop_miss_bounds =
  QCheck.Test.make ~name:"misses bounded by floor and accesses" ~count:50
    QCheck.(pair (int_range 1 4) (list_of_size (Gen.int_range 1 80) (int_range 0 7)))
    (fun (assoc, refs) ->
      let p = Program.of_sizes (Array.make 8 64) in
      let layout = Layout.default p in
      let trace = ref_trace (List.map (fun r -> r mod 8) refs) in
      let cache = Config.make ~size:(256 * assoc) ~line_size:32 ~assoc in
      let r = Sim.simulate p layout cache trace in
      let floor = Sim.distinct_lines p layout cache trace in
      r.Sim.misses >= floor && r.Sim.misses <= r.Sim.accesses)

let suite =
  [
    Alcotest.test_case "config default" `Quick test_config_default;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "config assoc sets" `Quick test_config_assoc_sets;
    Alcotest.test_case "lines_of_bytes" `Quick test_lines_of_bytes;
    Alcotest.test_case "DM no conflict" `Quick test_dm_no_conflict;
    Alcotest.test_case "DM conflict" `Quick test_dm_conflict;
    Alcotest.test_case "DM same proc hits" `Quick test_dm_same_proc_hits;
    Alcotest.test_case "multiline event" `Quick test_multiline_event;
    Alcotest.test_case "unaligned proc start" `Quick test_unaligned_proc_start;
    Alcotest.test_case "LRU 2-way avoids conflict" `Quick test_lru_2way_avoids_conflict;
    Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "miss rate" `Quick test_miss_rate;
    Alcotest.test_case "distinct lines" `Quick test_distinct_lines;
    QCheck_alcotest.to_alcotest prop_compulsory_floor;
    QCheck_alcotest.to_alcotest prop_miss_bounds;
  ]

let test_plru_equals_direct_mapped () =
  let layout = Layout.of_addresses tiny [| 0; 32 |] in
  let trace = ref_trace [ 0; 1; 0; 1; 0 ] in
  let lru = Sim.simulate tiny layout tiny_cache trace in
  let plru = Sim.simulate_plru tiny layout tiny_cache trace in
  Alcotest.(check int) "assoc=1: identical" lru.Sim.misses plru.Sim.misses

let test_plru_two_way_basic () =
  (* 1 set of 2 ways; two alternating lines fit under PLRU just as under
     LRU. *)
  let cache2 = Config.make ~size:64 ~line_size:32 ~assoc:2 in
  let layout = Layout.of_addresses tiny [| 0; 64 |] in
  let r = Sim.simulate_plru tiny layout cache2 (ref_trace [ 0; 1; 0; 1; 0; 1 ]) in
  Alcotest.(check int) "compulsory only" 2 r.Sim.misses

let test_plru_rejects_non_power_of_two () =
  let p3 = Program.of_sizes [| 32 |] in
  let cache3 = Config.make ~size:(3 * 32) ~line_size:32 ~assoc:3 in
  Alcotest.(check bool) "assoc=3 rejected" true
    (try
       ignore (Sim.simulate_plru p3 (Layout.default p3) cache3 (ref_trace [ 0 ]));
       false
     with Invalid_argument _ -> true)

let prop_plru_vs_lru_bounds =
  QCheck.Test.make ~name:"PLRU misses within sane bounds of LRU" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 120) (int_range 0 7))
    (fun refs ->
      let p = Program.of_sizes (Array.make 8 32) in
      let layout = Layout.default p in
      let cache = Config.make ~size:(4 * 32) ~line_size:32 ~assoc:4 in
      let trace = ref_trace (List.map (fun r -> r mod 8) refs) in
      let lru = Sim.simulate p layout cache trace in
      let plru = Sim.simulate_plru p layout cache trace in
      let floor = Sim.distinct_lines p layout cache trace in
      plru.Sim.misses >= floor
      && plru.Sim.misses <= plru.Sim.accesses
      && plru.Sim.accesses = lru.Sim.accesses)

let suite =
  suite
  @ [
      Alcotest.test_case "PLRU equals DM at assoc 1" `Quick test_plru_equals_direct_mapped;
      Alcotest.test_case "PLRU 2-way basic" `Quick test_plru_two_way_basic;
      Alcotest.test_case "PLRU rejects assoc=3" `Quick test_plru_rejects_non_power_of_two;
      QCheck_alcotest.to_alcotest prop_plru_vs_lru_bounds;
    ]
