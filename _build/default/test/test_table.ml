module Table = Trg_util.Table

let test_render_basic () =
  let s = Table.render ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "bb"; "22" ] ] in
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  Alcotest.(check bool) "has rule" true
    (String.for_all (fun c -> c = '-') (List.nth lines 1))

let test_render_pads_short_rows () =
  let s = Table.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_fmt_pct () =
  Alcotest.(check string) "pct" "4.86%" (Table.fmt_pct 0.0486);
  Alcotest.(check string) "pct decimals" "12.3%" (Table.fmt_pct ~decimals:1 0.123)

let test_fmt_bytes () =
  Alcotest.(check string) "kilobytes" "2277 K" (Table.fmt_bytes (2277 * 1024));
  Alcotest.(check string) "small" "512 B" (Table.fmt_bytes 512)

let test_fmt_int () =
  Alcotest.(check string) "thousands" "1,234,567" (Table.fmt_int 1234567);
  Alcotest.(check string) "small" "42" (Table.fmt_int 42);
  Alcotest.(check string) "negative" "-1,000" (Table.fmt_int (-1000))

let test_fmt_float () =
  Alcotest.(check string) "two decimals" "3.14" (Table.fmt_float 3.14159);
  Alcotest.(check string) "four decimals" "3.1416" (Table.fmt_float ~decimals:4 3.14159)

let suite =
  [
    Alcotest.test_case "render basic" `Quick test_render_basic;
    Alcotest.test_case "render pads short rows" `Quick test_render_pads_short_rows;
    Alcotest.test_case "fmt_pct" `Quick test_fmt_pct;
    Alcotest.test_case "fmt_bytes" `Quick test_fmt_bytes;
    Alcotest.test_case "fmt_int" `Quick test_fmt_int;
    Alcotest.test_case "fmt_float" `Quick test_fmt_float;
  ]
