module Prng = Trg_util.Prng

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_int_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_int_in_bounds () =
  let rng = Prng.create 8 in
  for _ = 1 to 10_000 do
    let v = Prng.int_in rng 3 9 in
    Alcotest.(check bool) "in [3,9]" true (v >= 3 && v <= 9)
  done;
  Alcotest.(check int) "degenerate range" 5 (Prng.int_in rng 5 5)

let test_float_bounds () =
  let rng = Prng.create 9 in
  for _ = 1 to 10_000 do
    let v = Prng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0. && v < 2.5)
  done

let test_int_uniformity () =
  let rng = Prng.create 10 in
  let counts = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let v = Prng.int rng 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 8 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d ~uniform (%d)" i c)
        true
        (abs (c - expected) < expected / 5))
    counts

let test_normal_moments () =
  let rng = Prng.create 11 in
  let n = 100_000 in
  let samples = Array.init n (fun _ -> Prng.normal rng) in
  let mean = Trg_util.Stats.mean samples in
  let sd = Trg_util.Stats.stddev samples in
  Alcotest.(check bool) "mean ~0" true (Float.abs mean < 0.02);
  Alcotest.(check bool) "stddev ~1" true (Float.abs (sd -. 1.) < 0.02)

let test_log_normal_positive () =
  let rng = Prng.create 12 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Prng.log_normal rng ~mu:0. ~sigma:1. > 0.)
  done

let test_bernoulli_rate () =
  let rng = Prng.create 13 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Prng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate ~0.3" true (Float.abs (rate -. 0.3) < 0.01)

let test_shuffle_permutation () =
  let rng = Prng.create 14 in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 (fun i -> i)) sorted;
  Alcotest.(check bool) "actually moved" true (a <> Array.init 100 (fun i -> i))

let test_sample_distinct () =
  let rng = Prng.create 15 in
  let a = Array.init 50 (fun i -> i) in
  let s = Prng.sample rng a 20 in
  Alcotest.(check int) "20 drawn" 20 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to Array.length sorted - 1 do
    Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
  done

let test_zipf_skew () =
  let rng = Prng.create 16 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let v = Prng.zipf rng ~n:10 ~s:1.2 in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank0 > rank9" true (counts.(0) > 3 * counts.(9));
  Alcotest.(check bool) "rank0 most common" true
    (Array.for_all (fun c -> c <= counts.(0)) counts)

let test_zipf_sampler_agrees () =
  let sample = Prng.zipf_sampler ~n:50 ~s:1.1 in
  let rng = Prng.create 17 in
  for _ = 1 to 1000 do
    let v = sample rng in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 50)
  done

let test_split_independent () =
  let rng = Prng.create 18 in
  let child = Prng.split rng in
  let a = Prng.bits64 rng and b = Prng.bits64 child in
  Alcotest.(check bool) "streams distinct" true (a <> b)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "log-normal positive" `Quick test_log_normal_positive;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "sample distinct" `Quick test_sample_distinct;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf sampler range" `Quick test_zipf_sampler_agrees;
    Alcotest.test_case "split independence" `Quick test_split_independent;
  ]
