test/test_coverage.ml: Alcotest Filename Fun List Printf String Sys Trg_cache Trg_place Trg_program Trg_synth Trg_trace Trg_util
