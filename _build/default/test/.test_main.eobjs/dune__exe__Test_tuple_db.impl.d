test/test_tuple_db.ml: Alcotest Array List Trg_cache Trg_place Trg_profile Trg_program Trg_trace Trg_util
