test/test_stats.ml: Alcotest Array Float List Printf Trg_util
