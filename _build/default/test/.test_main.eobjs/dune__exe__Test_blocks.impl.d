test/test_blocks.ml: Alcotest Array Float Hashtbl Lazy List Printf Trg_cache Trg_eval Trg_place Trg_program Trg_synth Trg_trace
