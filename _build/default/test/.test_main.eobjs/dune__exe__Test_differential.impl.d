test/test_differential.ml: Array Float Gen Hashtbl List QCheck QCheck_alcotest Trg_cache Trg_place Trg_profile Trg_program Trg_trace Trg_util
