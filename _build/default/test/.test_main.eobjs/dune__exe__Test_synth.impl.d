test/test_synth.ml: Alcotest Array List Printf Trg_cache Trg_program Trg_synth Trg_trace
