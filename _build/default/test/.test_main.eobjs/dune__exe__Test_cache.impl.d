test/test_cache.ml: Alcotest Array Gen List QCheck QCheck_alcotest Trg_cache Trg_program Trg_trace
