test/test_profile.ml: Alcotest Array Gen List Printf QCheck QCheck_alcotest Trg_cache Trg_profile Trg_program Trg_synth Trg_trace Trg_util
