test/test_graph.ml: Alcotest Gen List QCheck QCheck_alcotest Trg_profile
