test/test_eval.ml: Alcotest Array Lazy List Printf Trg_eval Trg_program Trg_synth Trg_trace
