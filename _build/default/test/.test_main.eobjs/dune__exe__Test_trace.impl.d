test/test_trace.ml: Alcotest Array Filename Fun List QCheck QCheck_alcotest Sys Trg_trace Unix
