test/test_prng.ml: Alcotest Array Float Printf Trg_util
