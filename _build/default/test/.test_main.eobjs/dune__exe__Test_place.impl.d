test/test_place.ml: Alcotest Array Gen List Printf QCheck QCheck_alcotest Trg_cache Trg_place Trg_profile Trg_program Trg_synth Trg_trace
