test/test_extensions.ml: Alcotest Array Filename Fun Lazy List Option Printf String Sys Trg_cache Trg_eval Trg_place Trg_profile Trg_program Trg_synth Trg_trace Trg_util
