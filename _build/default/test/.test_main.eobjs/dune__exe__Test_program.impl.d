test/test_program.ml: Alcotest Array Gen List QCheck QCheck_alcotest Trg_program Trg_util
