test/test_qset.ml: Alcotest Gen List QCheck QCheck_alcotest Trg_profile
