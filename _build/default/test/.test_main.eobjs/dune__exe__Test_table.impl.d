test/test_table.ml: Alcotest List String Trg_util
