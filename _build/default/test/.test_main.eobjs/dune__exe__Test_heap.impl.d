test/test_heap.ml: Alcotest Array List Trg_util
