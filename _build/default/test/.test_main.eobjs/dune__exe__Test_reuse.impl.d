test/test_reuse.ml: Alcotest Array List Printf Trg_cache Trg_eval Trg_profile Trg_program Trg_synth Trg_trace
