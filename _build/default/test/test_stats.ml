module Stats = Trg_util.Stats

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

let check_f name expected actual =
  Alcotest.(check bool) (Printf.sprintf "%s: %g vs %g" name expected actual) true
    (feq expected actual)

let test_mean () = check_f "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |])

let test_mean_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

let test_variance () =
  (* Sample variance of 2,4,4,4,5,5,7,9 is 32/7. *)
  check_f "variance" (32. /. 7.) (Stats.variance [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_variance_singleton () = check_f "singleton variance" 0. (Stats.variance [| 5. |])

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.; -1.; 7.; 2. |] in
  check_f "min" (-1.) lo;
  check_f "max" 7. hi

let test_median_odd () = check_f "median odd" 3. (Stats.median [| 5.; 1.; 3. |])

let test_median_even () = check_f "median even" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |])

let test_percentile () =
  let a = [| 1.; 2.; 3.; 4.; 5. |] in
  check_f "p0" 1. (Stats.percentile a 0.);
  check_f "p50" 3. (Stats.percentile a 50.);
  check_f "p100" 5. (Stats.percentile a 100.);
  check_f "p25" 2. (Stats.percentile a 25.)

let test_pearson_perfect () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = Array.map (fun x -> (2. *. x) +. 1.) xs in
  check_f "r=1" 1. (Stats.pearson xs ys);
  let ys_neg = Array.map (fun x -> -.x) xs in
  check_f "r=-1" (-1.) (Stats.pearson xs ys_neg)

let test_pearson_uncorrelated () =
  let xs = [| 1.; 2.; 3.; 4. |] and ys = [| 1.; -1.; 1.; -1. |] in
  let r = Stats.pearson xs ys in
  Alcotest.(check bool) "|r| small" true (Float.abs r < 0.5)

let test_pearson_degenerate () =
  check_f "zero variance" 0. (Stats.pearson [| 1.; 1.; 1. |] [| 1.; 2.; 3. |])

let test_spearman_monotone () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  let ys = Array.map (fun x -> x ** 3.) xs in
  check_f "monotone rho=1" 1. (Stats.spearman xs ys)

let test_cdf_points () =
  let pts = Stats.cdf_points [| 3.; 1.; 2. |] in
  Alcotest.(check int) "3 points" 3 (List.length pts);
  let xs = List.map fst pts and fs = List.map snd pts in
  Alcotest.(check (list (float 1e-9))) "sorted xs" [ 1.; 2.; 3. ] xs;
  Alcotest.(check (list (float 1e-9))) "fractions" [ 1. /. 3.; 2. /. 3.; 1. ] fs

let test_histogram () =
  let h = Stats.histogram [| 0.; 1.; 2.; 3.; 3.9 |] ~bins:4 in
  Alcotest.(check int) "4 bins" 4 (Array.length h);
  let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 h in
  Alcotest.(check int) "all counted" 5 total

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "mean empty raises" `Quick test_mean_empty;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "variance singleton" `Quick test_variance_singleton;
    Alcotest.test_case "min_max" `Quick test_min_max;
    Alcotest.test_case "median odd" `Quick test_median_odd;
    Alcotest.test_case "median even" `Quick test_median_even;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "pearson perfect" `Quick test_pearson_perfect;
    Alcotest.test_case "pearson uncorrelated" `Quick test_pearson_uncorrelated;
    Alcotest.test_case "pearson degenerate" `Quick test_pearson_degenerate;
    Alcotest.test_case "spearman monotone" `Quick test_spearman_monotone;
    Alcotest.test_case "cdf points" `Quick test_cdf_points;
    Alcotest.test_case "histogram" `Quick test_histogram;
  ]
