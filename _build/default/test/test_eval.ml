module Runner = Trg_eval.Runner
module Table1 = Trg_eval.Table1
module Figure5 = Trg_eval.Figure5
module Figure6 = Trg_eval.Figure6
module Padding = Trg_eval.Padding
module Setassoc = Trg_eval.Setassoc
module Ablation = Trg_eval.Ablation
module Bench = Trg_synth.Bench
module Layout = Trg_program.Layout
module Program = Trg_program.Program

(* One shared prepared runner: preparation is the expensive step. *)
let runner = lazy (Runner.prepare (Bench.find "small"))

let test_prepare_consistency () =
  let r = Lazy.force runner in
  Alcotest.(check int) "program size matches shape" 160
    (Program.n_procs (Runner.program r));
  Alcotest.(check bool) "train and test differ" true
    (Trg_trace.Trace.to_list r.Runner.train <> Trg_trace.Trace.to_list r.Runner.test)

let test_layouts_cover_program () =
  let r = Lazy.force runner in
  List.iter
    (fun layout ->
      Alcotest.(check int) "complete layout" 160 (Array.length (Layout.order layout)))
    [
      Runner.default_layout r;
      Runner.ph_layout r;
      Runner.hkc_layout r;
      Runner.gbsc_layout r;
    ]

let test_table1_row () =
  let r = Lazy.force runner in
  let row = Table1.row_of r in
  Alcotest.(check string) "name" "small" row.Table1.name;
  Alcotest.(check int) "train events" 200_000 row.Table1.train_events;
  Alcotest.(check bool) "default MR sane" true
    (row.Table1.default_miss_rate > 0. && row.Table1.default_miss_rate < 0.5);
  Alcotest.(check bool) "avg Q positive" true (row.Table1.avg_q > 1.)

let test_table1_paper_reference_complete () =
  List.iter
    (fun shape ->
      Alcotest.(check bool)
        (shape.Trg_synth.Shape.name ^ " has a paper row")
        true
        (List.mem_assoc shape.Trg_synth.Shape.name Table1.paper_reference))
    Bench.all

let test_figure5_shapes () =
  let r = Lazy.force runner in
  let res = Figure5.run ~runs:4 r in
  Alcotest.(check int) "three algorithms" 3 (List.length res.Figure5.results);
  List.iter
    (fun alg ->
      Alcotest.(check int) "4 perturbed runs" 4 (Array.length alg.Figure5.sorted);
      let sorted = Array.copy alg.Figure5.sorted in
      Array.sort compare sorted;
      Alcotest.(check bool) "ascending" true (sorted = alg.Figure5.sorted);
      Array.iter
        (fun mr -> Alcotest.(check bool) "rate in (0,1)" true (mr > 0. && mr < 1.))
        alg.Figure5.sorted)
    res.Figure5.results

let test_figure5_gbsc_best () =
  let r = Lazy.force runner in
  let res = Figure5.run ~runs:4 r in
  let unperturbed a =
    (List.find (fun x -> x.Figure5.algo = a) res.Figure5.results).Figure5.unperturbed
  in
  Alcotest.(check bool) "GBSC beats PH" true
    (unperturbed Figure5.GBSC < unperturbed Figure5.PH);
  Alcotest.(check bool) "GBSC beats default" true
    (unperturbed Figure5.GBSC < res.Figure5.default_mr)

let test_figure5_deterministic () =
  let r = Lazy.force runner in
  let a = Figure5.run ~runs:3 ~seed:5 r and b = Figure5.run ~runs:3 ~seed:5 r in
  List.iter2
    (fun x y ->
      Alcotest.(check bool) "same sorted rates" true (x.Figure5.sorted = y.Figure5.sorted))
    a.Figure5.results b.Figure5.results

let test_figure6_correlations () =
  let r = Lazy.force runner in
  let res = Figure6.run ~n:20 r in
  Alcotest.(check int) "20 points" 20 (Array.length res.Figure6.points);
  Alcotest.(check bool)
    (Printf.sprintf "TRG metric strongly correlated (r=%.3f)" res.Figure6.r_trg)
    true (res.Figure6.r_trg > 0.8);
  Alcotest.(check bool) "TRG metric at least as good as WCG metric" true
    (res.Figure6.r_trg >= res.Figure6.r_wcg -. 0.02)

let test_figure6_first_point_is_base () =
  let r = Lazy.force runner in
  let res = Figure6.run ~n:5 r in
  let base = res.Figure6.points.(0) in
  (* The unmodified GBSC placement should be among the best layouts. *)
  Array.iter
    (fun p ->
      Alcotest.(check bool) "base near minimum" true
        (base.Figure6.miss_rate <= p.Figure6.miss_rate +. 0.02))
    res.Figure6.points

let test_padding_increases_misses () =
  let r = Lazy.force runner in
  let res = Padding.run r in
  Alcotest.(check bool)
    (Printf.sprintf "padding hurts (%.4f -> %.4f)" res.Padding.base_mr
       res.Padding.padded_mr)
    true
    (res.Padding.padded_mr > res.Padding.base_mr)

let test_padding_zero_is_identity () =
  let r = Lazy.force runner in
  let res = Padding.run ~pad:0 r in
  Alcotest.(check (float 1e-12)) "no padding, no change" res.Padding.base_mr
    res.Padding.padded_mr

let test_setassoc_rows () =
  let res = Setassoc.run (Bench.find "small") in
  let rows (s : Setassoc.section) = s.Setassoc.rows in
  Alcotest.(check int) "four 2-way rows" 4 (List.length (rows res.Setassoc.two_way));
  Alcotest.(check int) "four 4-way rows" 4 (List.length (rows res.Setassoc.four_way));
  let get section label =
    (List.find (fun r -> r.Setassoc.label = label) (rows section)).Setassoc.miss_rate
  in
  let default = get res.Setassoc.two_way "default layout" in
  let sa = get res.Setassoc.two_way "GBSC-SA (pair database)" in
  Alcotest.(check bool) "GBSC-SA beats default on 2-way" true (sa < default);
  (* At 4 ways conflicts nearly vanish; require the tuple placement not to
     be materially worse than the default layout. *)
  Alcotest.(check bool) "tuple SA competitive on 4-way" true
    (get res.Setassoc.four_way "GBSC-SA (tuple database)"
    <= 1.1 *. get res.Setassoc.four_way "default layout")

let test_ablation_rows () =
  let r = Lazy.force runner in
  let res = Ablation.run r in
  Alcotest.(check int) "eleven variants" 11 (List.length res.Ablation.rows);
  let get label =
    (List.find (fun x -> x.Ablation.label = label) res.Ablation.rows).Ablation.miss_rate
  in
  let full = get "GBSC (full)" in
  Alcotest.(check bool) "full GBSC beats default" true (full < get "default layout")

let suite =
  [
    Alcotest.test_case "prepare consistency" `Quick test_prepare_consistency;
    Alcotest.test_case "layouts cover program" `Quick test_layouts_cover_program;
    Alcotest.test_case "table1 row" `Quick test_table1_row;
    Alcotest.test_case "table1 paper reference complete" `Quick
      test_table1_paper_reference_complete;
    Alcotest.test_case "figure5 shapes" `Quick test_figure5_shapes;
    Alcotest.test_case "figure5 GBSC best" `Quick test_figure5_gbsc_best;
    Alcotest.test_case "figure5 deterministic" `Quick test_figure5_deterministic;
    Alcotest.test_case "figure6 correlations" `Quick test_figure6_correlations;
    Alcotest.test_case "figure6 base point" `Quick test_figure6_first_point_is_base;
    Alcotest.test_case "padding increases misses" `Quick test_padding_increases_misses;
    Alcotest.test_case "padding zero identity" `Quick test_padding_zero_is_identity;
    Alcotest.test_case "setassoc rows" `Quick test_setassoc_rows;
    Alcotest.test_case "ablation rows" `Quick test_ablation_rows;
  ]
