module Program = Trg_program.Program
module Chunk = Trg_program.Chunk
module Layout = Trg_program.Layout
module Config = Trg_cache.Config
module Sim = Trg_cache.Sim
module Graph = Trg_profile.Graph
module Wcg = Trg_profile.Wcg
module Trg = Trg_profile.Trg
module Popularity = Trg_profile.Popularity
module Tstats = Trg_trace.Tstats
module Node = Trg_place.Node
module Merge_driver = Trg_place.Merge_driver
module Cost = Trg_place.Cost
module Linearize = Trg_place.Linearize
module Ph = Trg_place.Ph
module Gbsc = Trg_place.Gbsc
module Hkc = Trg_place.Hkc
module Metric = Trg_place.Metric
module Toy = Trg_synth.Toy

(* --- Node -------------------------------------------------------------- *)

let test_node_union_shift () =
  let n1 = Node.singleton 0 and n2 = Node.singleton 1 in
  let merged = Node.union ~shift:5 ~modulo:8 n1 n2 in
  Alcotest.(check int) "n1 offset kept" 0 (Node.offset_of merged 0);
  Alcotest.(check int) "n2 shifted" 5 (Node.offset_of merged 1);
  let merged2 = Node.union ~shift:6 ~modulo:8 merged (Node.singleton 2) in
  Alcotest.(check int) "mod applied" 6 (Node.offset_of merged2 2);
  Alcotest.(check int) "size" 3 (Node.size merged2)

let test_node_union_wraps () =
  let base = Node.union ~shift:7 ~modulo:8 (Node.singleton 0) (Node.singleton 1) in
  let merged = Node.union ~shift:3 ~modulo:8 (Node.singleton 2) base in
  (* base offsets 0 and 7 shift by 3 mod 8 -> 3 and 2. *)
  Alcotest.(check int) "0 -> 3" 3 (Node.offset_of merged 0);
  Alcotest.(check int) "7 -> 2" 2 (Node.offset_of merged 1)

(* --- Merge driver ------------------------------------------------------ *)

(* Payload: list of original node ids, so we can observe the merge tree. *)
let run_driver graph =
  Merge_driver.run ~graph ~init:(fun p -> [ p ]) ~merge:(fun a b -> a @ b)

let test_driver_single_edge () =
  let g = Graph.of_edges [ (1, 2, 5.) ] in
  match run_driver g with
  | [ group ] -> Alcotest.(check (list int)) "merged" [ 1; 2 ] (List.sort compare group)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 group, got %d" (List.length l))

let test_driver_heaviest_first () =
  (* Edges a-b:10, c-d:8, b-c:5.  a-b merge first, then c-d, then the two
     groups join; the big group (first by count tie/repr) is n1. *)
  let g = Graph.of_edges [ (0, 1, 10.); (2, 3, 8.); (1, 2, 5.) ] in
  let order = ref [] in
  let _ =
    Merge_driver.run ~graph:g
      ~init:(fun p -> [ p ])
      ~merge:(fun a b ->
        order := (a, b) :: !order;
        a @ b)
  in
  match List.rev !order with
  | [ (m1a, m1b); (m2a, m2b); (m3a, m3b) ] ->
    Alcotest.(check (list int)) "first merge a,b" [ 0; 1 ] (List.sort compare (m1a @ m1b));
    Alcotest.(check (list int)) "second merge c,d" [ 2; 3 ] (List.sort compare (m2a @ m2b));
    Alcotest.(check (list int)) "third merge all" [ 0; 1; 2; 3 ]
      (List.sort compare (m3a @ m3b))
  | l -> Alcotest.fail (Printf.sprintf "expected 3 merges, got %d" (List.length l))

let test_driver_combines_parallel_edges () =
  (* After merging 1-2 (weight 10), edges 1-3 (2) and 2-3 (3) combine to 5,
     beating 4-5 (4). *)
  let g = Graph.of_edges [ (1, 2, 10.); (1, 3, 2.); (2, 3, 3.); (4, 5, 4.) ] in
  let order = ref [] in
  let _ =
    Merge_driver.run ~graph:g
      ~init:(fun p -> [ p ])
      ~merge:(fun a b ->
        order := (List.sort compare (a @ b)) :: !order;
        a @ b)
  in
  match List.rev !order with
  | first :: second :: _ ->
    Alcotest.(check (list int)) "1-2 first" [ 1; 2 ] first;
    Alcotest.(check (list int)) "combined edge beats 4-5" [ 1; 2; 3 ] second
  | _ -> Alcotest.fail "expected >= 2 merges"

let test_driver_disconnected_components () =
  let g = Graph.of_edges [ (1, 2, 1.); (5, 6, 2.) ] in
  let groups = run_driver g in
  Alcotest.(check int) "two groups" 2 (List.length groups)

let test_driver_deterministic () =
  let mk () = Graph.of_edges [ (0, 1, 1.); (1, 2, 1.); (2, 3, 1.); (3, 0, 1.) ] in
  let a = run_driver (mk ()) and b = run_driver (mk ()) in
  Alcotest.(check bool) "same result" true (a = b)

let prop_driver_partitions =
  QCheck.Test.make ~name:"driver groups partition the node set" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 40) (pair (int_range 0 15) (int_range 0 15)))
    (fun pairs ->
      let g = Graph.create () in
      List.iter (fun (u, v) -> if u <> v then Graph.add_edge g u v 1.) pairs;
      let groups = run_driver g in
      let all = List.concat groups in
      let sorted = List.sort compare all in
      sorted = Graph.nodes g)

(* --- PH ----------------------------------------------------------------- *)

let test_ph_pairs_heaviest_adjacent () =
  (* p0 calls p1 heavily: they must be adjacent in the PH order. *)
  let program = Program.of_sizes [| 100; 100; 100; 100 |] in
  let wcg = Graph.of_edges [ (0, 1, 100.); (2, 3, 1.) ] in
  let order = Array.to_list (Ph.order ~wcg program) in
  let rec adjacent = function
    | a :: b :: _ when (a = 0 && b = 1) || (a = 1 && b = 0) -> true
    | _ :: rest -> adjacent rest
    | [] -> false
  in
  Alcotest.(check bool) "0 and 1 adjacent" true (adjacent order)

let test_ph_order_is_permutation () =
  let program = Program.of_sizes (Array.make 10 64) in
  let wcg = Graph.of_edges [ (0, 3, 5.); (3, 7, 4.); (1, 2, 3.) ] in
  let order = Ph.order ~wcg program in
  let sorted = Array.copy order in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 10 (fun i -> i)) sorted

let test_ph_chain_combination_distance () =
  (* Chains [0;1] (via 0-1:10) and [2;3] (via 2-3:9); cross edge 1-2:5.
     The AB combination [0;1;2;3] puts 1 and 2 adjacent: distance 0. *)
  let program = Program.of_sizes [| 100; 100; 100; 100 |] in
  let wcg = Graph.of_edges [ (0, 1, 10.); (2, 3, 9.); (1, 2, 5.) ] in
  let order = Array.to_list (Ph.order ~wcg program) in
  Alcotest.(check (list int)) "AB combination" [ 0; 1; 2; 3 ] order

let test_ph_reversal_choice () =
  (* Chains [0;1] and [2;3] with cross edge 0-2: combining needs reversal
     A'B = [1;0;2;3] to make 0 and 2 adjacent. *)
  let program = Program.of_sizes [| 100; 100; 100; 100 |] in
  let wcg = Graph.of_edges [ (0, 1, 10.); (2, 3, 9.); (0, 2, 5.) ] in
  let order = Array.to_list (Ph.order ~wcg program) in
  Alcotest.(check (list int)) "A'B combination" [ 1; 0; 2; 3 ] order

let test_ph_unprofiled_appended () =
  let program = Program.of_sizes (Array.make 5 64) in
  let wcg = Graph.of_edges [ (3, 4, 2.) ] in
  let order = Array.to_list (Ph.order ~wcg program) in
  Alcotest.(check (list int)) "cold procs in source order at end" [ 0; 1; 2 ]
    (List.filteri (fun i _ -> i >= 2) order)

let test_ph_layout_contiguous () =
  let program = Program.of_sizes [| 100; 50 |] in
  let wcg = Graph.of_edges [ (0, 1, 3.) ] in
  let layout = Ph.place ~wcg program in
  Alcotest.(check bool) "dense span" true (Layout.span layout <= 152)

(* --- Cost / merge_nodes ------------------------------------------------- *)

let line_size = 32

let test_cost_first_zero_after_p () =
  (* Two single-line procedures with a chunk TRG edge: the first zero-cost
     offset for q is right after p — merge_nodes reproduces a PH chain
     (Section 4.2, note 3). *)
  let program = Program.of_sizes [| 32; 32 |] in
  let chunks = Chunk.make ~chunk_size:256 program in
  let trg = Graph.of_edges [ (0, 1, 10.) ] in
  let cost =
    Cost.offsets_cost (Cost.Trg_chunks { chunks; trg }) program ~line_size ~n_sets:8
      ~n1:(Node.singleton 0) ~n2:(Node.singleton 1)
  in
  Alcotest.(check bool) "offset 0 conflicts" true (cost.(0) > 0.);
  Alcotest.(check (float 1e-9)) "offset 1 free" 0. cost.(1);
  Alcotest.(check int) "best = first free" 1 (Cost.best_offset cost)

let test_cost_respects_sizes () =
  (* p is 3 lines long: q's first free offset is 3. *)
  let program = Program.of_sizes [| 96; 32 |] in
  let chunks = Chunk.make ~chunk_size:256 program in
  let trg = Graph.of_edges [ (0, 1, 10.) ] in
  let cost =
    Cost.offsets_cost (Cost.Trg_chunks { chunks; trg }) program ~line_size ~n_sets:8
      ~n1:(Node.singleton 0) ~n2:(Node.singleton 1)
  in
  Alcotest.(check int) "offset 3" 3 (Cost.best_offset cost);
  Alcotest.(check bool) "offsets 0..2 conflict" true
    (cost.(0) > 0. && cost.(1) > 0. && cost.(2) > 0.)

let test_cost_chunked_overlap_allowed () =
  (* A two-chunk procedure whose SECOND chunk never interleaves with q:
     overlapping q with that cold chunk is free, so q can sit at the cold
     chunk's lines instead of after the whole procedure. *)
  let program = Program.of_sizes [| 512; 32 |] in
  let chunks = Chunk.make ~chunk_size:256 program in
  (* chunk ids: proc0 -> 0,1; proc1 -> 2.  Edge only chunk0-q. *)
  let trg = Graph.of_edges [ (0, 2, 10.) ] in
  let cost =
    Cost.offsets_cost (Cost.Trg_chunks { chunks; trg }) program ~line_size ~n_sets:32
      ~n1:(Node.singleton 0) ~n2:(Node.singleton 1)
  in
  (* Lines 0..7 hold the hot chunk (conflict); line 8 (cold chunk) is free. *)
  Alcotest.(check bool) "hot lines conflict" true (cost.(0) > 0. && cost.(7) > 0.);
  Alcotest.(check int) "first free is 8, inside proc0" 8 (Cost.best_offset cost)

let test_cost_wcg_model_whole_proc () =
  (* Same geometry as above but with the WCG model at procedure granularity:
     all 16 lines of p conflict, so q lands after the whole procedure. *)
  let program = Program.of_sizes [| 512; 32 |] in
  let wcg = Graph.of_edges [ (0, 1, 10.) ] in
  let cost =
    Cost.offsets_cost (Cost.Wcg_procs { wcg }) program ~line_size ~n_sets:32
      ~n1:(Node.singleton 0) ~n2:(Node.singleton 1)
  in
  Alcotest.(check int) "after whole proc" 16 (Cost.best_offset cost)

let test_cost_sa_pairs_model () =
  (* D(p,{r,s}) with p alone in n1 and the pair in n2 sharing a set: cost
     lands exactly where p's line meets theirs. *)
  let program = Program.of_sizes [| 32; 32; 32 |] in
  let chunks = Chunk.make ~chunk_size:256 program in
  let db = Trg_profile.Pair_db.create () in
  (* chunk ids equal proc ids here (one chunk each). *)
  Trg_profile.Pair_db.add db ~p:0 ~r:1 ~s:2 5.;
  let n2 = Node.union ~shift:0 ~modulo:4 (Node.singleton 1) (Node.singleton 2) in
  (* r and s both at set 0 in n2's frame; p at set 0 in n1.  Conflict occurs
     at relative offset 0 only. *)
  let cost =
    Cost.offsets_cost (Cost.Sa_pairs { chunks; db }) program ~line_size ~n_sets:4
      ~n1:(Node.singleton 0) ~n2
  in
  Alcotest.(check bool) "offset 0 charged" true (cost.(0) > 0.);
  Alcotest.(check (float 1e-9)) "offset 1 free" 0. cost.(1);
  (* If r and s occupy different sets, no offset is charged. *)
  let n2' = Node.union ~shift:1 ~modulo:4 (Node.singleton 1) (Node.singleton 2) in
  let cost' =
    Cost.offsets_cost (Cost.Sa_pairs { chunks; db }) program ~line_size ~n_sets:4
      ~n1:(Node.singleton 0) ~n2:n2'
  in
  Alcotest.(check (float 1e-9)) "split pair never charged" 0.
    (Array.fold_left ( +. ) 0. cost')

let test_iter_lines_caps_at_n_sets () =
  let seen = ref [] in
  Cost.iter_lines ~line_size:32 ~n_sets:4 ~start_set:2 ~bytes:(32 * 10) (fun l ->
      seen := l :: !seen);
  Alcotest.(check int) "at most n_sets lines" 4 (List.length !seen);
  Alcotest.(check (list int)) "wraps" [ 2; 3; 0; 1 ] (List.rev !seen)

(* --- Linearize ---------------------------------------------------------- *)

let n_sets = 8

let test_linearize_realises_offsets () =
  let program = Program.of_sizes [| 64; 64; 64 |] in
  let layout =
    Linearize.layout program ~line_size ~n_sets
      ~placed:[ (0, 0); (1, 4); (2, 6) ]
      ~filler:[||]
  in
  List.iter
    (fun (p, target) ->
      Alcotest.(check int)
        (Printf.sprintf "proc %d at set %d" p target)
        target
        (Layout.address layout p / line_size mod n_sets))
    [ (0, 0); (1, 4); (2, 6) ]

let test_linearize_contiguous_when_chained () =
  (* Offsets forming a chain (0 at 0 occupying 2 lines, 1 at 2, 2 at 4):
     layout should be exactly contiguous, PH-style. *)
  let program = Program.of_sizes [| 64; 64; 64 |] in
  let layout =
    Linearize.layout program ~line_size ~n_sets
      ~placed:[ (0, 0); (1, 2); (2, 4) ]
      ~filler:[||]
  in
  Alcotest.(check int) "p1 right after p0" 64 (Layout.address layout 1);
  Alcotest.(check int) "p2 right after p1" 128 (Layout.address layout 2)

let test_linearize_fills_gaps () =
  (* Popular at sets 0 and 4 with 64-byte procs leaves a 2-line gap; a
     64-byte filler fits exactly. *)
  let program = Program.of_sizes [| 64; 64; 64 |] in
  let layout =
    Linearize.layout program ~line_size ~n_sets
      ~placed:[ (0, 0); (1, 4) ]
      ~filler:[| 2 |]
  in
  Alcotest.(check int) "filler in the gap" 64 (Layout.address layout 2);
  Alcotest.(check int) "popular at its set" 4
    (Layout.address layout 1 / line_size mod n_sets)

let test_linearize_appends_leftover_fillers () =
  let program = Program.of_sizes [| 64; 200; 100 |] in
  let layout =
    Linearize.layout program ~line_size ~n_sets ~placed:[ (0, 0) ] ~filler:[| 1; 2 |]
  in
  Alcotest.(check bool) "all placed" true (Layout.span layout >= 364)

let test_linearize_rejects_missing_proc () =
  let program = Program.of_sizes [| 64; 64 |] in
  Alcotest.(check bool) "missing proc rejected" true
    (try
       ignore (Linearize.layout program ~line_size ~n_sets ~placed:[ (0, 0) ] ~filler:[||]);
       false
     with Invalid_argument _ -> true)

let prop_linearize_valid_layouts =
  QCheck.Test.make ~name:"linearize always yields valid full layouts" ~count:100
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 10) (int_range 0 7))
        (list_of_size (Gen.int_range 0 10) (int_range 1 300)))
    (fun (offsets, filler_sizes) ->
      let n_placed = List.length offsets in
      let sizes =
        Array.of_list (List.map (fun _ -> 64) offsets @ filler_sizes)
      in
      let program = Program.of_sizes sizes in
      let placed = List.mapi (fun i off -> (i, off)) offsets in
      let filler =
        Array.init (List.length filler_sizes) (fun i -> n_placed + i)
      in
      let layout = Linearize.layout program ~line_size ~n_sets ~placed ~filler in
      (* of_addresses validated non-overlap; check target sets too. *)
      List.for_all
        (fun (p, off) -> Layout.address layout p / line_size mod n_sets = off)
        placed)

(* --- GBSC end to end ----------------------------------------------------- *)

let toy_config =
  { (Gbsc.default_config ~cache:Toy.cache ()) with Gbsc.chunk_size = 32; min_refs = 1 }

let miss_rate layout trace =
  Sim.miss_rate (Sim.simulate Toy.program layout Toy.cache trace)

let test_gbsc_toy_blocked_shares_xy () =
  (* Trace #2: X and Y never interleave; the paper says they should share a
     cache line while Z gets its own.  GBSC must find a layout with fewer
     misses than the bad layout that splits X and Y. *)
  let trace = Toy.trace_blocked () in
  let layout = Gbsc.run toy_config Toy.program trace in
  let x_set = Layout.address layout Toy.x / 32 mod 3 in
  let y_set = Layout.address layout Toy.y / 32 mod 3 in
  let z_set = Layout.address layout Toy.z / 32 mod 3 in
  let m_set = Layout.address layout Toy.m / 32 mod 3 in
  Alcotest.(check int) "X and Y share a line" x_set y_set;
  Alcotest.(check bool) "Z conflicts with neither M nor X/Y" true
    (z_set <> m_set && z_set <> x_set)

let test_gbsc_toy_blocked_beats_alternating_layout () =
  let trace = Toy.trace_blocked () in
  let layout = Gbsc.run toy_config Toy.program trace in
  (* An adversarial layout: X and Z share a line (both interleave). *)
  let bad = Layout.of_addresses Toy.program [| 0; 32; 64; 32 + 96 |] in
  Alcotest.(check bool) "GBSC beats bad layout" true
    (miss_rate layout trace < miss_rate bad trace)

let test_gbsc_toy_traces_value_layouts_differently () =
  (* The heart of the paper's Figure 1: the same WCG, but the blocked trace
     strongly rewards X and Y sharing a line, while the alternating trace
     is indifferent at best.  Compare the share layout (X, Y on one line,
     Z alone) against the split layout (X, Y apart, Z sharing X). *)
  let share = Layout.of_addresses Toy.program [| 0; 32; 128; 64 |] in
  let split = Layout.of_addresses Toy.program [| 0; 32; 64; 128 |] in
  let mr layout trace = miss_rate layout trace in
  let blocked = Toy.trace_blocked () in
  let alternating = Toy.trace_alternating () in
  Alcotest.(check bool) "blocked: sharing wins by >2x" true
    (mr share blocked *. 2. < mr split blocked);
  let ratio = mr share alternating /. mr split alternating in
  Alcotest.(check bool)
    (Printf.sprintf "alternating: near tie (ratio %.2f)" ratio)
    true
    (ratio > 0.7 && ratio < 1.5);
  (* GBSC trained on the blocked trace must pick the sharing arrangement. *)
  let lay_blk = Gbsc.run toy_config Toy.program blocked in
  Alcotest.(check bool) "GBSC(blocked) at least as good as share layout" true
    (mr lay_blk blocked <= mr share blocked +. 1e-9)

let test_gbsc_deterministic () =
  let w = Trg_synth.Gen.generate (Trg_synth.Bench.find "small") in
  let train = Trg_synth.Gen.train_trace w in
  let config = Gbsc.default_config () in
  let a = Gbsc.run config w.Trg_synth.Gen.program train in
  let b = Gbsc.run config w.Trg_synth.Gen.program train in
  Alcotest.(check (array int)) "same layout" (Layout.addresses a) (Layout.addresses b)

let test_gbsc_improves_small_benchmark () =
  let w = Trg_synth.Gen.generate (Trg_synth.Bench.find "small") in
  let program = w.Trg_synth.Gen.program in
  let train = Trg_synth.Gen.train_trace w in
  let test = Trg_synth.Gen.test_trace w in
  let config = Gbsc.default_config () in
  let cache = config.Gbsc.cache in
  let mr layout = Sim.miss_rate (Sim.simulate program layout cache test) in
  let default = mr (Layout.default program) in
  let gbsc = mr (Gbsc.run config program train) in
  Alcotest.(check bool)
    (Printf.sprintf "GBSC %.4f < default %.4f" gbsc default)
    true (gbsc < default)

let test_gbsc_beats_ph_and_hkc_on_small () =
  let w = Trg_synth.Gen.generate (Trg_synth.Bench.find "small") in
  let program = w.Trg_synth.Gen.program in
  let train = Trg_synth.Gen.train_trace w in
  let test = Trg_synth.Gen.test_trace w in
  let config = Gbsc.default_config () in
  let cache = config.Gbsc.cache in
  let mr layout = Sim.miss_rate (Sim.simulate program layout cache test) in
  let prof = Gbsc.profile config program train in
  let wcg = Wcg.build train in
  let gbsc = mr (Gbsc.place program prof) in
  let ph = mr (Ph.place ~wcg program) in
  let hkc = mr (Hkc.place config program ~wcg ~popularity:prof.Gbsc.popularity) in
  Alcotest.(check bool)
    (Printf.sprintf "GBSC %.4f <= HKC %.4f" gbsc hkc)
    true (gbsc <= hkc);
  Alcotest.(check bool)
    (Printf.sprintf "GBSC %.4f <= PH %.4f" gbsc ph)
    true (gbsc <= ph)

let test_gbsc_all_procs_placed () =
  let w = Trg_synth.Gen.generate (Trg_synth.Bench.find "small") in
  let program = w.Trg_synth.Gen.program in
  let layout = Gbsc.run (Gbsc.default_config ()) program (Trg_synth.Gen.train_trace w) in
  Alcotest.(check int) "all addresses assigned" (Program.n_procs program)
    (Array.length (Layout.order layout))

let test_gbsc_config_validation () =
  let config = { (Gbsc.default_config ()) with Gbsc.chunk_size = 100 } in
  Alcotest.(check bool) "chunk/line mismatch rejected" true
    (try
       ignore (Gbsc.profile config Toy.program (Toy.trace_blocked ()));
       false
     with Invalid_argument _ -> true)

(* --- Metric -------------------------------------------------------------- *)

let test_metric_zero_when_no_overlap () =
  let program = Program.of_sizes [| 32; 32 |] in
  let chunks = Chunk.make ~chunk_size:256 program in
  let trg = Graph.of_edges [ (0, 1, 10.) ] in
  let cache = Config.make ~size:256 ~line_size:32 ~assoc:1 in
  let apart = Layout.of_addresses program [| 0; 32 |] in
  Alcotest.(check (float 1e-9)) "no overlap, no cost" 0.
    (Metric.trg_place program ~chunks ~trg ~cache apart)

let test_metric_counts_overlap () =
  let program = Program.of_sizes [| 32; 32 |] in
  let chunks = Chunk.make ~chunk_size:256 program in
  let trg = Graph.of_edges [ (0, 1, 10.) ] in
  let cache = Config.make ~size:256 ~line_size:32 ~assoc:1 in
  let overlapped = Layout.of_addresses program [| 0; 256 |] in
  Alcotest.(check (float 1e-9)) "weight x 1 shared line" 10.
    (Metric.trg_place program ~chunks ~trg ~cache overlapped)

let test_metric_wcg_multi_line () =
  let program = Program.of_sizes [| 64; 64 |] in
  let wcg = Graph.of_edges [ (0, 1, 3.) ] in
  let cache = Config.make ~size:256 ~line_size:32 ~assoc:1 in
  let overlapped = Layout.of_addresses program [| 0; 256 |] in
  (* Both procedures cover lines 0-1: two shared lines. *)
  Alcotest.(check (float 1e-9)) "3 x 2 lines" 6. (Metric.wcg program ~wcg ~cache overlapped)

let test_metric_tracks_misses_on_toy () =
  (* The good layout must have a strictly lower metric than the bad one,
     and the miss rates must agree with that ordering. *)
  let trace = Toy.trace_blocked () in
  let prof = Gbsc.profile toy_config Toy.program trace in
  let chunks = prof.Gbsc.chunks in
  let trg = prof.Gbsc.place.Trg.graph in
  let good = Gbsc.place Toy.program prof in
  let bad = Layout.of_addresses Toy.program [| 0; 32; 64; 32 + 96 |] in
  let metric l = Metric.trg_place Toy.program ~chunks ~trg ~cache:Toy.cache l in
  Alcotest.(check bool) "metric ordering matches miss ordering" true
    (metric good < metric bad && miss_rate good trace < miss_rate bad trace)

let suite =
  [
    Alcotest.test_case "node union shift" `Quick test_node_union_shift;
    Alcotest.test_case "node union wraps" `Quick test_node_union_wraps;
    Alcotest.test_case "driver single edge" `Quick test_driver_single_edge;
    Alcotest.test_case "driver heaviest first" `Quick test_driver_heaviest_first;
    Alcotest.test_case "driver combines parallel edges" `Quick test_driver_combines_parallel_edges;
    Alcotest.test_case "driver disconnected" `Quick test_driver_disconnected_components;
    Alcotest.test_case "driver deterministic" `Quick test_driver_deterministic;
    QCheck_alcotest.to_alcotest prop_driver_partitions;
    Alcotest.test_case "PH heaviest adjacent" `Quick test_ph_pairs_heaviest_adjacent;
    Alcotest.test_case "PH order permutation" `Quick test_ph_order_is_permutation;
    Alcotest.test_case "PH AB combination" `Quick test_ph_chain_combination_distance;
    Alcotest.test_case "PH reversal choice" `Quick test_ph_reversal_choice;
    Alcotest.test_case "PH unprofiled appended" `Quick test_ph_unprofiled_appended;
    Alcotest.test_case "PH layout contiguous" `Quick test_ph_layout_contiguous;
    Alcotest.test_case "cost first zero after p" `Quick test_cost_first_zero_after_p;
    Alcotest.test_case "cost respects sizes" `Quick test_cost_respects_sizes;
    Alcotest.test_case "cost chunked overlap allowed" `Quick test_cost_chunked_overlap_allowed;
    Alcotest.test_case "cost WCG whole proc" `Quick test_cost_wcg_model_whole_proc;
    Alcotest.test_case "cost SA pairs" `Quick test_cost_sa_pairs_model;
    Alcotest.test_case "iter_lines caps" `Quick test_iter_lines_caps_at_n_sets;
    Alcotest.test_case "linearize realises offsets" `Quick test_linearize_realises_offsets;
    Alcotest.test_case "linearize contiguous chains" `Quick test_linearize_contiguous_when_chained;
    Alcotest.test_case "linearize fills gaps" `Quick test_linearize_fills_gaps;
    Alcotest.test_case "linearize appends leftovers" `Quick test_linearize_appends_leftover_fillers;
    Alcotest.test_case "linearize rejects missing" `Quick test_linearize_rejects_missing_proc;
    QCheck_alcotest.to_alcotest prop_linearize_valid_layouts;
    Alcotest.test_case "GBSC toy: blocked shares X/Y" `Quick test_gbsc_toy_blocked_shares_xy;
    Alcotest.test_case "GBSC toy: beats bad layout" `Quick test_gbsc_toy_blocked_beats_alternating_layout;
    Alcotest.test_case "GBSC toy: trace-dependent value" `Quick test_gbsc_toy_traces_value_layouts_differently;
    Alcotest.test_case "GBSC deterministic" `Quick test_gbsc_deterministic;
    Alcotest.test_case "GBSC improves small benchmark" `Quick test_gbsc_improves_small_benchmark;
    Alcotest.test_case "GBSC beats PH and HKC (small)" `Quick test_gbsc_beats_ph_and_hkc_on_small;
    Alcotest.test_case "GBSC places all procs" `Quick test_gbsc_all_procs_placed;
    Alcotest.test_case "GBSC config validation" `Quick test_gbsc_config_validation;
    Alcotest.test_case "metric zero when apart" `Quick test_metric_zero_when_no_overlap;
    Alcotest.test_case "metric counts overlap" `Quick test_metric_counts_overlap;
    Alcotest.test_case "metric WCG multi-line" `Quick test_metric_wcg_multi_line;
    Alcotest.test_case "metric tracks misses (toy)" `Quick test_metric_tracks_misses_on_toy;
  ]

(* --- Hwu-Chang baseline ---------------------------------------------------- *)

module Hwu_chang = Trg_place.Hwu_chang

let test_hwu_chang_dfs_order () =
  (* 1 is hottest (incident 18); its heaviest edge leads to 0 (10), whose
     only unvisited neighbour is 3 (5); unwinding back to 1 picks up 2;
     edge-less 4 trails in source order. *)
  let program = Program.of_sizes (Array.make 5 64) in
  let wcg = Graph.of_edges [ (0, 1, 10.); (1, 2, 8.); (0, 3, 5.) ] in
  Alcotest.(check (array int)) "dfs order" [| 1; 0; 3; 2; 4 |]
    (Hwu_chang.order ~wcg program)

let test_hwu_chang_order_is_permutation () =
  let program = Program.of_sizes (Array.make 8 64) in
  let wcg = Graph.of_edges [ (1, 5, 3.); (5, 2, 7.); (0, 7, 1.) ] in
  let order = Hwu_chang.order ~wcg program in
  let sorted = Array.copy order in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 8 (fun i -> i)) sorted

let test_hwu_chang_competitive_on_small () =
  let w = Trg_synth.Gen.generate (Trg_synth.Bench.find "small") in
  let program = w.Trg_synth.Gen.program in
  let train = Trg_synth.Gen.train_trace w in
  let test = Trg_synth.Gen.test_trace w in
  let cache = Config.default in
  let mr layout = Sim.miss_rate (Sim.simulate program layout cache test) in
  let hc = mr (Hwu_chang.place ~wcg:(Wcg.build train) program) in
  let default = mr (Layout.default program) in
  Alcotest.(check bool)
    (Printf.sprintf "Hwu-Chang %.4f beats default %.4f" hc default)
    true (hc < default)

let suite =
  suite
  @ [
      Alcotest.test_case "hwu-chang dfs order" `Quick test_hwu_chang_dfs_order;
      Alcotest.test_case "hwu-chang permutation" `Quick test_hwu_chang_order_is_permutation;
      Alcotest.test_case "hwu-chang competitive" `Quick test_hwu_chang_competitive_on_small;
    ]

(* End-to-end invariant: the heaviest TRG_select pair never overlaps in the
   cache under GBSC (whenever the two procedures fit beside each other). *)
let test_gbsc_heaviest_pair_disjoint () =
  let w = Trg_synth.Gen.generate (Trg_synth.Bench.find "small") in
  let program = w.Trg_synth.Gen.program in
  let train = Trg_synth.Gen.train_trace w in
  let config = Gbsc.default_config () in
  let prof = Gbsc.profile config program train in
  let layout = Gbsc.place program prof in
  let heaviest =
    Array.fold_left
      (fun best (u, v, wt) ->
        match best with
        | Some (_, _, bw) when bw >= wt -> best
        | _ -> Some (u, v, wt))
      None
      (Graph.edges prof.Gbsc.select.Trg.graph)
  in
  match heaviest with
  | None -> Alcotest.fail "no TRG edges"
  | Some (p, q, _) ->
    let n_sets = 256 and line = 32 in
    let sets proc =
      let start = Layout.address layout proc / line in
      let lines = (Program.size program proc + line - 1) / line in
      List.init (min lines n_sets) (fun j -> (start + j) mod n_sets)
    in
    let sp = sets p and sq = sets q in
    if List.length sp + List.length sq <= n_sets then
      List.iter
        (fun s ->
          if List.mem s sq then
            Alcotest.failf "heaviest pair (%s, %s) overlaps at set %d"
              (Program.name program p) (Program.name program q) s)
        sp

let suite =
  suite
  @ [ Alcotest.test_case "GBSC heaviest pair disjoint" `Quick test_gbsc_heaviest_pair_disjoint ]
