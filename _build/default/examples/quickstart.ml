(* Quickstart: place a hand-written five-procedure program.

   The program has a dispatcher [main] that alternates between two workers
   [alpha] and [beta] and always finishes an iteration in [emit]; [cold] is
   never executed.  On a tiny 4-line cache the default source-order layout
   makes [alpha] and [beta] collide with [emit]; GBSC, fed the trace, finds
   an arrangement without conflicts.

   Run with: dune exec examples/quickstart.exe *)

module Program = Trg_program.Program
module Proc = Trg_program.Proc
module Layout = Trg_program.Layout
module Event = Trg_trace.Event
module Trace = Trg_trace.Trace
module Config = Trg_cache.Config
module Sim = Trg_cache.Sim
module Gbsc = Trg_place.Gbsc

(* 1. Describe the static program: names and code sizes in bytes.  As in
   real source files, a never-executed helper sits between the hot
   procedures, so the source-order layout wraps around the tiny cache and
   [beta] lands on [main]'s line. *)
let main = 0
and cold = 1
and alpha = 2
and beta = 3
and emit = 4

let program =
  Program.make
    [|
      Proc.make ~id:main ~name:"main" ~size:32;
      Proc.make ~id:cold ~name:"cold" ~size:64;
      Proc.make ~id:alpha ~name:"alpha" ~size:32;
      Proc.make ~id:beta ~name:"beta" ~size:32;
      Proc.make ~id:emit ~name:"emit" ~size:32;
    |]

(* 2. The target cache: four 32-byte lines, direct-mapped. *)
let cache = Config.make ~size:128 ~line_size:32 ~assoc:1

(* 3. A profile trace: 100 iterations of
      main -> (alpha | beta) -> main -> emit -> main. *)
let trace =
  let b = Trace.Builder.create () in
  let call proc = Trace.Builder.add b (Event.make ~kind:Event.Enter ~proc ~offset:0 ~len:32) in
  let resume proc = Trace.Builder.add b (Event.make ~kind:Event.Resume ~proc ~offset:0 ~len:32) in
  call main;
  for i = 0 to 99 do
    call (if i mod 2 = 0 then alpha else beta);
    resume main;
    call emit;
    resume main
  done;
  Trace.Builder.build b

let miss_rate layout =
  Sim.miss_rate (Sim.simulate program layout cache trace)

let describe name layout =
  Printf.printf "%s layout (miss rate %.2f%%):\n" name (100. *. miss_rate layout);
  Array.iter
    (fun p ->
      Printf.printf "  0x%03x  line %d  %s\n" (Layout.address layout p)
        (Layout.cache_line_of layout ~line_size:32 ~n_lines:4 p)
        (Program.name program p))
    (Layout.order layout);
  print_newline ()

let () =
  (* 4. The baseline: procedures in source order. *)
  describe "default" (Layout.default program);
  (* 5. Profile the trace and let GBSC choose the layout.  The config
     bundles the cache, the chunk size for fine-grained temporal profiling,
     the Q byte bound and the popularity thresholds. *)
  let config =
    { (Gbsc.default_config ~cache ()) with Gbsc.chunk_size = 32; min_refs = 1 }
  in
  let layout = Gbsc.run config program trace in
  describe "GBSC" layout;
  print_endline
    "In source order the cold helper pushes beta onto main's cache line and";
  print_endline
    "every call costs two misses; GBSC gives the four hot procedures the";
  print_endline "four distinct lines and parks the cold helper in the leftovers."
