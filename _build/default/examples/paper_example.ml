(* The paper's Figures 1-3, executed.

   A main procedure M calls X or Y depending on a condition, then always
   calls Z; every procedure is one 32-byte cache line and the cache has
   three lines.  Two runs with the same call counts — the condition
   alternating every iteration (trace #1) vs true for the first half of the
   run (trace #2) — produce the SAME weighted call graph but different
   temporal relationship graphs, and they reward different layouts.

   Run with: dune exec examples/paper_example.exe *)

module Toy = Trg_synth.Toy
module Graph = Trg_profile.Graph
module Wcg = Trg_profile.Wcg
module Trg = Trg_profile.Trg
module Qset = Trg_profile.Qset
module Layout = Trg_program.Layout
module Program = Trg_program.Program
module Sim = Trg_cache.Sim
module Gbsc = Trg_place.Gbsc

let name p = Program.name Toy.program p

let print_graph label g =
  Printf.printf "%s:\n" label;
  Graph.iter_edges
    (fun u v w -> Printf.printf "  %s -- %s : %g\n" (name u) (name v) w)
    g;
  print_newline ()

let miss_rate layout trace =
  Sim.miss_rate (Sim.simulate Toy.program layout Toy.cache trace)

let line_of layout p = Layout.address layout p / 32 mod 3

let show_placement label layout =
  Printf.printf "%s: " label;
  List.iter
    (fun p -> Printf.printf "%s->line%d " (name p) (line_of layout p))
    [ Toy.m; Toy.x; Toy.y; Toy.z ];
  print_newline ()

let () =
  let trace1 = Toy.trace_alternating () in
  let trace2 = Toy.trace_blocked () in

  print_endline "== Figure 1: one WCG for two very different executions ==\n";
  print_graph "WCG of trace #1 (cond alternates)" (Wcg.call_counts trace1);
  print_graph "WCG of trace #2 (cond blocked: 40x true then 40x false)"
    (Wcg.call_counts trace2);

  print_endline "== Figure 2: the TRGs tell the two traces apart ==\n";
  let capacity = 2 * Toy.cache.Trg_cache.Config.size in
  let trg1 = (Trg.build_select ~capacity_bytes:capacity Toy.program trace1).Trg.graph in
  let trg2 = (Trg.build_select ~capacity_bytes:capacity Toy.program trace2).Trg.graph in
  print_graph "TRG of trace #1 (X-Y interleave: edge X--Y exists)" trg1;
  print_graph "TRG of trace #2 (X-Z and Y-Z interleave, X-Y does not)" trg2;

  print_endline "== Figure 3: the ordered set Q while processing M X M Z M ... ==\n";
  let q = Qset.create ~capacity_bytes:capacity ~size_of:(fun _ -> 32) in
  List.iter
    (fun p ->
      let incremented = ref [] in
      ignore (Qset.reference q p ~between:(fun inter -> incremented := inter :: !incremented));
      Printf.printf "  process %s -> Q = [%s]%s\n" (name p)
        (String.concat "; " (List.map name (Qset.members q)))
        (match !incremented with
        | [] -> ""
        | l ->
          "   increments: "
          ^ String.concat ", "
              (List.map (fun i -> Printf.sprintf "W(%s,%s)" (name p) (name i)) l)))
    [ Toy.m; Toy.x; Toy.m; Toy.z; Toy.m; Toy.x ];
  print_newline ();

  print_endline "== Placement: the same profile counts, different best layouts ==\n";
  let config =
    { (Gbsc.default_config ~cache:Toy.cache ()) with Gbsc.chunk_size = 32; min_refs = 1 }
  in
  let lay1 = Gbsc.run config Toy.program trace1 in
  let lay2 = Gbsc.run config Toy.program trace2 in
  show_placement "GBSC for trace #1" lay1;
  show_placement "GBSC for trace #2" lay2;
  print_newline ();
  (* Cross-evaluate: each layout simulated under both traces. *)
  Printf.printf "%-22s %12s %12s\n" "layout \\ trace" "trace #1" "trace #2";
  List.iter
    (fun (label, layout) ->
      Printf.printf "%-22s %11.2f%% %11.2f%%\n" label
        (100. *. miss_rate layout trace1)
        (100. *. miss_rate layout trace2))
    [ ("GBSC(trace #1)", lay1); ("GBSC(trace #2)", lay2) ];
  print_newline ();
  print_endline
    "Trained on trace #2, GBSC lets X and Y share a line (they never";
  print_endline
    "interleave) and gives Z its own line — the arrangement the paper";
  print_endline "argues a WCG-driven algorithm cannot discover."
