(* The whole toolchain, stacked.

   Starting from the vortex-like workload, apply each optimisation layer in
   turn and watch the instruction-cache miss rate fall:

     1. default (source-order) layout
     2. + GBSC procedure placement            (the paper's contribution)
     3. + procedure splitting                 (paper conclusion)
     4. + intra-procedure block reordering    ("any granularity")

   Run with: dune exec examples/full_pipeline.exe *)

module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Chunk = Trg_program.Chunk
module Sim = Trg_cache.Sim
module Tstats = Trg_trace.Tstats
module Chunk_counts = Trg_profile.Chunk_counts
module Gbsc = Trg_place.Gbsc
module Split = Trg_place.Split
module Block_reorder = Trg_place.Block_reorder
module Gen = Trg_synth.Gen
module Bench = Trg_synth.Bench
module Table = Trg_util.Table

let () =
  let shape = Bench.find "vortex" in
  Printf.printf "generating %s...\n%!" shape.Trg_synth.Shape.name;
  let w = Gen.generate shape in
  let program = w.Gen.program in
  let train = Gen.train_trace w in
  let test = Gen.test_trace w in
  let config = Gbsc.default_config () in
  let cache = config.Gbsc.cache in
  let mr prog layout trace = Sim.miss_rate (Sim.simulate prog layout cache trace) in
  let report = ref [] in
  let note label v = report := (label, v) :: !report in

  (* 1. Baseline. *)
  note "default layout" (mr program (Layout.default program) test);

  (* 2. GBSC placement. *)
  note "GBSC" (mr program (Gbsc.run config program train) test);

  (* 3. Splitting below GBSC: separate cold chunks, remap, re-place. *)
  let chunks = Chunk.make ~chunk_size:config.Gbsc.chunk_size program in
  let tstats = Tstats.compute ~n_procs:(Program.n_procs program) train in
  let split =
    Split.split program chunks
      ~chunk_counts:(Chunk_counts.compute chunks train)
      ~enter_counts:tstats.Tstats.enter_counts
  in
  let sprogram = Split.program split in
  let strain = Split.remap_trace split train in
  let stest = Split.remap_trace split test in
  Printf.printf "split %d procedures (%s of cold code)\n%!" (Split.n_split split)
    (Table.fmt_bytes (Split.cold_bytes split));
  note "GBSC + splitting" (mr sprogram (Gbsc.run config sprogram strain) stest);

  (* 4. Block reordering below both: chain hot paths inside each (split)
     procedure, then place the result. *)
  let reorder = Block_reorder.build sprogram strain in
  let rtrain = Block_reorder.remap_trace reorder strain in
  let rtest = Block_reorder.remap_trace reorder stest in
  Printf.printf "reordered %d procedures internally\n%!"
    (Block_reorder.n_reordered reorder);
  note "GBSC + splitting + block reordering"
    (mr sprogram (Gbsc.run config sprogram rtrain) rtest);

  Table.section "stacked optimisation layers (testing input)";
  Table.print
    ~header:[ "configuration"; "miss rate" ]
    (List.rev_map (fun (label, v) -> [ label; Table.fmt_pct v ]) !report)
