(* A full placement study on the gcc-like workload.

   This walks the complete pipeline the way a compiler/linker integration
   would: generate (stand in for: compile) the program, collect a training
   trace, profile it, place with PH / HKC / GBSC, and evaluate every layout
   on a different input — reporting popularity statistics, working-graph
   sizes, layout footprints and the resulting miss rates.

   Run with: dune exec examples/compiler_workload.exe *)

module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Trace = Trg_trace.Trace
module Tstats = Trg_trace.Tstats
module Graph = Trg_profile.Graph
module Popularity = Trg_profile.Popularity
module Trg = Trg_profile.Trg
module Qset = Trg_profile.Qset
module Gbsc = Trg_place.Gbsc
module Runner = Trg_eval.Runner
module Table = Trg_util.Table
module Bench = Trg_synth.Bench
module Gen = Trg_synth.Gen

let () =
  let shape = Bench.find "gcc" in
  Printf.printf "preparing %s: %d procedures, ~%d KB of text...\n%!"
    shape.Trg_synth.Shape.name shape.Trg_synth.Shape.n_procs
    (shape.Trg_synth.Shape.total_bytes / 1024);
  let r = Runner.prepare shape in
  let program = Runner.program r in
  let stats = Tstats.compute ~n_procs:(Program.n_procs program) r.Runner.train in

  Table.section "workload";
  Printf.printf "procedures: %d (%s of code), training trace: %s block events\n"
    (Program.n_procs program)
    (Table.fmt_bytes (Program.total_size program))
    (Table.fmt_int (Trace.length r.Runner.train));
  Printf.printf "call/return transitions: %s (one every %.1f blocks)\n"
    (Table.fmt_int stats.Tstats.n_transitions)
    (float_of_int stats.Tstats.n_events /. float_of_int stats.Tstats.n_transitions);

  let pop = r.Runner.prof.Gbsc.popularity in
  Printf.printf "popular procedures: %d covering %s of code\n"
    (Popularity.n_popular pop)
    (Table.fmt_bytes pop.Popularity.popular_bytes);
  Printf.printf "hottest five:";
  Array.iteri
    (fun i p -> if i < 5 then Printf.printf " %s" (Program.name program p))
    pop.Popularity.ranked;
  print_newline ();

  Table.section "profile graphs";
  let select = r.Runner.prof.Gbsc.select in
  let place = r.Runner.prof.Gbsc.place in
  Printf.printf "WCG: %d nodes, %d edges\n" (Graph.n_nodes r.Runner.wcg)
    (Graph.n_edges r.Runner.wcg);
  Printf.printf "TRG_select: %d nodes, %d edges (avg Q population %.1f procedures)\n"
    (Graph.n_nodes select.Trg.graph) (Graph.n_edges select.Trg.graph)
    select.Trg.qstats.Qset.avg_entries;
  Printf.printf "TRG_place: %d chunk nodes, %d edges\n"
    (Graph.n_nodes place.Trg.graph)
    (Graph.n_edges place.Trg.graph);
  (* The WCG cannot see sibling interleavings; count TRG_select edges
     between procedures that share no call edge. *)
  let sibling_edges = ref 0 in
  Graph.iter_edges
    (fun u v _ -> if not (Graph.mem_edge r.Runner.wcg u v) then incr sibling_edges)
    select.Trg.graph;
  Printf.printf "TRG_select edges invisible to the WCG: %d of %d\n" !sibling_edges
    (Graph.n_edges select.Trg.graph);

  Table.section "placement comparison (8KB direct-mapped, 32B lines)";
  let layouts =
    [
      ("default", Runner.default_layout r);
      ("random", Layout.random (Trg_util.Prng.create 11) program);
      ("Hwu-Chang", Runner.hwu_chang_layout r);
      ("Torrellas", Runner.torrellas_layout r);
      ("PH", Runner.ph_layout r);
      ("HKC", Runner.hkc_layout r);
      ("GBSC", Runner.gbsc_layout r);
    ]
  in
  Table.print
    ~header:[ "layout"; "train MR"; "test MR"; "footprint"; "gap bytes" ]
    (List.map
       (fun (label, layout) ->
         [
           label;
           Table.fmt_pct (Runner.train_miss_rate r layout);
           Table.fmt_pct (Runner.test_miss_rate r layout);
           Table.fmt_bytes (Layout.span layout);
           Table.fmt_int (Layout.gap_bytes layout program);
         ])
       layouts);
  print_newline ();
  print_endline
    "GBSC spends a few KB of alignment gaps (filled with unpopular code where";
  print_endline
    "possible) to keep temporally-interleaved procedures on distinct cache lines."
