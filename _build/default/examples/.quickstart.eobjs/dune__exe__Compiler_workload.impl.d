examples/compiler_workload.ml: Array List Printf Trg_eval Trg_place Trg_profile Trg_program Trg_synth Trg_trace Trg_util
