examples/setassoc_demo.mli:
