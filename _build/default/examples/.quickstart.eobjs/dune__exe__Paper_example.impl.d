examples/paper_example.ml: List Printf String Trg_cache Trg_place Trg_profile Trg_program Trg_synth
