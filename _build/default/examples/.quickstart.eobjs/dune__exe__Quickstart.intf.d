examples/quickstart.mli:
