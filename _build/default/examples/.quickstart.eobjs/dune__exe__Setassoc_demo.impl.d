examples/setassoc_demo.ml: Format List Printf Trg_cache Trg_eval Trg_place Trg_profile Trg_synth Trg_util
