examples/full_pipeline.ml: List Printf Trg_cache Trg_place Trg_profile Trg_program Trg_synth Trg_trace Trg_util
