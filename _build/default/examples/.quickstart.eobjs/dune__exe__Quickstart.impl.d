examples/quickstart.ml: Array Printf Trg_cache Trg_place Trg_program Trg_trace
