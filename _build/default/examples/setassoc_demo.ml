(* Section 6 in action: placement for a 2-way set-associative cache.

   On an associative cache a single interloper cannot evict a resident
   line, so the direct-mapped conflict metric overstates many conflicts.
   GBSC-SA replaces TRG_place with the pair database D(p, {r, s}) — how
   often a PAIR of blocks appears between consecutive occurrences of p —
   and charges an alignment only when p and both pair members map to the
   same set.

   Run with: dune exec examples/setassoc_demo.exe *)

module Config = Trg_cache.Config
module Pair_db = Trg_profile.Pair_db
module Gbsc = Trg_place.Gbsc
module Gbsc_sa = Trg_place.Gbsc_sa
module Runner = Trg_eval.Runner
module Table = Trg_util.Table
module Bench = Trg_synth.Bench

let () =
  let shape = Bench.find "small" in
  let cache2 = Config.make ~size:8192 ~line_size:32 ~assoc:2 in
  let config2 = Gbsc.default_config ~cache:cache2 () in
  Printf.printf "cache: %s\n%!" (Format.asprintf "%a" Config.pp cache2);
  let r = Runner.prepare ~config:config2 shape in
  let program = Runner.program r in

  (* Build the pair database and show a few statistics. *)
  let sa_prof = Gbsc_sa.profile ~max_between:32 config2 program r.Runner.train in
  Printf.printf "pair database: %s (p, {r,s}) associations\n"
    (Table.fmt_int (Pair_db.n_entries sa_prof.Gbsc_sa.pairs.Pair_db.db));

  (* Compare three placements on the associative cache. *)
  let config_dm =
    Gbsc.default_config ~cache:(Config.make ~size:8192 ~line_size:32 ~assoc:1) ()
  in
  let gbsc_dm = Gbsc.place program (Gbsc.profile config_dm program r.Runner.train) in
  let gbsc_sa = Gbsc_sa.place program sa_prof in
  Table.section "miss rates on the testing input (2-way LRU)";
  Table.print
    ~header:[ "layout"; "test MR" ]
    (List.map
       (fun (label, layout) ->
         [ label; Table.fmt_pct (Runner.test_miss_rate r layout) ])
       [
         ("default", Runner.default_layout r);
         ("PH", Runner.ph_layout r);
         ("GBSC targeting direct-mapped", gbsc_dm);
         ("GBSC-SA (pair database)", gbsc_sa);
       ]);
  print_newline ();
  (* The same layouts on the direct-mapped cache of equal size, to show how
     much conflict the associativity itself absorbs. *)
  let dm = Config.make ~size:8192 ~line_size:32 ~assoc:1 in
  Table.section "same layouts on the 8KB direct-mapped cache";
  Table.print
    ~header:[ "layout"; "test MR" ]
    (List.map
       (fun (label, layout) ->
         [
           label;
           Table.fmt_pct (Runner.miss_rate_on r dm layout r.Runner.test);
         ])
       [
         ("default", Runner.default_layout r);
         ("GBSC targeting direct-mapped", gbsc_dm);
         ("GBSC-SA (pair database)", gbsc_sa);
       ])
