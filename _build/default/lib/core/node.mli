(** Placement nodes: sets of procedures with cache-relative alignments.

    Where Pettis & Hansen keep the procedures of a merged node in a linear
    chain, the paper's algorithm keeps a set of [(procedure, offset)]
    tuples, the offset being the cache-set index of the procedure's first
    line (Section 4.2).  Only the relative alignment matters; all offsets
    are taken modulo the number of cache sets. *)

type t

val singleton : int -> t
(** A node holding one procedure at offset 0. *)

val members : t -> (int * int) list
(** [(proc, offset)] pairs, in the order the procedures were merged in. *)

val procs : t -> int list

val size : t -> int
(** Number of procedures. *)

val offset_of : t -> int -> int
(** Offset of a member procedure.  Raises [Not_found] otherwise. *)

val union : shift:int -> modulo:int -> t -> t -> t
(** [union ~shift ~modulo n1 n2] is the merged node: [n1]'s offsets are
    kept, every offset of [n2] is increased by [shift] (mod [modulo]). *)

val pp : Format.formatter -> t -> unit
