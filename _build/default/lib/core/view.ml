module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Config = Trg_cache.Config

let occupants ?only program (config : Config.t) layout =
  let n_sets = Config.n_sets config in
  let keep =
    match only with
    | Some f -> f
    | None -> fun p -> Program.size program p <= config.Config.size
  in
  let sets = Array.make n_sets [] in
  for p = Program.n_procs program - 1 downto 0 do
    if keep p then begin
      let start = Layout.address layout p / config.Config.line_size in
      let lines = Config.lines_of_bytes config (Program.size program p) in
      for j = 0 to min lines n_sets - 1 do
        let s = (start + j) mod n_sets in
        sets.(s) <- p :: sets.(s)
      done
    end
  done;
  (* Deduplicate (wrap-around can insert a proc twice into one set). *)
  Array.map (List.sort_uniq compare) sets

let cache_map ?only program config layout =
  let sets = occupants ?only program config layout in
  let buf = Buffer.create 4096 in
  let render lo hi occ =
    Buffer.add_string buf
      (Printf.sprintf "  sets %03d-%03d: %s\n" lo hi
         (match occ with
         | [] -> "-"
         | l -> String.concat " " (List.map (Program.name program) l)))
  in
  let n = Array.length sets in
  let run_start = ref 0 in
  for s = 1 to n do
    if s = n || sets.(s) <> sets.(!run_start) then begin
      render !run_start (s - 1) sets.(!run_start);
      run_start := s
    end
  done;
  Buffer.contents buf

let occupancy_summary ?only program config layout =
  let sets = occupants ?only program config layout in
  let max_occ = Array.fold_left (fun acc l -> max acc (List.length l)) 0 sets in
  let counts = Array.make (max_occ + 1) 0 in
  Array.iter (fun l -> counts.(List.length l) <- counts.(List.length l) + 1) sets;
  let buf = Buffer.create 256 in
  Array.iteri
    (fun occ n ->
      if n > 0 then
        Buffer.add_string buf (Printf.sprintf "  %d procedure(s): %d sets\n" occ n))
    counts;
  Buffer.contents buf
