(** Exhaustive optimal placement for tiny programs.

    Enumerates every assignment of cache-set offsets to procedures,
    linearises each, simulates the given trace, and returns the layout
    with the fewest misses.  Exponential ([n_sets ^ n_procs] candidates),
    so usable only for verification-sized programs — which is its purpose:
    checking that the greedy algorithms find true optima on the paper's
    worked examples. *)

val search :
  ?max_layouts:int ->
  Gbsc.config ->
  Trg_program.Program.t ->
  Trg_trace.Trace.t ->
  Trg_program.Layout.t * float
(** [search config program trace] returns the optimal layout and its miss
    rate on [trace].  Raises [Invalid_argument] if the candidate count
    exceeds [max_layouts] (default 1,000,000). *)
