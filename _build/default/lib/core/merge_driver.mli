(** Greedy heaviest-edge merging of a working graph.

    All three placement algorithms (PH, HKC, GBSC) share this outer loop
    (Section 2): repeatedly take the largest-weight edge of the working
    graph, merge the two groups it connects, and combine parallel edges by
    summing their weights, until no edges remain.

    Determinism: ties in edge weight are broken by the order in which the
    tied weights were created (initial edges in canonical [(u, v)] order,
    then updates in merge order), so a given input graph always produces
    the same merge sequence. *)

val run :
  graph:Trg_profile.Graph.t ->
  init:(int -> 'node) ->
  merge:('node -> 'node -> 'node) ->
  'node list
(** [run ~graph ~init ~merge] seeds one group per graph node via [init] and
    returns the remaining groups once all edges are consumed, ordered by
    decreasing group size (number of original nodes), ties by smaller
    representative id.

    [merge n1 n2] must return the merged payload; the driver passes the
    {e larger} group as [n1] (ties: the group whose representative id is
    smaller), so alignment-style merges keep the bigger layout fixed. *)
