module Program = Trg_program.Program
module Config = Trg_cache.Config
module Sim = Trg_cache.Sim

let search ?(max_layouts = 1_000_000) (config : Gbsc.config) program trace =
  let n = Program.n_procs program in
  let n_sets = Config.n_sets config.Gbsc.cache in
  let candidates =
    let rec power acc = function
      | 0 -> acc
      | k ->
        if acc > max_layouts then acc else power (acc * n_sets) (k - 1)
    in
    power 1 n
  in
  if candidates > max_layouts then
    invalid_arg
      (Printf.sprintf "Exhaustive.search: %d^%d layouts exceed the limit" n_sets n);
  let offsets = Array.make n 0 in
  let best = ref None in
  let evaluate () =
    let placed = Array.to_list (Array.mapi (fun p o -> (p, o)) offsets) in
    let layout =
      Linearize.layout program
        ~line_size:config.Gbsc.cache.Config.line_size
        ~n_sets ~placed ~filler:[||]
    in
    let mr = Sim.miss_rate (Sim.simulate program layout config.Gbsc.cache trace) in
    match !best with
    | Some (_, bmr) when bmr <= mr -> ()
    | Some _ | None -> best := Some (layout, mr)
  in
  let rec enumerate p =
    if p = n then evaluate ()
    else
      for o = 0 to n_sets - 1 do
        offsets.(p) <- o;
        enumerate (p + 1)
      done
  in
  enumerate 0;
  match !best with
  | Some (layout, mr) -> (layout, mr)
  | None -> invalid_arg "Exhaustive.search: empty program"
