(** Producing the final linear procedure list (Section 4.3).

    After merging, every popular procedure has a cache-relative alignment
    (a target set index for its first line).  This module realises those
    alignments in a linear address space: starting from the procedure with
    the smallest target offset, it repeatedly appends the unplaced popular
    procedure with the smallest positive cache-line gap from the end of the
    previous one, fills each gap with unpopular procedures (largest-fit),
    and finally appends the remaining unpopular procedures. *)

val layout :
  ?affinity:(int -> int -> float) ->
  Trg_program.Program.t ->
  line_size:int ->
  n_sets:int ->
  placed:(int * int) list ->
  filler:int array ->
  Trg_program.Layout.t
(** [layout program ~line_size ~n_sets ~placed ~filler] builds a complete
    layout.

    [affinity prev q] optionally biases the selection: among candidates
    with the same (smallest) gap, the procedure most related to the
    previously placed one wins, which clusters temporally-related code on
    the same pages (the Section 4.3 paging note).  Cache behaviour is
    unchanged — only gap ties are re-ordered.

    [placed] gives each popular procedure and its target set index; every
    such procedure starts at a line-aligned address whose set index is
    exactly its target.  [filler] lists the remaining procedures (source
    order); they are used to plug gaps (placed at 4-byte alignment) and
    appended at the end.  Every procedure of [program] must appear exactly
    once across [placed] and [filler].

    The gap between consecutive popular procedures p (ending at set
    [p_el]) and q (starting at set [q_sl]) is [(q_sl - p_el) mod n_sets]
    lines; an exact fit ([q_sl = p_el]) is treated as gap 0, which keeps
    chain-equivalent merges contiguous. *)
