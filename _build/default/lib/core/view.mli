(** Human-readable views of a layout's cache mapping.

    Debugging aid: renders which procedures occupy which cache sets, so
    alignment decisions (who shares, who avoids whom) can be inspected
    directly — the spatial picture behind every miss-rate number. *)

val cache_map :
  ?only:(int -> bool) ->
  Trg_program.Program.t ->
  Trg_cache.Config.t ->
  Trg_program.Layout.t ->
  string
(** One line per run of cache sets with identical occupants:
    ["sets 000-007: main wrk3"].  [only] filters the procedures shown
    (default: all procedures no larger than the cache, which keeps
    wrap-around cold giants from flooding every set). *)

val occupancy_summary :
  ?only:(int -> bool) ->
  Trg_program.Program.t ->
  Trg_cache.Config.t ->
  Trg_program.Layout.t ->
  string
(** A short histogram: how many sets hold 0, 1, 2, ... of the selected
    procedures.  A good placement pushes mass toward low counts. *)
