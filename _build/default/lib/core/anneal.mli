(** Metric-driven local search over cache-relative offsets.

    GBSC minimises the TRG_place conflict metric greedily, one merge at a
    time.  Since Figure 6 establishes that the metric is (nearly) linear
    in real conflict misses, we can also optimise the metric {e directly}:
    simulated annealing over the popular procedures' cache-set offsets.
    Comparing the two answers the headroom question — how much conflict
    cost does the greedy merge order leave on the table? — and provides an
    independent, search-based placement algorithm.

    Only inter-procedure conflicts vary with the offsets (a procedure's
    chunks move rigidly), so the objective sums TRG_place weights times
    shared cache sets over chunk pairs of distinct popular procedures, and
    moves are evaluated incrementally through per-procedure edge lists. *)

type params = {
  seed : int;
  iterations : int;  (** proposed moves *)
  t_start : float;  (** initial temperature, as a fraction of the initial cost *)
  t_end : float;  (** final temperature fraction *)
}

val default_params : params
(** seed 1, 60,000 iterations, temperature 0.10 -> 0.001. *)

val cost :
  Gbsc.config ->
  Trg_program.Program.t ->
  profile:Gbsc.profile ->
  offsets:(int * int) list ->
  float
(** The annealer's objective for an explicit offset assignment —
    equivalent to {!Metric.trg_place} restricted to inter-procedure edges
    of popular procedures.  Exposed for tests and reporting. *)

val place :
  ?params:params ->
  ?init:(int * int) list ->
  Gbsc.config ->
  Trg_program.Program.t ->
  Gbsc.profile ->
  Trg_program.Layout.t * float
(** [place config program profile] anneals offsets for every popular
    procedure with TRG_select edges (starting from [init] when given, e.g.
    the GBSC node offsets; random otherwise), then linearises exactly like
    GBSC.  Returns the layout and the final objective value. *)

val gbsc_offsets :
  Gbsc.config -> Trg_program.Program.t -> Gbsc.profile -> (int * int) list
(** The offset assignment GBSC's merging phase produces — the natural
    warm start and comparison point. *)
