lib/core/gbsc_sa.ml: Cost Gbsc Trg_cache Trg_profile Trg_program Trg_trace
