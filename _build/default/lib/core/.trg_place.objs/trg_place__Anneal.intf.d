lib/core/anneal.mli: Gbsc Trg_program
