lib/core/metric.mli: Trg_cache Trg_profile Trg_program
