lib/core/metric.ml: Bytes Hashtbl Trg_cache Trg_profile Trg_program
