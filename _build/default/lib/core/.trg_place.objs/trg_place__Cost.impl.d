lib/core/cost.ml: Array Hashtbl List Node Trg_profile Trg_program
