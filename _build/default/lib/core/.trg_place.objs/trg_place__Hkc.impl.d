lib/core/hkc.ml: Cost Gbsc Trg_profile
