lib/core/exhaustive.mli: Gbsc Trg_program Trg_trace
