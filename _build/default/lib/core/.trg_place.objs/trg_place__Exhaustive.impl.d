lib/core/exhaustive.ml: Array Gbsc Linearize Printf Trg_cache Trg_program
