lib/core/merge_driver.ml: Hashtbl List Trg_profile Trg_util
