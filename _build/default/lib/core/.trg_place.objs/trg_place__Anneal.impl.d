lib/core/anneal.ml: Array Cost Float Gbsc Hashtbl Linearize List Node Trg_cache Trg_profile Trg_program Trg_util
