lib/core/linearize.mli: Trg_program
