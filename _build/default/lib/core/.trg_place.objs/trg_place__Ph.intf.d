lib/core/ph.mli: Trg_profile Trg_program
