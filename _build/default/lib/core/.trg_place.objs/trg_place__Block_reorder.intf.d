lib/core/block_reorder.mli: Trg_program Trg_trace
