lib/core/gbsc.mli: Cost Node Trg_cache Trg_profile Trg_program Trg_trace
