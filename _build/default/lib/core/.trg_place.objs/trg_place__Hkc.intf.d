lib/core/hkc.mli: Gbsc Trg_profile Trg_program
