lib/core/view.ml: Array Buffer List Printf String Trg_cache Trg_program
