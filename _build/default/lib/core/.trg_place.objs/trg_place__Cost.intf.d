lib/core/cost.mli: Node Trg_profile Trg_program
