lib/core/linearize.ml: Array Hashtbl List Printf Trg_program
