lib/core/torrellas.mli: Gbsc Trg_profile Trg_program
