lib/core/view.mli: Trg_cache Trg_program
