lib/core/merge_driver.mli: Trg_profile
