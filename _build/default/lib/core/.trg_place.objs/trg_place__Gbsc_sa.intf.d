lib/core/gbsc_sa.mli: Gbsc Trg_profile Trg_program Trg_trace
