lib/core/split.mli: Trg_program Trg_trace
