lib/core/ph.ml: Array Hashtbl List Merge_driver Trg_profile Trg_program
