lib/core/hwu_chang.mli: Trg_profile Trg_program
