lib/core/block_reorder.ml: Array Hashtbl List Printf Trg_program Trg_trace
