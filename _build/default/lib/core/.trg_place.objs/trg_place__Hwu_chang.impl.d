lib/core/hwu_chang.ml: Array List Trg_profile Trg_program
