lib/core/torrellas.ml: Array Gbsc Trg_cache Trg_profile Trg_program
