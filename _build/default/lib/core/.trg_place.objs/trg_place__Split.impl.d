lib/core/split.ml: Array Float List Trg_program Trg_trace
