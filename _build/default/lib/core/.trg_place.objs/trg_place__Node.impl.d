lib/core/node.ml: Format List
