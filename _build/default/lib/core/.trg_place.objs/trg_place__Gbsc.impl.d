lib/core/gbsc.ml: Array Cost Hashtbl Linearize List Logs Merge_driver Node Trg_cache Trg_profile Trg_program Trg_trace
