module Program = Trg_program.Program
module Layout = Trg_program.Layout

let round_up x align = (x + align - 1) / align * align

(* Largest-fit gap filling: repeatedly place the biggest unpopular procedure
   that fits between [cursor] and [limit] (4-byte aligned). *)
let fill_gap program addr ~fillers ~cursor ~limit =
  let cur = ref (round_up cursor 4) in
  let continue = ref true in
  while !continue do
    let room = limit - !cur in
    if room <= 0 then continue := false
    else begin
      (* [fillers] is sorted by decreasing size; take the first unused
         procedure that fits. *)
      let found = ref None in
      (try
         List.iter
           (fun p ->
             if addr.(p) < 0 && Program.size program p <= room then begin
               found := Some p;
               raise Exit
             end)
           fillers
       with Exit -> ());
      match !found with
      | None -> continue := false
      | Some p ->
        addr.(p) <- !cur;
        cur := round_up (!cur + Program.size program p) 4
    end
  done

let layout ?affinity program ~line_size ~n_sets ~placed ~filler =
  let n = Program.n_procs program in
  let addr = Array.make n (-1) in
  List.iter
    (fun (_p, off) ->
      if off < 0 || off >= n_sets then
        invalid_arg (Printf.sprintf "Linearize: offset %d out of range" off))
    placed;
  let fillers_desc =
    List.sort
      (fun a b ->
        match compare (Program.size program b) (Program.size program a) with
        | 0 -> compare a b
        | c -> c)
      (Array.to_list filler)
  in
  let unplaced = Hashtbl.create 64 in
  List.iter (fun (p, off) -> Hashtbl.replace unplaced p off) placed;
  let cursor = ref 0 in
  let last_placed = ref (-1) in
  (* Pick the popular procedure minimizing the gap in cache lines from the
     current end-of-layout line; the very first pick minimizes the absolute
     offset, which realises the paper's "any starting offset will do".
     Gap ties fall to the affinity bias (page locality), then the id. *)
  (* With an affinity bias, a few lines of extra gap may be paid to keep
     temporally-related procedures adjacent; the cache-set alignment of
     every procedure is honoured either way. *)
  let affinity_window = 3 in
  let pick_next cur_line_set =
    let gap_of off = (off - cur_line_set + n_sets) mod n_sets in
    let min_gap =
      Hashtbl.fold (fun _ off acc -> min acc (gap_of off)) unplaced max_int
    in
    let score p =
      match affinity with
      | Some f when !last_placed >= 0 -> -.f !last_placed p
      | Some _ | None -> 0.
    in
    let window = match affinity with Some _ -> affinity_window | None -> 0 in
    Hashtbl.fold
      (fun p off best ->
        let gap = gap_of off in
        if gap > min_gap + window then best
        else
          let key = (score p, gap, p) in
          match best with
          | Some (bkey, _, _) when bkey <= key -> best
          | _ -> Some (key, gap, p))
      unplaced None
  in
  let rec place_populars () =
    let cur_line = (!cursor + line_size - 1) / line_size in
    match pick_next (cur_line mod n_sets) with
    | None -> ()
    | Some (_key, gap, p) ->
      Hashtbl.remove unplaced p;
      let target = (cur_line + gap) * line_size in
      fill_gap program addr ~fillers:fillers_desc ~cursor:!cursor ~limit:target;
      addr.(p) <- target;
      cursor := target + Program.size program p;
      last_placed := p;
      place_populars ()
  in
  place_populars ();
  (* Append every remaining procedure, in source order. *)
  Array.iter
    (fun p ->
      if addr.(p) < 0 then begin
        let a = round_up !cursor 4 in
        addr.(p) <- a;
        cursor := a + Program.size program p
      end)
    filler;
  (* Sanity: all procedures placed. *)
  Array.iteri
    (fun p a ->
      if a < 0 then
        invalid_arg
          (Printf.sprintf "Linearize: procedure %d missing from placed/filler" p))
    addr;
  Layout.of_addresses program addr
