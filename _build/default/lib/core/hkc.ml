module Graph = Trg_profile.Graph
module Popularity = Trg_profile.Popularity

let place config program ~wcg ~popularity =
  let popular_wcg = Graph.filter_nodes (Popularity.keep popularity) wcg in
  Gbsc.place_with config program ~select:popular_wcg
    ~model:(Cost.Wcg_procs { wcg = popular_wcg })
