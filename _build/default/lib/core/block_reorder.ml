module Program = Trg_program.Program
module Trace = Trg_trace.Trace
module Event = Trg_trace.Event

(* A segment: [old_off, old_off + len) relocated to [new_off, ...). *)
type segment = { old_off : int; len : int; new_off : int }

type t = {
  program : Program.t;
  (* per procedure, segments sorted by old_off *)
  segments : segment array array;
  n_reordered : int;
}

let program t = t.program

let n_reordered t = t.n_reordered

(* --- learning block structure from the trace --------------------------- *)

type blocks = {
  offs : int array; (* sorted starting offsets of observed blocks *)
  lens : int array;
  counts : int array;
  (* transitions.(i) = (successor block index, count) list *)
  transitions : (int, int) Hashtbl.t array;
  mutable irregular : bool;
}

let learn program trace =
  let n = Program.n_procs program in
  (* First pass: collect distinct observed (off -> len, count) per proc. *)
  let observed = Array.init n (fun _ -> Hashtbl.create 8) in
  Trace.iter
    (fun (e : Event.t) ->
      let tbl = observed.(e.proc) in
      match Hashtbl.find_opt tbl e.offset with
      | Some (len, count) ->
        Hashtbl.replace tbl e.offset (max len e.len, count + 1)
      | None -> Hashtbl.add tbl e.offset (e.len, 1))
    trace;
  let blocks =
    Array.init n (fun p ->
        let entries =
          Hashtbl.fold (fun off (len, count) acc -> (off, len, count) :: acc)
            observed.(p) []
        in
        let entries = List.sort compare entries in
        let k = List.length entries in
        let offs = Array.make k 0 and lens = Array.make k 0 and counts = Array.make k 0 in
        List.iteri
          (fun i (off, len, count) ->
            offs.(i) <- off;
            lens.(i) <- len;
            counts.(i) <- count)
          entries;
        let irregular = ref false in
        for i = 0 to k - 2 do
          if offs.(i) + lens.(i) > offs.(i + 1) then irregular := true
        done;
        (match entries with
        | (_, _, _) :: _ when offs.(k - 1) + lens.(k - 1) > Program.size program p ->
          irregular := true
        | _ -> ());
        {
          offs;
          lens;
          counts;
          transitions = Array.init (max k 1) (fun _ -> Hashtbl.create 4);
          irregular = !irregular;
        })
  in
  (* Second pass: intra-procedure transition counts between consecutive
     events of the same procedure. *)
  let find_block b off =
    (* binary search on offs *)
    let lo = ref 0 and hi = ref (Array.length b.offs - 1) in
    if !hi < 0 then -1
    else begin
      let ans = ref (-1) in
      while !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        if b.offs.(mid) = off then begin
          ans := mid;
          lo := !hi + 1
        end
        else if b.offs.(mid) < off then lo := mid + 1
        else hi := mid - 1
      done;
      !ans
    end
  in
  let prev = ref (-1, -1) in
  Trace.iter
    (fun (e : Event.t) ->
      let b = blocks.(e.proc) in
      let idx = find_block b e.offset in
      (if idx >= 0 then
         let pp, pi = !prev in
         if pp = e.proc && pi >= 0 && pi <> idx then begin
           let tbl = b.transitions.(pi) in
           match Hashtbl.find_opt tbl idx with
           | Some c -> Hashtbl.replace tbl idx (c + 1)
           | None -> Hashtbl.add tbl idx 1
         end);
      prev := (e.proc, idx))
    trace;
  blocks

(* --- chaining ----------------------------------------------------------- *)

(* Hot-path ordering: start from block 0's position if observed (procedure
   entry), otherwise the hottest block; repeatedly follow the heaviest
   not-yet-placed successor, falling back to the hottest unplaced block. *)
let chain (b : blocks) =
  let k = Array.length b.offs in
  let placed = Array.make k false in
  let order = ref [] in
  let hottest_unplaced () =
    let best = ref (-1) in
    for i = 0 to k - 1 do
      if (not placed.(i)) && (!best < 0 || b.counts.(i) > b.counts.(!best)) then
        best := i
    done;
    !best
  in
  let heaviest_successor i =
    Hashtbl.fold
      (fun succ count best ->
        if placed.(succ) then best
        else
          match best with
          | Some (_, bc) when bc >= count -> best
          | _ -> Some (succ, count))
      b.transitions.(i) None
  in
  let start = if k > 0 && b.offs.(0) = 0 then 0 else hottest_unplaced () in
  let cursor = ref start in
  while !cursor >= 0 do
    placed.(!cursor) <- true;
    order := !cursor :: !order;
    cursor :=
      (match heaviest_successor !cursor with
      | Some (succ, _) -> succ
      | None -> hottest_unplaced ())
  done;
  List.rev !order

(* --- building the transform --------------------------------------------- *)

let build program trace =
  let blocks = learn program trace in
  let n_reordered = ref 0 in
  let segments =
    Array.init (Program.n_procs program) (fun p ->
        let b = blocks.(p) in
        let size = Program.size program p in
        let k = Array.length b.offs in
        if b.irregular || k = 0 then
          [| { old_off = 0; len = size; new_off = 0 } |]
        else begin
          (* Segment the procedure: observed blocks plus the cold gaps
             between/around them. *)
          let segs = ref [] in
          let cursor = ref 0 in
          for i = 0 to k - 1 do
            if b.offs.(i) > !cursor then
              segs := (`Cold, !cursor, b.offs.(i) - !cursor) :: !segs;
            segs := (`Block i, b.offs.(i), b.lens.(i)) :: !segs;
            cursor := b.offs.(i) + b.lens.(i)
          done;
          if !cursor < size then segs := (`Cold, !cursor, size - !cursor) :: !segs;
          let segs = List.rev !segs in
          (* New order: chained hot blocks first, then cold segments in
             their original order. *)
          let order = chain b in
          let hot =
            List.map
              (fun i ->
                let _, off, len =
                  List.find (function `Block j, _, _ -> j = i | _ -> false) segs
                in
                (off, len))
              order
          in
          let cold =
            List.filter_map
              (function `Cold, off, len -> Some (off, len) | `Block _, _, _ -> None)
              segs
          in
          let new_off = ref 0 in
          let out =
            List.map
              (fun (old_off, len) ->
                let s = { old_off; len; new_off = !new_off } in
                new_off := !new_off + len;
                s)
              (hot @ cold)
          in
          let arr = Array.of_list (List.sort (fun a b -> compare a.old_off b.old_off) out) in
          (* Did anything move? *)
          if Array.exists (fun s -> s.old_off <> s.new_off) arr then incr n_reordered;
          arr
        end)
  in
  { program; segments; n_reordered = !n_reordered }

let find_segment t ~proc ~offset =
  let segs = t.segments.(proc) in
  let lo = ref 0 and hi = ref (Array.length segs - 1) in
  let ans = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let s = segs.(mid) in
    if offset < s.old_off then hi := mid - 1
    else if offset >= s.old_off + s.len then lo := mid + 1
    else begin
      ans := Some s;
      lo := !hi + 1
    end
  done;
  match !ans with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Block_reorder: offset %d outside proc %d" offset proc)

let remap_offset t ~proc ~offset =
  let s = find_segment t ~proc ~offset in
  s.new_off + (offset - s.old_off)

let remap_trace t trace =
  let builder = Trace.Builder.create ~capacity:(Trace.length trace) () in
  Trace.iter
    (fun (e : Event.t) ->
      let remaining = ref e.len in
      let offset = ref e.offset in
      let first = ref true in
      while !remaining > 0 do
        let s = find_segment t ~proc:e.proc ~offset:!offset in
        let within = !offset - s.old_off in
        let len = min (s.len - within) !remaining in
        let kind = if !first then e.kind else Event.Run in
        Trace.Builder.add builder
          (Event.make ~kind ~proc:e.proc ~offset:(s.new_off + within) ~len);
        first := false;
        remaining := !remaining - len;
        offset := !offset + len
      done)
    trace;
  Trace.Builder.build builder
