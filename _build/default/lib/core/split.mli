(** Procedure splitting: separating rarely executed code from hot code.

    Pettis & Hansen split each procedure into a primary (hot) part and a
    "fluff" (cold) part placed far away, so that cold error paths stop
    diluting the cache footprint of the hot code.  The paper's conclusion
    singles this out as orthogonal to procedure placement and combinable
    with GBSC; this module implements it at chunk granularity and rewrites
    traces so the whole profiling/placement/simulation pipeline runs
    unchanged on the split program.

    A chunk is {e cold} when it was referenced in fewer than
    [cold_fraction] of its procedure's activations in the profiling run;
    a procedure splits only if it has both hot and cold chunks.  The hot
    part keeps the original name, the cold part gets a [".cold"] suffix. *)

type t

val split :
  ?cold_fraction:float ->
  Trg_program.Program.t ->
  Trg_program.Chunk.t ->
  chunk_counts:int array ->
  enter_counts:int array ->
  t
(** [split program chunks ~chunk_counts ~enter_counts] decides hot/cold per
    chunk ([cold_fraction] defaults to 0.05) and builds the split program.
    [chunk_counts] comes from {!Trg_profile.Chunk_counts.compute};
    [enter_counts] from {!Trg_trace.Tstats}. *)

val program : t -> Trg_program.Program.t
(** The split program.  New procedure ids are dense; hot and cold parts of
    a split procedure are separate procedures. *)

val n_split : t -> int
(** Number of original procedures that were actually split. *)

val cold_bytes : t -> int
(** Total bytes moved into cold parts. *)

val origin : t -> int -> int * bool
(** [origin t p] maps a new procedure id to its original procedure id and
    whether it is a hot part ([true]) or a cold part / unsplit procedure's
    single part. *)

val remap_trace : t -> Trg_trace.Trace.t -> Trg_trace.Trace.t
(** Rewrites a trace of the original program into the split program's
    address space, cutting events at part boundaries.  Pieces that land in
    a different procedure than their predecessor become [Enter] events
    (the jump a real splitter would insert); within-part pieces keep their
    kind. *)
