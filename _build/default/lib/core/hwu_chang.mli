(** A Hwu & Chang-style greedy depth-first placement baseline (the paper's
    Section 7 cites their ISCA'89 work as some of the earliest
    cache-conscious code placement).

    Their procedure-level placement orders code by a weighted-call-graph
    depth-first traversal: start from the most frequently executed entry,
    always descend into the heaviest unvisited callee, and lay the chain
    out contiguously, so that callers sit next to the callees they invoke
    most ("inline-like" proximity without inlining).  Like PH it uses no
    cache geometry and no temporal information; unlike PH it never
    reverses chains, so it is the simplest of the baselines. *)

val order : wcg:Trg_profile.Graph.t -> Trg_program.Program.t -> int array
(** DFS order over the WCG, heaviest edges first, restarting at the
    hottest (by incident weight) unvisited procedure; procedures without
    edges follow in source order. *)

val place :
  ?align:int ->
  wcg:Trg_profile.Graph.t ->
  Trg_program.Program.t ->
  Trg_program.Layout.t
