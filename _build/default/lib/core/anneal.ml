module Program = Trg_program.Program
module Chunk = Trg_program.Chunk
module Config = Trg_cache.Config
module Graph = Trg_profile.Graph
module Trg = Trg_profile.Trg
module Prng = Trg_util.Prng

type params = { seed : int; iterations : int; t_start : float; t_end : float }

let default_params = { seed = 1; iterations = 60_000; t_start = 0.10; t_end = 0.001 }

(* One inter-procedure TRG_place edge, with the chunks' owner-relative line
   positions precomputed. *)
type edge = {
  p1 : int;
  p2 : int;
  rel1 : int; (* line index of chunk 1 within its procedure *)
  len1 : int; (* lines the chunk spans *)
  rel2 : int;
  len2 : int;
  w : float;
}

type search_state = {
  n_sets : int;
  offsets : (int, int) Hashtbl.t; (* proc -> current set offset *)
  edges : edge array;
  incident : (int, int list) Hashtbl.t; (* proc -> edge indices *)
}

(* Shared cache sets between two line intervals [a, a+la) and [b, b+lb)
   modulo n_sets.  Intervals are at most n_sets long. *)
let shared_sets ~n_sets a la b lb =
  let la = min la n_sets and lb = min lb n_sets in
  (* Overlap of two circular intervals = sum over the two linearisations. *)
  let overlap_linear x lx y ly =
    let lo = max x y and hi = min (x + lx) (y + ly) in
    max 0 (hi - lo)
  in
  if la = n_sets then lb
  else if lb = n_sets then la
  else begin
    let a = a mod n_sets and b = b mod n_sets in
    (* Split each interval at the wrap point and intersect the pieces. *)
    let pieces x lx =
      if x + lx <= n_sets then [ (x, lx) ]
      else [ (x, n_sets - x); (0, x + lx - n_sets) ]
    in
    List.fold_left
      (fun acc (x, lx) ->
        List.fold_left
          (fun acc (y, ly) -> acc + overlap_linear x lx y ly)
          acc (pieces b lb))
      0 (pieces a la)
  end

let edge_cost st e =
  match (Hashtbl.find_opt st.offsets e.p1, Hashtbl.find_opt st.offsets e.p2) with
  | Some o1, Some o2 ->
    let s =
      shared_sets ~n_sets:st.n_sets
        ((o1 + e.rel1) mod st.n_sets)
        e.len1
        ((o2 + e.rel2) mod st.n_sets)
        e.len2
    in
    e.w *. float_of_int s
  | _ -> 0.

let total_cost st = Array.fold_left (fun acc e -> acc +. edge_cost st e) 0. st.edges

let incident_cost st p =
  match Hashtbl.find_opt st.incident p with
  | None -> 0.
  | Some idxs -> List.fold_left (fun acc i -> acc +. edge_cost st st.edges.(i)) 0. idxs

let build_state (config : Gbsc.config) program (profile : Gbsc.profile) offsets =
  ignore program;
  let cache = config.Gbsc.cache in
  let n_sets = Config.n_sets cache in
  let line_size = cache.Config.line_size in
  let chunks = profile.Gbsc.chunks in
  let lines_per_chunk = Chunk.chunk_size chunks / line_size in
  let tbl = Hashtbl.create 64 in
  List.iter (fun (p, o) -> Hashtbl.replace tbl p (o mod n_sets)) offsets;
  let edges = ref [] in
  Graph.iter_edges
    (fun c1 c2 w ->
      let p1 = Chunk.owner chunks c1 and p2 = Chunk.owner chunks c2 in
      if p1 <> p2 && Hashtbl.mem tbl p1 && Hashtbl.mem tbl p2 then
        edges :=
          {
            p1;
            p2;
            rel1 = Chunk.index_in_proc chunks c1 * lines_per_chunk;
            len1 = (Chunk.size_of chunks c1 + line_size - 1) / line_size;
            rel2 = Chunk.index_in_proc chunks c2 * lines_per_chunk;
            len2 = (Chunk.size_of chunks c2 + line_size - 1) / line_size;
            w;
          }
          :: !edges)
    profile.Gbsc.place.Trg.graph;
  let edges = Array.of_list !edges in
  let incident = Hashtbl.create 64 in
  Array.iteri
    (fun i e ->
      let push p =
        Hashtbl.replace incident p
          (i :: (match Hashtbl.find_opt incident p with Some l -> l | None -> []))
      in
      push e.p1;
      push e.p2)
    edges;
  { n_sets; offsets = tbl; edges; incident }

let gbsc_offsets config program (profile : Gbsc.profile) =
  let nodes =
    Gbsc.place_nodes config program ~select:profile.Gbsc.select.Trg.graph
      ~model:
        (Cost.Trg_chunks { chunks = profile.Gbsc.chunks; trg = profile.Gbsc.place.Trg.graph })
  in
  List.concat_map Node.members nodes

let cost config program ~profile ~offsets =
  total_cost (build_state config program profile offsets)

let place ?(params = default_params) ?init config program (profile : Gbsc.profile) =
  let rng = Prng.create params.seed in
  let n_sets = Config.n_sets config.Gbsc.cache in
  let init =
    match init with
    | Some l -> l
    | None ->
      (* Random initial offsets for every popular procedure with edges. *)
      List.map
        (fun p -> (p, Prng.int rng n_sets))
        (Graph.nodes profile.Gbsc.select.Trg.graph)
  in
  let st = build_state config program profile init in
  let procs = Array.of_list (Hashtbl.fold (fun p _ acc -> p :: acc) st.offsets []) in
  let current = ref (total_cost st) in
  let base = Float.max 1. !current in
  let best = Hashtbl.copy st.offsets in
  let best_cost = ref !current in
  if Array.length procs > 0 && Array.length st.edges > 0 then
    for i = 0 to params.iterations - 1 do
      let t =
        base *. params.t_start
        *. ((params.t_end /. params.t_start)
           ** (float_of_int i /. float_of_int params.iterations))
      in
      let p = Prng.choose rng procs in
      let old_off = Hashtbl.find st.offsets p in
      let new_off = Prng.int rng n_sets in
      if new_off <> old_off then begin
        let before = incident_cost st p in
        Hashtbl.replace st.offsets p new_off;
        let delta = incident_cost st p -. before in
        if delta <= 0. || Prng.bernoulli rng (exp (-.delta /. Float.max t 1e-9)) then begin
          current := !current +. delta;
          if !current < !best_cost then begin
            best_cost := !current;
            Hashtbl.reset best;
            Hashtbl.iter (Hashtbl.replace best) st.offsets
          end
        end
        else Hashtbl.replace st.offsets p old_off
      end
    done;
  let placed = Hashtbl.fold (fun p o acc -> (p, o) :: acc) best [] in
  let placed = List.sort compare placed in
  let in_nodes = Hashtbl.create 64 in
  List.iter (fun (p, _) -> Hashtbl.replace in_nodes p ()) placed;
  let filler = ref [] in
  for p = Program.n_procs program - 1 downto 0 do
    if not (Hashtbl.mem in_nodes p) then filler := p :: !filler
  done;
  let layout =
    Linearize.layout program
      ~line_size:config.Gbsc.cache.Config.line_size
      ~n_sets ~placed
      ~filler:(Array.of_list !filler)
  in
  (layout, !best_cost)
