(** Whole-layout conflict metrics (Section 3, Figure 6).

    A placement algorithm needs a metric that is (approximately) a linear
    function of the conflict misses a layout will suffer.  These functions
    evaluate a complete layout under the two candidate metrics the paper
    compares: the fine-grained TRG_place metric used by GBSC, and a metric
    with the same form but WCG procedure-granularity weights.  Figure 6
    plots each against measured cache misses. *)

val trg_place :
  Trg_program.Program.t ->
  chunks:Trg_program.Chunk.t ->
  trg:Trg_profile.Graph.t ->
  cache:Trg_cache.Config.t ->
  Trg_program.Layout.t ->
  float
(** Sum over TRG_place edges (c1, c2, w) of [w] x (number of cache sets
    occupied by both chunks under the layout). *)

val wcg :
  Trg_program.Program.t ->
  wcg:Trg_profile.Graph.t ->
  cache:Trg_cache.Config.t ->
  Trg_program.Layout.t ->
  float
(** Same shape at whole-procedure granularity with WCG weights. *)
