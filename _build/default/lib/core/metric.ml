module Program = Trg_program.Program
module Chunk = Trg_program.Chunk
module Layout = Trg_program.Layout
module Config = Trg_cache.Config
module Graph = Trg_profile.Graph

(* Occupancy bitmap over cache sets for a byte range starting at [addr]. *)
let occupancy ~line_size ~n_sets ~addr ~bytes =
  let sets = Bytes.make n_sets '\000' in
  let start = addr / line_size in
  let lines = (addr + bytes - 1) / line_size - start + 1 in
  for j = 0 to min lines n_sets - 1 do
    Bytes.set sets ((start + j) mod n_sets) '\001'
  done;
  sets

let shared a b =
  let count = ref 0 in
  Bytes.iteri
    (fun i ca -> if ca = '\001' && Bytes.get b i = '\001' then incr count)
    a;
  !count

let trg_place program ~chunks ~trg ~cache layout =
  ignore program;
  let line_size = cache.Config.line_size in
  let n_sets = Config.n_sets cache in
  let chunk_addr c =
    let p = Chunk.owner chunks c in
    Layout.address layout p + (Chunk.index_in_proc chunks c * Chunk.chunk_size chunks)
  in
  let occ = Hashtbl.create 1024 in
  let occupancy_of c =
    match Hashtbl.find_opt occ c with
    | Some o -> o
    | None ->
      let o =
        occupancy ~line_size ~n_sets ~addr:(chunk_addr c)
          ~bytes:(Chunk.size_of chunks c)
      in
      Hashtbl.add occ c o;
      o
  in
  let total = ref 0. in
  Graph.iter_edges
    (fun c1 c2 w ->
      let s = shared (occupancy_of c1) (occupancy_of c2) in
      if s > 0 then total := !total +. (w *. float_of_int s))
    trg;
  !total

let wcg program ~wcg ~cache layout =
  let line_size = cache.Config.line_size in
  let n_sets = Config.n_sets cache in
  let occ = Hashtbl.create 256 in
  let occupancy_of p =
    match Hashtbl.find_opt occ p with
    | Some o -> o
    | None ->
      let o =
        occupancy ~line_size ~n_sets ~addr:(Layout.address layout p)
          ~bytes:(Program.size program p)
      in
      Hashtbl.add occ p o;
      o
  in
  let total = ref 0. in
  Graph.iter_edges
    (fun p q w ->
      let s = shared (occupancy_of p) (occupancy_of q) in
      if s > 0 then total := !total +. (w *. float_of_int s))
    wcg;
  !total
