(** A Torrellas/Xia/Daigle-style "logical cache" baseline (the paper's
    Section 7 discusses this OS-oriented scheme).

    The address space is viewed as an array of {e logical caches}, each
    the size and alignment of the hardware cache; code placed within one
    logical cache can never self-conflict.  A sub-area of every logical
    cache is reserved for the most frequently executed code, so the
    hottest procedures never conflict with anything; the remaining
    popular procedures are packed into successive logical caches in
    execution-count order.  The scheme uses execution counts and the
    cache geometry but no pairwise (let alone temporal) relationship
    information — which is exactly where GBSC should beat it. *)

val place :
  ?reserved_frac:float ->
  Gbsc.config ->
  Trg_program.Program.t ->
  popularity:Trg_profile.Popularity.t ->
  Trg_program.Layout.t
(** [reserved_frac] (default 0.0625) is the fraction of each logical cache
    reserved for the hottest procedures.  Procedures are placed in
    popularity order: the reserved region fills first (line-aligned, so
    its occupants conflict with nothing in any logical cache that honours
    the reservation), then each successive logical cache's open region;
    unpopular procedures are appended after the last logical cache. *)
