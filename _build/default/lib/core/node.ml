type t = { members : (int * int) list }

let singleton p = { members = [ (p, 0) ] }

let members t = t.members

let procs t = List.map fst t.members

let size t = List.length t.members

let offset_of t p = List.assoc p t.members

let union ~shift ~modulo n1 n2 =
  let shifted =
    List.map (fun (p, off) -> (p, (off + shift) mod modulo)) n2.members
  in
  { members = n1.members @ shifted }

let pp ppf t =
  List.iter (fun (p, off) -> Format.fprintf ppf "(p%d@@%d) " p off) t.members
