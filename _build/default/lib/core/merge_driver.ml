module Graph = Trg_profile.Graph
module Heap = Trg_util.Heap

type 'node group = {
  repr : int; (* original node id acting as group identity *)
  mutable payload : 'node;
  mutable count : int; (* original nodes absorbed *)
  adj : (int, float) Hashtbl.t; (* neighbor repr -> combined weight *)
}

let run ~graph ~init ~merge =
  let groups : (int, 'a group) Hashtbl.t = Hashtbl.create 64 in
  let parent : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec find id =
    let p = Hashtbl.find parent id in
    if p = id then id
    else begin
      let root = find p in
      Hashtbl.replace parent id root;
      root
    end
  in
  List.iter
    (fun id ->
      Hashtbl.replace parent id id;
      Hashtbl.replace groups id
        { repr = id; payload = init id; count = 1; adj = Hashtbl.create 8 })
    (Graph.nodes graph);
  let heap = Heap.create () in
  Graph.iter_edges
    (fun u v w ->
      let gu = Hashtbl.find groups u and gv = Hashtbl.find groups v in
      Hashtbl.replace gu.adj v w;
      Hashtbl.replace gv.adj u w;
      Heap.push heap w (u, v))
    graph;
  let rec loop () =
    match Heap.pop_max heap with
    | None -> ()
    | Some (w, (u, v)) ->
      let ru = find u and rv = find v in
      let stale =
        ru = rv
        ||
        let gu = Hashtbl.find groups ru in
        match Hashtbl.find_opt gu.adj rv with
        | Some current -> current <> w
        | None -> true
      in
      if not stale then begin
        let gu = Hashtbl.find groups ru and gv = Hashtbl.find groups rv in
        (* Keep the larger group fixed; it becomes n1. *)
        let big, small =
          if
            gu.count > gv.count
            || (gu.count = gv.count && gu.repr < gv.repr)
          then (gu, gv)
          else (gv, gu)
        in
        big.payload <- merge big.payload small.payload;
        big.count <- big.count + small.count;
        Hashtbl.replace parent small.repr big.repr;
        Hashtbl.remove groups small.repr;
        Hashtbl.remove big.adj small.repr;
        Hashtbl.remove small.adj big.repr;
        (* Re-point the absorbed group's edges at the survivor. *)
        Hashtbl.iter
          (fun n wn ->
            let rn = find n in
            if rn <> big.repr then begin
              let gn = Hashtbl.find groups rn in
              let combined =
                match Hashtbl.find_opt big.adj rn with
                | Some existing -> existing +. wn
                | None -> wn
              in
              Hashtbl.replace big.adj rn combined;
              Hashtbl.replace gn.adj big.repr combined;
              Hashtbl.remove gn.adj small.repr;
              Heap.push heap combined (big.repr, rn)
            end)
          small.adj
      end;
      loop ()
  in
  loop ();
  let remaining = Hashtbl.fold (fun _ g acc -> g :: acc) groups [] in
  let sorted =
    List.sort
      (fun a b ->
        match compare b.count a.count with 0 -> compare a.repr b.repr | c -> c)
      remaining
  in
  List.map (fun g -> g.payload) sorted
