module Program = Trg_program.Program
module Proc = Trg_program.Proc
module Chunk = Trg_program.Chunk
module Trace = Trg_trace.Trace
module Event = Trg_trace.Event

type t = {
  program : Program.t;
  chunks : Chunk.t; (* original chunk indexer *)
  chunk_size : int;
  new_proc : int array; (* original global chunk -> new proc id *)
  new_base : int array; (* original global chunk -> its start offset there *)
  origin : (int * bool) array; (* new proc -> (original proc, is hot part) *)
  n_split : int;
  cold_bytes : int;
}

let split ?(cold_fraction = 0.05) program chunks ~chunk_counts ~enter_counts =
  let n = Program.n_procs program in
  if Array.length enter_counts <> n then
    invalid_arg "Split.split: enter_counts size mismatch";
  if Array.length chunk_counts < Chunk.total chunks then
    invalid_arg "Split.split: chunk_counts size mismatch";
  let is_hot c =
    let p = Chunk.owner chunks c in
    let threshold = cold_fraction *. float_of_int enter_counts.(p) in
    enter_counts.(p) > 0 && float_of_int chunk_counts.(c) >= Float.max 1. threshold
  in
  let new_proc = Array.make (max 1 (Chunk.total chunks)) (-1) in
  let new_base = Array.make (max 1 (Chunk.total chunks)) (-1) in
  let procs = ref [] in
  let origin = ref [] in
  let next_id = ref 0 in
  let n_split = ref 0 in
  let cold_bytes = ref 0 in
  let add_part ~orig ~hot ~name ~chunk_ids =
    let id = !next_id in
    incr next_id;
    let size = ref 0 in
    List.iter
      (fun c ->
        new_proc.(c) <- id;
        new_base.(c) <- !size;
        size := !size + Chunk.size_of chunks c)
      chunk_ids;
    procs := Proc.make ~id ~name ~size:!size :: !procs;
    origin := (orig, hot) :: !origin;
    id
  in
  for p = 0 to n - 1 do
    let first = Chunk.first chunks p in
    let ids = List.init (Chunk.n_chunks chunks p) (fun k -> first + k) in
    let hot, cold = List.partition is_hot ids in
    let name = Program.name program p in
    if hot = [] || cold = [] then
      (* Unsplit: a single part carrying all chunks.  Whether the procedure
         is entirely hot or entirely cold, its internal offsets are
         unchanged. *)
      ignore (add_part ~orig:p ~hot:(cold = []) ~name ~chunk_ids:ids)
    else begin
      incr n_split;
      ignore (add_part ~orig:p ~hot:true ~name ~chunk_ids:hot);
      ignore (add_part ~orig:p ~hot:false ~name:(name ^ ".cold") ~chunk_ids:cold);
      List.iter (fun c -> cold_bytes := !cold_bytes + Chunk.size_of chunks c) cold
    end
  done;
  let program' = Program.make (Array.of_list (List.rev !procs)) in
  {
    program = program';
    chunks;
    chunk_size = Chunk.chunk_size chunks;
    new_proc;
    new_base;
    origin = Array.of_list (List.rev !origin);
    n_split = !n_split;
    cold_bytes = !cold_bytes;
  }

let program t = t.program

let n_split t = t.n_split

let cold_bytes t = t.cold_bytes

let origin t p = t.origin.(p)

let remap_trace t trace =
  let builder = Trace.Builder.create ~capacity:(Trace.length trace) () in
  let last = ref (-1) in
  Trace.iter
    (fun (e : Event.t) ->
      (* Cut the run at original chunk boundaries; each piece lives at a
         known offset of a known new procedure. *)
      let remaining = ref e.len in
      let offset = ref e.offset in
      let first_piece = ref true in
      while !remaining > 0 do
        let c = Chunk.of_offset t.chunks ~proc:e.proc ~offset:!offset in
        let within = !offset mod t.chunk_size in
        let room = Chunk.size_of t.chunks c - within in
        let len = min room !remaining in
        let proc = t.new_proc.(c) in
        let kind =
          if proc = !last then Event.Run
          else if !first_piece && e.kind <> Event.Run then e.kind
          else Event.Enter (* the jump a splitter inserts at a part boundary *)
        in
        Trace.Builder.add builder
          (Event.make ~kind ~proc ~offset:(t.new_base.(c) + within) ~len);
        last := proc;
        first_piece := false;
        remaining := !remaining - len;
        offset := !offset + len
      done)
    trace;
  Trace.Builder.build builder
