(** Intra-procedure basic-block reordering.

    The paper's techniques "apply to code blocks of any granularity"; this
    module is the block-granularity companion pass: inside each procedure,
    the trace-observed basic blocks are re-chained so that hot paths are
    contiguous (Pettis & Hansen's basic-block positioning, driven by
    block-to-block transition counts from the trace), with never-executed
    and cold bytes sunk to the end of the procedure.  Procedure sizes are
    unchanged, so the pass composes with any procedure-placement
    algorithm: reorder first, remap the traces, then place.

    A procedure is left untouched when its observed blocks overlap
    irregularly (never the case for walker-generated traces). *)

type t

val build : Trg_program.Program.t -> Trg_trace.Trace.t -> t
(** Learns block boundaries, execution counts and transition counts from
    the (training) trace and computes the new intra-procedure order. *)

val program : t -> Trg_program.Program.t
(** The program is unchanged (same ids, names, sizes); returned for
    pipeline symmetry. *)

val n_reordered : t -> int
(** Procedures whose internal layout actually changed. *)

val remap_offset : t -> proc:int -> offset:int -> int
(** New byte offset of an old byte position. *)

val remap_trace : t -> Trg_trace.Trace.t -> Trg_trace.Trace.t
(** Rewrites a trace (training or testing) into the reordered offsets;
    events spanning a segment boundary are cut into pieces (the fall-
    through jump a real reorderer would insert).  Event kinds are
    preserved on first pieces; continuation pieces become [Run]. *)
