module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Graph = Trg_profile.Graph

let order ~wcg program =
  let n = Program.n_procs program in
  let visited = Array.make n false in
  let out = ref [] in
  let incident p =
    List.fold_left (fun acc q -> acc +. Graph.weight wcg p q) 0. (Graph.neighbors wcg p)
  in
  let nodes = Graph.nodes wcg in
  (* Hottest unvisited node by total incident weight; ties by id. *)
  let hottest_unvisited () =
    List.fold_left
      (fun best p ->
        if visited.(p) then best
        else
          let w = incident p in
          match best with
          | Some (bw, bp) when bw > w || (bw = w && bp < p) -> best
          | _ -> Some (w, p))
      None nodes
  in
  let rec dfs p =
    visited.(p) <- true;
    out := p :: !out;
    (* Heaviest unvisited neighbor first. *)
    let rec next () =
      let best =
        List.fold_left
          (fun best q ->
            if visited.(q) then best
            else
              let w = Graph.weight wcg p q in
              match best with
              | Some (bw, bq) when bw > w || (bw = w && bq < q) -> best
              | _ -> Some (w, q))
          None (Graph.neighbors wcg p)
      in
      match best with
      | Some (_, q) ->
        dfs q;
        next ()
      | None -> ()
    in
    next ()
  in
  let rec roots () =
    match hottest_unvisited () with
    | Some (_, p) ->
      dfs p;
      roots ()
    | None -> ()
  in
  roots ();
  let placed = List.rev !out in
  let rest = ref [] in
  for p = n - 1 downto 0 do
    if not visited.(p) then rest := p :: !rest
  done;
  Array.of_list (placed @ !rest)

let place ?(align = 4) ~wcg program =
  Layout.contiguous ~align program (order ~wcg program)
