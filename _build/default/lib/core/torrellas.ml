module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Config = Trg_cache.Config
module Popularity = Trg_profile.Popularity

let place ?(reserved_frac = 0.0625) (config : Gbsc.config) program ~popularity =
  if reserved_frac < 0. || reserved_frac >= 1. then
    invalid_arg "Torrellas.place: reserved_frac must be in [0, 1)";
  let cache = config.Gbsc.cache in
  let cache_bytes = cache.Config.size in
  let line = cache.Config.line_size in
  let reserved_bytes = int_of_float (reserved_frac *. float_of_int cache_bytes) in
  let reserved_bytes = reserved_bytes / line * line in
  let n = Program.n_procs program in
  let addr = Array.make n (-1) in
  let round_up x a = (x + a - 1) / a * a in
  (* Fill the reserved region [0, reserved_bytes) of logical cache 0 with
     the hottest procedures; it is mirrored (left empty) in every later
     logical cache, so its occupants never conflict. *)
  let ranked = popularity.Popularity.ranked in
  let cursor = ref 0 in
  let next_rank = ref 0 in
  while
    !next_rank < Array.length ranked
    && round_up !cursor line + Program.size program ranked.(!next_rank)
       <= reserved_bytes
  do
    let p = ranked.(!next_rank) in
    let a = round_up !cursor line in
    addr.(p) <- a;
    cursor := a + Program.size program p;
    incr next_rank
  done;
  (* Pack the remaining popular procedures into the open regions
     [reserved_bytes, cache_bytes) of successive logical caches. *)
  let open_cursor = ref reserved_bytes in
  let place_open p =
    let size = Program.size program p in
    let rec find a =
      let a = round_up a line in
      let l = a / cache_bytes in
      let pos = a mod cache_bytes in
      if pos < reserved_bytes then find ((l * cache_bytes) + reserved_bytes)
      else if pos + size <= cache_bytes || size > cache_bytes - reserved_bytes then a
      else find (((l + 1) * cache_bytes) + reserved_bytes)
    in
    let a = find !open_cursor in
    addr.(p) <- a;
    open_cursor := a + size
  in
  for i = !next_rank to Array.length ranked - 1 do
    place_open ranked.(i)
  done;
  (* Unpopular procedures go after the last logical cache, packed. *)
  let tail = ref (round_up !open_cursor cache_bytes) in
  for p = 0 to n - 1 do
    if addr.(p) < 0 then begin
      let a = round_up !tail 4 in
      addr.(p) <- a;
      tail := a + Program.size program p
    end
  done;
  Layout.of_addresses program addr
