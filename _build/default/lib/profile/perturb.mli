(** Multiplicative random perturbation of profile weights (Section 5.1).

    Code layout algorithms are discontinuous in their input profile: tiny
    weight differences flip greedy decisions, so a single training run says
    little about an algorithm's typical behaviour.  The paper simulates a
    population of slightly different inputs by replacing each edge weight
    [w] with [w * exp (s * X)], [X ~ N(0, 1)].  Multiplicative noise keeps
    weights positive and is self-scaling in [s]. *)

val graph : Trg_util.Prng.t -> s:float -> Graph.t -> Graph.t
(** Fresh graph with every edge weight independently perturbed.  [s = 0]
    returns an exact copy. *)

val default_s : float
(** 0.1, the value used for the paper's Figure 5 experiments. *)

val pair_db : Trg_util.Prng.t -> s:float -> Pair_db.t -> Pair_db.t
(** Same transformation for the set-associative database. *)

val tuple_db : Trg_util.Prng.t -> s:float -> Tuple_db.t -> Tuple_db.t
(** Same transformation for the generalised tuple database. *)
