(** The ordered set Q of recently referenced code blocks (Section 3).

    Q summarises the temporal locality of a trace.  Members are ordered as
    they appeared; a member becomes irrelevant (and is evicted) once enough
    unique code has been referenced after it to evict it from the cache —
    operationally, Q's resident byte total is bounded so that removing the
    next least-recently-used member would drop it below the capacity bound
    (the paper uses 2x the cache size).

    Processing one trace reference [p]:
    - if a previous occurrence of [p] is in Q, every id referenced between
      the two occurrences is reported (these are the TRG edge increments),
      the old occurrence is removed, and [p] is appended at the
      most-recent end;
    - otherwise [p] is appended and the oldest members are evicted while the
      bound allows. *)

type t

type stats = {
  avg_entries : float;  (** mean population of Q over all processed steps *)
  max_entries : int;
  steps : int;  (** references processed *)
}

val create : capacity_bytes:int -> size_of:(int -> int) -> t
(** [size_of id] must be positive and stable for a given id.
    [capacity_bytes] must be positive (the paper uses
    [2 * cache size in bytes]). *)

val reference : t -> int -> between:(int -> unit) -> bool
(** [reference t p ~between] processes the next trace reference.  Returns
    [true] iff a previous occurrence of [p] was present, in which case
    [between] has been called once for each distinct id between the two
    occurrences of [p], in trace order. *)

val members : t -> int list
(** Current contents, least recent first. *)

val length : t -> int

val total_bytes : t -> int

val stats : t -> stats
