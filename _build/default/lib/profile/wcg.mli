(** Weighted call graph construction (Section 2 of the paper).

    Following the paper's implementation of PH, the edge weight between two
    procedures is the total number of control-flow transitions (calls plus
    returns) between them in the trace — exactly twice the call count of a
    classic WCG, which does not change the placements produced. *)

val build : Trg_trace.Trace.t -> Graph.t
(** Nodes are procedure ids.  An [Enter] or [Resume] event whose procedure
    differs from the previous event's procedure contributes 1 to the edge
    between the two procedures. *)

val call_counts : Trg_trace.Trace.t -> Graph.t
(** Classic WCG: only [Enter] events are counted, giving call counts.
    [build] is [call_counts] with every weight (approximately) doubled;
    provided for tests and for the Figure 6 WCG-metric study. *)
