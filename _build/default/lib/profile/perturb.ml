module Prng = Trg_util.Prng

let default_s = 0.1

let factor rng s = exp (s *. Prng.normal rng)

let graph rng ~s g =
  if s = 0. then Graph.copy g
  else Graph.map_weights (fun _ _ w -> w *. factor rng s) g

let pair_db rng ~s db =
  let out = Pair_db.create () in
  let scale w = if s = 0. then w else w *. factor rng s in
  (* Hashtbl iteration order is fixed for a given construction sequence,
     which is all reproducibility requires here. *)
  Pair_db.iter db (fun p r s w -> Pair_db.add out ~p ~r ~s (scale w));
  out

let tuple_db rng ~s db =
  let out = Tuple_db.create ~arity:(Tuple_db.arity db) in
  let scale w = if s = 0. then w else w *. factor rng s in
  Tuple_db.iter db (fun p ids w -> Tuple_db.add out ~p ~ids (scale w));
  out
