(** Per-chunk dynamic reference counts.

    Procedure splitting (Pettis & Hansen's "fluff" separation, which the
    paper's conclusion lists as orthogonal to and combinable with GBSC)
    needs to know which parts of each procedure actually execute; this is
    the chunk-granularity execution profile that drives it. *)

val compute : Trg_program.Chunk.t -> Trg_trace.Trace.t -> int array
(** [compute chunks trace] returns, for every global chunk id, the number
    of trace events that touched at least one byte of that chunk. *)
