module Program = Trg_program.Program
module Tstats = Trg_trace.Tstats

type t = { is_popular : bool array; ranked : int array; popular_bytes : int }

let select ?(coverage = 0.99) ?(min_refs = 2) ?max_procs program (stats : Tstats.t) =
  let n = Array.length stats.ref_counts in
  let ids = Array.init n (fun i -> i) in
  (* Most referenced first; ties by id for determinism. *)
  Array.sort
    (fun a b ->
      match compare stats.ref_counts.(b) stats.ref_counts.(a) with
      | 0 -> compare a b
      | c -> c)
    ids;
  let total = Array.fold_left ( + ) 0 stats.ref_counts in
  let target = coverage *. float_of_int total in
  let limit = match max_procs with Some m -> m | None -> n in
  let is_popular = Array.make n false in
  let selected = ref [] in
  let covered = ref 0 in
  (try
     Array.iter
       (fun p ->
         if
           List.length !selected >= limit
           || float_of_int !covered >= target
           || stats.ref_counts.(p) < min_refs
         then raise Exit;
         is_popular.(p) <- true;
         selected := p :: !selected;
         covered := !covered + stats.ref_counts.(p))
       ids
   with Exit -> ());
  let ranked = Array.of_list (List.rev !selected) in
  let popular_bytes =
    Array.fold_left (fun acc p -> acc + Program.size program p) 0 ranked
  in
  { is_popular; ranked; popular_bytes }

let n_popular t = Array.length t.ranked

let keep t p = t.is_popular.(p)

let unpopular t =
  let out = ref [] in
  for p = Array.length t.is_popular - 1 downto 0 do
    if not t.is_popular.(p) then out := p :: !out
  done;
  Array.of_list !out
