module Chunk = Trg_program.Chunk
module Trace = Trg_trace.Trace
module Event = Trg_trace.Event

type t = {
  arity : int;
  tbl : (int, (int list, float) Hashtbl.t) Hashtbl.t;
      (* p -> sorted id list -> weight *)
}

type built = { db : t; qstats : Qset.stats }

let create ~arity =
  if arity < 1 then invalid_arg "Tuple_db.create: arity must be >= 1";
  { arity; tbl = Hashtbl.create 256 }

let arity t = t.arity

let normalize t ~p ids =
  if List.length ids <> t.arity then
    invalid_arg "Tuple_db: wrong tuple size";
  let sorted = List.sort_uniq compare ids in
  if List.length sorted <> t.arity then invalid_arg "Tuple_db: duplicate ids";
  if List.mem p sorted then invalid_arg "Tuple_db: tuple member equals p";
  sorted

let add t ~p ~ids w =
  let key = normalize t ~p ids in
  let inner =
    match Hashtbl.find_opt t.tbl p with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 16 in
      Hashtbl.add t.tbl p h;
      h
  in
  match Hashtbl.find_opt inner key with
  | Some old -> Hashtbl.replace inner key (old +. w)
  | None -> Hashtbl.add inner key w

let count t ~p ~ids =
  match Hashtbl.find_opt t.tbl p with
  | None -> 0.
  | Some inner -> (
    match Hashtbl.find_opt inner (normalize t ~p ids) with
    | Some w -> w
    | None -> 0.)

let iter_p t p f =
  match Hashtbl.find_opt t.tbl p with
  | None -> ()
  | Some inner -> Hashtbl.iter f inner

let iter t f =
  Hashtbl.iter (fun p inner -> Hashtbl.iter (fun ids w -> f p ids w) inner) t.tbl

let n_entries t = Hashtbl.fold (fun _ inner acc -> acc + Hashtbl.length inner) t.tbl 0

let default_max_between arity = if arity <= 2 then 24 else if arity = 3 then 12 else 10

(* All [k]-subsets of [l], each sorted as [l] is. *)
let rec subsets k l =
  if k = 0 then [ [] ]
  else
    match l with
    | [] -> []
    | x :: rest ->
      List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest

let build_stream ~arity ~capacity_bytes ~size_of ?max_between feed =
  let max_between =
    match max_between with Some m -> m | None -> default_max_between arity
  in
  let db = create ~arity in
  let q = Qset.create ~capacity_bytes ~size_of in
  let last = ref (-1) in
  let buffer = ref [] in
  let emit p =
    if p <> !last then begin
      last := p;
      buffer := [];
      let had_prior =
        Qset.reference q p ~between:(fun inter -> buffer := inter :: !buffer)
      in
      if had_prior then begin
        (* Most recent [max_between] interveners. *)
        let rec take n = function
          | [] -> []
          | _ when n = 0 -> []
          | x :: rest -> x :: take (n - 1) rest
        in
        let inter = List.sort compare (take max_between !buffer) in
        List.iter (fun ids -> add db ~p ~ids 1.) (subsets arity inter)
      end
    end
  in
  feed emit;
  { db; qstats = Qset.stats q }

let build_place ?(keep = fun _ -> true) ~arity ~capacity_bytes ?max_between chunks
    trace =
  let feed emit =
    Trace.iter
      (fun (e : Event.t) ->
        if keep e.proc then
          Chunk.iter_range chunks ~proc:e.proc ~offset:e.offset ~len:e.len emit)
      trace
  in
  build_stream ~arity ~capacity_bytes ~size_of:(Chunk.size_of chunks) ?max_between
    feed
