(** Popular-procedure selection.

    Following Hashemi et al. (adopted by the paper "for efficiency
    reasons"), only frequently executed procedures participate in relation
    graph construction and cache-conscious placement; the rest are placed in
    the gaps and the tail of the layout. *)

type t = {
  is_popular : bool array;  (** indexed by procedure id *)
  ranked : int array;  (** popular ids, most referenced first *)
  popular_bytes : int;  (** total code size of the popular set *)
}

val select :
  ?coverage:float ->
  ?min_refs:int ->
  ?max_procs:int ->
  Trg_program.Program.t ->
  Trg_trace.Tstats.t ->
  t
(** Ranks procedures by dynamic reference count and marks as popular the
    smallest prefix covering [coverage] (default 0.99) of all dynamic
    references, subject to: a procedure needs at least [min_refs]
    references (default 2) to qualify, and at most [max_procs] (default
    unbounded) procedures are selected. *)

val n_popular : t -> int

val keep : t -> int -> bool
(** [keep t p] = [t.is_popular.(p)] — shaped for the [?keep] arguments of
    the graph builders. *)

val unpopular : t -> int array
(** Ids not selected, in ascending id (source) order. *)
