module Chunk = Trg_program.Chunk
module Trace = Trg_trace.Trace
module Event = Trg_trace.Event

let compute chunks trace =
  let counts = Array.make (max 1 (Chunk.total chunks)) 0 in
  Trace.iter
    (fun (e : Event.t) ->
      Chunk.iter_range chunks ~proc:e.proc ~offset:e.offset ~len:e.len (fun c ->
          counts.(c) <- counts.(c) + 1))
    trace;
  counts
