module Program = Trg_program.Program
module Chunk = Trg_program.Chunk
module Trace = Trg_trace.Trace
module Event = Trg_trace.Event

type built = { graph : Graph.t; qstats : Qset.stats }

let default_chunk_size = 256

let build_stream ~capacity_bytes ~size_of feed =
  let graph = Graph.create ~hint:1024 () in
  let q = Qset.create ~capacity_bytes ~size_of in
  let last = ref (-1) in
  let emit p =
    if p <> !last then begin
      last := p;
      ignore (Qset.reference q p ~between:(fun inter -> Graph.add_edge graph p inter 1.))
    end
  in
  feed emit;
  { graph; qstats = Qset.stats q }

let build_select ?(keep = fun _ -> true) ~capacity_bytes program trace =
  let feed emit =
    Trace.iter (fun (e : Event.t) -> if keep e.proc then emit e.proc) trace
  in
  build_stream ~capacity_bytes ~size_of:(Program.size program) feed

let build_place ?(keep = fun _ -> true) ~capacity_bytes chunks trace =
  let feed emit =
    Trace.iter
      (fun (e : Event.t) ->
        if keep e.proc then
          Chunk.iter_range chunks ~proc:e.proc ~offset:e.offset ~len:e.len emit)
      trace
  in
  build_stream ~capacity_bytes ~size_of:(Chunk.size_of chunks) feed
