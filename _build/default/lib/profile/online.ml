module Program = Trg_program.Program
module Chunk = Trg_program.Chunk
module Event = Trg_trace.Event
module Tstats = Trg_trace.Tstats

type t = {
  program : Program.t;
  chunks : Chunk.t;
  select_graph : Graph.t;
  select_q : Qset.t;
  place_graph : Graph.t;
  place_q : Qset.t;
  mutable last_select : int;
  mutable last_place : int;
  enter_counts : int array;
  ref_counts : int array;
  mutable n_events : int;
  mutable n_transitions : int;
  mutable bytes : int;
}

let create ~capacity_bytes program chunks =
  let n = Program.n_procs program in
  {
    program;
    chunks;
    select_graph = Graph.create ~hint:1024 ();
    select_q = Qset.create ~capacity_bytes ~size_of:(Program.size program);
    place_graph = Graph.create ~hint:4096 ();
    place_q = Qset.create ~capacity_bytes ~size_of:(Chunk.size_of chunks);
    last_select = -1;
    last_place = -1;
    enter_counts = Array.make n 0;
    ref_counts = Array.make n 0;
    n_events = 0;
    n_transitions = 0;
    bytes = 0;
  }

let observe t (e : Event.t) =
  t.n_events <- t.n_events + 1;
  t.ref_counts.(e.proc) <- t.ref_counts.(e.proc) + 1;
  t.bytes <- t.bytes + e.len;
  (match e.kind with
  | Event.Enter ->
    t.enter_counts.(e.proc) <- t.enter_counts.(e.proc) + 1;
    t.n_transitions <- t.n_transitions + 1
  | Event.Resume -> t.n_transitions <- t.n_transitions + 1
  | Event.Run -> ());
  (* Procedure-granularity TRG: consecutive duplicates collapse. *)
  if e.proc <> t.last_select then begin
    t.last_select <- e.proc;
    ignore
      (Qset.reference t.select_q e.proc ~between:(fun q ->
           Graph.add_edge t.select_graph e.proc q 1.))
  end;
  (* Chunk-granularity TRG. *)
  Chunk.iter_range t.chunks ~proc:e.proc ~offset:e.offset ~len:e.len (fun c ->
      if c <> t.last_place then begin
        t.last_place <- c;
        ignore
          (Qset.reference t.place_q c ~between:(fun q ->
               Graph.add_edge t.place_graph c q 1.))
      end)

let events_seen t = t.n_events

type snapshot = { tstats : Tstats.t; select : Trg.built; place : Trg.built }

let finish t =
  let n_procs_referenced =
    Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 t.ref_counts
  in
  {
    tstats =
      {
        Tstats.n_events = t.n_events;
        n_transitions = t.n_transitions;
        n_procs_referenced;
        enter_counts = Array.copy t.enter_counts;
        ref_counts = Array.copy t.ref_counts;
        bytes_executed = t.bytes;
      };
    select = { Trg.graph = t.select_graph; qstats = Qset.stats t.select_q };
    place = { Trg.graph = t.place_graph; qstats = Qset.stats t.place_q };
  }
