(** Generalised temporal-relationship database for A-way associative
    caches (Section 6: "the implementation for other associativities
    follows directly").

    For an A-way LRU cache, a resident block [p] is evicted only when [A]
    {e distinct} blocks mapping to its set intervene between consecutive
    references.  [D(p, S)] therefore records, for sets [S] of exactly
    [arity = A] distinct block ids, how often all of [S] appeared between
    two consecutive occurrences of [p].  Arity 2 coincides with
    {!Pair_db}. *)

type t

type built = { db : t; qstats : Qset.stats }

val create : arity:int -> t
(** [arity >= 1]. *)

val arity : t -> int

val add : t -> p:int -> ids:int list -> float -> unit
(** [ids] must hold [arity] distinct ids, none equal to [p]; order is
    irrelevant. *)

val count : t -> p:int -> ids:int list -> float

val iter_p : t -> int -> (int list -> float -> unit) -> unit
(** The id list passed to the callback is sorted ascending. *)

val iter : t -> (int -> int list -> float -> unit) -> unit
(** [iter t f] applies [f p ids w] to every association. *)

val n_entries : t -> int

val build_stream :
  arity:int ->
  capacity_bytes:int ->
  size_of:(int -> int) ->
  ?max_between:int ->
  ((int -> unit) -> unit) ->
  built
(** Q-driven construction: each re-reference of [p] enumerates all
    [arity]-subsets of the (most recent [max_between]) intervening ids.
    [max_between] defaults to 24 for arity 2, 12 for arity 3 and 10
    beyond, to bound the binomial enumeration. *)

val build_place :
  ?keep:(int -> bool) ->
  arity:int ->
  capacity_bytes:int ->
  ?max_between:int ->
  Trg_program.Chunk.t ->
  Trg_trace.Trace.t ->
  built
(** Chunk-granularity database from a trace. *)
