lib/profile/popularity.mli: Trg_program Trg_trace
