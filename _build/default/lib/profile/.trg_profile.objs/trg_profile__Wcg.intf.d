lib/profile/wcg.mli: Graph Trg_trace
