lib/profile/qset.mli:
