lib/profile/tuple_db.mli: Qset Trg_program Trg_trace
