lib/profile/wcg.ml: Graph Trg_trace
