lib/profile/chunk_counts.mli: Trg_program Trg_trace
