lib/profile/graph.mli: Format
