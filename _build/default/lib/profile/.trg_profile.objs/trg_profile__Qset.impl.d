lib/profile/qset.ml: Hashtbl List
