lib/profile/trg.mli: Graph Qset Trg_program Trg_trace
