lib/profile/trg.ml: Graph Qset Trg_program Trg_trace
