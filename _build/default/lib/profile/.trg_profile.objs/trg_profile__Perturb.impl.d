lib/profile/perturb.ml: Graph Pair_db Trg_util Tuple_db
