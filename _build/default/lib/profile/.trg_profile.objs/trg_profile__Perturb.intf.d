lib/profile/perturb.mli: Graph Pair_db Trg_util Tuple_db
