lib/profile/chunk_counts.ml: Array Trg_program Trg_trace
