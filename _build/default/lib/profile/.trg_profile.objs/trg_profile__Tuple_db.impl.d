lib/profile/tuple_db.ml: Hashtbl List Qset Trg_program Trg_trace
