lib/profile/online.mli: Trg Trg_program Trg_trace
