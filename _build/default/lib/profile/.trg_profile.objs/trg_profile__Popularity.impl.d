lib/profile/popularity.ml: Array List Trg_program Trg_trace
