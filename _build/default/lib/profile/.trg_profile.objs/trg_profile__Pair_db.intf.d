lib/profile/pair_db.mli: Qset Trg_program Trg_trace
