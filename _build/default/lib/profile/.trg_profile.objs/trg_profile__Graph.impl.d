lib/profile/graph.ml: Array Buffer Format Hashtbl List Printf
