lib/profile/online.ml: Array Graph Qset Trg Trg_program Trg_trace
