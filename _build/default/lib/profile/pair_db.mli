(** The temporal-relationship database for set-associative caches
    (Section 6).

    For an A-way associative cache, a single intervening block cannot evict
    a resident block; A distinct conflicting blocks are needed.  For the
    2-way case the paper replaces TRG_place with a database [D] recording
    the number of times a {e pair} of code blocks [{r, s}] appears between
    two consecutive occurrences of a block [p]. *)

type t

type built = { db : t; qstats : Qset.stats }

val create : unit -> t

val add : t -> p:int -> r:int -> s:int -> float -> unit
(** Accumulates weight on [D(p, {r, s})].  [r] and [s] are unordered and
    must differ from each other and from [p]. *)

val count : t -> p:int -> r:int -> s:int -> float
(** 0 when the association was never recorded. *)

val iter_p : t -> int -> (int -> int -> float -> unit) -> unit
(** [iter_p t p f] applies [f r s w] to every recorded pair for [p]
    (with [r < s]). *)

val iter : t -> (int -> int -> int -> float -> unit) -> unit
(** [iter t f] applies [f p r s w] to every association. *)

val n_entries : t -> int
(** Total number of (p, {r,s}) associations recorded. *)

val build_stream :
  capacity_bytes:int ->
  size_of:(int -> int) ->
  ?max_between:int ->
  ((int -> unit) -> unit) ->
  built
(** Q-driven construction, mirroring {!Trg.build_stream}: when a reference
    to [p] finds a previous occurrence in Q, every unordered pair of
    distinct ids between the two occurrences increments [D(p, {r, s})].
    Intervals longer than [max_between] ids (default 64) are truncated to
    their most recent [max_between] members to bound the quadratic pair
    enumeration; such long intervals are capacity-dominated and carry
    little placement signal. *)

val build_place :
  ?keep:(int -> bool) ->
  capacity_bytes:int ->
  ?max_between:int ->
  Trg_program.Chunk.t ->
  Trg_trace.Trace.t ->
  built
(** Chunk-granularity database from a trace; [keep] filters on the owning
    procedure. *)
