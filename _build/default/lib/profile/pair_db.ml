module Chunk = Trg_program.Chunk
module Trace = Trg_trace.Trace
module Event = Trg_trace.Event

type t = (int, (int, float) Hashtbl.t) Hashtbl.t
(* p -> packed canonical (r, s) -> weight *)

type built = { db : t; qstats : Qset.stats }

let create () : t = Hashtbl.create 256

let key r s =
  if r = s then invalid_arg "Pair_db: pair members must differ";
  if r < s then (r lsl 24) lor s else (s lsl 24) lor r

let add t ~p ~r ~s w =
  if r = p || s = p then invalid_arg "Pair_db.add: pair member equals p";
  let inner =
    match Hashtbl.find_opt t p with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 16 in
      Hashtbl.add t p h;
      h
  in
  let k = key r s in
  match Hashtbl.find_opt inner k with
  | Some old -> Hashtbl.replace inner k (old +. w)
  | None -> Hashtbl.add inner k w

let count t ~p ~r ~s =
  match Hashtbl.find_opt t p with
  | None -> 0.
  | Some inner -> (
    match Hashtbl.find_opt inner (key r s) with Some w -> w | None -> 0.)

let iter_p t p f =
  match Hashtbl.find_opt t p with
  | None -> ()
  | Some inner -> Hashtbl.iter (fun k w -> f (k lsr 24) (k land 0xFFFFFF) w) inner

let iter t f =
  Hashtbl.iter
    (fun p inner -> Hashtbl.iter (fun k w -> f p (k lsr 24) (k land 0xFFFFFF) w) inner)
    t

let n_entries t = Hashtbl.fold (fun _ inner acc -> acc + Hashtbl.length inner) t 0

let build_stream ~capacity_bytes ~size_of ?(max_between = 64) feed =
  let db = create () in
  let q = Qset.create ~capacity_bytes ~size_of in
  let last = ref (-1) in
  let buffer = ref [] in
  let emit p =
    if p <> !last then begin
      last := p;
      buffer := [];
      let had_prior =
        Qset.reference q p ~between:(fun inter -> buffer := inter :: !buffer)
      in
      if had_prior then begin
        (* [buffer] holds the intervening ids, most recent first; keep the
           most recent [max_between] of them. *)
        let rec take n = function
          | [] -> []
          | _ when n = 0 -> []
          | x :: rest -> x :: take (n - 1) rest
        in
        let inter = take max_between !buffer in
        let rec pairs = function
          | [] -> ()
          | r :: rest ->
            List.iter (fun s -> add db ~p ~r ~s 1.) rest;
            pairs rest
        in
        pairs inter
      end
    end
  in
  feed emit;
  { db; qstats = Qset.stats q }

let build_place ?(keep = fun _ -> true) ~capacity_bytes ?max_between chunks trace =
  let feed emit =
    Trace.iter
      (fun (e : Event.t) ->
        if keep e.proc then
          Chunk.iter_range chunks ~proc:e.proc ~offset:e.offset ~len:e.len emit)
      trace
  in
  build_stream ~capacity_bytes ~size_of:(Chunk.size_of chunks) ?max_between feed
