(** Temporal relationship graph construction (Section 3).

    A TRG's edge weight [W(e_{p,q})] counts how often [q] was referenced
    between two consecutive references to [p] (or vice versa) while [p] was
    still resident in the ordered set Q — i.e. how much the execution
    alternates between [p] and [q] within a cache-sized window, regardless
    of their call-graph relationship.

    Our placement algorithm uses two TRGs built from the same trace:
    TRG_select over whole procedures (drives merge order) and TRG_place
    over fixed-size procedure chunks (drives cache-relative alignment). *)

type built = {
  graph : Graph.t;
  qstats : Qset.stats;  (** Q population statistics (Table 1's last column) *)
}

val default_chunk_size : int
(** 256 bytes — the value the paper found to work well. *)

val build_stream :
  capacity_bytes:int ->
  size_of:(int -> int) ->
  ((int -> unit) -> unit) ->
  built
(** [build_stream ~capacity_bytes ~size_of feed] runs the Q algorithm over
    the id stream produced by [feed emit].  Consecutive duplicate ids are
    collapsed.  This is the primitive the trace-level builders wrap; it is
    exposed for tests and for custom granularities. *)

val build_select :
  ?keep:(int -> bool) ->
  capacity_bytes:int ->
  Trg_program.Program.t ->
  Trg_trace.Trace.t ->
  built
(** Procedure-granularity TRG.  [keep] filters the procedures fed to Q
    (used to restrict to popular procedures, after Hashemi et al.);
    default keeps all. *)

val build_place :
  ?keep:(int -> bool) ->
  capacity_bytes:int ->
  Trg_program.Chunk.t ->
  Trg_trace.Trace.t ->
  built
(** Chunk-granularity TRG over global chunk ids.  [keep] filters on the
    {e owning procedure} of each chunk. *)
