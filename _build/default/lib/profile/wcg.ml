module Trace = Trg_trace.Trace
module Event = Trg_trace.Event

let build_with ~count_resume trace =
  let g = Graph.create () in
  let prev = ref (-1) in
  Trace.iter
    (fun (e : Event.t) ->
      (match e.kind with
      | Event.Enter -> if !prev >= 0 && !prev <> e.proc then Graph.add_edge g !prev e.proc 1.
      | Event.Resume ->
        if count_resume && !prev >= 0 && !prev <> e.proc then
          Graph.add_edge g !prev e.proc 1.
      | Event.Run -> ());
      prev := e.proc)
    trace;
  g

let build trace = build_with ~count_resume:true trace

let call_counts trace = build_with ~count_resume:false trace
