(** Online (instrumentation-time) profile construction.

    The paper's ongoing work builds the TRGs {e during} program execution
    rather than from a stored trace (Section 4.4).  This module is that
    consumer: feed it events as they happen and it maintains the dynamic
    statistics, the procedure-granularity TRG and the chunk-granularity
    TRG incrementally, never materialising the trace.

    One honest difference from the offline pipeline: popularity is not
    known until the run ends, so the online TRGs contain {e all} executed
    procedures; the placement stage filters to the popular set afterwards.
    The offline builders instead exclude unpopular procedures from Q
    itself, which perturbs edge weights slightly.  The [online] experiment
    measures how much that difference costs. *)

type t

val create :
  capacity_bytes:int -> Trg_program.Program.t -> Trg_program.Chunk.t -> t

val observe : t -> Trg_trace.Event.t -> unit
(** Process one event: updates reference counts, transitions, and both
    TRGs.  O(Q population) per event, as in the paper's instrumented
    runs. *)

val events_seen : t -> int

type snapshot = {
  tstats : Trg_trace.Tstats.t;
  select : Trg.built;  (** unfiltered procedure-granularity TRG *)
  place : Trg.built;  (** unfiltered chunk-granularity TRG *)
}

val finish : t -> snapshot
(** Closes the profile.  The profiler may keep being fed afterwards;
    [finish] snapshots current state (graphs are shared, not copied). *)
