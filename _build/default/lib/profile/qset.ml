type node = {
  id : int;
  mutable prev : node option;
  mutable next : node option;
}

type stats = { avg_entries : float; max_entries : int; steps : int }

type t = {
  capacity_bytes : int;
  size_of : int -> int;
  index : (int, node) Hashtbl.t;
  mutable head : node option; (* least recent *)
  mutable tail : node option; (* most recent *)
  mutable bytes : int;
  mutable count : int;
  mutable sum_len : int;
  mutable max_len : int;
  mutable steps : int;
}

let create ~capacity_bytes ~size_of =
  if capacity_bytes <= 0 then invalid_arg "Qset.create: capacity must be positive";
  {
    capacity_bytes;
    size_of;
    index = Hashtbl.create 64;
    head = None;
    tail = None;
    bytes = 0;
    count = 0;
    sum_len = 0;
    max_len = 0;
    steps = 0;
  }

let append t id =
  let node = { id; prev = t.tail; next = None } in
  (match t.tail with
  | Some old -> old.next <- Some node
  | None -> t.head <- Some node);
  t.tail <- Some node;
  Hashtbl.replace t.index id node;
  t.bytes <- t.bytes + t.size_of id;
  t.count <- t.count + 1

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  t.bytes <- t.bytes - t.size_of node.id;
  t.count <- t.count - 1

let evict_while_allowed t =
  let continue = ref true in
  while !continue do
    match t.head with
    | Some oldest when t.count > 1 && t.bytes - t.size_of oldest.id >= t.capacity_bytes ->
      unlink t oldest;
      Hashtbl.remove t.index oldest.id
    | Some _ | None -> continue := false
  done

let record_step t =
  t.steps <- t.steps + 1;
  t.sum_len <- t.sum_len + t.count;
  if t.count > t.max_len then t.max_len <- t.count

let reference t p ~between =
  let result =
    match Hashtbl.find_opt t.index p with
    | Some old ->
      (* Report every id referenced after the previous occurrence of p;
         these become TRG edge increments e_{p,q}. *)
      let cursor = ref old.next in
      let continue = ref true in
      while !continue do
        match !cursor with
        | Some n ->
          between n.id;
          cursor := n.next
        | None -> continue := false
      done;
      unlink t old;
      (* [index] entry for p is overwritten by [append] below. *)
      append t p;
      true
    | None ->
      append t p;
      evict_while_allowed t;
      false
  in
  record_step t;
  result

let members t =
  let rec walk acc = function
    | Some n -> walk (n.id :: acc) n.next
    | None -> List.rev acc
  in
  walk [] t.head

let length t = t.count

let total_bytes t = t.bytes

let stats t =
  {
    avg_entries =
      (if t.steps = 0 then 0. else float_of_int t.sum_len /. float_of_int t.steps);
    max_entries = t.max_len;
    steps = t.steps;
  }
