lib/cache/sim.ml: Array Config Hashtbl Trg_program Trg_trace
