lib/cache/reuse.ml: Array Float Hashtbl List Trg_program Trg_trace
