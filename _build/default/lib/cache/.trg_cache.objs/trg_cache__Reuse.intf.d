lib/cache/reuse.mli: Trg_program Trg_trace
