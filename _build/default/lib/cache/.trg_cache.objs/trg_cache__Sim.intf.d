lib/cache/sim.mli: Config Trg_program Trg_trace
