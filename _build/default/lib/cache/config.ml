type t = { size : int; line_size : int; assoc : int }

let make ~size ~line_size ~assoc =
  if size <= 0 || line_size <= 0 || assoc <= 0 then
    invalid_arg "Cache.Config.make: all fields must be positive";
  if size mod (line_size * assoc) <> 0 then
    invalid_arg "Cache.Config.make: size must be a multiple of line_size * assoc";
  { size; line_size; assoc }

let default = make ~size:8192 ~line_size:32 ~assoc:1

let n_lines t = t.size / t.line_size

let n_sets t = t.size / (t.line_size * t.assoc)

let lines_of_bytes t bytes =
  if bytes <= 0 then 0 else (bytes + t.line_size - 1) / t.line_size

let pp ppf t =
  Format.fprintf ppf "%dB/%dB-line/%d-way" t.size t.line_size t.assoc
