(** Exact LRU stack-distance (reuse-distance) analysis of a layout's line
    reference stream.

    The stack distance of a reference is the number of distinct other
    lines touched since the previous reference to the same line.  By the
    LRU stack property, a fully associative LRU cache of [c] lines misses
    exactly on the references with distance [>= c] (plus first touches),
    so one pass yields the whole capacity-miss curve — the floor beneath
    every conflict-miss number in the evaluation, and the quantity the
    ordered set Q approximates with its 2x-cache byte bound.

    Computed with a Fenwick tree over reference timestamps
    (O(n log n)). *)

type t

val compute :
  Trg_program.Program.t ->
  Trg_program.Layout.t ->
  line_size:int ->
  Trg_trace.Trace.t ->
  t

val total_refs : t -> int
(** Line references analysed. *)

val cold_refs : t -> int
(** First touches (infinite distance). *)

val misses_at : t -> int -> int
(** [misses_at t c] — misses of a [c]-line fully associative LRU cache:
    cold references plus references with stack distance [>= c]. *)

val miss_rate_at : t -> int -> float

val percentile : t -> float -> int
(** [percentile t p] — the [p]-th percentile (0..100) of finite stack
    distances; 0 when there are none. *)

val histogram : t -> (int * int) list
(** (distance, count) pairs for finite distances, ascending. *)
