module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Trace = Trg_trace.Trace
module Event = Trg_trace.Event

type t = {
  total_refs : int;
  cold_refs : int;
  counts : (int, int) Hashtbl.t; (* finite distance -> number of references *)
}

(* Fenwick tree over timestamps: tree.(i) counts marked positions. *)
module Bit = struct
  type t = { data : int array }

  let create n = { data = Array.make (n + 1) 0 }

  let add t i delta =
    let i = ref (i + 1) in
    while !i < Array.length t.data do
      t.data.(!i) <- t.data.(!i) + delta;
      i := !i + (!i land - !i)
    done

  (* Sum of marks at positions [0, i]. *)
  let prefix t i =
    let i = ref (i + 1) in
    let acc = ref 0 in
    while !i > 0 do
      acc := !acc + t.data.(!i);
      i := !i - (!i land - !i)
    done;
    !acc
end

let compute program layout ~line_size trace =
  let n = Program.n_procs program in
  let addr = Array.init n (Layout.address layout) in
  (* Count line references first to size the tree. *)
  let n_refs = ref 0 in
  Trace.iter
    (fun (e : Event.t) ->
      let base = addr.(e.proc) + e.offset in
      n_refs := !n_refs + ((base + e.len - 1) / line_size) - (base / line_size) + 1)
    trace;
  let bit = Bit.create (max 1 !n_refs) in
  let last_seen = Hashtbl.create 4096 in
  let counts = Hashtbl.create 256 in
  let marked = ref 0 in
  let time = ref 0 in
  let cold = ref 0 in
  let touch la =
    (match Hashtbl.find_opt last_seen la with
    | None -> incr cold
    | Some prev ->
      (* Distinct other lines since [prev]: marked positions strictly
         after prev (the line's own mark sits exactly at prev). *)
      let d = !marked - Bit.prefix bit prev in
      Hashtbl.replace counts d (1 + (try Hashtbl.find counts d with Not_found -> 0));
      Bit.add bit prev (-1);
      decr marked);
    Hashtbl.replace last_seen la !time;
    Bit.add bit !time 1;
    incr marked;
    incr time
  in
  Trace.iter
    (fun (e : Event.t) ->
      let base = addr.(e.proc) + e.offset in
      for la = base / line_size to (base + e.len - 1) / line_size do
        touch la
      done)
    trace;
  { total_refs = !n_refs; cold_refs = !cold; counts }

let total_refs t = t.total_refs

let cold_refs t = t.cold_refs

let histogram t =
  List.sort compare (Hashtbl.fold (fun d c acc -> (d, c) :: acc) t.counts [])

let misses_at t c =
  Hashtbl.fold (fun d count acc -> if d >= c then acc + count else acc) t.counts
    t.cold_refs

let miss_rate_at t c =
  if t.total_refs = 0 then 0. else float_of_int (misses_at t c) /. float_of_int t.total_refs

let percentile t p =
  let finite = t.total_refs - t.cold_refs in
  if finite = 0 then 0
  else begin
    let target = int_of_float (Float.of_int finite *. p /. 100.) in
    let target = max 1 (min finite target) in
    let acc = ref 0 in
    let ans = ref 0 in
    (try
       List.iter
         (fun (d, c) ->
           acc := !acc + c;
           if !acc >= target then begin
             ans := d;
             raise Exit
           end)
         (histogram t)
     with Exit -> ());
    !ans
  end
