(** Instruction-cache configuration.

    The paper's evaluation targets an 8 KB direct-mapped cache with 32-byte
    lines ({!default}); Section 6 extends the placement algorithm to
    set-associative caches with LRU replacement. *)

type t = {
  size : int;  (** total capacity in bytes *)
  line_size : int;  (** bytes per line *)
  assoc : int;  (** ways; 1 = direct-mapped *)
}

val make : size:int -> line_size:int -> assoc:int -> t
(** Validates positivity and that [size] is divisible by
    [line_size * assoc]. *)

val default : t
(** 8 KB, 32-byte lines, direct-mapped — the configuration used for every
    number reported in the paper's Section 5. *)

val n_lines : t -> int
(** [size / line_size]: the number of cache lines (all ways together). *)

val n_sets : t -> int
(** [size / (line_size * assoc)]: the number of sets. *)

val lines_of_bytes : t -> int -> int
(** Number of lines needed to hold a code object of the given byte size
    (rounded up); at least 1 for positive sizes. *)

val pp : Format.formatter -> t -> unit
