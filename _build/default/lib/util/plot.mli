(** ASCII plotting for the experiment harness.

    The paper's Figure 5 plots cumulative distributions of miss rates and
    Figure 6 plots metric-vs-miss scatter charts; these renderers let
    [bench_output.txt] carry the same visual information as the paper's
    figures, not just summary tables. *)

val markers : char array
(** Marker assigned to each series, in order ('*', '+', 'o', 'x', ...). *)

val cdf :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  (string * float array) list ->
  string
(** [cdf series] renders the empirical CDF of each named sample on one
    canvas: x spans the pooled value range, y is the cumulative fraction
    [0, 1].  A series drawn to the {e left} of another dominates it (lower
    values), exactly as in the paper's Figure 5.  Includes a legend and
    numeric x-axis ticks.  Default canvas 72x20. *)

val scatter :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  (string * (float * float) array) list ->
  string
(** [scatter series] renders point clouds on shared axes (x and y ranges
    pooled across series). *)
