type t = {
  mutable state : int64;
  mutable spare : float option; (* cached second Box–Muller deviate *)
}

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed =
  { state = Int64.of_int seed; spare = None }

let copy t = { state = t.state; spare = t.spare }

(* splitmix64 step: advance the counter and scramble it. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  { state = seed; spare = None }

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let to_unit_float t =
  (* 53 random mantissa bits -> [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits *. 0x1.0p-53

let float t bound = to_unit_float t *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = to_unit_float t < p

let normal t =
  match t.spare with
  | Some v ->
    t.spare <- None;
    v
  | None ->
    (* Box–Muller; u1 must be nonzero for the log. *)
    let rec nonzero () =
      let u = to_unit_float t in
      if u > 0. then u else nonzero ()
    in
    let u1 = nonzero () and u2 = to_unit_float t in
    let r = sqrt (-2. *. log u1) in
    let theta = 2. *. Float.pi *. u2 in
    t.spare <- Some (r *. sin theta);
    r *. cos theta

let log_normal t ~mu ~sigma = exp (mu +. (sigma *. normal t))

let exponential t ~mean =
  let rec nonzero () =
    let u = to_unit_float t in
    if u > 0. then u else nonzero ()
  in
  -.mean *. log (nonzero ())

let zipf t ~n ~s =
  assert (n > 0);
  (* Inverse-CDF on the generalized harmonic weights.  n is small (a few
     thousand) everywhere we use this, so the linear scan is fine. *)
  let total = ref 0. in
  for k = 1 to n do
    total := !total +. (1. /. (float_of_int k ** s))
  done;
  let target = to_unit_float t *. !total in
  let rec find k acc =
    if k > n then n - 1
    else
      let acc = acc +. (1. /. (float_of_int k ** s)) in
      if acc >= target then k - 1 else find (k + 1) acc
  in
  find 1 0.

let zipf_sampler ~n ~s =
  assert (n > 0);
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    acc := !acc +. (1. /. (float_of_int (k + 1) ** s));
    cdf.(k) <- !acc
  done;
  let total = !acc in
  fun t ->
    let target = to_unit_float t *. total in
    (* First index whose cumulative weight reaches [target]. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) >= target then hi := mid else lo := mid + 1
    done;
    !lo

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let sample t a k =
  assert (k <= Array.length a);
  let pool = Array.copy a in
  for i = 0 to k - 1 do
    let j = int_in t i (Array.length pool - 1) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  Array.sub pool 0 k
