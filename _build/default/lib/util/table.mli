(** Plain-text table rendering for the experiment harness.

    The evaluation binaries print each reproduced paper table/figure as an
    aligned ASCII table so [bench_output.txt] is directly comparable with
    the paper. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out [rows] under [header] with column
    separators and a rule under the header.  Columns default to
    right-alignment except the first, which is left-aligned; [?align]
    overrides per column.  Rows shorter than the header are padded with
    empty cells. *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point rendering, 2 decimals by default. *)

val fmt_pct : ?decimals:int -> float -> string
(** [fmt_pct x] renders the ratio [x] as a percentage ("4.86%"). *)

val fmt_bytes : int -> string
(** Human-readable byte count ("2277 K" style, matching the paper). *)

val fmt_int : int -> string
(** Thousands-separated integer ("1,234,567"). *)

val section : string -> unit
(** Prints a visually distinct section banner. *)
