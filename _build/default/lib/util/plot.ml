let markers = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let range_of values =
  let lo = Array.fold_left Float.min values.(0) values in
  let hi = Array.fold_left Float.max values.(0) values in
  if hi > lo then (lo, hi) else (lo -. 1., hi +. 1.)

(* Map [v] in [lo, hi] to a column/row index in [0, cells). *)
let scale ~lo ~hi ~cells v =
  let t = (v -. lo) /. (hi -. lo) in
  let i = int_of_float (t *. float_of_int (cells - 1)) in
  max 0 (min (cells - 1) i)

let render_canvas ~width ~height ~x_lo ~x_hi ~y_axis_label plot_points =
  let grid = Array.make_matrix height width ' ' in
  plot_points (fun ~col ~row marker ->
      if row >= 0 && row < height && col >= 0 && col < width then
        grid.(height - 1 - row).(col) <- marker);
  let buf = Buffer.create ((width + 12) * (height + 3)) in
  Array.iteri
    (fun i line ->
      let frac =
        match y_axis_label (height - 1 - i) with
        | Some label -> label
        | None -> "      "
      in
      Buffer.add_string buf frac;
      Buffer.add_char buf '|';
      Buffer.add_string buf (String.init width (fun j -> line.(j)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (String.make 6 ' ');
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  let left = Printf.sprintf "%-10.4g" x_lo in
  let right = Printf.sprintf "%10.4g" x_hi in
  Buffer.add_string buf (String.make 7 ' ');
  Buffer.add_string buf left;
  Buffer.add_string buf (String.make (max 1 (width - String.length left - String.length right)) ' ');
  Buffer.add_string buf right;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let legend series =
  String.concat "   "
    (List.mapi
       (fun i (name, _) -> Printf.sprintf "%c %s" markers.(i mod Array.length markers) name)
       series)

let cdf ?(width = 72) ?(height = 20) ?(x_label = "") series =
  if series = [] then invalid_arg "Plot.cdf: no series";
  List.iter
    (fun (_, s) -> if Array.length s = 0 then invalid_arg "Plot.cdf: empty series")
    series;
  let all = Array.concat (List.map snd series) in
  let x_lo, x_hi = range_of all in
  let body =
    render_canvas ~width ~height ~x_lo ~x_hi
      ~y_axis_label:(fun row ->
        if row = height - 1 then Some "1.00  "
        else if row = 0 then Some "0.00  "
        else if row = (height - 1) / 2 then Some "0.50  "
        else None)
      (fun put ->
        List.iteri
          (fun si (_, sample) ->
            let sorted = Array.copy sample in
            Array.sort compare sorted;
            let n = Array.length sorted in
            Array.iteri
              (fun i v ->
                let frac = float_of_int (i + 1) /. float_of_int n in
                put
                  ~col:(scale ~lo:x_lo ~hi:x_hi ~cells:width v)
                  ~row:(scale ~lo:0. ~hi:1. ~cells:height frac)
                  markers.(si mod Array.length markers))
              sorted)
          series)
  in
  body
  ^ (if x_label = "" then "" else Printf.sprintf "%*s\n" ((width / 2) + 7 + (String.length x_label / 2)) x_label)
  ^ "      " ^ legend series ^ "\n"

let scatter ?(width = 72) ?(height = 20) ?(x_label = "") ?(y_label = "") series =
  if series = [] then invalid_arg "Plot.scatter: no series";
  let xs = Array.concat (List.map (fun (_, pts) -> Array.map fst pts) series) in
  let ys = Array.concat (List.map (fun (_, pts) -> Array.map snd pts) series) in
  if Array.length xs = 0 then invalid_arg "Plot.scatter: no points";
  let x_lo, x_hi = range_of xs in
  let y_lo, y_hi = range_of ys in
  let body =
    render_canvas ~width ~height ~x_lo ~x_hi
      ~y_axis_label:(fun row ->
        if row = height - 1 then Some (Printf.sprintf "%-6.3g" y_hi)
        else if row = 0 then Some (Printf.sprintf "%-6.3g" y_lo)
        else None)
      (fun put ->
        List.iteri
          (fun si (_, pts) ->
            Array.iter
              (fun (x, y) ->
                put
                  ~col:(scale ~lo:x_lo ~hi:x_hi ~cells:width x)
                  ~row:(scale ~lo:y_lo ~hi:y_hi ~cells:height y)
                  markers.(si mod Array.length markers))
              pts)
          series)
  in
  let labels =
    (if y_label = "" then "" else Printf.sprintf "      y: %s\n" y_label)
    ^ if x_label = "" then "" else Printf.sprintf "      x: %s\n" x_label
  in
  body ^ labels ^ "      " ^ legend series ^ "\n"
