let check_nonempty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty array")

let mean a =
  check_nonempty "Stats.mean" a;
  Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let variance a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. a in
    acc /. float_of_int (n - 1)
  end

let stddev a = sqrt (variance a)

let min_max a =
  check_nonempty "Stats.min_max" a;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (a.(0), a.(0)) a

let sorted a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let median a =
  check_nonempty "Stats.median" a;
  let b = sorted a in
  let n = Array.length b in
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.

let percentile a p =
  check_nonempty "Stats.percentile" a;
  let b = sorted a in
  let n = Array.length b in
  if n = 1 then b.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    b.(lo) +. (frac *. (b.(hi) -. b.(lo)))
  end

let pearson xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Stats.pearson: length mismatch";
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let mx = mean xs and my = mean ys in
    let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0. || !syy = 0. then 0. else !sxy /. sqrt (!sxx *. !syy)
  end

(* Fractional ranks with ties averaged, 1-based. *)
let ranks a =
  let n = Array.length a in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare a.(i) a.(j)) idx;
  let r = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && a.(idx.(!j + 1)) = a.(idx.(!i)) do incr j done;
    let avg = float_of_int (!i + !j + 2) /. 2. in
    for k = !i to !j do
      r.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman xs ys = pearson (ranks xs) (ranks ys)

let cdf_points a =
  check_nonempty "Stats.cdf_points" a;
  let b = sorted a in
  let n = Array.length b in
  List.init n (fun i -> (b.(i), float_of_int (i + 1) /. float_of_int n))

let histogram a ~bins =
  check_nonempty "Stats.histogram" a;
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo, hi = min_max a in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b >= bins then bins - 1 else b in
      counts.(b) <- counts.(b) + 1)
    a;
  Array.init bins (fun i -> (lo +. (float_of_int i *. width), counts.(i)))
