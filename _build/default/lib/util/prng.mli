(** Deterministic pseudo-random number generation.

    Every stochastic component of this repository (workload generation,
    profile perturbation, layout randomisation) draws from this generator so
    that experiments are exactly reproducible from a seed.  The core is
    splitmix64, which has a 64-bit state, passes BigCrush, and supports cheap
    stream splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Generators created from equal
    seeds produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator seeded from it, so
    that the two streams are statistically independent. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val normal : t -> float
(** Standard normal deviate (Box–Muller). *)

val log_normal : t -> mu:float -> sigma:float -> float
(** [log_normal t ~mu ~sigma] is [exp (mu + sigma * normal t)]. *)

val exponential : t -> mean:float -> float
(** Exponential deviate with the given mean. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] samples a rank in [\[0, n)] from a Zipf distribution with
    exponent [s] by inversion of the exact finite CDF.  O(n) per draw; use
    {!zipf_sampler} for repeated draws. *)

val zipf_sampler : n:int -> s:float -> t -> int
(** [zipf_sampler ~n ~s] precomputes the CDF once and returns a sampler doing
    O(log n) binary-search draws. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element.  The array must be non-empty. *)

val sample : t -> 'a array -> int -> 'a array
(** [sample t a k] draws [k] distinct elements uniformly (partial
    Fisher–Yates).  Requires [k <= Array.length a]. *)
