lib/util/prng.mli:
