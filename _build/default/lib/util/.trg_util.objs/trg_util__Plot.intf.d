lib/util/plot.mli:
