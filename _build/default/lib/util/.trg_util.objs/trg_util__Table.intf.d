lib/util/table.mli:
