lib/util/stats.mli:
