lib/util/heap.mli:
