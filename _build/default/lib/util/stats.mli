(** Small statistics toolkit used by the evaluation harness: summary
    statistics of miss-rate distributions (Figure 5) and the Pearson
    correlation between conflict metrics and miss counts (Figure 6). *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for arrays of length < 2. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val min_max : float array -> float * float
(** Smallest and largest value.  Raises [Invalid_argument] on empty input. *)

val median : float array -> float
(** Median (average of middle two for even lengths).  Does not mutate the
    input. *)

val percentile : float array -> float -> float
(** [percentile a p] for [p] in [\[0, 100\]], linear interpolation between
    order statistics.  Does not mutate the input. *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient of two equal-length samples.  Returns 0
    when either sample has zero variance. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation (Pearson on fractional ranks, ties averaged). *)

val cdf_points : float array -> (float * float) list
(** [cdf_points a] sorts the sample and returns [(x, F(x))] pairs where
    [F(x)] is the fraction of observations [<= x] — the exact presentation
    used by the paper's Figure 5 plots. *)

val histogram : float array -> bins:int -> (float * int) array
(** Equal-width histogram; each entry is (bin lower bound, count). *)
