type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row
    else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.make ncols 0 in
  let account row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  account header;
  List.iter account rows;
  let aligns =
    match align with
    | Some l when List.length l = ncols -> Array.of_list l
    | Some _ | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let buf = Buffer.create 1024 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad aligns.(i) widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  let rule = Array.fold_left (fun acc w -> acc + w) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make rule '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ?align ~header rows = print_string (render ?align ~header rows)

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let fmt_pct ?(decimals = 2) x = Printf.sprintf "%.*f%%" decimals (100. *. x)

let fmt_bytes n =
  if n >= 1024 then Printf.sprintf "%d K" (n / 1024) else Printf.sprintf "%d B" n

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let section title =
  let rule = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n" rule title rule
