(** Summary statistics of a trace, used to report the workload columns of
    the paper's Table 1 and to drive popularity selection. *)

type t = {
  n_events : int;  (** trace length in block runs ("basic blocks") *)
  n_transitions : int;  (** number of Enter/Resume events (calls + returns) *)
  n_procs_referenced : int;  (** distinct procedures executed *)
  enter_counts : int array;  (** per procedure, number of Enter events *)
  ref_counts : int array;  (** per procedure, number of events of any kind *)
  bytes_executed : int;  (** sum of event lengths *)
}

val compute : n_procs:int -> Trace.t -> t
(** [n_procs] sizes the per-procedure arrays; events referring to ids
    [>= n_procs] raise [Invalid_argument]. *)

val dynamic_coverage : t -> int -> float
(** Fraction of all events attributable to a given procedure. *)

val pp : Format.formatter -> t -> unit
