lib/trace/trace.ml: Array Event Hashtbl List
