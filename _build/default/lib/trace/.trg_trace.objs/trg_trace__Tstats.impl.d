lib/trace/tstats.ml: Array Event Format Printf Trace
