lib/trace/io.ml: Bytes Event Fun Int64 Printf Scanf String Trace
