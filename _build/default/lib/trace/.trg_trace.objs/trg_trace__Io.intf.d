lib/trace/io.mli: Trace
