let magic = "trgplace-trace"

let version = 1

let write_channel oc trace =
  Printf.fprintf oc "%s %d %d\n" magic version (Trace.length trace);
  Trace.iter
    (fun (e : Event.t) ->
      Printf.fprintf oc "%c %d %d %d\n" (Event.kind_to_char e.kind) e.proc e.offset
        e.len)
    trace

let read_channel ic =
  let header = input_line ic in
  let n =
    try
      Scanf.sscanf header "%s %d %d" (fun m v n ->
          if m <> magic then failwith "Trace.Io: bad magic";
          if v <> version then failwith "Trace.Io: unsupported version";
          n)
    with Scanf.Scan_failure _ | End_of_file -> failwith "Trace.Io: bad header"
  in
  let builder = Trace.Builder.create ~capacity:(max n 1) () in
  (try
     for _ = 1 to n do
       let line = input_line ic in
       let event =
         try
           Scanf.sscanf line "%c %d %d %d" (fun k proc offset len ->
               Event.make ~kind:(Event.kind_of_char k) ~proc ~offset ~len)
         with Scanf.Scan_failure _ | Invalid_argument _ ->
           failwith ("Trace.Io: bad event line: " ^ line)
       in
       Trace.Builder.add builder event
     done
   with End_of_file -> failwith "Trace.Io: truncated trace");
  Trace.Builder.build builder

let binary_magic = "trgplace-traceb"

let write_channel_binary oc trace =
  Printf.fprintf oc "%s %d %d\n" binary_magic version (Trace.length trace);
  let buf = Bytes.create 8 in
  Trace.iter
    (fun e ->
      Bytes.set_int64_le buf 0 (Int64.of_int (Event.pack e));
      output_bytes oc buf)
    trace

let read_channel_binary_body ic n =
  let builder = Trace.Builder.create ~capacity:(max n 1) () in
  let buf = Bytes.create 8 in
  (try
     for _ = 1 to n do
       really_input ic buf 0 8;
       let packed = Int64.to_int (Bytes.get_int64_le buf 0) in
       (* Unpack/repack validates field ranges implicitly via Event.make. *)
       let e = Event.unpack packed in
       Trace.Builder.add builder
         (Event.make ~kind:e.Event.kind ~proc:e.Event.proc ~offset:e.Event.offset
            ~len:e.Event.len)
     done
   with End_of_file -> failwith "Trace.Io: truncated binary trace");
  Trace.Builder.build builder

let read_channel_binary ic =
  let header = input_line ic in
  let n =
    try
      Scanf.sscanf header "%s %d %d" (fun m v n ->
          if m <> binary_magic then failwith "Trace.Io: bad binary magic";
          if v <> version then failwith "Trace.Io: unsupported version";
          n)
    with Scanf.Scan_failure _ | End_of_file -> failwith "Trace.Io: bad header"
  in
  read_channel_binary_body ic n

let save_binary path trace =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write_channel_binary oc trace)

let save path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write_channel oc trace)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (* Dispatch on the header's magic word. *)
      let header = input_line ic in
      let magic_of h = try String.sub h 0 (String.index h ' ') with Not_found -> h in
      let parse m =
        try
          Scanf.sscanf header "%s %d %d" (fun m' v n ->
              if m' <> m then failwith "Trace.Io: bad magic";
              if v <> version then failwith "Trace.Io: unsupported version";
              n)
        with Scanf.Scan_failure _ | End_of_file -> failwith "Trace.Io: bad header"
      in
      match magic_of header with
      | m when m = binary_magic -> read_channel_binary_body ic (parse binary_magic)
      | m when m = magic ->
        let n = parse magic in
        let builder = Trace.Builder.create ~capacity:(max n 1) () in
        (try
           for _ = 1 to n do
             let line = input_line ic in
             let event =
               try
                 Scanf.sscanf line "%c %d %d %d" (fun k proc offset len ->
                     Event.make ~kind:(Event.kind_of_char k) ~proc ~offset ~len)
               with Scanf.Scan_failure _ | Invalid_argument _ ->
                 failwith ("Trace.Io: bad event line: " ^ line)
             in
             Trace.Builder.add builder event
           done
         with End_of_file -> failwith "Trace.Io: truncated trace");
        Trace.Builder.build builder
      | _ -> failwith "Trace.Io: unknown trace format")
