(** Text serialisation of traces.

    The paper's toolchain stored ATOM-generated traces on disk between the
    profiling and placement steps; this codec plays that role.  The format
    is one event per line: [<kind> <proc> <offset> <len>] with kind one of
    [E]/[R]/[.] (see {!Event.kind_to_char}), preceded by a header line
    [trgplace-trace 1 <n_events>]. *)

val write_channel : out_channel -> Trace.t -> unit

val read_channel : in_channel -> Trace.t
(** Raises [Failure] on a malformed stream. *)

val save : string -> Trace.t -> unit
(** [save path trace] writes to a file. *)

val load : string -> Trace.t
(** Loads either format, detected from the header.  Raises [Sys_error] or
    [Failure]. *)

(** {2 Binary format}

    A fixed-width binary encoding — one little-endian 64-bit word per
    event ({!Event.pack}) after a [trgplace-traceb 1 <n>] header line —
    roughly 4x smaller and an order of magnitude faster to parse than the
    text form.  Million-event profile traces are the paper's working
    medium, so the codec matters. *)

val write_channel_binary : out_channel -> Trace.t -> unit

val read_channel_binary : in_channel -> Trace.t

val save_binary : string -> Trace.t -> unit
