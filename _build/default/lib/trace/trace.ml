type t = int array (* packed events *)

let length = Array.length

let get t i = Event.unpack t.(i)

let iter f t = Array.iter (fun w -> f (Event.unpack w)) t

let iteri f t = Array.iteri (fun i w -> f i (Event.unpack w)) t

let fold f init t = Array.fold_left (fun acc w -> f acc (Event.unpack w)) init t

let of_list events = Array.of_list (List.map Event.pack events)

let of_events events = Array.map Event.pack events

let to_list t = Array.to_list (Array.map Event.unpack t)

let concat ts = Array.concat ts

let sub t ~pos ~len = Array.sub t pos len

let procs_of t =
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun w ->
      let e = Event.unpack w in
      if not (Hashtbl.mem seen e.proc) then Hashtbl.add seen e.proc ())
    t;
  List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) seen [])

module Builder = struct
  type trace = t

  type t = { mutable data : int array; mutable size : int }

  let create ?(capacity = 1024) () = { data = Array.make (max capacity 1) 0; size = 0 }

  let add b event =
    if b.size = Array.length b.data then begin
      let data = Array.make (2 * Array.length b.data) 0 in
      Array.blit b.data 0 data 0 b.size;
      b.data <- data
    end;
    b.data.(b.size) <- Event.pack event;
    b.size <- b.size + 1

  let length b = b.size

  let last_proc b =
    if b.size = 0 then None else Some (Event.unpack b.data.(b.size - 1)).proc

  let build b = Array.sub b.data 0 b.size
end
