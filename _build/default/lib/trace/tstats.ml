type t = {
  n_events : int;
  n_transitions : int;
  n_procs_referenced : int;
  enter_counts : int array;
  ref_counts : int array;
  bytes_executed : int;
}

let compute ~n_procs trace =
  let enter_counts = Array.make n_procs 0 in
  let ref_counts = Array.make n_procs 0 in
  let n_transitions = ref 0 in
  let bytes = ref 0 in
  Trace.iter
    (fun (e : Event.t) ->
      if e.proc >= n_procs then
        invalid_arg (Printf.sprintf "Tstats.compute: proc %d out of range" e.proc);
      ref_counts.(e.proc) <- ref_counts.(e.proc) + 1;
      bytes := !bytes + e.len;
      match e.kind with
      | Event.Enter ->
        enter_counts.(e.proc) <- enter_counts.(e.proc) + 1;
        incr n_transitions
      | Event.Resume -> incr n_transitions
      | Event.Run -> ())
    trace;
  let n_procs_referenced =
    Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 ref_counts
  in
  {
    n_events = Trace.length trace;
    n_transitions = !n_transitions;
    n_procs_referenced;
    enter_counts;
    ref_counts;
    bytes_executed = !bytes;
  }

let dynamic_coverage t p =
  if t.n_events = 0 then 0.
  else float_of_int t.ref_counts.(p) /. float_of_int t.n_events

let pp ppf t =
  Format.fprintf ppf
    "events=%d transitions=%d procs=%d bytes=%d" t.n_events t.n_transitions
    t.n_procs_referenced t.bytes_executed
