let program_magic = "trgplace-program"

let layout_magic = "trgplace-layout"

let version = 1

let write_program oc program =
  Printf.fprintf oc "%s %d %d\n" program_magic version (Program.n_procs program);
  Program.iter
    (fun (p : Proc.t) -> Printf.fprintf oc "%d %d %s\n" p.id p.size p.name)
    program

let parse_header ~magic line =
  try
    Scanf.sscanf line "%s %d %d" (fun m v n ->
        if m <> magic then failwith ("Serial: bad magic, expected " ^ magic);
        if v <> version then failwith "Serial: unsupported version";
        n)
  with Scanf.Scan_failure _ | End_of_file -> failwith "Serial: bad header"

let read_program ic =
  let n = parse_header ~magic:program_magic (input_line ic) in
  let procs =
    Array.init n (fun _ ->
        let line = try input_line ic with End_of_file -> failwith "Serial: truncated program" in
        try
          Scanf.sscanf line "%d %d %s@\n" (fun id size name ->
              Proc.make ~id ~name ~size)
        with Scanf.Scan_failure _ | Invalid_argument _ ->
          failwith ("Serial: bad procedure line: " ^ line))
  in
  Program.make procs

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let with_in path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let save_program path program = with_out path (fun oc -> write_program oc program)

let load_program path = with_in path read_program

let write_layout oc layout =
  Printf.fprintf oc "%s %d %d\n" layout_magic version (Layout.n_procs layout);
  Array.iteri
    (fun p addr -> Printf.fprintf oc "%d %d\n" p addr)
    (Layout.addresses layout)

let read_layout program ic =
  let n = parse_header ~magic:layout_magic (input_line ic) in
  if n <> Program.n_procs program then
    failwith "Serial: layout does not match program";
  let addr = Array.make n 0 in
  for _ = 1 to n do
    let line = try input_line ic with End_of_file -> failwith "Serial: truncated layout" in
    try Scanf.sscanf line "%d %d" (fun p a -> addr.(p) <- a)
    with Scanf.Scan_failure _ | Invalid_argument _ ->
      failwith ("Serial: bad layout line: " ^ line)
  done;
  Layout.of_addresses program addr

let save_layout path layout = with_out path (fun oc -> write_layout oc layout)

let load_layout program path = with_in path (read_layout program)
