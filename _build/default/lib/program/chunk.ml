type t = {
  chunk_size : int;
  first : int array; (* first.(p) = global id of chunk 0 of proc p *)
  owner : int array; (* owner.(c) = proc of global chunk c *)
  sizes : int array; (* proc sizes, to compute last-chunk remainders *)
  total : int;
}

let make ~chunk_size program =
  if chunk_size <= 0 then invalid_arg "Chunk.make: chunk_size must be positive";
  let n = Program.n_procs program in
  let first = Array.make (n + 1) 0 in
  for p = 0 to n - 1 do
    let chunks = (Program.size program p + chunk_size - 1) / chunk_size in
    first.(p + 1) <- first.(p) + chunks
  done;
  let total = first.(n) in
  let owner = Array.make (max total 1) 0 in
  for p = 0 to n - 1 do
    for c = first.(p) to first.(p + 1) - 1 do
      owner.(c) <- p
    done
  done;
  let sizes = Array.init n (Program.size program) in
  { chunk_size; first; owner; sizes; total }

let chunk_size t = t.chunk_size

let total t = t.total

let n_chunks t p = t.first.(p + 1) - t.first.(p)

let first t p = t.first.(p)

let of_offset t ~proc ~offset =
  if offset < 0 || offset >= t.sizes.(proc) then
    invalid_arg
      (Printf.sprintf "Chunk.of_offset: offset %d out of range for proc %d" offset proc);
  t.first.(proc) + (offset / t.chunk_size)

let owner t c = t.owner.(c)

let index_in_proc t c = c - t.first.(t.owner.(c))

let size_of t c =
  let p = t.owner.(c) in
  let idx = c - t.first.(p) in
  let start = idx * t.chunk_size in
  min t.chunk_size (t.sizes.(p) - start)

let iter_range t ~proc ~offset ~len f =
  if len < 0 then invalid_arg "Chunk.iter_range: negative length";
  if len > 0 then begin
    let lo = of_offset t ~proc ~offset in
    let hi = of_offset t ~proc ~offset:(offset + len - 1) in
    for c = lo to hi do
      f c
    done
  end
