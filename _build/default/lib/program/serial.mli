(** Text serialisation of programs and layouts.

    Together with {!Trg_trace.Io} this lets the profiling, placement and
    simulation stages run as separate processes exchanging files — the way
    the paper's ATOM + placement-tool + linker pipeline operated.

    Program format: a [trgplace-program 1 <n>] header, then one
    [<id> <size> <name>] line per procedure.  Layout format: a
    [trgplace-layout 1 <n>] header, then one [<proc> <address>] line per
    procedure. *)

val write_program : out_channel -> Program.t -> unit

val read_program : in_channel -> Program.t
(** Raises [Failure] on malformed input. *)

val save_program : string -> Program.t -> unit

val load_program : string -> Program.t

val write_layout : out_channel -> Layout.t -> unit

val read_layout : Program.t -> in_channel -> Layout.t
(** Validates against the program (procedure count, non-overlap).
    Raises [Failure] or [Invalid_argument]. *)

val save_layout : string -> Layout.t -> unit

val load_layout : Program.t -> string -> Layout.t
