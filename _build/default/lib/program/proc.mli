(** A procedure: the unit of code placed by every algorithm in this
    repository.  Procedures are identified by a dense integer id equal to
    their index in the owning {!Program.t}; the id order is the "source
    order" that defines the default layout. *)

type t = {
  id : int;  (** dense index within the program; also the source order *)
  name : string;  (** diagnostic name, unique within a program *)
  size : int;  (** code size in bytes, > 0 *)
}

val make : id:int -> name:string -> size:int -> t
(** Validates [size > 0] and [id >= 0]. *)

val pp : Format.formatter -> t -> unit
