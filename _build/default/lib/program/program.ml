type t = { procs : Proc.t array; total_size : int; by_name : (string, int) Hashtbl.t }

let make procs =
  Array.iteri
    (fun i (p : Proc.t) ->
      if p.id <> i then
        invalid_arg
          (Printf.sprintf "Program.make: proc %s has id %d at index %d" p.name p.id i))
    procs;
  let by_name = Hashtbl.create (Array.length procs) in
  Array.iter
    (fun (p : Proc.t) ->
      if Hashtbl.mem by_name p.name then
        invalid_arg ("Program.make: duplicate procedure name " ^ p.name);
      Hashtbl.add by_name p.name p.id)
    procs;
  let total_size = Array.fold_left (fun acc (p : Proc.t) -> acc + p.size) 0 procs in
  { procs; total_size; by_name }

let of_sizes ?(name_prefix = "p") sizes =
  make
    (Array.mapi
       (fun i size -> Proc.make ~id:i ~name:(name_prefix ^ string_of_int i) ~size)
       sizes)

let n_procs t = Array.length t.procs

let proc t id =
  if id < 0 || id >= Array.length t.procs then
    invalid_arg (Printf.sprintf "Program.proc: id %d out of range" id);
  t.procs.(id)

let size t id = (proc t id).size

let name t id = (proc t id).name

let find_by_name t n = Hashtbl.find_opt t.by_name n

let total_size t = t.total_size

let procs t = Array.copy t.procs

let iter f t = Array.iter f t.procs

let fold f init t = Array.fold_left f init t.procs
