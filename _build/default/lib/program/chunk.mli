(** Chunk numbering: statically determined fixed-size pieces of procedures.

    Section 4 of the paper gathers placement-grade temporal information at a
    granularity finer than whole procedures — 256-byte chunks — so that
    procedures larger than the cache can still be aligned well.  This module
    assigns every chunk of every procedure a dense global id, shared between
    the TRG_place builder and the placement cost calculation. *)

type t

val make : chunk_size:int -> Program.t -> t
(** [chunk_size] must be positive.  Procedure [p] contributes
    [ceil (size p / chunk_size)] chunks. *)

val chunk_size : t -> int

val total : t -> int
(** Total number of chunks across the program. *)

val n_chunks : t -> int -> int
(** Number of chunks of procedure [id]. *)

val first : t -> int -> int
(** Global id of chunk 0 of procedure [id]. *)

val of_offset : t -> proc:int -> offset:int -> int
(** Global chunk id containing byte [offset] of procedure [proc]. *)

val owner : t -> int -> int
(** Procedure owning a global chunk id. *)

val index_in_proc : t -> int -> int
(** Position of a global chunk id within its procedure (0-based). *)

val size_of : t -> int -> int
(** Byte size of a chunk: [chunk_size] except possibly for the last chunk of
    a procedure, which holds the remainder. *)

val iter_range : t -> proc:int -> offset:int -> len:int -> (int -> unit) -> unit
(** [iter_range t ~proc ~offset ~len f] applies [f] to the global id of each
    chunk overlapped by bytes [\[offset, offset+len)] of [proc], in address
    order.  [len = 0] touches no chunk. *)
