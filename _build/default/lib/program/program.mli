(** A static program: the array of procedures a trace refers to.

    A [Program.t] is immutable; all placement algorithms treat it as
    read-only metadata (procedure sizes and names). *)

type t

val make : Proc.t array -> t
(** Validates that procedure ids are dense (proc [i] has id [i]) and names
    are unique. *)

val of_sizes : ?name_prefix:string -> int array -> t
(** [of_sizes sizes] builds a program with one procedure per entry, named
    ["p0"], ["p1"], ...  Convenient for tests and examples. *)

val n_procs : t -> int

val proc : t -> int -> Proc.t
(** [proc t id].  Raises [Invalid_argument] if [id] is out of range. *)

val size : t -> int -> int
(** Code size in bytes of procedure [id]. *)

val name : t -> int -> string

val find_by_name : t -> string -> int option

val total_size : t -> int
(** Sum of all procedure sizes. *)

val procs : t -> Proc.t array
(** The underlying array (a defensive copy). *)

val iter : (Proc.t -> unit) -> t -> unit

val fold : ('a -> Proc.t -> 'a) -> 'a -> t -> 'a
