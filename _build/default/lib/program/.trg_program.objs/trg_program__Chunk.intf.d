lib/program/chunk.mli: Program
