lib/program/program.ml: Array Hashtbl Printf Proc
