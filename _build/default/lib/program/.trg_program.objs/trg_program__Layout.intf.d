lib/program/layout.mli: Format Program Trg_util
