lib/program/proc.mli: Format
