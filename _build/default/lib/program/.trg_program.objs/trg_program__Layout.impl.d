lib/program/layout.ml: Array Format Printf Program Trg_util
