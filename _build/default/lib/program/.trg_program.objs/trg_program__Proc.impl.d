lib/program/proc.ml: Format
