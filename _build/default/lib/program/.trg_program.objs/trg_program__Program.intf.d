lib/program/program.mli: Proc
