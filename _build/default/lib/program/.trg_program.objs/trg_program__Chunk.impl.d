lib/program/chunk.ml: Array Printf Program
