lib/program/serial.mli: Layout Program
