lib/program/serial.ml: Array Fun Layout Printf Proc Program Scanf
