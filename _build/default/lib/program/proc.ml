type t = { id : int; name : string; size : int }

let make ~id ~name ~size =
  if size <= 0 then invalid_arg "Proc.make: size must be positive";
  if id < 0 then invalid_arg "Proc.make: id must be non-negative";
  { id; name; size }

let pp ppf t = Format.fprintf ppf "%s#%d(%dB)" t.name t.id t.size
