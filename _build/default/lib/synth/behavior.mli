(** Dynamic behaviour scripts: one statement list per procedure.

    A behaviour is the static description a {!Walker} interprets to emit a
    trace.  It models the control structures that give real programs their
    temporal texture: straight-line block runs, conditional calls, counted
    loops, and {e selector} call sites that pick one of several sibling
    callees per execution — alternating or blocked, exactly the two regimes
    of the paper's Figure 1 example. *)

type pattern =
  | Round_robin
      (** successive executions cycle through the callees (trace #1 style) *)
  | Blocked of int
      (** stay with one callee for N executions, then move on (trace #2) *)
  | Weighted of float
      (** Zipf-weighted random pick with the given exponent *)

type stmt =
  | Block of { off : int; len : int }
      (** execute bytes [\[off, off+len)] of the current procedure *)
  | Call of { callee : int; prob : float }
      (** call [callee] with probability [prob] *)
  | Loop of { lo : int; hi : int; body : stmt list }
      (** execute [body] a uniform-random number of times in [\[lo, hi\]] *)
  | Select of { sid : int; callees : int array; pattern : pattern }
      (** call exactly one of [callees], chosen per [pattern]; [sid] is a
          behaviour-unique site id carrying the walker's per-site state *)

type t = {
  bodies : stmt list array;  (** indexed by procedure id *)
  n_selects : int;  (** number of [Select] sites; sids are [0..n-1] *)
}

val make : stmt list array -> t
(** Assigns [sid]s are assumed already dense; validates that sids are
    within range and unique, probabilities lie in [\[0,1\]], loop bounds are
    ordered and non-negative, and selector callee arrays are non-empty. *)

val validate_against : Trg_program.Program.t -> t -> unit
(** Checks block ranges against procedure sizes and callee ids against the
    program; raises [Invalid_argument] on any violation. *)

val static_call_targets : t -> int -> int list
(** All callees (conditional and selected) reachable from one procedure's
    body — its static call-graph out-edges. *)
