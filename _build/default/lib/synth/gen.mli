(** Synthetic program generation.

    [generate] turns a {!Shape.t} into a concrete static program (procedure
    sizes and names) plus a behaviour script, deterministically from the
    shape's seed.  The generated structure:

    - [main] iterates over the shape's phases in sequence (blocked top-level
      behaviour);
    - each phase controller dispatches its drivers through a Zipf-weighted
      selector (some drivers are hotter than others);
    - each driver dispatches its sibling workers round-robin or in blocks —
      sibling interleaving that a WCG cannot see (the paper's Figure 1);
    - workers loop over their own code (chunk reuse), call shared leaves,
      and occasionally stray into cold procedures;
    - cold procedures form short call chains and account for most of the
      static code but almost none of the dynamic references. *)

type roles = {
  main : int;
  ctrls : int array;
  drivers : int array;  (** phase-major order *)
  workers : int array;  (** driver-major order *)
  libs : int array;
  leaves : int array;
  cold : int array;
}

type workload = {
  shape : Shape.t;
  program : Trg_program.Program.t;
  behavior : Behavior.t;
  roles : roles;
}

val generate : Shape.t -> workload
(** Deterministic in [shape.seed].  The behaviour is validated against the
    program before returning. *)

val train_trace : workload -> Trg_trace.Trace.t
(** Walk with the shape's training parameters. *)

val test_trace : workload -> Trg_trace.Trace.t
(** Walk with the shape's testing parameters. *)
