module Proc = Trg_program.Proc
module Program = Trg_program.Program
module Config = Trg_cache.Config
module Trace = Trg_trace.Trace
module Event = Trg_trace.Event

let line = 32

let m = 0
let x = 1
let y = 2
let z = 3

let program =
  Program.make
    [|
      Proc.make ~id:m ~name:"M" ~size:line;
      Proc.make ~id:x ~name:"X" ~size:line;
      Proc.make ~id:y ~name:"Y" ~size:line;
      Proc.make ~id:z ~name:"Z" ~size:line;
    |]

let cache = Config.make ~size:(3 * line) ~line_size:line ~assoc:1

(* One whole-procedure reference. *)
let ref_of kind proc = Event.make ~kind ~proc ~offset:0 ~len:line

let trace_of_conditions conds =
  let builder = Trace.Builder.create () in
  Trace.Builder.add builder (ref_of Event.Enter m);
  List.iter
    (fun cond ->
      Trace.Builder.add builder (ref_of Event.Enter (if cond then x else y));
      Trace.Builder.add builder (ref_of Event.Resume m);
      Trace.Builder.add builder (ref_of Event.Enter z);
      Trace.Builder.add builder (ref_of Event.Resume m))
    conds;
  Trace.Builder.build builder

let trace_alternating ?(iterations = 80) () =
  trace_of_conditions (List.init iterations (fun i -> i mod 2 = 0))

let trace_blocked ?(iterations = 80) () =
  trace_of_conditions (List.init iterations (fun i -> i < iterations / 2))
