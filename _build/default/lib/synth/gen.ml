module Prng = Trg_util.Prng
module Proc = Trg_program.Proc
module Program = Trg_program.Program

type roles = {
  main : int;
  ctrls : int array;
  drivers : int array;
  workers : int array;
  libs : int array;
  leaves : int array;
  cold : int array;
}

type workload = {
  shape : Shape.t;
  program : Program.t;
  behavior : Behavior.t;
  roles : roles;
}

(* Draw [n] log-normal sizes and rescale them to sum to [target]. *)
let sizes_summing rng n target ~sigma ~lo ~hi =
  if n = 0 then [||]
  else begin
    let raw = Array.init n (fun _ -> Prng.log_normal rng ~mu:0. ~sigma) in
    let sum = Array.fold_left ( +. ) 0. raw in
    let scale = float_of_int target /. sum in
    Array.map
      (fun r ->
        let s = int_of_float (r *. scale) in
        min hi (max lo s))
      raw
  end

(* Deterministic block decomposition of a procedure: blocks spread over the
   whole body so loops touch every chunk of large procedures. *)
let blocks_of rng size =
  let n = max 2 (min 40 (size / 96)) in
  let stride = size / n in
  Array.init n (fun i ->
      let off = i * stride in
      let cap = if i = n - 1 then size - off else stride in
      let len = max 4 (min cap (16 + Prng.int rng 48)) in
      (off, len))

let generate (shape : Shape.t) =
  Shape.validate shape;
  let rng = Prng.create shape.seed in
  let hot = Shape.hot_count shape in
  let n_cold = shape.n_procs - hot in
  let n_phases = shape.n_phases in
  let n_drivers = n_phases * shape.drivers_per_phase in
  let n_workers = n_drivers * shape.workers_per_driver in
  (* Id assignment: main, ctrls, drivers, workers, libs, leaves, cold. *)
  let main = 0 in
  let ctrls = Array.init n_phases (fun i -> 1 + i) in
  let base_d = 1 + n_phases in
  let drivers = Array.init n_drivers (fun i -> base_d + i) in
  let base_w = base_d + n_drivers in
  let workers = Array.init n_workers (fun i -> base_w + i) in
  let base_l = base_w + n_workers in
  let libs = Array.init shape.shared_libs (fun i -> base_l + i) in
  let base_f = base_l + shape.shared_libs in
  let leaves = Array.init shape.leaves (fun i -> base_f + i) in
  let base_c = base_f + shape.leaves in
  let cold = Array.init n_cold (fun i -> base_c + i) in
  let roles = { main; ctrls; drivers; workers; libs; leaves; cold } in
  (* Sizes.  main and controllers are small dispatch routines; the rest of
     the hot budget goes to drivers, workers, libraries and leaves. *)
  let sizes = Array.make shape.n_procs 0 in
  sizes.(main) <- 256 + Prng.int rng 256;
  Array.iter (fun c -> sizes.(c) <- 192 + Prng.int rng 320) ctrls;
  let fixed_hot = Array.fold_left (fun acc c -> acc + sizes.(c)) sizes.(main) ctrls in
  let flex_ids = Array.concat [ drivers; workers; libs; leaves ] in
  let flex_sizes =
    sizes_summing rng (Array.length flex_ids)
      (max (Array.length flex_ids * 96) (shape.hot_bytes - fixed_hot))
      ~sigma:0.9 ~lo:96 ~hi:24576
  in
  Array.iteri (fun i p -> sizes.(p) <- flex_sizes.(i)) flex_ids;
  let hot_actual = Array.fold_left ( + ) 0 sizes in
  let cold_sizes =
    sizes_summing rng n_cold
      (max (n_cold * 64) (shape.total_bytes - hot_actual))
      ~sigma:1.1 ~lo:64 ~hi:32768
  in
  Array.iteri (fun i p -> sizes.(p) <- cold_sizes.(i)) cold;
  let name_of p =
    if p = main then "main"
    else if p < base_d then Printf.sprintf "ctrl%d" (p - 1)
    else if p < base_w then Printf.sprintf "drv%d" (p - base_d)
    else if p < base_l then Printf.sprintf "wrk%d" (p - base_w)
    else if p < base_f then Printf.sprintf "lib%d" (p - base_l)
    else if p < base_c then Printf.sprintf "leaf%d" (p - base_f)
    else Printf.sprintf "cold%d" (p - base_c)
  in
  (* Per-procedure blocks. *)
  let blocks = Array.init shape.n_procs (fun p -> blocks_of rng sizes.(p)) in
  let blk p i =
    let off, len = blocks.(p).(i mod Array.length blocks.(p)) in
    Behavior.Block { off; len }
  in
  let last_blk p = blk p (Array.length blocks.(p) - 1) in
  (* Middle blocks split between the loop body (executed repeatedly) and the
     straight-line remainder (executed once per call). *)
  let middles p =
    let n = Array.length blocks.(p) in
    let mids = if n <= 2 then [] else List.init (n - 2) (fun i -> i + 1) in
    let rec split k = function
      | [] -> ([], [])
      | x :: rest ->
        if k = 0 then ([], x :: rest)
        else
          let inside, outside = split (k - 1) rest in
          (x :: inside, outside)
    in
    let in_loop = min 6 ((List.length mids + 1) / 2) in
    let inside, outside = split in_loop mids in
    (* The straight-line remainder models cold paths: each run of a few
       blocks executes on roughly half the activations (Loop 0..1), so one
       activation does not sweep the whole procedure. *)
    let rec group_outside = function
      | [] -> []
      | l ->
        let rec take k = function
          | [] -> ([], [])
          | x :: rest when k > 0 ->
            let g, tl = take (k - 1) rest in
            (x :: g, tl)
          | rest -> ([], rest)
        in
        let g, tl = take 4 l in
        Behavior.Loop
          {
            lo = 0;
            hi = 1;
            body = [ Behavior.Loop { lo = 0; hi = 1; body = List.map (blk p) g } ];
          }
        :: group_outside tl
    in
    (List.map (blk p) inside, group_outside outside)
  in
  let sid = ref 0 in
  let fresh_sid () =
    let s = !sid in
    incr sid;
    s
  in
  let bodies = Array.make shape.n_procs [] in
  (* main: phases in sequence — blocked behaviour at the top level. *)
  let plo, phi = shape.phase_iters in
  bodies.(main) <-
    (blk main 0
    :: List.concat
         (List.init n_phases (fun ph ->
              [
                Behavior.Loop
                  {
                    lo = plo;
                    hi = phi;
                    body = [ Behavior.Call { callee = ctrls.(ph); prob = 1.0 }; blk main (1 + ph) ];
                  };
              ])))
    @ [ last_blk main ];
  (* Controllers: Zipf-weighted driver dispatch. *)
  let clo, chi = shape.ctrl_iters in
  Array.iteri
    (fun ph c ->
      let phase_drivers =
        Array.sub drivers (ph * shape.drivers_per_phase) shape.drivers_per_phase
      in
      bodies.(c) <-
        [
          blk c 0;
          Behavior.Loop
            {
              lo = clo;
              hi = chi;
              body =
                [
                  Behavior.Select
                    { sid = fresh_sid (); callees = phase_drivers; pattern = Behavior.Weighted 1.5 };
                  blk c 1;
                ];
            };
          last_blk c;
        ])
    ctrls;
  (* Drivers: sibling workers dispatched round-robin or in blocks. *)
  let dlo, dhi = shape.driver_iters in
  let brlo, brhi = shape.blocked_run in
  Array.iteri
    (fun d drv ->
      let my_workers =
        Array.sub workers (d * shape.workers_per_driver) shape.workers_per_driver
      in
      let pattern =
        if Prng.bernoulli rng shape.alternation then Behavior.Round_robin
        else Behavior.Blocked (Prng.int_in rng brlo brhi)
      in
      let lib_a =
        if Array.length libs > 0 then Some (Prng.choose rng libs) else None
      in
      let inside, outside = middles drv in
      (* Drivers also carry a small hot loop of their own between worker
         dispatches (argument marshalling, bookkeeping). *)
      let core, rest =
        match inside with a :: b :: tl -> ([ a; b ], tl) | l -> (l, [])
      in
      let core_loop =
        if core = [] then [] else [ Behavior.Loop { lo = 3; hi = 10; body = core } ]
      in
      let loop_body =
        [ Behavior.Select { sid = fresh_sid (); callees = my_workers; pattern } ]
        @ core_loop @ rest
        @
        match lib_a with
        | Some l -> [ Behavior.Call { callee = l; prob = shape.lib_call_prob } ]
        | None -> []
      in
      bodies.(drv) <-
        [ blk drv 0; Behavior.Loop { lo = dlo; hi = dhi; body = loop_body } ]
        @ outside
        @ [ last_blk drv ])
    drivers;
  (* Workers: most dynamic work happens in a tight hot core — a nested loop
     over two or three adjacent blocks — which gives the trace the strong
     short-range locality of real inner loops.  The rest of the body
     (touched once per activation) spreads references over every chunk. *)
  let wlo, whi = shape.worker_iters in
  Array.iter
    (fun w ->
      let my_leaves =
        if Array.length leaves = 0 then [||]
        else Prng.sample rng leaves (min (1 + Prng.int rng 3) (Array.length leaves))
      in
      let cold_target =
        if n_cold > 0 then Some (Prng.choose rng cold) else None
      in
      let inside, outside = middles w in
      let core, rest =
        match inside with
        | a :: b :: c :: tl -> ([ a; b; c ], tl)
        | l -> (l, [])
      in
      let core = if core = [] then [ blk w 0 ] else core in
      let leaf_calls =
        Array.to_list
          (Array.map
             (fun l -> Behavior.Call { callee = l; prob = shape.leaf_call_prob })
             my_leaves)
      in
      let hot_core = Behavior.Loop { lo = 14; hi = 40; body = core } in
      bodies.(w) <-
        [
          blk w 0;
          Behavior.Loop { lo = wlo; hi = whi; body = (hot_core :: rest) @ leaf_calls };
        ]
        @ outside
        @ (match cold_target with
          | Some c -> [ Behavior.Call { callee = c; prob = shape.cold_call_prob } ]
          | None -> [])
        @ [ last_blk w ])
    workers;
  (* Shared libraries: small loops plus occasional leaf calls. *)
  Array.iter
    (fun l ->
      let inside, outside = middles l in
      let leaf_call =
        if Array.length leaves > 0 then
          [ Behavior.Call { callee = Prng.choose rng leaves; prob = 0.2 } ]
        else []
      in
      let loop_body = if inside = [] then [ blk l 0 ] else inside in
      bodies.(l) <-
        [ blk l 0; Behavior.Loop { lo = 4; hi = 12; body = loop_body } ]
        @ outside @ leaf_call
        @ [ last_blk l ])
    libs;
  (* Leaves: straight-line code. *)
  Array.iter
    (fun f ->
      let inside, outside = middles f in
      bodies.(f) <- (blk f 0 :: inside) @ outside @ [ last_blk f ])
    leaves;
  (* Cold procedures: straight-line code with short call chains. *)
  Array.iteri
    (fun i c ->
      let next =
        if i + 1 < n_cold && Prng.bernoulli rng 0.5 then
          [ Behavior.Call { callee = cold.(i + 1); prob = 0.3 } ]
        else []
      in
      let inside, outside = middles c in
      bodies.(c) <- (blk c 0 :: inside) @ next @ outside @ [ last_blk c ])
    cold;
  (* Relabel: shuffle procedure ids (main stays 0, where the walker starts)
     so that source order — the default layout — is arbitrary with respect
     to the dynamic structure, as it is for real programs. *)
  let perm = Array.init shape.n_procs (fun i -> i) in
  let tail = Array.sub perm 1 (shape.n_procs - 1) in
  Prng.shuffle rng tail;
  Array.blit tail 0 perm 1 (shape.n_procs - 1);
  (* [perm.(i)] is the old id living at new id [i]; [new_of.(old)] inverts. *)
  let new_of = Array.make shape.n_procs 0 in
  Array.iteri (fun new_id old_id -> new_of.(old_id) <- new_id) perm;
  let rec remap : Behavior.stmt -> Behavior.stmt = function
    | Behavior.Block _ as b -> b
    | Behavior.Call { callee; prob } -> Behavior.Call { callee = new_of.(callee); prob }
    | Behavior.Loop { lo; hi; body } ->
      Behavior.Loop { lo; hi; body = List.map remap body }
    | Behavior.Select { sid; callees; pattern } ->
      Behavior.Select { sid; callees = Array.map (fun c -> new_of.(c)) callees; pattern }
  in
  let program =
    Program.make
      (Array.init shape.n_procs (fun new_id ->
           let old_id = perm.(new_id) in
           Proc.make ~id:new_id ~name:(name_of old_id) ~size:sizes.(old_id)))
  in
  let bodies =
    Array.init shape.n_procs (fun new_id -> List.map remap bodies.(perm.(new_id)))
  in
  let remap_ids a = Array.map (fun p -> new_of.(p)) a in
  let roles =
    {
      main = new_of.(roles.main);
      ctrls = remap_ids roles.ctrls;
      drivers = remap_ids roles.drivers;
      workers = remap_ids roles.workers;
      libs = remap_ids roles.libs;
      leaves = remap_ids roles.leaves;
      cold = remap_ids roles.cold;
    }
  in
  let behavior = Behavior.make bodies in
  Behavior.validate_against program behavior;
  { shape; program; behavior; roles }

let train_trace w = Walker.run w.program w.behavior w.shape.Shape.train

let test_trace w = Walker.run w.program w.behavior w.shape.Shape.test
