let train_params ~seed ~events : Walker.params =
  {
    Walker.seed = (seed * 1000) + 1;
    target_events = events;
    loop_scale = 1.0;
    select_flip = 0.;
    call_dropout = 0.;
    max_depth = 16;
  }

let test_params ?(loop_scale = 1.25) ?(select_flip = 0.10) ?(call_dropout = 0.06)
    ~seed ~events () : Walker.params =
  {
    Walker.seed = (seed * 1000) + 2;
    target_events = events;
    loop_scale;
    select_flip;
    call_dropout;
    max_depth = 16;
  }

let gcc : Shape.t =
  let seed = 101 in
  {
    name = "gcc";
    seed;
    n_procs = 2005;
    total_bytes = 2277 * 1024;
    hot_bytes = 351 * 1024;
    n_phases = 3;
    drivers_per_phase = 5;
    workers_per_driver = 6;
    shared_libs = 15;
    leaves = 12;
    phase_iters = (3, 6);
    ctrl_iters = (6, 14);
    driver_iters = (14, 34);
    worker_iters = (3, 8);
    alternation = 0.55;
    blocked_run = (4, 12);
    lib_call_prob = 0.5;
    leaf_call_prob = 0.4;
    cold_call_prob = 0.012;
    train = train_params ~seed ~events:1_100_000;
    test = test_params ~seed ~events:1_200_000 ();
  }

let go : Shape.t =
  let seed = 102 in
  {
    name = "go";
    seed;
    n_procs = 3221;
    total_bytes = 590 * 1024;
    hot_bytes = 134 * 1024;
    n_phases = 3;
    drivers_per_phase = 4;
    workers_per_driver = 6;
    shared_libs = 14;
    leaves = 10;
    phase_iters = (3, 6);
    ctrl_iters = (6, 12);
    driver_iters = (14, 34);
    worker_iters = (3, 8);
    alternation = 0.6;
    blocked_run = (3, 10);
    lib_call_prob = 0.55;
    leaf_call_prob = 0.45;
    cold_call_prob = 0.010;
    train = train_params ~seed ~events:700_000;
    test = test_params ~seed ~events:600_000 ();
  }

let ghostscript : Shape.t =
  let seed = 103 in
  {
    name = "ghostscript";
    seed;
    n_procs = 372;
    total_bytes = 1817 * 1024;
    hot_bytes = 104 * 1024;
    n_phases = 4;
    drivers_per_phase = 6;
    workers_per_driver = 6;
    shared_libs = 25;
    leaves = 18;
    phase_iters = (2, 5);
    ctrl_iters = (5, 12);
    driver_iters = (12, 28);
    worker_iters = (3, 7);
    alternation = 0.5;
    blocked_run = (4, 10);
    lib_call_prob = 0.5;
    leaf_call_prob = 0.4;
    cold_call_prob = 0.015;
    train = train_params ~seed ~events:1_200_000;
    test = test_params ~seed ~events:1_200_000 ();
  }

let m88ksim : Shape.t =
  let seed = 104 in
  {
    name = "m88ksim";
    seed;
    n_procs = 460;
    total_bytes = 549 * 1024;
    hot_bytes = 21 * 1024;
    n_phases = 2;
    drivers_per_phase = 3;
    workers_per_driver = 3;
    shared_libs = 3;
    leaves = 1;
    phase_iters = (4, 8);
    ctrl_iters = (8, 16);
    driver_iters = (16, 38);
    worker_iters = (4, 10);
    alternation = 0.5;
    blocked_run = (4, 10);
    lib_call_prob = 0.5;
    leaf_call_prob = 0.4;
    cold_call_prob = 0.02;
    train = train_params ~seed ~events:1_000_000;
    (* dcrand vs dhry: deliberately dissimilar inputs. *)
    test =
      test_params ~loop_scale:1.8 ~select_flip:0.5 ~call_dropout:0.3 ~seed
        ~events:1_000_000 ();
  }

let perl : Shape.t =
  let seed = 105 in
  {
    name = "perl";
    seed;
    n_procs = 271;
    total_bytes = 664 * 1024;
    hot_bytes = 83 * 1024;
    n_phases = 2;
    drivers_per_phase = 3;
    workers_per_driver = 4;
    shared_libs = 2;
    leaves = 1;
    phase_iters = (4, 8);
    ctrl_iters = (8, 16);
    driver_iters = (16, 38);
    worker_iters = (4, 10);
    alternation = 0.55;
    blocked_run = (4, 12);
    lib_call_prob = 0.45;
    leaf_call_prob = 0.35;
    cold_call_prob = 0.015;
    train = train_params ~seed ~events:1_000_000;
    test = test_params ~seed ~events:1_600_000 ();
  }

let vortex : Shape.t =
  let seed = 106 in
  {
    name = "vortex";
    seed;
    n_procs = 923;
    total_bytes = 1073 * 1024;
    hot_bytes = 117 * 1024;
    n_phases = 3;
    drivers_per_phase = 6;
    workers_per_driver = 6;
    shared_libs = 16;
    leaves = 10;
    phase_iters = (2, 5);
    ctrl_iters = (6, 12);
    driver_iters = (12, 28);
    worker_iters = (3, 8);
    alternation = 0.55;
    blocked_run = (4, 10);
    lib_call_prob = 0.5;
    leaf_call_prob = 0.4;
    cold_call_prob = 0.012;
    train = train_params ~seed ~events:900_000;
    test = test_params ~seed ~events:1_400_000 ();
  }

let small : Shape.t =
  let seed = 107 in
  {
    name = "small";
    seed;
    n_procs = 160;
    total_bytes = 192 * 1024;
    hot_bytes = 40 * 1024;
    n_phases = 2;
    drivers_per_phase = 3;
    workers_per_driver = 3;
    shared_libs = 4;
    leaves = 3;
    phase_iters = (2, 4);
    ctrl_iters = (4, 8);
    driver_iters = (10, 24);
    worker_iters = (2, 6);
    alternation = 0.5;
    blocked_run = (3, 8);
    lib_call_prob = 0.5;
    leaf_call_prob = 0.4;
    cold_call_prob = 0.02;
    train = train_params ~seed ~events:200_000;
    test = test_params ~seed ~events:200_000 ();
  }

let all = [ gcc; go; ghostscript; m88ksim; perl; vortex ]

let names = List.map (fun (s : Shape.t) -> s.name) all

let find name =
  List.find (fun (s : Shape.t) -> s.Shape.name = name) (small :: all)
