lib/synth/bench.mli: Shape
