lib/synth/behavior.ml: Array Hashtbl List Printf Trg_program
