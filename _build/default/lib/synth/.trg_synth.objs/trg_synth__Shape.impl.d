lib/synth/shape.ml: Printf Walker
