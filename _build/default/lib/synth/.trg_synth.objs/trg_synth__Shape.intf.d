lib/synth/shape.mli: Walker
