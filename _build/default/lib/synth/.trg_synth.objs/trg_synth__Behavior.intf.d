lib/synth/behavior.mli: Trg_program
