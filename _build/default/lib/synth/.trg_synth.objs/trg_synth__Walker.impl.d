lib/synth/walker.ml: Array Behavior Float List Trg_trace Trg_util
