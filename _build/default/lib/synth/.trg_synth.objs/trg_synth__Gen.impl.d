lib/synth/gen.ml: Array Behavior List Printf Shape Trg_program Trg_util Walker
