lib/synth/gen.mli: Behavior Shape Trg_program Trg_trace
