lib/synth/toy.mli: Trg_cache Trg_program Trg_trace
