lib/synth/toy.ml: List Trg_cache Trg_program Trg_trace
