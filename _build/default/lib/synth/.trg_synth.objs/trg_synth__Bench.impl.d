lib/synth/bench.ml: List Shape Walker
