lib/synth/walker.mli: Behavior Trg_program Trg_trace
