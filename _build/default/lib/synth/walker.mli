(** The trace walker: a stochastic interpreter of behaviour scripts.

    The walker stands in for ATOM-style binary instrumentation: it executes
    the program's behaviour from [main] (procedure 0), restarting when it
    returns, until the requested number of block events has been emitted.
    Two walks with different parameters model the paper's distinct training
    and testing inputs over the same executable. *)

type params = {
  seed : int;  (** PRNG seed for all stochastic choices *)
  target_events : int;  (** trace length, in block-run events *)
  loop_scale : float;
      (** multiplier on every loop's iteration draw — models input size *)
  select_flip : float;
      (** per-site probability of flipping a selector between alternating
          and blocked regimes — models input-dependent branch behaviour *)
  call_dropout : float;
      (** probability of skipping an otherwise-taken conditional call *)
  max_depth : int;  (** call-stack bound *)
}

val default_params : params
(** seed 1, one million events, neutral scaling, no flips or dropout,
    depth 16. *)

val run :
  Trg_program.Program.t -> Behavior.t -> params -> Trg_trace.Trace.t
(** [run program behavior params] produces a trace that starts with an
    [Enter] of procedure 0 and contains exactly [params.target_events]
    events (assuming the behaviour emits at least one block per main
    iteration; validated via {!Behavior.validate_against} first). *)

val run_streaming :
  Trg_program.Program.t ->
  Behavior.t ->
  params ->
  f:(Trg_trace.Event.t -> unit) ->
  unit
(** Like {!run} but delivers each event to [f] instead of materialising a
    trace — the shape of the paper's instrumentation-time profiling
    (Section 4.4), where TRGs are built during execution and no trace is
    ever stored.  [run] is [run_streaming] into a builder, so the two are
    event-for-event identical. *)
