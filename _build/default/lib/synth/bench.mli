(** The six benchmark workloads of the evaluation (Table 1).

    Each shape is calibrated to the corresponding SPECint95/ghostscript row
    of the paper's Table 1: procedure count, total code size, popular-set
    size and count, and the ratio of training to testing trace length
    (trace lengths themselves are scaled down ~30x so that the whole
    evaluation runs in minutes; the popular-working-set-to-cache-size
    ratio, which drives conflict-miss behaviour, is preserved).

    The training and testing inputs differ in seed, loop scaling, selector
    regime flips and cold-call dropout — [m88ksim]'s two inputs are made
    deliberately dissimilar, mirroring the paper's remark that dcrand is a
    poor training input for dhry. *)

val all : Shape.t list
(** gcc, go, ghostscript, m88ksim, perl, vortex — in Table 1 order. *)

val find : string -> Shape.t
(** Lookup by name.  Raises [Not_found]. *)

val names : string list

val small : Shape.t
(** A miniature workload (a few hundred procedures, 200k-event traces) for
    tests, examples and quick runs; not part of Table 1. *)
