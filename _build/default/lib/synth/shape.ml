type t = {
  name : string;
  seed : int;
  n_procs : int;
  total_bytes : int;
  hot_bytes : int;
  n_phases : int;
  drivers_per_phase : int;
  workers_per_driver : int;
  shared_libs : int;
  leaves : int;
  phase_iters : int * int;
  ctrl_iters : int * int;
  driver_iters : int * int;
  worker_iters : int * int;
  alternation : float;
  blocked_run : int * int;
  lib_call_prob : float;
  leaf_call_prob : float;
  cold_call_prob : float;
  train : Walker.params;
  test : Walker.params;
}

let hot_count t =
  1
  + t.n_phases
  + (t.n_phases * t.drivers_per_phase)
  + (t.n_phases * t.drivers_per_phase * t.workers_per_driver)
  + t.shared_libs
  + t.leaves

let validate t =
  if t.n_procs <= 0 then invalid_arg "Shape: n_procs must be positive";
  if hot_count t > t.n_procs then
    invalid_arg
      (Printf.sprintf "Shape %s: structure needs %d procs but n_procs = %d" t.name
         (hot_count t) t.n_procs);
  if t.hot_bytes <= 0 || t.hot_bytes > t.total_bytes then
    invalid_arg "Shape: hot_bytes must be in (0, total_bytes]";
  if t.n_phases <= 0 || t.drivers_per_phase <= 0 || t.workers_per_driver <= 0 then
    invalid_arg "Shape: phase structure must be positive";
  if t.alternation < 0. || t.alternation > 1. then
    invalid_arg "Shape: alternation out of [0,1]";
  let ordered (lo, hi) = lo >= 0 && hi >= lo in
  if
    not
      (ordered t.phase_iters && ordered t.ctrl_iters && ordered t.driver_iters
     && ordered t.worker_iters && ordered t.blocked_run)
  then invalid_arg "Shape: iteration ranges must be ordered and non-negative"
