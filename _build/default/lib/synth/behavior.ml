type pattern = Round_robin | Blocked of int | Weighted of float

type stmt =
  | Block of { off : int; len : int }
  | Call of { callee : int; prob : float }
  | Loop of { lo : int; hi : int; body : stmt list }
  | Select of { sid : int; callees : int array; pattern : pattern }

type t = { bodies : stmt list array; n_selects : int }

let rec check_stmt seen = function
  | Block { off; len } ->
    if off < 0 || len <= 0 then invalid_arg "Behavior: bad block range"
  | Call { prob; _ } ->
    if prob < 0. || prob > 1. then invalid_arg "Behavior: call prob out of [0,1]"
  | Loop { lo; hi; body } ->
    if lo < 0 || hi < lo then invalid_arg "Behavior: bad loop bounds";
    List.iter (check_stmt seen) body
  | Select { sid; callees; pattern } ->
    if Array.length callees = 0 then invalid_arg "Behavior: empty selector";
    (match pattern with
    | Blocked n when n <= 0 -> invalid_arg "Behavior: Blocked run must be positive"
    | Weighted s when s <= 0. -> invalid_arg "Behavior: Weighted exponent must be positive"
    | Blocked _ | Weighted _ | Round_robin -> ());
    if Hashtbl.mem seen sid then
      invalid_arg (Printf.sprintf "Behavior: duplicate select sid %d" sid);
    Hashtbl.add seen sid ()

let make bodies =
  let seen = Hashtbl.create 16 in
  Array.iter (List.iter (check_stmt seen)) bodies;
  let n_selects = Hashtbl.length seen in
  Hashtbl.iter
    (fun sid () ->
      if sid < 0 || sid >= n_selects then
        invalid_arg (Printf.sprintf "Behavior: select sids not dense (%d)" sid))
    seen;
  { bodies; n_selects }

let validate_against program t =
  let n = Trg_program.Program.n_procs program in
  if Array.length t.bodies <> n then
    invalid_arg "Behavior: body count does not match program";
  let check_callee c =
    if c < 0 || c >= n then invalid_arg (Printf.sprintf "Behavior: callee %d" c)
  in
  let rec check proc = function
    | Block { off; len } ->
      if off + len > Trg_program.Program.size program proc then
        invalid_arg
          (Printf.sprintf "Behavior: block [%d,%d) exceeds proc %d size" off
             (off + len) proc)
    | Call { callee; _ } -> check_callee callee
    | Loop { body; _ } -> List.iter (check proc) body
    | Select { callees; _ } -> Array.iter check_callee callees
  in
  Array.iteri (fun proc body -> List.iter (check proc) body) t.bodies

let static_call_targets t proc =
  let acc = ref [] in
  let rec visit = function
    | Block _ -> ()
    | Call { callee; _ } -> acc := callee :: !acc
    | Loop { body; _ } -> List.iter visit body
    | Select { callees; _ } -> Array.iter (fun c -> acc := c :: !acc) callees
  in
  List.iter visit t.bodies.(proc);
  List.sort_uniq compare !acc
