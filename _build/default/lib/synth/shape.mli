(** Benchmark shape: every knob of a synthetic workload.

    A shape describes both the static program (procedure population and
    sizes) and its dynamic structure (phases, drivers, workers, shared
    libraries, interleaving regimes), plus the walker parameters of the
    training and testing inputs.  The six shapes in {!Bench} are calibrated
    to the static/dynamic statistics of the paper's Table 1. *)

type t = {
  name : string;
  seed : int;  (** program-generation seed *)
  n_procs : int;
  total_bytes : int;  (** target text-segment size *)
  hot_bytes : int;  (** target combined size of the hot procedures *)
  n_phases : int;  (** sequential program phases (blocked at top level) *)
  drivers_per_phase : int;
  workers_per_driver : int;
  shared_libs : int;  (** utility procedures shared across phases *)
  leaves : int;  (** small leaf helpers called from workers/libs *)
  phase_iters : int * int;  (** iterations of each phase per main run *)
  ctrl_iters : int * int;  (** driver dispatches per phase iteration *)
  driver_iters : int * int;  (** worker dispatches per driver call *)
  worker_iters : int * int;  (** inner-loop iterations per worker call *)
  alternation : float;
      (** probability that a driver dispatches its workers round-robin
          (Figure 1 trace #1 regime) rather than in blocks (trace #2) *)
  blocked_run : int * int;  (** run length for blocked dispatch *)
  lib_call_prob : float;
  leaf_call_prob : float;
  cold_call_prob : float;  (** probability of straying into cold code *)
  train : Walker.params;
  test : Walker.params;
}

val hot_count : t -> int
(** Number of hot (structurally popular) procedures implied by the phase /
    driver / worker / library structure, including [main]. *)

val validate : t -> unit
(** Raises [Invalid_argument] if the structure does not fit in [n_procs]
    or any parameter is out of range. *)
