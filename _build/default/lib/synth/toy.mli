(** The paper's motivating example (Figures 1-3).

    A main procedure [M] calls one of two leaf procedures [X]/[Y] depending
    on a condition, then always calls [Z].  Each procedure fits in exactly
    one cache line, and the cache holds three lines.  The same weighted
    call graph arises whether the condition alternates every iteration
    (trace #1) or is true for the first half of the run and false for the
    second (trace #2) — but the two traces want different layouts, which
    only the temporal relationship graph can tell apart. *)

val program : Trg_program.Program.t
(** Four procedures: M, X, Y, Z, each exactly one 32-byte cache line. *)

val cache : Trg_cache.Config.t
(** Three-line (96-byte) direct-mapped cache with 32-byte lines. *)

val m : int
val x : int
val y : int
val z : int
(** Procedure ids within {!program}. *)

val trace_alternating : ?iterations:int -> unit -> Trg_trace.Trace.t
(** Trace #1: cond alternates true/false; default 80 loop iterations
    (40 calls each to X and Y, 80 to Z). *)

val trace_blocked : ?iterations:int -> unit -> Trg_trace.Trace.t
(** Trace #2: cond is true for the first half and false for the second. *)
