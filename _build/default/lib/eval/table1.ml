module Table = Trg_util.Table
module Program = Trg_program.Program
module Trace = Trg_trace.Trace
module Gbsc = Trg_place.Gbsc
module Popularity = Trg_profile.Popularity
module Trg = Trg_profile.Trg
module Qset = Trg_profile.Qset

type row = {
  name : string;
  all_bytes : int;
  all_count : int;
  popular_bytes : int;
  popular_count : int;
  train_events : int;
  test_events : int;
  default_miss_rate : float;
  avg_q : float;
}

let row_of (r : Runner.t) =
  let program = Runner.program r in
  {
    name = r.Runner.shape.Trg_synth.Shape.name;
    all_bytes = Program.total_size program;
    all_count = Program.n_procs program;
    popular_bytes = r.Runner.prof.Gbsc.popularity.Popularity.popular_bytes;
    popular_count = Popularity.n_popular r.Runner.prof.Gbsc.popularity;
    train_events = Trace.length r.Runner.train;
    test_events = Trace.length r.Runner.test;
    default_miss_rate = Runner.test_miss_rate r (Runner.default_layout r);
    avg_q = r.Runner.prof.Gbsc.select.Trg.qstats.Qset.avg_entries;
  }

let paper_reference =
  [
    ("gcc", (2277, 2005, 351, 136, 0.0486, 11.8));
    ("go", (590, 3221, 134, 112, 0.0334, 16.0));
    ("ghostscript", (1817, 372, 104, 216, 0.0263, 18.7));
    ("m88ksim", (549, 460, 21, 31, 0.0292, 8.5));
    ("perl", (664, 271, 83, 36, 0.0419, 7.1));
    ("vortex", (1073, 923, 117, 156, 0.0629, 26.4));
  ]

let print rows =
  Table.section "TABLE 1 — Benchmark characteristics (measured | paper)";
  let header =
    [
      "program";
      "size";
      "count";
      "pop size";
      "pop cnt";
      "train len";
      "test len";
      "default MR";
      "avg Q";
    ]
  in
  let cells =
    List.map
      (fun r ->
        let paper = List.assoc_opt r.name paper_reference in
        let pair measured paperv = Printf.sprintf "%s | %s" measured paperv in
        let pk, pc, qk, qc, mr, aq =
          match paper with
          | Some (a, b, c, d, e, f) ->
            ( string_of_int a ^ " K",
              string_of_int b,
              string_of_int c ^ " K",
              string_of_int d,
              Table.fmt_pct e,
              Table.fmt_float ~decimals:1 f )
          | None -> ("-", "-", "-", "-", "-", "-")
        in
        [
          r.name;
          pair (Table.fmt_bytes r.all_bytes) pk;
          pair (string_of_int r.all_count) pc;
          pair (Table.fmt_bytes r.popular_bytes) qk;
          pair (string_of_int r.popular_count) qc;
          Table.fmt_int r.train_events;
          Table.fmt_int r.test_events;
          pair (Table.fmt_pct r.default_miss_rate) mr;
          pair (Table.fmt_float ~decimals:1 r.avg_q) aq;
        ])
      rows
  in
  Table.print ~header cells;
  print_newline ()
