module Table = Trg_util.Table
module Graph = Trg_profile.Graph
module Online = Trg_profile.Online
module Popularity = Trg_profile.Popularity
module Trg = Trg_profile.Trg
module Gbsc = Trg_place.Gbsc
module Cost = Trg_place.Cost
module Walker = Trg_synth.Walker
module Gen = Trg_synth.Gen

type result = {
  bench : string;
  offline_select_edges : int;
  online_select_edges : int;
  offline_place_edges : int;
  online_place_edges : int;
  offline_mr : float;
  online_mr : float;
}

let run (r : Runner.t) =
  let program = Runner.program r in
  let config = r.Runner.config in
  let w = r.Runner.workload in
  (* Online pass: same walker run, events consumed as they happen. *)
  let profiler =
    Online.create ~capacity_bytes:config.Gbsc.q_capacity program
      r.Runner.prof.Gbsc.chunks
  in
  Walker.run_streaming w.Gen.program w.Gen.behavior w.Gen.shape.Trg_synth.Shape.train
    ~f:(Online.observe profiler);
  let snap = Online.finish profiler in
  (* Popularity becomes known only now; filter the select graph for the
     merge phase. *)
  let popularity =
    Popularity.select ~coverage:config.Gbsc.coverage ~min_refs:config.Gbsc.min_refs
      program snap.Online.tstats
  in
  let online_select =
    Graph.filter_nodes (Popularity.keep popularity) snap.Online.select.Trg.graph
  in
  let online_layout =
    Gbsc.place_with config program ~select:online_select
      ~model:
        (Cost.Trg_chunks
           { chunks = r.Runner.prof.Gbsc.chunks; trg = snap.Online.place.Trg.graph })
  in
  {
    bench = r.Runner.shape.Trg_synth.Shape.name;
    offline_select_edges = Graph.n_edges r.Runner.prof.Gbsc.select.Trg.graph;
    online_select_edges = Graph.n_edges snap.Online.select.Trg.graph;
    offline_place_edges = Graph.n_edges r.Runner.prof.Gbsc.place.Trg.graph;
    online_place_edges = Graph.n_edges snap.Online.place.Trg.graph;
    offline_mr = Runner.test_miss_rate r (Runner.gbsc_layout r);
    online_mr = Runner.test_miss_rate r online_layout;
  }

let print res =
  Table.section
    (Printf.sprintf "ONLINE PROFILING — Section 4.4 instrumentation mode (%s)"
       res.bench);
  Table.print
    ~header:[ "pipeline"; "TRG_select edges"; "TRG_place edges"; "GBSC test MR" ]
    [
      [
        "offline (stored trace, popular-filtered)";
        Table.fmt_int res.offline_select_edges;
        Table.fmt_int res.offline_place_edges;
        Table.fmt_pct res.offline_mr;
      ];
      [
        "online (streaming, filtered at placement)";
        Table.fmt_int res.online_select_edges;
        Table.fmt_int res.online_place_edges;
        Table.fmt_pct res.online_mr;
      ];
    ];
  print_newline ()
