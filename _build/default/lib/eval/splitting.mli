(** Procedure splitting combined with placement (paper conclusion:
    "procedure splitting ... [is] orthogonal to the problem of placing
    whole procedures and can therefore be combined with our technique to
    achieve further improvements").

    Splits every procedure with cold chunks, rewrites the training and
    testing traces onto the split program, and re-runs the GBSC pipeline
    there.  Reported rows: the original program under its default and GBSC
    layouts, and the split program under GBSC. *)

type variant = {
  cold_fraction : float;
  n_split : int;  (** procedures that gained a cold part *)
  cold_bytes : int;
  gbsc_split_mr : float;
}

type result = {
  bench : string;
  default_mr : float;
  gbsc_mr : float;
  variants : variant list;
}

val run : ?cold_fractions:float list -> Runner.t -> result
(** Default thresholds: 0.05 (near Pettis-Hansen's never-executed fluff)
    and 0.30 (also separates the once-in-a-while paths the synthetic
    workloads model as quarter-time code). *)

val print : result -> unit
