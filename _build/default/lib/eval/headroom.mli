(** Headroom analysis: greedy GBSC vs direct metric optimisation.

    Figure 6 shows the TRG_place metric tracks conflict misses almost
    linearly, so the metric itself can be optimised by search.  This
    experiment anneals the popular procedures' cache offsets — cold from a
    random assignment, and warm-started from GBSC's own offsets — and
    compares metric values and measured miss rates.  A small gap between
    GBSC and the annealed results means the paper's greedy merge order
    loses little against direct optimisation of its objective. *)

type row = { label : string; metric : float; miss_rate : float }

type result = { bench : string; rows : row list }

val run : ?iterations:int -> Runner.t -> result

val print : result -> unit
