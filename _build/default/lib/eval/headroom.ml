module Table = Trg_util.Table
module Gbsc = Trg_place.Gbsc
module Anneal = Trg_place.Anneal

type row = { label : string; metric : float; miss_rate : float }

type result = { bench : string; rows : row list }

let run ?iterations (r : Runner.t) =
  let program = Runner.program r in
  let config = r.Runner.config in
  let profile = r.Runner.prof in
  let params =
    match iterations with
    | Some iterations -> { Anneal.default_params with Anneal.iterations }
    | None -> Anneal.default_params
  in
  let gbsc_off = Anneal.gbsc_offsets config program profile in
  let gbsc_metric = Anneal.cost config program ~profile ~offsets:gbsc_off in
  let gbsc_layout = Runner.gbsc_layout r in
  let warm_layout, warm_metric =
    Anneal.place ~params ~init:gbsc_off config program profile
  in
  let cold_layout, cold_metric = Anneal.place ~params config program profile in
  {
    bench = r.Runner.shape.Trg_synth.Shape.name;
    rows =
      [
        {
          label = "GBSC (greedy)";
          metric = gbsc_metric;
          miss_rate = Runner.test_miss_rate r gbsc_layout;
        };
        {
          label = "anneal, warm start from GBSC";
          metric = warm_metric;
          miss_rate = Runner.test_miss_rate r warm_layout;
        };
        {
          label = "anneal, random start";
          metric = cold_metric;
          miss_rate = Runner.test_miss_rate r cold_layout;
        };
        {
          label = "default layout";
          metric = nan;
          miss_rate = Runner.test_miss_rate r (Runner.default_layout r);
        };
      ];
  }

let print res =
  Table.section
    (Printf.sprintf "HEADROOM — greedy GBSC vs direct metric search (%s)" res.bench);
  Table.print
    ~header:[ "placement"; "TRG_place metric"; "test MR" ]
    (List.map
       (fun r ->
         [
           r.label;
           (if Float.is_nan r.metric then "-" else Printf.sprintf "%.0f" r.metric);
           Table.fmt_pct r.miss_rate;
         ])
       res.rows);
  print_newline ()
