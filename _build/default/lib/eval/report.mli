(** Top-level experiment orchestration: regenerate every table and figure.

    Used by [bench/main.exe] (the full reproduction run) and the [trgplace]
    CLI.  All entry points print their results to stdout as ASCII tables
    mirroring the paper's presentation. *)

type options = {
  runs : int;  (** Figure 5 perturbed placements per algorithm *)
  fig6_points : int;  (** Figure 6 randomized layouts *)
  benches : Trg_synth.Shape.t list;  (** benchmarks to evaluate *)
  print_cdf : bool;  (** print full Figure 5 CDFs *)
  print_points : bool;  (** print full Figure 6 point sets *)
}

val default_options : options
(** Paper-faithful: 40 runs, 80 points, all six benchmarks. *)

val quick_options : options
(** Small and fast: 8 runs, 20 points, the [small] workload only. *)

val table1 : options -> unit

val characterize : options -> unit
(** Reuse-distance characterisation of every selected benchmark. *)

val figure5 : options -> unit

val figure6 : options -> unit
(** Runs on [go] (as in the paper) when it is among the selected
    benchmarks, otherwise on the first selected benchmark. *)

val padding : options -> unit
(** Runs on [perl] when selected, otherwise on the first benchmark. *)

val setassoc : options -> unit
(** Runs on the [small] workload (pair databases are quadratic in Q). *)

val ablation : options -> unit
(** Runs on the first selected benchmark. *)

val splitting : options -> unit
(** Procedure splitting + GBSC on every selected benchmark. *)

val paging : options -> unit
(** Page-locality comparison on every selected benchmark. *)

val sampling : options -> unit
(** Sampled-profile quality study on the first selected benchmark. *)

val blocks : options -> unit
(** Intra-procedure block reordering on every selected benchmark. *)

val online : options -> unit
(** Online-vs-offline profiling comparison on the first selected benchmark. *)

val headroom : options -> unit
(** Greedy-vs-annealed comparison on the first selected benchmark. *)

val hierarchy : options -> unit
(** Two-level hierarchy study on every selected benchmark. *)

val sweep : options -> unit
(** Cache-size sweep on [go] when selected, else the first benchmark. *)

val all : options -> unit
(** Every experiment in paper order, followed by the sweep. *)
