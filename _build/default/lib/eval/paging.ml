module Table = Trg_util.Table
module Sim = Trg_cache.Sim
module Gbsc = Trg_place.Gbsc

type row = {
  label : string;
  miss_rate : float;
  pages_touched : int;
  faults_tight : int;
  faults_roomy : int;
}

type result = {
  bench : string;
  page_size : int;
  tight_frames : int;
  roomy_frames : int;
  rows : row list;
}

let run ?(page_size = 4096) ?(tight_frames = 16) (r : Runner.t) =
  let program = Runner.program r in
  let roomy_frames = 2 * tight_frames in
  let row label layout =
    let tight =
      Sim.paging program layout ~page_size ~frames:tight_frames r.Runner.test
    in
    let roomy =
      Sim.paging program layout ~page_size ~frames:roomy_frames r.Runner.test
    in
    {
      label;
      miss_rate = Runner.test_miss_rate r layout;
      pages_touched = tight.Sim.pages_touched;
      faults_tight = tight.Sim.page_faults;
      faults_roomy = roomy.Sim.page_faults;
    }
  in
  {
    bench = r.Runner.shape.Trg_synth.Shape.name;
    page_size;
    tight_frames;
    roomy_frames;
    rows =
      [
        row "default layout" (Runner.default_layout r);
        row "GBSC" (Runner.gbsc_layout r);
        row "GBSC, page-affinity linearisation"
          (Gbsc.place_paged program r.Runner.prof);
      ];
  }

let print res =
  Table.section
    (Printf.sprintf
       "PAGE LOCALITY — Section 4.3 linearisation variant (%s, %d B pages)"
       res.bench res.page_size);
  Table.print
    ~header:
      [
        "layout";
        "I-cache MR";
        "pages touched";
        Printf.sprintf "faults@%d frames" res.tight_frames;
        Printf.sprintf "faults@%d frames" res.roomy_frames;
      ]
    (List.map
       (fun r ->
         [
           r.label;
           Table.fmt_pct r.miss_rate;
           string_of_int r.pages_touched;
           Table.fmt_int r.faults_tight;
           Table.fmt_int r.faults_roomy;
         ])
       res.rows);
  print_newline ()
