(** Reproduction of the Section 5.1 fragility example.

    The paper takes a good layout of [perl] and pads every procedure by one
    cache line (32 bytes): the trivial change moved the miss rate from 3.8%
    to 5.4%.  We reproduce the experiment by shifting each procedure of the
    GBSC layout down by 32 bytes per preceding procedure, preserving order
    and relative gaps. *)

type result = {
  bench : string;
  base_mr : float;  (** GBSC layout *)
  padded_mr : float;  (** same layout + 32 bytes of padding per procedure *)
}

val run : ?pad:int -> Runner.t -> result
(** [pad] defaults to one cache line of the prepared configuration. *)

val print : result -> unit

val print_many : result list -> unit
(** One table, one row per benchmark. *)
