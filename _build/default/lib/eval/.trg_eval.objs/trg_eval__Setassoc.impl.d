lib/eval/setassoc.ml: Array Float Format List Printf Runner Trg_cache Trg_place Trg_profile Trg_synth Trg_util
