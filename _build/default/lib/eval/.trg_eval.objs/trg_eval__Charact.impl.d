lib/eval/charact.ml: List Runner Trg_cache Trg_synth Trg_util
