lib/eval/report.mli: Trg_synth
