lib/eval/paging.mli: Runner
