lib/eval/figure5.mli: Runner
