lib/eval/headroom.ml: Float List Printf Runner Trg_place Trg_synth Trg_util
