lib/eval/sweep.mli: Trg_synth
