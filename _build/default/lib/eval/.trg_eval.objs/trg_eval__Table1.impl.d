lib/eval/table1.ml: List Printf Runner Trg_place Trg_profile Trg_program Trg_synth Trg_trace Trg_util
