lib/eval/figure6.mli: Runner
