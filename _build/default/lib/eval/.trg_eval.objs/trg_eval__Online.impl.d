lib/eval/online.ml: Printf Runner Trg_place Trg_profile Trg_synth Trg_util
