lib/eval/setassoc.mli: Trg_cache Trg_synth
