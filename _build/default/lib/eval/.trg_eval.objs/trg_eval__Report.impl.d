lib/eval/report.ml: Ablation Blocks Charact Figure5 Figure6 Hashtbl Headroom Hierarchy List Online Padding Paging Runner Sampling Setassoc Splitting Sweep Table1 Trg_synth
