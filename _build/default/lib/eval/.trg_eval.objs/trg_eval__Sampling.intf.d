lib/eval/sampling.mli: Runner
