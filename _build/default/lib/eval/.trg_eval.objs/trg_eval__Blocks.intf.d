lib/eval/blocks.mli: Runner
