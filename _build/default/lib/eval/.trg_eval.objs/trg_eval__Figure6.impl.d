lib/eval/figure6.ml: Array Hashtbl List Printf Runner Trg_cache Trg_place Trg_profile Trg_program Trg_synth Trg_util
