lib/eval/figure5.ml: Array Hashtbl List Printf Runner Trg_place Trg_profile Trg_synth Trg_util
