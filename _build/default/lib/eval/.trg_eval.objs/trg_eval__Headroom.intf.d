lib/eval/headroom.mli: Runner
