lib/eval/table1.mli: Runner
