lib/eval/splitting.mli: Runner
