lib/eval/padding.ml: Array List Printf Runner Trg_cache Trg_place Trg_program Trg_synth Trg_util
