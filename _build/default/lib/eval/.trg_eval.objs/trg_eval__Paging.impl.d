lib/eval/paging.ml: List Printf Runner Trg_cache Trg_place Trg_synth Trg_util
