lib/eval/runner.ml: Trg_cache Trg_place Trg_profile Trg_program Trg_synth Trg_trace
