lib/eval/charact.mli: Runner
