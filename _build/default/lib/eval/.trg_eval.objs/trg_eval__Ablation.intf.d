lib/eval/ablation.mli: Runner
