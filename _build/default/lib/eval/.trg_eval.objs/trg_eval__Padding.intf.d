lib/eval/padding.mli: Runner
