lib/eval/hierarchy.mli: Runner
