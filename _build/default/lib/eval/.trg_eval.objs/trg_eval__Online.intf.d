lib/eval/online.mli: Runner
