(** Layout effects through a two-level cache hierarchy (the conclusion's
    "other layers of the memory hierarchy").

    An 8 KB direct-mapped L1 backed by a 64 KB 4-way L2 with 64-byte
    lines.  Compares the default layout, GBSC targeting the L1, and GBSC
    targeting the L2 geometry, reporting L1/L2 miss rates and the average
    access time (1 / 10 / 100 cycle latencies).  Expected: L1-targeted
    placement also removes L2 conflict misses (spatially compacted hot
    code), and targeting the L2 instead sacrifices L1 behaviour for
    little L2 gain. *)

type row = {
  label : string;
  l1_mr : float;
  l2_mr : float;  (** local miss rate of the L2 *)
  amat : float;
}

type result = { bench : string; rows : row list }

val run : Runner.t -> result

val print : result -> unit
