(** Sampled TRG construction (Section 4.4 practicality).

    The paper's instrumented executables run ~25x slower than native; an
    obvious mitigation is to profile only periodic windows of the
    execution.  This experiment builds TRG_select/TRG_place from
    1/1, 1/2, 1/4 and 1/8 of the training trace (contiguous windows spread
    over the whole run), places with GBSC, and reports how much placement
    quality survives the cheaper profile. *)

type row = {
  fraction : string;  (** e.g. "1/4" *)
  events_used : int;
  miss_rate : float;
}

type result = { bench : string; full_mr : float; default_mr : float; rows : row list }

val run : ?window:int -> ?factors:int list -> Runner.t -> result
(** [window] is the length of each profiled window in events (default
    25,000); sampling factor [k] keeps one window in every [k]. *)

val print : result -> unit
