module Layout = Trg_program.Layout
module Config = Trg_cache.Config
module Table = Trg_util.Table
module Gbsc = Trg_place.Gbsc

type result = { bench : string; base_mr : float; padded_mr : float }

let pad_layout program layout pad =
  let order = Layout.order layout in
  let addr = Layout.addresses layout in
  Array.iteri (fun rank p -> addr.(p) <- addr.(p) + (rank * pad)) order;
  Layout.of_addresses program addr

let run ?pad (r : Runner.t) =
  let pad =
    match pad with Some p -> p | None -> r.Runner.config.Gbsc.cache.Config.line_size
  in
  let program = Runner.program r in
  let base = Runner.gbsc_layout r in
  let padded = pad_layout program base pad in
  {
    bench = r.Runner.shape.Trg_synth.Shape.name;
    base_mr = Runner.test_miss_rate r base;
    padded_mr = Runner.test_miss_rate r padded;
  }

let print_many results =
  Table.section "SECTION 5.1 — layout fragility under 32B/procedure padding";
  Table.print
    ~header:[ "program"; "GBSC layout"; "padded"; "relative change" ]
    (List.map
       (fun res ->
         [
           res.bench;
           Table.fmt_pct res.base_mr;
           Table.fmt_pct res.padded_mr;
           Printf.sprintf "%+.0f%%"
             (100. *. ((res.padded_mr /. res.base_mr) -. 1.));
         ])
       results);
  Printf.printf "(paper: 3.8%% -> 5.4%% on perl, +42%%)\n\n"

let print res =
  Table.section
    (Printf.sprintf "SECTION 5.1 — layout fragility under padding (%s)" res.bench);
  Table.print
    ~header:[ "layout"; "miss rate" ]
    [
      [ "GBSC layout"; Table.fmt_pct res.base_mr ];
      [ "GBSC + 32B padding per procedure"; Table.fmt_pct res.padded_mr ];
    ];
  Printf.printf "(paper: 3.8%% -> 5.4%% on perl)\n\n"
