module Table = Trg_util.Table
module Reuse = Trg_cache.Reuse

type row = {
  bench : string;
  line_refs : int;
  cold : int;
  p50 : int;
  p90 : int;
  p99 : int;
  fa_4k : float;
  fa_8k : float;
  fa_16k : float;
  fa_32k : float;
  dm_8k : float;
}

let row_of (r : Runner.t) =
  let program = Runner.program r in
  let layout = Runner.default_layout r in
  let reuse = Reuse.compute program layout ~line_size:32 r.Runner.test in
  let fa bytes = Reuse.miss_rate_at reuse (bytes / 32) in
  {
    bench = r.Runner.shape.Trg_synth.Shape.name;
    line_refs = Reuse.total_refs reuse;
    cold = Reuse.cold_refs reuse;
    p50 = Reuse.percentile reuse 50.;
    p90 = Reuse.percentile reuse 90.;
    p99 = Reuse.percentile reuse 99.;
    fa_4k = fa 4096;
    fa_8k = fa 8192;
    fa_16k = fa 16384;
    fa_32k = fa 32768;
    dm_8k = Runner.test_miss_rate r layout;
  }

let print rows =
  Table.section
    "WORKLOAD CHARACTERISATION — reuse distances and capacity floors (test input)";
  Table.print
    ~header:
      [
        "program"; "line refs"; "cold"; "p50"; "p90"; "p99"; "FA 4K"; "FA 8K";
        "FA 16K"; "FA 32K"; "DM 8K (measured)";
      ]
    (List.map
       (fun r ->
         [
           r.bench;
           Table.fmt_int r.line_refs;
           Table.fmt_int r.cold;
           string_of_int r.p50;
           string_of_int r.p90;
           string_of_int r.p99;
           Table.fmt_pct r.fa_4k;
           Table.fmt_pct r.fa_8k;
           Table.fmt_pct r.fa_16k;
           Table.fmt_pct r.fa_32k;
           Table.fmt_pct r.dm_8k;
         ])
       rows);
  print_endline
    "(stack distances in cache lines; FA columns are the fully-associative LRU";
  print_endline
    " capacity floors implied by the distances — conflict misses are DM minus FA)";
  print_newline ()
