(** Online vs offline profiling (Section 4.4).

    The offline pipeline stores a trace and builds popularity-filtered
    TRGs from it; the paper's instrumentation builds TRGs during
    execution, when the popular set is not yet known.  This experiment
    runs both against the same walker execution and compares graph sizes
    and the resulting GBSC placements. *)

type result = {
  bench : string;
  offline_select_edges : int;
  online_select_edges : int;  (** unfiltered: includes unpopular procedures *)
  offline_place_edges : int;
  online_place_edges : int;
  offline_mr : float;
  online_mr : float;
}

val run : Runner.t -> result

val print : result -> unit
