module Shape = Trg_synth.Shape
module Bench = Trg_synth.Bench

type options = {
  runs : int;
  fig6_points : int;
  benches : Shape.t list;
  print_cdf : bool;
  print_points : bool;
}

let default_options =
  {
    runs = 40;
    fig6_points = 80;
    benches = Bench.all;
    print_cdf = true;
    print_points = true;
  }

let quick_options =
  {
    runs = 8;
    fig6_points = 20;
    benches = [ Bench.find "small" ];
    print_cdf = false;
    print_points = false;
  }

(* Prepared runners are cached per shape so [all] prepares each benchmark
   once across experiments. *)
let cache : (string, Runner.t) Hashtbl.t = Hashtbl.create 8

let runner shape =
  let name = shape.Shape.name in
  match Hashtbl.find_opt cache name with
  | Some r -> r
  | None ->
    let r = Runner.prepare shape in
    Hashtbl.add cache name r;
    r

let pick options preferred =
  let by_name name = List.find_opt (fun s -> s.Shape.name = name) options.benches in
  match by_name preferred with
  | Some s -> s
  | None -> (
    match options.benches with
    | s :: _ -> s
    | [] -> invalid_arg "Report: no benchmarks selected")

let table1 options =
  let rows = List.map (fun s -> Table1.row_of (runner s)) options.benches in
  Table1.print rows

let characterize options =
  Charact.print (List.map (fun s -> Charact.row_of (runner s)) options.benches)

let figure5 options =
  List.iter
    (fun s ->
      let result = Figure5.run ~runs:options.runs (runner s) in
      Figure5.print ~cdf:options.print_cdf result)
    options.benches

let figure6 options =
  let shape = pick options "go" in
  Figure6.print ~points:options.print_points
    (Figure6.run ~n:options.fig6_points (runner shape))

let padding options =
  Padding.print_many
    (List.map (fun shape -> Padding.run (runner shape)) options.benches)

let setassoc _options = Setassoc.print (Setassoc.run (Bench.find "small"))

let ablation options =
  let shape = pick options "small" in
  Ablation.print (Ablation.run (runner shape))

let splitting options =
  List.iter (fun shape -> Splitting.print (Splitting.run (runner shape))) options.benches

let paging options =
  List.iter (fun shape -> Paging.print (Paging.run (runner shape))) options.benches

let sampling options =
  let shape = pick options "gcc" in
  Sampling.print (Sampling.run (runner shape))

let blocks options =
  List.iter (fun shape -> Blocks.print (Blocks.run (runner shape))) options.benches

let online options =
  let shape = pick options "perl" in
  Online.print (Online.run (runner shape))

let headroom options =
  let shape = pick options "go" in
  Headroom.print (Headroom.run (runner shape))

let hierarchy options =
  List.iter (fun shape -> Hierarchy.print (Hierarchy.run (runner shape))) options.benches

let sweep options =
  let shape = pick options "go" in
  Sweep.print (Sweep.run shape)

let all options =
  table1 options;
  characterize options;
  figure5 options;
  figure6 options;
  padding options;
  setassoc options;
  ablation options;
  splitting options;
  paging options;
  sampling options;
  blocks options;
  online options;
  headroom options;
  hierarchy options;
  sweep options
