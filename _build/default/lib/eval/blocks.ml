module Table = Trg_util.Table
module Layout = Trg_program.Layout
module Sim = Trg_cache.Sim
module Gbsc = Trg_place.Gbsc
module Block_reorder = Trg_place.Block_reorder

type row = { label : string; miss_rate : float; accesses : int }

type result = { bench : string; n_reordered : int; rows : row list }

let run (r : Runner.t) =
  let program = Runner.program r in
  let config = r.Runner.config in
  let cache = config.Gbsc.cache in
  let reorder = Block_reorder.build program r.Runner.train in
  let train' = Block_reorder.remap_trace reorder r.Runner.train in
  let test' = Block_reorder.remap_trace reorder r.Runner.test in
  let row label layout trace =
    let res = Sim.simulate program layout cache trace in
    { label; miss_rate = Sim.miss_rate res; accesses = res.Sim.accesses }
  in
  let gbsc_reordered = Gbsc.run config program train' in
  {
    bench = r.Runner.shape.Trg_synth.Shape.name;
    n_reordered = Block_reorder.n_reordered reorder;
    rows =
      [
        row "default layout" (Runner.default_layout r) r.Runner.test;
        row "default + block reordering" (Layout.default program) test';
        row "GBSC" (Runner.gbsc_layout r) r.Runner.test;
        row "GBSC + block reordering" gbsc_reordered test';
      ];
  }

let print res =
  Table.section
    (Printf.sprintf "BLOCK GRANULARITY — intra-procedure reordering (%s)" res.bench);
  Printf.printf "%d procedures internally reordered\n\n" res.n_reordered;
  Table.print
    ~header:[ "configuration"; "test MR"; "line accesses" ]
    (List.map
       (fun r -> [ r.label; Table.fmt_pct r.miss_rate; Table.fmt_int r.accesses ])
       res.rows);
  print_newline ()
