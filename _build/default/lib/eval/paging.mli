(** Page-locality variant of the final linearisation (Section 4.3:
    "it is possible to alter the algorithm described below to select a
    linear ordering of procedures that reduces paging problems").

    Compares the default layout, standard GBSC, and GBSC with
    affinity-biased linearisation ({!Trg_place.Gbsc.place_paged}) on both
    the instruction cache and a small LRU-managed code-page working set.
    The paged variant must preserve cache behaviour (identical alignments)
    while reducing page faults. *)

type row = {
  label : string;
  miss_rate : float;
  pages_touched : int;
  faults_tight : int;  (** LRU faults with a tight frame budget *)
  faults_roomy : int;  (** LRU faults with twice that budget *)
}

type result = {
  bench : string;
  page_size : int;
  tight_frames : int;
  roomy_frames : int;
  rows : row list;
}

val run : ?page_size:int -> ?tight_frames:int -> Runner.t -> result
(** Defaults: 4 KB pages; the tight budget is 16 frames (64 KB resident),
    the roomy budget twice that. *)

val print : result -> unit
