module Table = Trg_util.Table
module Graph = Trg_profile.Graph
module Popularity = Trg_profile.Popularity
module Trg = Trg_profile.Trg
module Gbsc = Trg_place.Gbsc
module Cost = Trg_place.Cost
module Config = Trg_cache.Config

type row = { label : string; miss_rate : float }

type result = { bench : string; rows : row list }

let run (r : Runner.t) =
  let program = Runner.program r in
  let config = r.Runner.config in
  let base_prof = r.Runner.prof in
  let popular_wcg =
    Graph.filter_nodes (Popularity.keep base_prof.Gbsc.popularity) r.Runner.wcg
  in
  let mr = Runner.test_miss_rate r in
  let place_with_profile (prof : Gbsc.profile) = Gbsc.place program prof in
  let full = mr (place_with_profile base_prof) in
  (* Whole-procedure TRG_place: chunk size larger than any procedure. *)
  let no_chunk_config =
    { config with Gbsc.chunk_size = 1 lsl 20 }
  in
  let no_chunking =
    mr (place_with_profile (Gbsc.profile no_chunk_config program r.Runner.train))
  in
  let chunk cs =
    mr
      (place_with_profile
         (Gbsc.profile { config with Gbsc.chunk_size = cs } program r.Runner.train))
  in
  let qbound factor =
    let q = factor * config.Gbsc.cache.Config.size in
    mr (place_with_profile (Gbsc.profile { config with Gbsc.q_capacity = q } program r.Runner.train))
  in
  let coverage c =
    mr
      (place_with_profile
         (Gbsc.profile { config with Gbsc.coverage = c } program r.Runner.train))
  in
  (* WCG-driven selection with TRG_place alignment costs. *)
  let wcg_select =
    mr
      (Gbsc.place_with config program ~select:popular_wcg
         ~model:
           (Cost.Trg_chunks
              { chunks = base_prof.Gbsc.chunks; trg = base_prof.Gbsc.place.Trg.graph }))
  in
  (* TRG selection with WCG (procedure-grain) alignment costs = HKC order
     driven by temporal information. *)
  let wcg_cost =
    mr
      (Gbsc.place_with config program ~select:base_prof.Gbsc.select.Trg.graph
         ~model:(Cost.Wcg_procs { wcg = popular_wcg }))
  in
  {
    bench = r.Runner.shape.Trg_synth.Shape.name;
    rows =
      [
        { label = "default layout"; miss_rate = mr (Runner.default_layout r) };
        { label = "GBSC (full)"; miss_rate = full };
        { label = "no chunking (whole-proc TRG_place)"; miss_rate = no_chunking };
        { label = "chunk size 128B"; miss_rate = chunk 128 };
        { label = "chunk size 512B"; miss_rate = chunk 512 };
        { label = "WCG selection + TRG placement"; miss_rate = wcg_select };
        { label = "TRG selection + WCG placement"; miss_rate = wcg_cost };
        { label = "Q bound 1x cache"; miss_rate = qbound 1 };
        { label = "Q bound 4x cache"; miss_rate = qbound 4 };
        { label = "popularity coverage 90%"; miss_rate = coverage 0.90 };
        { label = "popularity coverage 99.99%"; miss_rate = coverage 0.9999 };
      ];
  }

let print res =
  Table.section (Printf.sprintf "ABLATIONS — GBSC design choices (%s)" res.bench);
  Table.print
    ~header:[ "variant"; "miss rate" ]
    (List.map (fun r -> [ r.label; Table.fmt_pct r.miss_rate ]) res.rows);
  print_newline ()
