(** Ablations of GBSC's design choices (Sections 3-4).

    The paper motivates three ingredients: temporal ordering information
    (TRG vs WCG), fine-grained chunking for TRG_place, and the 2x-cache Q
    bound.  Each variant disables or re-parameterises one ingredient; all
    are trained on the training trace and measured on the testing trace. *)

type row = { label : string; miss_rate : float }

type result = { bench : string; rows : row list }

val run : Runner.t -> result
(** Variants: full GBSC; no chunking (whole-procedure TRG_place); WCG as
    selection graph; WCG as placement cost (TRG selection); Q bound 1x and
    4x the cache; chunk size 128 and 512 bytes; popularity coverage 90%
    and 99.99%; plus the default layout for reference. *)

val print : result -> unit
