module Table = Trg_util.Table
module Tstats = Trg_trace.Tstats
module Chunk_counts = Trg_profile.Chunk_counts
module Gbsc = Trg_place.Gbsc
module Split = Trg_place.Split
module Sim = Trg_cache.Sim

type variant = {
  cold_fraction : float;
  n_split : int;
  cold_bytes : int;
  gbsc_split_mr : float;
}

type result = {
  bench : string;
  default_mr : float;
  gbsc_mr : float;
  variants : variant list;
}

let run ?(cold_fractions = [ 0.05; 0.30 ]) (r : Runner.t) =
  let program = Runner.program r in
  let chunks = r.Runner.prof.Gbsc.chunks in
  let chunk_counts = Chunk_counts.compute chunks r.Runner.train in
  let config = r.Runner.config in
  let variant cold_fraction =
    let split =
      Split.split ~cold_fraction program chunks ~chunk_counts
        ~enter_counts:r.Runner.prof.Gbsc.tstats.Tstats.enter_counts
    in
    let split_program = Split.program split in
    let split_train = Split.remap_trace split r.Runner.train in
    let split_test = Split.remap_trace split r.Runner.test in
    let layout = Gbsc.run config split_program split_train in
    {
      cold_fraction;
      n_split = Split.n_split split;
      cold_bytes = Split.cold_bytes split;
      gbsc_split_mr =
        Sim.miss_rate (Sim.simulate split_program layout config.Gbsc.cache split_test);
    }
  in
  {
    bench = r.Runner.shape.Trg_synth.Shape.name;
    default_mr = Runner.test_miss_rate r (Runner.default_layout r);
    gbsc_mr = Runner.test_miss_rate r (Runner.gbsc_layout r);
    variants = List.map variant cold_fractions;
  }

let print res =
  Table.section
    (Printf.sprintf "PROCEDURE SPLITTING + GBSC (%s) — paper conclusion" res.bench);
  Table.print
    ~header:[ "configuration"; "split procs"; "cold bytes"; "test MR" ]
    ([
       [ "default layout"; "-"; "-"; Table.fmt_pct res.default_mr ];
       [ "GBSC, no splitting"; "-"; "-"; Table.fmt_pct res.gbsc_mr ];
     ]
    @ List.map
        (fun v ->
          [
            Printf.sprintf "GBSC + splitting (cold < %.0f%% of activations)"
              (100. *. v.cold_fraction);
            string_of_int v.n_split;
            Table.fmt_bytes v.cold_bytes;
            Table.fmt_pct v.gbsc_split_mr;
          ])
        res.variants);
  print_newline ()
