module Table = Trg_util.Table
module Trace = Trg_trace.Trace
module Trg = Trg_profile.Trg
module Popularity = Trg_profile.Popularity
module Chunk = Trg_program.Chunk
module Gbsc = Trg_place.Gbsc
module Cost = Trg_place.Cost

type row = { fraction : string; events_used : int; miss_rate : float }

type result = { bench : string; full_mr : float; default_mr : float; rows : row list }

(* Keep one [window]-event window in every [factor]. *)
let sampled_trace trace ~window ~factor =
  if factor <= 1 then trace
  else begin
    let builder = Trace.Builder.create () in
    Trace.iteri
      (fun i e -> if i / window mod factor = 0 then Trace.Builder.add builder e)
      trace;
    Trace.Builder.build builder
  end

let run ?(window = 25_000) ?(factors = [ 2; 4; 8 ]) (r : Runner.t) =
  let program = Runner.program r in
  let config = r.Runner.config in
  let keep = Popularity.keep r.Runner.prof.Gbsc.popularity in
  let chunks = r.Runner.prof.Gbsc.chunks in
  let place_from trace =
    let select = Trg.build_select ~keep ~capacity_bytes:config.Gbsc.q_capacity program trace in
    let place = Trg.build_place ~keep ~capacity_bytes:config.Gbsc.q_capacity chunks trace in
    Gbsc.place_with config program ~select:select.Trg.graph
      ~model:(Cost.Trg_chunks { chunks; trg = place.Trg.graph })
  in
  let row factor =
    let sampled = sampled_trace r.Runner.train ~window ~factor in
    {
      fraction = Printf.sprintf "1/%d" factor;
      events_used = Trace.length sampled;
      miss_rate = Runner.test_miss_rate r (place_from sampled);
    }
  in
  {
    bench = r.Runner.shape.Trg_synth.Shape.name;
    full_mr = Runner.test_miss_rate r (Runner.gbsc_layout r);
    default_mr = Runner.test_miss_rate r (Runner.default_layout r);
    rows = List.map row factors;
  }

let print res =
  Table.section
    (Printf.sprintf "SAMPLED PROFILES — Section 4.4 practicality (%s)" res.bench);
  Table.print
    ~header:[ "profile"; "events used"; "GBSC test MR" ]
    ([ [ "full trace"; "-"; Table.fmt_pct res.full_mr ] ]
    @ List.map
        (fun r ->
          [ r.fraction; Table.fmt_int r.events_used; Table.fmt_pct r.miss_rate ])
        res.rows
    @ [ [ "(default layout)"; "-"; Table.fmt_pct res.default_mr ] ]);
  print_newline ()
