(** Workload characterisation: reuse-distance structure of each
    benchmark.

    Reports, per benchmark, the exact LRU stack-distance statistics of the
    testing trace under the default layout, the predicted fully
    associative miss curve (the capacity floor under every conflict-miss
    number in the evaluation), and the measured direct-mapped rate for
    contrast.  This documents how the synthetic traces behave as memory
    reference streams — the property the substitution argument in
    DESIGN.md rests on. *)

type row = {
  bench : string;
  line_refs : int;
  cold : int;
  p50 : int;  (** median finite stack distance, in lines *)
  p90 : int;
  p99 : int;
  fa_4k : float;  (** predicted fully-associative miss rates *)
  fa_8k : float;
  fa_16k : float;
  fa_32k : float;
  dm_8k : float;  (** measured direct-mapped miss rate *)
}

val row_of : Runner.t -> row

val print : row list -> unit
