(** Reproduction of Table 1: benchmark characteristics.

    For each benchmark: static size and procedure count, popular-set size
    and count, training/testing trace lengths, the miss rate of the default
    layout, and the average Q population during TRG construction — printed
    next to the values the paper reports for the original SPECint95 /
    ghostscript workloads. *)

type row = {
  name : string;
  all_bytes : int;
  all_count : int;
  popular_bytes : int;
  popular_count : int;
  train_events : int;
  test_events : int;
  default_miss_rate : float;
  avg_q : float;
}

val row_of : Runner.t -> row

val paper_reference : (string * (int * int * int * int * float * float)) list
(** Per benchmark: (all KB, all count, popular KB, popular count, default
    miss rate, average Q size) as printed in the paper's Table 1. *)

val print : row list -> unit
