(** Block-granularity reordering combined with procedure placement.

    The paper treats its machinery as applicable to "code blocks of any
    granularity"; this experiment runs the intra-procedure basic-block
    reordering pass ({!Trg_place.Block_reorder}) below the procedure
    placer and measures the stacking of the two effects: hot-path
    contiguity inside procedures, conflict avoidance between them. *)

type row = { label : string; miss_rate : float; accesses : int }

type result = { bench : string; n_reordered : int; rows : row list }

val run : Runner.t -> result
(** Rows: default; default + block reordering; GBSC; GBSC + block
    reordering (reordered traces drive the profile and the evaluation). *)

val print : result -> unit
