module Table = Trg_util.Table
module Config = Trg_cache.Config
module Sim = Trg_cache.Sim
module Gbsc = Trg_place.Gbsc

type row = { label : string; l1_mr : float; l2_mr : float; amat : float }

type result = { bench : string; rows : row list }

let l1_config = Config.make ~size:8192 ~line_size:32 ~assoc:1

let l2_config = Config.make ~size:65536 ~line_size:64 ~assoc:4

let run (r : Runner.t) =
  let program = Runner.program r in
  let row label layout =
    let h =
      Sim.simulate_hierarchy program layout ~l1:l1_config ~l2:l2_config r.Runner.test
    in
    {
      label;
      l1_mr = Sim.miss_rate h.Sim.l1;
      l2_mr = Sim.miss_rate h.Sim.l2;
      amat = h.Sim.amat;
    }
  in
  (* GBSC re-targeted at the L2 geometry. *)
  let config_l2 = Gbsc.default_config ~cache:l2_config () in
  let gbsc_l2 =
    Gbsc.place program (Gbsc.profile config_l2 program r.Runner.train)
  in
  {
    bench = r.Runner.shape.Trg_synth.Shape.name;
    rows =
      [
        row "default layout" (Runner.default_layout r);
        row "GBSC targeting L1 (8K DM)" (Runner.gbsc_layout r);
        row "GBSC targeting L2 (64K 4-way)" gbsc_l2;
      ];
  }

let print res =
  Table.section
    (Printf.sprintf
       "MEMORY HIERARCHY — 8K-DM L1 + 64K/4-way L2 (%s; conclusion's outlook)"
       res.bench);
  Table.print
    ~header:[ "layout"; "L1 MR"; "L2 local MR"; "AMAT (cycles)" ]
    (List.map
       (fun r ->
         [
           r.label;
           Table.fmt_pct r.l1_mr;
           Table.fmt_pct r.l2_mr;
           Table.fmt_float ~decimals:3 r.amat;
         ])
       res.rows);
  print_newline ()
