(** Conflict-cost evaluation of relative node alignments (Section 4.2,
    Figure 4).

    [merge_nodes] must score every possible relative cache offset of one
    node's layout against another's.  The paper's pseudo-code walks the
    C x C combinations of cache lines; we compute the identical cost array
    edge-wise: a profile edge between a block at (mod-cache) line [l1] in
    node n1 and a block at line [l2] in node n2 contributes its weight to
    exactly the offsets [i] with [l1 = (l2 + i) mod C] — that is, to
    [cost.((l1 - l2) mod C)].

    Three cost models share this machinery:
    - {!Trg_chunks}: GBSC — fine-grained TRG_place weights between 256-byte
      chunks (direct-mapped target);
    - {!Wcg_procs}: HKC — WCG weights between whole procedures;
    - {!Sa_pairs}: the Section 6 set-associative extension — D(p, {r,s})
      charges an offset only when p and both pair members land in the same
      set. *)

type model =
  | Trg_chunks of { chunks : Trg_program.Chunk.t; trg : Trg_profile.Graph.t }
  | Wcg_procs of { wcg : Trg_profile.Graph.t }
  | Sa_pairs of { chunks : Trg_program.Chunk.t; db : Trg_profile.Pair_db.t }
  | Sa_tuples of { chunks : Trg_program.Chunk.t; db : Trg_profile.Tuple_db.t }
      (** arbitrary associativity: D(p, S) with |S| = ways *)
  | Blend of (model * float) list
      (** weighted sum of sub-model costs, each normalised to unit mass
          first (their magnitudes are incommensurable).  Used to
          regularise the sparse set-associative databases with a small
          share of the dense direct-mapped TRG cost — one concrete reading
          of the paper's "other heuristics [that] were found to be
          important ... in set-associative caches". *)

val offsets_cost :
  model ->
  Trg_program.Program.t ->
  line_size:int ->
  n_sets:int ->
  n1:Node.t ->
  n2:Node.t ->
  float array
(** [offsets_cost model program ~line_size ~n_sets ~n1 ~n2] returns the
    array [cost] of length [n_sets], where [cost.(i)] estimates the
    conflict misses caused by shifting node [n2] by [i] cache sets relative
    to node [n1].  Only inter-node conflicts are counted; intra-node
    conflicts do not change with the offset (Section 4.2, note 2). *)

(** {2 Cost engines}

    Two interchangeable evaluators compute the same arrays: [Full]
    recomputes {!offsets_cost} from scratch for every candidate merge;
    [Incr] maintains pairwise arrays incrementally
    ({!Trg_cache.Incr}) and answers each query in O(n_sets).  For the
    group-decomposable models with integral profile weights the two are
    bit-identical — same arrays, same argmin, same layout; whenever that
    guarantee cannot be established ({!Sa_pairs}, {!Sa_tuples},
    {!Blend}, or non-integral weights from profile perturbation),
    {!seed_incr} returns [None], bumps [cost/incr/fallbacks], and the
    caller uses the full evaluator. *)

type engine_kind = Full | Incr

val set_engine : engine_kind -> unit
(** Sets the process-global engine selection (the [--cost-engine] CLI
    flag).  Call before the evaluation pool forks; workers inherit. *)

val engine : unit -> engine_kind
(** Current selection; defaults to [Incr]. *)

val engine_name : engine_kind -> string
(** ["full"] / ["incr"]. *)

val engine_of_name : string -> engine_kind
(** Inverse of {!engine_name}; raises [Invalid_argument] otherwise. *)

val seed_incr :
  model ->
  Trg_program.Program.t ->
  line_size:int ->
  n_sets:int ->
  Trg_cache.Incr.t option
(** [seed_incr model program ~line_size ~n_sets] builds an incremental
    engine charged with every inter-procedure profile edge at the
    all-singletons starting position, or [None] (counted in
    [cost/incr/fallbacks]) when the model or its weights rule out the
    exactness guarantee. *)

val best_offset : float array -> int
(** Index of the minimum cost; the {e first} such index, per the paper's
    tie rule (Section 4.2, note 3). *)

val node_occupancy :
  Trg_program.Program.t -> line_size:int -> n_sets:int -> Node.t -> bool array
(** [node_occupancy program ~line_size ~n_sets node] marks the cache sets
    covered by any procedure of the node. *)

val best_offset_packed : float array -> n1:bool array -> n2:bool array -> int
(** Like {!best_offset}, but ties in the conflict cost are broken by the
    number of occupied-set collisions between the two nodes (then by the
    smaller index).  The pair database of the set-associative extension is
    much sparser than a chunk TRG, so whole regions of the cost array are
    zero; packing on ties prevents the merge from piling every procedure
    onto set 0 (the "other heuristics" the paper's Section 6 alludes to). *)

val iter_lines :
  line_size:int -> n_sets:int -> start_set:int -> bytes:int -> (int -> unit) -> unit
(** [iter_lines ~line_size ~n_sets ~start_set ~bytes f] applies [f] to the
    distinct cache-set indices occupied by a code object of [bytes] bytes
    whose first line sits at set [start_set] — at most [n_sets] indices
    even for objects larger than the cache.  Exposed for {!Metric} and
    tests. *)
