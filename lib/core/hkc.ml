module Graph = Trg_profile.Graph
module Popularity = Trg_profile.Popularity

let m_placements = Trg_obs.Metrics.counter "hkc/placements"

let place ?decisions config program ~wcg ~popularity =
  Trg_obs.Metrics.incr m_placements;
  let popular_wcg = Graph.filter_nodes (Popularity.keep popularity) wcg in
  Trg_obs.Log.info (fun m ->
      m "HKC: coloring %d popular procedures" (List.length (Graph.nodes popular_wcg)));
  Gbsc.place_with ~algo:"hkc" ?decisions config program ~select:popular_wcg
    ~model:(Cost.Wcg_procs { wcg = popular_wcg })
