(** The paper's procedure-placement algorithm (Sections 3 and 4), named
    GBSC after its authors.

    Pipeline:
    + profile a training trace into TRG_select (procedure granularity) and
      TRG_place (256-byte chunk granularity), restricted to popular
      procedures;
    + greedily merge the heaviest TRG_select edge's nodes, choosing each
      merge's relative cache alignment by minimising the TRG_place conflict
      cost over all cache offsets ([merge_nodes], Figure 4);
    + linearise the surviving nodes' cache-relative alignments into a
      complete layout, filling alignment gaps with unpopular procedures
      (Section 4.3).

    Telemetry ({!Trg_obs.Metrics}): [gbsc/profiles], [gbsc/placements],
    [gbsc/merge_steps] (merge_nodes applications), [gbsc/cost_calls] and
    [gbsc/offset_candidates] (cost-array cells evaluated) — the work terms
    of the paper's Section 4.4 running-time argument.  {!Hkc.place} reuses
    this merge machinery, so its work is counted here too; progress logs
    go through {!Trg_obs.Log} at info/debug level. *)

type config = {
  cache : Trg_cache.Config.t;  (** target cache *)
  chunk_size : int;  (** bytes per TRG_place chunk; multiple of the line size *)
  q_capacity : int;  (** byte bound of the ordered set Q *)
  coverage : float;  (** dynamic coverage defining popularity *)
  min_refs : int;  (** minimum dynamic references for popularity *)
}

val default_config : ?cache:Trg_cache.Config.t -> unit -> config
(** 8 KB direct-mapped cache, 256-byte chunks, Q bound of twice the cache
    size, 99% coverage — the paper's operating point. *)

(** Everything extracted from one training trace.  Building this once and
    perturbing the graphs per experiment is how the Figure 5 population of
    placements is generated. *)
type profile = {
  config : config;
  tstats : Trg_trace.Tstats.t;
  popularity : Trg_profile.Popularity.t;
  chunks : Trg_program.Chunk.t;
  select : Trg_profile.Trg.built;  (** TRG_select *)
  place : Trg_profile.Trg.built;  (** TRG_place *)
}

val profile : config -> Trg_program.Program.t -> Trg_trace.Trace.t -> profile

val place_nodes :
  ?decisions:Trg_obs.Journal.decision array ->
  config ->
  Trg_program.Program.t ->
  select:Trg_profile.Graph.t ->
  model:Cost.model ->
  Node.t list
(** The merging phase alone: returns the final nodes with their
    cache-relative alignments.  Exposed for tests and ablations.
    [decisions] switches the merge driver into forced-choice replay
    ({!Merge_driver.replay}) instead of the greedy search. *)

val place_with :
  ?affinity:(int -> int -> float) ->
  ?algo:string ->
  ?decisions:Trg_obs.Journal.decision array ->
  config ->
  Trg_program.Program.t ->
  select:Trg_profile.Graph.t ->
  model:Cost.model ->
  Trg_program.Layout.t
(** Merging plus linearisation, with explicit graphs — the entry point used
    when the caller perturbs the profile graphs.  Procedures absent from
    [select] (unpopular, or popular but edge-less) become gap filler.

    [algo] (default ["gbsc"]) is the label offered to the decision
    journal's {!Trg_obs.Journal.begin_run} handshake — {!Hkc.place} and
    {!Gbsc_sa.place} pass their own so an armed journal captures exactly
    the requested algorithm.  [decisions] replays a recorded sequence in
    forced-choice mode. *)

val place :
  ?decisions:Trg_obs.Journal.decision array ->
  Trg_program.Program.t ->
  profile ->
  Trg_program.Layout.t
(** [place program p] runs {!place_with} on the unperturbed profile. *)

val place_paged : Trg_program.Program.t -> profile -> Trg_program.Layout.t
(** Like {!place}, but linearisation breaks gap ties by TRG_select
    affinity with the previously placed procedure, clustering
    temporally-related code onto the same pages (Section 4.3's paging
    note).  Cache-relative alignments are identical to {!place}. *)

val run : config -> Trg_program.Program.t -> Trg_trace.Trace.t -> Trg_program.Layout.t
(** One-call convenience: {!profile} then {!place}. *)
