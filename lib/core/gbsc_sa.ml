module Program = Trg_program.Program
module Chunk = Trg_program.Chunk
module Tstats = Trg_trace.Tstats
module Trg = Trg_profile.Trg
module Pair_db = Trg_profile.Pair_db
module Popularity = Trg_profile.Popularity

type profile = {
  config : Gbsc.config;
  popularity : Popularity.t;
  chunks : Chunk.t;
  select : Trg.built;
  pairs : Pair_db.built;
}

let profile ?max_between (config : Gbsc.config) program trace =
  let tstats = Tstats.compute ~n_procs:(Program.n_procs program) trace in
  let popularity =
    Popularity.select ~coverage:config.coverage ~min_refs:config.min_refs program
      tstats
  in
  let keep = Popularity.keep popularity in
  let chunks = Chunk.make ~chunk_size:config.chunk_size program in
  let select =
    Trg.build_select ~keep ~capacity_bytes:config.q_capacity program trace
  in
  let pairs =
    Pair_db.build_place ~keep ~capacity_bytes:config.q_capacity ?max_between chunks
      trace
  in
  { config; popularity; chunks; select; pairs }

let place ?decisions program (p : profile) =
  Gbsc.place_with ~algo:"gbsc-sa" ?decisions p.config program
    ~select:p.select.Trg.graph
    ~model:(Cost.Sa_pairs { chunks = p.chunks; db = p.pairs.Pair_db.db })

let run ?max_between config program trace =
  place program (profile ?max_between config program trace)

module Tuple_db = Trg_profile.Tuple_db
module Config = Trg_cache.Config

type tuple_profile = {
  tconfig : Gbsc.config;
  tpopularity : Popularity.t;
  tchunks : Chunk.t;
  tselect : Trg.built;
  tplace : Trg.built;
  tuples : Tuple_db.built;
}

let profile_tuples ?max_between ?arity (config : Gbsc.config) program trace =
  let arity =
    match arity with Some a -> a | None -> config.Gbsc.cache.Config.assoc
  in
  let tstats = Tstats.compute ~n_procs:(Program.n_procs program) trace in
  let popularity =
    Popularity.select ~coverage:config.coverage ~min_refs:config.min_refs program
      tstats
  in
  let keep = Popularity.keep popularity in
  let chunks = Chunk.make ~chunk_size:config.chunk_size program in
  let select =
    Trg.build_select ~keep ~capacity_bytes:config.q_capacity program trace
  in
  let tuples =
    Tuple_db.build_place ~keep ~arity ~capacity_bytes:config.q_capacity
      ?max_between chunks trace
  in
  let tplace = Trg.build_place ~keep ~capacity_bytes:config.q_capacity chunks trace in
  {
    tconfig = config;
    tpopularity = popularity;
    tchunks = chunks;
    tselect = select;
    tplace;
    tuples;
  }

(* The tuple database alone is sparse (high arity, capped enumeration);
   regularise it with a small share of the dense direct-mapped TRG cost so
   uninformed offsets still avoid gratuitous overlap. *)
let place_tuples ?(trg_share = 0.25) program (p : tuple_profile) =
  Gbsc.place_with ~algo:"gbsc-sa" p.tconfig program ~select:p.tselect.Trg.graph
    ~model:
      (Cost.Blend
         [
           (Cost.Sa_tuples { chunks = p.tchunks; db = p.tuples.Tuple_db.db }, 1.0);
           (Cost.Trg_chunks { chunks = p.tchunks; trg = p.tplace.Trg.graph }, trg_share);
         ])

let run_tuples ?max_between ?arity config program trace =
  place_tuples program (profile_tuples ?max_between ?arity config program trace)
