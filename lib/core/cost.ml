module Program = Trg_program.Program
module Chunk = Trg_program.Chunk
module Graph = Trg_profile.Graph
module Pair_db = Trg_profile.Pair_db

module Tuple_db = Trg_profile.Tuple_db

type model =
  | Trg_chunks of { chunks : Chunk.t; trg : Graph.t }
  | Wcg_procs of { wcg : Graph.t }
  | Sa_pairs of { chunks : Chunk.t; db : Pair_db.t }
  | Sa_tuples of { chunks : Chunk.t; db : Tuple_db.t }
  | Blend of (model * float) list

let iter_lines ~line_size ~n_sets ~start_set ~bytes f =
  let lines = (bytes + line_size - 1) / line_size in
  let count = min lines n_sets in
  for j = 0 to count - 1 do
    f ((start_set + j) mod n_sets)
  done

(* Set index of the first line of chunk [c] when its owner starts at cache
   set [owner_set]. *)
let chunk_start_set chunks ~line_size ~n_sets ~owner_set c =
  let lines_per_chunk = Chunk.chunk_size chunks / line_size in
  (owner_set + (Chunk.index_in_proc chunks c * lines_per_chunk)) mod n_sets

let offsets_of_node node =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (p, off) -> Hashtbl.replace tbl p off) (Node.members node);
  tbl

let cost_trg_chunks chunks trg program ~line_size ~n_sets ~n1 ~n2 cost =
  ignore program;
  let in1 = offsets_of_node n1 in
  (* Visit each cross edge once, from the n2 side. *)
  List.iter
    (fun (p2, o2) ->
      let first2 = Chunk.first chunks p2 in
      for k2 = 0 to Chunk.n_chunks chunks p2 - 1 do
        let c2 = first2 + k2 in
        let s2 =
          chunk_start_set chunks ~line_size ~n_sets ~owner_set:o2 c2
        in
        List.iter
          (fun c1 ->
            let p1 = Chunk.owner chunks c1 in
            match Hashtbl.find_opt in1 p1 with
            | None -> ()
            | Some o1 ->
              let w = Graph.weight trg c1 c2 in
              let s1 =
                chunk_start_set chunks ~line_size ~n_sets ~owner_set:o1 c1
              in
              iter_lines ~line_size ~n_sets ~start_set:s1
                ~bytes:(Chunk.size_of chunks c1) (fun l1 ->
                  iter_lines ~line_size ~n_sets ~start_set:s2
                    ~bytes:(Chunk.size_of chunks c2) (fun l2 ->
                      let i = (l1 - l2 + n_sets) mod n_sets in
                      cost.(i) <- cost.(i) +. w)))
          (Graph.neighbors trg c2)
      done)
    (Node.members n2)

let cost_wcg_procs wcg program ~line_size ~n_sets ~n1 ~n2 cost =
  let in1 = offsets_of_node n1 in
  List.iter
    (fun (p2, o2) ->
      List.iter
        (fun p1 ->
          match Hashtbl.find_opt in1 p1 with
          | None -> ()
          | Some o1 ->
            let w = Graph.weight wcg p1 p2 in
            iter_lines ~line_size ~n_sets ~start_set:o1
              ~bytes:(Program.size program p1) (fun l1 ->
                iter_lines ~line_size ~n_sets ~start_set:o2
                  ~bytes:(Program.size program p2) (fun l2 ->
                    let i = (l1 - l2 + n_sets) mod n_sets in
                    cost.(i) <- cost.(i) +. w)))
        (Graph.neighbors wcg p2))
    (Node.members n2)

(* Set-associative pair cost: D(p, {r, s}) is charged at offset i only when
   p, r and s all map to the same cache set.  For each line triple
   (lp, lr, ls) of the three blocks, lines in n1 are fixed while lines in
   n2 shift by the candidate offset; the triple determines either a single
   chargeable offset or (when all three blocks sit in the same node) none
   that this merge can influence.  Beyond the paper's "p against all pairs
   of the other node", we also charge mixed pairs with one member in each
   node — the estimate is strictly more complete and reuses the same
   database. *)
let cost_sa_pairs chunks db program ~line_size ~n_sets ~n1 ~n2 cost =
  ignore program;
  let in1 = offsets_of_node n1 and in2 = offsets_of_node n2 in
  (* (set index, shifts?) of a chunk, or None if its owner is unplaced. *)
  let locate c =
    let p = Chunk.owner chunks c in
    match Hashtbl.find_opt in1 p with
    | Some o -> Some (chunk_start_set chunks ~line_size ~n_sets ~owner_set:o c, false)
    | None -> (
      match Hashtbl.find_opt in2 p with
      | Some o ->
        Some (chunk_start_set chunks ~line_size ~n_sets ~owner_set:o c, true)
      | None -> None)
  in
  let lines c start f =
    iter_lines ~line_size ~n_sets ~start_set:start ~bytes:(Chunk.size_of chunks c) f
  in
  let charge_chunk c =
    match locate c with
    | None -> ()
    | Some (sp, p_shifts) ->
      Pair_db.iter_p db c (fun r s w ->
          match (locate r, locate s) with
          | Some (sr, r_shifts), Some (ss, s_shifts) ->
            if not (p_shifts && r_shifts && s_shifts)
               && (p_shifts || r_shifts || s_shifts)
            then
              (* At least one block on each side: the triple constrains a
                 single offset per line combination.  Same-set equality
                 within one side must already hold; the cross-side pair
                 fixes i. *)
              lines c sp (fun lp ->
                  lines r sr (fun lr ->
                      lines s ss (fun ls ->
                          (* Shifted lines get +i; require all three equal. *)
                          let fixed = ref [] and moving = ref [] in
                          let put shifts l =
                            if shifts then moving := l :: !moving
                            else fixed := l :: !fixed
                          in
                          put p_shifts lp;
                          put r_shifts lr;
                          put s_shifts ls;
                          match (!fixed, !moving) with
                          | f :: frest, m :: mrest
                            when List.for_all (fun l -> l = f) frest
                                 && List.for_all (fun l -> l = m) mrest ->
                            let i = (f - m + n_sets) mod n_sets in
                            cost.(i) <- cost.(i) +. w
                          | _ -> ())))
          | None, _ | _, None -> ())
  in
  let charge_node node =
    List.iter
      (fun (p, _) ->
        let first = Chunk.first chunks p in
        for k = 0 to Chunk.n_chunks chunks p - 1 do
          charge_chunk (first + k)
        done)
      (Node.members node)
  in
  (* Visit p on both sides; pairs are then located wherever they live.  A
     triple entirely within one node contributes nothing (guarded above). *)
  charge_node n1;
  charge_node n2

(* Generalised tuple cost: D(p, S) is charged at offset i when p and every
   member of S map to one set.  Members on the fixed side must already
   share a set, likewise the moving side; each (fixed set, moving set)
   combination determines one offset.  Intersecting the members'
   set-lists keeps this linear in chunk lines rather than exponential in
   the tuple size. *)
let cost_sa_tuples chunks db program ~line_size ~n_sets ~n1 ~n2 cost =
  ignore program;
  let in1 = offsets_of_node n1 and in2 = offsets_of_node n2 in
  let locate c =
    let p = Chunk.owner chunks c in
    match Hashtbl.find_opt in1 p with
    | Some o -> Some (chunk_start_set chunks ~line_size ~n_sets ~owner_set:o c, false)
    | None -> (
      match Hashtbl.find_opt in2 p with
      | Some o ->
        Some (chunk_start_set chunks ~line_size ~n_sets ~owner_set:o c, true)
      | None -> None)
  in
  let set_list c start =
    let acc = ref [] in
    iter_lines ~line_size ~n_sets ~start_set:start
      ~bytes:(Chunk.size_of chunks c) (fun s -> acc := s :: !acc);
    List.sort_uniq compare !acc
  in
  let intersect a b = List.filter (fun x -> List.mem x b) a in
  let charge_chunk c =
    match locate c with
    | None -> ()
    | Some (sp, p_shifts) ->
      Tuple_db.iter_p db c (fun ids w ->
          let rec gather fixed moving = function
            | [] -> Some (fixed, moving)
            | (m, lines, shifts) :: rest ->
              ignore m;
              if shifts then gather fixed (lines :: moving) rest
              else gather (lines :: fixed) moving rest
          in
          let members =
            List.filter_map
              (fun m ->
                match locate m with
                | Some (s, shifts) -> Some (m, set_list m s, shifts)
                | None -> None)
              ids
          in
          if List.length members = List.length ids then begin
            let p_lines = set_list c sp in
            let start =
              if p_shifts then ([], [ p_lines ]) else ([ p_lines ], [])
            in
            match gather (fst start) (snd start) members with
            | Some (fixed, moving) when fixed <> [] && moving <> [] ->
              let inter = function
                | [] -> []
                | first :: rest -> List.fold_left intersect first rest
              in
              let fi = inter fixed and mi = inter moving in
              List.iter
                (fun lf ->
                  List.iter
                    (fun lm ->
                      let i = (lf - lm + n_sets) mod n_sets in
                      cost.(i) <- cost.(i) +. w)
                    mi)
                fi
            | Some _ | None -> ()
          end)
  in
  let charge_node node =
    List.iter
      (fun (p, _) ->
        let first = Chunk.first chunks p in
        for k = 0 to Chunk.n_chunks chunks p - 1 do
          charge_chunk (first + k)
        done)
      (Node.members node)
  in
  charge_node n1;
  charge_node n2

let rec offsets_cost model program ~line_size ~n_sets ~n1 ~n2 =
  let cost = Array.make n_sets 0. in
  (match model with
  | Trg_chunks { chunks; trg } ->
    cost_trg_chunks chunks trg program ~line_size ~n_sets ~n1 ~n2 cost
  | Wcg_procs { wcg } -> cost_wcg_procs wcg program ~line_size ~n_sets ~n1 ~n2 cost
  | Sa_pairs { chunks; db } ->
    cost_sa_pairs chunks db program ~line_size ~n_sets ~n1 ~n2 cost
  | Sa_tuples { chunks; db } ->
    cost_sa_tuples chunks db program ~line_size ~n_sets ~n1 ~n2 cost
  | Blend parts ->
    (* Sub-model magnitudes are incommensurable (tuple counts vs edge
       weights), so each sub-cost is normalised to unit mass before
       weighting: the blend weights express relative influence. *)
    List.iter
      (fun (sub, weight) ->
        let sub_cost = offsets_cost sub program ~line_size ~n_sets ~n1 ~n2 in
        let total = Array.fold_left ( +. ) 0. sub_cost in
        if total > 0. then
          Array.iteri
            (fun i c -> cost.(i) <- cost.(i) +. (weight *. c /. total))
            sub_cost)
      parts);
  cost

(* --- cost engines ----------------------------------------------------- *)

type engine_kind = Full | Incr

(* Process-global selection, set once at CLI parse time (before the
   evaluation pool forks, so workers inherit it).  Incr is the default:
   it falls back to Full by itself whenever a model is out of scope. *)
let engine_ref = ref Incr

let set_engine k = engine_ref := k

let engine () = !engine_ref

let engine_name = function Full -> "full" | Incr -> "incr"

let engine_of_name = function
  | "full" -> Full
  | "incr" -> Incr
  | s -> invalid_arg (Printf.sprintf "Cost.engine_of_name: %S" s)

let m_fallbacks = Trg_obs.Metrics.counter "cost/incr/fallbacks"

(* Hot-path profile: whole-seed wall time, lazily registered so [prof/*]
   stays out of the registry unless [--profile] observed something. *)
let h_seed_us =
  lazy
    (Trg_obs.Metrics.histogram ~limits:Trg_obs.Prof.us_limits
       "prof/incr/seed_us")

(* Seeding charges every inter-procedure profile edge at the
   all-singletons starting position (every node at offset 0, exactly
   [Merge_driver]'s initial state).  One edge between a block of [l1]
   lines starting at set [s1] and a block of [l2] lines at [s2]
   contributes, over the offsets, the circular cross-correlation of the
   two line intervals — a trapezoid whose {e second difference} is just
   four spikes.  Accumulating spikes per procedure pair and integrating
   twice makes seeding O(1) per edge plus O(n_sets) per pair, instead of
   O(l1 x l2) per edge.  Exactness is preserved: every integrated value
   is the integral per-cell total the full evaluator would sum to. *)
(* Per-pair spike accumulator.  Spikes live at base + {0, l1, l2,
   l1+l2} with base < n_sets and l1, l2 <= n_sets, so a 3C+1 linear
   buffer holds them; the double prefix sum reconstructs the trapezoid,
   folded mod C as it streams.  [lo]/[hi] track the spike support so
   sparse pairs (few edges, narrow trapezoids) pay O(support), not
   O(3C), to integrate. *)
type spikes = {
  p1 : int;
  p2 : int;
  dd : float array;
  mutable lo : int;
  mutable hi : int;
}

let integrate_spikes t ~n_sets sp =
  Trg_cache.Incr.charge_block t ~p1:sp.p1 ~p2:sp.p2 (fun add ->
      let run1 = ref 0. and run2 = ref 0. in
      for i = sp.lo to sp.hi do
        run1 := !run1 +. sp.dd.(i);
        run2 := !run2 +. !run1;
        if !run2 <> 0. then add (i mod n_sets) !run2
      done)

(* Seed an incremental engine for a model, or [None] when the model is
   out of scope.  Only the two group-decomposable models qualify: the
   set-associative databases charge triples/tuples (not pairwise-linear
   in the group split) and Blend renormalises sub-costs per query
   (nonlinear), so those fall back to the full evaluator — as does any
   non-integral profile weight (perturbed graphs), which would void the
   bit-identity guarantee. *)
let seed_incr_untimed model program ~line_size ~n_sets =
  let fallback () =
    Trg_obs.Metrics.incr m_fallbacks;
    None
  in
  let line_count bytes = min ((bytes + line_size - 1) / line_size) n_sets in
  (* Pairs are keyed by a packed int (not a tuple) and the four spikes
     of each edge land directly in the pair's buffer: the per-edge cost
     is one int-keyed lookup and four array writes, with no allocation.
     A one-entry memo skips even the lookup on runs of edges between the
     same two procedures, the common case when walking adjacency. *)
  let by_pair : (int, spikes) Hashtbl.t = Hashtbl.create 1024 in
  let integral = ref true in
  let last_key = ref min_int in
  let last_spikes = ref None in
  let add_edge p1 s1 l1 p2 s2 l2 w =
    if p1 <> p2 then begin
      if not (Float.is_integer w) then integral := false;
      let a, sa, la, sb, lb =
        if p1 <= p2 then (p1, s1, l1, s2, l2) else (p2, s2, l2, s1, l1)
      in
      let key = (a lsl 31) lor (p1 lxor p2 lxor a) in
      let sp =
        match !last_spikes with
        | Some sp when !last_key = key -> sp
        | _ ->
          let sp =
            match Hashtbl.find_opt by_pair key with
            | Some sp -> sp
            | None ->
              let sp =
                {
                  p1 = a;
                  p2 = p1 lxor p2 lxor a;
                  dd = Array.make ((3 * n_sets) + 1) 0.;
                  lo = max_int;
                  hi = 0;
                }
              in
              Hashtbl.replace by_pair key sp;
              sp
          in
          last_key := key;
          last_spikes := Some sp;
          sp
      in
      let base = (sa - sb - (lb - 1) + (2 * n_sets)) mod n_sets in
      let dd = sp.dd in
      dd.(base) <- dd.(base) +. w;
      dd.(base + la) <- dd.(base + la) -. w;
      dd.(base + lb) <- dd.(base + lb) -. w;
      dd.(base + la + lb) <- dd.(base + la + lb) +. w;
      if base < sp.lo then sp.lo <- base;
      if base + la + lb > sp.hi then sp.hi <- base + la + lb
    end
  in
  let finish () =
    if not !integral then fallback ()
    else begin
      let t = Trg_cache.Incr.create ~n_sets in
      Hashtbl.iter (fun _ sp -> integrate_spikes t ~n_sets sp) by_pair;
      Trg_cache.Incr.freeze t;
      if Trg_cache.Incr.exact t then Some t else fallback ()
    end
  in
  match model with
  | Trg_chunks { chunks; trg } ->
    Graph.iter_edges_unordered
      (fun c1 c2 w ->
        (* Same-owner chunk edges are intra-node from the first merge to
           the last; the full evaluator never charges them either. *)
        let p1 = Chunk.owner chunks c1 and p2 = Chunk.owner chunks c2 in
        add_edge p1
          (chunk_start_set chunks ~line_size ~n_sets ~owner_set:0 c1)
          (line_count (Chunk.size_of chunks c1))
          p2
          (chunk_start_set chunks ~line_size ~n_sets ~owner_set:0 c2)
          (line_count (Chunk.size_of chunks c2))
          w)
      trg;
    finish ()
  | Wcg_procs { wcg } ->
    Graph.iter_edges_unordered
      (fun p1 p2 w ->
        add_edge p1 0
          (line_count (Program.size program p1))
          p2 0
          (line_count (Program.size program p2))
          w)
      wcg;
    finish ()
  | Sa_pairs _ | Sa_tuples _ | Blend _ -> fallback ()

let seed_incr model program ~line_size ~n_sets =
  if not (Trg_obs.Prof.enabled ()) then
    seed_incr_untimed model program ~line_size ~n_sets
  else begin
    let t0 = Trg_util.Clock.monotonic () in
    let r = seed_incr_untimed model program ~line_size ~n_sets in
    Trg_obs.Metrics.observe (Lazy.force h_seed_us)
      (1e6 *. (Trg_util.Clock.monotonic () -. t0));
    r
  end

let best_offset cost =
  let best = ref 0 in
  for i = 1 to Array.length cost - 1 do
    if cost.(i) < cost.(!best) then best := i
  done;
  !best

let node_occupancy program ~line_size ~n_sets node =
  let occ = Array.make n_sets false in
  List.iter
    (fun (p, off) ->
      iter_lines ~line_size ~n_sets ~start_set:off ~bytes:(Program.size program p)
        (fun s -> occ.(s) <- true))
    (Node.members node);
  occ

let best_offset_packed cost ~n1 ~n2 =
  let n_sets = Array.length cost in
  let overlap i =
    let count = ref 0 in
    for s = 0 to n_sets - 1 do
      if n2.(s) && n1.((s + i) mod n_sets) then incr count
    done;
    !count
  in
  let best = ref 0 and best_overlap = ref (overlap 0) in
  for i = 1 to n_sets - 1 do
    if cost.(i) < cost.(!best) then begin
      best := i;
      best_overlap := overlap i
    end
    else if cost.(i) = cost.(!best) then begin
      let o = overlap i in
      if o < !best_overlap then begin
        best := i;
        best_overlap := o
      end
    end
  done;
  !best
