module Graph = Trg_profile.Graph
module Heap = Trg_util.Heap
module Journal = Trg_obs.Journal

type 'node group = {
  repr : int; (* original node id acting as group identity *)
  mutable payload : 'node;
  mutable count : int; (* original nodes absorbed *)
  adj : (int, float) Hashtbl.t; (* neighbor repr -> combined weight *)
}

(* Telemetry: heap churn of the greedy merge loop, flushed once per run. *)
let m_runs = Trg_obs.Metrics.counter "merge/runs"
let m_pops = Trg_obs.Metrics.counter "merge/heap_pops"
let m_stale = Trg_obs.Metrics.counter "merge/stale_pops"
let m_merges = Trg_obs.Metrics.counter "merge/merges"

(* Lazy, like the prof/* histograms: replays only happen on journal
   verification paths, and an unjournalled run's manifest must not grow a
   zero-valued merge/replays counter. *)
let m_replays = lazy (Trg_obs.Metrics.counter "merge/replays")

(* Hot-path profile: per-merge wall time.  Lazy so the [prof/*] histogram
   only exists in the registry (and hence in manifests) when [--profile]
   actually observed something. *)
let h_merge_us =
  lazy
    (Trg_obs.Metrics.histogram ~limits:Trg_obs.Prof.us_limits
       "prof/merge/merge_us")

(* The working state shared by the greedy run and the forced-choice
   replay: live groups keyed by representative, plus the union-find that
   maps original node ids to their current representative. *)
type 'node state = {
  groups : (int, 'node group) Hashtbl.t;
  parent : (int, int) Hashtbl.t;
}

let rec find st id =
  let p = Hashtbl.find st.parent id in
  if p = id then id
  else begin
    let root = find st p in
    Hashtbl.replace st.parent id root;
    root
  end

let init_state ~graph ~init ~on_edge =
  let st = { groups = Hashtbl.create 64; parent = Hashtbl.create 64 } in
  List.iter
    (fun id ->
      Hashtbl.replace st.parent id id;
      Hashtbl.replace st.groups id
        { repr = id; payload = init id; count = 1; adj = Hashtbl.create 8 })
    (Graph.nodes graph);
  Graph.iter_edges
    (fun u v w ->
      let gu = Hashtbl.find st.groups u and gv = Hashtbl.find st.groups v in
      Hashtbl.replace gu.adj v w;
      Hashtbl.replace gv.adj u w;
      on_edge u v w)
    graph;
  st

(* Absorb [gv] into [gu] (or vice versa: the larger group stays fixed and
   becomes the merge callback's n1).  [on_combined] sees each re-pointed
   edge with its combined weight — the greedy run pushes it back on the
   heap, the replay has no heap to maintain. *)
let apply_merge st ~merge ~on_combined gu gv =
  let big, small =
    if gu.count > gv.count || (gu.count = gv.count && gu.repr < gv.repr) then
      (gu, gv)
    else (gv, gu)
  in
  big.payload <- merge big.payload small.payload;
  big.count <- big.count + small.count;
  Hashtbl.replace st.parent small.repr big.repr;
  Hashtbl.remove st.groups small.repr;
  Hashtbl.remove big.adj small.repr;
  Hashtbl.remove small.adj big.repr;
  (* Re-point the absorbed group's edges at the survivor. *)
  Hashtbl.iter
    (fun n wn ->
      let rn = find st n in
      if rn <> big.repr then begin
        let gn = Hashtbl.find st.groups rn in
        let combined =
          match Hashtbl.find_opt big.adj rn with
          | Some existing -> existing +. wn
          | None -> wn
        in
        Hashtbl.replace big.adj rn combined;
        Hashtbl.replace gn.adj big.repr combined;
        Hashtbl.remove gn.adj small.repr;
        on_combined big.repr rn combined
      end)
    small.adj;
  big

(* Groups in output order: decreasing size, ties by ascending repr. *)
let finalize st =
  let remaining = Hashtbl.fold (fun _ g acc -> g :: acc) st.groups [] in
  let sorted =
    List.sort
      (fun a b ->
        match compare b.count a.count with 0 -> compare a.repr b.repr | c -> c)
      remaining
  in
  List.map (fun g -> g.payload) sorted

(* Journal hook: one record per decision, taken BEFORE the merge mutates
   the state so sizes and adjacency are the ones the decision saw (and so
   the algorithm's merge callback can annotate this record with its offset
   choice).  The runner-up is the entry the heap would surface next if the
   winner did not exist: the heaviest non-stale entry over a different
   group pair, ties broken by insertion ordinal exactly like [pop_max].
   The scan is non-destructive ([Heap.iter_entries]) — pop/re-push would
   renumber entries and perturb later tie-breaking. *)
let record_decision st heap ~ru ~rv ~w ~gu ~gv =
  let best = ref None in
  Heap.iter_entries heap (fun prio seq (u, v) ->
      let u' = find st u and v' = find st v in
      if
        u' <> v'
        && (not ((u' = ru && v' = rv) || (u' = rv && v' = ru)))
        &&
        match Hashtbl.find_opt (Hashtbl.find st.groups u').adj v' with
        | Some current -> current = prio
        | None -> false
      then
        match !best with
        | Some (bp, bs, _, _) when bp > prio || (bp = prio && bs < seq) -> ()
        | _ -> best := Some (prio, seq, u', v'));
  let runner_up =
    Option.map
      (fun (prio, _, u', v') ->
        { Journal.r_u = min u' v'; r_v = max u' v'; r_weight = prio })
      !best
  in
  let size_u, size_v = if ru < rv then (gu.count, gv.count) else (gv.count, gu.count) in
  Journal.record ~u:(min ru rv) ~v:(max ru rv) ~weight:w ~size_u ~size_v
    ?runner_up ()

let run ~graph ~init ~merge =
  let pops = ref 0 and stale_pops = ref 0 and merges = ref 0 in
  let heap = Heap.create () in
  let st = init_state ~graph ~init ~on_edge:(fun u v w -> Heap.push heap w (u, v)) in
  let rec loop () =
    match Heap.pop_max heap with
    | None -> ()
    | Some (w, (u, v)) ->
      incr pops;
      let ru = find st u and rv = find st v in
      let stale =
        ru = rv
        ||
        let gu = Hashtbl.find st.groups ru in
        match Hashtbl.find_opt gu.adj rv with
        | Some current -> current <> w
        | None -> true
      in
      if stale then incr stale_pops
      else begin
        incr merges;
        let gu = Hashtbl.find st.groups ru and gv = Hashtbl.find st.groups rv in
        if Journal.recording () then record_decision st heap ~ru ~rv ~w ~gu ~gv;
        let t0 =
          if Trg_obs.Prof.enabled () then Trg_util.Clock.monotonic () else 0.
        in
        ignore
          (apply_merge st ~merge
             ~on_combined:(fun a b combined -> Heap.push heap combined (a, b))
             gu gv);
        if Trg_obs.Prof.enabled () then
          Trg_obs.Metrics.observe (Lazy.force h_merge_us)
            (1e6 *. (Trg_util.Clock.monotonic () -. t0))
      end;
      loop ()
  in
  loop ();
  Trg_obs.Metrics.incr m_runs;
  Trg_obs.Metrics.add m_pops !pops;
  Trg_obs.Metrics.add m_stale !stale_pops;
  Trg_obs.Metrics.add m_merges !merges;
  finalize st

let replay ~graph ~init ~merge ~decisions =
  Trg_obs.Metrics.incr (Lazy.force m_replays);
  let st = init_state ~graph ~init ~on_edge:(fun _ _ _ -> ()) in
  let fail step fmt =
    Printf.ksprintf
      (fun msg -> failwith (Printf.sprintf "replay: step %d: %s" step msg))
      fmt
  in
  Array.iter
    (fun (d : Journal.decision) ->
      let step = d.Journal.step in
      let group_of what id =
        match Hashtbl.find_opt st.groups id with
        | Some g -> g
        | None -> fail step "%s %d is not a live group" what id
      in
      let gu = group_of "group" d.Journal.d_u
      and gv = group_of "group" d.Journal.d_v in
      (match Hashtbl.find_opt gu.adj d.Journal.d_v with
      | Some w when w = d.Journal.weight -> ()
      | Some w ->
        fail step "edge (%d,%d) weighs %h, journal claims %h" d.Journal.d_u
          d.Journal.d_v w d.Journal.weight
      | None ->
        fail step "no edge between groups %d and %d" d.Journal.d_u
          d.Journal.d_v);
      if gu.count <> d.Journal.size_u || gv.count <> d.Journal.size_v then
        fail step "group sizes (%d,%d) do not match journal (%d,%d)" gu.count
          gv.count d.Journal.size_u d.Journal.size_v;
      (match d.Journal.runner_up with
      | None -> ()
      | Some r ->
        let ga = group_of "runner-up group" r.Journal.r_u in
        ignore (group_of "runner-up group" r.Journal.r_v);
        (match Hashtbl.find_opt ga.adj r.Journal.r_v with
        | Some w when w = r.Journal.r_weight -> ()
        | Some w ->
          fail step "runner-up edge (%d,%d) weighs %h, journal claims %h"
            r.Journal.r_u r.Journal.r_v w r.Journal.r_weight
        | None ->
          fail step "no runner-up edge between groups %d and %d" r.Journal.r_u
            r.Journal.r_v);
        if d.Journal.weight < r.Journal.r_weight then
          fail step "journal margin is negative (%h < %h)" d.Journal.weight
            r.Journal.r_weight);
      (* Re-record the verified decision so a verification pass rebuilds a
         journal in parallel: the merge callback annotates it with the
         engine-derived offset, which the verifier then compares
         bit-exactly against the original claim. *)
      if Journal.recording () then
        Journal.record ~u:d.Journal.d_u ~v:d.Journal.d_v
          ~weight:d.Journal.weight ~size_u:d.Journal.size_u
          ~size_v:d.Journal.size_v ?runner_up:d.Journal.runner_up ();
      ignore (apply_merge st ~merge ~on_combined:(fun _ _ _ -> ()) gu gv))
    decisions;
  (* A complete greedy run drains every mergeable edge, so a journal that
     leaves adjacency behind was cut short (or belongs to another graph). *)
  Hashtbl.iter
    (fun repr g ->
      if Hashtbl.length g.adj <> 0 then
        failwith
          (Printf.sprintf
             "replay: journal ended after %d steps but group %d still has %d \
              mergeable edge(s)"
             (Array.length decisions) repr (Hashtbl.length g.adj)))
    st.groups;
  finalize st
