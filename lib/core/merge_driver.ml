module Graph = Trg_profile.Graph
module Heap = Trg_util.Heap

type 'node group = {
  repr : int; (* original node id acting as group identity *)
  mutable payload : 'node;
  mutable count : int; (* original nodes absorbed *)
  adj : (int, float) Hashtbl.t; (* neighbor repr -> combined weight *)
}

(* Telemetry: heap churn of the greedy merge loop, flushed once per run. *)
let m_runs = Trg_obs.Metrics.counter "merge/runs"
let m_pops = Trg_obs.Metrics.counter "merge/heap_pops"
let m_stale = Trg_obs.Metrics.counter "merge/stale_pops"
let m_merges = Trg_obs.Metrics.counter "merge/merges"

(* Hot-path profile: per-merge wall time.  Lazy so the [prof/*] histogram
   only exists in the registry (and hence in manifests) when [--profile]
   actually observed something. *)
let h_merge_us =
  lazy
    (Trg_obs.Metrics.histogram ~limits:Trg_obs.Prof.us_limits
       "prof/merge/merge_us")

let run ~graph ~init ~merge =
  let pops = ref 0 and stale_pops = ref 0 and merges = ref 0 in
  let groups : (int, 'a group) Hashtbl.t = Hashtbl.create 64 in
  let parent : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec find id =
    let p = Hashtbl.find parent id in
    if p = id then id
    else begin
      let root = find p in
      Hashtbl.replace parent id root;
      root
    end
  in
  List.iter
    (fun id ->
      Hashtbl.replace parent id id;
      Hashtbl.replace groups id
        { repr = id; payload = init id; count = 1; adj = Hashtbl.create 8 })
    (Graph.nodes graph);
  let heap = Heap.create () in
  Graph.iter_edges
    (fun u v w ->
      let gu = Hashtbl.find groups u and gv = Hashtbl.find groups v in
      Hashtbl.replace gu.adj v w;
      Hashtbl.replace gv.adj u w;
      Heap.push heap w (u, v))
    graph;
  let rec loop () =
    match Heap.pop_max heap with
    | None -> ()
    | Some (w, (u, v)) ->
      incr pops;
      let ru = find u and rv = find v in
      let stale =
        ru = rv
        ||
        let gu = Hashtbl.find groups ru in
        match Hashtbl.find_opt gu.adj rv with
        | Some current -> current <> w
        | None -> true
      in
      if stale then incr stale_pops
      else begin
        incr merges;
        let t0 =
          if Trg_obs.Prof.enabled () then Trg_util.Clock.monotonic () else 0.
        in
        let gu = Hashtbl.find groups ru and gv = Hashtbl.find groups rv in
        (* Keep the larger group fixed; it becomes n1. *)
        let big, small =
          if
            gu.count > gv.count
            || (gu.count = gv.count && gu.repr < gv.repr)
          then (gu, gv)
          else (gv, gu)
        in
        big.payload <- merge big.payload small.payload;
        big.count <- big.count + small.count;
        Hashtbl.replace parent small.repr big.repr;
        Hashtbl.remove groups small.repr;
        Hashtbl.remove big.adj small.repr;
        Hashtbl.remove small.adj big.repr;
        (* Re-point the absorbed group's edges at the survivor. *)
        Hashtbl.iter
          (fun n wn ->
            let rn = find n in
            if rn <> big.repr then begin
              let gn = Hashtbl.find groups rn in
              let combined =
                match Hashtbl.find_opt big.adj rn with
                | Some existing -> existing +. wn
                | None -> wn
              in
              Hashtbl.replace big.adj rn combined;
              Hashtbl.replace gn.adj big.repr combined;
              Hashtbl.remove gn.adj small.repr;
              Heap.push heap combined (big.repr, rn)
            end)
          small.adj;
        if Trg_obs.Prof.enabled () then
          Trg_obs.Metrics.observe (Lazy.force h_merge_us)
            (1e6 *. (Trg_util.Clock.monotonic () -. t0))
      end;
      loop ()
  in
  loop ();
  Trg_obs.Metrics.incr m_runs;
  Trg_obs.Metrics.add m_pops !pops;
  Trg_obs.Metrics.add m_stale !stale_pops;
  Trg_obs.Metrics.add m_merges !merges;
  let remaining = Hashtbl.fold (fun _ g acc -> g :: acc) groups [] in
  let sorted =
    List.sort
      (fun a b ->
        match compare b.count a.count with 0 -> compare a.repr b.repr | c -> c)
      remaining
  in
  List.map (fun g -> g.payload) sorted
