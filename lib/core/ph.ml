module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Graph = Trg_profile.Graph

type chain = { cid : int; procs : int list }

(* Byte distance between the code of p and q in the given chain order:
   the sum of the sizes of the procedures strictly between them. *)
let distance program order p q =
  let rec skip_to_first = function
    | [] -> invalid_arg "Ph.distance: endpoints not in chain"
    | x :: rest ->
      if x = p then (q, rest) else if x = q then (p, rest) else skip_to_first rest
  in
  let other, rest = skip_to_first order in
  let rec accumulate acc = function
    | [] -> invalid_arg "Ph.distance: second endpoint not found"
    | x :: rest ->
      if x = other then acc else accumulate (acc + Program.size program x) rest
  in
  accumulate 0 rest

(* Heaviest original-graph edge with one endpoint in each chain; scan the
   smaller chain's neighbors.  Deterministic: strictly-greater replacement
   over a fixed iteration order. *)
let heaviest_cross_pair wcg chain_of a b =
  let small, other_cid =
    if List.length a.procs <= List.length b.procs then (a, b.cid) else (b, a.cid)
  in
  let best = ref None in
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          if Hashtbl.find chain_of q = other_cid then begin
            let w = Graph.weight wcg p q in
            match !best with
            | Some (bw, _, _) when bw >= w -> ()
            | Some _ | None -> best := Some (w, p, q)
          end)
        (Graph.neighbors wcg p))
    small.procs;
  match !best with
  | Some (_, p, q) -> Some (p, q)
  | None -> None

let merge_chains program wcg chain_of a b =
  let combined =
    match heaviest_cross_pair wcg chain_of a b with
    | None -> a.procs @ b.procs
    | Some (p, q) ->
      (* The four Pettis-Hansen combinations; first minimum wins. *)
      let variants =
        [
          a.procs @ b.procs;
          a.procs @ List.rev b.procs;
          List.rev a.procs @ b.procs;
          List.rev a.procs @ List.rev b.procs;
        ]
      in
      let scored = List.map (fun v -> (distance program v p q, v)) variants in
      let best =
        List.fold_left
          (fun acc (d, v) ->
            match acc with
            | Some (bd, _) when bd <= d -> acc
            | Some _ | None -> Some (d, v))
          None scored
      in
      (match best with Some (_, v) -> v | None -> assert false)
  in
  List.iter (fun p -> Hashtbl.replace chain_of p a.cid) b.procs;
  { cid = a.cid; procs = combined }

let m_placements = Trg_obs.Metrics.counter "ph/placements"
let m_chain_merges = Trg_obs.Metrics.counter "ph/chain_merges"

let order ?decisions ~wcg program =
  let chain_of = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace chain_of p p) (Graph.nodes wcg);
  let chain_merges = ref 0 in
  let init p = { cid = p; procs = [ p ] } in
  let merge a b =
    incr chain_merges;
    merge_chains program wcg chain_of a b
  in
  let chains =
    match decisions with
    | None -> Merge_driver.run ~graph:wcg ~init ~merge
    | Some decisions -> Merge_driver.replay ~graph:wcg ~init ~merge ~decisions
  in
  Trg_obs.Metrics.add m_chain_merges !chain_merges;
  Trg_obs.Log.info (fun m ->
      m "PH: %d chains from %d procedures (%d chain merges)" (List.length chains)
        (List.length (Graph.nodes wcg))
        !chain_merges);
  let in_chain = Array.make (Program.n_procs program) false in
  let placed =
    List.concat_map
      (fun c ->
        List.iter (fun p -> in_chain.(p) <- true) c.procs;
        c.procs)
      chains
  in
  let rest = ref [] in
  for p = Program.n_procs program - 1 downto 0 do
    if not in_chain.(p) then rest := p :: !rest
  done;
  Array.of_list (placed @ !rest)

let place ?(align = 4) ?decisions ~wcg program =
  Trg_obs.Metrics.incr m_placements;
  (* PH is cache-independent, so its journal meta records no operating
     point (all-zero cache fields). *)
  let journaling =
    Trg_obs.Journal.begin_run ~algo:"ph"
      ~engine:(Cost.engine_name (Cost.engine ()))
      ~cache:(0, 0, 0)
  in
  match Layout.contiguous ~align program (order ?decisions ~wcg program) with
  | layout ->
    if journaling then
      Trg_obs.Journal.finish ~layout_crc:(Layout.digest layout);
    layout
  | exception e ->
    if journaling then Trg_obs.Journal.abort ();
    raise e
