(** The Hashemi/Kaeli/Calder cache-line-coloring baseline (Section 5).

    HKC extends PH with knowledge of procedure sizes and the cache
    geometry: while merging the heaviest edges of the weighted call graph,
    it records the cache lines ("colors") each procedure occupies and
    chooses relative alignments that avoid overlap between a procedure and
    its call-graph neighbours — preferring a conflict-free offset when one
    exists and the minimum weighted conflict otherwise.  Unlike GBSC it
    uses no temporal-ordering information: its conflict cost comes from WCG
    edge weights at whole-procedure granularity.

    Implementation note: we realise HKC on the same node/merge machinery as
    GBSC with the {!Cost.Wcg_procs} model, which reproduces the published
    algorithm's decisions (colour sets = occupied lines; zero-cost offsets
    are exactly the conflict-free colourings) in a uniform framework. *)

val place :
  ?decisions:Trg_obs.Journal.decision array ->
  Gbsc.config ->
  Trg_program.Program.t ->
  wcg:Trg_profile.Graph.t ->
  popularity:Trg_profile.Popularity.t ->
  Trg_program.Layout.t
(** [place config program ~wcg ~popularity] restricts [wcg] to popular
    procedures, merges with WCG-weighted colouring costs, and linearises.
    [config.chunk_size] is unused.  Offers itself to an armed decision
    journal as ["hkc"]; [decisions] replays a recorded sequence. *)
