module Program = Trg_program.Program
module Chunk = Trg_program.Chunk
module Layout = Trg_program.Layout
module Config = Trg_cache.Config
module Graph = Trg_profile.Graph
module Trg = Trg_profile.Trg
module Popularity = Trg_profile.Popularity
module Tstats = Trg_trace.Tstats

module Log = Trg_obs.Log
module Metrics = Trg_obs.Metrics

(* Telemetry: the paper's Section 4.4 cost drivers.  A "merge step" is one
   merge_nodes application; each evaluates a full cost array over the
   [n_sets] relative offsets of the two nodes (the candidate offsets). *)
let m_merge_steps = Metrics.counter "gbsc/merge_steps"
let m_cost_calls = Metrics.counter "gbsc/cost_calls"
let m_offset_candidates = Metrics.counter "gbsc/offset_candidates"
let m_placements = Metrics.counter "gbsc/placements"
let m_profiles = Metrics.counter "gbsc/profiles"

type config = {
  cache : Config.t;
  chunk_size : int;
  q_capacity : int;
  coverage : float;
  min_refs : int;
}

let default_config ?(cache = Config.default) () =
  {
    cache;
    chunk_size = Trg.default_chunk_size;
    q_capacity = 2 * cache.Config.size;
    coverage = 0.99;
    min_refs = 2;
  }

let validate config =
  if config.chunk_size mod config.cache.Config.line_size <> 0 then
    invalid_arg "Gbsc: chunk_size must be a multiple of the cache line size";
  if config.q_capacity <= 0 then invalid_arg "Gbsc: q_capacity must be positive"

type profile = {
  config : config;
  tstats : Tstats.t;
  popularity : Popularity.t;
  chunks : Chunk.t;
  select : Trg.built;
  place : Trg.built;
}

let profile config program trace =
  validate config;
  Metrics.incr m_profiles;
  let tstats = Tstats.compute ~n_procs:(Program.n_procs program) trace in
  let popularity =
    Popularity.select ~coverage:config.coverage ~min_refs:config.min_refs program
      tstats
  in
  let keep = Popularity.keep popularity in
  let chunks = Chunk.make ~chunk_size:config.chunk_size program in
  let select =
    Trg.build_select ~keep ~capacity_bytes:config.q_capacity program trace
  in
  let place = Trg.build_place ~keep ~capacity_bytes:config.q_capacity chunks trace in
  { config; tstats; popularity; chunks; select; place }

let place_nodes ?decisions config program ~select ~model =
  validate config;
  let n_sets = Config.n_sets config.cache in
  let line_size = config.cache.Config.line_size in
  (* The pair database and the procedure-granularity WCG are sparse, so
     their cost arrays tie at zero over whole regions; break those ties by
     set-occupancy packing.  For the WCG model this matches published
     cache-line coloring, which prefers unused colours; for the pair
     database it is one of the "other heuristics" Section 6 alludes to.
     The chunk-TRG model keeps the paper's plain first-minimum rule
     (Section 4.2, note 3), which its dense cost arrays make safe. *)
  let rec sparse_model = function
    | Cost.Sa_pairs _ | Cost.Sa_tuples _ | Cost.Wcg_procs _ -> true
    | Cost.Trg_chunks _ -> false
    | Cost.Blend parts -> List.exists (fun (m, _) -> sparse_model m) parts
  in
  let packed_ties = sparse_model model in
  let cost_calls = ref 0 and offset_candidates = ref 0 in
  (* Incremental engine, when selected and the model supports it.  Group
     identity: a node's head member's procedure id.  [Merge_driver] keeps
     the bigger group as [n1] and [Node.union] keeps [n1]'s members
     first, so the head is stable across merges and the engine's
     union-find tracks node groups exactly. *)
  let engine =
    match Cost.engine () with
    | Cost.Incr -> Cost.seed_incr model program ~line_size ~n_sets
    | Cost.Full -> None
  in
  let repr n = fst (List.hd (Node.members n)) in
  let merge n1 n2 =
    let cost =
      match engine with
      | Some eng -> Trg_cache.Incr.cost eng ~fixed:(repr n1) ~moving:(repr n2)
      | None ->
        let cost = Cost.offsets_cost model program ~line_size ~n_sets ~n1 ~n2 in
        incr cost_calls;
        offset_candidates := !offset_candidates + Array.length cost;
        cost
    in
    let shift =
      if packed_ties then
        Cost.best_offset_packed cost
          ~n1:(Cost.node_occupancy program ~line_size ~n_sets n1)
          ~n2:(Cost.node_occupancy program ~line_size ~n_sets n2)
      else Cost.best_offset cost
    in
    (match engine with
    | Some eng -> Trg_cache.Incr.apply_merge eng ~fixed:(repr n1) ~moving:(repr n2) ~shift
    | None -> ());
    if Trg_obs.Journal.recording () then
      Trg_obs.Journal.annotate ~shift ~cost:cost.(shift);
    Node.union ~shift ~modulo:n_sets n1 n2
  in
  let merges = ref 0 in
  let merge n1 n2 =
    incr merges;
    let merged = merge n1 n2 in
    Log.debug (fun m ->
        m "merge %d: %d + %d procedures" !merges (Node.size n1) (Node.size n2));
    merged
  in
  let nodes =
    match decisions with
    | None -> Merge_driver.run ~graph:select ~init:Node.singleton ~merge
    | Some decisions ->
      Merge_driver.replay ~graph:select ~init:Node.singleton ~merge ~decisions
  in
  Metrics.add m_merge_steps !merges;
  Metrics.add m_cost_calls !cost_calls;
  Metrics.add m_offset_candidates !offset_candidates;
  Log.info (fun m ->
      m "GBSC: merged %d popular procedures into %d nodes (%d merges)"
        (List.length (Graph.nodes select))
        (List.length nodes) !merges);
  nodes

let place_with ?affinity ?(algo = "gbsc") ?decisions config program ~select ~model =
  Metrics.incr m_placements;
  (* Decision provenance: the first placement matching the armed journal
     owns the capture; [Merge_driver] records each decision and the merge
     callback annotates the offset choice.  Unarmed runs pay one branch. *)
  let journaling =
    Trg_obs.Journal.begin_run ~algo
      ~engine:(Cost.engine_name (Cost.engine ()))
      ~cache:
        ( config.cache.Config.size,
          config.cache.Config.line_size,
          config.cache.Config.assoc )
  in
  match
    let nodes = place_nodes ?decisions config program ~select ~model in
    let placed = List.concat_map Node.members nodes in
    let in_nodes = Hashtbl.create 64 in
    List.iter (fun (p, _) -> Hashtbl.replace in_nodes p ()) placed;
    let filler = ref [] in
    for p = Program.n_procs program - 1 downto 0 do
      if not (Hashtbl.mem in_nodes p) then filler := p :: !filler
    done;
    Linearize.layout ?affinity program
      ~line_size:config.cache.Config.line_size
      ~n_sets:(Config.n_sets config.cache)
      ~placed
      ~filler:(Array.of_list !filler)
  with
  | layout ->
    if journaling then
      Trg_obs.Journal.finish ~layout_crc:(Layout.digest layout);
    layout
  | exception e ->
    if journaling then Trg_obs.Journal.abort ();
    raise e

let place ?decisions program (p : profile) =
  place_with ?decisions p.config program ~select:p.select.Trg.graph
    ~model:(Cost.Trg_chunks { chunks = p.chunks; trg = p.place.Trg.graph })

let place_paged program (p : profile) =
  let affinity = Graph.weight p.select.Trg.graph in
  place_with ~affinity p.config program ~select:p.select.Trg.graph
    ~model:(Cost.Trg_chunks { chunks = p.chunks; trg = p.place.Trg.graph })

let run config program trace = place program (profile config program trace)
