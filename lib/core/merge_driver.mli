(** Greedy heaviest-edge merging of a working graph.

    All three placement algorithms (PH, HKC, GBSC) share this outer loop
    (Section 2): repeatedly take the largest-weight edge of the working
    graph, merge the two groups it connects, and combine parallel edges by
    summing their weights, until no edges remain.

    Determinism: ties in edge weight are broken by the order in which the
    tied weights were created (initial edges in canonical [(u, v)] order,
    then updates in merge order), so a given input graph always produces
    the same merge sequence. *)

val run :
  graph:Trg_profile.Graph.t ->
  init:(int -> 'node) ->
  merge:('node -> 'node -> 'node) ->
  'node list
(** [run ~graph ~init ~merge] seeds one group per graph node via [init] and
    returns the remaining groups once all edges are consumed, ordered by
    decreasing group size (number of original nodes), ties by smaller
    representative id.

    [merge n1 n2] must return the merged payload; the driver passes the
    {e larger} group as [n1] (ties: the group whose representative id is
    smaller), so alignment-style merges keep the bigger layout fixed.

    When {!Trg_obs.Journal.recording} is armed, every merge decision is
    appended to the journal before the merge applies: the chosen group
    pair and winning weight, both group sizes, and the runner-up — the
    heaviest other non-stale heap entry, found by a non-destructive scan
    so heap insertion ordinals (the tie-breakers) are untouched.  The
    default path pays exactly one branch per merge. *)

val replay :
  graph:Trg_profile.Graph.t ->
  init:(int -> 'node) ->
  merge:('node -> 'node -> 'node) ->
  decisions:Trg_obs.Journal.decision array ->
  'node list
(** Forced-choice mode: re-drive a recorded merge sequence over the same
    working graph, with no heap and no greedy search.  Each journal
    decision is verified against the live state before it applies — both
    representatives must name live groups, the chosen edge and the
    runner-up edge must carry bit-identical weights, group sizes must
    match, and the margin must be non-negative — and after the last
    decision no mergeable edge may remain.  Group bookkeeping (union
    order, combined weights, output ordering) is shared with {!run}, so
    on a faithful journal the returned groups are bit-identical to the
    recorded run's.  While {!Trg_obs.Journal.recording}, each verified
    decision is re-recorded (the merge callback re-annotates it), which
    is how the replay gate cross-checks engine-derived offsets and costs.

    @raise Failure naming the failing step on any mismatch. *)
