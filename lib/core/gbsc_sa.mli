(** Set-associative extension of the placement algorithm (Section 6).

    For an A-way associative cache a single intervening block cannot evict
    a resident block, so TRG_place is replaced by the pair database
    [D(p, {r, s})] (see {!Trg_profile.Pair_db}), and [merge_nodes] charges
    an offset only when a block and both members of a recorded pair map to
    the same cache set.  Selection order still comes from the
    procedure-granularity TRG_select.  Alignments are taken modulo the
    number of {e sets}, which is the period of the cache mapping. *)

type profile = {
  config : Gbsc.config;
  popularity : Trg_profile.Popularity.t;
  chunks : Trg_program.Chunk.t;
  select : Trg_profile.Trg.built;  (** TRG_select, as in the base algorithm *)
  pairs : Trg_profile.Pair_db.built;  (** D(p, {r, s}) at chunk granularity *)
}

val profile :
  ?max_between:int ->
  Gbsc.config ->
  Trg_program.Program.t ->
  Trg_trace.Trace.t ->
  profile
(** The cache in [config] should be set-associative (assoc >= 2); the
    algorithm degrades gracefully to direct-mapped but {!Gbsc} is then the
    better choice.  [max_between] bounds the pair enumeration (see
    {!Trg_profile.Pair_db.build_stream}). *)

val place :
  ?decisions:Trg_obs.Journal.decision array ->
  Trg_program.Program.t ->
  profile ->
  Trg_program.Layout.t
(** Offers itself to an armed decision journal as ["gbsc-sa"];
    [decisions] replays a recorded sequence in forced-choice mode. *)

val run :
  ?max_between:int ->
  Gbsc.config ->
  Trg_program.Program.t ->
  Trg_trace.Trace.t ->
  Trg_program.Layout.t

(** {2 Arbitrary associativity}

    The tuple-database generalisation: D(p, S) with [|S|] equal to the
    cache's number of ways.  For 2-way caches this coincides with the pair
    database up to enumeration caps. *)

type tuple_profile = {
  tconfig : Gbsc.config;
  tpopularity : Trg_profile.Popularity.t;
  tchunks : Trg_program.Chunk.t;
  tselect : Trg_profile.Trg.built;
  tplace : Trg_profile.Trg.built;
      (** dense direct-mapped TRG, blended in at a small weight *)
  tuples : Trg_profile.Tuple_db.built;
}

val profile_tuples :
  ?max_between:int ->
  ?arity:int ->
  Gbsc.config ->
  Trg_program.Program.t ->
  Trg_trace.Trace.t ->
  tuple_profile
(** [arity] defaults to the configured cache's associativity. *)

val place_tuples :
  ?trg_share:float -> Trg_program.Program.t -> tuple_profile -> Trg_program.Layout.t
(** [trg_share] (default 0.25) weights the dense TRG_place cost blended
    with the tuple-database cost. *)

val run_tuples :
  ?max_between:int ->
  ?arity:int ->
  Gbsc.config ->
  Trg_program.Program.t ->
  Trg_trace.Trace.t ->
  Trg_program.Layout.t
