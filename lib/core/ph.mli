(** The Pettis & Hansen procedure-placement algorithm (Section 2).

    PH merges the two procedures connected by the heaviest edge of the
    working call graph into a {e chain}, combining chains end-to-end.  When
    chains [A] and [B] merge, the four concatenations [AB], [AB'], [A'B],
    [A'B'] (primes are reversals) are scored by the byte distance between
    the pair of procedures [p in A], [q in B] connected by the
    heaviest-weight edge of the {e original} graph, and the closest variant
    wins.  PH uses no cache-configuration or procedure-size information
    beyond these distances — which is exactly the weakness the paper's
    algorithm addresses. *)

val order :
  ?decisions:Trg_obs.Journal.decision array ->
  wcg:Trg_profile.Graph.t ->
  Trg_program.Program.t ->
  int array
(** Final procedure order: the merged chains in decreasing size, followed
    by the procedures that never appeared in the working graph, in source
    order.  [decisions] replays a recorded chain-merge sequence in
    forced-choice mode ({!Merge_driver.replay}). *)

val place :
  ?align:int ->
  ?decisions:Trg_obs.Journal.decision array ->
  wcg:Trg_profile.Graph.t ->
  Trg_program.Program.t ->
  Trg_program.Layout.t
(** Contiguous layout of {!order} ([align] defaults to 4 bytes).  Offers
    itself to an armed decision journal under the algorithm label
    ["ph"]. *)
