(** One level-tagged stderr logging convention for the whole pipeline.

    Replaces the mixture of [Logs] (GBSC only) and bare [Printf.eprintf]
    (CLI error paths): every component logs through this module so one
    [--verbose] flag covers PH, HKC, the runner and GBSC alike.

    Messages are formatted lazily, [Logs]-style — the closure is only
    applied when the level is enabled:

    {[ Log.info (fun m -> m "merged %d nodes" n) ]}

    Output goes to stderr as ["trgplace: [LEVEL] message\n"]. *)

type level = Quiet | Error | Warn | Info | Debug

val set_level : level -> unit
(** Default: [Warn]. *)

val level : unit -> level

val err : ((('a, out_channel, unit) format -> 'a) -> unit) -> unit
val warn : ((('a, out_channel, unit) format -> 'a) -> unit) -> unit
val info : ((('a, out_channel, unit) format -> 'a) -> unit) -> unit
val debug : ((('a, out_channel, unit) format -> 'a) -> unit) -> unit
