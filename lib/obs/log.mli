(** One level-tagged stderr logging convention for the whole pipeline.

    Replaces the mixture of [Logs] (GBSC only) and bare [Printf.eprintf]
    (CLI error paths): every component logs through this module so one
    [--verbose] flag covers PH, HKC, the runner and GBSC alike.

    Messages are formatted lazily, [Logs]-style — the closure is only
    applied when the level is enabled:

    {[ Log.info (fun m -> m "merged %d nodes" n) ]}

    Output goes to stderr as ["trgplace: [LEVEL] message\n"].  [Debug]
    lines carry a monotonic timestamp — ["trgplace: [debug 12.345678]"]
    — so worker interleavings are diagnosable from stderr alone. *)

type level = Quiet | Error | Warn | Info | Debug

val of_string : string -> level option
(** Case-insensitive level name ("quiet", "error", "warn"/"warning",
    "info", "debug"); [None] for anything else. *)

val env_var : string
(** ["TRGPLACE_LOG"].  When set to a level name, it becomes the process's
    starting log level — useful for debugging a run whose command line
    cannot be edited (CI, the forked pool).  An explicit CLI verbosity
    flag still wins: the CLI calls {!set_level} after parsing. *)

val set_level : level -> unit
(** Default: the {!env_var} level, or [Warn] when unset/unparsable. *)

val level : unit -> level

val err : ((('a, out_channel, unit) format -> 'a) -> unit) -> unit
val warn : ((('a, out_channel, unit) format -> 'a) -> unit) -> unit
val info : ((('a, out_channel, unit) format -> 'a) -> unit) -> unit
val debug : ((('a, out_channel, unit) format -> 'a) -> unit) -> unit
