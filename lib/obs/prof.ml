let on = ref false

let set_enabled v = on := v

let enabled () = !on

(* Half-decade buckets from 1 us to 1e6 us: fine enough to separate a
   seeding pass from a per-merge delta, coarse enough that histogram
   snapshots stay small in manifests. *)
let us_limits =
  [| 1.; 3.; 10.; 30.; 100.; 300.; 1e3; 3e3; 1e4; 3e4; 1e5; 3e5; 1e6 |]
