type outcome = Finished | Failed

type record = {
  name : string;
  path : string;
  depth : int;
  wall_s : float;
  alloc_words : float;
  outcome : outcome;
}

type frame = { f_name : string; f_path : string; t0 : float; alloc0 : float }

let on = ref false

let set_enabled v = on := v

let enabled () = !on

let stack : frame list ref = ref []

let completed : record list ref = ref []

(* Words ever allocated by the program: immune to collections, so deltas
   are monotone by construction.  [Gc.minor_words] reads the live young
   pointer; [quick_stat.minor_words] only advances at minor collections,
   which would hide most of a short span's allocation in native code. *)
let allocated_words () =
  let s = Gc.quick_stat () in
  Gc.minor_words () +. s.Gc.major_words -. s.Gc.promoted_words

let enter name =
  let path =
    match !stack with [] -> name | top :: _ -> top.f_path ^ "/" ^ name
  in
  stack :=
    { f_name = name; f_path = path; t0 = Unix.gettimeofday (); alloc0 = allocated_words () }
    :: !stack

let leave outcome =
  match !stack with
  | [] -> ()
  | top :: rest ->
    stack := rest;
    let wall_s = Float.max 0. (Unix.gettimeofday () -. top.t0) in
    let alloc_words = Float.max 0. (allocated_words () -. top.alloc0) in
    completed :=
      {
        name = top.f_name;
        path = top.f_path;
        depth = List.length rest;
        wall_s;
        alloc_words;
        outcome;
      }
      :: !completed

let with_ name f =
  if not !on then f ()
  else begin
    enter name;
    match f () with
    | v ->
      leave Finished;
      v
    | exception e ->
      leave Failed;
      raise e
  end

let records () = List.rev !completed

let reset () = completed := []

let to_json () =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("name", Json.String r.name);
             ("path", Json.String r.path);
             ("depth", Json.Int r.depth);
             ("wall_s", Json.Float r.wall_s);
             ("alloc_words", Json.Float r.alloc_words);
             ( "outcome",
               Json.String (match r.outcome with Finished -> "ok" | Failed -> "failed") );
           ])
       (records ()))
