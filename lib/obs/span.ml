type outcome = Finished | Failed

type record = {
  name : string;
  path : string;
  depth : int;
  start_s : float;
  wall_s : float;
  alloc_words : float;
  outcome : outcome;
  lane : int option;
}

(* Process epoch for span start times: fixed once at module load, so every
   record's [start_s] lives on one shared, monotone-enough axis and the
   Chrome-trace export can place spans without reconstructing nesting. *)
let epoch = Unix.gettimeofday ()

type frame = { f_name : string; f_path : string; t0 : float; alloc0 : float }

let on = ref false

let set_enabled v = on := v

let enabled () = !on

let stack : frame list ref = ref []

let completed : record list ref = ref []

(* Words ever allocated by the program: immune to collections, so deltas
   are monotone by construction.  [Gc.minor_words] reads the live young
   pointer; [quick_stat.minor_words] only advances at minor collections,
   which would hide most of a short span's allocation in native code. *)
let allocated_words () =
  let s = Gc.quick_stat () in
  Gc.minor_words () +. s.Gc.major_words -. s.Gc.promoted_words

let enter name =
  let path =
    match !stack with [] -> name | top :: _ -> top.f_path ^ "/" ^ name
  in
  stack :=
    { f_name = name; f_path = path; t0 = Unix.gettimeofday (); alloc0 = allocated_words () }
    :: !stack

let leave outcome =
  match !stack with
  | [] -> ()
  | top :: rest ->
    stack := rest;
    let wall_s = Float.max 0. (Unix.gettimeofday () -. top.t0) in
    let alloc_words = Float.max 0. (allocated_words () -. top.alloc0) in
    completed :=
      {
        name = top.f_name;
        path = top.f_path;
        depth = List.length rest;
        start_s = Float.max 0. (top.t0 -. epoch);
        wall_s;
        alloc_words;
        outcome;
        lane = None;
      }
      :: !completed

let with_ name f =
  if not !on then f ()
  else begin
    enter name;
    match f () with
    | v ->
      leave Finished;
      v
    | exception e ->
      leave Failed;
      raise e
  end

let records () = List.rev !completed

let inject ?lane rs =
  let rs =
    match lane with
    | None -> rs
    | Some _ ->
      (* Worker lanes beat any lane recorded inside the worker: the
         absorbing pool knows which lane actually ran the span. *)
      List.map (fun r -> { r with lane }) rs
  in
  completed := List.rev_append rs !completed

let reset () = completed := []

let to_json () =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           ([
              ("name", Json.String r.name);
              ("path", Json.String r.path);
              ("depth", Json.Int r.depth);
              ("start_s", Json.Float r.start_s);
              ("wall_s", Json.Float r.wall_s);
              ("alloc_words", Json.Float r.alloc_words);
              ( "outcome",
                Json.String
                  (match r.outcome with Finished -> "ok" | Failed -> "failed") );
            ]
           @ match r.lane with None -> [] | Some l -> [ ("lane", Json.Int l) ]))
       (records ()))

(* Chrome trace-event format: one complete ("ph": "X") event per span,
   timestamps and durations in microseconds.  chrome://tracing and
   Perfetto both load the {"traceEvents": [...]} envelope.

   The pid is the exporting process's real pid; the tid is the span's
   worker lane (0 = the main process, n >= 1 = pool worker n), so a
   sharded run renders as parallel rows instead of one stacked lane.
   Metadata events name each lane. *)
let chrome_of_spans ?pid spans =
  let pid = match pid with Some p -> p | None -> Unix.getpid () in
  let fallback_clock = ref 0. in
  let lanes = ref [] in
  let events =
    List.map
      (fun s ->
        let str k d =
          match Option.bind (Json.member k s) Json.to_string_opt with
          | Some v -> v
          | None -> d
        in
        let num k d =
          match Option.bind (Json.member k s) Json.to_float with
          | Some v -> v
          | None -> d
        in
        let dur = num "wall_s" 0. in
        let ts =
          (* Manifests older than schema 2 carry no start times; lay those
             spans end to end so the trace still opens, and says so. *)
          match Option.bind (Json.member "start_s" s) Json.to_float with
          | Some t -> t
          | None ->
            let t = !fallback_clock in
            fallback_clock := t +. dur;
            t
        in
        let tid =
          match Option.bind (Json.member "lane" s) Json.to_int with
          | Some l -> l
          | None -> 0
        in
        if not (List.mem tid !lanes) then lanes := tid :: !lanes;
        Json.Obj
          [
            ("name", Json.String (str "name" "?"));
            ("cat", Json.String "trgplace");
            ("ph", Json.String "X");
            ("ts", Json.Float (1e6 *. ts));
            ("dur", Json.Float (1e6 *. dur));
            ("pid", Json.Int pid);
            ("tid", Json.Int tid);
            ( "args",
              Json.Obj
                [
                  ("path", Json.String (str "path" ""));
                  ("alloc_words", Json.Float (num "alloc_words" 0.));
                  ("outcome", Json.String (str "outcome" "ok"));
                ] );
          ])
      spans
  in
  let lane_names =
    List.map
      (fun tid ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int pid);
            ("tid", Json.Int tid);
            ( "args",
              Json.Obj
                [
                  ( "name",
                    Json.String
                      (if tid = 0 then "main"
                       else Printf.sprintf "worker %d" tid) );
                ] );
          ])
      (List.sort compare !lanes)
  in
  Json.Obj
    [
      ("traceEvents", Json.List (lane_names @ events));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_chrome () =
  match to_json () with
  | Json.List spans -> chrome_of_spans spans
  | _ -> chrome_of_spans []
