type level = Quiet | Error | Warn | Info | Debug

let rank = function Quiet -> 0 | Error -> 1 | Warn -> 2 | Info -> 3 | Debug -> 4

let label = function
  | Quiet -> "quiet"
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let current = ref Warn

let set_level l = current := l

let level () = !current

let log lvl msgf =
  if rank lvl <= rank !current then
    msgf (fun fmt ->
        Printf.eprintf ("trgplace: [%s] " ^^ fmt ^^ "\n%!") (label lvl))

let err msgf = log Error msgf

let warn msgf = log Warn msgf

let info msgf = log Info msgf

let debug msgf = log Debug msgf
