type level = Quiet | Error | Warn | Info | Debug

let rank = function Quiet -> 0 | Error -> 1 | Warn -> 2 | Info -> 3 | Debug -> 4

let label = function
  | Quiet -> "quiet"
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "quiet" -> Some Quiet
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let env_var = "TRGPLACE_LOG"

let default_level () =
  match Option.bind (Sys.getenv_opt env_var) of_string with
  | Some l -> l
  | None -> Warn

(* The environment sets the starting level so a hung pool run can be
   diagnosed from stderr without editing the invocation; an explicit CLI
   verbosity flag still overrides it via [set_level]. *)
let current = ref (default_level ())

let set_level l = current := l

let level () = !current

let log lvl msgf =
  if rank lvl <= rank !current then
    match lvl with
    | Debug ->
      (* Debug lines are where pool/worker interleavings get diagnosed;
         a monotonic timestamp makes relative ordering and gaps readable
         straight off stderr. *)
      msgf (fun fmt ->
          Printf.eprintf
            ("trgplace: [%s %.6f] " ^^ fmt ^^ "\n%!")
            (label lvl)
            (Trg_util.Clock.monotonic ()))
    | _ ->
      msgf (fun fmt ->
          Printf.eprintf ("trgplace: [%s] " ^^ fmt ^^ "\n%!") (label lvl))

let err msgf = log Error msgf

let warn msgf = log Warn msgf

let info msgf = log Info msgf

let debug msgf = log Debug msgf
