(** The continuous-performance ledger.

    An append-only JSONL file is the project's performance memory: each
    line holds one measurement session — per-benchmark robust statistics
    (median + MAD over N repetitions of wall time and allocation) plus
    the deterministic work counters ([cost/incr/*], [pool/*], [sim/*])
    that explain them — keyed by git revision, config checksum and a
    caller-supplied timestamp.

    Every line is guarded by a CRC-32 of the record's compact rendering
    ([{"crc":"<hex8>","record":{...}}]), and appends are a single
    [O_APPEND] write, so concurrent recorders interleave at line
    granularity and a torn write damages at most the final line.  {!load}
    skips damaged lines with typed {!Trg_util.Fault.error}s and keeps
    every intact record — history survives tail truncation and interior
    corruption alike.

    {!gate} turns the ledger into a noise-aware regression check: wall
    and allocation medians must stay inside a band derived from the
    recent window's own dispersion (x·MAD above the window median), while
    deterministic counters — machine-independent by construction — are
    compared at a plain relative tolerance (exact by default). *)

val schema : string
(** ["trgplace-perf/1"], embedded in every record. *)

(** {2 Robust statistics} *)

type stat = { median : float; mad : float }

val robust : float array -> stat
(** Median and median-absolute-deviation of a non-empty sample.  Raises
    [Invalid_argument] on an empty array. *)

(** {2 Records} *)

type bench = {
  b_name : string;
  wall_s : stat;  (** wall-clock seconds per repetition *)
  alloc_w : stat;  (** words allocated per repetition *)
}

type record = {
  rev : string;  (** git revision the measurements belong to *)
  time_s : float;  (** caller-supplied wall-clock timestamp *)
  config_crc : string;  (** checksum of the recording configuration *)
  reps : int;  (** repetitions behind each [stat] *)
  benches : bench list;  (** sorted by [b_name] *)
  counters : (string * int) list;
      (** deterministic counters captured during one repetition; sorted *)
}

val record_json : record -> Json.t
val record_of_json : Json.t -> record
(** Raises {!Trg_util.Fault.Error} ([Bad_record]) on shape or schema
    mismatch. *)

(** {2 The ledger file} *)

val line_of_record : record -> string
(** One CRC-guarded JSONL line (no trailing newline). *)

val record_of_line : string -> record
(** Inverse of {!line_of_record}.  Raises {!Trg_util.Fault.Error}:
    [Bad_record] for malformed JSON or shape, [Checksum_mismatch] when
    the guard disagrees with the body. *)

val append : string -> record -> unit
(** [append path r] appends one line to the ledger at [path] (creating
    it if missing) with a single [O_APPEND] write.  If the existing file
    ends mid-line (a torn earlier append), a newline is inserted first
    so the new record starts fresh and the damage stays confined to the
    one truncated line.  Raises {!Trg_util.Fault.Error} ([Io_error]) and
    consults the ambient fault injector. *)

type skipped = { line : int; fault : Trg_util.Fault.error }
(** A damaged ledger line: 1-based line number and why it was skipped.
    An unparsable {e final} line is reported as [Truncated] (the
    signature of a torn append); interior damage stays [Bad_record] or
    [Checksum_mismatch]. *)

val load : string -> record list * skipped list
(** All intact records in file order, plus the damaged lines that were
    skipped.  A missing file is an empty ledger.  Raises
    {!Trg_util.Fault.Error} only if the file exists but cannot be
    read. *)

val load_result :
  string -> (record list * skipped list, Trg_util.Fault.error) result

(** {2 The regression gate} *)

type verdict = {
  v_bench : string;  (** benchmark name, or counter name *)
  v_metric : string;  (** ["wall_s"], ["alloc_w"] or ["counter"] *)
  v_current : float;
  v_baseline : float;  (** window median (latency) or last value (counter) *)
  v_limit : float;  (** band upper edge, or the counter tolerance *)
  v_ok : bool;
}

val gate :
  ?window:int ->
  ?mad_factor:float ->
  ?min_band:float ->
  ?counter_tolerance:float ->
  history:record list ->
  record ->
  verdict list
(** [gate ~history current] compares [current] against the last [window]
    (default 5) ledger records.

    For each benchmark metric (wall, alloc): the baseline is the median
    of the window's recorded medians; the noise scale is the larger of
    the MAD of those medians (between-session) and the median of the
    recorded MADs (within-session); the verdict passes iff

    {[ current.median <= baseline * (1 + min_band) + mad_factor * noise ]}

    with [mad_factor] defaulting to [6.] and [min_band] (a relative
    floor that keeps near-zero-noise windows from over-triggering) to
    [0.25].

    Deterministic counters are compared against the most recent window
    record carrying them at relative tolerance [counter_tolerance]
    (default [0.] — exact); drift in {e either} direction fails, since a
    moved counter means the work profile changed and the ledger should
    be re-recorded deliberately.

    Benchmarks or counters with no history are skipped (no verdict). *)

val regressions : verdict list -> verdict list
(** The failing subset. *)
