(** Minimal JSON values for telemetry manifests.

    The telemetry layer must not pull in external dependencies, so this
    module provides just enough JSON: a value type, a deterministic
    printer (object fields keep insertion order, floats render via a
    shortest-round-trip heuristic), and a strict recursive-descent
    parser for reading manifests back ([trgplace stats]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Deterministic rendering.  [indent = 0] (the default) is compact
    single-line JSON; a positive [indent] pretty-prints with that many
    spaces per nesting level.  Object fields print in insertion order;
    callers wanting sorted output sort before constructing. *)

val of_string : string -> (t, string) result
(** Strict parser for the subset this module prints (standard JSON with
    integer and floating-point numbers).  Numbers parse as [Int] when
    they contain no fraction or exponent and fit in an OCaml [int].
    Errors carry a byte offset. *)

(** {2 Accessors} — total functions returning [option]. *)

val member : string -> t -> t option
(** [member k (Obj _)] is the first binding of [k], if any. *)

val to_list : t -> t list option
val to_int : t -> int option
(** [Int n] or an integral [Float]. *)

val to_float : t -> float option
(** [Float x] or [Int n] as a float. *)

val to_string_opt : t -> string option
