(* The merge-decision journal.  See journal.mli for the protocol; the
   implementation keeps the {!Prof} discipline: [recording] is one ref
   read, and the [journal/decisions] counter is lazy so its name never
   enters the metric registry unless a capture actually happened. *)

module Fault = Trg_util.Fault
module Checksum = Trg_util.Checksum

type runner_up = { r_u : int; r_v : int; r_weight : float }

type decision = {
  step : int;
  d_u : int;
  d_v : int;
  weight : float;
  size_u : int;
  size_v : int;
  runner_up : runner_up option;
  mutable shift : int option;
  mutable shift_cost : float option;
}

type meta = {
  algo : string;
  source : string;
  engine : string;
  cache_size : int;
  cache_line : int;
  cache_assoc : int;
}

type claims = { layout_crc : int; total_weight : float }

type t = { meta : meta; decisions : decision array; claims : claims }

let magic = "trgplace-journal"
let version = 1
let schema = Printf.sprintf "%s/%d" magic version

(* --- recording state --------------------------------------------------- *)

type capture = {
  c_meta : meta;
  mutable c_decisions : decision list;  (* reversed *)
  mutable c_count : int;
}

let on = ref false
let armed_for : (string * string) option ref = ref None
let current : capture option ref = ref None
let captured : t option ref = ref None

let m_decisions = lazy (Metrics.counter "journal/decisions")

let recording () = !on

let arm ~algo ~source =
  armed_for := Some (algo, source);
  captured := None

let start_recording ~meta =
  if !on then invalid_arg "Journal.start_recording: already recording";
  current := Some { c_meta = meta; c_decisions = []; c_count = 0 };
  on := true

let begin_run ~algo ~engine ~cache =
  match !armed_for with
  | Some (a, source) when a = algo && (not !on) && Option.is_none !captured ->
    let cache_size, cache_line, cache_assoc = cache in
    start_recording
      ~meta:{ algo; source; engine; cache_size; cache_line; cache_assoc };
    true
  | _ -> false

let record ~u ~v ~weight ~size_u ~size_v ?runner_up () =
  match !current with
  | None -> ()
  | Some c ->
    Metrics.incr (Lazy.force m_decisions);
    c.c_decisions <-
      {
        step = c.c_count;
        d_u = u;
        d_v = v;
        weight;
        size_u;
        size_v;
        runner_up;
        shift = None;
        shift_cost = None;
      }
      :: c.c_decisions;
    c.c_count <- c.c_count + 1

let annotate ~shift ~cost =
  match !current with
  | None | Some { c_decisions = []; _ } -> ()
  | Some { c_decisions = d :: _; _ } ->
    d.shift <- Some shift;
    d.shift_cost <- Some cost

let total_weight decisions =
  Array.fold_left (fun acc d -> acc +. d.weight) 0. decisions

let finish ~layout_crc =
  match !current with
  | None -> ()
  | Some c ->
    let decisions = Array.of_list (List.rev c.c_decisions) in
    captured :=
      Some
        {
          meta = c.c_meta;
          decisions;
          claims = { layout_crc; total_weight = total_weight decisions };
        };
    current := None;
    on := false;
    armed_for := None

let abort () =
  current := None;
  on := false

let take () =
  let t = !captured in
  captured := None;
  t

let reset () =
  armed_for := None;
  current := None;
  captured := None;
  on := false

(* --- persistence -------------------------------------------------------- *)

(* Hex float literals round-trip every finite double bit-exactly, which
   is the whole point of a replayable journal: a margin of 0.1 must come
   back as the same 0.1 the heap compared. *)
let fl x = Printf.sprintf "%h" x

let bad fmt = Printf.ksprintf (fun msg -> Fault.fail (Fault.Bad_record msg)) fmt

let parse_float ~what s =
  match float_of_string_opt s with
  | Some x -> x
  | None -> bad "journal %s: malformed float %S" what s

let parse_int ~what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> bad "journal %s: malformed integer %S" what s

let decision_line d =
  let ru, rv, rw =
    match d.runner_up with
    | Some r -> (string_of_int r.r_u, string_of_int r.r_v, fl r.r_weight)
    | None -> ("-", "-", "-")
  in
  let sh = match d.shift with Some s -> string_of_int s | None -> "-" in
  let sc = match d.shift_cost with Some c -> fl c | None -> "-" in
  Printf.sprintf "d %d %d %s %d %d %s %s %s %s %s" d.d_u d.d_v (fl d.weight)
    d.size_u d.size_v ru rv rw sh sc

let decision_of_line step line =
  match String.split_on_char ' ' line with
  | [ "d"; u; v; w; su; sv; ru; rv; rw; sh; sc ] ->
    let what = Printf.sprintf "decision %d" step in
    let opt tok parse = if tok = "-" then None else Some (parse ~what tok) in
    let runner_up =
      match (opt ru parse_int, opt rv parse_int, opt rw parse_float) with
      | Some r_u, Some r_v, Some r_weight -> Some { r_u; r_v; r_weight }
      | None, None, None -> None
      | _ -> bad "journal %s: partial runner-up fields" what
    in
    {
      step;
      d_u = parse_int ~what u;
      d_v = parse_int ~what v;
      weight = parse_float ~what w;
      size_u = parse_int ~what su;
      size_v = parse_int ~what sv;
      runner_up;
      shift = opt sh parse_int;
      shift_cost = opt sc parse_float;
    }
  | _ -> bad "journal decision %d: expected 11 fields, got %S" step line

let serialize t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "%s %d %d\n" magic version (Array.length t.decisions));
  Buffer.add_string b
    (Printf.sprintf "meta %s %s %s %d %d %d\n" t.meta.algo t.meta.source
       t.meta.engine t.meta.cache_size t.meta.cache_line t.meta.cache_assoc);
  Array.iter
    (fun d ->
      Buffer.add_string b (decision_line d);
      Buffer.add_char b '\n')
    t.decisions;
  Buffer.add_string b
    (Printf.sprintf "claims %d %s\n" t.claims.layout_crc (fl t.claims.total_weight));
  let crc = Checksum.string (Buffer.contents b) in
  Buffer.add_string b (Fault.crc_trailer crc);
  Buffer.contents b

let save path t = Fault.atomic_write path (serialize t)

let load path =
  Fault.io_point ~op:(Printf.sprintf "load journal %s" path);
  let ic =
    try open_in_bin path
    with Sys_error msg -> Fault.fail (Fault.Io_error msg)
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let r = Fault.Reader.of_channel ic in
      let _v, n =
        Fault.parse_header ~magic ~max_version:version
          (Fault.Reader.line r ~what:"journal header")
      in
      let meta =
        match
          String.split_on_char ' ' (Fault.Reader.line r ~what:"journal meta")
        with
        | [ "meta"; algo; source; engine; size; line; assoc ] ->
          {
            algo;
            source;
            engine;
            cache_size = parse_int ~what:"meta" size;
            cache_line = parse_int ~what:"meta" line;
            cache_assoc = parse_int ~what:"meta" assoc;
          }
        | _ -> bad "journal meta: expected 7 fields"
      in
      let decisions = ref [] in
      for step = 0 to n - 1 do
        let line =
          Fault.Reader.line r ~what:(Printf.sprintf "journal decision %d" step)
        in
        decisions := decision_of_line step line :: !decisions
      done;
      let claims =
        match
          String.split_on_char ' ' (Fault.Reader.line r ~what:"journal claims")
        with
        | [ "claims"; crc; tw ] ->
          {
            layout_crc = parse_int ~what:"claims" crc;
            total_weight = parse_float ~what:"claims" tw;
          }
        | _ -> bad "journal claims: expected 3 fields"
      in
      Fault.check_text_trailer r;
      { meta; decisions = Array.of_list (List.rev !decisions); claims })

let load_result path = Fault.result (fun () -> load path)
