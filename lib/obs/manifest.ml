let schema = "trgplace-manifest/3"

let v2_schema = "trgplace-manifest/2"

let v1_schema = "trgplace-manifest/1"

type status = Ok | Partial | Failed

let status_to_string = function
  | Ok -> "ok"
  | Partial -> "partial-failure"
  | Failed -> "failed"

let gc_json () =
  let s = Gc.quick_stat () in
  Json.Obj
    [
      ("minor_words", Json.Float s.Gc.minor_words);
      ("promoted_words", Json.Float s.Gc.promoted_words);
      ("major_words", Json.Float s.Gc.major_words);
      ("heap_words", Json.Int s.Gc.heap_words);
      ("top_heap_words", Json.Int s.Gc.top_heap_words);
      ("minor_collections", Json.Int s.Gc.minor_collections);
      ("major_collections", Json.Int s.Gc.major_collections);
      ("compactions", Json.Int s.Gc.compactions);
    ]

let build ~command ?(argv = []) ?(config = []) ?explain ?journal ~status ~exit_code () =
  let metrics = Metrics.to_json () in
  let field k =
    match Json.member k metrics with Some v -> v | None -> Json.Obj []
  in
  Json.Obj
    ([
       ("schema", Json.String schema);
       ("command", Json.String command);
       ("argv", Json.List (List.map (fun a -> Json.String a) argv));
       ("config", Json.Obj config);
       ("status", Json.String (status_to_string status));
       ("exit_code", Json.Int exit_code);
       ("gc", gc_json ());
       ("counters", field "counters");
       ("gauges", field "gauges");
       ("histograms", field "histograms");
       ("spans", Span.to_json ());
     ]
    @ (match explain with None -> [] | Some e -> [ ("explain", e) ])
    @ match journal with None -> [] | Some j -> [ ("journal", j) ])

let write path json =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match
     output_string oc (Json.to_string ~indent:2 json);
     output_char oc '\n'
   with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> Json.of_string contents

let validate json =
  let require name check =
    match Json.member name json with
    | None -> Error (Printf.sprintf "manifest: missing %S member" name)
    | Some v ->
      if check v then Result.Ok ()
      else Error (Printf.sprintf "manifest: member %S has the wrong type" name)
  in
  let is_obj = function Json.Obj _ -> true | _ -> false in
  let is_list = function Json.List _ -> true | _ -> false in
  let is_string = function Json.String _ -> true | _ -> false in
  let is_int = function Json.Int _ -> true | _ -> false in
  let ( let* ) = Result.bind in
  let* () =
    match Json.member "schema" json with
    | Some (Json.String s) when s = schema || s = v2_schema || s = v1_schema ->
      Result.Ok ()
    | Some (Json.String s) ->
      Error
        (Printf.sprintf "manifest: unsupported schema %S (want %S, %S or %S)" s
           schema v2_schema v1_schema)
    | Some _ | None -> Error "manifest: missing schema marker"
  in
  let* () = require "command" is_string in
  let* () = require "argv" is_list in
  let* () = require "config" is_obj in
  let* () = require "status" is_string in
  let* () = require "exit_code" is_int in
  let* () = require "gc" is_obj in
  let* () = require "counters" is_obj in
  let* () = require "gauges" is_obj in
  let* () = require "histograms" is_obj in
  let* () = require "spans" is_list in
  let* () =
    match Json.member "explain" json with
    | None -> Result.Ok ()
    | Some v ->
      if is_obj v then Result.Ok ()
      else Error "manifest: member \"explain\" has the wrong type"
  in
  match Json.member "journal" json with
  | None -> Result.Ok ()
  | Some v ->
    if is_obj v then Result.Ok ()
    else Error "manifest: member \"journal\" has the wrong type"

(* --- regression diffing ---------------------------------------------- *)

type drift = {
  metric : string;
  base : float option;
  current : float option;
  rel : float;
}

(* The comparable surface of a manifest: deterministic metrics only.
   Wall times, GC statistics and span durations are machine noise by
   design and never diffed. *)
let comparable json =
  let fields kind key extract =
    match Json.member key json with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (name, v) ->
          Option.map (fun x -> (kind ^ "/" ^ name, x)) (extract v))
        fields
    | _ -> []
  in
  fields "counters" "counters" Json.to_float
  @ fields "gauges" "gauges" Json.to_float
  @ fields "histograms" "histograms" (fun v ->
        Option.bind (Json.member "total" v) Json.to_float)

let relative_delta a b =
  if a = b then 0.
  else Float.abs (b -. a) /. Float.max 1. (Float.abs a)

let diff ?(tolerance = 0.) base current =
  let a = comparable base and b = comparable current in
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k (Some v, None)) a;
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | Some (base_v, _) -> Hashtbl.replace tbl k (base_v, Some v)
      | None -> Hashtbl.replace tbl k (None, Some v))
    b;
  Hashtbl.fold
    (fun metric (base_v, cur_v) acc ->
      match (base_v, cur_v) with
      | Some x, Some y ->
        let rel = relative_delta x y in
        if rel > tolerance then
          { metric; base = Some x; current = Some y; rel } :: acc
        else acc
      | _ ->
        { metric; base = base_v; current = cur_v; rel = infinity } :: acc)
    tbl []
  |> List.sort (fun d1 d2 -> compare d1.metric d2.metric)
