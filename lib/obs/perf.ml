(* The continuous-performance ledger.

   One JSONL file accumulates the project's performance memory: each
   line is a self-validating record of one measurement session — robust
   per-benchmark statistics (median + MAD over N repetitions) plus the
   deterministic work counters that explain them — keyed by git revision
   and a config checksum.  Appends are a single O_APPEND write, so
   concurrent recorders interleave whole lines; loads skip corrupt or
   truncated lines with typed faults and keep everything after them, so
   one torn write never loses the history. *)

module Fault = Trg_util.Fault
module Checksum = Trg_util.Checksum

let schema = "trgplace-perf/1"

type stat = { median : float; mad : float }

let robust samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Perf.robust: empty sample";
  let median = Trg_util.Stats.median samples in
  let deviations = Array.map (fun x -> Float.abs (x -. median)) samples in
  { median; mad = Trg_util.Stats.median deviations }

type bench = { b_name : string; wall_s : stat; alloc_w : stat }

type record = {
  rev : string;
  time_s : float;
  config_crc : string;
  reps : int;
  benches : bench list;  (* sorted by name *)
  counters : (string * int) list;  (* sorted by name *)
}

(* --- JSON codec ------------------------------------------------------- *)

let stat_json s = Json.Obj [ ("median", Json.Float s.median); ("mad", Json.Float s.mad) ]

let record_json r =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("rev", Json.String r.rev);
      ("time_s", Json.Float r.time_s);
      ("config_crc", Json.String r.config_crc);
      ("reps", Json.Int r.reps);
      ( "benches",
        Json.Obj
          (List.map
             (fun b ->
               ( b.b_name,
                 Json.Obj
                   [ ("wall_s", stat_json b.wall_s); ("alloc_w", stat_json b.alloc_w) ]
               ))
             r.benches) );
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.counters));
    ]

let bad msg = Fault.fail (Fault.Bad_record msg)

let stat_of_json what j =
  let num k =
    match Option.bind (Json.member k j) Json.to_float with
    | Some x -> x
    | None -> bad (Printf.sprintf "perf record: %s missing %S" what k)
  in
  { median = num "median"; mad = num "mad" }

let record_of_json j =
  (match Json.member "schema" j with
  | Some (Json.String s) when s = schema -> ()
  | Some (Json.String s) ->
    bad (Printf.sprintf "perf record: unsupported schema %S (want %S)" s schema)
  | Some _ | None -> bad "perf record: missing schema marker");
  let str k =
    match Option.bind (Json.member k j) Json.to_string_opt with
    | Some s -> s
    | None -> bad (Printf.sprintf "perf record: missing %S" k)
  in
  let benches =
    match Json.member "benches" j with
    | Some (Json.Obj fields) ->
      List.map
        (fun (name, v) ->
          {
            b_name = name;
            wall_s =
              (match Json.member "wall_s" v with
              | Some s -> stat_of_json (name ^ ".wall_s") s
              | None -> bad (Printf.sprintf "perf record: %s missing wall_s" name));
            alloc_w =
              (match Json.member "alloc_w" v with
              | Some s -> stat_of_json (name ^ ".alloc_w") s
              | None -> bad (Printf.sprintf "perf record: %s missing alloc_w" name));
          })
        fields
    | _ -> bad "perf record: missing benches object"
  in
  let counters =
    match Json.member "counters" j with
    | Some (Json.Obj fields) ->
      List.map
        (fun (name, v) ->
          match Json.to_int v with
          | Some n -> (name, n)
          | None -> bad (Printf.sprintf "perf record: counter %S not an int" name))
        fields
    | _ -> bad "perf record: missing counters object"
  in
  let sorted_by name l = List.sort (fun a b -> compare (name a) (name b)) l in
  {
    rev = str "rev";
    time_s =
      (match Option.bind (Json.member "time_s" j) Json.to_float with
      | Some t -> t
      | None -> bad "perf record: missing time_s");
    config_crc = str "config_crc";
    reps =
      (match Option.bind (Json.member "reps" j) Json.to_int with
      | Some n -> n
      | None -> bad "perf record: missing reps");
    benches = sorted_by (fun b -> b.b_name) benches;
    counters = sorted_by fst counters;
  }

(* --- the ledger file --------------------------------------------------- *)

(* Each line wraps the record behind a CRC-32 of its compact rendering:
   [{"crc":"<hex8>","record":{...}}].  The wrapper is itself strict JSON,
   so generic JSONL tooling (jq -c, etc.) reads the file too. *)
let line_of_record r =
  let body = Json.to_string (record_json r) in
  Printf.sprintf "{\"crc\":%S,\"record\":%s}"
    (Checksum.to_hex (Checksum.string body))
    body

let record_of_line line =
  match Json.of_string line with
  | Error msg -> bad (Printf.sprintf "perf ledger line is not JSON: %s" msg)
  | Ok j -> (
    let stored =
      match Option.bind (Json.member "crc" j) Json.to_string_opt with
      | Some hex -> (
        match Checksum.of_hex hex with
        | Some crc -> crc
        | None -> bad (Printf.sprintf "perf ledger line: malformed crc %S" hex))
      | None -> bad "perf ledger line: missing crc"
    in
    match Json.member "record" j with
    | None -> bad "perf ledger line: missing record"
    | Some rj ->
      let computed = Checksum.string (Json.to_string rj) in
      if stored <> computed then
        Fault.fail (Fault.Checksum_mismatch { stored; computed });
      record_of_json rj)

(* A crash mid-append can leave the file without a final newline.  A
   later append must not glue its record onto that torn tail — probe the
   last byte and start a fresh line if needed, so the damage stays
   confined to the one truncated line [load] already knows to skip. *)
let ends_with_newline path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> true
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let len = Unix.lseek fd 0 Unix.SEEK_END in
        if len = 0 then true
        else begin
          ignore (Unix.lseek fd (len - 1) Unix.SEEK_SET);
          let b = Bytes.create 1 in
          Unix.read fd b 0 1 = 1 && Bytes.get b 0 = '\n'
        end)

let append path r =
  Fault.io_point ~op:(Printf.sprintf "append perf ledger %s" path);
  let line = line_of_record r ^ "\n" in
  let line = if ends_with_newline path then line else "\n" ^ line in
  match
    let fd =
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        (* One write call for the whole line: O_APPEND makes concurrent
           recorders interleave at line granularity, never mid-record. *)
        let n = Unix.write_substring fd line 0 (String.length line) in
        if n <> String.length line then
          Fault.fail
            (Fault.Io_error (Printf.sprintf "short append to perf ledger %s" path)))
  with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    Fault.fail
      (Fault.Io_error
         (Printf.sprintf "append perf ledger %s: %s" path (Unix.error_message e)))

type skipped = { line : int; fault : Fault.error }

let load path =
  if not (Sys.file_exists path) then ([], [])
  else
  let contents = Fault.read_file path in
  let lines = String.split_on_char '\n' contents in
  let total = List.length lines in
  let records = ref [] and faults = ref [] in
  List.iteri
    (fun i line ->
      if String.trim line <> "" then
        match Fault.result (fun () -> record_of_line line) with
        | Ok r -> records := r :: !records
        | Error e ->
          (* A cut-off final line is the signature of a torn append (or a
             crash mid-write): report it as a truncation, not a generic
             bad record, so callers can tell tail damage from interior
             corruption. *)
          let e =
            match e with
            | Fault.Bad_record _ when i = total - 1 || (i = total - 2 && List.nth lines (total - 1) = "") ->
              Fault.Truncated (Printf.sprintf "perf ledger %s tail" path)
            | e -> e
          in
          faults := { line = i + 1; fault = e } :: !faults)
    lines;
  (List.rev !records, List.rev !faults)

let load_result path = Fault.result (fun () -> load path)

(* --- the regression gate ---------------------------------------------- *)

type verdict = {
  v_bench : string;
  v_metric : string;
  v_current : float;
  v_baseline : float;
  v_limit : float;
  v_ok : bool;
}

let last n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let find_bench name r = List.find_opt (fun b -> b.b_name = name) r.benches

(* Noise-aware band for one latency metric: the baseline is the median
   of the window's medians; the noise scale is the larger of the MAD of
   those medians (between-session noise) and the median of the recorded
   MADs (within-session noise).  The current median must stay under
   baseline * (1 + min_band) + mad_factor * noise. *)
let banded ~mad_factor ~min_band ~bench ~metric ~current ~stats =
  match stats with
  | [] -> None
  | _ ->
    let medians = Array.of_list (List.map (fun s -> s.median) stats) in
    let baseline = Trg_util.Stats.median medians in
    let between = (robust medians).mad in
    let within =
      Trg_util.Stats.median (Array.of_list (List.map (fun s -> s.mad) stats))
    in
    let noise = Float.max between within in
    let limit = (baseline *. (1. +. min_band)) +. (mad_factor *. noise) in
    Some
      {
        v_bench = bench;
        v_metric = metric;
        v_current = current;
        v_baseline = baseline;
        v_limit = limit;
        v_ok = current <= limit;
      }

let gate ?(window = 5) ?(mad_factor = 6.) ?(min_band = 0.25)
    ?(counter_tolerance = 0.) ~history current =
  let window_records = last window history in
  let latency =
    List.concat_map
      (fun b ->
        let stats_of f =
          List.filter_map
            (fun r -> Option.map f (find_bench b.b_name r))
            window_records
        in
        List.filter_map Fun.id
          [
            banded ~mad_factor ~min_band ~bench:b.b_name ~metric:"wall_s"
              ~current:b.wall_s.median
              ~stats:(stats_of (fun x -> x.wall_s));
            banded ~mad_factor ~min_band ~bench:b.b_name ~metric:"alloc_w"
              ~current:b.alloc_w.median
              ~stats:(stats_of (fun x -> x.alloc_w));
          ])
      current.benches
  in
  (* Deterministic counters are machine-independent: compare against the
     most recent record that carries each one, with a plain relative
     tolerance (default exact).  Drift in either direction fails — a
     counter that moved means the work profile changed, and the ledger
     should be re-recorded deliberately, not silently. *)
  let counter_baseline name =
    List.fold_left
      (fun acc r ->
        match List.assoc_opt name r.counters with Some v -> Some v | None -> acc)
      None window_records
  in
  let counters =
    List.filter_map
      (fun (name, v) ->
        match counter_baseline name with
        | None -> None
        | Some base ->
          let basef = float_of_int base and curf = float_of_int v in
          let rel =
            if basef = curf then 0.
            else Float.abs (curf -. basef) /. Float.max 1. (Float.abs basef)
          in
          Some
            {
              v_bench = name;
              v_metric = "counter";
              v_current = curf;
              v_baseline = basef;
              v_limit = counter_tolerance;
              v_ok = rel <= counter_tolerance;
            })
      current.counters
  in
  latency @ counters

let regressions verdicts = List.filter (fun v -> not v.v_ok) verdicts
