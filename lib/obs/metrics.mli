(** Named counters, gauges and fixed-bucket histograms.

    One process-wide registry.  Registration is idempotent — asking for a
    metric that already exists returns the existing handle — so
    instrumented modules can register handles at module-initialisation
    time and updates are a single unconditional field mutation, cheap
    enough to leave enabled on hot paths.  Instrumentation that would
    otherwise pay per-event costs accumulates into local references and
    flushes once per operation instead.

    Snapshots are deterministic: metrics render sorted by name. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find-or-create.  @raise Invalid_argument if [name] is already
    registered as a different metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val max_gauge : gauge -> float -> unit
(** Keeps the maximum of all values offered; a fresh gauge holds the
    first offered value. *)

val gauge_value : gauge -> float

val histogram : ?limits:float array -> string -> histogram
(** Fixed upper-bound buckets ([limits] must be strictly increasing), plus
    an implicit overflow bucket.  The default limits are decades
    1, 10, ..., 1e6.  [?limits] is ignored when the histogram already
    exists. *)

val observe : histogram -> float -> unit

val histogram_counts : histogram -> int array
(** Bucket occupancies, length [Array.length limits + 1] (last = overflow). *)

val histogram_total : histogram -> int

val counters : ?prefix:string -> unit -> (string * int) list
(** Sorted by name; [?prefix] keeps only names starting with it. *)

val gauges : ?prefix:string -> unit -> (string * float) list

val to_json : ?prefix:string -> unit -> Json.t
(** [Obj] with ["counters"], ["gauges"] and ["histograms"] members, each
    sorted by metric name. *)

(** {2 Snapshots}

    A pure-data copy of the registry, safe to marshal between processes.
    The evaluation worker pool clears the registry in each forked worker,
    runs one work unit, snapshots the deltas and ships them back; the
    parent {!absorb}s them.  Because counters and histograms combine by
    addition and gauges by maximum, merging is associative and
    commutative, so totals are independent of worker count and completion
    order. *)

type hist_state = {
  hs_limits : float array;
  hs_counts : int array;  (** length [Array.length hs_limits + 1] *)
  hs_total : int;
}

type snapshot = {
  snap_counters : (string * int) list;  (** sorted by name *)
  snap_gauges : (string * float) list;  (** sorted by name; set gauges only *)
  snap_histograms : (string * hist_state) list;  (** sorted by name *)
}

val empty_snapshot : snapshot

val snapshot : ?prefix:string -> unit -> snapshot
(** Copies the current registry state ([?prefix] filters by name). *)

val merge : snapshot -> snapshot -> snapshot
(** Keyed by name (inputs are sorted, so this is a linear zip): counters
    add, gauges keep the maximum, histogram buckets add pointwise.
    @raise Invalid_argument if a shared histogram's limits disagree. *)

val delta : before:snapshot -> after:snapshot -> snapshot
(** What changed between two snapshots of the same registry: counters and
    histogram buckets subtract, gauges report [after]'s value; entries
    that did not change are dropped.  Used to compare the telemetry of
    two runs performed in one process (e.g. the simulation tester's
    determinism check).
    @raise Invalid_argument if a shared histogram's limits disagree. *)

val absorb : snapshot -> unit
(** Folds a snapshot into the live registry with {!merge}'s semantics
    (counters add, gauges via {!max_gauge}, histogram buckets add).
    Metrics absent from the registry are registered.
    @raise Invalid_argument on histogram-limit or metric-kind clashes. *)

val clear : unit -> unit
(** Zeroes every registered metric (handles stay valid).  For tests and
    for delimiting measurement windows; registration survives because
    instrumented modules cache their handles. *)
