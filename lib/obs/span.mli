(** Nested span timers: wall time plus allocation deltas per region.

    Spans are {b disabled by default}; when disabled, {!with_} is a bool
    check and a call, so instrumented hot paths stay benchmark-neutral.
    When enabled (e.g. by [trgplace --metrics-out]), each completed span
    records its name, nesting path, wall-clock duration and the words it
    allocated (from [Gc.quick_stat] deltas), in completion order — an
    inner span always precedes its parent, so the record list is a
    deterministic post-order traversal of the dynamic span tree. *)

type outcome = Finished | Failed

type record = {
  name : string;
  path : string;  (** slash-joined names of enclosing spans + [name] *)
  depth : int;  (** 0 for a root span *)
  start_s : float;
      (** seconds between the process-wide span epoch (module load) and
          the span's start — all records share one time axis *)
  wall_s : float;  (** elapsed wall seconds, clamped to [>= 0.] *)
  alloc_words : float;
      (** words allocated during the span (minor + major - promoted),
          clamped to [>= 0.] *)
  outcome : outcome;  (** [Failed] when the body raised *)
  lane : int option;
      (** Worker lane that ran the span: [None] (rendered as lane 0) for
          spans recorded in the main process, [Some n] for spans absorbed
          from pool worker [n] (see {!inject}).  Lane numbers count
          worker spawns, so a respawned worker gets a fresh lane. *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_ : string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f] inside a span.  If [f] raises, the span
    records [Failed] and the exception propagates unchanged. *)

val records : unit -> record list
(** Completed spans in completion order. *)

val reset : unit -> unit
(** Forgets all completed spans (open spans are unaffected). *)

val inject : ?lane:int -> record list -> unit
(** Appends already-completed records (in the given order) after the
    current ones.  The evaluation worker pool uses this to graft spans
    recorded in forked workers into the parent's record list; [start_s]
    values remain comparable because forked children inherit the parent's
    span epoch.  [?lane] stamps every injected record with the worker
    lane that produced it (overriding any lane recorded inside the
    worker — the absorbing pool is authoritative). *)

val to_json : unit -> Json.t
(** [List] of span objects in completion order: [name], [path], [depth],
    [start_s], [wall_s], [alloc_words], [outcome] ("ok" / "failed"), and
    [lane] when the span came from a pool worker. *)

val chrome_of_spans : ?pid:int -> Json.t list -> Json.t
(** Converts a manifest's span list (the objects of {!to_json}) to the
    Chrome trace-event format — an [{"traceEvents": [...]}] envelope of
    complete ("ph":"X") events with microsecond timestamps — loadable in
    chrome://tracing and Perfetto.  The [pid] defaults to the exporting
    process's real pid; each span's [tid] is its worker lane (0 = main
    process), with metadata events naming the lanes, so sharded runs
    render as parallel timelines.  Spans without [start_s] (manifests
    older than schema 2) are laid end to end as an approximation. *)

val to_chrome : unit -> Json.t
(** {!chrome_of_spans} over the current completed records. *)
