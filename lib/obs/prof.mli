(** The hot-path profiler switch.

    Counters are cheap enough to stay on permanently; timing histograms
    on per-merge / per-charge granularity are not.  Instrumented hot
    paths guard both the clock reads and the histogram registration
    behind this flag, so a run without [--profile] performs no extra
    system calls, allocates nothing, and registers no [prof/*] metrics —
    its manifest is bit-identical to an uninstrumented build's.

    The idiom at an instrumentation site:

    {[
      let t0 = if Prof.enabled () then Trg_util.Clock.monotonic () else 0. in
      ...hot work...
      if Prof.enabled () then
        Metrics.observe (Lazy.force hist) (1e6 *. (Trg_util.Clock.monotonic () -. t0))
    ]}

    Histogram handles are [Lazy] so the [prof/*] names only ever enter
    the metric registry once profiling has been requested. *)

val set_enabled : bool -> unit
(** Default: disabled.  The CLI's [--profile] flag turns it on before
    any experiment work runs (and before the evaluation pool forks, so
    workers inherit the setting). *)

val enabled : unit -> bool

val us_limits : float array
(** Shared bucket boundaries for microsecond-scale latency histograms:
    1 us to 1 s in half-decade steps.  Using one limit vector keeps
    [prof/*] histograms mergeable across pool workers. *)
