(** Placement decision provenance: the merge-decision journal.

    The placement algorithms are greedy sequences of merge decisions, and
    that sequence — not just its final layout — is the paper's argument.
    This module records it: one compact record per merge decision (step
    ordinal, chosen group pair, winning weight, the runner-up candidate
    and its weight — the decision margin — group sizes, and for GBSC the
    chosen relative offset with its conflict cost), captured from the
    merge hot path behind a single flag check, with the same discipline
    as {!Prof}: a run that never arms the journal performs no extra work,
    registers no [journal/*] metric, and its manifests stay
    byte-comparable.

    Journals persist with the house artifact rules — a
    [trgplace-journal 1 <n>] header, text records, a CRC-32 trailer,
    atomic writes, typed {!Trg_util.Fault} load errors.  Floats are
    serialized as hexadecimal literals ([%h]), so every weight and cost
    round-trips bit-exactly; a loaded journal can be re-driven through
    the merge driver in forced-choice mode and checked bit-identical
    ([trgplace replay]).

    {2 Recording protocol}

    The CLI {!arm}s the journal with the algorithm and benchmark it wants
    captured.  Each placement entry point calls {!begin_run} with its
    algorithm label; the first matching placement starts recording and
    owns the capture.  The merge driver appends one record per decision
    ({!record}), the algorithm's merge callback adds the engine-derived
    offset ({!annotate}), and the placement wrapper seals the capture
    with the final layout's digest ({!finish}).  The CLI then {!take}s
    the finished journal.  The state is process-global, like
    {!Prof} — it is never armed inside pool workers. *)

type runner_up = {
  r_u : int;  (** runner-up group representatives, [r_u < r_v] *)
  r_v : int;
  r_weight : float;  (** its edge weight; the margin is [weight -. r_weight] *)
}

type decision = {
  step : int;  (** 0-based ordinal in the merge sequence *)
  d_u : int;  (** merged group representatives, [d_u < d_v] *)
  d_v : int;
  weight : float;  (** the winning edge weight *)
  size_u : int;  (** group sizes before the merge, aligned with [d_u]/[d_v] *)
  size_v : int;
  runner_up : runner_up option;
      (** heaviest other live edge at decision time; [None] on the last
          mergeable edge *)
  mutable shift : int option;
      (** GBSC: chosen relative cache-set offset (absent for PH chains) *)
  mutable shift_cost : float option;
      (** GBSC: the cost array's value at [shift] — the engine-derived
          claim the replay gate re-checks bit-exactly *)
}

type meta = {
  algo : string;  (** ["gbsc"], ["ph"], ["hkc"] or ["gbsc-sa"] *)
  source : string;  (** benchmark name the decisions were recorded on *)
  engine : string;  (** active cost engine ({!Trg_place.Cost.engine_name}) *)
  cache_size : int;  (** cache operating point; all 0 for cache-independent PH *)
  cache_line : int;
  cache_assoc : int;
}

type claims = {
  layout_crc : int;  (** CRC-32 digest of the final layout's addresses *)
  total_weight : float;  (** ordered float sum of all decision weights *)
}

type t = { meta : meta; decisions : decision array; claims : claims }

val schema : string
(** ["trgplace-journal/1"] — referenced from manifest schema v3. *)

(** {2 Recording} *)

val arm : algo:string -> source:string -> unit
(** Request capture of the next placement whose {!begin_run} matches
    [algo].  Clears any previously captured journal. *)

val begin_run : algo:string -> engine:string -> cache:int * int * int -> bool
(** Called by every placement entry point.  Starts recording and returns
    [true] iff the journal is armed for [algo] and neither recording nor
    already captured; the caller that received [true] must end the
    capture with {!finish} or {!abort}. *)

val start_recording : meta:meta -> unit
(** Direct entry for replay verification: start recording with an
    explicit [meta], bypassing the arm/match handshake.
    @raise Invalid_argument if already recording. *)

val recording : unit -> bool
(** The single hot-path flag; when false the instrumented merge loop
    pays one branch and nothing else. *)

val record :
  u:int ->
  v:int ->
  weight:float ->
  size_u:int ->
  size_v:int ->
  ?runner_up:runner_up ->
  unit ->
  unit
(** Append one decision ([u < v] expected).  No-op when not recording.
    Registers and bumps the [journal/decisions] counter lazily, so the
    name never enters the registry on unjournalled runs. *)

val annotate : shift:int -> cost:float -> unit
(** Attach the engine-derived offset choice to the most recent decision
    (called from GBSC's merge callback).  No-op when not recording. *)

val finish : layout_crc:int -> unit
(** Seal the capture: computes [total_weight], stores the journal for
    {!take}, disarms.  No-op when not recording. *)

val abort : unit -> unit
(** Discard an in-flight capture (placement failed). *)

val take : unit -> t option
(** The captured journal, if any; clears it. *)

val reset : unit -> unit
(** Clear all journal state (armed, in-flight, captured).  For tests. *)

val total_weight : decision array -> float
(** Ordered left-to-right float sum of the decisions' winning weights. *)

(** {2 Persistence} *)

val save : string -> t -> unit
(** Atomic write with the CRC-32 text trailer.
    Raises {!Trg_util.Fault.Error} on I/O failure. *)

val load : string -> t
(** Raises {!Trg_util.Fault.Error}: [Bad_magic], [Unsupported_version],
    [Checksum_mismatch], [Truncated], [Bad_record] or [Io_error]. *)

val load_result : string -> (t, Trg_util.Fault.error) result
