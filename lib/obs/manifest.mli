(** Structured run manifests: one JSON document per run.

    A manifest captures what a run was (command, argv, resolved options),
    what it did (counters, gauges, histograms, completed spans) and how
    it ended (status, exit code, GC/heap statistics), so perf trajectories
    can be compared machine-to-machine and commit-to-commit. *)

val schema : string
(** ["trgplace-manifest/1"]; bumped on incompatible layout changes. *)

type status = Ok | Partial | Failed

val status_to_string : status -> string
(** ["ok"], ["partial-failure"], ["failed"]. *)

val build :
  command:string ->
  ?argv:string list ->
  ?config:(string * Json.t) list ->
  status:status ->
  exit_code:int ->
  unit ->
  Json.t
(** Snapshots the metrics registry, completed spans and [Gc.quick_stat]
    (including [top_heap_words], the peak major-heap size) at call time. *)

val write : string -> Json.t -> unit
(** Pretty-printed JSON, written atomically (temp file + rename) so a
    crash mid-write never leaves a torn manifest.
    @raise Sys_error on I/O failure. *)

val load : string -> (Json.t, string) result

val validate : Json.t -> (unit, string) result
(** Structural check used by [trgplace stats]: schema marker plus the
    presence and types of the required top-level members. *)
