(** Structured run manifests: one JSON document per run.

    A manifest captures what a run was (command, argv, resolved options),
    what it did (counters, gauges, histograms, completed spans, optional
    miss-attribution summary) and how it ended (status, exit code,
    GC/heap statistics), so perf trajectories can be compared
    machine-to-machine and commit-to-commit — mechanically, via
    {!diff}. *)

val schema : string
(** ["trgplace-manifest/3"]; bumped on incompatible layout changes.
    Version 2 added span [start_s] fields and the optional ["explain"]
    member; version 3 adds the optional ["journal"] member referencing a
    saved merge-decision journal ({!Journal.schema}). *)

val v2_schema : string
(** ["trgplace-manifest/2"] — still accepted by {!validate} and
    {!diff}. *)

val v1_schema : string
(** ["trgplace-manifest/1"] — still accepted by {!validate} and
    {!diff}. *)

type status = Ok | Partial | Failed

val status_to_string : status -> string
(** ["ok"], ["partial-failure"], ["failed"]. *)

val build :
  command:string ->
  ?argv:string list ->
  ?config:(string * Json.t) list ->
  ?explain:Json.t ->
  ?journal:Json.t ->
  status:status ->
  exit_code:int ->
  unit ->
  Json.t
(** Snapshots the metrics registry, completed spans and [Gc.quick_stat]
    (including [top_heap_words], the peak major-heap size) at call time.
    [explain], when given, embeds a miss-attribution classification
    summary (see {!Trg_eval.Explain}) as the ["explain"] member;
    [journal] embeds a pointer to a saved merge-decision journal
    (path, algorithm, source, engine, step count, layout CRC) as the
    ["journal"] member. *)

val write : string -> Json.t -> unit
(** Pretty-printed JSON, written atomically (temp file + rename) so a
    crash mid-write never leaves a torn manifest.
    @raise Sys_error on I/O failure. *)

val load : string -> (Json.t, string) result

val validate : Json.t -> (unit, string) result
(** Structural check used by [trgplace stats]: schema marker (v1, v2 or
    v3) plus the presence and types of the required top-level members;
    the optional ["explain"] and ["journal"] members must be objects
    when present. *)

(** {2 Regression diffing} — the engine behind [trgplace compare]. *)

type drift = {
  metric : string;  (** e.g. ["counters/sim/misses"] *)
  base : float option;  (** [None] = absent from the baseline manifest *)
  current : float option;  (** [None] = absent from the current manifest *)
  rel : float;
      (** relative change [|current - base| / max 1 |base|];
          [infinity] when the metric exists on only one side *)
}

val diff : ?tolerance:float -> Json.t -> Json.t -> drift list
(** [diff ~tolerance base current] compares the {e deterministic} metric
    surface of two manifests — counters, gauges and histogram totals —
    and returns every metric whose relative change exceeds [tolerance]
    (default 0) or that is present on one side only, sorted by name.
    Wall-clock spans and GC statistics are machine noise and are never
    compared.  An empty list means no drift. *)
