type counter = { c_name : string; mutable count : int }

type gauge = { g_name : string; mutable gvalue : float; mutable g_set : bool }

type histogram = {
  h_name : string;
  limits : float array;
  buckets : int array;  (* length = Array.length limits + 1; last = overflow *)
  mutable total : int;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let kind_clash name =
  invalid_arg
    (Printf.sprintf "Metrics: %S is already registered as another metric kind" name)

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (C c) -> c
  | Some _ -> kind_clash name
  | None ->
    let c = { c_name = name; count = 0 } in
    Hashtbl.replace registry name (C c);
    c

let incr c = c.count <- c.count + 1

let add c n = c.count <- c.count + n

let value c = c.count

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (G g) -> g
  | Some _ -> kind_clash name
  | None ->
    let g = { g_name = name; gvalue = 0.; g_set = false } in
    Hashtbl.replace registry name (G g);
    g

let set_gauge g v =
  g.gvalue <- v;
  g.g_set <- true

let max_gauge g v =
  if (not g.g_set) || v > g.gvalue then set_gauge g v

let gauge_value g = g.gvalue

let default_limits = [| 1.; 10.; 100.; 1_000.; 10_000.; 100_000.; 1_000_000. |]

let histogram ?(limits = default_limits) name =
  match Hashtbl.find_opt registry name with
  | Some (H h) -> h
  | Some _ -> kind_clash name
  | None ->
    if Array.length limits = 0 then invalid_arg "Metrics.histogram: empty limits";
    Array.iteri
      (fun i l ->
        if i > 0 && limits.(i - 1) >= l then
          invalid_arg "Metrics.histogram: limits must be strictly increasing")
      limits;
    let h =
      {
        h_name = name;
        limits = Array.copy limits;
        buckets = Array.make (Array.length limits + 1) 0;
        total = 0;
      }
    in
    Hashtbl.replace registry name (H h);
    h

let observe h v =
  let n = Array.length h.limits in
  let rec bucket i = if i >= n || v <= h.limits.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.total <- h.total + 1

let histogram_counts h = Array.copy h.buckets

let histogram_total h = h.total

let selected prefix name =
  match prefix with
  | None -> true
  | Some p ->
    String.length name >= String.length p && String.sub name 0 (String.length p) = p

let sorted_fold ?prefix f =
  Hashtbl.fold
    (fun name m acc -> if selected prefix name then f name m acc else acc)
    registry []
  |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)

let counters ?prefix () =
  sorted_fold ?prefix (fun name m acc ->
      match m with C c -> (name, c.count) :: acc | _ -> acc)

let gauges ?prefix () =
  sorted_fold ?prefix (fun name m acc ->
      match m with G g when g.g_set -> (name, g.gvalue) :: acc | _ -> acc)

let histograms ?prefix () =
  sorted_fold ?prefix (fun name m acc ->
      match m with H h -> (name, h) :: acc | _ -> acc)

let to_json ?prefix () =
  let counters =
    List.map (fun (name, v) -> (name, Json.Int v)) (counters ?prefix ())
  in
  let gauges =
    List.map (fun (name, v) -> (name, Json.Float v)) (gauges ?prefix ())
  in
  let histograms =
    List.map
      (fun (name, h) ->
        ( name,
          Json.Obj
            [
              ("limits", Json.List (Array.to_list h.limits |> List.map (fun l -> Json.Float l)));
              ("counts", Json.List (Array.to_list h.buckets |> List.map (fun c -> Json.Int c)));
              ("total", Json.Int h.total);
            ] ))
      (histograms ?prefix ())
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
    ]

(* --- snapshots -------------------------------------------------------- *)

type hist_state = { hs_limits : float array; hs_counts : int array; hs_total : int }

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_histograms : (string * hist_state) list;
}

let empty_snapshot = { snap_counters = []; snap_gauges = []; snap_histograms = [] }

let snapshot ?prefix () =
  {
    snap_counters = counters ?prefix ();
    snap_gauges = gauges ?prefix ();
    snap_histograms =
      List.map
        (fun (name, h) ->
          ( name,
            {
              hs_limits = Array.copy h.limits;
              hs_counts = Array.copy h.buckets;
              hs_total = h.total;
            } ))
        (histograms ?prefix ());
  }

(* Merge two sorted association lists, combining values under equal keys.
   Both inputs come from {!snapshot}, which sorts by name, so the merge is
   a linear zip and the result is again sorted — merging is associative
   and commutative as long as [combine] is. *)
let rec merge_assoc combine a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ka, va) :: ra, (kb, vb) :: rb ->
    if ka = kb then (ka, combine ka va vb) :: merge_assoc combine ra rb
    else if ka < kb then (ka, va) :: merge_assoc combine ra b
    else (kb, vb) :: merge_assoc combine a rb

let combine_hist name a b =
  if a.hs_limits <> b.hs_limits then
    invalid_arg
      (Printf.sprintf "Metrics.merge: histogram %S bucket limits disagree" name);
  {
    hs_limits = a.hs_limits;
    hs_counts = Array.mapi (fun i c -> c + b.hs_counts.(i)) a.hs_counts;
    hs_total = a.hs_total + b.hs_total;
  }

let merge a b =
  {
    snap_counters = merge_assoc (fun _ x y -> x + y) a.snap_counters b.snap_counters;
    snap_gauges = merge_assoc (fun _ x y -> Float.max x y) a.snap_gauges b.snap_gauges;
    snap_histograms = merge_assoc combine_hist a.snap_histograms b.snap_histograms;
  }

let delta ~before ~after =
  let d_counters =
    List.filter_map
      (fun (name, v) ->
        let v0 =
          Option.value (List.assoc_opt name before.snap_counters) ~default:0
        in
        if v = v0 then None else Some (name, v - v0))
      after.snap_counters
  in
  let d_gauges =
    List.filter
      (fun (name, v) ->
        match List.assoc_opt name before.snap_gauges with
        | Some v0 -> v <> v0
        | None -> true)
      after.snap_gauges
  in
  let d_histograms =
    List.filter_map
      (fun (name, hs) ->
        match List.assoc_opt name before.snap_histograms with
        | None -> if hs.hs_total = 0 then None else Some (name, hs)
        | Some hs0 ->
          if hs0.hs_limits <> hs.hs_limits then
            invalid_arg
              (Printf.sprintf "Metrics.delta: histogram %S bucket limits disagree"
                 name);
          let counts = Array.mapi (fun i c -> c - hs0.hs_counts.(i)) hs.hs_counts in
          let total = hs.hs_total - hs0.hs_total in
          if total = 0 && Array.for_all (( = ) 0) counts then None
          else
            Some (name, { hs_limits = hs.hs_limits; hs_counts = counts; hs_total = total }))
      after.snap_histograms
  in
  { snap_counters = d_counters; snap_gauges = d_gauges; snap_histograms = d_histograms }

let absorb s =
  List.iter (fun (name, v) -> add (counter name) v) s.snap_counters;
  List.iter (fun (name, v) -> max_gauge (gauge name) v) s.snap_gauges;
  List.iter
    (fun (name, hs) ->
      let h = histogram ~limits:hs.hs_limits name in
      if h.limits <> hs.hs_limits then
        invalid_arg
          (Printf.sprintf "Metrics.absorb: histogram %S bucket limits disagree" name);
      Array.iteri (fun i c -> h.buckets.(i) <- h.buckets.(i) + c) hs.hs_counts;
      h.total <- h.total + hs.hs_total)
    s.snap_histograms

let clear () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> c.count <- 0
      | G g ->
        g.gvalue <- 0.;
        g.g_set <- false
      | H h ->
        Array.fill h.buckets 0 (Array.length h.buckets) 0;
        h.total <- 0)
    registry
