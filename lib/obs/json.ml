type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing -------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Shortest representation that still round-trips, so equal floats always
   render identically (the manifest golden tests depend on this). *)
let float_repr x =
  if Float.is_nan x then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let to_string ?(indent = 0) t =
  let b = Buffer.create 256 in
  let pad level =
    if indent > 0 then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (indent * level) ' ')
    end
  in
  let rec go level = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float x -> Buffer.add_string b (float_repr x)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          pad (level + 1);
          go (level + 1) item)
        items;
      pad level;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          pad (level + 1);
          escape_string b k;
          Buffer.add_char b ':';
          if indent > 0 then Buffer.add_char b ' ';
          go (level + 1) v)
        fields;
      pad level;
      Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

(* --- parsing --------------------------------------------------------- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> error (Printf.sprintf "expected %c, got %c" c got)
    | None -> error (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else error (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then error "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char b '"'; advance ()
         | '\\' -> Buffer.add_char b '\\'; advance ()
         | '/' -> Buffer.add_char b '/'; advance ()
         | 'n' -> Buffer.add_char b '\n'; advance ()
         | 'r' -> Buffer.add_char b '\r'; advance ()
         | 't' -> Buffer.add_char b '\t'; advance ()
         | 'b' -> Buffer.add_char b '\b'; advance ()
         | 'f' -> Buffer.add_char b '\012'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then error "truncated \\u escape";
           let code =
             try int_of_string ("0x" ^ String.sub s !pos 4)
             with _ -> error "bad \\u escape"
           in
           pos := !pos + 4;
           (* The printer only emits \u for control characters; decode the
              BMP point as UTF-8 so foreign manifests at least round-trip. *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
           end
         | c -> error (Printf.sprintf "bad escape \\%c" c));
        loop ()
      | c ->
        Buffer.add_char b c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then error "invalid number";
    if !is_float then Float (float_of_string text)
    else match int_of_string_opt text with
      | Some v -> Int v
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)
  | exception Failure msg -> Error (Printf.sprintf "JSON parse error: %s" msg)

(* --- accessors ------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_int = function
  | Int n -> Some n
  | Float x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let to_float = function Float x -> Some x | Int n -> Some (float_of_int n) | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
