module Prng = Trg_util.Prng
module Trace = Trg_trace.Trace
module Event = Trg_trace.Event

type params = {
  seed : int;
  target_events : int;
  loop_scale : float;
  select_flip : float;
  call_dropout : float;
  max_depth : int;
}

let default_params =
  {
    seed = 1;
    target_events = 1_000_000;
    loop_scale = 1.0;
    select_flip = 0.;
    call_dropout = 0.;
    max_depth = 16;
  }

exception Budget_exhausted

(* Per-site selector state: a cursor for Round_robin/Blocked progress. *)
type select_state = { mutable cursor : int; pattern : Behavior.pattern }

let run_streaming program behavior params ~f =
  Behavior.validate_against program behavior;
  if params.target_events <= 0 then invalid_arg "Walker.run: target_events";
  let rng = Prng.create params.seed in
  let emitted = ref 0 in
  (* Pre-roll selector regimes for this input: some sites flip between the
     alternating and blocked worlds of the paper's Figure 1. *)
  let selects =
    Array.init behavior.Behavior.n_selects (fun _ -> ())
    |> Array.map (fun () -> None)
  in
  let select_state sid (pattern : Behavior.pattern) =
    match selects.(sid) with
    | Some st -> st
    | None ->
      let flipped =
        params.select_flip > 0. && Prng.bernoulli rng params.select_flip
      in
      let pattern =
        if not flipped then pattern
        else
          match pattern with
          | Behavior.Round_robin -> Behavior.Blocked (Prng.int_in rng 3 10)
          | Behavior.Blocked _ -> Behavior.Round_robin
          | Behavior.Weighted s -> Behavior.Weighted s
      in
      let st = { cursor = 0; pattern } in
      selects.(sid) <- Some st;
      st
  in
  let emit kind proc off len =
    if !emitted >= params.target_events then raise Budget_exhausted;
    incr emitted;
    f (Event.make ~kind ~proc ~offset:off ~len)
  in
  (* A zero draw means the loop body is skipped this time; scaling never
     turns a skip into an execution. *)
  let scale_loop n =
    if n = 0 then 0
    else max 1 (int_of_float (Float.round (float_of_int n *. params.loop_scale)))
  in
  let rec exec depth proc =
    (* [pending] is the kind of the next block we emit in this frame. *)
    let pending = ref Event.Enter in
    let rec stmts l = List.iter stmt l
    and stmt : Behavior.stmt -> unit = function
      | Behavior.Block { off; len } ->
        emit !pending proc off len;
        pending := Event.Run
      | Behavior.Call { callee; prob } ->
        if
          depth < params.max_depth
          && Prng.bernoulli rng prob
          && not (params.call_dropout > 0. && Prng.bernoulli rng params.call_dropout)
        then begin
          exec (depth + 1) callee;
          pending := Event.Resume
        end
      | Behavior.Loop { lo; hi; body } ->
        let n = scale_loop (Prng.int_in rng lo hi) in
        for _ = 1 to n do
          stmts body
        done
      | Behavior.Select { sid; callees; pattern } ->
        if depth < params.max_depth then begin
          let st = select_state sid pattern in
          let k = Array.length callees in
          let choice =
            match st.pattern with
            | Behavior.Round_robin ->
              let c = st.cursor mod k in
              st.cursor <- st.cursor + 1;
              callees.(c)
            | Behavior.Blocked run ->
              let c = st.cursor / run mod k in
              st.cursor <- st.cursor + 1;
              callees.(c)
            | Behavior.Weighted s ->
              callees.(Prng.zipf rng ~n:k ~s)
          in
          exec (depth + 1) choice;
          pending := Event.Resume
        end
    in
    stmts behavior.Behavior.bodies.(proc)
  in
  (try
     while true do
       let before = !emitted in
       exec 0 0;
       if !emitted = before then invalid_arg "Walker.run: main emitted no events"
     done
   with Budget_exhausted -> ());
  Trg_obs.Metrics.incr (Trg_obs.Metrics.counter "walker/runs");
  Trg_obs.Metrics.add (Trg_obs.Metrics.counter "walker/events") !emitted

let run program behavior params =
  let builder = Trace.Builder.create ~capacity:params.target_events () in
  run_streaming program behavior params ~f:(Trace.Builder.add builder);
  Trace.Builder.build builder
