(* Incremental conflict-cost engine for the placement search.

   The greedy merge loop (Gbsc / Merge_driver) spends almost all of its
   time recomputing Section 4.2 cost arrays from scratch: every merge
   walks every profile edge between the two nodes and charges each line
   pair.  But the cost array is linear in the edge weights, and a merge
   only composes two previously known alignments — so the pairwise cost
   arrays can be maintained incrementally.

   For two placement groups A and B, define

     D_{A,B}(i) = sum of w(a, b) over profile edges with a in A at
                  (mod-C) line l_a and b in B at line l_b such that
                  l_a = (l_b + i) mod C

   — exactly the array [Cost.offsets_cost] computes (its convention:
   [cost.((l1 - l2) mod C)]).  Two identities make deltas cheap:

   - reversal:     D_{B,A}(j)  = D_{A,B}((-j) mod C)
   - composition:  merging B into A at shift s (B's lines move to
                   (l + s) mod C) gives, for any third group W,
                   D_{A∪B,W}(i) = D_{A,W}(i) + D_{B,W}((i - s) mod C)

   so a merge re-costs only the C entries of each pair touching the
   absorbed group — O(degree × C) — instead of re-walking edges.

   Exactness: profile weights are event counts, i.e. integral floats.
   Sums of integral floats are exact (far below 2^53), so the composed
   arrays are bit-identical to from-scratch recomputation and the argmin
   (hence the layout) cannot drift.  Any non-integral charge poisons
   that guarantee; {!charge} records it and callers are expected to fall
   back to the full evaluator when {!exact} is false. *)

module Metrics = Trg_obs.Metrics

(* All [cost/incr/*] counters are flushed per operation (they are O(1)
   per merge, not per access), and combine by addition, so totals are
   jobs-invariant under the evaluation pool. *)
let m_seeded_pairs = Metrics.counter "cost/incr/seeded_pairs"
let m_queries = Metrics.counter "cost/incr/queries"
let m_merges = Metrics.counter "cost/incr/merges"
let m_deltas = Metrics.counter "cost/incr/deltas_applied"
let m_sets_recosted = Metrics.counter "cost/incr/sets_recosted"

(* Hot-path profile histograms, lazy so [prof/*] stays out of the
   registry (and out of manifests) unless [--profile] observed
   something. *)
let h_charge_us =
  lazy
    (Metrics.histogram ~limits:Trg_obs.Prof.us_limits "prof/incr/charge_us")

let h_apply_us =
  lazy (Metrics.histogram ~limits:Trg_obs.Prof.us_limits "prof/incr/apply_us")

type t = {
  n_sets : int;
  parent : (int, int) Hashtbl.t;  (* union-find over group ids *)
  pairs : (int * int, float array) Hashtbl.t;
      (* canonical (min root, max root) -> D array, oriented min-to-max *)
  adj : (int, (int, unit) Hashtbl.t) Hashtbl.t;  (* root -> neighbour roots *)
  mutable exact : bool;
  mutable frozen : bool;
}

let create ~n_sets =
  if n_sets <= 0 then invalid_arg "Incr.create: n_sets must be positive";
  {
    n_sets;
    parent = Hashtbl.create 256;
    pairs = Hashtbl.create 1024;
    adj = Hashtbl.create 256;
    exact = true;
    frozen = false;
  }

let n_sets t = t.n_sets

let exact t = t.exact

let register t p = if not (Hashtbl.mem t.parent p) then Hashtbl.replace t.parent p p

(* Path-compressing find; ids never seen before are singleton groups. *)
let rec find t p =
  match Hashtbl.find_opt t.parent p with
  | None ->
    Hashtbl.replace t.parent p p;
    p
  | Some q when q = p -> p
  | Some q ->
    let root = find t q in
    Hashtbl.replace t.parent p root;
    root

let key a b = if a < b then (a, b) else (b, a)

(* The stored array at key (a, b), a < b, is D_{a,b}: entry i is the
   weight charged when b sits i sets after a. *)
let reversed c d = Array.init c (fun i -> d.((c - i) mod c))

let adj_of t p =
  match Hashtbl.find_opt t.adj p with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 8 in
    Hashtbl.replace t.adj p h;
    h

let pair_array t p1 p2 =
  let k = key p1 p2 in
  match Hashtbl.find_opt t.pairs k with
  | Some d -> d
  | None ->
    let d = Array.make t.n_sets 0. in
    Hashtbl.replace t.pairs k d;
    Hashtbl.replace (adj_of t p1) p2 ();
    Hashtbl.replace (adj_of t p2) p1 ();
    Metrics.incr m_seeded_pairs;
    d

let charge t ~p1 ~p2 ~index w =
  if t.frozen then invalid_arg "Incr.charge: engine is frozen";
  if index < 0 || index >= t.n_sets then
    invalid_arg "Incr.charge: index out of range";
  (* Intra-group conflicts do not change with the offset (Section 4.2,
     note 2), exactly as the full evaluator never charges them. *)
  if p1 <> p2 && w <> 0. then begin
    if not (Float.is_integer w) then t.exact <- false;
    register t p1;
    register t p2;
    let d = pair_array t p1 p2 in
    let i = if p1 < p2 then index else (t.n_sets - index) mod t.n_sets in
    d.(i) <- d.(i) +. w
  end

let charge_block t ~p1 ~p2 f =
  if t.frozen then invalid_arg "Incr.charge_block: engine is frozen";
  if p1 <> p2 then begin
    let t0 =
      if Trg_obs.Prof.enabled () then Trg_util.Clock.monotonic () else 0.
    in
    register t p1;
    register t p2;
    let d = pair_array t p1 p2 in
    let c = t.n_sets in
    let flip = p1 > p2 in
    f (fun index w ->
        if w <> 0. then begin
          if not (Float.is_integer w) then t.exact <- false;
          let i = if flip then (c - index) mod c else index in
          d.(i) <- d.(i) +. w
        end);
    if Trg_obs.Prof.enabled () then
      Metrics.observe (Lazy.force h_charge_us)
        (1e6 *. (Trg_util.Clock.monotonic () -. t0))
  end

let freeze t = t.frozen <- true

let cost t ~fixed ~moving =
  Metrics.incr m_queries;
  let rf = find t fixed and rm = find t moving in
  if rf = rm then invalid_arg "Incr.cost: fixed and moving share a group";
  match Hashtbl.find_opt t.pairs (key rf rm) with
  | None -> Array.make t.n_sets 0.
  | Some d -> if rf < rm then Array.copy d else reversed t.n_sets d

let apply_merge t ~fixed ~moving ~shift =
  let t0 =
    if Trg_obs.Prof.enabled () then Trg_util.Clock.monotonic () else 0.
  in
  let c = t.n_sets in
  let rf = find t fixed and rm = find t moving in
  if rf = rm then invalid_arg "Incr.apply_merge: groups already merged";
  let s = ((shift mod c) + c) mod c in
  let neighbours =
    match Hashtbl.find_opt t.adj rm with
    | None -> []
    | Some h -> Hashtbl.fold (fun w () acc -> w :: acc) h []
  in
  List.iter
    (fun w ->
      if w <> rf then begin
        (* D_{rm,w}, removed from the table and oriented rm-to-w. *)
        let d_mw =
          match Hashtbl.find_opt t.pairs (key rm w) with
          | None -> assert false
          | Some d ->
            Hashtbl.remove t.pairs (key rm w);
            if rm < w then d else reversed c d
        in
        let target =
          match Hashtbl.find_opt t.pairs (key rf w) with
          | Some d -> d
          | None ->
            let d = Array.make c 0. in
            Hashtbl.replace t.pairs (key rf w) d;
            Hashtbl.replace (adj_of t rf) w ();
            Hashtbl.replace (adj_of t w) rf ();
            d
        in
        (* Composition: D_{Z,w}(i) += D_{rm,w}((i - s) mod C), written in
           the target's stored orientation. *)
        if rf < w then
          for i = 0 to c - 1 do
            target.(i) <- target.(i) +. d_mw.((i - s + c) mod c)
          done
        else
          (* target is D_{w,rf}: entry j corresponds to i = (-j) mod C. *)
          for j = 0 to c - 1 do
            target.(j) <- target.(j) +. d_mw.(((2 * c) - j - s) mod c)
          done;
        Hashtbl.remove (adj_of t w) rm;
        Metrics.incr m_deltas;
        Metrics.add m_sets_recosted c
      end)
    neighbours;
  Hashtbl.remove t.pairs (key rf rm);
  Hashtbl.remove (adj_of t rf) rm;
  Hashtbl.remove t.adj rm;
  Hashtbl.replace t.parent rm rf;
  Metrics.incr m_merges;
  if Trg_obs.Prof.enabled () then
    Metrics.observe (Lazy.force h_apply_us)
      (1e6 *. (Trg_util.Clock.monotonic () -. t0))
