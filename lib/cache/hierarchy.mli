(** Multi-level cache hierarchy simulation with per-level replacement
    policies and a per-access cycle-cost model.

    A hierarchy is an ordered list of levels (L1 first, up to L3 in the
    shipped CPU presets), each with its own geometry ({!Config.t}),
    replacement policy ({!Policy.kind}) and hit latency, backed by a
    memory latency.  Every L1 line reference probes L1; each level's
    misses probe the next level at that level's line granularity; a miss
    in the last level pays the memory latency.

    Each level also classifies its own misses with the 3C model (the
    same fully-associative LRU shadow divider as {!Attrib}, run over the
    reference stream that level actually sees), so
    [compulsory + capacity + conflict = misses] holds {e per level}.

    Results report estimated cycles alongside miss counts:
    [cycles = sum_i accesses_i * hit_cycles_i + last_misses * memory_cycles]
    and [amat = cycles / L1 accesses].

    Telemetry: [hier/simulations], [hier/cycles] and per-level
    [hier/l<i>/accesses] / [hier/l<i>/misses] counters, accumulated per
    run after the hot loop (jobs-invariant under the evaluation pool). *)

type level = {
  config : Config.t;
  policy : Policy.kind;
  hit_cycles : int;  (** latency charged per access to this level *)
}

type t = {
  levels : level list;  (** L1 first; at least one level *)
  memory_cycles : int;  (** latency charged per last-level miss *)
}

val make : levels:level list -> memory_cycles:int -> t
(** Validates the composition: at least one level, positive latencies,
    every policy expressible at its associativity, and each deeper
    level's line size a positive multiple of the previous level's.
    @raise Invalid_argument otherwise. *)

val level_label : level -> string
(** ["8KB/32B-line/1-way lru, 1 cyc"] — for table headers and docs. *)

type level_result = {
  level : level;
  accesses : int;  (** references reaching this level *)
  misses : int;
  evictions : int;  (** misses that displaced a resident line *)
  compulsory : int;
  capacity : int;
  conflict : int;  (** [compulsory + capacity + conflict = misses] *)
}

type result = {
  levels : level_result array;  (** one per configured level, L1 first *)
  cycles : int;  (** estimated total cycles for the trace *)
  amat : float;  (** [cycles / L1 accesses]; 0 for an empty trace *)
  events : int;  (** trace events processed *)
}

val simulate :
  Trg_program.Program.t -> Trg_program.Layout.t -> t -> Trg_trace.Trace.t -> result
(** Cold caches at every level.  Deterministic: equal inputs give equal
    results, bit for bit, whatever the process or job count. *)

val local_miss_rate : level_result -> float
(** [misses / accesses] of one level; 0 when the level saw no traffic. *)
