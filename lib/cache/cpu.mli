(** Named CPU cache-model presets.

    Each preset bundles a full {!Hierarchy.t} — per-level geometry,
    replacement policy and latency — under a stable name selectable from
    the command line ([--cpu]).  [alpha-21064] is the paper's machine;
    the others sanity-check the paper's layouts against later
    microarchitectures whose replacement policies (Tree-PLRU, QLRU) the
    policy engine models.  Latencies are round numbers for a load-to-use
    cost model, not datasheet promises; what matters for the experiments
    is that every preset is fixed, documented, and deterministic. *)

type t = {
  name : string;
  descr : string;  (** one line for tables and [--help] *)
  hier : Hierarchy.t;
}

val all : t list
(** Every shipped preset, in documentation order. *)

val names : string list
(** Preset names, for error messages and completion. *)

val find : string -> (t, string) result
(** Case-sensitive lookup; [Error] lists the valid names. *)

val default_selection : string list
(** The presets an experiment runs when [--cpu] is not given:
    ["alpha-21064"; "nehalem"; "skylake"]. *)
