type kind = Lru | Fifo | Mru | Plru | Qlru_h00 | Qlru_h11

let all = [ Lru; Fifo; Mru; Plru; Qlru_h00; Qlru_h11 ]

let to_string = function
  | Lru -> "lru"
  | Fifo -> "fifo"
  | Mru -> "mru"
  | Plru -> "plru"
  | Qlru_h00 -> "qlru-h00"
  | Qlru_h11 -> "qlru-h11"

let names = List.map to_string all

let of_string s =
  match List.find_opt (fun k -> to_string k = s) all with
  | Some k -> Ok k
  | None ->
    Error
      (Printf.sprintf "unknown replacement policy %S (choose from: %s)" s
         (String.concat ", " names))

let describe = function
  | Lru -> "true least-recently-used"
  | Fifo -> "first-in first-out (round-robin fill)"
  | Mru -> "evict the most recently used way"
  | Plru -> "tree pseudo-LRU (one direction bit per tree node)"
  | Qlru_h00 -> "quad-age LRU; a hit resets the age to 0"
  | Qlru_h11 -> "quad-age LRU; a hit takes age 3 to 1, others to 0"

let is_pow2 n = n > 0 && n land (n - 1) = 0

let validate kind ~assoc =
  if assoc < 1 then invalid_arg "Policy: associativity must be positive";
  match kind with
  | Plru when not (is_pow2 assoc) ->
    invalid_arg "Policy: Tree-PLRU requires power-of-two associativity"
  | _ -> ()

let log2 assoc =
  let rec go acc = function 1 -> acc | k -> go (acc + 1) (k / 2) in
  go 0 assoc

(* QLRU constants: lines are inserted at age 1; the victim is the
   leftmost way at age 3, renormalising every age upward first when no
   way is there.  Only the hit function differs between the variants. *)
let qlru_insert_age = 1

let qlru_max_age = 3

(* --- the optimized engine --------------------------------------------- *)

module Probe = struct
  type t = {
    kind : kind;
    n_sets : int;
    assoc : int;
    levels : int;  (* log2 assoc, for the PLRU tree walk *)
    tags : int array;  (* n_sets * assoc, way-indexed; -1 = invalid *)
    state : int array;
        (* per-set policy state: recency ranks (LRU/MRU), the
           round-robin pointer (FIFO), heap-indexed tree direction bits
           (PLRU, slots 1..assoc-1) or two-bit ages (QLRU) *)
  }

  let create kind ~n_sets ~assoc =
    validate kind ~assoc;
    if n_sets < 1 then invalid_arg "Policy.Probe.create: n_sets must be positive";
    let state =
      match kind with
      | Fifo -> Array.make n_sets 0
      | Lru | Mru ->
        (* Rank w for way w: cold ways are a permutation from the start;
           which cold rank a way holds never matters because invalid
           ways fill first. *)
        Array.init (n_sets * assoc) (fun i -> i mod assoc)
      | Plru | Qlru_h00 | Qlru_h11 -> Array.make (n_sets * assoc) 0
    in
    {
      kind;
      n_sets;
      assoc;
      levels = log2 assoc;
      tags = Array.make (n_sets * assoc) (-1);
      state;
    }

  (* Promote way [w] to rank 0, shifting every fresher rank down one. *)
  let rank_promote t base w =
    let r = t.state.(base + w) in
    for w' = 0 to t.assoc - 1 do
      if t.state.(base + w') < r then t.state.(base + w') <- t.state.(base + w') + 1
    done;
    t.state.(base + w) <- 0

  let rank_find t base rank =
    let way = ref 0 in
    for w = 0 to t.assoc - 1 do
      if t.state.(base + w) = rank then way := w
    done;
    !way

  (* PLRU tree walk: set every bit on the path to [w] to point away from
     it (bit = 1 means "go to the high-way subtree"). *)
  let plru_touch t base w =
    let node = ref 1 in
    for level = t.levels - 1 downto 0 do
      let dir = (w lsr level) land 1 in
      t.state.(base + !node) <- (if dir = 0 then 1 else 0);
      node := (2 * !node) + dir
    done

  let plru_victim t base =
    let node = ref 1 in
    let way = ref 0 in
    for _ = 1 to t.levels do
      let dir = t.state.(base + !node) in
      way := (2 * !way) + dir;
      node := (2 * !node) + dir
    done;
    !way

  let qlru_victim t base =
    let max_age = ref 0 in
    for w = 0 to t.assoc - 1 do
      if t.state.(base + w) > !max_age then max_age := t.state.(base + w)
    done;
    if !max_age < qlru_max_age then begin
      let bump = qlru_max_age - !max_age in
      for w = 0 to t.assoc - 1 do
        t.state.(base + w) <- t.state.(base + w) + bump
      done
    end;
    let way = ref (-1) in
    for w = t.assoc - 1 downto 0 do
      if t.state.(base + w) = qlru_max_age then way := w
    done;
    !way

  let touch t base w =
    match t.kind with
    | Lru | Mru -> rank_promote t base w
    | Fifo -> ()
    | Plru -> plru_touch t base w
    | Qlru_h00 -> t.state.(base + w) <- 0
    | Qlru_h11 ->
      t.state.(base + w) <-
        (if t.state.(base + w) = qlru_max_age then 1 else 0)

  let victim t set base =
    match t.kind with
    | Lru -> rank_find t base (t.assoc - 1)
    | Mru -> rank_find t base 0
    | Fifo -> t.state.(set)
    | Plru -> plru_victim t base
    | Qlru_h00 | Qlru_h11 -> qlru_victim t base

  let fill t set base w =
    match t.kind with
    | Lru | Mru -> rank_promote t base w
    | Fifo -> t.state.(set) <- (w + 1) mod t.assoc
    | Plru -> plru_touch t base w
    | Qlru_h00 | Qlru_h11 -> t.state.(base + w) <- qlru_insert_age

  let access t la =
    let set = la mod t.n_sets in
    let base = set * t.assoc in
    let way = ref (-1) in
    (try
       for w = 0 to t.assoc - 1 do
         if t.tags.(base + w) = la then begin
           way := w;
           raise Exit
         end
       done
     with Exit -> ());
    if !way >= 0 then begin
      touch t base !way;
      -2
    end
    else begin
      (* Valid-first fill: the lowest-numbered invalid way, if any,
         before the policy is consulted for a victim. *)
      let invalid = ref (-1) in
      (try
         for w = 0 to t.assoc - 1 do
           if t.tags.(base + w) < 0 then begin
             invalid := w;
             raise Exit
           end
         done
       with Exit -> ());
      let w = if !invalid >= 0 then !invalid else victim t set base in
      let old = t.tags.(base + w) in
      t.tags.(base + w) <- la;
      fill t set base w;
      old
    end

  let hit code = code = -2
end

(* --- brute-force references (tests only) ------------------------------- *)

module Reference = struct
  (* One record per set, everything as explicit lists; clarity over
     speed throughout — this model exists to be obviously correct. *)
  type set_state = {
    mutable recency : int list;  (* tags, most recent first (LRU/MRU) *)
    mutable queue : int list;  (* tags in fill order, oldest first (FIFO) *)
    mutable ways : int list;  (* way-indexed tags, -1 = invalid *)
    mutable bits : bool list;  (* PLRU tree nodes 1..assoc-1 *)
    mutable ages : (int * int) list;  (* way-ordered (tag, age) (QLRU) *)
  }

  type t = { kind : kind; n_sets : int; assoc : int; sets : set_state array }

  let create kind ~n_sets ~assoc =
    validate kind ~assoc;
    if n_sets < 1 then
      invalid_arg "Policy.Reference.create: n_sets must be positive";
    {
      kind;
      n_sets;
      assoc;
      sets =
        Array.init n_sets (fun _ ->
            {
              recency = [];
              queue = [];
              ways = List.init assoc (fun _ -> -1);
              bits = List.init (max 0 (assoc - 1)) (fun _ -> false);
              ages = [];
            });
    }

  let nth_replace l i v = List.mapi (fun j x -> if j = i then v else x) l

  let index_of x l =
    let rec go i = function
      | [] -> None
      | y :: _ when y = x -> Some i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 l

  (* LRU / MRU on an explicit recency list. *)
  let access_recency ~mru t s la =
    if List.mem la s.recency then begin
      s.recency <- la :: List.filter (fun x -> x <> la) s.recency;
      -2
    end
    else if List.length s.recency < t.assoc then begin
      s.recency <- la :: s.recency;
      -1
    end
    else begin
      let victim =
        if mru then List.hd s.recency else List.nth s.recency (t.assoc - 1)
      in
      s.recency <- la :: List.filter (fun x -> x <> victim) s.recency;
      victim
    end

  let access_fifo t s la =
    if List.mem la s.queue then -2
    else if List.length s.queue < t.assoc then begin
      s.queue <- s.queue @ [ la ];
      -1
    end
    else begin
      let victim = List.hd s.queue in
      s.queue <- List.tl s.queue @ [ la ];
      victim
    end

  (* PLRU over an explicit node list: node i of the heap-indexed tree
     lives at list position i - 1. *)
  let plru_point_away t s way =
    let levels = log2 t.assoc in
    let node = ref 1 in
    for level = levels - 1 downto 0 do
      let dir = (way lsr level) land 1 in
      s.bits <- nth_replace s.bits (!node - 1) (dir = 0);
      node := (2 * !node) + dir
    done

  let plru_follow t s =
    let levels = log2 t.assoc in
    let node = ref 1 in
    let way = ref 0 in
    for _ = 1 to levels do
      let dir = if List.nth s.bits (!node - 1) then 1 else 0 in
      way := (2 * !way) + dir;
      node := (2 * !node) + dir
    done;
    !way

  let access_plru t s la =
    match index_of la s.ways with
    | Some way ->
      plru_point_away t s way;
      -2
    | None ->
      let way =
        match index_of (-1) s.ways with
        | Some w -> w
        | None -> plru_follow t s
      in
      let old = List.nth s.ways way in
      s.ways <- nth_replace s.ways way la;
      plru_point_away t s way;
      old

  let access_qlru ~on_hit t s la =
    match index_of la (List.map fst s.ages) with
    | Some way ->
      let _, age = List.nth s.ages way in
      s.ages <- nth_replace s.ages way (la, on_hit age);
      -2
    | None when List.length s.ages < t.assoc ->
      s.ages <- s.ages @ [ (la, qlru_insert_age) ];
      -1
    | None ->
      let ages =
        let max_age = List.fold_left (fun m (_, a) -> max m a) 0 s.ages in
        if max_age < qlru_max_age then
          List.map (fun (tag, a) -> (tag, a + qlru_max_age - max_age)) s.ages
        else s.ages
      in
      let way =
        match index_of qlru_max_age (List.map snd ages) with
        | Some w -> w
        | None -> assert false
      in
      let victim, _ = List.nth ages way in
      s.ages <- nth_replace ages way (la, qlru_insert_age);
      victim

  let access t la =
    let s = t.sets.(la mod t.n_sets) in
    match t.kind with
    | Lru -> access_recency ~mru:false t s la
    | Mru -> access_recency ~mru:true t s la
    | Fifo -> access_fifo t s la
    | Plru -> access_plru t s la
    | Qlru_h00 -> access_qlru ~on_hit:(fun _ -> 0) t s la
    | Qlru_h11 ->
      access_qlru ~on_hit:(fun age -> if age = qlru_max_age then 1 else 0) t s la
end
