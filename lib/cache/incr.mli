(** Incremental conflict-cost engine for the placement search.

    Maintains, for every pair of placement groups, the Section 4.2 cost
    array [D(i)] (the conflict weight of holding one group fixed and
    shifting the other by [i] cache sets) so that the greedy merge loop
    can query a cost array in O(C) and fold a merge into the state in
    O(degree × C), instead of re-walking profile edges on every step.

    Groups are identified by integer ids (procedure ids, in practice)
    under an internal union-find; after [apply_merge ~fixed ~moving] any
    member id of the merged group resolves to the same group.

    {b Exactness.}  Charges are summed as floats in a different order
    than a from-scratch recomputation would use; the results are still
    {e bit-identical} when every charged weight is an integral float
    (profile weights are event counts), because integral-float sums are
    exact.  A non-integral charge clears {!exact}; callers must then
    fall back to the full evaluator ({!Trg_place.Cost.offsets_cost}) —
    see [trgplace --cost-engine].

    Feeds the [cost/incr/*] telemetry counters: [seeded_pairs],
    [queries], [merges], [deltas_applied] and [sets_recosted]. *)

type t

val create : n_sets:int -> t
(** An empty engine over a cache of [n_sets] sets.  Raises
    [Invalid_argument] when [n_sets <= 0]. *)

val charge : t -> p1:int -> p2:int -> index:int -> float -> unit
(** [charge t ~p1 ~p2 ~index w] adds [w] at offset [index] of the pair
    array oriented p1-to-p2 — [index] is [(l1 - l2) mod n_sets] for a
    profile edge between a line [l1] of [p1] and a line [l2] of [p2],
    both at their seed position (offset 0), matching
    {!Trg_place.Cost.offsets_cost}'s convention.  Charges with [p1 = p2]
    or [w = 0.] are ignored.  Only valid before {!freeze}. *)

val charge_block : t -> p1:int -> p2:int -> ((int -> float -> unit) -> unit) -> unit
(** [charge_block t ~p1 ~p2 f] is the bulk form of {!charge}: the pair
    array is resolved once, then [f add] may call [add index w] any
    number of times at per-array-write cost.  Semantically identical to
    calling {!charge} for each [(index, w)]; seeding loops that charge
    every line pair of one profile edge should use this.  A block with
    [p1 = p2] is ignored ([f] is not called). *)

val freeze : t -> unit
(** Ends the seeding phase; further {!charge}s raise. *)

val exact : t -> bool
(** Whether every charge so far was an integral float — the
    bit-identity guarantee holds only when this is [true]. *)

val n_sets : t -> int

val find : t -> int -> int
(** Current group root of an id (ids never seen are singletons). *)

val cost : t -> fixed:int -> moving:int -> float array
(** [cost t ~fixed ~moving] is the length-[n_sets] cost array of
    shifting [moving]'s group relative to [fixed]'s group — equal, entry
    for entry, to [Cost.offsets_cost] over the same two nodes.  The two
    ids must belong to different groups.  The returned array is fresh. *)

val apply_merge : t -> fixed:int -> moving:int -> shift:int -> unit
(** Folds the merge of [moving]'s group into [fixed]'s group at relative
    offset [shift] (the one chosen from {!cost}'s array, i.e. the same
    [shift] passed to [Node.union ~shift]) into the engine state.  The
    two ids must belong to different groups. *)
