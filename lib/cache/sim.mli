(** Trace-driven instruction-cache simulation.

    Given a layout (procedure addresses) and a trace (byte ranges executed),
    the simulator probes every cache line the program would fetch, in
    program order, and counts misses.  This is the measurement device behind
    all of the paper's reported miss rates.

    Every simulation also feeds the [sim/*] telemetry counters
    ({!Trg_obs.Metrics}): [sim/simulations], [sim/accesses], [sim/misses]
    and [sim/evictions] for the L1 scoreboard; [sim/l2/accesses],
    [sim/l2/misses] and [sim/l2/evictions] for {!simulate_hierarchy}'s
    second level; and [sim/page/accesses] / [sim/page/faults] for
    {!paging}.  All four simulate entry points ({!simulate},
    {!simulate_plru}, {!simulate_hierarchy}, {!paging}) feed this
    namespace.  Counts are accumulated per run after the hot loop, so the
    instrumentation costs nothing per access. *)

type result = {
  accesses : int;  (** number of line references *)
  misses : int;
  evictions : int;  (** misses that displaced a resident line *)
  events : int;  (** number of trace events processed *)
}

val miss_rate : result -> float
(** [misses / accesses]; 0 for an empty trace. *)

val simulate :
  ?policy:Policy.kind ->
  Trg_program.Program.t ->
  Trg_program.Layout.t ->
  Config.t ->
  Trg_trace.Trace.t ->
  result
(** Simulates with a cold cache.  Direct-mapped configurations use a fast
    tag-array path (every policy coincides at one way); associative
    configurations default to true-LRU replacement on the historical
    specialised loop, and any other [policy] runs the generic
    {!Policy.Probe} engine — proven bit-identical to the naive reference
    models by the policy differential wall.
    @raise Invalid_argument for policy/associativity combinations the
    policy cannot express (Tree-PLRU needs power-of-two ways). *)

val simulate_flat :
  ?policy:Policy.kind ->
  Trg_program.Program.t ->
  Trg_program.Layout.t ->
  Config.t ->
  Trg_trace.Trace.Flat.t ->
  result
(** Exactly {!simulate} — same probe logic, same [sim/*] telemetry, same
    counts for equal event sequences — streaming a flat trace with zero
    per-event allocation.  The repeated-simulation hot path (evaluation
    runner, benchmarks) should prefer this entry point. *)

val simulate_plru :
  Trg_program.Program.t ->
  Trg_program.Layout.t ->
  Config.t ->
  Trg_trace.Trace.t ->
  result
(** [simulate ~policy:Policy.Plru]: tree-based pseudo-LRU replacement, the
    policy most real set-associative I-caches implement instead of true
    LRU.  Requires power-of-two associativity.  With [assoc = 1] it
    coincides with {!simulate}. *)

val distinct_lines :
  Trg_program.Program.t ->
  Trg_program.Layout.t ->
  Config.t ->
  Trg_trace.Trace.t ->
  int
(** Number of distinct memory line addresses touched by the trace — the
    compulsory-miss floor for any cache with this line size. *)

type hierarchy_result = {
  l1 : result;
  l2 : result;  (** accesses = L1 misses; misses = fills from memory *)
  amat : float;
      (** average access time per L1 reference with the conventional
          1 / 10 / 100 cycle latencies for L1 hit / L2 hit / memory *)
}

val simulate_hierarchy :
  Trg_program.Program.t ->
  Trg_program.Layout.t ->
  l1:Config.t ->
  l2:Config.t ->
  Trg_trace.Trace.t ->
  hierarchy_result
(** Two-level instruction hierarchy: every L1 line miss probes L2 at L2's
    line granularity ([l2.line_size] must be a multiple of
    [l1.line_size]).  The paper's conclusion points at exactly this
    direction — layout effects on "other layers of the memory
    hierarchy". *)

type page_result = {
  page_accesses : int;  (** page references (one per event page touched) *)
  page_faults : int;  (** LRU faults with the given number of frames *)
  pages_touched : int;  (** distinct pages referenced *)
}

val paging :
  Trg_program.Program.t ->
  Trg_program.Layout.t ->
  page_size:int ->
  frames:int ->
  Trg_trace.Trace.t ->
  page_result
(** Code-paging behaviour of a layout: every event charges the pages its
    byte range spans against an LRU-managed resident set of [frames]
    physical pages.  Used by the Section 4.3 page-locality experiment. *)
