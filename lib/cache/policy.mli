(** Cache replacement policies behind one per-set interface.

    A policy owns the per-set replacement state of a set-associative
    cache and exposes the three operations a simulator needs:

    - [touch]: an access hit way [w] — update recency/age state;
    - [victim]: the set is full and a line must go — pick the way;
    - [fill]: a miss installed a line into way [w] — record insertion.

    Shipped policies: true LRU, FIFO, MRU (evict the most recent), the
    Tree-PLRU most real L1 I-caches implement, and two QLRU ("quad-age
    LRU") variants in the style of the reverse-engineered Intel L2/L3
    policies — two age bits per line, victim is the leftmost way at age
    3, ages renormalise upward when no way is at 3:

    - [Qlru_h00]: a hit resets the line's age to 0;
    - [Qlru_h11]: a hit takes age 3 to 1 and any other age to 0.

    Both insert missed lines at age 1.

    All policies share one validity rule: a miss fills the
    lowest-numbered invalid way before the policy is ever asked for a
    victim (hardware checks valid bits the same way).  Under this rule
    Tree-PLRU is exactly LRU at associativity <= 2 — an identity the
    test wall pins.

    {!Probe} is the optimized engine used by simulation; {!Reference}
    re-implements every policy with deliberately naive list scans
    (explicit recency lists, age association lists, tree walks) and
    exists only so tests can prove the engine bit-identical to an
    obviously-correct model. *)

type kind = Lru | Fifo | Mru | Plru | Qlru_h00 | Qlru_h11

val all : kind list
(** Every shipped policy, in documentation order. *)

val to_string : kind -> string
(** CLI/manifest name: ["lru"], ["fifo"], ["mru"], ["plru"],
    ["qlru-h00"], ["qlru-h11"]. *)

val of_string : string -> (kind, string) result
(** Inverse of {!to_string}; the error names the valid choices. *)

val names : string list
(** [List.map to_string all]. *)

val describe : kind -> string
(** One-line human description (README/help text). *)

val validate : kind -> assoc:int -> unit
(** Raises [Invalid_argument] for configurations the policy cannot
    express: Tree-PLRU requires power-of-two associativity. *)

(** The optimized engine: one instance simulates a whole cache
    (tags + per-set policy state in flat int arrays, no per-access
    allocation). *)
module Probe : sig
  type t

  val create : kind -> n_sets:int -> assoc:int -> t
  (** Cold cache.  Validates the policy/associativity combination. *)

  val access : t -> int -> int
  (** [access t la] references line address [la] and returns:
      [-2] for a hit; otherwise the previous tag of the filled way —
      [-1] when an invalid way was filled, or the evicted line's
      address ([>= 0]) when a resident line was displaced. *)

  val hit : int -> bool
  (** [hit (access t la)] — true on the [-2] code. *)
end

(** Brute-force reference implementations, used only by tests.  Same
    [access] contract and return coding as {!Probe.access}, computed
    from explicit per-set lists: recency-ordered tag lists (LRU/MRU),
    fill-order queues (FIFO), a walked list of tree nodes (Tree-PLRU)
    and [(tag, age)] association lists (QLRU). *)
module Reference : sig
  type t

  val create : kind -> n_sets:int -> assoc:int -> t

  val access : t -> int -> int
end
