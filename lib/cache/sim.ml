module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Trace = Trg_trace.Trace
module Event = Trg_trace.Event

type result = { accesses : int; misses : int; evictions : int; events : int }

let miss_rate r = if r.accesses = 0 then 0. else float_of_int r.misses /. float_of_int r.accesses

(* Per-run telemetry; flushed from per-run totals, never from the probe
   loops themselves. *)
let m_simulations = Trg_obs.Metrics.counter "sim/simulations"
let m_accesses = Trg_obs.Metrics.counter "sim/accesses"
let m_misses = Trg_obs.Metrics.counter "sim/misses"
let m_evictions = Trg_obs.Metrics.counter "sim/evictions"

let record r =
  Trg_obs.Metrics.incr m_simulations;
  Trg_obs.Metrics.add m_accesses r.accesses;
  Trg_obs.Metrics.add m_misses r.misses;
  Trg_obs.Metrics.add m_evictions r.evictions;
  r

(* L2 traffic is namespaced apart from the L1 scoreboard so sim/accesses
   keeps meaning "L1 probes" whether or not a hierarchy is simulated. *)
let m_l2_accesses = Trg_obs.Metrics.counter "sim/l2/accesses"
let m_l2_misses = Trg_obs.Metrics.counter "sim/l2/misses"
let m_l2_evictions = Trg_obs.Metrics.counter "sim/l2/evictions"

let record_l2 r =
  Trg_obs.Metrics.add m_l2_accesses r.accesses;
  Trg_obs.Metrics.add m_l2_misses r.misses;
  Trg_obs.Metrics.add m_l2_evictions r.evictions;
  r

(* Direct-mapped: one tag per line, tag = memory line address. *)
let simulate_direct addr (config : Config.t) trace =
  let n_lines = Config.n_lines config in
  let line_size = config.line_size in
  let tags = Array.make n_lines (-1) in
  let accesses = ref 0 and misses = ref 0 and evictions = ref 0 in
  Trace.iter
    (fun (e : Event.t) ->
      let base = addr.(e.proc) + e.offset in
      let first = base / line_size and last = (base + e.len - 1) / line_size in
      for la = first to last do
        incr accesses;
        let idx = la mod n_lines in
        if tags.(idx) <> la then begin
          incr misses;
          if tags.(idx) >= 0 then incr evictions;
          tags.(idx) <- la
        end
      done)
    trace;
  {
    accesses = !accesses;
    misses = !misses;
    evictions = !evictions;
    events = Trace.length trace;
  }

(* Set-associative with true LRU: each set is a slice of [tags] kept in
   most-recently-used-first order. *)
let simulate_assoc addr (config : Config.t) trace =
  let n_sets = Config.n_sets config in
  let assoc = config.assoc in
  let line_size = config.line_size in
  let tags = Array.make (n_sets * assoc) (-1) in
  let accesses = ref 0 and misses = ref 0 and evictions = ref 0 in
  Trace.iter
    (fun (e : Event.t) ->
      let base = addr.(e.proc) + e.offset in
      let first = base / line_size and last = (base + e.len - 1) / line_size in
      for la = first to last do
        incr accesses;
        let set = la mod n_sets in
        let start = set * assoc in
        (* Find the way holding [la], if any. *)
        let way = ref (-1) in
        (try
           for w = 0 to assoc - 1 do
             if tags.(start + w) = la then begin
               way := w;
               raise Exit
             end
           done
         with Exit -> ());
        let hit_way =
          if !way >= 0 then !way
          else begin
            incr misses;
            (* victim: least recently used, at the back *)
            if tags.(start + assoc - 1) >= 0 then incr evictions;
            assoc - 1
          end
        in
        (* Move to front. *)
        for w = hit_way downto 1 do
          tags.(start + w) <- tags.(start + w - 1)
        done;
        tags.(start) <- la
      done)
    trace;
  {
    accesses = !accesses;
    misses = !misses;
    evictions = !evictions;
    events = Trace.length trace;
  }

(* Generic policy engine over event-array traces: any {!Policy.kind}
   through {!Policy.Probe}.  The direct-mapped and true-LRU
   configurations never come here — they keep the specialised loops
   above, bit-identical to the pre-policy simulator. *)
let simulate_policy policy (config : Config.t) addr trace =
  let probe =
    Policy.Probe.create policy ~n_sets:(Config.n_sets config) ~assoc:config.assoc
  in
  let line_size = config.line_size in
  let accesses = ref 0 and misses = ref 0 and evictions = ref 0 in
  Trace.iter
    (fun (e : Event.t) ->
      let base = addr.(e.proc) + e.offset in
      let first = base / line_size and last = (base + e.len - 1) / line_size in
      for la = first to last do
        incr accesses;
        let code = Policy.Probe.access probe la in
        if not (Policy.Probe.hit code) then begin
          incr misses;
          if code >= 0 then incr evictions
        end
      done)
    trace;
  {
    accesses = !accesses;
    misses = !misses;
    evictions = !evictions;
    events = Trace.length trace;
  }

let simulate ?(policy = Policy.Lru) program layout config trace =
  Policy.validate policy ~assoc:config.Config.assoc;
  let n = Program.n_procs program in
  let addr = Array.init n (Layout.address layout) in
  record
    (if config.Config.assoc = 1 then simulate_direct addr config trace
     else
       match policy with
       | Policy.Lru -> simulate_assoc addr config trace
       | p -> simulate_policy p config addr trace)

(* Flat-trace twins of the two probe loops above: identical cache logic,
   but streaming packed words out of the Bigarray with the [Event.packed_*]
   accessors, so the hot loop allocates nothing per event. *)
let simulate_direct_flat addr (config : Config.t) flat =
  let n_lines = Config.n_lines config in
  let line_size = config.line_size in
  let tags = Array.make n_lines (-1) in
  let accesses = ref 0 and misses = ref 0 and evictions = ref 0 in
  let n = Trace.Flat.length flat in
  for i = 0 to n - 1 do
    let w = Trace.Flat.get_packed flat i in
    let base = addr.(Event.packed_proc w) + Event.packed_offset w in
    let first = base / line_size
    and last = (base + Event.packed_len w - 1) / line_size in
    for la = first to last do
      incr accesses;
      let idx = la mod n_lines in
      if tags.(idx) <> la then begin
        incr misses;
        if tags.(idx) >= 0 then incr evictions;
        tags.(idx) <- la
      end
    done
  done;
  { accesses = !accesses; misses = !misses; evictions = !evictions; events = n }

let simulate_assoc_flat addr (config : Config.t) flat =
  let n_sets = Config.n_sets config in
  let assoc = config.assoc in
  let line_size = config.line_size in
  let tags = Array.make (n_sets * assoc) (-1) in
  let accesses = ref 0 and misses = ref 0 and evictions = ref 0 in
  let n = Trace.Flat.length flat in
  for i = 0 to n - 1 do
    let word = Trace.Flat.get_packed flat i in
    let base = addr.(Event.packed_proc word) + Event.packed_offset word in
    let first = base / line_size
    and last = (base + Event.packed_len word - 1) / line_size in
    for la = first to last do
      incr accesses;
      let set = la mod n_sets in
      let start = set * assoc in
      let way = ref (-1) in
      (try
         for w = 0 to assoc - 1 do
           if tags.(start + w) = la then begin
             way := w;
             raise Exit
           end
         done
       with Exit -> ());
      let hit_way =
        if !way >= 0 then !way
        else begin
          incr misses;
          if tags.(start + assoc - 1) >= 0 then incr evictions;
          assoc - 1
        end
      in
      for w = hit_way downto 1 do
        tags.(start + w) <- tags.(start + w - 1)
      done;
      tags.(start) <- la
    done
  done;
  { accesses = !accesses; misses = !misses; evictions = !evictions; events = n }

(* Flat-trace twin of [simulate_policy]. *)
let simulate_policy_flat policy (config : Config.t) addr flat =
  let probe =
    Policy.Probe.create policy ~n_sets:(Config.n_sets config) ~assoc:config.assoc
  in
  let line_size = config.line_size in
  let accesses = ref 0 and misses = ref 0 and evictions = ref 0 in
  let n = Trace.Flat.length flat in
  for i = 0 to n - 1 do
    let w = Trace.Flat.get_packed flat i in
    let base = addr.(Event.packed_proc w) + Event.packed_offset w in
    let first = base / line_size
    and last = (base + Event.packed_len w - 1) / line_size in
    for la = first to last do
      incr accesses;
      let code = Policy.Probe.access probe la in
      if not (Policy.Probe.hit code) then begin
        incr misses;
        if code >= 0 then incr evictions
      end
    done
  done;
  { accesses = !accesses; misses = !misses; evictions = !evictions; events = n }

let simulate_flat ?(policy = Policy.Lru) program layout config flat =
  Policy.validate policy ~assoc:config.Config.assoc;
  let n = Program.n_procs program in
  let addr = Array.init n (Layout.address layout) in
  record
    (if config.Config.assoc = 1 then simulate_direct_flat addr config flat
     else
       match policy with
       | Policy.Lru -> simulate_assoc_flat addr config flat
       | p -> simulate_policy_flat p config addr flat)

(* Tree-PLRU, now one instance of the policy engine (same direction-bit
   tree it always simulated, shared with {!Policy.Probe}). *)
let simulate_plru program layout (config : Config.t) trace =
  if config.Config.assoc land (config.Config.assoc - 1) <> 0 then
    invalid_arg "Sim.simulate_plru: associativity must be a power of two";
  simulate ~policy:Policy.Plru program layout config trace

type hierarchy_result = { l1 : result; l2 : result; amat : float }

(* A reusable single-cache probe function over line addresses; displaced
   resident lines are tallied in [evicted]. *)
let make_probe (config : Config.t) ~evicted =
  let n_sets = Config.n_sets config in
  let assoc = config.assoc in
  let tags = Array.make (n_sets * assoc) (-1) in
  fun la ->
    let set = la mod n_sets in
    let start = set * assoc in
    let way = ref (-1) in
    (try
       for w = 0 to assoc - 1 do
         if tags.(start + w) = la then begin
           way := w;
           raise Exit
         end
       done
     with Exit -> ());
    let hit = !way >= 0 in
    let from_way = if hit then !way else assoc - 1 in
    if (not hit) && tags.(start + assoc - 1) >= 0 then incr evicted;
    for w = from_way downto 1 do
      tags.(start + w) <- tags.(start + w - 1)
    done;
    tags.(start) <- la;
    hit

let simulate_hierarchy program layout ~(l1 : Config.t) ~(l2 : Config.t) trace =
  if l2.line_size mod l1.line_size <> 0 then
    invalid_arg "Sim.simulate_hierarchy: L2 line size must be a multiple of L1's";
  let n = Program.n_procs program in
  let addr = Array.init n (Layout.address layout) in
  let e1 = ref 0 and e2 = ref 0 in
  let probe1 = make_probe l1 ~evicted:e1 and probe2 = make_probe l2 ~evicted:e2 in
  let ratio = l2.line_size / l1.line_size in
  let a1 = ref 0 and m1 = ref 0 and a2 = ref 0 and m2 = ref 0 in
  Trace.iter
    (fun (e : Event.t) ->
      let base = addr.(e.proc) + e.offset in
      let first = base / l1.line_size and last = (base + e.len - 1) / l1.line_size in
      for la = first to last do
        incr a1;
        if not (probe1 la) then begin
          incr m1;
          incr a2;
          if not (probe2 (la / ratio)) then incr m2
        end
      done)
    trace;
  let l1r =
    record
      { accesses = !a1; misses = !m1; evictions = !e1; events = Trace.length trace }
  in
  let l2r =
    record_l2
      { accesses = !a2; misses = !m2; evictions = !e2; events = Trace.length trace }
  in
  let amat =
    if !a1 = 0 then 0.
    else
      (float_of_int !a1 +. (10. *. float_of_int !m1) +. (90. *. float_of_int !m2))
      /. float_of_int !a1
  in
  { l1 = l1r; l2 = l2r; amat }

type page_result = { page_accesses : int; page_faults : int; pages_touched : int }

(* Exact LRU over pages: a doubly-linked recency list indexed by page id. *)
let paging program layout ~page_size ~frames trace =
  if page_size <= 0 || frames <= 0 then
    invalid_arg "Sim.paging: page_size and frames must be positive";
  let n = Program.n_procs program in
  let addr = Array.init n (Layout.address layout) in
  let n_pages = (Layout.span layout / page_size) + 2 in
  (* prev/next chain over resident pages; -1 = nil. *)
  let prev = Array.make n_pages (-1) and next = Array.make n_pages (-1) in
  let resident = Array.make n_pages false in
  let head = ref (-1) (* most recent *) and tail = ref (-1) (* least recent *) in
  let count = ref 0 in
  let unlink p =
    (match prev.(p) with -1 -> head := next.(p) | q -> next.(q) <- next.(p));
    (match next.(p) with -1 -> tail := prev.(p) | q -> prev.(q) <- prev.(p));
    prev.(p) <- -1;
    next.(p) <- -1
  in
  let push_front p =
    prev.(p) <- -1;
    next.(p) <- !head;
    (match !head with -1 -> tail := p | h -> prev.(h) <- p);
    head := p
  in
  let accesses = ref 0 and faults = ref 0 in
  let touched = Hashtbl.create 256 in
  Trace.iter
    (fun (e : Event.t) ->
      let base = addr.(e.proc) + e.offset in
      let first = base / page_size and last = (base + e.len - 1) / page_size in
      for p = first to last do
        incr accesses;
        if not (Hashtbl.mem touched p) then Hashtbl.add touched p ();
        if resident.(p) then begin
          if !head <> p then begin
            unlink p;
            push_front p
          end
        end
        else begin
          incr faults;
          if !count = frames then begin
            let victim = !tail in
            unlink victim;
            resident.(victim) <- false
          end
          else incr count;
          resident.(p) <- true;
          push_front p
        end
      done)
    trace;
  Trg_obs.Metrics.add (Trg_obs.Metrics.counter "sim/page/accesses") !accesses;
  Trg_obs.Metrics.add (Trg_obs.Metrics.counter "sim/page/faults") !faults;
  {
    page_accesses = !accesses;
    page_faults = !faults;
    pages_touched = Hashtbl.length touched;
  }

let distinct_lines program layout (config : Config.t) trace =
  let n = Program.n_procs program in
  let addr = Array.init n (Layout.address layout) in
  let line_size = config.line_size in
  let seen = Hashtbl.create 4096 in
  Trace.iter
    (fun (e : Event.t) ->
      let base = addr.(e.proc) + e.offset in
      let first = base / line_size and last = (base + e.len - 1) / line_size in
      for la = first to last do
        if not (Hashtbl.mem seen la) then Hashtbl.add seen la ()
      done)
    trace;
  Hashtbl.length seen
