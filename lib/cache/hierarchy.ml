module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Trace = Trg_trace.Trace
module Event = Trg_trace.Event

type level = { config : Config.t; policy : Policy.kind; hit_cycles : int }
type t = { levels : level list; memory_cycles : int }

type level_result = {
  level : level;
  accesses : int;
  misses : int;
  evictions : int;
  compulsory : int;
  capacity : int;
  conflict : int;
}

type result = {
  levels : level_result array;
  cycles : int;
  amat : float;
  events : int;
}

let m_simulations = Trg_obs.Metrics.counter "hier/simulations"
let m_cycles = Trg_obs.Metrics.counter "hier/cycles"

(* Per-level counters for the shipped depth (presets stop at L3); deeper
   custom hierarchies still simulate, they just share the last counter pair. *)
let max_counted_levels = 3

let m_level_accesses =
  Array.init max_counted_levels (fun i ->
      Trg_obs.Metrics.counter (Printf.sprintf "hier/l%d/accesses" (i + 1)))

let m_level_misses =
  Array.init max_counted_levels (fun i ->
      Trg_obs.Metrics.counter (Printf.sprintf "hier/l%d/misses" (i + 1)))

let level_label l =
  let size = l.config.Config.size in
  let size_str =
    if size mod (1024 * 1024) = 0 then Printf.sprintf "%dMB" (size / (1024 * 1024))
    else if size mod 1024 = 0 then Printf.sprintf "%dKB" (size / 1024)
    else Printf.sprintf "%dB" size
  in
  Printf.sprintf "%s/%dB-line/%d-way %s, %d cyc" size_str
    l.config.Config.line_size l.config.Config.assoc
    (Policy.to_string l.policy) l.hit_cycles

let make ~levels ~memory_cycles =
  if levels = [] then invalid_arg "Hierarchy.make: at least one level required";
  if memory_cycles <= 0 then
    invalid_arg "Hierarchy.make: memory_cycles must be positive";
  List.iteri
    (fun i l ->
      if l.hit_cycles <= 0 then
        invalid_arg
          (Printf.sprintf "Hierarchy.make: L%d hit_cycles must be positive" (i + 1));
      Policy.validate l.policy ~assoc:l.config.Config.assoc)
    levels;
  let rec check_lines i = function
    | a :: (b :: _ as rest) ->
        if b.config.Config.line_size mod a.config.Config.line_size <> 0 then
          invalid_arg
            (Printf.sprintf
               "Hierarchy.make: L%d line size (%d) must be a multiple of L%d's \
                (%d)"
               (i + 2) b.config.Config.line_size (i + 1) a.config.Config.line_size);
        check_lines (i + 1) rest
    | _ -> ()
  in
  check_lines 0 levels;
  { levels; memory_cycles }

(* One level's machinery: the policy-driven real cache, plus the same
   fully-associative LRU shadow divider Attrib uses, applied to the
   reference stream this level actually sees (L1's stream for L1, L1's
   misses for L2, ...).  Line granularity is the level's own line size,
   so addresses are divided down from bytes independently per level. *)
type level_state = {
  lvl : level;
  probe : Policy.Probe.t;
  shadow : Attrib.Shadow.s;
  seen : Bytes.t;
  line_size : int;
  mutable s_accesses : int;
  mutable s_misses : int;
  mutable s_evictions : int;
  mutable s_compulsory : int;
  mutable s_capacity : int;
  mutable s_conflict : int;
}

let local_miss_rate (r : level_result) =
  if r.accesses = 0 then 0.0 else float_of_int r.misses /. float_of_int r.accesses

let simulate program layout (t : t) trace =
  let n_procs = Program.n_procs program in
  let addr = Array.init n_procs (Layout.address layout) in
  let span = Layout.span layout in
  let states =
    List.map
      (fun (lvl : level) ->
        let cfg = lvl.config in
        let n_line_ids = (span / cfg.Config.line_size) + 2 in
        {
          lvl;
          probe =
            Policy.Probe.create lvl.policy ~n_sets:(Config.n_sets cfg)
              ~assoc:cfg.Config.assoc;
          shadow =
            Attrib.Shadow.create ~capacity:(Config.n_lines cfg)
              ~n_lines:n_line_ids;
          seen = Bytes.make n_line_ids '\000';
          line_size = cfg.Config.line_size;
          s_accesses = 0;
          s_misses = 0;
          s_evictions = 0;
          s_compulsory = 0;
          s_capacity = 0;
          s_conflict = 0;
        })
      t.levels
  in
  (* Probe one level at its own granularity; record the access, classify a
     miss with the level's shadow, and report whether the next level must
     be consulted. *)
  let access_level st byte_addr =
    let la = byte_addr / st.line_size in
    st.s_accesses <- st.s_accesses + 1;
    let fresh = Bytes.get st.seen la = '\000' in
    if fresh then Bytes.set st.seen la '\001';
    let shadow_hit = Attrib.Shadow.access st.shadow la in
    let code = Policy.Probe.access st.probe la in
    if code = -2 then false
    else begin
      st.s_misses <- st.s_misses + 1;
      if fresh then st.s_compulsory <- st.s_compulsory + 1
      else if not shadow_hit then st.s_capacity <- st.s_capacity + 1
      else st.s_conflict <- st.s_conflict + 1;
      if code >= 0 then st.s_evictions <- st.s_evictions + 1;
      true
    end
  in
  (* The trace is walked at L1 line granularity (one reference per L1 line
     the event's byte range touches, like Sim); deeper levels see one
     reference per L1 miss, at their own line size. *)
  let l1 = List.hd states in
  let rest = List.tl states in
  let l1_line = l1.line_size in
  Trace.iter
    (fun (e : Event.t) ->
      let base = addr.(e.proc) + e.offset in
      let first = base / l1_line and last = (base + e.len - 1) / l1_line in
      for la1 = first to last do
        let byte_addr = la1 * l1_line in
        if access_level l1 byte_addr then
          (* Walk deeper while each level misses. *)
          ignore
            (List.fold_left
               (fun missed st -> missed && access_level st byte_addr)
               true rest)
      done)
    trace;
  let n_levels = List.length states in
  let last_misses = (List.nth states (n_levels - 1)).s_misses in
  let cycles =
    List.fold_left
      (fun acc st -> acc + (st.s_accesses * st.lvl.hit_cycles))
      (last_misses * t.memory_cycles)
      states
  in
  let l1_accesses = l1.s_accesses in
  let amat =
    if l1_accesses = 0 then 0.0
    else float_of_int cycles /. float_of_int l1_accesses
  in
  Trg_obs.Metrics.incr m_simulations;
  Trg_obs.Metrics.add m_cycles cycles;
  List.iteri
    (fun i st ->
      let slot = min i (max_counted_levels - 1) in
      Trg_obs.Metrics.add m_level_accesses.(slot) st.s_accesses;
      Trg_obs.Metrics.add m_level_misses.(slot) st.s_misses)
    states;
  {
    levels =
      Array.of_list
        (List.map
           (fun st ->
             {
               level = st.lvl;
               accesses = st.s_accesses;
               misses = st.s_misses;
               evictions = st.s_evictions;
               compulsory = st.s_compulsory;
               capacity = st.s_capacity;
               conflict = st.s_conflict;
             })
           states);
    cycles;
    amat;
    events = Trace.length trace;
  }
