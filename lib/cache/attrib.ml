module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Trace = Trg_trace.Trace
module Event = Trg_trace.Event

type proc_stats = {
  p_accesses : int;
  p_misses : int;
  p_conflicts : int;
  p_evictions_caused : int;
}

type t = {
  result : Sim.result;
  compulsory : int;
  capacity : int;
  conflict : int;
  distinct_lines : int;
  per_proc : proc_stats array;
  set_misses : int array;
  set_lines : int array;
  timeline : int array;
  interval_events : int;
  conflict_pairs : (int * int * int) array;
}

(* Attribution runs are tallied in their own namespace so the sim/*
   scoreboard counters keep meaning "the fast path ran this much". *)
let m_simulations = Trg_obs.Metrics.counter "attrib/simulations"
let m_accesses = Trg_obs.Metrics.counter "attrib/accesses"
let m_misses = Trg_obs.Metrics.counter "attrib/misses"
let m_compulsory = Trg_obs.Metrics.counter "attrib/compulsory"
let m_capacity = Trg_obs.Metrics.counter "attrib/capacity"
let m_conflict = Trg_obs.Metrics.counter "attrib/conflict"

(* Fully-associative LRU shadow cache over line ids: a doubly-linked
   recency list indexed by line address (same technique as Sim.paging).
   Probing answers "would a cache of this capacity, free of placement
   constraints, still hold the line?" — the capacity/conflict divider. *)
module Shadow = struct
  type s = {
    capacity : int;
    prev : int array;
    next : int array;
    resident : Bytes.t;
    mutable head : int;
    mutable tail : int;
    mutable count : int;
  }

  let create ~capacity ~n_lines =
    {
      capacity;
      prev = Array.make n_lines (-1);
      next = Array.make n_lines (-1);
      resident = Bytes.make n_lines '\000';
      head = -1;
      tail = -1;
      count = 0;
    }

  let unlink s p =
    (match s.prev.(p) with -1 -> s.head <- s.next.(p) | q -> s.next.(q) <- s.next.(p));
    (match s.next.(p) with -1 -> s.tail <- s.prev.(p) | q -> s.prev.(q) <- s.prev.(p));
    s.prev.(p) <- -1;
    s.next.(p) <- -1

  let push_front s p =
    s.prev.(p) <- -1;
    s.next.(p) <- s.head;
    (match s.head with -1 -> s.tail <- p | h -> s.prev.(h) <- p);
    s.head <- p

  (* Probe-and-touch: returns whether [la] was resident, then makes it the
     most recent line, evicting the least recent when full. *)
  let access s la =
    if Bytes.get s.resident la <> '\000' then begin
      if s.head <> la then begin
        unlink s la;
        push_front s la
      end;
      true
    end
    else begin
      if s.count = s.capacity then begin
        let victim = s.tail in
        unlink s victim;
        Bytes.set s.resident victim '\000'
      end
      else s.count <- s.count + 1;
      Bytes.set s.resident la '\001';
      push_front s la;
      false
    end
end

(* Traces can come from files, so events are untrusted: a run extending
   past its procedure's end would produce line addresses beyond the layout
   span that [simulate]'s tables are sized by.  Checked up front so bad
   input yields one precise exception instead of a mid-simulation failure. *)
let validate_trace program trace =
  let n_procs = Program.n_procs program in
  Trace.iteri
    (fun ei (e : Event.t) ->
      if e.proc < 0 || e.proc >= n_procs then
        invalid_arg
          (Printf.sprintf
             "Attrib.simulate: event %d references procedure %d, but the \
              program has %d"
             ei e.proc n_procs);
      let size = Program.size program e.proc in
      if e.offset + e.len > size then
        invalid_arg
          (Printf.sprintf
             "Attrib.simulate: event %d runs over bytes [%d, %d) of %s, \
              which is only %d bytes"
             ei e.offset (e.offset + e.len)
             (Program.name program e.proc)
             size))
    trace

let simulate ?(intervals = 60) ?(policy = Policy.Lru) program layout
    (config : Config.t) trace =
  if intervals <= 0 then invalid_arg "Attrib.simulate: intervals must be positive";
  Policy.validate policy ~assoc:config.Config.assoc;
  validate_trace program trace;
  let n_procs = Program.n_procs program in
  let addr = Array.init n_procs (Layout.address layout) in
  let n_sets = Config.n_sets config in
  let assoc = config.assoc in
  let line_size = config.line_size in
  let capacity = Config.n_lines config in
  (* Line-id space: every reachable line address.  [validate_trace]
     guarantees events stay inside their procedure, so the layout span
     bounds the largest address. *)
  let n_line_ids = (Layout.span layout / line_size) + 2 in
  (* The real-cache step, shared return coding with {!Policy.Probe.access}:
     [-2] = hit, otherwise the previous tag of the filled way.  True LRU
     keeps the historical move-to-front tag slices (the default path is
     operation-for-operation the pre-policy implementation); every other
     policy runs the generic engine. *)
  let access_line =
    match policy with
    | Policy.Lru ->
      let tags = Array.make (n_sets * assoc) (-1) in
      fun la ->
        let set = la mod n_sets in
        let start = set * assoc in
        let way = ref (-1) in
        (try
           for w = 0 to assoc - 1 do
             if tags.(start + w) = la then begin
               way := w;
               raise Exit
             end
           done
         with Exit -> ());
        let code, hit_way =
          if !way >= 0 then (-2, !way)
          else (tags.(start + assoc - 1), assoc - 1)
        in
        for w = hit_way downto 1 do
          tags.(start + w) <- tags.(start + w - 1)
        done;
        tags.(start) <- la;
        code
    | p -> Policy.Probe.access (Policy.Probe.create p ~n_sets ~assoc)
  in
  let shadow = Shadow.create ~capacity ~n_lines:n_line_ids in
  let seen = Bytes.make n_line_ids '\000' in
  (* last_evictor.(la): the procedure whose fill most recently displaced
     line [la] from the real cache; the "evicting procedure" of any
     conflict miss [la] suffers later. *)
  let last_evictor = Array.make n_line_ids (-1) in
  let accesses = ref 0 and misses = ref 0 and evictions = ref 0 in
  let compulsory = ref 0 and capacity_m = ref 0 and conflict = ref 0 in
  let pa = Array.make n_procs 0 in
  let pm = Array.make n_procs 0 in
  let pc = Array.make n_procs 0 in
  let pe = Array.make n_procs 0 in
  let set_misses = Array.make n_sets 0 in
  let events = Trace.length trace in
  let interval_events = max 1 ((events + intervals - 1) / intervals) in
  let timeline = Array.make (max 1 ((events + interval_events - 1) / interval_events)) 0 in
  (* (evictor, victim) -> conflict count, packed as evictor * n + victim. *)
  let matrix : (int, int ref) Hashtbl.t = Hashtbl.create 256 in
  Trace.iteri
    (fun ei (e : Event.t) ->
      let p = e.proc in
      let base = addr.(p) + e.offset in
      let first = base / line_size and last = (base + e.len - 1) / line_size in
      for la = first to last do
        incr accesses;
        pa.(p) <- pa.(p) + 1;
        let fresh = Bytes.get seen la = '\000' in
        if fresh then Bytes.set seen la '\001';
        (* The shadow is probed on every access so its recency order
           tracks the full reference stream, not just real-cache misses. *)
        let shadow_hit = Shadow.access shadow la in
        let set = la mod n_sets in
        let code = access_line la in
        if code <> -2 then begin
          incr misses;
          pm.(p) <- pm.(p) + 1;
          set_misses.(set) <- set_misses.(set) + 1;
          timeline.(ei / interval_events) <- timeline.(ei / interval_events) + 1;
          (if fresh then incr compulsory
           else if not shadow_hit then incr capacity_m
           else begin
             incr conflict;
             pc.(p) <- pc.(p) + 1;
             let evictor = last_evictor.(la) in
             if evictor >= 0 then begin
               let key = (evictor * n_procs) + p in
               match Hashtbl.find_opt matrix key with
               | Some r -> incr r
               | None -> Hashtbl.add matrix key (ref 1)
             end
           end);
          let victim_la = code in
          if victim_la >= 0 then begin
            incr evictions;
            pe.(p) <- pe.(p) + 1;
            last_evictor.(victim_la) <- p
          end
        end
      done)
    trace;
  let distinct = ref 0 in
  let set_lines = Array.make n_sets 0 in
  for la = 0 to n_line_ids - 1 do
    if Bytes.get seen la <> '\000' then begin
      incr distinct;
      let set = la mod n_sets in
      set_lines.(set) <- set_lines.(set) + 1
    end
  done;
  let conflict_pairs =
    Hashtbl.fold
      (fun key count acc -> (key / n_procs, key mod n_procs, !count) :: acc)
      matrix []
    |> List.sort (fun (e1, v1, c1) (e2, v2, c2) ->
           match compare c2 c1 with 0 -> compare (e1, v1) (e2, v2) | o -> o)
    |> Array.of_list
  in
  Trg_obs.Metrics.incr m_simulations;
  Trg_obs.Metrics.add m_accesses !accesses;
  Trg_obs.Metrics.add m_misses !misses;
  Trg_obs.Metrics.add m_compulsory !compulsory;
  Trg_obs.Metrics.add m_capacity !capacity_m;
  Trg_obs.Metrics.add m_conflict !conflict;
  {
    result =
      {
        Sim.accesses = !accesses;
        misses = !misses;
        evictions = !evictions;
        events;
      };
    compulsory = !compulsory;
    capacity = !capacity_m;
    conflict = !conflict;
    distinct_lines = !distinct;
    per_proc =
      Array.init n_procs (fun p ->
          {
            p_accesses = pa.(p);
            p_misses = pm.(p);
            p_conflicts = pc.(p);
            p_evictions_caused = pe.(p);
          });
    set_misses;
    set_lines;
    timeline;
    interval_events;
    conflict_pairs;
  }

let conflict_row_sums t =
  let sums = Array.make (Array.length t.per_proc) 0 in
  Array.iter (fun (_, v, c) -> sums.(v) <- sums.(v) + c) t.conflict_pairs;
  sums
