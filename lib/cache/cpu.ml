type t = { name : string; descr : string; hier : Hierarchy.t }

let level ~size ~line_size ~assoc ~policy ~hit_cycles =
  {
    Hierarchy.config = Config.make ~size ~line_size ~assoc;
    policy;
    hit_cycles;
  }

let kb n = n * 1024
let mb n = n * 1024 * 1024

(* The paper's machine: 8 KB direct-mapped on-chip I-cache backed by a
   large off-chip direct-mapped Bcache.  L1 geometry matches Config.default
   so the preset's L1 miss counts line up with every other experiment. *)
let alpha_21064 =
  {
    name = "alpha-21064";
    descr = "the paper's machine: 8KB DM I-cache + 512KB DM board cache";
    hier =
      Hierarchy.make
        ~levels:
          [
            level ~size:(kb 8) ~line_size:32 ~assoc:1 ~policy:Policy.Lru
              ~hit_cycles:1;
            level ~size:(kb 512) ~line_size:32 ~assoc:1 ~policy:Policy.Lru
              ~hit_cycles:10;
          ]
        ~memory_cycles:100;
  }

(* Its successor: same tiny DM L1, but a 3-way on-chip S-cache and a
   direct-mapped board cache behind it. *)
let alpha_21164 =
  {
    name = "alpha-21164";
    descr = "8KB DM L1 + 96KB 3-way S-cache + 2MB DM board cache";
    hier =
      Hierarchy.make
        ~levels:
          [
            level ~size:(kb 8) ~line_size:32 ~assoc:1 ~policy:Policy.Lru
              ~hit_cycles:1;
            level ~size:(kb 96) ~line_size:64 ~assoc:3 ~policy:Policy.Lru
              ~hit_cycles:6;
            level ~size:(mb 2) ~line_size:64 ~assoc:1 ~policy:Policy.Lru
              ~hit_cycles:20;
          ]
        ~memory_cycles:100;
  }

(* Modern x86 presets, with the replacement policies those designs are
   reported to use: Tree-PLRU close to the core, quad-age LRU variants in
   the larger outer levels. *)
let nehalem =
  {
    name = "nehalem";
    descr = "32KB 4-way PLRU L1 + 256KB 8-way QLRU L2 + 8MB 16-way QLRU L3";
    hier =
      Hierarchy.make
        ~levels:
          [
            level ~size:(kb 32) ~line_size:64 ~assoc:4 ~policy:Policy.Plru
              ~hit_cycles:4;
            level ~size:(kb 256) ~line_size:64 ~assoc:8 ~policy:Policy.Qlru_h00
              ~hit_cycles:10;
            level ~size:(mb 8) ~line_size:64 ~assoc:16 ~policy:Policy.Qlru_h11
              ~hit_cycles:38;
          ]
        ~memory_cycles:200;
  }

let skylake =
  {
    name = "skylake";
    descr = "32KB 8-way PLRU L1 + 256KB 4-way QLRU L2 + 8MB 16-way QLRU L3";
    hier =
      Hierarchy.make
        ~levels:
          [
            level ~size:(kb 32) ~line_size:64 ~assoc:8 ~policy:Policy.Plru
              ~hit_cycles:4;
            level ~size:(kb 256) ~line_size:64 ~assoc:4 ~policy:Policy.Qlru_h11
              ~hit_cycles:12;
            level ~size:(mb 8) ~line_size:64 ~assoc:16 ~policy:Policy.Qlru_h11
              ~hit_cycles:42;
          ]
        ~memory_cycles:200;
  }

let all = [ alpha_21064; alpha_21164; nehalem; skylake ]
let names = List.map (fun c -> c.name) all
let default_selection = [ "alpha-21064"; "nehalem"; "skylake" ]

let find name =
  match List.find_opt (fun c -> c.name = name) all with
  | Some c -> Ok c
  | None ->
      Error
        (Printf.sprintf "unknown CPU model %S (expected one of: %s)" name
           (String.concat ", " names))
