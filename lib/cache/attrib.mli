(** Miss-attribution mode of the cache simulator.

    The scoreboard simulator ({!Sim}) says {e how many} misses a layout
    costs; this module says {e why}.  Alongside the real set-associative
    LRU cache it runs a fully-associative LRU shadow cache of equal
    capacity, which splits every miss three ways (the classic 3C model):

    - {b compulsory} — first touch of the line; no cache avoids it;
    - {b capacity} — the shadow cache misses too: the working set simply
      does not fit, regardless of placement;
    - {b conflict} — the shadow cache hits: the line was displaced only
      because of {e where} the layout put it — the misses procedure
      placement exists to eliminate.

    Each conflict miss is further attributed to the (evicting procedure,
    evicted procedure) pair that caused it, accumulating a sparse conflict
    matrix; per-procedure and per-set histograms and a temporal miss
    timeline complete the diagnosis.  The paper's Figure 1 argument — PH
    interleaves siblings that a weighted call graph cannot see — becomes
    directly checkable: under PH the sibling pair dominates the conflict
    matrix, under GBSC it vanishes.

    This is a separate entry point: {!Sim.simulate}'s hot loop is
    untouched, and on identical inputs {!simulate} here reproduces
    {!Sim.simulate}'s counts exactly ([result] field).  Attribution runs
    feed [attrib/*] telemetry counters, not the [sim/*] scoreboard
    namespace. *)

type proc_stats = {
  p_accesses : int;  (** line probes issued by this procedure's events *)
  p_misses : int;
  p_conflicts : int;  (** conflict misses suffered *)
  p_evictions_caused : int;  (** resident lines this procedure displaced *)
}

type t = {
  result : Sim.result;  (** identical to {!Sim.simulate} on the same inputs *)
  compulsory : int;
  capacity : int;
  conflict : int;  (** [compulsory + capacity + conflict = result.misses] *)
  distinct_lines : int;  (** equals [compulsory] by construction *)
  per_proc : proc_stats array;  (** indexed by procedure id *)
  set_misses : int array;  (** misses per cache set *)
  set_lines : int array;  (** distinct lines mapping to each set (pressure) *)
  timeline : int array;  (** misses per trace interval (phase behaviour) *)
  interval_events : int;  (** trace events per timeline bucket *)
  conflict_pairs : (int * int * int) array;
      (** sparse conflict matrix as [(evictor, victim, count)], sorted by
          descending count then ascending ids.  [victim] is the procedure
          whose line was displaced and then missed; [evictor] is the
          procedure whose fill displaced it. *)
}

val simulate :
  ?intervals:int ->
  ?policy:Policy.kind ->
  Trg_program.Program.t ->
  Trg_program.Layout.t ->
  Config.t ->
  Trg_trace.Trace.t ->
  t
(** Attribution-mode simulation with a cold cache (direct-mapped when
    [assoc = 1], like {!Sim.simulate}).  [policy] (default {!Policy.Lru})
    selects the real cache's replacement policy; the 3C divider is
    policy-independent (the shadow cache stays fully-associative LRU), and
    [compulsory + capacity + conflict = result.misses] holds under every
    policy.  [intervals] (default 60) sets the timeline resolution; the
    trace is split into that many equal event intervals (at least one
    event each).

    The trace is validated against the program up front: every event must
    reference an existing procedure and stay within its byte range.
    @raise Invalid_argument on a trace/program mismatch or when
    [intervals <= 0]. *)

val conflict_row_sums : t -> int array
(** Per-victim-procedure totals of {!t.conflict_pairs} — by construction
    equal to [per_proc.(p).p_conflicts] for every [p]. *)

(** The fully-associative LRU shadow cache behind the capacity/conflict
    divider: a doubly-linked recency list over line ids.  Exported for
    {!Hierarchy}, which runs one shadow per level to classify that
    level's misses. *)
module Shadow : sig
  type s

  val create : capacity:int -> n_lines:int -> s
  (** [capacity] lines of shadow residency over line ids [0..n_lines). *)

  val access : s -> int -> bool
  (** Probe-and-touch: whether the line was resident; it becomes the most
      recent line either way, evicting the least recent when full. *)
end
