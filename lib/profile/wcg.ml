module Trace = Trg_trace.Trace
module Event = Trg_trace.Event

let m_builds = Trg_obs.Metrics.counter "wcg/builds"
let m_edge_inserts = Trg_obs.Metrics.counter "wcg/edge_inserts"

let build_with ~count_resume trace =
  let g = Graph.create () in
  let prev = ref (-1) in
  let inserts = ref 0 in
  let edge p q =
    incr inserts;
    Graph.add_edge g p q 1.
  in
  Trace.iter
    (fun (e : Event.t) ->
      (match e.kind with
      | Event.Enter -> if !prev >= 0 && !prev <> e.proc then edge !prev e.proc
      | Event.Resume ->
        if count_resume && !prev >= 0 && !prev <> e.proc then edge !prev e.proc
      | Event.Run -> ());
      prev := e.proc)
    trace;
  Trg_obs.Metrics.incr m_builds;
  Trg_obs.Metrics.add m_edge_inserts !inserts;
  g

let build trace = build_with ~count_resume:true trace

let call_counts trace = build_with ~count_resume:false trace
