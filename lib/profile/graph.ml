let max_id = 1 lsl 24

type t = {
  weights : (int, float) Hashtbl.t; (* packed canonical (u, v) -> weight *)
  adj : (int, int list ref) Hashtbl.t; (* node -> neighbor ids *)
}

let create ?(hint = 256) () =
  { weights = Hashtbl.create hint; adj = Hashtbl.create hint }

let check id =
  if id < 0 || id >= max_id then
    invalid_arg (Printf.sprintf "Graph: node id %d out of range" id)

(* Canonical packed key: smaller id in the high bits. *)
let key u v = if u < v then (u lsl 24) lor v else (v lsl 24) lor u

let attach t u v =
  match Hashtbl.find_opt t.adj u with
  | Some l -> l := v :: !l
  | None -> Hashtbl.add t.adj u (ref [ v ])

let add_edge t u v w =
  check u;
  check v;
  if u <> v then begin
    let k = key u v in
    match Hashtbl.find_opt t.weights k with
    | Some old -> Hashtbl.replace t.weights k (old +. w)
    | None ->
      Hashtbl.add t.weights k w;
      attach t u v;
      attach t v u
  end

let set_edge t u v w =
  check u;
  check v;
  if u <> v then begin
    let k = key u v in
    if not (Hashtbl.mem t.weights k) then begin
      attach t u v;
      attach t v u
    end;
    Hashtbl.replace t.weights k w
  end

let weight t u v =
  if u = v then 0.
  else match Hashtbl.find_opt t.weights (key u v) with Some w -> w | None -> 0.

let mem_edge t u v = u <> v && Hashtbl.mem t.weights (key u v)

let neighbors t u =
  match Hashtbl.find_opt t.adj u with Some l -> !l | None -> []

let degree t u = List.length (neighbors t u)

let nodes t =
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.adj [] in
  List.sort compare ids

let n_nodes t = Hashtbl.length t.adj

let n_edges t = Hashtbl.length t.weights

let edges t =
  let arr = Array.make (Hashtbl.length t.weights) (0, 0, 0.) in
  let i = ref 0 in
  Hashtbl.iter
    (fun k w ->
      arr.(!i) <- (k lsr 24, k land 0xFFFFFF, w);
      incr i)
    t.weights;
  Array.sort compare arr;
  arr

let total_weight t = Hashtbl.fold (fun _ w acc -> acc +. w) t.weights 0.

let iter_edges f t = Array.iter (fun (u, v, w) -> f u v w) (edges t)

(* Straight off the weight table: no sort, no per-edge tuple.  Only for
   order-insensitive folds. *)
let iter_edges_unordered f t =
  Hashtbl.iter (fun k w -> f (k lsr 24) (k land 0xFFFFFF) w) t.weights

let copy t =
  {
    weights = Hashtbl.copy t.weights;
    adj =
      (let adj = Hashtbl.create (Hashtbl.length t.adj) in
       Hashtbl.iter (fun u l -> Hashtbl.add adj u (ref !l)) t.adj;
       adj);
  }

let map_weights f t =
  let out = create ~hint:(Hashtbl.length t.weights) () in
  iter_edges (fun u v w -> set_edge out u v (f u v w)) t;
  out

let filter_nodes keep t =
  let out = create ~hint:(Hashtbl.length t.weights) () in
  iter_edges (fun u v w -> if keep u && keep v then set_edge out u v w) t;
  out

let of_edges l =
  let t = create () in
  List.iter (fun (u, v, w) -> add_edge t u v w) l;
  t

let pp ?(name = string_of_int) ppf t =
  iter_edges
    (fun u v w -> Format.fprintf ppf "%s -- %s : %g@." (name u) (name v) w)
    t

let to_dot ?(name = string_of_int) ?(graph_name = "trg") ?(min_weight = 0.) t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" graph_name);
  Buffer.add_string buf "  node [shape=box, fontsize=10];\n";
  let max_w = ref 1. in
  iter_edges (fun _ _ w -> if w > !max_w then max_w := w) t;
  let mentioned = Hashtbl.create 64 in
  iter_edges
    (fun u v w ->
      if w >= min_weight then begin
        Hashtbl.replace mentioned u ();
        Hashtbl.replace mentioned v ();
        Buffer.add_string buf
          (Printf.sprintf "  \"%s\" -- \"%s\" [label=\"%g\", penwidth=%.2f];\n"
             (name u) (name v) w
             (0.5 +. (3.5 *. w /. !max_w)))
      end)
    t;
  List.iter
    (fun n ->
      if not (Hashtbl.mem mentioned n) then
        Buffer.add_string buf (Printf.sprintf "  \"%s\";\n" (name n)))
    (nodes t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
