(** Undirected weighted graphs over integer-identified code blocks.

    This one structure represents both the weighted call graph (WCG) of
    Pettis & Hansen and the temporal relationship graphs (TRGs) of the
    paper: nodes are procedure or chunk ids, edge weights are interleaving
    counts (possibly perturbed to non-integral values).

    Node ids must be non-negative and below {!max_id}. *)

type t

val max_id : int
(** Exclusive upper bound on node ids (2^24), imposed by the packed edge-key
    encoding. *)

val create : ?hint:int -> unit -> t
(** [hint] sizes the internal tables. *)

val add_edge : t -> int -> int -> float -> unit
(** [add_edge t u v w] adds [w] to the weight of the undirected edge
    [{u, v}], creating it if absent.  Self-edges ([u = v]) are ignored:
    a block never conflicts with itself. *)

val set_edge : t -> int -> int -> float -> unit
(** Overwrites the weight of [{u, v}] (creates the edge if needed). *)

val weight : t -> int -> int -> float
(** 0 if the edge is absent. *)

val mem_edge : t -> int -> int -> bool

val neighbors : t -> int -> int list
(** Ids adjacent to [u] (empty if [u] has no edges).  Order is unspecified
    but deterministic for a given construction sequence. *)

val degree : t -> int -> int

val nodes : t -> int list
(** All ids that appear in at least one edge, ascending. *)

val n_nodes : t -> int

val n_edges : t -> int

val edges : t -> (int * int * float) array
(** All edges as [(u, v, w)] with [u < v], sorted by [(u, v)] — a canonical,
    deterministic ordering. *)

val total_weight : t -> float

val iter_edges : (int -> int -> float -> unit) -> t -> unit
(** Iterates in the same canonical order as {!edges}. *)

val iter_edges_unordered : (int -> int -> float -> unit) -> t -> unit
(** Like {!iter_edges} but in unspecified (hash-table) order, without
    the sort or the per-edge allocation {!edges} pays for canonical
    ordering.  Still yields [u < v].  Only for folds whose result does
    not depend on visit order — e.g. exact (integral-float) sums. *)

val copy : t -> t

val map_weights : (int -> int -> float -> float) -> t -> t
(** Functional weight transformation (used by profile perturbation). *)

val filter_nodes : (int -> bool) -> t -> t
(** Subgraph induced by the nodes satisfying the predicate (used to
    restrict working graphs to popular procedures). *)

val of_edges : (int * int * float) list -> t

val pp : ?name:(int -> string) -> Format.formatter -> t -> unit

val to_dot :
  ?name:(int -> string) -> ?graph_name:string -> ?min_weight:float -> t -> string
(** Graphviz rendering: undirected edges with weight labels, pen widths
    scaled by weight.  [min_weight] (default 0) drops light edges so WCGs
    and TRGs of real benchmarks stay readable. *)
