module Program = Trg_program.Program
module Chunk = Trg_program.Chunk
module Trace = Trg_trace.Trace
module Event = Trg_trace.Event

type built = { graph : Graph.t; qstats : Qset.stats }

let default_chunk_size = 256

(* Telemetry: builder work volumes, flushed once per [build_stream] from
   local accumulators so the per-event path carries no registry traffic. *)
let m_builds = Trg_obs.Metrics.counter "trg/builds"
let m_refs = Trg_obs.Metrics.counter "trg/qset_references"
let m_edge_incrs = Trg_obs.Metrics.counter "trg/edge_increments"
let m_qsteps = Trg_obs.Metrics.counter "trg/qset_steps"
let g_qmax = Trg_obs.Metrics.gauge "trg/qset_max_entries"

let build_stream ~capacity_bytes ~size_of feed =
  let graph = Graph.create ~hint:1024 () in
  let q = Qset.create ~capacity_bytes ~size_of in
  let last = ref (-1) in
  let refs = ref 0 and edge_incrs = ref 0 in
  let emit p =
    if p <> !last then begin
      last := p;
      incr refs;
      ignore
        (Qset.reference q p ~between:(fun inter ->
             incr edge_incrs;
             Graph.add_edge graph p inter 1.))
    end
  in
  feed emit;
  let qstats = Qset.stats q in
  Trg_obs.Metrics.incr m_builds;
  Trg_obs.Metrics.add m_refs !refs;
  Trg_obs.Metrics.add m_edge_incrs !edge_incrs;
  Trg_obs.Metrics.add m_qsteps qstats.Qset.steps;
  Trg_obs.Metrics.max_gauge g_qmax (float_of_int qstats.Qset.max_entries);
  { graph; qstats }

let build_select ?(keep = fun _ -> true) ~capacity_bytes program trace =
  let feed emit =
    Trace.iter (fun (e : Event.t) -> if keep e.proc then emit e.proc) trace
  in
  build_stream ~capacity_bytes ~size_of:(Program.size program) feed

let build_place ?(keep = fun _ -> true) ~capacity_bytes chunks trace =
  let feed emit =
    Trace.iter
      (fun (e : Event.t) ->
        if keep e.proc then
          Chunk.iter_range chunks ~proc:e.proc ~offset:e.offset ~len:e.len emit)
      trace
  in
  build_stream ~capacity_bytes ~size_of:(Chunk.size_of chunks) feed
