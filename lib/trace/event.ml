type kind = Enter | Resume | Run

type t = { kind : kind; proc : int; offset : int; len : int }

let max_proc = 1 lsl 14
let max_offset = 1 lsl 24
let max_len = 1 lsl 22

let make ~kind ~proc ~offset ~len =
  if proc < 0 || proc >= max_proc then invalid_arg "Event.make: proc out of range";
  if offset < 0 || offset >= max_offset then
    invalid_arg "Event.make: offset out of range";
  if len <= 0 || len > max_len then invalid_arg "Event.make: len out of range";
  { kind; proc; offset; len }

let is_transition t =
  match t.kind with Enter | Resume -> true | Run -> false

let kind_to_char = function Enter -> 'E' | Resume -> 'R' | Run -> '.'

let kind_of_char = function
  | 'E' -> Enter
  | 'R' -> Resume
  | '.' -> Run
  | c -> invalid_arg (Printf.sprintf "Event.kind_of_char: %C" c)

let kind_to_int = function Enter -> 0 | Resume -> 1 | Run -> 2

(* [unpack] feeds this with untrusted on-disk words, so an unknown tag is
   a data error, not a broken internal invariant. *)
let kind_of_int = function
  | 0 -> Enter
  | 1 -> Resume
  | 2 -> Run
  | k -> invalid_arg (Printf.sprintf "Event.kind_of_int: %d" k)

(* Bit layout (low to high): len:23 | offset:24 | proc:14 | kind:2 *)
let pack t =
  t.len lor (t.offset lsl 23) lor (t.proc lsl 47) lor (kind_to_int t.kind lsl 61)

let unpack w =
  {
    len = w land 0x7FFFFF;
    offset = (w lsr 23) land 0xFFFFFF;
    proc = (w lsr 47) land 0x3FFF;
    kind = kind_of_int ((w lsr 61) land 3);
  }

(* Field extraction without materialising a record — the flat-trace
   simulation loops stay allocation-free. *)
let packed_len w = w land 0x7FFFFF

let packed_offset w = (w lsr 23) land 0xFFFFFF

let packed_proc w = (w lsr 47) land 0x3FFF

let pp ppf t =
  Format.fprintf ppf "%c p%d+%d:%d" (kind_to_char t.kind) t.proc t.offset t.len
