(** A trace event: the execution of one straight-line run of code (one or
    more basic blocks) inside a procedure.

    The paper's profiles are instruction traces summarised to code-block
    references; our events carry the byte range executed so the same trace
    drives the cache simulator (per-line accesses), TRG_select (per-procedure
    references) and TRG_place (per-chunk references). *)

type kind =
  | Enter  (** first block executed after a call into [proc] *)
  | Resume  (** first block executed after a return back into [proc] *)
  | Run  (** continuation within the same procedure *)

type t = {
  kind : kind;
  proc : int;  (** procedure id *)
  offset : int;  (** byte offset of the run within the procedure *)
  len : int;  (** length of the run in bytes, > 0 *)
}

val make : kind:kind -> proc:int -> offset:int -> len:int -> t
(** Validates field ranges (see {!pack}). *)

val is_transition : t -> bool
(** [true] for [Enter] and [Resume]: the control-flow transitions counted by
    a weighted call graph. *)

val kind_to_char : kind -> char

val kind_of_char : char -> kind
(** Raises [Invalid_argument] on an unknown tag. *)

val pack : t -> int
(** Dense encoding into a single OCaml int.  Field limits: [proc < 2^14],
    [offset < 2^24], [len <= 2^22].  [make] enforces these. *)

val unpack : int -> t

val packed_proc : int -> int
(** [packed_proc (pack e) = e.proc] without allocating a record — for
    hot loops over packed representations ({!Trace.Flat}). *)

val packed_offset : int -> int

val packed_len : int -> int

val pp : Format.formatter -> t -> unit
