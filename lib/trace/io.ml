module Fault = Trg_util.Fault
module Checksum = Trg_util.Checksum

let magic = "trgplace-trace"

let binary_magic = "trgplace-traceb"

let version = 2

(* Hostile headers can claim absurd counts; builders grow on demand, so
   cap the upfront allocation instead of trusting the header. *)
let initial_capacity n = max 1 (min n 65536)

(* --- serialisation --------------------------------------------------- *)

let text_string trace =
  let buf = Buffer.create (16 * Trace.length trace + 64) in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %d\n" magic version (Trace.length trace));
  Trace.iter
    (fun (e : Event.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%c %d %d %d\n" (Event.kind_to_char e.kind) e.proc
           e.offset e.len))
    trace;
  let crc = Checksum.string (Buffer.contents buf) in
  Buffer.add_string buf (Fault.crc_trailer crc);
  Buffer.contents buf

let binary_string trace =
  let buf = Buffer.create ((8 * Trace.length trace) + 64) in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %d\n" binary_magic version (Trace.length trace));
  let word = Bytes.create 8 in
  Trace.iter
    (fun e ->
      Bytes.set_int64_le word 0 (Int64.of_int (Event.pack e));
      Buffer.add_bytes buf word)
    trace;
  let crc = Checksum.string (Buffer.contents buf) in
  Buffer.add_int32_le buf (Int32.of_int crc);
  Buffer.contents buf

let write_channel oc trace = output_string oc (text_string trace)

let write_channel_binary oc trace = output_string oc (binary_string trace)

(* --- parsing --------------------------------------------------------- *)

let parse_event line =
  try
    Scanf.sscanf line "%c %d %d %d" (fun k proc offset len ->
        Event.make ~kind:(Event.kind_of_char k) ~proc ~offset ~len)
  with
  | Scanf.Scan_failure _ | Failure _ | End_of_file | Invalid_argument _ ->
    Fault.fail (Fault.Bad_record ("bad event line: " ^ line))

(* Shared text body reader: [read_channel] and [load] both end up here. *)
let read_text_body r ~version ~n =
  let builder = Trace.Builder.create ~capacity:(initial_capacity n) () in
  for _ = 1 to n do
    Trace.Builder.add builder (parse_event (Fault.Reader.line r ~what:"trace events"))
  done;
  if version >= 2 then Fault.check_text_trailer r;
  Trace.Builder.build builder

let read_binary_body r ~version ~n =
  let builder = Trace.Builder.create ~capacity:(initial_capacity n) () in
  let buf = Bytes.create 8 in
  for _ = 1 to n do
    Fault.Reader.block r buf ~len:8 ~what:"binary trace events";
    let packed = Int64.to_int (Bytes.get_int64_le buf 0) in
    let e =
      try
        let e = Event.unpack packed in
        Event.make ~kind:e.Event.kind ~proc:e.Event.proc ~offset:e.Event.offset
          ~len:e.Event.len
      with Invalid_argument msg ->
        Fault.fail (Fault.Bad_record ("bad binary event: " ^ msg))
    in
    Trace.Builder.add builder e
  done;
  if version >= 2 then Fault.check_binary_trailer r;
  Trace.Builder.build builder

(* Dispatch on the header's magic word; both formats, both versions. *)
let read_reader r =
  let header = Fault.Reader.line r ~what:"trace header" in
  match Fault.magic_of_line header with
  | m when m = binary_magic ->
    let version, n = Fault.parse_header ~magic:binary_magic ~max_version:version header in
    read_binary_body r ~version ~n
  | m when m = magic ->
    let version, n = Fault.parse_header ~magic ~max_version:version header in
    read_text_body r ~version ~n
  | got -> Fault.fail (Fault.Bad_magic { expected = magic; got })

let read_channel ic = Fault.or_fail (fun () -> read_reader (Fault.Reader.of_channel ic))

let read_channel_binary ic = read_channel ic

(* --- files ----------------------------------------------------------- *)

let load_result path =
  Fault.result (fun () ->
      Fault.io_point ~op:("read " ^ path);
      In_channel.with_open_bin path (fun ic ->
          read_reader (Fault.Reader.of_channel ic)))

let save_result path trace =
  Fault.result (fun () -> Fault.atomic_write path (text_string trace))

let save_binary_result path trace =
  Fault.result (fun () -> Fault.atomic_write path (binary_string trace))

let unwrap = function Ok v -> v | Error e -> failwith (Fault.to_string e)

let load path = unwrap (load_result path)

let save path trace = unwrap (save_result path trace)

let save_binary path trace = unwrap (save_binary_result path trace)
