module Fault = Trg_util.Fault
module Checksum = Trg_util.Checksum

let magic = "trgplace-trace"

let binary_magic = "trgplace-traceb"

let version = 2

let version_flat = 3

(* Hostile headers can claim absurd counts; builders grow on demand, so
   cap the upfront allocation instead of trusting the header. *)
let initial_capacity n = max 1 (min n 65536)

(* --- serialisation --------------------------------------------------- *)

let text_string trace =
  let buf = Buffer.create (16 * Trace.length trace + 64) in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %d\n" magic version (Trace.length trace));
  Trace.iter
    (fun (e : Event.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%c %d %d %d\n" (Event.kind_to_char e.kind) e.proc
           e.offset e.len))
    trace;
  let crc = Checksum.string (Buffer.contents buf) in
  Buffer.add_string buf (Fault.crc_trailer crc);
  Buffer.contents buf

let binary_string trace =
  let buf = Buffer.create ((8 * Trace.length trace) + 64) in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %d\n" binary_magic version (Trace.length trace));
  let word = Bytes.create 8 in
  Trace.iter
    (fun e ->
      Bytes.set_int64_le word 0 (Int64.of_int (Event.pack e));
      Buffer.add_bytes buf word)
    trace;
  let crc = Checksum.string (Buffer.contents buf) in
  Buffer.add_int32_le buf (Int32.of_int crc);
  Buffer.contents buf

(* v3 header: the same [<magic> <version> <n>] fields, right-padded with
   spaces so the header line (newline included) is 32 bytes — or the
   next multiple of 8 for astronomically large counts.  Space padding is
   transparent to [Fault.parse_header]'s tokeniser, and the fixed-width,
   8-aligned header means the payload words of an on-disk v3 file start
   at an aligned offset: the file can be dropped (mmap-style) straight
   into a {!Trace.Flat} buffer. *)
let flat_header n =
  let base = Printf.sprintf "%s %d %d" binary_magic version_flat n in
  let target =
    let l = max (String.length base) 31 in
    (((l + 1 + 7) / 8) * 8) - 1
  in
  base ^ String.make (target - String.length base) ' ' ^ "\n"

let flat_string flat =
  let n = Trace.Flat.length flat in
  let buf = Buffer.create ((8 * n) + 64) in
  Buffer.add_string buf (flat_header n);
  let word = Bytes.create 8 in
  for i = 0 to n - 1 do
    Bytes.set_int64_le word 0 (Int64.of_int (Trace.Flat.get_packed flat i));
    Buffer.add_bytes buf word
  done;
  let crc = Checksum.string (Buffer.contents buf) in
  Buffer.add_int32_le buf (Int32.of_int crc);
  Buffer.contents buf

let write_channel oc trace = output_string oc (text_string trace)

let write_channel_binary oc trace = output_string oc (binary_string trace)

(* --- parsing --------------------------------------------------------- *)

let parse_event line =
  try
    Scanf.sscanf line "%c %d %d %d" (fun k proc offset len ->
        Event.make ~kind:(Event.kind_of_char k) ~proc ~offset ~len)
  with
  | Scanf.Scan_failure _ | Failure _ | End_of_file | Invalid_argument _ ->
    Fault.fail (Fault.Bad_record ("bad event line: " ^ line))

(* Shared text body reader: [read_channel] and [load] both end up here. *)
let read_text_body r ~version ~n =
  let builder = Trace.Builder.create ~capacity:(initial_capacity n) () in
  for _ = 1 to n do
    Trace.Builder.add builder (parse_event (Fault.Reader.line r ~what:"trace events"))
  done;
  if version >= 2 then Fault.check_text_trailer r;
  Trace.Builder.build builder

let read_binary_body r ~version ~n =
  let builder = Trace.Builder.create ~capacity:(initial_capacity n) () in
  let buf = Bytes.create 8 in
  for _ = 1 to n do
    Fault.Reader.block r buf ~len:8 ~what:"binary trace events";
    let packed = Int64.to_int (Bytes.get_int64_le buf 0) in
    let e =
      try
        let e = Event.unpack packed in
        Event.make ~kind:e.Event.kind ~proc:e.Event.proc ~offset:e.Event.offset
          ~len:e.Event.len
      with Invalid_argument msg ->
        Fault.fail (Fault.Bad_record ("bad binary event: " ^ msg))
    in
    Trace.Builder.add builder e
  done;
  if version >= 2 then Fault.check_binary_trailer r;
  Trace.Builder.build builder

(* v3 body: byte-identical to v2's (n little-endian 64-bit words plus
   the binary CRC trailer) read straight into a Flat buffer.  Records
   are validated as they stream — a bad word surfaces as [Bad_record]
   before the trailer check, matching the v2 reader's ordering. *)
let read_flat_body r ~n =
  let flat = Trace.Flat.create n in
  let buf = Bytes.create 8 in
  for i = 0 to n - 1 do
    Fault.Reader.block r buf ~len:8 ~what:"flat trace events";
    let packed = Int64.to_int (Bytes.get_int64_le buf 0) in
    (try ignore (Event.unpack packed : Event.t)
     with Invalid_argument msg ->
       Fault.fail (Fault.Bad_record ("bad flat event: " ^ msg)));
    Trace.Flat.set_packed flat i packed
  done;
  Fault.check_binary_trailer r;
  flat

(* Dispatch on the header's magic word; both formats, every version
   (the binary magic covers v1/v2 event-array bodies and the v3 flat
   body alike). *)
let read_reader r =
  let header = Fault.Reader.line r ~what:"trace header" in
  match Fault.magic_of_line header with
  | m when m = binary_magic ->
    let version, n =
      Fault.parse_header ~magic:binary_magic ~max_version:version_flat header
    in
    if version = version_flat then Trace.Flat.to_trace (read_flat_body r ~n)
    else read_binary_body r ~version ~n
  | m when m = magic ->
    let version, n = Fault.parse_header ~magic ~max_version:version header in
    read_text_body r ~version ~n
  | got -> Fault.fail (Fault.Bad_magic { expected = magic; got })

(* Same dispatch, landing in a Flat buffer: v3 is read in place, older
   formats convert after the normal (validated, checksummed) load. *)
let read_reader_flat r =
  let header = Fault.Reader.line r ~what:"trace header" in
  match Fault.magic_of_line header with
  | m when m = binary_magic ->
    let version, n =
      Fault.parse_header ~magic:binary_magic ~max_version:version_flat header
    in
    if version = version_flat then read_flat_body r ~n
    else Trace.Flat.of_trace (read_binary_body r ~version ~n)
  | m when m = magic ->
    let version, n = Fault.parse_header ~magic ~max_version:version header in
    Trace.Flat.of_trace (read_text_body r ~version ~n)
  | got -> Fault.fail (Fault.Bad_magic { expected = magic; got })

let read_channel ic = Fault.or_fail (fun () -> read_reader (Fault.Reader.of_channel ic))

let read_channel_binary ic = read_channel ic

(* --- files ----------------------------------------------------------- *)

let load_result path =
  Fault.result (fun () ->
      Fault.io_point ~op:("read " ^ path);
      In_channel.with_open_bin path (fun ic ->
          read_reader (Fault.Reader.of_channel ic)))

let save_result path trace =
  Fault.result (fun () -> Fault.atomic_write path (text_string trace))

let save_binary_result path trace =
  Fault.result (fun () -> Fault.atomic_write path (binary_string trace))

(* --- mmap fast path for v3 flat files -------------------------------- *)

(* v3's fixed-width 8-aligned header exists exactly so that an on-disk
   file can be memory-mapped and parsed in place, skipping the channel
   reader's per-block copies.  The mapped parse reproduces the channel
   reader's failure surface typed fault for typed fault, in the same
   order: body truncation, then a bad word, then the trailer.  Anything
   that is not a well-formed v3 candidate (text files, v1/v2 binaries,
   unmappable or empty files) returns [None] and the caller falls back
   to the channel reader, which stays the authority on those paths. *)

let mmap_chunk = 65536 (* bytes per CRC/decode chunk; multiple of 8 *)

let parse_flat_mapped map =
  let len = Bigarray.Array1.dim map in
  let limit = min len 256 in
  let nl = ref (-1) in
  (try
     for i = 0 to limit - 1 do
       if Bigarray.Array1.get map i = '\n' then begin
         nl := i;
         raise Exit
       end
     done
   with Exit -> ());
  if !nl < 0 then None
  else
    let header = String.init !nl (Bigarray.Array1.get map) in
    if Fault.magic_of_line header <> binary_magic then None
    else
      let version, n =
        Fault.parse_header ~magic:binary_magic ~max_version:version_flat header
      in
      if version <> version_flat then None
      else begin
        let header_len = !nl + 1 in
        let body_end = header_len + (8 * n) in
        if len < body_end then Fault.fail (Fault.Truncated "flat trace events");
        if len < body_end + 4 then Fault.fail (Fault.Truncated "checksum trailer");
        let flat = Trace.Flat.create n in
        let buf = Bytes.create mmap_chunk in
        (* Header bytes fold into the CRC first, as [Reader.line] does. *)
        let crc = ref (Checksum.string (header ^ "\n")) in
        let pos = ref header_len and word = ref 0 in
        (* [header_len] is 8-aligned and chunks are multiples of 8, so
           every chunk holds whole words. *)
        while !pos < body_end do
          let l = min mmap_chunk (body_end - !pos) in
          for k = 0 to l - 1 do
            Bytes.unsafe_set buf k (Bigarray.Array1.unsafe_get map (!pos + k))
          done;
          crc := Checksum.bytes ~crc:!crc buf ~pos:0 ~len:l;
          for w = 0 to (l / 8) - 1 do
            let packed = Int64.to_int (Bytes.get_int64_le buf (w * 8)) in
            (try ignore (Event.unpack packed : Event.t)
             with Invalid_argument msg ->
               Fault.fail (Fault.Bad_record ("bad flat event: " ^ msg)));
            Trace.Flat.set_packed flat (!word + w) packed
          done;
          word := !word + (l / 8);
          pos := !pos + l
        done;
        let byte k = Char.code (Bigarray.Array1.get map (body_end + k)) in
        let stored =
          byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)
        in
        if stored <> !crc then
          Fault.fail (Fault.Checksum_mismatch { stored; computed = !crc });
        Some flat
      end

let with_mapped_file path f =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let g = Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |] in
      f (Bigarray.array1_of_genarray g))

let load_flat_result path =
  Fault.result (fun () ->
      Fault.io_point ~op:("read " ^ path);
      let mapped =
        (* mmap setup can fail for reasons a channel handles fine (empty
           file, exotic filesystem); parse faults inside the mapped body
           propagate as the typed errors they are. *)
        match with_mapped_file path parse_flat_mapped with
        | r -> r
        | (exception Unix.Unix_error _) | (exception Sys_error _) -> None
      in
      match mapped with
      | Some flat -> flat
      | None ->
        In_channel.with_open_bin path (fun ic ->
            read_reader_flat (Fault.Reader.of_channel ic)))

let save_flat_result path flat =
  Fault.result (fun () -> Fault.atomic_write path (flat_string flat))

let unwrap = function Ok v -> v | Error e -> failwith (Fault.to_string e)

let load path = unwrap (load_result path)

let save path trace = unwrap (save_result path trace)

let save_binary path trace = unwrap (save_binary_result path trace)

let load_flat path = unwrap (load_flat_result path)

let save_flat path flat = unwrap (save_flat_result path flat)
