(** A program trace: an immutable, densely packed sequence of events.

    Traces of a few million events are routine in the evaluation, so the
    representation is one OCaml int per event (see {!Event.pack}). *)

type t

val length : t -> int

val get : t -> int -> Event.t
(** [get t i] for [0 <= i < length t]. *)

val iter : (Event.t -> unit) -> t -> unit

val iteri : (int -> Event.t -> unit) -> t -> unit

val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a

val of_list : Event.t list -> t

val of_events : Event.t array -> t

val to_list : t -> Event.t list

val concat : t list -> t

val sub : t -> pos:int -> len:int -> t

val procs_of : t -> int list
(** Distinct procedure ids referenced, ascending. *)

(** Flat traces: the same packed events in an unboxed int32 Bigarray (two
    words per event), the representation the simulation and costing hot
    loops stream and the one {!Io}'s v3 format stores verbatim.
    Conversion is lossless in both directions. *)
module Flat : sig
  type trace = t

  type t

  val create : int -> t
  (** Uninitialised storage for [n] events; fill with {!set_packed}. *)

  val length : t -> int

  val of_trace : trace -> t

  val to_trace : t -> trace
  (** Inverse of {!of_trace}: [to_trace (of_trace t)] equals [t]. *)

  val get : t -> int -> Event.t

  val get_packed : t -> int -> int
  (** The packed word ({!Event.pack}) at index [i] — pair with
      [Event.packed_proc]/[packed_offset]/[packed_len] for
      allocation-free loops. *)

  val set_packed : t -> int -> int -> unit

  val iter : (Event.t -> unit) -> t -> unit
end

(** Incremental construction. *)
module Builder : sig
  type trace = t

  type t

  val create : ?capacity:int -> unit -> t

  val add : t -> Event.t -> unit

  val length : t -> int

  val last_proc : t -> int option
  (** Procedure of the most recently added event, if any — used by trace
      generators to decide between [Run] and transition kinds. *)

  val build : t -> trace
  (** Freezes the builder.  The builder may keep being used afterwards;
      [build] copies. *)
end
