(** Serialisation of traces.

    The paper's toolchain stored ATOM-generated traces on disk between the
    profiling and placement steps; this codec plays that role.  The text
    format is one event per line: [<kind> <proc> <offset> <len>] with kind
    one of [E]/[R]/[.] (see {!Event.kind_to_char}), preceded by a header
    line [trgplace-trace <version> <n_events>].

    {b Format v2} (the version written by this code) appends an integrity
    trailer — [#crc <hex>] for the text format, four raw little-endian
    CRC-32 bytes for the binary format — covering every byte before it.
    v1 files (no trailer) produced by earlier versions still load.  Saves
    are atomic: content is written to [<path>.tmp] and renamed into
    place, so a crash never leaves a half-written artifact.

    Each loader exists in two flavours: a [_result] form returning a typed
    {!Trg_util.Fault.error}, and a compatibility form raising [Failure]
    with the rendered error. *)

val version : int
(** The format version written by {!save} / {!save_binary} (2). *)

val write_channel : out_channel -> Trace.t -> unit

val read_channel : in_channel -> Trace.t
(** Reads either format, detected from the header, v1 or v2.  Raises
    [Failure] on malformed input. *)

val save : string -> Trace.t -> unit
(** [save path trace] atomically writes the v2 text format. *)

val save_result : string -> Trace.t -> (unit, Trg_util.Fault.error) result

val load : string -> Trace.t
(** Loads either format, detected from the header.  Raises [Failure]. *)

val load_result : string -> (Trace.t, Trg_util.Fault.error) result
(** Typed-error loader: every malformed input — wrong magic, unknown
    version, truncation, unparseable record, checksum mismatch, OS-level
    failure — maps to the matching {!Trg_util.Fault.error}. *)

(** {2 Binary format}

    A fixed-width binary encoding — one little-endian 64-bit word per
    event ({!Event.pack}) after a [trgplace-traceb <version> <n>] header
    line — roughly 4x smaller and an order of magnitude faster to parse
    than the text form.  Million-event profile traces are the paper's
    working medium, so the codec matters. *)

val write_channel_binary : out_channel -> Trace.t -> unit

val read_channel_binary : in_channel -> Trace.t
(** Alias of {!read_channel}: the header names the format. *)

val save_binary : string -> Trace.t -> unit

val save_binary_result : string -> Trace.t -> (unit, Trg_util.Fault.error) result

(** {2 Flat binary format (v3)}

    Format v3 shares the binary magic and body with v2 — one
    little-endian 64-bit word per event followed by the 4-byte CRC-32
    trailer — but pads its header line with spaces so the line (newline
    included) is exactly 32 bytes (or the next multiple of 8 for
    astronomically large counts).  The payload therefore starts at an
    8-aligned file offset and maps verbatim onto a {!Trace.Flat} buffer.
    {!load} and {!load_result} read v3 files too (converting to the
    event-array representation); conversely {!load_flat} reads v1/v2
    binary and text files by converting after the normal validated,
    checksummed load. *)

val version_flat : int
(** The flat format version written by {!save_flat} (3). *)

val save_flat : string -> Trace.Flat.t -> unit
(** [save_flat path flat] atomically writes the v3 flat binary format. *)

val save_flat_result : string -> Trace.Flat.t -> (unit, Trg_util.Fault.error) result

val load_flat : string -> Trace.Flat.t
(** Loads any format (text v1/v2, binary v1/v2/v3) into a flat buffer.
    Raises [Failure]. *)

val load_flat_result : string -> (Trace.Flat.t, Trg_util.Fault.error) result
(** Typed-error flavour of {!load_flat}; same failure surface as
    {!load_result}.  v3 files are memory-mapped ([Unix.map_file]) and
    parsed in place — the 8-aligned fixed-width header makes the mapped
    payload word-aligned — with the channel reader's exact typed-error
    behaviour on truncated bodies, bad words and checksum mismatches.
    When mapping is impossible (other formats, empty or unmappable
    files) the loader transparently falls back to the channel reader. *)
