type t = int array (* packed events *)

let length = Array.length

let get t i = Event.unpack t.(i)

let iter f t = Array.iter (fun w -> f (Event.unpack w)) t

let iteri f t = Array.iteri (fun i w -> f i (Event.unpack w)) t

let fold f init t = Array.fold_left (fun acc w -> f acc (Event.unpack w)) init t

let of_list events = Array.of_list (List.map Event.pack events)

let of_events events = Array.map Event.pack events

let to_list t = Array.to_list (Array.map Event.unpack t)

let concat ts = Array.concat ts

let sub t ~pos ~len = Array.sub t pos len

let procs_of t =
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun w ->
      let e = Event.unpack w in
      if not (Hashtbl.mem seen e.proc) then Hashtbl.add seen e.proc ())
    t;
  List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) seen [])

(* Flat traces: the same packed events in an unboxed int32 Bigarray —
   two little-endian-ordered words per event (low half first) — so the
   costing and simulation hot loops stream a dense, cache-friendly
   buffer and the on-disk v3 format can be dropped into memory verbatim.
   The 63-bit packed word is split losslessly: the low 32 bits wrap into
   the first int32 (recovered with [land 0xFFFFFFFF]) and the high 31
   bits — non-negative, since [lsr] is a logical shift — fit the
   second. *)
module Flat = struct
  type trace = t

  type t = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

  let create n = Bigarray.Array1.create Bigarray.Int32 Bigarray.C_layout (2 * n)

  let length t = Bigarray.Array1.dim t / 2

  let get_packed t i =
    let lo = Int32.to_int (Bigarray.Array1.get t (2 * i)) land 0xFFFFFFFF in
    let hi = Int32.to_int (Bigarray.Array1.get t ((2 * i) + 1)) land 0xFFFFFFFF in
    lo lor (hi lsl 32)

  let set_packed t i w =
    Bigarray.Array1.set t (2 * i) (Int32.of_int (w land 0xFFFFFFFF));
    Bigarray.Array1.set t ((2 * i) + 1) (Int32.of_int (w lsr 32))

  let get t i = Event.unpack (get_packed t i)

  let of_trace (tr : trace) =
    let n = Array.length tr in
    let f = create n in
    for i = 0 to n - 1 do
      set_packed f i tr.(i)
    done;
    f

  let to_trace f : trace = Array.init (length f) (get_packed f)

  let iter fn f =
    for i = 0 to length f - 1 do
      fn (get f i)
    done
end

module Builder = struct
  type trace = t

  type t = { mutable data : int array; mutable size : int }

  let create ?(capacity = 1024) () = { data = Array.make (max capacity 1) 0; size = 0 }

  let add b event =
    if b.size = Array.length b.data then begin
      let data = Array.make (2 * Array.length b.data) 0 in
      Array.blit b.data 0 data 0 b.size;
      b.data <- data
    end;
    b.data.(b.size) <- Event.pack event;
    b.size <- b.size + 1

  let length b = b.size

  let last_proc b =
    if b.size = 0 then None else Some (Event.unpack b.data.(b.size - 1)).proc

  let build b = Array.sub b.data 0 b.size
end
