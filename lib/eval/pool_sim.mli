(** Deterministic simulation backend for the evaluation pool.

    Runs the exact production pool engine ({!Pool.Make}) against an
    in-process operating system: workers are cooperative fibers (OCaml
    effects) instead of forked processes, pipes are byte buffers, the
    clock is virtual, and [select] is a scheduler step.  Because every
    source of nondeterminism — scheduling order, time, and failures — is
    owned by the simulator, a run is a pure function of
    [(seed, schedule, tasks, options)]: the same inputs reproduce the
    same outcomes, the same telemetry, and the same supervisor actions,
    bit for bit.  This is the FoundationDB recipe: find a
    once-in-a-thousand-runs bug in CI, then replay it forever from its
    seed.

    {b What can be injected.}  A {!schedule} scripts faults at two
    levels.  Reply-sequence faults fire when a worker is about to write
    its [n]-th reply frame (counting across all workers, in virtual
    time): the worker can crash without writing ({!Crash} — the parent
    sees a clean EOF, as after a SIGKILL), crash mid-frame ({!Torn} —
    the parent sees a truncated stream), emit a frame with a flipped
    payload bit ({!Corrupt} — caught by the CRC), or hang without
    replying ({!Stuck} — the parent's deadline kill fires, so schedules
    containing [Stuck] require a [timeout]).  Select-sequence faults
    perturb the event loop itself: a spurious [EINTR]-style empty
    wakeup, reversed readiness ordering, or a forward virtual-clock jump
    (skew).  Each injection increments a [pool/sim/*] counter.

    {b What the engine must then do} — and what the tests assert — is
    respawn crashed workers, attribute every unit to a typed failure or
    retry it to success, and never hang or lose a unit.

    Simulated workers run the unit bodies in the calling process, so a
    unit's side effects (files written, global state) are {e not}
    isolated the way [fork] isolates them; telemetry is saved and
    restored around each unit.  Use workloads whose tasks are
    self-contained, as the property tests do. *)

type fault =
  | Crash  (** die before writing the reply; parent sees EOF *)
  | Torn of int
      (** write at most this many bytes of the reply frame, then die *)
  | Corrupt  (** flip one payload bit; the frame CRC must catch it *)
  | Stuck
      (** hang instead of replying; only a deadline kill frees the
          worker, so the run needs a [timeout] *)

type schedule = {
  replies : (int * fault) list;
      (** fault to inject at the n-th reply write, n counted from 0
          across all workers (retries write fresh replies and advance
          the count) *)
  eintr : int list;
      (** select calls (counted from 0) that wake empty, as after a
          signal *)
  reorder : int list;
      (** select calls whose readiness list is reversed, modelling
          arbitrary readiness order *)
  skew : (int * float) list;
      (** select calls before which the virtual clock jumps forward by
          the given seconds (monotonic clocks never jump back) *)
}

val empty_schedule : schedule
(** No faults: the simulator behaves as a perfectly reliable OS, and
    outcomes match the real backend's on the same workload. *)

val random_schedule : seed:int -> units:int -> schedule
(** A reproducible schedule drawn from the seed, sized for a workload of
    [units] tasks: a handful of reply faults of every kind (weighted
    towards crashes) plus occasional event-loop perturbations.  Always
    pair with a [timeout] — the schedule may contain {!Stuck}. *)

val run :
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?retry_delay:float ->
  ?fail_fast:bool ->
  ?schedule:schedule ->
  seed:int ->
  'a Pool.task list ->
  'a Pool.outcome list
(** {!Pool.run}'s contract, executed under simulation.  [schedule]
    defaults to {!empty_schedule}; [seed] feeds the PRNG used for
    fault details (e.g. which payload bit {!Corrupt} flips) — outcomes
    are a pure function of all arguments.

    @raise Failure if the simulation deadlocks: every worker is blocked,
    no timeout is pending, and no fault can unblock them (e.g. a
    {!Stuck} fault without a [timeout]).  A production pool would hang
    in the same situation; the simulator reports it instead. *)
