module Journal = Trg_obs.Journal
module Json = Trg_obs.Json
module Attrib = Trg_cache.Attrib
module Table = Trg_util.Table

type join = {
  j_step : int;
  j_u : int;
  j_v : int;
  j_weight : float;
  j_margin : float option;
  j_runner_up : Journal.runner_up option;
  j_size_u : int;
  j_size_v : int;
  j_shift : int option;
  j_shift_cost : float option;
}

type t = {
  w_meta : Journal.meta;
  w_p : int;
  w_q : int option;
  w_proc_name : int -> string;
  w_joined : join option;
  w_history : join list;
  w_trg_weight : float option;
  w_conflicts : (int * int * int) list;
}

let join_of (d : Journal.decision) =
  {
    j_step = d.Journal.step;
    j_u = d.Journal.d_u;
    j_v = d.Journal.d_v;
    j_weight = d.Journal.weight;
    j_margin =
      Option.map
        (fun r -> d.Journal.weight -. r.Journal.r_weight)
        d.Journal.runner_up;
    j_runner_up = d.Journal.runner_up;
    j_size_u = d.Journal.size_u;
    j_size_v = d.Journal.size_v;
    j_shift = d.Journal.shift;
    j_shift_cost = d.Journal.shift_cost;
  }

(* Mirror of the merge driver's group evolution.  Decisions record the
   two representatives at decision time; the surviving representative
   follows the driver's big/small rule — larger group wins, ties go to
   the smaller id (and [d_u < d_v] by construction). *)
let analyze ~journal ~trg_weight ~attrib ~proc_name ~p ?q () =
  let parent = Hashtbl.create 64 in
  let rec find i =
    match Hashtbl.find_opt parent i with
    | None -> i
    | Some j ->
      let r = find j in
      if r <> j then Hashtbl.replace parent i r;
      r
  in
  let joined = ref None in
  let history = ref [] in
  Array.iter
    (fun (d : Journal.decision) ->
      let rp = find p in
      if !joined = None then begin
        let involves_p = d.Journal.d_u = rp || d.Journal.d_v = rp in
        let joins_q =
          match q with
          | None -> false
          | Some q ->
            let rq = find q in
            rq <> rp
            && ((d.Journal.d_u = rp && d.Journal.d_v = rq)
               || (d.Journal.d_u = rq && d.Journal.d_v = rp))
        in
        if involves_p then history := join_of d :: !history;
        if joins_q then joined := Some (join_of d)
      end;
      let winner =
        if d.Journal.size_u >= d.Journal.size_v then d.Journal.d_u
        else d.Journal.d_v
      in
      let loser = if winner = d.Journal.d_u then d.Journal.d_v else d.Journal.d_u in
      Hashtbl.replace parent loser winner)
    journal.Journal.decisions;
  let involves x (e, v, _) = e = x || v = x in
  let conflicts =
    Array.to_list attrib.Attrib.conflict_pairs
    |> List.filter (fun row ->
           involves p row || match q with Some q -> involves q row | None -> false)
  in
  {
    w_meta = journal.Journal.meta;
    w_p = p;
    w_q = q;
    w_proc_name = proc_name;
    w_joined = !joined;
    w_history = List.rev !history;
    w_trg_weight = Option.map (fun q -> trg_weight p q) q;
    w_conflicts = conflicts;
  }

(* --- text rendering --------------------------------------------------- *)

let pair_label t j =
  Printf.sprintf "(%s, %s)" (t.w_proc_name j.j_u) (t.w_proc_name j.j_v)

let shift_label j =
  match (j.j_shift, j.j_shift_cost) with
  | Some s, Some c -> Printf.sprintf "; offset %d (conflict cost %g)" s c
  | Some s, None -> Printf.sprintf "; offset %d" s
  | None, _ -> ""

let runner_up_label t j =
  match j.j_runner_up with
  | None -> "unopposed (last mergeable edge)"
  | Some r ->
    Printf.sprintf "beat (%s, %s) at %g%s" (t.w_proc_name r.Journal.r_u)
      (t.w_proc_name r.Journal.r_v) r.Journal.r_weight
      (match j.j_margin with
      | Some m -> Printf.sprintf " — margin %g" m
      | None -> "")

let print_join t j =
  Printf.printf "step %3d: merged %s over weight %g — %s%s\n" j.j_step
    (pair_label t j) j.j_weight (runner_up_label t j) (shift_label j);
  Printf.printf "          group sizes %d + %d\n" j.j_size_u j.j_size_v

let print ?(top = 5) t =
  let name = t.w_proc_name in
  Table.section
    (Printf.sprintf "WHY — %s on %s (%s engine)" t.w_meta.Journal.algo
       t.w_meta.Journal.source t.w_meta.Journal.engine);
  (match t.w_q with
  | Some q -> (
    Printf.printf "subject: %s and %s" (name t.w_p) (name q);
    (match t.w_trg_weight with
    | Some w -> Printf.printf " — TRG edge weight %g" w
    | None -> ());
    print_newline ();
    print_newline ();
    match t.w_joined with
    | Some j -> print_join t j
    | None ->
      Printf.printf
        "never merged into one group: the layout's relative placement of \
         %s and %s is incidental, not a journal decision\n"
        (name t.w_p) (name q))
  | None ->
    Printf.printf "subject: %s\n" (name t.w_p));
  (match t.w_history with
  | [] ->
    print_newline ();
    Printf.printf "%s's group appears in no merge decision\n" (name t.w_p)
  | hist ->
    print_newline ();
    Printf.printf "merge history of %s's group (%d decisions)\n" (name t.w_p)
      (List.length hist);
    List.iter (print_join t) hist);
  print_newline ();
  match t.w_conflicts with
  | [] -> print_endline "no conflict misses involve the subject"
  | rows ->
    Printf.printf "conflict-matrix rows involving the subject (top %d of %d)\n"
      (min top (List.length rows))
      (List.length rows);
    Table.print
      ~align:[ Table.Left; Table.Left; Table.Right ]
      ~header:[ "evictor"; "victim"; "conflicts" ]
      (List.filteri (fun i _ -> i < top) rows
      |> List.map (fun (e, v, c) -> [ name e; name v; Table.fmt_int c ]))

(* --- JSON rendering --------------------------------------------------- *)

let join_json t j =
  Json.Obj
    [
      ("step", Json.Int j.j_step);
      ("u", Json.String (t.w_proc_name j.j_u));
      ("v", Json.String (t.w_proc_name j.j_v));
      ("weight", Json.Float j.j_weight);
      ( "margin",
        match j.j_margin with None -> Json.Null | Some m -> Json.Float m );
      ( "runner_up",
        match j.j_runner_up with
        | None -> Json.Null
        | Some r ->
          Json.Obj
            [
              ("u", Json.String (t.w_proc_name r.Journal.r_u));
              ("v", Json.String (t.w_proc_name r.Journal.r_v));
              ("weight", Json.Float r.Journal.r_weight);
            ] );
      ("size_u", Json.Int j.j_size_u);
      ("size_v", Json.Int j.j_size_v);
      ("shift", match j.j_shift with None -> Json.Null | Some s -> Json.Int s);
      ( "shift_cost",
        match j.j_shift_cost with None -> Json.Null | Some c -> Json.Float c );
    ]

let to_json ?(top = 5) t =
  Json.Obj
    [
      ("schema", Json.String "trgplace-why/1");
      ("algo", Json.String t.w_meta.Journal.algo);
      ("source", Json.String t.w_meta.Journal.source);
      ("engine", Json.String t.w_meta.Journal.engine);
      ("p", Json.String (t.w_proc_name t.w_p));
      ( "q",
        match t.w_q with
        | None -> Json.Null
        | Some q -> Json.String (t.w_proc_name q) );
      ( "trg_weight",
        match t.w_trg_weight with None -> Json.Null | Some w -> Json.Float w );
      ( "joined",
        match t.w_joined with None -> Json.Null | Some j -> join_json t j );
      ("history", Json.List (List.map (join_json t) t.w_history));
      ( "conflicts",
        Json.List
          (List.filteri (fun i _ -> i < top) t.w_conflicts
          |> List.map (fun (e, v, c) ->
                 Json.Obj
                   [
                     ("evictor", Json.String (t.w_proc_name e));
                     ("victim", Json.String (t.w_proc_name v));
                     ("count", Json.Int c);
                   ])) );
    ]
