(** [trgplace why]: join the decision journal against the TRG and the
    conflict matrix to answer "why did the layout put these here?".

    The journal records {e what} the greedy search chose; this module
    reconstructs {e when and against what}.  Replaying the journal's
    union-find evolution, it finds the step at which two procedures'
    groups were joined — the winning edge weight, the runner-up candidate
    that lost, the decision margin, the group sizes and (for GBSC) the
    chosen cache-set offset with its conflict cost — plus the full merge
    history of a procedure's group.  Joined against the TRG edge weight
    and {!Trg_cache.Attrib}'s conflict matrix, the answer reads: "merged
    at step 12 over weight 3.4e2, beating (f,g) by a margin of 1.1e1 —
    and the pair suffers 0 conflict misses in the final layout". *)

type join = {
  j_step : int;  (** 0-based ordinal in the merge sequence *)
  j_u : int;  (** the merged group representatives, [j_u < j_v] *)
  j_v : int;
  j_weight : float;
  j_margin : float option;  (** [weight - runner-up weight]; [None] when
                                the decision had no runner-up *)
  j_runner_up : Trg_obs.Journal.runner_up option;
  j_size_u : int;
  j_size_v : int;
  j_shift : int option;
  j_shift_cost : float option;
}

type t = {
  w_meta : Trg_obs.Journal.meta;
  w_p : int;
  w_q : int option;
  w_proc_name : int -> string;
  w_joined : join option;
      (** pair mode: the decision that first put [p] and [q] in one
          group; [None] when they were never merged together (or in
          single mode) *)
  w_history : join list;
      (** decisions in which [p]'s group was one side, in step order;
          in pair mode, up to and including the joining step *)
  w_trg_weight : float option;  (** TRG_select edge weight of (p, q) *)
  w_conflicts : (int * int * int) list;
      (** conflict-matrix rows [(evictor, victim, count)] involving [p]
          (or [q]), heaviest first *)
}

val analyze :
  journal:Trg_obs.Journal.t ->
  trg_weight:(int -> int -> float) ->
  attrib:Trg_cache.Attrib.t ->
  proc_name:(int -> string) ->
  p:int ->
  ?q:int ->
  unit ->
  t
(** Walk the journal's decisions through a union-find mirror of the
    merge driver's group evolution (the winner of each merge follows the
    driver's big/small rule), collecting [p]'s merge history and, with
    [q], the joining decision.  [trg_weight] and [attrib] supply the
    cross-references; both sides of the conflict matrix are scanned. *)

val print : ?top:int -> t -> unit
(** Text rendering: the joining decision (or its absence), the group's
    merge history, and the top-[top] (default 5) conflict rows. *)

val to_json : ?top:int -> t -> Trg_obs.Json.t
(** Schema ["trgplace-why/1"]. *)
