module Table = Trg_util.Table
module Hier = Trg_cache.Hierarchy
module Cpu = Trg_cache.Cpu

type row = {
  label : string;
  levels : (int * float) list;
  cycles : int;
  amat : float;
}

type cpu_result = { cpu : Cpu.t; level_labels : string list; rows : row list }

type result = { bench : string; cpus : cpu_result list }

let layouts r =
  [
    ("default layout", Runner.default_layout r);
    ("PH", Runner.ph_layout r);
    ("HKC", Runner.hkc_layout r);
    ("GBSC", Runner.gbsc_layout r);
  ]

let run ?(cpus = Cpu.default_selection) (r : Runner.t) =
  let program = Runner.program r in
  let presets =
    List.map
      (fun name ->
        match Cpu.find name with Ok c -> c | Error e -> failwith ("hierarchy: " ^ e))
      cpus
  in
  let layouts = layouts r in
  {
    bench = r.Runner.shape.Trg_synth.Shape.name;
    cpus =
      List.map
        (fun cpu ->
          {
            cpu;
            level_labels =
              List.map Hier.level_label cpu.Cpu.hier.Hier.levels;
            rows =
              List.map
                (fun (label, layout) ->
                  let h = Hier.simulate program layout cpu.Cpu.hier r.Runner.test in
                  {
                    label;
                    levels =
                      Array.to_list
                        (Array.map
                           (fun (lr : Hier.level_result) ->
                             (lr.Hier.misses, Hier.local_miss_rate lr))
                           h.Hier.levels);
                    cycles = h.Hier.cycles;
                    amat = h.Hier.amat;
                  })
                layouts;
          })
        presets;
  }

let print res =
  List.iter
    (fun c ->
      Table.section
        (Printf.sprintf "MEMORY HIERARCHY — %s on %s (%s)" res.bench
           c.cpu.Cpu.name c.cpu.Cpu.descr);
      List.iteri
        (fun i label -> Printf.printf "  L%d: %s\n" (i + 1) label)
        c.level_labels;
      Printf.printf "  memory: %d cyc\n" c.cpu.Cpu.hier.Hier.memory_cycles;
      let header =
        "layout"
        :: List.concat
             (List.mapi
                (fun i _ ->
                  [
                    Printf.sprintf "L%d misses" (i + 1);
                    Printf.sprintf "L%d MR" (i + 1);
                  ])
                c.level_labels)
        @ [ "cycles"; "AMAT" ]
      in
      Table.print ~header
        (List.map
           (fun row ->
             row.label
             :: List.concat_map
                  (fun (misses, mr) ->
                    [ string_of_int misses; Table.fmt_pct mr ])
                  row.levels
             @ [ string_of_int row.cycles; Table.fmt_float ~decimals:3 row.amat ])
           c.rows);
      print_newline ())
    res.cpus
