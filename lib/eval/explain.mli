(** Layout diagnosis: render miss-attribution results as evidence.

    {!Trg_cache.Attrib} classifies and attributes every miss; this module
    turns those numbers into the paper's argument.  For each layout under
    comparison it reports the compulsory / capacity / conflict split, the
    top conflicting procedure pairs {e with their TRG edge weights
    alongside} — so the claim "GBSC wins because the TRG sees the
    interleavings the call graph cannot" is directly checkable — the
    most-missing procedures, per-set pressure and a temporal miss
    timeline.  Reports render as ASCII tables ({!print}) and as a strict
    JSON document ({!to_json}) for CI; {!summary_json} is the compact
    classification summary embedded in run manifests.

    Unless [raw] is set, layouts are normalised with
    {!Trg_program.Layout.line_align} (set-preserving, line-aligned), which
    keeps every layout's conflict structure intact while making
    compulsory-miss counts comparable across layouts. *)

type layout_report = {
  label : string;
  attrib : Trg_cache.Attrib.t;
}

type t = {
  source : string;  (** benchmark name or file description *)
  trace_label : string;  (** ["test"], ["train"], or a file name *)
  cache : Trg_cache.Config.t;
  policy : Trg_cache.Policy.kind;
      (** replacement policy the real-cache simulations used (the 3C
          shadow divider is policy-independent) *)
  aligned : bool;  (** layouts were line-aligned before simulation *)
  layouts : layout_report list;
  trg_weight : int -> int -> float;  (** TRG_select edge weight lookup *)
  proc_name : int -> string;
}

val algo_labels : string list
(** Layout selectors accepted by {!of_runner}: ["original"], ["ph"],
    ["hkc"], ["gbsc"], ["hwu-chang"], ["torrellas"]. *)

val default_algos : string list
(** ["original"; "ph"; "hkc"; "gbsc"] — the paper's core comparison. *)

val of_runner :
  ?intervals:int ->
  ?use_train:bool ->
  ?raw:bool ->
  algos:string list ->
  Runner.t ->
  t
(** Diagnose a prepared benchmark under the named layouts, on the test
    trace (or the training trace with [use_train]).  TRG weights come
    from the prepared profile's TRG_select; the replacement policy is the
    runner's ({!Runner.prepare}'s [policy]).
    @raise Failure on an unknown algo label. *)

val make :
  ?intervals:int ->
  ?policy:Trg_cache.Policy.kind ->
  source:string ->
  trace_label:string ->
  cache:Trg_cache.Config.t ->
  trg_weight:(int -> int -> float) ->
  program:Trg_program.Program.t ->
  trace:Trg_trace.Trace.t ->
  ?raw:bool ->
  (string * Trg_program.Layout.t) list ->
  t
(** Low-level constructor over explicit (label, layout) pairs — the
    file-triple path of [trgplace explain]. *)

val sparkline : int array -> string
(** One character per bucket, density-scaled to the maximum count (a
    space for zero).  Used for the miss timeline here and by
    [trgplace perf report] for ledger trajectories. *)

val print : ?top:int -> t -> unit
(** ASCII report: classification table, then per layout the top-[top]
    (default 10) conflict pairs with TRG weights, hottest procedures,
    set pressure and the miss timeline. *)

val to_json : ?top:int -> t -> Trg_obs.Json.t
(** Full report as one JSON document, schema ["trgplace-explain/1"]. *)

val summary_json : t -> Trg_obs.Json.t
(** Compact classification-only summary (per layout: accesses, misses,
    compulsory, capacity, conflict) for embedding in run manifests. *)
