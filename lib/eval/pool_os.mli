(** The operating-system surface of the evaluation pool.

    {!Pool} needs exactly this much from the outside world: spawning
    workers wired up with a task pipe and a reply pipe, byte-level pipe
    I/O, readiness multiplexing, killing and reaping, a monotonic clock
    and a sleep.  Everything else — framing, checksums, scheduling,
    retries, supervision — is backend-independent pool logic.

    Two implementations exist:
    - {!Real}: the production backend ([Unix.fork], real pipes,
      [Unix.select], {!Trg_util.Clock}).  Bit-for-bit the pool's
      historical behaviour.
    - {!Trg_eval.Pool_sim}: a deterministic in-process simulator that
      runs workers as effect-based fibers under a virtual clock and
      executes seeded fault schedules (crashes, torn frames, CRC
      corruption, stuck workers, clock skew) — the FoundationDB-style
      simulation-testing backend.

    The interface is deliberately low-level (bytes, not frames) so that
    the CRC-checked wire format itself is exercised identically under
    both backends and fault injection can corrupt real frame bytes. *)

module type S = sig
  type os
  (** One backend instance.  The real backend is stateless; the
      simulator carries its virtual clock, pipes, fibers and fault
      schedule here. *)

  type fd
  (** Pipe endpoint.  Must support structural equality ([=]): the pool
      looks up select results by comparing descriptors. *)

  type pid

  (** {2 Processes} *)

  val spawn :
    os -> close_in_child:fd list -> (task_r:fd -> reply_w:fd -> unit) -> pid * fd * fd
  (** [spawn os ~close_in_child body] starts a worker running [body]
      over a fresh task pipe and reply pipe, and returns
      [(pid, task_w, reply_r)] — the parent's ends.  [close_in_child]
      lists sibling descriptors the worker must not inherit (a leaked
      copy of a sibling's pipe end would defeat EOF-based crash
      detection).  The worker's exit status reflects [body]: returning
      exits 0, raising exits 1. *)

  val kill : os -> pid -> unit
  (** Hard-kill (SIGKILL semantics: the worker gets no chance to flush
      or reply).  Never raises; killing a dead worker is a no-op. *)

  val wait : os -> pid -> string
  (** Reaps the worker and returns a human-readable exit status
      ("exited with code 2", "killed by signal 9", ...).  Never
      raises. *)

  (** {2 Byte streams}

      Read and write mirror [Unix.read]/[Unix.write_substring]: partial
      transfers are allowed (the pool loops), [read] returning [0] means
      end of stream, and hard errors surface as
      [Trg_util.Fault.Error (Io_error _)].  [EINTR] is absorbed by the
      backend ([write] may report 0 bytes written). *)

  val write : os -> fd -> string -> int -> int -> int

  val read : os -> fd -> bytes -> int -> int -> int

  val close : os -> fd -> unit
  (** Never raises; closing twice is a no-op. *)

  val select : os -> fd list -> float -> fd list
  (** Readable descriptors among the given ones, blocking up to the
      timeout in seconds (negative = no timeout).  A signal interrupting
      the wait yields [[]], never an exception — one [EINTR] must not
      abort a whole evaluation. *)

  (** {2 Time} *)

  val now : os -> float
  (** Monotonic seconds (arbitrary origin).  All pool deadline and
      backoff arithmetic goes through this — never the wall clock, which
      can jump. *)

  val sleep : os -> float -> unit

  (** {2 In-process isolation} *)

  val isolated : os -> (unit -> 'a) -> 'a
  (** Wraps the worker-side execution of one unit.  The real backend is
      the identity — a forked worker owns a copy-on-write registry, so
      clearing it is invisible to the parent.  The simulator runs
      workers in the parent process and uses this hook to save and
      restore the parent's telemetry around the unit. *)
end

(** The production backend. *)
module Real : S with type os = unit and type fd = Unix.file_descr and type pid = int
