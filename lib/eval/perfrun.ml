(* The measurement suite behind [trgplace perf].

   One deliberately small, deterministic set of units covers the
   pipeline's cost centres: benchmark preparation, the three placement
   algorithms (GBSC under both cost engines — the ledger is how the
   incremental engine's payoff, and any regression of it, stays
   visible), the trace simulator, and one pool round-trip.  Each unit is
   run [reps] times; wall time and allocated words per repetition feed
   {!Trg_obs.Perf.robust}, and the deterministic [cost/*], [merge/*],
   [pool/*] and [sim/*] counters of the first repetition are captured
   into the record — they are machine-independent, so the CI gate can
   hold them exactly while wall time gets a noise band. *)

module Metrics = Trg_obs.Metrics
module Perf = Trg_obs.Perf
module Clock = Trg_util.Clock

(* The work-profile counters worth remembering per session.  [prof/*] is
   deliberately absent: profile histograms are wall-clock-shaped. *)
let counter_prefixes = [ "cost/"; "merge/"; "pool/"; "sim/" ]

let default_benches = [ "small" ]

(* --- the artificial-regression hook ------------------------------------ *)

(* [TRGPLACE_PERF_SLOW="<seconds>"] slows every unit;
   ["<substring>:<seconds>"] slows only units whose name contains the
   substring.  This exists so the regression gate's failure path is
   testable end to end — CI proves the gate trips by slowing a hot path
   on purpose — without shipping a slow flag in the CLI surface. *)
let slow_env = "TRGPLACE_PERF_SLOW"

let parse_slow spec =
  match String.index_opt spec ':' with
  | None -> Option.map (fun s -> ("", s)) (float_of_string_opt spec)
  | Some i ->
    let name = String.sub spec 0 i in
    let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
    Option.map (fun s -> (name, s)) (float_of_string_opt rest)

let slow_spec () = Option.bind (Sys.getenv_opt slow_env) parse_slow

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  n = 0
  ||
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

(* --- the unit set ------------------------------------------------------ *)

type unit_ = { u_name : string; u_work : unit -> unit }

let with_engine kind f =
  let saved = Trg_place.Cost.engine () in
  Trg_place.Cost.set_engine kind;
  Fun.protect ~finally:(fun () -> Trg_place.Cost.set_engine saved) f

let bench_units ?policy name =
  let shape = Trg_synth.Bench.find name in
  let r = Runner.prepare ?policy shape in
  let program = Runner.program r in
  let layout = Runner.default_layout r in
  let u n f = { u_name = Printf.sprintf "%s/%s" name n; u_work = f } in
  [
    u "prepare" (fun () -> ignore (Runner.prepare ?policy shape));
    u "gbsc-incr" (fun () ->
        with_engine Trg_place.Cost.Incr (fun () ->
            ignore (Trg_place.Gbsc.place program r.Runner.prof)));
    u "gbsc-full" (fun () ->
        with_engine Trg_place.Cost.Full (fun () ->
            ignore (Trg_place.Gbsc.place program r.Runner.prof)));
    u "ph" (fun () -> ignore (Trg_place.Ph.place ~wcg:r.Runner.wcg program));
    u "hkc" (fun () ->
        ignore
          (Trg_place.Hkc.place r.Runner.config program ~wcg:r.Runner.wcg
             ~popularity:r.Runner.prof.Trg_place.Gbsc.popularity));
    u "sim-test" (fun () -> ignore (Runner.test_miss_rate r layout));
  ]

(* One pool round-trip: forks [jobs] workers, ships eight trivial units
   through the checksummed frames and absorbs the replies.  Its wall
   time tracks fork + IPC overhead; its [pool/*] counters are
   jobs-invariant by the pool's design, which the perf tests pin. *)
let pool_unit ~jobs =
  {
    u_name = "pool/roundtrip";
    u_work =
      (fun () ->
        let tasks =
          List.init 8 (fun i ->
              {
                Pool.key = Printf.sprintf "unit-%d" i;
                Pool.work =
                  (fun () -> Trg_util.Checksum.string (String.make 4096 'p'));
              })
        in
        let outcomes = Pool.run ~jobs tasks in
        List.iter
          (fun o ->
            match o.Pool.value with
            | Ok _ -> ()
            | Error f -> failwith (Pool.failure_to_string f))
          outcomes);
  }

let units ?(jobs = 2) ?(benches = default_benches) ?policy () =
  List.concat_map (bench_units ?policy) benches @ [ pool_unit ~jobs ]

let unit_names ?jobs ?benches ?policy () =
  List.map (fun u -> u.u_name) (units ?jobs ?benches ?policy ())

(* --- measurement ------------------------------------------------------- *)

(* Same allocation meter as [Span]: words ever allocated, so deltas are
   monotone and collections cannot produce negative samples. *)
let allocated_words () =
  let s = Gc.quick_stat () in
  Gc.minor_words () +. s.Gc.major_words -. s.Gc.promoted_words

(* The canonical string keeps its historical shape for LRU (the policy
   member is appended only when non-default), so every committed ledger's
   config_crc stays comparable to new records. *)
let config_crc ~benches ~reps ~jobs ~policy =
  let canon =
    Printf.sprintf "benches=%s;reps=%d;jobs=%d"
      (String.concat "," (List.sort compare benches))
      reps jobs
  in
  let canon =
    if policy = Trg_cache.Policy.Lru then canon
    else canon ^ ";policy=" ^ Trg_cache.Policy.to_string policy
  in
  Trg_util.Checksum.to_hex (Trg_util.Checksum.string canon)

let measure ?(reps = 5) ?(jobs = 2) ?(benches = default_benches)
    ?(policy = Trg_cache.Policy.Lru) ~rev ~time_s () =
  if reps < 1 then invalid_arg "Perfrun.measure: reps < 1";
  let slow = slow_spec () in
  let us = units ~jobs ~benches ~policy () in
  let n = List.length us in
  let wall = Array.make_matrix n reps 0. in
  let alloc = Array.make_matrix n reps 0. in
  (* Counters restart from zero so the record captures exactly one
     repetition's work profile, whatever ran in this process before. *)
  Metrics.clear ();
  let counters = ref [] in
  for rep = 0 to reps - 1 do
    List.iteri
      (fun i u ->
        let a0 = allocated_words () in
        let t0 = Clock.monotonic () in
        u.u_work ();
        (match slow with
        | Some (sub, seconds) when contains ~sub u.u_name ->
          Clock.sleep seconds
        | Some _ | None -> ());
        wall.(i).(rep) <- Float.max 0. (Clock.monotonic () -. t0);
        alloc.(i).(rep) <- Float.max 0. (allocated_words () -. a0))
      us;
    if rep = 0 then
      counters :=
        List.filter
          (fun (name, _) ->
            List.exists
              (fun p -> String.length name >= String.length p
                        && String.sub name 0 (String.length p) = p)
              counter_prefixes)
          (Metrics.counters ())
  done;
  let benches_stats =
    List.mapi
      (fun i u ->
        {
          Perf.b_name = u.u_name;
          wall_s = Perf.robust wall.(i);
          alloc_w = Perf.robust alloc.(i);
        })
      us
    |> List.sort (fun a b -> compare a.Perf.b_name b.Perf.b_name)
  in
  {
    Perf.rev;
    time_s;
    config_crc = config_crc ~benches ~reps ~jobs ~policy;
    reps;
    benches = benches_stats;
    counters = !counters;
  }
