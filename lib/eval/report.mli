(** Top-level experiment orchestration: regenerate every table and figure.

    Used by [bench/main.exe] (the full reproduction run) and the [trgplace]
    CLI.  All entry points print their results to stdout as ASCII tables
    mirroring the paper's presentation.

    Execution is {b sharded}: benchmark preparation and per-layout
    simulation are decomposed into work units and distributed over a pool
    of forked worker processes (see {!Pool}).  The decomposition is fixed
    — it never depends on the job count — per-unit PRNGs make every unit's
    numbers independent of scheduling, and unit output and telemetry are
    replayed in task order, so results (stdout, counters, manifests) are
    identical whatever [jobs] is set to.

    Every experiment is {b failure-isolating}: with [keep_going] set, one
    benchmark raising does not kill the batch — the failure is reported
    inline, recorded in the returned list, and the remaining benchmarks
    still run.  Strict mode ([keep_going = false], the default) re-raises
    the first failure, matching the historical behavior. *)

type options = {
  runs : int;  (** Figure 5 perturbed placements per algorithm *)
  fig6_points : int;  (** Figure 6 randomized layouts *)
  benches : Trg_synth.Shape.t list;  (** benchmarks to evaluate *)
  print_cdf : bool;  (** print full Figure 5 CDFs *)
  print_points : bool;  (** print full Figure 6 point sets *)
  keep_going : bool;
      (** isolate failures per benchmark instead of aborting the batch *)
  force_fail : string list;
      (** fault injection: benchmarks whose preparation fails (threaded to
          every {!Runner.prepare} the experiments perform) *)
  jobs : int;
      (** worker processes; [0] (the default) auto-detects the CPU count *)
  timeout : float option;
      (** per-work-unit wall-clock budget in seconds; an overrunning
          worker is killed and the unit reported as failed *)
  retries : int;
      (** extra dispatches for units lost to infrastructure faults
          (worker crash, timeout, corrupt reply stream) — see
          {!Pool.run}; [0] (the default) fails such units immediately *)
  policy : Trg_cache.Policy.kind;
      (** replacement policy for every single-level cache simulation
          (default LRU, which is exact at the paper's direct-mapped
          operating point); threaded to every {!Runner.prepare} *)
  cpus : string list;
      (** CPU presets the hierarchy experiment simulates, by
          {!Trg_cache.Cpu} name (default {!Trg_cache.Cpu.default_selection}) *)
}

type failure = {
  experiment : string;
  bench : string option;  (** [None] for failures outside a benchmark body *)
  message : string;
}

val default_options : options
(** Paper-faithful: 40 runs, 80 points, all six benchmarks, strict. *)

val quick_options : options
(** Small and fast: 8 runs, 20 points, the [small] workload only, strict. *)

val table1 : options -> failure list
(** Each experiment returns the failures it isolated — always [[]] in
    strict mode, where the first failure raises instead. *)

val characterize : options -> failure list
(** Reuse-distance characterisation of every selected benchmark. *)

val figure5 : options -> failure list

val figure6 : options -> failure list
(** Runs on [go] (as in the paper) when it is among the selected
    benchmarks, otherwise on the first selected benchmark. *)

val padding : options -> failure list
(** Runs on [perl] when selected, otherwise on the first benchmark. *)

val setassoc : options -> failure list
(** Runs on the [small] workload (pair databases are quadratic in Q). *)

val ablation : options -> failure list
(** Runs on the first selected benchmark. *)

val splitting : options -> failure list
(** Procedure splitting + GBSC on every selected benchmark. *)

val paging : options -> failure list
(** Page-locality comparison on every selected benchmark. *)

val sampling : options -> failure list
(** Sampled-profile quality study on the first selected benchmark. *)

val blocks : options -> failure list
(** Intra-procedure block reordering on every selected benchmark. *)

val online : options -> failure list
(** Online-vs-offline profiling comparison on the first selected benchmark. *)

val headroom : options -> failure list
(** Greedy-vs-annealed comparison on the first selected benchmark. *)

val hierarchy : options -> failure list
(** Multi-level hierarchy head-to-head (default vs PH vs HKC vs GBSC)
    across the selected CPU presets, on every selected benchmark. *)

val sweep : options -> failure list
(** Cache-size sweep on [go] when selected, else the first benchmark. *)

val all : options -> failure list
(** Every experiment in paper order, followed by the sweep.  All
    experiments' work units share one pool, so a slow experiment overlaps
    the rest of the batch.  With [keep_going], partial results are printed
    and every isolated failure is returned; callers turn a non-empty list
    into a non-zero exit. *)

val print_summary : failure list -> unit
(** Prints a per-failure summary table (nothing for [[]]). *)
