(** Fork-based worker pool for sharding evaluation work units.

    The paper's evaluation is embarrassingly parallel: benchmarks are
    prepared and then simulated under many independent layouts and cache
    configurations.  {!run} forks [jobs] worker processes, hands each
    idle worker the next task (dynamic dispatch, so uneven units balance
    across workers), and streams results back over pipes as
    length-prefixed, CRC-32-checked frames ({!Frame}).  Corrupt frames
    surface as the artifact pipeline's typed {!Trg_util.Fault.Error}s.

    {b Determinism.}  The result list is in task order, never completion
    order.  Each worker zeroes the telemetry registry before a unit and
    ships the unit's metric/span deltas back with the result; the parent
    absorbs them in task order with {!Trg_obs.Metrics.absorb} (counters
    add, gauges max, histograms add pointwise — associative and
    commutative), so manifests are bit-identical for any worker count.
    A unit's stdout is captured in the worker and replayed by the caller,
    again in task order.

    {b Isolation.}  A unit that raises, crashes its worker, or exceeds
    the per-unit [timeout] (SIGKILL escalation) yields a [failure]
    outcome for that unit only; the worker is respawned and the batch
    continues — the same partial-results semantics as [--keep-going].

    Workers are forked at {!run} time, so task closures and everything
    they capture (prepared benchmarks, options) are inherited by memory
    snapshot; only results travel back, marshaled with closure support
    since parent and workers are the same binary. *)

type failure =
  | Unit_failed of string  (** the task body raised; payload is the message *)
  | Timed_out of float  (** killed after exceeding the per-unit timeout (s) *)
  | Worker_crashed of string
      (** the worker process died mid-unit (signal, [exit], OOM kill) *)
  | Protocol_error of string
      (** the worker's result stream was corrupt (CRC mismatch, truncated
          or malformed frame) *)
  | Cancelled  (** never dispatched: an earlier unit failed under [fail_fast] *)

val failure_to_string : failure -> string

type 'a task = {
  key : string;  (** label used in failure messages; need not be unique *)
  work : unit -> 'a;  (** runs in a forked worker *)
}

type 'a outcome = {
  key : string;
  value : ('a, failure) result;
  output : string;  (** the unit's captured stdout (empty on [Cancelled]) *)
}

val default_jobs : unit -> int
(** Worker count when none is requested: the machine's available
    parallelism ([Domain.recommended_domain_count]), at least 1. *)

val run :
  ?jobs:int ->
  ?timeout:float ->
  ?fail_fast:bool ->
  'a task list ->
  'a outcome list
(** Executes every task and returns their outcomes in task order.
    [jobs] defaults to {!default_jobs}[ ()] (values [< 1] mean the
    default); at most [List.length tasks] workers are forked.  [timeout]
    is per unit, in seconds (default: none).  With [fail_fast] (default
    false), no new units are dispatched after the first failure;
    undispatched units report [Cancelled].  In-flight units still finish.

    Telemetry deltas of completed units (including failed ones — their
    spans carry the [Failed] outcome) are absorbed into the calling
    process's registry in task order. *)

(** The pipe wire format: [<8-byte LE payload length> <payload>
    <4-byte LE CRC-32 of payload>].  Exposed for tests. *)
module Frame : sig
  val write : Unix.file_descr -> string -> unit
  (** Writes one frame, retrying short writes.  Raises
      [Trg_util.Fault.Error (Io_error _)] on write failure. *)

  val read : Unix.file_descr -> string
  (** Blocking read of one frame; returns the payload.
      @raise End_of_file on a clean end of stream (no partial frame)
      @raise Trg_util.Fault.Error on a truncated stream
        ([Truncated]), an implausible length field ([Bad_record]) or a
        checksum mismatch ([Checksum_mismatch]). *)

  val encode : string -> string
  (** The exact bytes {!write} emits for a payload. *)
end
