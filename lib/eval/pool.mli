(** Worker pool for sharding evaluation work units, generic over its OS
    backend.

    The paper's evaluation is embarrassingly parallel: benchmarks are
    prepared and then simulated under many independent layouts and cache
    configurations.  {!run} forks [jobs] worker processes, hands each
    idle worker the next task (dynamic dispatch, so uneven units balance
    across workers), and streams results back over pipes as
    length-prefixed, CRC-32-checked frames ({!Frame}).  Corrupt frames
    surface as the artifact pipeline's typed {!Trg_util.Fault.Error}s.

    All of that logic — framing, scheduling, per-unit deadlines,
    supervision, retries — lives in {!Make}, a functor over the small OS
    surface {!Pool_os.S}.  {!run} is [Make(Pool_os.Real)]: real forked
    processes, real pipes, the real monotonic clock.
    {!Trg_eval.Pool_sim} instantiates the same engine over a
    deterministic in-process simulator to execute seeded fault
    schedules.

    {b Determinism.}  The result list is in task order, never completion
    order.  Each worker zeroes the telemetry registry before a unit and
    ships the unit's metric/span deltas back with the result; the parent
    absorbs them in task order with {!Trg_obs.Metrics.absorb} (counters
    add, gauges max, histograms add pointwise — associative and
    commutative), so manifests are bit-identical for any worker count.
    A unit's stdout is captured in the worker and replayed by the caller,
    again in task order.  The pool's own [pool/*] counters (units by
    outcome, crashes, timeouts, protocol errors, respawns, retries) are
    bumped in amounts independent of the worker count, preserving the
    jobs-invariance of manifests.

    {b Isolation and supervision.}  A unit that raises, crashes its
    worker, or exceeds the per-unit [timeout] (SIGKILL escalation)
    yields a [failure] outcome for that unit only; as long as work
    remains, a dead worker is replaced by a fresh one, so the batch
    continues at full width — the same partial-results semantics as
    [--keep-going].

    {b Deadlines} are computed on the monotonic clock
    ({!Trg_util.Clock.monotonic}), so a wall-clock step (NTP, manual
    [date]) neither fires every timeout at once nor starves them.

    Workers are forked at {!run} time, so task closures and everything
    they capture (prepared benchmarks, options) are inherited by memory
    snapshot; only results travel back, marshaled with closure support
    since parent and workers are the same binary. *)

type failure =
  | Unit_failed of string  (** the task body raised; payload is the message *)
  | Timed_out of float  (** killed after exceeding the per-unit timeout (s) *)
  | Worker_crashed of string
      (** the worker process died mid-unit (signal, [exit], OOM kill) *)
  | Protocol_error of string
      (** the worker's result stream was corrupt (CRC mismatch, truncated
          or malformed frame) *)
  | Cancelled  (** never dispatched: an earlier unit failed under [fail_fast] *)

val failure_to_string : failure -> string

val retryable_failure : failure -> bool
(** Whether a failure is an infrastructure fault (crash, timeout,
    corrupt stream) that retrying could plausibly cure — as opposed to
    the unit's own code failing deterministically. *)

type 'a task = {
  key : string;  (** label used in failure messages; need not be unique *)
  work : unit -> 'a;  (** runs in a forked worker *)
}

type 'a outcome = {
  key : string;
  value : ('a, failure) result;
  output : string;  (** the unit's captured stdout (empty on [Cancelled]) *)
}

val default_jobs : unit -> int
(** Worker count when none is requested: the machine's available
    parallelism ([Domain.recommended_domain_count]), at least 1. *)

val run :
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?retry_delay:float ->
  ?fail_fast:bool ->
  'a task list ->
  'a outcome list
(** Executes every task and returns their outcomes in task order.
    [jobs] defaults to {!default_jobs}[ ()] (values [< 1] mean the
    default); at most [List.length tasks] workers are forked.  [timeout]
    is per unit, in seconds (default: none).

    [retries] (default 0) re-dispatches a unit whose failure satisfies
    {!retryable_failure} up to that many extra times, with exponential
    backoff starting at [retry_delay] seconds (default 0.05, doubling
    per attempt — {!Trg_util.Fault.with_retry}'s curve, but waited on
    the pool clock without blocking other workers).  A unit that
    exhausts its retries reports its {e last} failure.

    With [fail_fast] (default false), no new units are dispatched after
    the first definitive failure; undispatched units report [Cancelled],
    and units cut while awaiting a retry report the infrastructure
    fault that queued them.  In-flight units still finish.

    Telemetry deltas of completed units (including failed ones — their
    spans carry the [Failed] outcome) are absorbed into the calling
    process's registry in task order. *)

(** The pool engine over an arbitrary OS backend.  [Make(Pool_os.Real)]
    is the production pool; {!Trg_eval.Pool_sim} instantiates it over
    the deterministic simulator.  The [os] value is threaded through
    every OS interaction. *)
module Make (Os : Pool_os.S) : sig
  val run :
    os:Os.os ->
    ?jobs:int ->
    ?timeout:float ->
    ?retries:int ->
    ?retry_delay:float ->
    ?fail_fast:bool ->
    'a task list ->
    'a outcome list
  (** Same contract as the top-level {!run}, against [os]. *)
end

(** The pipe wire format: [<8-byte LE payload length> <payload>
    <4-byte LE CRC-32 of payload>].  Exposed for tests. *)
module Frame : sig
  val write : Unix.file_descr -> string -> unit
  (** Writes one frame, retrying short writes.  Raises
      [Trg_util.Fault.Error (Io_error _)] on write failure. *)

  val read : Unix.file_descr -> string
  (** Blocking read of one frame; returns the payload.
      @raise End_of_file on a clean end of stream (no partial frame)
      @raise Trg_util.Fault.Error on a truncated stream
        ([Truncated]), an implausible length field ([Bad_record]) or a
        checksum mismatch ([Checksum_mismatch]). *)

  val encode : string -> string
  (** The exact bytes {!write} emits for a payload. *)
end
