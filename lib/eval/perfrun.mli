(** The measurement suite behind [trgplace perf].

    A small deterministic set of units covering the pipeline's cost
    centres — benchmark preparation, the placement algorithms (GBSC
    under both cost engines), the trace simulator, one worker-pool
    round-trip — each run [reps] times.  {!measure} reduces the
    repetitions to median + MAD per unit and captures the deterministic
    [cost/*], [merge/*], [pool/*] and [sim/*] counters of the first
    repetition into a {!Trg_obs.Perf.record} ready for the ledger.

    Determinism note: {!measure} calls [Trg_obs.Metrics.clear] so the
    captured counters describe exactly one repetition.  With profiling
    off they depend only on the unit set — not on [jobs], wall clock or
    machine — which is what lets the CI gate hold them exactly. *)

val default_benches : string list
(** [["small"]]. *)

val counter_prefixes : string list
(** The counter namespaces recorded per session:
    [["cost/"; "merge/"; "pool/"; "sim/"]]. *)

val slow_env : string
(** ["TRGPLACE_PERF_SLOW"].  When set to ["<seconds>"] every unit is
    slowed by that much; ["<substring>:<seconds>"] slows only units
    whose name contains the substring.  The hook exists so the
    regression gate's failure path is testable end to end (CI slows a
    hot path on purpose and expects exit 1). *)

val unit_names :
  ?jobs:int ->
  ?benches:string list ->
  ?policy:Trg_cache.Policy.kind ->
  unit ->
  string list
(** The unit names {!measure} would produce, e.g. ["small/gbsc-incr"],
    ["pool/roundtrip"]. *)

val measure :
  ?reps:int ->
  ?jobs:int ->
  ?benches:string list ->
  ?policy:Trg_cache.Policy.kind ->
  rev:string ->
  time_s:float ->
  unit ->
  Trg_obs.Perf.record
(** Run every unit [reps] (default 5) times and reduce to a ledger
    record.  [jobs] (default 2) sizes the pool round-trip unit only —
    the recorded counters are jobs-invariant.  [policy] (default
    {!Trg_cache.Policy.Lru}) is the replacement policy the preparation
    and simulation units run under; a non-default policy changes the
    record's [config_crc], so differently-configured sessions never gate
    against each other.  [rev] and [time_s] are stored verbatim.
    @raise Invalid_argument if [reps < 1]. *)
