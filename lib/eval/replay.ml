module Journal = Trg_obs.Journal
module Json = Trg_obs.Json
module Layout = Trg_program.Layout
module Gbsc = Trg_place.Gbsc
module Gbsc_sa = Trg_place.Gbsc_sa
module Cost = Trg_place.Cost
module Config = Trg_cache.Config
module Bench = Trg_synth.Bench
module Shape = Trg_synth.Shape

let algos = [ "gbsc"; "ph"; "hkc"; "gbsc-sa" ]

let layout_for ?decisions ~algo runner =
  match algo with
  | "gbsc" -> Runner.gbsc_layout ?decisions runner
  | "ph" -> Runner.ph_layout ?decisions runner
  | "hkc" -> Runner.hkc_layout ?decisions runner
  | "gbsc-sa" ->
    let program = Runner.program runner in
    Gbsc_sa.place ?decisions program
      (Gbsc_sa.profile runner.Runner.config program runner.Runner.train)
  | other ->
    failwith
      (Printf.sprintf "replay: unknown algorithm %S (choose from: %s)" other
         (String.concat ", " algos))

let prepare_for (meta : Journal.meta) =
  let shape =
    try Bench.find meta.Journal.source
    with Not_found ->
      failwith
        (Printf.sprintf "replay: journal source %S is not a known benchmark"
           meta.Journal.source)
  in
  let cache =
    if meta.Journal.cache_size > 0 then
      Config.make ~size:meta.Journal.cache_size
        ~line_size:meta.Journal.cache_line ~assoc:meta.Journal.cache_assoc
    else Config.default
  in
  Runner.prepare ~config:(Gbsc.default_config ~cache ()) shape

let record ~algo runner =
  Journal.arm ~algo ~source:runner.Runner.shape.Shape.name;
  let layout = layout_for ~algo runner in
  match Journal.take () with
  | Some j -> (j, layout)
  | None ->
    failwith
      (Printf.sprintf
         "journal: placement %S never offered itself for recording" algo)

type report = {
  r_journal : Journal.t;
  r_engine : string;
  r_steps : int;
  r_layout_crc : int option;
  r_total_weight : float option;
  r_mismatches : string list;
}

let ok r = r.r_mismatches = []

let fl = Printf.sprintf "%h"

(* Claim-by-claim comparison of the recorded journal against the journal
   re-captured during the forced-choice replay.  The driver already
   verified pairs, weights and runner-ups bit-exactly while re-driving,
   so the work left here is what only the algorithm layer knows: the
   engine-derived offsets and their costs, plus the sealed claims. *)
let compare_captures (j : Journal.t) (r : Journal.t) =
  let ms = ref [] in
  let add fmt = Printf.ksprintf (fun s -> ms := s :: !ms) fmt in
  let nj = Array.length j.Journal.decisions
  and nr = Array.length r.Journal.decisions in
  if nj <> nr then add "step count: journal %d, replay re-recorded %d" nj nr;
  for i = 0 to min nj nr - 1 do
    let d = j.Journal.decisions.(i) and e = r.Journal.decisions.(i) in
    if d.Journal.d_u <> e.Journal.d_u || d.Journal.d_v <> e.Journal.d_v then
      add "step %d: pair (%d,%d) replayed as (%d,%d)" i d.Journal.d_u
        d.Journal.d_v e.Journal.d_u e.Journal.d_v;
    (match (d.Journal.shift, e.Journal.shift) with
    | None, None -> ()
    | Some a, Some b when a = b -> ()
    | a, b ->
      let s = function None -> "-" | Some x -> string_of_int x in
      add "step %d: shift %s replayed as %s" i (s a) (s b));
    match (d.Journal.shift_cost, e.Journal.shift_cost) with
    | None, None -> ()
    | Some a, Some b when a = b -> ()
    | a, b ->
      let s = function None -> "-" | Some x -> fl x in
      add "step %d: shift cost %s replayed as %s" i (s a) (s b)
  done;
  if j.Journal.claims.Journal.layout_crc <> r.Journal.claims.Journal.layout_crc
  then
    add "layout CRC: journal %08x, replay %08x"
      j.Journal.claims.Journal.layout_crc r.Journal.claims.Journal.layout_crc;
  if
    j.Journal.claims.Journal.total_weight
    <> r.Journal.claims.Journal.total_weight
  then
    add "total weight: journal %s, replay %s"
      (fl j.Journal.claims.Journal.total_weight)
      (fl r.Journal.claims.Journal.total_weight);
  List.rev !ms

let verify (j : Journal.t) =
  let engine = Cost.engine_name (Cost.engine ()) in
  let runner = prepare_for j.Journal.meta in
  Journal.start_recording ~meta:{ j.Journal.meta with Journal.engine = engine };
  match
    layout_for ~decisions:j.Journal.decisions ~algo:j.Journal.meta.Journal.algo
      runner
  with
  | exception e ->
    Journal.abort ();
    let msg = match e with Failure m -> m | e -> Printexc.to_string e in
    {
      r_journal = j;
      r_engine = engine;
      r_steps = 0;
      r_layout_crc = None;
      r_total_weight = None;
      r_mismatches = [ msg ];
    }
  | layout -> (
    Journal.finish ~layout_crc:(Layout.digest layout);
    match Journal.take () with
    | None ->
      (* finish is a no-op only if recording never started — unreachable
         after a successful start_recording. *)
      failwith "replay: re-recorded journal vanished"
    | Some r ->
      {
        r_journal = j;
        r_engine = engine;
        r_steps = Array.length r.Journal.decisions;
        r_layout_crc = Some r.Journal.claims.Journal.layout_crc;
        r_total_weight = Some r.Journal.claims.Journal.total_weight;
        r_mismatches = compare_captures j r;
      })

let report_json r =
  let j = r.r_journal in
  Json.Obj
    [
      ("schema", Json.String "trgplace-replay/1");
      ("journal_schema", Json.String Journal.schema);
      ("algo", Json.String j.Journal.meta.Journal.algo);
      ("source", Json.String j.Journal.meta.Journal.source);
      ("engine_recorded", Json.String j.Journal.meta.Journal.engine);
      ("engine_replayed", Json.String r.r_engine);
      ("steps", Json.Int (Array.length j.Journal.decisions));
      ("steps_replayed", Json.Int r.r_steps);
      ("ok", Json.Bool (ok r));
      ( "layout_crc",
        Json.String (Printf.sprintf "%08x" j.Journal.claims.Journal.layout_crc)
      );
      ( "layout_crc_replayed",
        match r.r_layout_crc with
        | None -> Json.Null
        | Some c -> Json.String (Printf.sprintf "%08x" c) );
      ( "total_weight",
        Json.Float j.Journal.claims.Journal.total_weight );
      ( "total_weight_replayed",
        match r.r_total_weight with
        | None -> Json.Null
        | Some w -> Json.Float w );
      ( "mismatches",
        Json.List (List.map (fun m -> Json.String m) r.r_mismatches) );
    ]
