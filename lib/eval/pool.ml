module Fault = Trg_util.Fault
module Checksum = Trg_util.Checksum
module Metrics = Trg_obs.Metrics
module Span = Trg_obs.Span

type failure =
  | Unit_failed of string
  | Timed_out of float
  | Worker_crashed of string
  | Protocol_error of string
  | Cancelled

let failure_to_string = function
  | Unit_failed msg -> msg
  | Timed_out t -> Printf.sprintf "timed out after %.1fs (killed)" t
  | Worker_crashed msg -> Printf.sprintf "worker crashed: %s" msg
  | Protocol_error msg -> Printf.sprintf "result stream corrupt: %s" msg
  | Cancelled -> "cancelled after an earlier failure"

(* Infrastructure faults are worth a second attempt: the unit itself
   never ran to completion.  A unit whose own body raised is
   deterministic and would fail again. *)
let retryable_failure = function
  | Worker_crashed _ | Timed_out _ | Protocol_error _ -> true
  | Unit_failed _ | Cancelled -> false

type 'a task = { key : string; work : unit -> 'a }

type 'a outcome = { key : string; value : ('a, failure) result; output : string }

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let message_of = function Failure m -> m | e -> Printexc.to_string e

(* Every counter here is bumped by the parent event loop, in amounts
   that depend only on the task list and the faults that occurred —
   never on the worker count — so manifests stay identical across
   [--jobs] settings. *)
let c_units_ok = Metrics.counter "pool/units_ok"

let c_units_failed = Metrics.counter "pool/units_failed"

let c_units_cancelled = Metrics.counter "pool/units_cancelled"

let c_crashes = Metrics.counter "pool/worker_crashes"

let c_timeouts = Metrics.counter "pool/timeouts"

let c_protocol_errors = Metrics.counter "pool/protocol_errors"

let c_respawns = Metrics.counter "pool/respawns"

let c_retries = Metrics.counter "pool/retries"

(* Hot-path profile: how long a unit sat ready before a worker took it,
   and how long the worker held it.  Lazy so [prof/*] stays out of the
   registry (and out of manifests) unless [--profile] observed
   something.  These are wall-clock-shaped, unlike the [pool/*] counters
   above, which is exactly why they live under [prof/] — the manifest
   tolerance gate never reads that prefix. *)
let h_queue_wait_us =
  lazy
    (Metrics.histogram ~limits:Trg_obs.Prof.us_limits
       "prof/pool/queue_wait_us")

let h_run_us =
  lazy (Metrics.histogram ~limits:Trg_obs.Prof.us_limits "prof/pool/run_us")

(* --- wire format ------------------------------------------------------ *)

(* Byte-level frame codec parameterized by the transport, so the exact
   same framing (and its fault behaviour) runs over real pipes and over
   the simulator's virtual ones.  [write_fn]/[read_fn] follow the
   {!Pool_os.S} [write]/[read] contracts. *)
module Wire = struct
  let header_len = 8

  let trailer_len = 4

  (* Far above any real reply; a corrupt length field must not drive a
     gigantic allocation. *)
  let max_len = 1 lsl 30

  let encode payload =
    let len = String.length payload in
    let b = Bytes.create (header_len + len + trailer_len) in
    Bytes.set_int64_le b 0 (Int64.of_int len);
    Bytes.blit_string payload 0 b header_len len;
    Bytes.set_int32_le b (header_len + len) (Int32.of_int (Checksum.string payload));
    Bytes.unsafe_to_string b

  let write ~write_fn payload =
    let s = encode payload in
    let rec write_all pos len =
      if len > 0 then begin
        let n = write_fn s pos len in
        write_all (pos + n) (len - n)
      end
    in
    write_all 0 (String.length s)

  (* Reads exactly [len] bytes; [0] bytes mid-object is a truncation,
     not a clean end of stream. *)
  let rec read_exact ~read_fn b pos len ~what =
    if len > 0 then begin
      let n = read_fn b pos len in
      if n = 0 then Fault.fail (Fault.Truncated what);
      read_exact ~read_fn b (pos + n) (len - n) ~what
    end

  let read ~read_fn =
    let header = Bytes.create header_len in
    let first = read_fn header 0 header_len in
    if first = 0 then raise End_of_file;
    read_exact ~read_fn header first (header_len - first) ~what:"pool frame header";
    let len = Int64.to_int (Bytes.get_int64_le header 0) in
    if len < 0 || len > max_len then
      Fault.fail (Fault.Bad_record (Printf.sprintf "pool frame length %d" len));
    let payload = Bytes.create len in
    read_exact ~read_fn payload 0 len ~what:"pool frame payload";
    let trailer = Bytes.create trailer_len in
    read_exact ~read_fn trailer 0 trailer_len ~what:"pool frame checksum";
    let payload = Bytes.unsafe_to_string payload in
    let stored = Int32.to_int (Bytes.get_int32_le trailer 0) land 0xFFFFFFFF in
    let computed = Checksum.string payload in
    if stored <> computed then
      Fault.fail (Fault.Checksum_mismatch { stored; computed });
    payload
end

(* --- worker side ------------------------------------------------------ *)

(* What travels back per unit: the value (or the failure message), the
   unit's telemetry deltas, and its captured stdout.  Marshaled with
   closure support — parent and worker are the same binary, so code
   pointers are valid, and values like prepared runners may close over
   functions. *)
type 'a reply = {
  r_value : ('a, string) result;
  r_metrics : Metrics.snapshot;
  r_spans : Span.record list;
  r_output : string;
}

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Redirect fd 1 to a per-unit temp file so a unit's printing can be
   replayed by the parent in task order.  The temp name embeds the pid:
   forked workers share the parent's [Filename.temp_file] PRNG state and
   would otherwise race for the same candidate names. *)
let captured f =
  let path =
    Filename.temp_file (Printf.sprintf "trg-pool-%d-" (Unix.getpid ())) ".out"
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      flush stdout;
      let saved = Unix.dup Unix.stdout in
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
      Unix.dup2 fd Unix.stdout;
      Unix.close fd;
      let v = try Ok (f ()) with e -> Error (message_of e) in
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      (v, read_whole path))

let execute task =
  (* The registry and span list restart from zero for every unit, so the
     reply carries exactly this unit's deltas; the parent re-adds them.
     Mutating them here is invisible to the parent under the forking
     backend (copy-on-write); the simulator's [isolated] hook saves and
     restores the parent state around this call. *)
  Metrics.clear ();
  Span.reset ();
  let value, output = captured task.work in
  {
    r_value = value;
    r_metrics = Metrics.snapshot ();
    r_spans = Span.records ();
    r_output = output;
  }

(* --- the engine, generic over the OS backend -------------------------- *)

module Make (Os : Pool_os.S) = struct
  type worker = {
    pid : Os.pid;
    lane : int;  (* 1-based spawn ordinal; respawns get fresh lanes *)
    task_w : Os.fd;
    reply_r : Os.fd;
    mutable current : int option;  (* task index in flight *)
    mutable dispatched : float;  (* Os.now at last assign, for prof *)
    mutable deadline : float;  (* [infinity] = no timeout pending *)
    mutable closing : bool;  (* shutdown sent, EOF expected *)
  }

  (* A reply remembers which lane produced it, so absorbed spans can be
     tagged for the per-worker trace timelines. *)
  type 'a slot = Pending | Replied of 'a reply * int | Broken of failure

  let write_frame os fd payload =
    Wire.write ~write_fn:(fun s pos len -> Os.write os fd s pos len) payload

  let read_frame os fd = Wire.read ~read_fn:(fun b pos len -> Os.read os fd b pos len)

  let worker_body os tasks ~task_r ~reply_w =
    let rec loop () =
      match (Marshal.from_string (read_frame os task_r) 0 : int) with
      | exception End_of_file -> ()
      | idx when idx < 0 -> ()
      | idx ->
        let reply = Os.isolated os (fun () -> execute tasks.(idx)) in
        write_frame os reply_w (Marshal.to_string reply [ Marshal.Closures ]);
        loop ()
    in
    loop ()

  let run (type a) ~os ?jobs ?timeout ?(retries = 0) ?(retry_delay = 0.05)
      ?(fail_fast = false) (tasks : a task list) : a outcome list =
    if retries < 0 then invalid_arg "Pool.run: retries < 0";
    match tasks with
    | [] -> []
    | _ ->
      let task_arr = Array.of_list tasks in
      let n = Array.length task_arr in
      let jobs =
        min n
          (match jobs with Some j when j >= 1 -> j | Some _ | None -> default_jobs ())
      in
      let slots : a slot array = Array.make n Pending in
      (* Dispatch count per unit; a unit is retried while its count is
         still <= [retries]. *)
      let attempts = Array.make n 0 in
      (* When each unit (re-)entered the ready queue, for the queue-wait
         profile; every unit is ready from the moment the run starts. *)
      let ready_since = Array.make n (Os.now os) in
      (* The failure that queued a unit for retry — reported if the
         batch is cut before the retry runs. *)
      let last_failure : failure option array = Array.make n None in
      let next = ref 0 in
      (* Sorted by (ready time, index): deterministic pick order. *)
      let retry_q : (float * int) list ref = ref [] in
      let have_failure = ref false in
      let workers : worker list ref = ref [] in
      let settle idx f =
        slots.(idx) <- Broken f;
        have_failure := true
      in
      let fail_unit idx f =
        if retryable_failure f && attempts.(idx) <= retries then begin
          Metrics.incr c_retries;
          last_failure.(idx) <- Some f;
          (* [Fault.with_retry]'s backoff curve: delay doubles per
             attempt, but waits on the pool's (monotonic or virtual)
             clock instead of blocking the event loop. *)
          let backoff = retry_delay *. (2. ** float_of_int (attempts.(idx) - 1)) in
          let ready = Os.now os +. backoff in
          ready_since.(idx) <- ready;
          retry_q := List.merge compare !retry_q [ (ready, idx) ]
        end
        else settle idx f
      in
      let cut () = fail_fast && !have_failure in
      let pending_work () = (not (cut ())) && (!next < n || !retry_q <> []) in
      let next_task now =
        match !retry_q with
        | (ready, idx) :: rest when ready <= now ->
          retry_q := rest;
          Some idx
        | _ ->
          if !next < n then begin
            let idx = !next in
            incr next;
            Some idx
          end
          else None
      in
      let shutdown w =
        if not w.closing then begin
          w.closing <- true;
          (try write_frame os w.task_w (Marshal.to_string (-1) []) with
          | Fault.Error _ -> ());
          Os.close os w.task_w
        end
      in
      let assign w =
        if not (pending_work ()) then shutdown w
        else
          match next_task (Os.now os) with
          | None -> ()  (* only unready retries left: stay idle, poll later *)
          | Some idx ->
            attempts.(idx) <- attempts.(idx) + 1;
            w.current <- Some idx;
            let now = Os.now os in
            if Trg_obs.Prof.enabled () then
              Metrics.observe
                (Lazy.force h_queue_wait_us)
                (1e6 *. Float.max 0. (now -. ready_since.(idx)));
            w.dispatched <- now;
            w.deadline <-
              (match timeout with Some t -> now +. t | None -> infinity);
            (* A write failure means the worker already died; the EOF
               path attributes the unit to the crash. *)
            (try write_frame os w.task_w (Marshal.to_string idx []) with
            | Fault.Error _ -> ())
      in
      let retire w =
        Os.close os w.reply_r;
        if not w.closing then Os.close os w.task_w;
        workers := List.filter (fun x -> x.pid <> w.pid) !workers
      in
      (* Lanes count worker spawns (1-based; 0 is the main process), so a
         respawned worker shows up as a fresh timeline in traces instead
         of silently continuing its predecessor's. *)
      let lane_counter = ref 0 in
      let spawn_worker () =
        let close_in_child =
          List.concat_map (fun w -> [ w.task_w; w.reply_r ]) !workers
        in
        let pid, task_w, reply_r =
          Os.spawn os ~close_in_child (fun ~task_r ~reply_w ->
              worker_body os task_arr ~task_r ~reply_w)
        in
        incr lane_counter;
        {
          pid;
          lane = !lane_counter;
          task_w;
          reply_r;
          current = None;
          dispatched = 0.;
          deadline = infinity;
          closing = false;
        }
      in
      (* The supervisor: a dead worker is replaced whenever work remains,
         so one crashy unit cannot silently halve the pool's capacity. *)
      let replace () =
        if pending_work () then begin
          Metrics.incr c_respawns;
          let w = spawn_worker () in
          workers := w :: !workers;
          assign w
        end
      in
      let kill_retire_replace w failure =
        (match w.current with Some idx -> fail_unit idx failure | None -> ());
        w.current <- None;
        Os.kill os w.pid;
        ignore (Os.wait os w.pid);
        retire w;
        replace ()
      in
      let on_eof w =
        let status = Os.wait os w.pid in
        if not w.closing then Metrics.incr c_crashes;
        (match w.current with
        | Some idx ->
          fail_unit idx
            (Worker_crashed (Printf.sprintf "%s before replying" status))
        | None -> ());
        retire w;
        replace ()
      in
      let on_readable w =
        match
          let payload = read_frame os w.reply_r in
          (Marshal.from_string payload 0 : a reply)
        with
        | reply -> (
          match w.current with
          | Some idx ->
            slots.(idx) <- Replied (reply, w.lane);
            if Trg_obs.Prof.enabled () then
              Metrics.observe (Lazy.force h_run_us)
                (1e6 *. Float.max 0. (Os.now os -. w.dispatched));
            (match reply.r_value with
            | Error _ -> have_failure := true
            | Ok _ -> ());
            w.current <- None;
            w.deadline <- infinity;
            assign w
          | None ->
            Metrics.incr c_protocol_errors;
            kill_retire_replace w (Protocol_error "unsolicited reply frame"))
        | exception End_of_file -> on_eof w
        | exception Fault.Error e ->
          Metrics.incr c_protocol_errors;
          kill_retire_replace w (Protocol_error (Fault.to_string e))
        | exception Failure msg ->
          (* [Marshal.from_string] rejected the payload. *)
          Metrics.incr c_protocol_errors;
          kill_retire_replace w (Protocol_error msg)
      in
      (* SIGPIPE's default disposition would kill the parent on a write
         to a crashed worker; with it ignored the write fails with EPIPE
         and is handled like any other crash. *)
      let prev_sigpipe =
        try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
        with Invalid_argument _ | Sys_error _ -> None
      in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun w ->
              Os.kill os w.pid;
              ignore (Os.wait os w.pid);
              Os.close os w.reply_r;
              if not w.closing then Os.close os w.task_w)
            !workers;
          workers := [];
          match prev_sigpipe with
          | Some h -> (
            try Sys.set_signal Sys.sigpipe h with Invalid_argument _ -> ())
          | None -> ())
        (fun () ->
          for _ = 1 to jobs do
            workers := spawn_worker () :: !workers
          done;
          List.iter assign (List.rev !workers);
          while !workers <> [] do
            let now = Os.now os in
            let expired = List.filter (fun w -> w.deadline <= now) !workers in
            if expired <> [] then
              List.iter
                (fun w ->
                  if List.memq w !workers then begin
                    Metrics.incr c_timeouts;
                    kill_retire_replace w
                      (Timed_out (Option.value timeout ~default:0.))
                  end)
                expired
            else begin
              (* Idle workers pick up retries as their backoff expires
                 (or shut down once no work can ever reach them). *)
              List.iter
                (fun w -> if w.current = None && not w.closing then assign w)
                (List.rev !workers);
              if !workers <> [] then begin
                let fds = List.map (fun w -> w.reply_r) !workers in
                let tmo =
                  let d =
                    List.fold_left
                      (fun acc w -> Float.min acc w.deadline)
                      infinity !workers
                  in
                  let d =
                    match !retry_q with
                    | (ready, _) :: _ -> Float.min d ready
                    | [] -> d
                  in
                  if d = infinity then -1. else Float.max 0.01 (d -. now)
                in
                (* Look readable fds up in a pre-select snapshot: a
                   worker retired mid-iteration may have released its fd
                   number to a freshly spawned replacement. *)
                let readable = Os.select os fds tmo in
                let snapshot = !workers in
                List.iter
                  (fun fd ->
                    match List.find_opt (fun w -> w.reply_r = fd) snapshot with
                    | Some w when List.memq w !workers -> on_readable w
                    | Some _ | None -> ())
                  readable
              end
            end
          done);
      (* Task order, never completion order: absorb each unit's telemetry
         and emit its outcome by index. *)
      Array.to_list
        (Array.mapi
           (fun idx slot ->
             let task = task_arr.(idx) in
             match slot with
             | Replied (reply, lane) ->
               Metrics.absorb reply.r_metrics;
               Span.inject ~lane reply.r_spans;
               let value =
                 match reply.r_value with
                 | Ok v ->
                   Metrics.incr c_units_ok;
                   Ok v
                 | Error msg ->
                   Metrics.incr c_units_failed;
                   Error (Unit_failed msg)
               in
               { key = task.key; value; output = reply.r_output }
             | Broken f ->
               Metrics.incr c_units_failed;
               { key = task.key; value = Error f; output = "" }
             | Pending -> (
               (* Never settled: either cancelled before its first
                  dispatch, or cut while waiting for a retry — in which
                  case the original infrastructure fault is the honest
                  attribution. *)
               match last_failure.(idx) with
               | Some f ->
                 Metrics.incr c_units_failed;
                 { key = task.key; value = Error f; output = "" }
               | None ->
                 Metrics.incr c_units_cancelled;
                 { key = task.key; value = Error Cancelled; output = "" }))
           slots)
end

(* --- the production instantiation ------------------------------------- *)

module Real_engine = Make (Pool_os.Real)

let run ?jobs ?timeout ?retries ?retry_delay ?fail_fast tasks =
  Real_engine.run ~os:() ?jobs ?timeout ?retries ?retry_delay ?fail_fast tasks

module Frame = struct
  let encode = Wire.encode

  let write fd payload =
    Wire.write ~write_fn:(fun s pos len -> Pool_os.Real.write () fd s pos len) payload

  let read fd = Wire.read ~read_fn:(fun b pos len -> Pool_os.Real.read () fd b pos len)
end
