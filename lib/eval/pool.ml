module Fault = Trg_util.Fault
module Checksum = Trg_util.Checksum
module Metrics = Trg_obs.Metrics
module Span = Trg_obs.Span

type failure =
  | Unit_failed of string
  | Timed_out of float
  | Worker_crashed of string
  | Protocol_error of string
  | Cancelled

let failure_to_string = function
  | Unit_failed msg -> msg
  | Timed_out t -> Printf.sprintf "timed out after %.1fs (killed)" t
  | Worker_crashed msg -> Printf.sprintf "worker crashed: %s" msg
  | Protocol_error msg -> Printf.sprintf "result stream corrupt: %s" msg
  | Cancelled -> "cancelled after an earlier failure"

type 'a task = { key : string; work : unit -> 'a }

type 'a outcome = { key : string; value : ('a, failure) result; output : string }

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let message_of = function Failure m -> m | e -> Printexc.to_string e

(* --- wire format ------------------------------------------------------ *)

module Frame = struct
  let header_len = 8

  let trailer_len = 4

  (* Far above any real reply; a corrupt length field must not drive a
     gigantic allocation. *)
  let max_len = 1 lsl 30

  let encode payload =
    let len = String.length payload in
    let b = Bytes.create (header_len + len + trailer_len) in
    Bytes.set_int64_le b 0 (Int64.of_int len);
    Bytes.blit_string payload 0 b header_len len;
    Bytes.set_int32_le b (header_len + len) (Int32.of_int (Checksum.string payload));
    Bytes.unsafe_to_string b

  let rec write_all fd s pos len =
    if len > 0 then begin
      let n =
        try Unix.write_substring fd s pos len with
        | Unix.Unix_error (Unix.EINTR, _, _) -> 0
        | Unix.Unix_error (e, _, _) ->
          Fault.fail
            (Fault.Io_error
               (Printf.sprintf "pool pipe write: %s" (Unix.error_message e)))
      in
      write_all fd s (pos + n) (len - n)
    end

  let write fd payload =
    let s = encode payload in
    write_all fd s 0 (String.length s)

  let read_retrying fd b pos len =
    let rec go () =
      try Unix.read fd b pos len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | Unix.Unix_error (e, _, _) ->
        Fault.fail
          (Fault.Io_error
             (Printf.sprintf "pool pipe read: %s" (Unix.error_message e)))
    in
    go ()

  (* Reads exactly [len] bytes; [0] bytes mid-object is a truncation, not
     a clean end of stream. *)
  let rec read_exact fd b pos len ~what =
    if len > 0 then begin
      let n = read_retrying fd b pos len in
      if n = 0 then Fault.fail (Fault.Truncated what);
      read_exact fd b (pos + n) (len - n) ~what
    end

  let read fd =
    let header = Bytes.create header_len in
    let first = read_retrying fd header 0 header_len in
    if first = 0 then raise End_of_file;
    read_exact fd header first (header_len - first) ~what:"pool frame header";
    let len = Int64.to_int (Bytes.get_int64_le header 0) in
    if len < 0 || len > max_len then
      Fault.fail (Fault.Bad_record (Printf.sprintf "pool frame length %d" len));
    let payload = Bytes.create len in
    read_exact fd payload 0 len ~what:"pool frame payload";
    let trailer = Bytes.create trailer_len in
    read_exact fd trailer 0 trailer_len ~what:"pool frame checksum";
    let payload = Bytes.unsafe_to_string payload in
    let stored = Int32.to_int (Bytes.get_int32_le trailer 0) land 0xFFFFFFFF in
    let computed = Checksum.string payload in
    if stored <> computed then
      Fault.fail (Fault.Checksum_mismatch { stored; computed });
    payload
end

(* --- worker side ------------------------------------------------------ *)

(* What travels back per unit: the value (or the failure message), the
   unit's telemetry deltas, and its captured stdout.  Marshaled with
   closure support — parent and worker are the same binary, so code
   pointers are valid, and values like prepared runners may close over
   functions. *)
type 'a reply = {
  r_value : ('a, string) result;
  r_metrics : Metrics.snapshot;
  r_spans : Span.record list;
  r_output : string;
}

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Redirect fd 1 to a per-unit temp file so a unit's printing can be
   replayed by the parent in task order.  The temp name embeds the pid:
   forked workers share the parent's [Filename.temp_file] PRNG state and
   would otherwise race for the same candidate names. *)
let captured f =
  let path =
    Filename.temp_file (Printf.sprintf "trg-pool-%d-" (Unix.getpid ())) ".out"
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      flush stdout;
      let saved = Unix.dup Unix.stdout in
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
      Unix.dup2 fd Unix.stdout;
      Unix.close fd;
      let v = try Ok (f ()) with e -> Error (message_of e) in
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      (v, read_whole path))

let execute task =
  (* The registry and span list restart from zero for every unit, so the
     reply carries exactly this unit's deltas; the parent re-adds them.
     Mutating them here is invisible to the parent (copy-on-write). *)
  Metrics.clear ();
  Span.reset ();
  let value, output = captured task.work in
  {
    r_value = value;
    r_metrics = Metrics.snapshot ();
    r_spans = Span.records ();
    r_output = output;
  }

let worker_body tasks ~task_r ~reply_w =
  let rec loop () =
    match (Marshal.from_string (Frame.read task_r) 0 : int) with
    | exception End_of_file -> ()
    | idx when idx < 0 -> ()
    | idx ->
      let reply = execute tasks.(idx) in
      Frame.write reply_w (Marshal.to_string reply [ Marshal.Closures ]);
      loop ()
  in
  loop ()

(* --- parent side ------------------------------------------------------ *)

type worker = {
  pid : int;
  task_w : Unix.file_descr;
  reply_r : Unix.file_descr;
  mutable current : int option;  (* task index in flight *)
  mutable deadline : float;  (* [infinity] = no timeout pending *)
  mutable closing : bool;  (* shutdown sent, EOF expected *)
}

type 'a slot = Pending | Replied of 'a reply | Broken of failure

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let spawn tasks siblings =
  let task_r, task_w = Unix.pipe () in
  let reply_r, reply_w = Unix.pipe () in
  (* Anything buffered on the parent's channels would otherwise be
     flushed a second time from inside the child. *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (* An inherited copy of a sibling's pipe ends would keep that pipe
       open after the sibling dies and defeat EOF-based crash
       detection. *)
    List.iter
      (fun w ->
        close_quietly w.task_w;
        close_quietly w.reply_r)
      siblings;
    close_quietly task_w;
    close_quietly reply_r;
    let code =
      match worker_body tasks ~task_r ~reply_w with
      | () -> 0
      | exception _ -> 1
    in
    (* Skip the parent's at_exit machinery and inherited buffers. *)
    Unix._exit code
  | pid ->
    Unix.close task_r;
    Unix.close reply_w;
    { pid; task_w; reply_r; current = None; deadline = infinity; closing = false }

let wait_status pid =
  let rec go () =
    try snd (Unix.waitpid [] pid)
    with Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  try go () with Unix.Unix_error _ -> Unix.WEXITED 0

let status_to_string = function
  | Unix.WEXITED c -> Printf.sprintf "exited with code %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

let run (type a) ?jobs ?timeout ?(fail_fast = false) (tasks : a task list) :
    a outcome list =
  match tasks with
  | [] -> []
  | _ ->
    let task_arr = Array.of_list tasks in
    let n = Array.length task_arr in
    let jobs =
      min n (match jobs with Some j when j >= 1 -> j | Some _ | None -> default_jobs ())
    in
    let slots : a slot array = Array.make n Pending in
    let next = ref 0 in
    let have_failure = ref false in
    let workers : worker list ref = ref [] in
    let record idx f =
      slots.(idx) <- Broken f;
      have_failure := true
    in
    let dispatchable () = !next < n && not (fail_fast && !have_failure) in
    let shutdown w =
      if not w.closing then begin
        w.closing <- true;
        (try Frame.write w.task_w (Marshal.to_string (-1) []) with
        | Fault.Error _ -> ());
        close_quietly w.task_w
      end
    in
    let assign w =
      if dispatchable () then begin
        let idx = !next in
        incr next;
        w.current <- Some idx;
        w.deadline <-
          (match timeout with
          | Some t -> Unix.gettimeofday () +. t
          | None -> infinity);
        (* A write failure means the worker already died; the EOF path
           attributes the unit to the crash. *)
        try Frame.write w.task_w (Marshal.to_string idx []) with
        | Fault.Error _ -> ()
      end
      else shutdown w
    in
    let retire w =
      close_quietly w.reply_r;
      if not w.closing then close_quietly w.task_w;
      workers := List.filter (fun x -> x.pid <> w.pid) !workers
    in
    let replace () =
      if dispatchable () then begin
        let w = spawn task_arr !workers in
        workers := w :: !workers;
        assign w
      end
    in
    let kill_retire_replace w failure =
      (match w.current with Some idx -> record idx failure | None -> ());
      w.current <- None;
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (wait_status w.pid);
      retire w;
      replace ()
    in
    let on_eof w =
      let status = wait_status w.pid in
      (match w.current with
      | Some idx ->
        record idx
          (Worker_crashed
             (Printf.sprintf "%s before replying" (status_to_string status)))
      | None -> ());
      retire w;
      replace ()
    in
    let on_readable w =
      match
        let payload = Frame.read w.reply_r in
        (Marshal.from_string payload 0 : a reply)
      with
      | reply -> (
        match w.current with
        | Some idx ->
          slots.(idx) <- Replied reply;
          (match reply.r_value with
          | Error _ -> have_failure := true
          | Ok _ -> ());
          w.current <- None;
          w.deadline <- infinity;
          assign w
        | None ->
          kill_retire_replace w (Protocol_error "unsolicited reply frame"))
      | exception End_of_file -> on_eof w
      | exception Fault.Error e ->
        kill_retire_replace w (Protocol_error (Fault.to_string e))
      | exception Failure msg ->
        (* [Marshal.from_string] rejected the payload. *)
        kill_retire_replace w (Protocol_error msg)
    in
    (* SIGPIPE's default disposition would kill the parent on a write to
       a crashed worker; with it ignored the write fails with EPIPE and
       is handled like any other crash. *)
    let prev_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ | Sys_error _ -> None
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun w ->
            (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (wait_status w.pid);
            close_quietly w.reply_r;
            if not w.closing then close_quietly w.task_w)
          !workers;
        workers := [];
        match prev_sigpipe with
        | Some h -> ( try Sys.set_signal Sys.sigpipe h with Invalid_argument _ -> ())
        | None -> ())
      (fun () ->
        for _ = 1 to jobs do
          workers := spawn task_arr !workers :: !workers
        done;
        List.iter assign (List.rev !workers);
        while !workers <> [] do
          let now = Unix.gettimeofday () in
          let expired = List.filter (fun w -> w.deadline <= now) !workers in
          if expired <> [] then
            List.iter
              (fun w ->
                if List.memq w !workers then
                  kill_retire_replace w
                    (Timed_out (Option.value timeout ~default:0.)))
              expired
          else begin
            let fds = List.map (fun w -> w.reply_r) !workers in
            let tmo =
              let d =
                List.fold_left
                  (fun acc w -> Float.min acc w.deadline)
                  infinity !workers
              in
              if d = infinity then -1. else Float.max 0.01 (d -. now)
            in
            match Unix.select fds [] [] tmo with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | readable, _, _ ->
              (* Look readable fds up in a pre-select snapshot: a worker
                 retired mid-iteration may have released its fd number to
                 a freshly spawned replacement. *)
              let snapshot = !workers in
              List.iter
                (fun fd ->
                  match
                    List.find_opt (fun w -> w.reply_r = fd) snapshot
                  with
                  | Some w when List.memq w !workers -> on_readable w
                  | Some _ | None -> ())
                readable
          end
        done);
    (* Task order, never completion order: absorb each unit's telemetry
       and emit its outcome by index. *)
    Array.to_list
      (Array.mapi
         (fun idx slot ->
           let task = task_arr.(idx) in
           match slot with
           | Replied reply ->
             Metrics.absorb reply.r_metrics;
             Span.inject reply.r_spans;
             let value =
               match reply.r_value with
               | Ok v -> Ok v
               | Error msg -> Error (Unit_failed msg)
             in
             { key = task.key; value; output = reply.r_output }
           | Broken f -> { key = task.key; value = Error f; output = "" }
           | Pending -> { key = task.key; value = Error Cancelled; output = "" })
         slots)
