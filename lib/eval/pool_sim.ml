module Fault = Trg_util.Fault
module Prng = Trg_util.Prng
module Metrics = Trg_obs.Metrics
module Span = Trg_obs.Span

type fault = Crash | Torn of int | Corrupt | Stuck

type schedule = {
  replies : (int * fault) list;
  eintr : int list;
  reorder : int list;
  skew : (int * float) list;
}

let empty_schedule = { replies = []; eintr = []; reorder = []; skew = [] }

(* Injection counters: how much adversity a schedule actually delivered.
   Zero outside simulation runs. *)
let c_crash = Metrics.counter "pool/sim/injected_crashes"

let c_torn = Metrics.counter "pool/sim/injected_torn_writes"

let c_corrupt = Metrics.counter "pool/sim/injected_corruptions"

let c_stuck = Metrics.counter "pool/sim/injected_stucks"

let c_eintr = Metrics.counter "pool/sim/injected_eintrs"

let c_reorder = Metrics.counter "pool/sim/injected_reorders"

let c_skew = Metrics.counter "pool/sim/injected_skews"

(* --- the simulated operating system ----------------------------------- *)

(* A pipe is a byte buffer with liveness flags for each end.  [consumed]
   marks how much of [buf]'s prefix has already been read, so reads are
   a blit, not a rebuild. *)
type pipe = {
  buf : Buffer.t;
  mutable consumed : int;
  mutable r_open : bool;
  mutable w_open : bool;
}

type role = Read_end | Write_end

(* Worker-side descriptors perform effects when they would block (and
   reply writes are where reply-sequence faults fire); parent-side
   descriptors never block — the engine only reads what select reported
   ready. *)
type endpoint = {
  pipe : pipe;
  role : role;
  worker_side : bool;
  is_reply : bool;
  mutable open_ : bool;
}

type fiber_state =
  | Not_started of (unit -> unit)
  | Waiting of { fd : int; k : (unit, unit) Effect.Deep.continuation }
  | Hung of { k : (unit, unit) Effect.Deep.continuation }
  | Done

type worker = {
  wid : int;
  mutable state : fiber_state;
  mutable status : string;  (* exit status, meaningful once [Done] *)
  w_task_r : int;
  w_reply_w : int;
}

type os = {
  rng : Prng.t;
  schedule : schedule;
  fds : (int, endpoint) Hashtbl.t;
  workers : (int, worker) Hashtbl.t;
  mutable next_fd : int;
  mutable next_wid : int;
  mutable vnow : float;  (* the virtual monotonic clock *)
  mutable reply_seq : int;  (* reply frames attempted, across all workers *)
  mutable select_seq : int;  (* select calls so far *)
}

type _ Effect.t += Await : int -> unit Effect.t | Hang : unit Effect.t

exception Killed

exception Crashed

module Sim_os = struct
  type nonrec os = os

  type fd = int

  type pid = int

  let ep os fd =
    match Hashtbl.find_opt os.fds fd with
    | Some e -> e
    | None -> invalid_arg (Printf.sprintf "Pool_sim: unknown fd %d" fd)

  let close os fd =
    let e = ep os fd in
    if e.open_ then begin
      e.open_ <- false;
      match e.role with
      | Read_end -> e.pipe.r_open <- false
      | Write_end -> e.pipe.w_open <- false
    end

  let new_fd os pipe role ~worker_side ~is_reply =
    let fd = os.next_fd in
    os.next_fd <- fd + 1;
    Hashtbl.replace os.fds fd { pipe; role; worker_side; is_reply; open_ = true };
    fd

  let new_pipe os ~is_reply =
    let pipe = { buf = Buffer.create 256; consumed = 0; r_open = true; w_open = true } in
    let r ~worker_side = new_fd os pipe Read_end ~worker_side ~is_reply in
    let w ~worker_side = new_fd os pipe Write_end ~worker_side ~is_reply in
    (pipe, r, w)

  let available p = Buffer.length p.buf - p.consumed

  let take p b pos len =
    let n = min len (available p) in
    Buffer.blit p.buf p.consumed b pos n;
    p.consumed <- p.consumed + n;
    if p.consumed = Buffer.length p.buf then begin
      Buffer.clear p.buf;
      p.consumed <- 0
    end;
    n

  (* --- the scheduler --------------------------------------------------- *)

  let finish os w status =
    w.state <- Done;
    w.status <- status;
    close os w.w_task_r;
    close os w.w_reply_w

  let handler os w =
    {
      Effect.Deep.retc = (fun () -> finish os w "exited with code 0");
      exnc =
        (fun e ->
          match e with
          | Killed -> finish os w "killed by signal 9"
          | Crashed -> finish os w "killed by signal 11"
          | _ -> finish os w "exited with code 1");
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Await fd ->
            Some
              (fun (k : (b, _) Effect.Deep.continuation) ->
                w.state <- Waiting { fd; k })
          | Hang -> Some (fun k -> w.state <- Hung { k })
          | _ -> None);
    }

  (* A fiber is runnable when it has not started yet, or when the read it
     blocked on can now make progress (bytes buffered, or EOF).  Hung
     fibers are unrunnable by design; only a kill frees them. *)
  let runnable os w =
    match w.state with
    | Not_started _ -> true
    | Waiting { fd; _ } ->
      let e = ep os fd in
      available e.pipe > 0 || not e.pipe.w_open
    | Hung _ | Done -> false

  let step os w =
    match w.state with
    | Not_started f -> Effect.Deep.match_with f () (handler os w)
    | Waiting { k; _ } -> Effect.Deep.continue k ()
    | Hung _ | Done -> ()

  (* Run fibers to quiescence, lowest worker id first so the execution
     order is a function of the schedule alone.  Fibers only suspend
     between whole frames, so after a pump the parent never observes a
     frame half-written by a live worker. *)
  let rec pump os =
    let next =
      Hashtbl.fold
        (fun _ w acc ->
          if runnable os w then
            match acc with Some best when best.wid < w.wid -> acc | _ -> Some w
          else acc)
        os.workers None
    in
    match next with
    | Some w ->
      step os w;
      pump os
    | None -> ()

  (* --- Pool_os.S ------------------------------------------------------- *)

  let spawn os ~close_in_child:_ body =
    (* Fibers share the parent's descriptor table, so there are no
       inherited copies to close: EOF detection works out of the box. *)
    let _task_pipe, task_r, task_w =
      let p, r, w = new_pipe os ~is_reply:false in
      (p, r ~worker_side:true, w ~worker_side:false)
    in
    let _reply_pipe, reply_r, reply_w =
      let p, r, w = new_pipe os ~is_reply:true in
      (p, r ~worker_side:false, w ~worker_side:true)
    in
    let wid = os.next_wid in
    os.next_wid <- wid + 1;
    let w =
      {
        wid;
        state = Not_started (fun () -> body ~task_r ~reply_w);
        status = "running";
        w_task_r = task_r;
        w_reply_w = reply_w;
      }
    in
    Hashtbl.replace os.workers wid w;
    (wid, task_w, reply_r)

  let kill os pid =
    match Hashtbl.find_opt os.workers pid with
    | None -> ()
    | Some w -> (
      match w.state with
      | Done -> ()
      | Not_started _ -> finish os w "killed by signal 9"
      | Waiting { k; _ } | Hung { k } -> (
        (* Unwinds the fiber through [exnc], which records the status
           and closes the worker-side ends. *)
        try Effect.Deep.discontinue k Killed with _ -> ()))

  let wait os pid =
    match Hashtbl.find_opt os.workers pid with
    | Some { state = Done; status; _ } -> status
    | Some _ | None -> "still running"

  let reply_fault os =
    let seq = os.reply_seq in
    os.reply_seq <- seq + 1;
    List.assoc_opt seq os.schedule.replies

  let write os fd s pos len =
    let e = ep os fd in
    if not e.pipe.r_open then
      Fault.fail (Fault.Io_error "pool pipe write: Broken pipe");
    if e.worker_side && e.is_reply then begin
      (* [Wire.write] hands the whole encoded frame to one write call
         (simulated writes are never short), so this is exactly "about
         to emit reply #seq" — the injection point. *)
      match reply_fault os with
      | Some Crash ->
        Metrics.incr c_crash;
        raise Crashed
      | Some (Torn n) ->
        Metrics.incr c_torn;
        Buffer.add_substring e.pipe.buf s pos (min n len);
        raise Crashed
      | Some Stuck ->
        Metrics.incr c_stuck;
        Effect.perform Hang;
        (* Unreachable: a hung fiber is only ever discontinued. *)
        raise Killed
      | Some Corrupt ->
        Metrics.incr c_corrupt;
        let b = Bytes.of_string (String.sub s pos len) in
        (* Flip one bit strictly inside the payload region of the frame
           (past the 8-byte length, before the 4-byte CRC) so the
           corruption is the checksum's job to catch, not the length
           guard's.  Frames this small can't occur (payloads are
           marshaled values), but guard anyway. *)
        if len > 13 then begin
          let off = 8 + Prng.int os.rng (len - 12) in
          let bit = Prng.int os.rng 8 in
          Bytes.set b off
            (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl bit)))
        end;
        Buffer.add_bytes e.pipe.buf b;
        len
      | None ->
        Buffer.add_substring e.pipe.buf s pos len;
        len
    end
    else begin
      Buffer.add_substring e.pipe.buf s pos len;
      len
    end

  let rec read os fd b pos len =
    let e = ep os fd in
    if available e.pipe > 0 then take e.pipe b pos len
    else if not e.pipe.w_open then 0
    else if e.worker_side then begin
      Effect.perform (Await fd);
      read os fd b pos len
    end
    else begin
      (* Parent reading ahead of select: let the fibers catch up.  If
         nothing fills the pipe the parent is stuck for good. *)
      pump os;
      if available e.pipe > 0 || not e.pipe.w_open then read os fd b pos len
      else
        failwith
          "Pool_sim: simulated deadlock (parent read on an empty pipe no \
           fiber can fill)"
    end

  let readable_fd os fd =
    let e = ep os fd in
    available e.pipe > 0 || not e.pipe.w_open

  let select os fds tmo =
    pump os;
    let seq = os.select_seq in
    os.select_seq <- seq + 1;
    (match List.assoc_opt seq os.schedule.skew with
    | Some jump when jump > 0. ->
      Metrics.incr c_skew;
      os.vnow <- os.vnow +. jump
    | Some _ | None -> ());
    if List.mem seq os.schedule.eintr then begin
      Metrics.incr c_eintr;
      []
    end
    else begin
      let ready = List.filter (readable_fd os) fds in
      match ready with
      | [] ->
        if tmo >= 0. then begin
          (* Nothing can change until the parent acts again: jump the
             virtual clock straight to the timeout. *)
          os.vnow <- os.vnow +. tmo;
          []
        end
        else
          failwith
            "Pool_sim: simulated deadlock (select with no timeout and no \
             runnable worker; a Stuck fault needs a timeout)"
      | _ ->
        if List.mem seq os.schedule.reorder then begin
          Metrics.incr c_reorder;
          List.rev ready
        end
        else ready
    end

  let now os = os.vnow

  let sleep os d = if d > 0. then os.vnow <- os.vnow +. d

  (* Workers share the parent's heap, so running a unit (which clears
     the telemetry registry) would trample the parent's accumulated
     state.  Save it, run the unit, and splice it back.  Safe because
     fibers never suspend inside [execute] — the parent cannot observe
     the intermediate state.  Restoring by [absorb] relies on the merge
     algebra; gauges holding negative values would be revived as their
     max with 0 (none exist in this codebase). *)
  let isolated os f =
    os.vnow <- os.vnow +. 0.001;
    let saved_metrics = Metrics.snapshot () in
    let saved_spans = Span.records () in
    Fun.protect
      ~finally:(fun () ->
        Metrics.clear ();
        Metrics.absorb saved_metrics;
        Span.reset ();
        Span.inject saved_spans)
      f
end

module Engine = Pool.Make (Sim_os)

let run ?jobs ?timeout ?retries ?retry_delay ?fail_fast
    ?(schedule = empty_schedule) ~seed tasks =
  let os =
    {
      rng = Prng.create seed;
      schedule;
      fds = Hashtbl.create 64;
      workers = Hashtbl.create 16;
      next_fd = 3;
      next_wid = 1000;
      vnow = 0.;
      reply_seq = 0;
      select_seq = 0;
    }
  in
  Engine.run ~os ?jobs ?timeout ?retries ?retry_delay ?fail_fast tasks

let random_schedule ~seed ~units =
  let rng = Prng.create seed in
  let units = max 1 units in
  (* Enough faults to matter, few enough that retries + respawns can
     still finish the batch.  Reply sequence numbers run past [units]
     because every retry writes a fresh reply. *)
  let n_faults = Prng.int_in rng 1 (max 2 (units / 2)) in
  let horizon = units + (2 * n_faults) in
  let seqs = Array.init horizon Fun.id in
  let chosen = Prng.sample rng seqs (min n_faults horizon) in
  let replies =
    Array.to_list chosen
    |> List.sort compare
    |> List.map (fun seq ->
           let f =
             (* Crash-heavy: crashes exercise the supervisor, the rarest
                and most valuable path. *)
             match Prng.int rng 10 with
             | 0 | 1 | 2 | 3 | 4 -> Crash
             | 5 | 6 -> Torn (Prng.int rng 48)
             | 7 | 8 -> Corrupt
             | _ -> Stuck
           in
           (seq, f))
  in
  let some_indices bound count =
    List.init count (fun _ -> Prng.int rng bound) |> List.sort_uniq compare
  in
  let n_selects = 4 * horizon in
  {
    replies;
    eintr = some_indices n_selects (Prng.int rng 3);
    reorder = some_indices n_selects (Prng.int rng 3);
    skew =
      some_indices n_selects (Prng.int rng 2)
      |> List.map (fun i -> (i, Prng.float rng 0.5));
  }
