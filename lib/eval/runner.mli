(** Shared experiment context: one prepared benchmark.

    Preparing a benchmark generates the program, walks the training and
    testing traces, builds the GBSC profile (popularity, TRG_select,
    TRG_place) and the weighted call graph — everything the individual
    experiments consume.  Preparation is deterministic. *)

type t = {
  shape : Trg_synth.Shape.t;
  workload : Trg_synth.Gen.workload;
  train : Trg_trace.Trace.t;
  test : Trg_trace.Trace.t;
  train_flat : Trg_trace.Trace.Flat.t;
      (** [train] in flat form, precomputed for the simulation hot path *)
  test_flat : Trg_trace.Trace.Flat.t;
  config : Trg_place.Gbsc.config;
  policy : Trg_cache.Policy.kind;
      (** replacement policy every miss-rate scoring uses *)
  prof : Trg_place.Gbsc.profile;  (** built from the training trace *)
  wcg : Trg_profile.Graph.t;  (** built from the training trace *)
}

val prepare :
  ?config:Trg_place.Gbsc.config ->
  ?policy:Trg_cache.Policy.kind ->
  ?force_fail:string list ->
  Trg_synth.Shape.t ->
  t
(** Default config: the paper's 8 KB direct-mapped operating point, with
    true LRU replacement ([policy] defaults to {!Trg_cache.Policy.Lru},
    which coincides with every policy at [assoc = 1]).
    Failures in any preparation stage are re-raised as [Failure] tagged
    with the benchmark name and stage.

    [force_fail] is the fault-injection hook: preparation raises
    immediately for benchmarks named in it.  It is explicit state
    threaded from [trgplace --force-fail] (no global — workers forked by
    {!Pool} and interleaved tests would otherwise share it). *)

val program : t -> Trg_program.Program.t

val miss_rate_on :
  t -> Trg_cache.Config.t -> Trg_program.Layout.t -> Trg_trace.Trace.t -> float

val test_miss_rate : t -> Trg_program.Layout.t -> float
(** Miss rate of a layout on the testing trace under the prepared cache. *)

val train_miss_rate : t -> Trg_program.Layout.t -> float

val default_layout : t -> Trg_program.Layout.t

val gbsc_layout :
  ?decisions:Trg_obs.Journal.decision array -> t -> Trg_program.Layout.t
(** The three journal-aware layouts accept a recorded decision sequence
    and replay it in forced-choice mode (see {!Trg_place.Merge_driver.replay});
    without [decisions] they run the live greedy search. *)

val ph_layout :
  ?decisions:Trg_obs.Journal.decision array -> t -> Trg_program.Layout.t

val hkc_layout :
  ?decisions:Trg_obs.Journal.decision array -> t -> Trg_program.Layout.t

val torrellas_layout : t -> Trg_program.Layout.t
(** The logical-cache baseline (paper Section 7 related work). *)

val hwu_chang_layout : t -> Trg_program.Layout.t
(** The DFS-proximity baseline (paper Section 7 related work). *)
