module Config = Trg_cache.Config
module Table = Trg_util.Table
module Gbsc = Trg_place.Gbsc

type row = {
  cache_bytes : int;
  default_mr : float;
  torrellas_mr : float;
  ph_mr : float;
  hkc_mr : float;
  gbsc_mr : float;
}

type result = { bench : string; rows : row list }

let default_sizes = [ 4096; 8192; 16384; 32768 ]

let run_size ?force_fail ?policy shape cache_bytes =
  let cache = Config.make ~size:cache_bytes ~line_size:32 ~assoc:1 in
  let config = Gbsc.default_config ~cache () in
  let r = Runner.prepare ~config ?policy ?force_fail shape in
  {
    cache_bytes;
    default_mr = Runner.test_miss_rate r (Runner.default_layout r);
    torrellas_mr = Runner.test_miss_rate r (Runner.torrellas_layout r);
    ph_mr = Runner.test_miss_rate r (Runner.ph_layout r);
    hkc_mr = Runner.test_miss_rate r (Runner.hkc_layout r);
    gbsc_mr = Runner.test_miss_rate r (Runner.gbsc_layout r);
  }

let of_rows shape rows = { bench = shape.Trg_synth.Shape.name; rows }

let run ?force_fail ?policy ?(sizes = default_sizes) shape =
  of_rows shape (List.map (run_size ?force_fail ?policy shape) sizes)

let print res =
  Table.section
    (Printf.sprintf "CACHE-SIZE SWEEP — Section 5.2 robustness check (%s)" res.bench);
  Table.print
    ~header:[ "cache"; "default"; "Torrellas"; "PH"; "HKC"; "GBSC" ]
    (List.map
       (fun r ->
         [
           Table.fmt_bytes r.cache_bytes;
           Table.fmt_pct r.default_mr;
           Table.fmt_pct r.torrellas_mr;
           Table.fmt_pct r.ph_mr;
           Table.fmt_pct r.hkc_mr;
           Table.fmt_pct r.gbsc_mr;
         ])
       res.rows);
  print_newline ()
