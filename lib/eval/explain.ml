module Program = Trg_program.Program
module Layout = Trg_program.Layout
module Config = Trg_cache.Config
module Attrib = Trg_cache.Attrib
module Sim = Trg_cache.Sim
module Graph = Trg_profile.Graph
module Trg = Trg_profile.Trg
module Gbsc = Trg_place.Gbsc
module Json = Trg_obs.Json
module Table = Trg_util.Table

type layout_report = {
  label : string;
  attrib : Attrib.t;
}

type t = {
  source : string;
  trace_label : string;
  cache : Config.t;
  policy : Trg_cache.Policy.kind;
  aligned : bool;
  layouts : layout_report list;
  trg_weight : int -> int -> float;
  proc_name : int -> string;
}

let algo_labels = [ "original"; "ph"; "hkc"; "gbsc"; "hwu-chang"; "torrellas" ]

let default_algos = [ "original"; "ph"; "hkc"; "gbsc" ]

let layout_of runner = function
  | "original" | "default" -> Runner.default_layout runner
  | "ph" -> Runner.ph_layout runner
  | "hkc" -> Runner.hkc_layout runner
  | "gbsc" -> Runner.gbsc_layout runner
  | "hwu-chang" -> Runner.hwu_chang_layout runner
  | "torrellas" -> Runner.torrellas_layout runner
  | other ->
    failwith
      (Printf.sprintf "explain: unknown layout %S (choose from: %s)" other
         (String.concat ", " algo_labels))

let make ?intervals ?(policy = Trg_cache.Policy.Lru) ~source ~trace_label
    ~cache ~trg_weight ~program ~trace ?(raw = false) labeled =
  let n_sets = Config.n_sets cache in
  let normalize layout =
    if raw then layout
    else Layout.line_align ~line_size:cache.Config.line_size ~n_sets program layout
  in
  let layouts =
    List.map
      (fun (label, layout) ->
        let layout = normalize layout in
        Trg_obs.Log.info (fun m -> m "attributing misses under %s" label);
        let attrib =
          Trg_obs.Span.with_ ("attrib:" ^ label) (fun () ->
              Attrib.simulate ?intervals ~policy program layout cache trace)
        in
        { label; attrib })
      labeled
  in
  { source; trace_label; cache; policy; aligned = not raw; layouts;
    trg_weight; proc_name = Program.name program }

let of_runner ?intervals ?(use_train = false) ?raw ~algos runner =
  let program = Runner.program runner in
  let cache = runner.Runner.config.Gbsc.cache in
  let trace = if use_train then runner.Runner.train else runner.Runner.test in
  let trg_weight = Graph.weight runner.Runner.prof.Gbsc.select.Trg.graph in
  make ?intervals ~policy:runner.Runner.policy
    ~source:runner.Runner.shape.Trg_synth.Shape.name
    ~trace_label:(if use_train then "train" else "test")
    ~cache ~trg_weight ~program ~trace ?raw
    (List.map (fun label -> (label, layout_of runner label)) algos)

(* --- text rendering --------------------------------------------------- *)

let sparkline counts =
  let levels = " .:-=+*#%@" in
  let max_c = Array.fold_left max 1 counts in
  (* A series with no variation carries no shape: scaling to its own
     maximum would draw every bucket at full height, which reads as a
     sustained peak.  Flat (and single-point) series render at the mid
     glyph instead; zeros stay blank. *)
  let flat = Array.for_all (fun c -> c = 0 || c = max_c) counts in
  String.init (Array.length counts) (fun i ->
      let c = counts.(i) in
      if c = 0 then ' '
      else if flat then levels.[5]
      else
        let idx = 1 + (c * (String.length levels - 2) / max_c) in
        levels.[idx])

let classification_rows t =
  List.map
    (fun { label; attrib } ->
      let r = attrib.Attrib.result in
      [
        label;
        Table.fmt_int r.Sim.accesses;
        Table.fmt_int r.Sim.misses;
        Table.fmt_pct (Sim.miss_rate r);
        Table.fmt_int attrib.Attrib.compulsory;
        Table.fmt_int attrib.Attrib.capacity;
        Table.fmt_int attrib.Attrib.conflict;
        Table.fmt_int r.Sim.evictions;
      ])
    t.layouts

let top_pairs ~top attrib =
  let pairs = attrib.Attrib.conflict_pairs in
  Array.to_list (Array.sub pairs 0 (min top (Array.length pairs)))

let print ?(top = 10) t =
  Table.section
    (Printf.sprintf "EXPLAIN — %s (%s trace, %s, %s)" t.source t.trace_label
       (Format.asprintf "%a" Config.pp t.cache)
       (Trg_cache.Policy.to_string t.policy));
  if t.aligned then
    print_endline
      "layouts normalised: set-preserving line alignment (compulsory counts \
       comparable)";
  print_newline ();
  Table.print
    ~header:
      [ "layout"; "accesses"; "misses"; "MR"; "compulsory"; "capacity";
        "conflict"; "evictions" ]
    (classification_rows t);
  List.iter
    (fun ({ label; attrib } as _lr) ->
      let conflict_total = max 1 attrib.Attrib.conflict in
      print_newline ();
      Printf.printf "-- %s: top conflicting pairs (of %d conflict misses)\n"
        label attrib.Attrib.conflict;
      (match top_pairs ~top attrib with
      | [] -> print_endline "   (no conflict misses)"
      | pairs ->
        Table.print
          ~align:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
          ~header:[ "evictor"; "victim"; "conflicts"; "share"; "TRG weight" ]
          (List.map
             (fun (e, v, c) ->
               [
                 t.proc_name e;
                 t.proc_name v;
                 Table.fmt_int c;
                 Table.fmt_pct (float_of_int c /. float_of_int conflict_total);
                 Table.fmt_float (t.trg_weight e v);
               ])
             pairs));
      (* Hottest procedures by misses. *)
      let procs =
        Array.to_list
          (Array.mapi (fun p s -> (p, s)) attrib.Attrib.per_proc)
        |> List.filter (fun (_, s) -> s.Attrib.p_misses > 0)
        |> List.sort (fun (p1, s1) (p2, s2) ->
               match compare s2.Attrib.p_misses s1.Attrib.p_misses with
               | 0 -> compare p1 p2
               | o -> o)
      in
      (match procs with
      | [] -> ()
      | _ ->
        print_newline ();
        Printf.printf "-- %s: hottest procedures\n" label;
        Table.print
          ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
          ~header:[ "proc"; "accesses"; "misses"; "conflicts"; "evicted" ]
          (List.map
             (fun (p, s) ->
               [
                 t.proc_name p;
                 Table.fmt_int s.Attrib.p_accesses;
                 Table.fmt_int s.Attrib.p_misses;
                 Table.fmt_int s.Attrib.p_conflicts;
                 Table.fmt_int s.Attrib.p_evictions_caused;
               ])
             (List.filteri (fun i _ -> i < top) procs)));
      (* Set pressure + phase behaviour. *)
      let sm = attrib.Attrib.set_misses in
      let hottest = ref 0 in
      Array.iteri (fun s c -> if c > sm.(!hottest) then hottest := s) sm;
      let total_sets = Array.length sm in
      let mean =
        float_of_int (Array.fold_left ( + ) 0 sm) /. float_of_int total_sets
      in
      print_newline ();
      Printf.printf
        "-- %s: set pressure — hottest set %d (%s misses, %d lines), mean \
         %.1f misses/set\n"
        label !hottest
        (Table.fmt_int sm.(!hottest))
        attrib.Attrib.set_lines.(!hottest)
        mean;
      Printf.printf "-- %s: miss timeline (%d events/interval)\n   [%s]\n" label
        attrib.Attrib.interval_events
        (sparkline attrib.Attrib.timeline))
    t.layouts;
  (* The paper's headline, stated directly when both sides are present. *)
  let find l = List.find_opt (fun lr -> lr.label = l) t.layouts in
  match (find "ph", find "gbsc") with
  | Some ph, Some gbsc ->
    print_newline ();
    Printf.printf
      "GBSC vs PH: %s vs %s conflict misses (%+d); compulsory %s vs %s\n"
      (Table.fmt_int gbsc.attrib.Attrib.conflict)
      (Table.fmt_int ph.attrib.Attrib.conflict)
      (gbsc.attrib.Attrib.conflict - ph.attrib.Attrib.conflict)
      (Table.fmt_int gbsc.attrib.Attrib.compulsory)
      (Table.fmt_int ph.attrib.Attrib.compulsory)
  | _ -> ()

(* --- JSON rendering --------------------------------------------------- *)

let json_schema = "trgplace-explain/1"

let cache_json ~policy (c : Config.t) =
  Json.Obj
    [
      ("size", Json.Int c.Config.size);
      ("line_size", Json.Int c.Config.line_size);
      ("assoc", Json.Int c.Config.assoc);
      ("policy", Json.String (Trg_cache.Policy.to_string policy));
    ]

let layout_json ?(top = 10) t { label; attrib } =
  let r = attrib.Attrib.result in
  let conflicts =
    Json.List
      (List.map
         (fun (e, v, c) ->
           Json.Obj
             [
               ("evictor", Json.String (t.proc_name e));
               ("victim", Json.String (t.proc_name v));
               ("count", Json.Int c);
               ("trg_weight", Json.Float (t.trg_weight e v));
             ])
         (top_pairs ~top attrib))
  in
  Json.Obj
    [
      ("label", Json.String label);
      ("accesses", Json.Int r.Sim.accesses);
      ("misses", Json.Int r.Sim.misses);
      ("miss_rate", Json.Float (Sim.miss_rate r));
      ("evictions", Json.Int r.Sim.evictions);
      ("compulsory", Json.Int attrib.Attrib.compulsory);
      ("capacity", Json.Int attrib.Attrib.capacity);
      ("conflict", Json.Int attrib.Attrib.conflict);
      ("distinct_lines", Json.Int attrib.Attrib.distinct_lines);
      ("conflict_pairs_total", Json.Int (Array.length attrib.Attrib.conflict_pairs));
      ("conflicts", conflicts);
      ( "set_misses_max",
        Json.Int (Array.fold_left max 0 attrib.Attrib.set_misses) );
      ("interval_events", Json.Int attrib.Attrib.interval_events);
      ( "timeline",
        Json.List
          (Array.to_list (Array.map (fun c -> Json.Int c) attrib.Attrib.timeline))
      );
    ]

let to_json ?top t =
  Json.Obj
    [
      ("schema", Json.String json_schema);
      ("source", Json.String t.source);
      ("trace", Json.String t.trace_label);
      ("cache", cache_json ~policy:t.policy t.cache);
      ("aligned", Json.Bool t.aligned);
      ("layouts", Json.List (List.map (layout_json ?top t) t.layouts));
    ]

let summary_json t =
  Json.Obj
    [
      ("source", Json.String t.source);
      ("trace", Json.String t.trace_label);
      ("policy", Json.String (Trg_cache.Policy.to_string t.policy));
      ("aligned", Json.Bool t.aligned);
      ( "layouts",
        Json.List
          (List.map
             (fun { label; attrib } ->
               Json.Obj
                 [
                   ("label", Json.String label);
                   ("accesses", Json.Int attrib.Attrib.result.Sim.accesses);
                   ("misses", Json.Int attrib.Attrib.result.Sim.misses);
                   ("compulsory", Json.Int attrib.Attrib.compulsory);
                   ("capacity", Json.Int attrib.Attrib.capacity);
                   ("conflict", Json.Int attrib.Attrib.conflict);
                 ])
             t.layouts) );
    ]
